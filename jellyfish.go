// Package jellyfish is a from-scratch Go implementation of the Jellyfish
// data-center interconnect (Singla, Hong, Popa & Godfrey, "Jellyfish:
// Networking Data Centers Randomly", NSDI 2012) together with everything
// needed to evaluate it: the fat-tree and Small-World-Datacenter comparison
// topologies, degree-diameter benchmark graphs, optimal-routing throughput
// via maximum concurrent flow, ECMP and k-shortest-path route tables, a
// flow-level TCP/MPTCP simulator, bisection-bandwidth analysis, budgeted
// incremental-expansion arcs, and physical layout / cabling models.
//
// # Quick start
//
// The module path is "jellyfish"; build everything with `go build ./...`
// from the repository root.
//
//	net := jellyfish.New(jellyfish.Config{Switches: 100, Ports: 24, NetworkDegree: 12, Seed: 1})
//	fmt.Println(net.NumServers())            // 1200
//	stats := net.PathStats()                 // switch-to-switch path lengths
//	lambda := jellyfish.OptimalThroughput(net, 1) // normalized throughput ∈ [0,1]
//
// The topology object returned everywhere is *Topology (an alias of the
// internal representation); it exposes the switch graph, per-switch port
// budgets and server counts, and is accepted by every evaluator in this
// package.
//
// # Parallel evaluation
//
// The evaluation stack is parallel end to end, built on the bounded
// worker pool in internal/parallel: independent experiment trials and
// sweep points fan out in internal/experiments (the Workers field on
// experiments.Options, surfaced as -workers on cmd/experiments), route
// tables build one source per task in internal/routing, and the
// concurrent-flow solver batches its per-source shortest-path sweeps in
// internal/mcf (mcf.Options.Workers). Evaluators in this package take an
// optional trailing worker count — OptimalThroughput(net, seed, 4) —
// surfaced as -workers on cmd/jellyfish. Everywhere, 0 means all cores
// and 1 means serial, and results are bit-identical for every worker
// count: per-task random streams are derived from the root seed by
// stable index, never from a shared stream consumed in completion order,
// and stateful hot paths reuse per-worker scratch (parallel.ForEachWorker)
// that is generation-stamped so leftover state can never leak into
// results. The flow solver's kernel — the sweep behind every capacity
// number — runs with zero steady-state allocations (DESIGN.md §5;
// measured trajectory in BENCH_mcf.json).
//
// # Incremental solving
//
// Capacity searches and sweeps solve sequences of nearly identical flow
// instances, and the stack exploits that (DESIGN.md §9): the solver is a
// reusable handle whose converged length function warm-starts the next
// related solve (falling back to a cold start when instances diverge),
// searched topologies grow one server at a time so adjacent probes share
// almost every cable, and the binary searches thread warm state between
// probes in deterministic order — measured ≥2× wall-clock on the
// Fig. 2(c)-style search (BENCH_mcf.json). CapacitySearch exposes the
// knobs, including the ColdStart A/B lever; WhatIfEvaluator (ops.go)
// gives operators the same warm chain for what-if scenario sequences.
//
// # Writing kernel code
//
// The invariants above are machine-checked: cmd/jellyvet (analyzers in
// internal/lint, catalog in DESIGN.md §12) runs in CI and fails the
// build on violations. When touching a solver or simulator kernel:
//
//  1. Stay deterministic. In the packages listed in
//     lint.DeterministicPackages, don't range over maps (collect keys
//     and sort), don't read the clock, don't use the global math/rand
//     stream, and don't spawn goroutines outside internal/parallel.
//  2. Mark hot functions //jellyvet:hotpath and keep them at zero
//     steady-state allocations: no make/new/literals/closures/fmt, no
//     interface boxing. Growth of handle-owned scratch is fine, but
//     each append site carries a //jellyvet:allow naming the
//     zero-alloc test that pins its steady state.
//  3. Derive randomness by stable index: rng.Source.Split/SplitN per
//     task, and consume every stream you split (discarding one
//     silently shifts all later streams).
//  4. Keep warm state confined. Types marked //jellyvet:confined (the
//     planner cache's entries, the scheduler's shard workers) belong
//     to exactly one goroutine — never store them in globals, send
//     them on channels, or capture them in a new goroutine.
//  5. To overrule an analyzer, write
//     //jellyvet:allow <analyzer> -- <why this site is sound>; the
//     reason is mandatory and reviewed, and a bare suppression is
//     itself a finding.
//
// Run `go run ./cmd/jellyvet ./...` before pushing; `go test
// ./internal/lint` exercises the analyzers themselves.
package jellyfish

import (
	"fmt"

	"jellyfish/internal/capsearch"
	"jellyfish/internal/estimate"
	"jellyfish/internal/graph"
	"jellyfish/internal/mcf"
	"jellyfish/internal/metrics"
	"jellyfish/internal/parallel"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
	"jellyfish/internal/traffic"
)

// Topology is a switch-level interconnect with attached servers.
type Topology = topology.Topology

// Graph is the undirected switch graph underlying a Topology.
type Graph = graph.Graph

// PathStats summarizes shortest-path structure (mean, diameter, histogram).
type PathStats = graph.PathStats

// Config describes a homogeneous Jellyfish network RRG(Switches, Ports,
// NetworkDegree): every switch has Ports ports, NetworkDegree of which
// connect to other switches and the rest to servers.
type Config struct {
	Switches      int
	Ports         int
	NetworkDegree int
	Seed          uint64
}

// An InvalidConfigError reports a nonsensical configuration handed to one
// of the package's public entry points (ports ≤ 0, negative trial counts,
// infeasible degrees, …). Boundaries that cannot return errors — New, the
// CLIs — panic with it instead; the planning service maps it to HTTP 400.
type InvalidConfigError struct {
	// Op is the entry point that rejected the configuration
	// (e.g. "CapacitySearch", "Config").
	Op string
	// Field names the offending field, Value its rejected value.
	Field string
	Value any
	// Reason says what a sensible value would be.
	Reason string
}

func (e *InvalidConfigError) Error() string {
	return fmt.Sprintf("jellyfish: invalid %s.%s = %v: %s", e.Op, e.Field, e.Value, e.Reason)
}

// Validate checks the configuration against the constructive requirements
// New enforces by panic, returning a typed *InvalidConfigError so callers
// with a network boundary (the planning service) can reject bad requests
// instead of crashing.
func (c Config) Validate() error {
	switch {
	case c.Switches <= 0:
		return &InvalidConfigError{Op: "Config", Field: "Switches", Value: c.Switches, Reason: "need at least one switch"}
	case c.Ports <= 0:
		return &InvalidConfigError{Op: "Config", Field: "Ports", Value: c.Ports, Reason: "need at least one port per switch"}
	case c.NetworkDegree < 0:
		return &InvalidConfigError{Op: "Config", Field: "NetworkDegree", Value: c.NetworkDegree, Reason: "network degree cannot be negative"}
	case c.NetworkDegree > c.Ports:
		return &InvalidConfigError{Op: "Config", Field: "NetworkDegree", Value: c.NetworkDegree, Reason: fmt.Sprintf("exceeds the %d ports per switch", c.Ports)}
	case c.NetworkDegree >= c.Switches:
		return &InvalidConfigError{Op: "Config", Field: "NetworkDegree", Value: c.NetworkDegree, Reason: fmt.Sprintf("a simple graph on %d switches supports degree at most %d", c.Switches, c.Switches-1)}
	}
	return nil
}

// New constructs a Jellyfish topology using the paper's randomized
// procedure (§3). It panics on infeasible parameters (NetworkDegree >
// Ports or NetworkDegree >= Switches); validate with Config.Validate
// first when the parameters come from an untrusted boundary.
func New(cfg Config) *Topology {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return topology.Jellyfish(cfg.Switches, cfg.Ports, cfg.NetworkDegree, rng.New(cfg.Seed))
}

// NewHeterogeneous constructs a Jellyfish from a mixed switch inventory:
// switch i has ports[i] ports and attaches servers[i] servers; all
// remaining ports become random network links.
func NewHeterogeneous(ports, servers []int, seed uint64) *Topology {
	return topology.JellyfishHeterogeneous(ports, servers, rng.New(seed))
}

// NewFatTree constructs the 3-level k-ary fat-tree of Al-Fares et al.
// (k even): k³/4 servers on 5k²/4 k-port switches.
func NewFatTree(k int) *Topology { return topology.FatTree(k) }

// Expand grows a Jellyfish in place by newSwitches switches with the given
// port split, using the paper's incremental procedure (§4.2): random link
// splices only, rewiring proportional to the ports added.
func Expand(t *Topology, newSwitches, ports, networkDegree int, seed uint64) *Topology {
	return topology.ExpandJellyfish(t, newSwitches, ports, networkDegree, rng.New(seed))
}

// ExpandSwitchOnly grows network capacity without adding servers.
func ExpandSwitchOnly(t *Topology, newSwitches, ports int, seed uint64) *Topology {
	return topology.ExpandJellyfishSwitchOnly(t, newSwitches, ports, rng.New(seed))
}

// FailRandomLinks removes a uniform-random fraction of switch-switch links
// in place, returning how many were removed.
func FailRandomLinks(t *Topology, fraction float64, seed uint64) int {
	return topology.RemoveRandomLinks(t, fraction, rng.New(seed))
}

// FailRandomSwitches fails a uniform-random fraction of whole switches in
// place (links removed, servers dropped), returning the failed switch IDs.
func FailRandomSwitches(t *Topology, fraction float64, seed uint64) []int {
	return topology.FailRandomSwitches(t, fraction, rng.New(seed))
}

// OptimalThroughput evaluates the topology under random-permutation
// traffic with optimal (fluid, splittable) routing — the paper's §4
// methodology — and returns the normalized per-server throughput in [0,1]:
// the largest fraction of every server's NIC rate that can be delivered
// simultaneously, capped at 1. The optional trailing argument bounds the
// flow solver's CPU parallelism (default: all cores); the value returned
// is identical for every worker count.
func OptimalThroughput(t *Topology, seed uint64, workers ...int) float64 {
	return optimalThroughput(t, seed, nil, workers...)
}

// OptimalThroughputInterruptible is OptimalThroughput with a cooperative
// cancellation poll threaded into the flow solver's phase loop, bounding
// cancellation latency to one Garg–Könemann phase instead of a whole
// solve. A fired interrupt truncates the solve: the returned value is a
// valid primal certificate of the phases run, but NOT the converged
// answer — callers that observe their own cancellation signal must
// discard it, never cache it. A nil or never-firing interrupt is
// byte-identical to OptimalThroughput.
func OptimalThroughputInterruptible(t *Topology, seed uint64, interrupt func() bool, workers ...int) float64 {
	return optimalThroughput(t, seed, interrupt, workers...)
}

func optimalThroughput(t *Topology, seed uint64, interrupt func() bool, workers ...int) float64 {
	src := rng.New(seed)
	pat := traffic.RandomPermutation(t.ServerSwitches(), src.Split("traffic"))
	res := mcf.MaxConcurrentFlow(t.Graph, pat.Commodities(), mcf.Options{Workers: firstOrZero(workers), Interrupt: interrupt})
	return metrics.Clamp01(res.Lambda)
}

// EstimateThroughput brackets OptimalThroughput's answer with a bounded
// approximate estimator instead of the exact flow solver, for instances
// far beyond the exact solver's practical scale. It derives the same
// random-permutation traffic as OptimalThroughput(t, seed), runs the
// selected estimator ("bisection", "spectral", or "sampled-mcf" with the
// given subsample size; 0 selects the default), and returns certified
// normalized-throughput bounds with
//
//	lower ≤ OptimalThroughput(t, seed) ≤ upper
//
// after the same cap-at-1 normalization (capping preserves both sides).
// Deterministic in (topology, estimator, sample, seed).
func EstimateThroughput(t *Topology, estimator string, sample int, seed uint64) (lower, upper float64, err error) {
	return estimateThroughput(t, estimator, sample, seed, nil)
}

// EstimateThroughputInterruptible is EstimateThroughput with a
// cooperative cancellation poll threaded into the estimator's internal
// solves (for estimators that run any — see estimate.Interruptible;
// the closed-form estimators return before a poll matters). A fired
// interrupt yields a soundly loose bracket, not the converged one:
// callers that observe their own cancellation signal must discard it.
// A nil or never-firing interrupt is byte-identical to
// EstimateThroughput.
func EstimateThroughputInterruptible(t *Topology, estimator string, sample int, seed uint64, interrupt func() bool) (lower, upper float64, err error) {
	return estimateThroughput(t, estimator, sample, seed, interrupt)
}

func estimateThroughput(t *Topology, estimator string, sample int, seed uint64, interrupt func() bool) (lower, upper float64, err error) {
	est, err := estimate.New(estimator, sample, seed)
	if err != nil {
		return 0, 0, err
	}
	if in, ok := est.(estimate.Interruptible); ok && interrupt != nil {
		in.SetInterrupt(interrupt)
	}
	src := rng.New(seed)
	pat := traffic.RandomPermutation(t.ServerSwitches(), src.Split("traffic"))
	b := est.Estimate(t.Compact(), pat.Commodities())
	return metrics.Clamp01(b.Lower), metrics.Clamp01(b.Upper), nil
}

// SupportsFullThroughput reports whether the topology can serve trials
// independent random-permutation matrices at full NIC rate for every
// server — the paper's "full capacity" test. slack absorbs the
// approximation tolerance of the flow solver (0.03 is a good default).
func SupportsFullThroughput(t *Topology, trials int, slack float64, seed uint64, workers ...int) bool {
	src := rng.New(seed)
	w := firstOrZero(workers)
	return parallel.All(w, trials, func(i int) bool {
		pat := traffic.RandomPermutation(t.ServerSwitches(), src.SplitN("traffic", i))
		// Trials are the fan-out; each solver runs serially to keep the
		// goroutine count at w rather than w².
		return mcf.FeasibleAtFull(t.Graph, pat.Commodities(), mcf.Options{Workers: 1}, slack)
	})
}

// MaxServersAtFullThroughput binary-searches the largest server count a
// Jellyfish built from `switches` k-port switches can support at full
// capacity under random-permutation traffic (checked on `trials`
// matrices), reproducing the paper's Fig. 2(c) methodology. Servers are
// spread as evenly as possible across switches. Returns 0 if not even one
// server per switch is supportable (degenerate inventories can leave the
// network disconnected or bottlenecked below NIC rate).
//
// The search is incremental end to end (DESIGN.md §9): probed topologies
// come from one canonical family grown a server at a time — adjacent
// probes share almost every cable, as the paper's Fig. 6 shows is
// capacity-neutral — and the flow solver warm-starts each probe from the
// previous one's solution, with per-trial state chains advanced in
// deterministic probe order. Use CapacitySearch to tune the knobs
// (including ColdStart for the from-scratch baseline).
//
// A nonsensical inventory (switches or ports ≤ 0, trials ≤ 0) returns a
// typed *InvalidConfigError instead of panicking or silently reporting 0,
// so network boundaries can distinguish "bad request" from "this
// inventory supports no servers".
func MaxServersAtFullThroughput(switches, ports, trials int, seed uint64) (int, error) {
	if trials <= 0 {
		return 0, &InvalidConfigError{Op: "MaxServersAtFullThroughput", Field: "trials", Value: trials, Reason: "need at least one permutation matrix per probe"}
	}
	return CapacitySearch{Switches: switches, Ports: ports, Trials: trials, Seed: seed}.Run()
}

// CapacitySearch configures a Fig. 2(c)-style capacity search. The zero
// value of the optional knobs selects the MaxServersAtFullThroughput
// behavior: slack 0.03, warm-started incremental probing, all cores.
type CapacitySearch struct {
	Switches, Ports int
	// Trials is the number of independent permutation matrices every
	// probed server count must support (default 3).
	Trials int
	// Slack absorbs the flow solver's approximation tolerance
	// (default 0.03).
	Slack float64
	Seed  uint64
	// Workers bounds the flow solver's CPU parallelism within each probe
	// solve (0 = all cores). Probes and their trials run sequentially so
	// warm state threads deterministically; the result is identical for
	// every worker count.
	Workers int
	// ColdStart disables the solver's warm-start threading, solving every
	// probe from scratch on the same instances and random streams — the
	// A/B switch used by the regression benchmarks and tests.
	ColdStart bool
	// Estimator, when non-empty, screens probe trials with a bounded
	// approximate estimator ("bisection", "spectral", or "sampled-mcf")
	// before the exact solver runs: trials whose certified Upper bound
	// already falls below the feasibility target are rejected without
	// solving. Rejection-only screening keeps answers identical to the
	// exact-only search; the final bracket is always confirmed exactly.
	Estimator string
	// EstimatorSample is the sampled-mcf commodity subsample size
	// (0 selects the default; ignored by the other estimator kinds).
	EstimatorSample int
	// Obs, when non-nil, attaches one-way diagnostics instrumentation
	// (probe/trial/solver-phase spans and counters — see capsearch.Obs)
	// to the search. Telemetry never feeds back into the search: results
	// are identical with or without it, and external callers can simply
	// leave it nil. The planning service uses it to serve per-job span
	// trees on /v1/trace.
	Obs *capsearch.Obs
}

// Validate checks the search configuration, returning a typed
// *InvalidConfigError for nonsensical inventories or knobs. The zero
// values of the optional knobs (Trials, Slack, Workers) are valid — they
// select the documented defaults — but negative values are not.
func (c CapacitySearch) Validate() error {
	switch {
	case c.Switches <= 0:
		return &InvalidConfigError{Op: "CapacitySearch", Field: "Switches", Value: c.Switches, Reason: "need at least one switch"}
	case c.Ports <= 1:
		return &InvalidConfigError{Op: "CapacitySearch", Field: "Ports", Value: c.Ports, Reason: "a switch needs at least 2 ports to host a server and a network link"}
	case c.Trials < 0:
		return &InvalidConfigError{Op: "CapacitySearch", Field: "Trials", Value: c.Trials, Reason: "trial count cannot be negative (0 selects the default)"}
	case c.Slack < 0 || c.Slack >= 1:
		return &InvalidConfigError{Op: "CapacitySearch", Field: "Slack", Value: c.Slack, Reason: "slack must lie in [0, 1) (0 selects the default)"}
	case c.Workers < 0:
		return &InvalidConfigError{Op: "CapacitySearch", Field: "Workers", Value: c.Workers, Reason: "worker count cannot be negative (0 means all cores)"}
	case c.EstimatorSample < 0:
		return &InvalidConfigError{Op: "CapacitySearch", Field: "EstimatorSample", Value: c.EstimatorSample, Reason: "sample size cannot be negative (0 selects the default)"}
	}
	if c.Estimator != "" {
		if _, err := estimate.New(c.Estimator, c.EstimatorSample, c.Seed); err != nil {
			return &InvalidConfigError{Op: "CapacitySearch", Field: "Estimator", Value: c.Estimator, Reason: fmt.Sprintf("unknown estimator kind (have %v)", estimate.Kinds())}
		}
	}
	return nil
}

// Run executes the search and returns the largest supported server count
// (0 if even one server per switch is unsupportable). A nonsensical
// configuration returns a typed *InvalidConfigError (see Validate); a
// valid search never fails.
func (c CapacitySearch) Run() (int, error) {
	return c.RunOnFamily(nil, nil)
}

// ErrInterrupted reports a capacity search abandoned by its interrupt
// hook (see RunOnFamily). Plain Run never returns it.
var ErrInterrupted = capsearch.ErrInterrupted

// A SearchFamily is the reusable warm asset of capacity searches over one
// inventory: the incrementally grown topology the probes share. It is a
// pure function of (Switches, Ports, Seed) — every search over the same
// inventory probes identical instances whether it builds its own family
// or receives a cached one — which is what lets a caching layer (the
// planning service) keep families across requests without changing any
// result. Safe for sequential reuse; not for concurrent searches.
type SearchFamily struct {
	fam *capsearch.Family
}

// NewFamily constructs the topology family c's probes grow, for callers
// that cache it across searches (see RunOnFamily).
func (c CapacitySearch) NewFamily() (*SearchFamily, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &SearchFamily{fam: capsearch.NewFamily(
		SpreadServers(c.Switches, c.Ports, c.Switches, c.Seed),
		rng.New(c.Seed).Split("grow"))}, nil
}

// RunOnFamily executes the search probing a caller-cached family (nil
// builds a fresh one — Run is exactly RunOnFamily(nil, nil)) with an
// optional interrupt hook polled between solves; when the hook reports
// true the search abandons with ErrInterrupted. The family must come
// from NewFamily on a CapacitySearch with the same Switches, Ports, and
// Seed.
func (c CapacitySearch) RunOnFamily(fam *SearchFamily, interrupt func() bool) (int, error) {
	return c.RunOnFamilyObserved(fam, interrupt, nil)
}

// RunOnFamilyObserved executes like RunOnFamily, additionally invoking
// probe (when non-nil) after every completed feasibility probe — the
// streaming-progress hook for long-running service jobs. The probe
// sequence is a deterministic function of the search configuration, so
// identical searches produce identical (servers, feasible) streams; an
// interrupted probe is not observed.
func (c CapacitySearch) RunOnFamilyObserved(fam *SearchFamily, interrupt func() bool, probe func(servers int, feasible bool)) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Slack <= 0 {
		c.Slack = 0.03
	}
	if fam == nil {
		fam, _ = c.NewFamily() // c already validated
	}
	var est estimate.ThroughputEstimator
	if c.Estimator != "" {
		est, _ = estimate.New(c.Estimator, c.EstimatorSample, c.Seed) // kind validated above
	}
	return capsearch.MaxServers(capsearch.Config{
		Lo:        c.Switches,
		Hi:        c.Switches * (c.Ports - 1),
		Family:    fam.fam,
		Traffic:   rng.New(c.Seed + capsearch.TrafficSeedOffset),
		Trials:    c.Trials,
		Slack:     c.Slack,
		Workers:   c.Workers,
		Cold:      c.ColdStart,
		Estimator: est,
		Interrupt: interrupt,
		Probe:     probe,
		Obs:       c.Obs,
	})
}

// SpreadServers builds a Jellyfish with exactly `servers` servers spread
// evenly over `switches` k-port switches (the construction used by the
// capacity searches).
func SpreadServers(switches, ports, servers int, seed uint64) *Topology {
	if servers > switches*(ports-1) {
		panic(fmt.Sprintf("jellyfish: %d servers exceed capacity of %d %d-port switches",
			servers, switches, ports))
	}
	portsPer := make([]int, switches)
	serversPer := make([]int, switches)
	base := servers / switches
	extra := servers % switches
	for i := range portsPer {
		portsPer[i] = ports
		serversPer[i] = base
		if i < extra {
			serversPer[i]++
		}
	}
	return topology.JellyfishHeterogeneous(portsPer, serversPer, rng.New(seed))
}

// MeanPathLength returns the mean inter-switch shortest path length over
// switches that host servers.
func MeanPathLength(t *Topology) float64 { return t.SwitchPathStats().Mean }

// Diameter returns the switch-graph diameter.
func Diameter(t *Topology) int { return t.Graph.Diameter() }
