package jellyfish

import (
	"jellyfish/internal/bisection"
	"jellyfish/internal/flowsim"
	"jellyfish/internal/metrics"
	"jellyfish/internal/rng"
	"jellyfish/internal/routing"
	"jellyfish/internal/traffic"
)

// RoutingScheme selects the forwarding plane for packet-level evaluation.
type RoutingScheme int

const (
	// ECMP8 is 8-way equal-cost multipath over shortest paths.
	ECMP8 RoutingScheme = iota
	// ECMP64 is 64-way ECMP.
	ECMP64
	// KSP8 is 8-shortest-path routing via Yen's algorithm.
	KSP8
)

// String names the scheme.
func (r RoutingScheme) String() string {
	switch r {
	case ECMP8:
		return "ECMP-8"
	case ECMP64:
		return "ECMP-64"
	case KSP8:
		return "8-shortest-paths"
	default:
		return "unknown"
	}
}

// TransportProtocol selects the congestion-control model.
type TransportProtocol = flowsim.Protocol

// Transport protocols evaluated in the paper's Table 1.
const (
	TCP1Flow       = flowsim.TCP1
	TCP8Flows      = flowsim.TCP8
	MPTCP8Subflows = flowsim.MPTCP8
)

// PacketLevelResult reports a flow-level simulation outcome.
type PacketLevelResult struct {
	// MeanThroughput is the average per-server throughput as a fraction of
	// NIC rate (the paper's Table-1 metric).
	MeanThroughput float64
	// FlowThroughputs lists per-flow rates (Fig. 13's series).
	FlowThroughputs []float64
	// Fairness is Jain's index over FlowThroughputs.
	Fairness float64
}

// PacketLevelThroughput runs the flow-level transport simulator (the
// paper's §5 methodology, flow-level substitution per DESIGN.md §8) with
// the given routing scheme and transport on one random permutation. The
// optional trailing argument bounds route-construction parallelism
// (default: all cores); the result is identical either way.
func PacketLevelThroughput(t *Topology, scheme RoutingScheme, proto TransportProtocol, seed uint64, workers ...int) PacketLevelResult {
	src := rng.New(seed)
	pat := traffic.RandomPermutation(t.ServerSwitches(), src.Split("traffic"))
	table := buildTable(t, pat, scheme, src.Split("routes"), firstOrZero(workers))
	res := flowsim.Simulate(pat.Flows, table, proto, flowsim.SimSource(src, proto))
	return PacketLevelResult{
		MeanThroughput:  res.Mean(),
		FlowThroughputs: res.FlowRate,
		Fairness:        metrics.JainFairness(res.FlowRate),
	}
}

func buildTable(t *Topology, pat *traffic.Pattern, scheme RoutingScheme, src *rng.Source, workers int) *routing.Table {
	var sd [][2]int
	for _, f := range pat.Flows {
		sd = append(sd, [2]int{f.SrcSwitch, f.DstSwitch})
	}
	pairs := routing.PairsForCommodities(sd)
	switch scheme {
	case ECMP64:
		return routing.ECMP(t.Graph, pairs, 64, src, workers)
	case KSP8:
		return routing.KShortest(t.Graph, pairs, 8, workers)
	default:
		return routing.ECMP(t.Graph, pairs, 8, src, workers)
	}
}

// firstOrZero unwraps an optional trailing workers argument (0 = all
// cores).
func firstOrZero(workers []int) int {
	if len(workers) > 0 {
		return workers[0]
	}
	return 0
}

// LinkPathCounts returns, for each directed switch-switch link, the number
// of distinct routing paths crossing it under the given scheme and one
// random permutation's route table — sorted ascending (Fig. 9's series).
func LinkPathCounts(t *Topology, scheme RoutingScheme, seed uint64, workers ...int) []int {
	src := rng.New(seed)
	pat := traffic.RandomPermutation(t.ServerSwitches(), src.Split("traffic"))
	table := buildTable(t, pat, scheme, src.Split("routes"), firstOrZero(workers))
	return routing.RankedLinkLoads(t.Graph, table)
}

// NormalizedBisectionBound returns the Bollobás lower bound on the
// normalized bisection bandwidth of RRG(switches, ports, networkDegree):
// crossing capacity divided by the NIC bandwidth of half the servers.
func NormalizedBisectionBound(switches, ports, networkDegree int) float64 {
	return bisection.RRGNormalizedBisection(switches, ports, networkDegree)
}

// ServersAtFullBisection returns the largest server count `switches`
// k-port switches support at normalized bisection ≥ 1 under the Bollobás
// bound, with the chosen network degree.
func ServersAtFullBisection(switches, ports int) (servers, networkDegree int) {
	return bisection.MaxServersAtFullBisection(switches, ports)
}

// EquipmentForServers returns the minimum total port count of a Jellyfish
// of k-port switches carrying `servers` servers at full bisection
// bandwidth (0 if infeasible) — the Fig. 2(b) cost curve.
func EquipmentForServers(servers, ports int) int {
	cost, _, _ := bisection.MinPortsForServers(servers, ports)
	return cost
}

// MeasuredBisection computes a heuristic (Kernighan–Lin) server-balanced
// minimum bisection of an explicit topology, normalized by half the
// servers' NIC bandwidth and capped at 1.
func MeasuredBisection(t *Topology, seed uint64) float64 {
	cut, _ := bisection.KLBisection(t.Graph, t.Servers, 4, rng.New(seed))
	servers := t.NumServers()
	if servers == 0 {
		return 0
	}
	return metrics.Clamp01(float64(cut) / (float64(servers) / 2))
}
