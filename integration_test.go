package jellyfish

// End-to-end integration tests: whole-lifecycle scenarios across every
// subsystem — construction, expansion, routing, transport, failures,
// blueprints — exercised through the public API only.

import (
	"bytes"
	"testing"
)

// TestLifecycleScenario runs a full operator story: design → blueprint →
// build (with miswirings) → evaluate → expand → re-evaluate → failure
// drill. Each stage asserts the properties the paper promises.
func TestLifecycleScenario(t *testing.T) {
	const (
		ports  = 12
		degree = 8
	)
	// Design.
	design := New(Config{Switches: 40, Ports: ports, NetworkDegree: degree, Seed: 100})
	if err := design.Validate(); err != nil {
		t.Fatal(err)
	}
	baseline := OptimalThroughput(design, 101)
	if baseline < 0.5 {
		t.Fatalf("baseline throughput %v implausibly low", baseline)
	}

	// Blueprint round trip.
	var bp bytes.Buffer
	if err := WriteBlueprint(design, &bp); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBlueprint(&bp)
	if err != nil {
		t.Fatal(err)
	}
	if OptimalThroughput(loaded, 101) != baseline {
		t.Fatal("blueprint round trip changed throughput")
	}

	// Build with errors; detect; accept (paper §6.1).
	built := loaded.Clone()
	SimulateMiswirings(built, 2, 102)
	if n := len(DetectMiswirings(loaded, built)); n != 4 {
		t.Fatalf("detected %d divergences, want 4", n)
	}
	if tp := OptimalThroughput(built, 101); tp < baseline*0.93 {
		t.Fatalf("2 miswirings cost too much: %v -> %v", baseline, tp)
	}

	// Expand by 25% and verify capacity keeps up (paper §4.2).
	grown := built.Clone()
	Expand(grown, 10, ports, degree, 103)
	if grown.NumSwitches() != 50 {
		t.Fatalf("switches = %d", grown.NumSwitches())
	}
	plan := PlanRewiring(built, grown)
	if len(plan.Add) > 10*degree {
		t.Fatalf("expansion rewired too much: %d cables", len(plan.Add))
	}
	grownTp := OptimalThroughput(grown, 104)
	if grownTp < baseline*0.85 {
		t.Fatalf("expansion degraded throughput: %v -> %v", baseline, grownTp)
	}

	// Realizable routing on the grown network (paper §5).
	pkt := PacketLevelThroughput(grown, KSP8, MPTCP8Subflows, 105)
	if pkt.MeanThroughput < grownTp*0.75 {
		t.Fatalf("packet-level %v too far below optimal %v", pkt.MeanThroughput, grownTp)
	}
	if pkt.Fairness < 0.9 {
		t.Fatalf("fairness %v below 0.9", pkt.Fairness)
	}

	// Failure drill (paper §4.3).
	drill := grown.Clone()
	FailRandomLinks(drill, 0.15, 106)
	drillTp := OptimalThroughput(drill, 107)
	if drillTp < grownTp*0.70 {
		t.Fatalf("15%% failures cost too much: %v -> %v", grownTp, drillTp)
	}
	if !drill.Graph.Connected() {
		t.Fatal("15% failures disconnected the network")
	}
}

// TestEquipmentParityScenario verifies the paper's headline claim chain on
// one small configuration: same equipment as a fat-tree → shorter paths →
// more servers at the same measured throughput.
func TestEquipmentParityScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale scenario; run without -short to include it")
	}
	k := 10
	ft := NewFatTree(k)
	jf := SpreadServers(ft.NumSwitches(), k, ft.NumServers(), 200)

	// Same equipment.
	if jf.TotalPorts() != ft.TotalPorts() {
		t.Fatalf("port budgets differ: %d vs %d", jf.TotalPorts(), ft.TotalPorts())
	}
	// Shorter paths.
	if MeanPathLength(jf) >= MeanPathLength(ft) {
		t.Fatalf("jellyfish paths %v not shorter than fat-tree %v",
			MeanPathLength(jf), MeanPathLength(ft))
	}
	// At least fat-tree throughput with realizable routing at equal servers.
	ftTp := PacketLevelThroughput(ft, ECMP8, MPTCP8Subflows, 201).MeanThroughput
	jfTp := PacketLevelThroughput(jf, KSP8, MPTCP8Subflows, 201).MeanThroughput
	if jfTp < ftTp-0.03 {
		t.Fatalf("jellyfish %v more than 3pp below fat-tree %v at equal servers", jfTp, ftTp)
	}
	// And it can carry strictly more servers at full optimal-routing
	// capacity (binary search, 2 permutations).
	max, err := MaxServersAtFullThroughput(ft.NumSwitches(), k, 2, 202)
	if err != nil {
		t.Fatal(err)
	}
	if max <= ft.NumServers() {
		t.Fatalf("jellyfish max %d not above fat-tree %d", max, ft.NumServers())
	}
}

// TestHeterogeneousLifecycle grows a network across two switch
// generations and verifies everything still composes.
func TestHeterogeneousLifecycle(t *testing.T) {
	ports := make([]int, 30)
	servers := make([]int, 30)
	for i := range ports {
		ports[i], servers[i] = 8, 3
	}
	for i := 20; i < 30; i++ {
		ports[i], servers[i] = 16, 6
	}
	net := NewHeterogeneous(ports, servers, 300)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if net.NumServers() != 20*3+10*6 {
		t.Fatalf("servers = %d", net.NumServers())
	}
	if !net.Graph.Connected() {
		t.Fatal("heterogeneous network disconnected")
	}
	res := PacketLevelThroughput(net, KSP8, MPTCP8Subflows, 301)
	if res.MeanThroughput <= 0.4 {
		t.Fatalf("throughput %v", res.MeanThroughput)
	}
}
