// Command jellyfishd is the resident topology-planning service: the
// library's planning operations served over HTTP/JSON, with a sharded
// warm-state cache that keeps solver state hot across related requests
// (DESIGN.md §10).
//
// Usage:
//
//	jellyfishd [-addr :8080] [-workers 4] [-solver-workers 1] [-cache 128] [-max-sync 32] [-state-dir DIR] [-debug-addr :6060] [-no-telemetry] [-client-qps N] [-faultinject SCHEDULE]
//
// Endpoints (all request/response bodies are JSON unless noted):
//
//	GET  /healthz                  liveness probe
//	GET  /metrics                  Prometheus text exposition (scheduler, caches, kernels, job store)
//	GET  /v1/stats                 scheduler and cache counters
//	GET  /v1/trace/{id}            finished job's recorded span tree (flight recorder)
//	POST /v1/design                construct a Jellyfish, return stats + blueprint
//	POST /v1/evaluate              optimal-routing throughput (random permutation)
//	POST /v1/capacity-search       Fig. 2(c)-style max-servers search
//	POST /v1/whatif                chain-evaluated failure/expansion scenarios
//	POST /v1/rewire-plan           cable moves turning one topology into another
//	POST /v1/jobs                  submit any of the above asynchronously
//	GET  /v1/jobs                  list jobs
//	GET  /v1/jobs/{id}             job status + result envelope
//	GET  /v1/jobs/{id}/events      stream progress as SSE, then a done frame
//	GET  /v1/jobs/{id}/result      succeeded job's raw result document
//	POST /v1/jobs/{id}/cancel      cancel a queued or running job
//
// With -debug-addr the Go pprof handlers (net/http/pprof) are served on
// a separate listener at /debug/pprof/ — a private loopback address by
// convention, never the public one, so profiling endpoints are not
// exposed alongside the API. -no-telemetry turns the observability
// surface off entirely; responses are byte-identical either way
// (telemetry is strictly one-way; DESIGN.md §15).
//
// With -state-dir the job store survives the process: submissions are
// journaled before they are acknowledged, and on the next boot finished
// jobs are fetchable again while interrupted ones re-run automatically.
// On SIGTERM/SIGINT the daemon drains: it stops admitting work, lets
// in-flight jobs finish (up to the shutdown timeout), snapshots, and
// exits; a SIGKILL instead costs only the jobs' progress, never their
// submissions (DESIGN.md §14).
//
// Responses are deterministic: the same request body yields byte-identical
// response bytes regardless of -workers, cache state, restarts, or request
// interleaving — and the same holds for every /events payload frame. See
// examples/operations for a scripted session.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jellyfish/internal/faultinject"
	"jellyfish/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "shard workers (each owns a warm-state cache; any value yields identical responses)")
	solverWorkers := flag.Int("solver-workers", 1, "CPU parallelism per flow solve; 0 = all cores when -workers is 1, otherwise 1 (many shard workers each running all-core solves would oversubscribe the machine — cross-request parallelism comes from -workers)")
	cacheEntries := flag.Int("cache", 128, "warm-state cache entries per worker")
	maxSync := flag.Int("max-sync", 0, "admitted concurrent synchronous requests before shedding load with 429 + Retry-After (0 = 8×workers, negative = unlimited; the job API is never gated)")
	stateDir := flag.String("state-dir", "", "directory for the durable job store (empty = memory-only); replayed on boot so jobs survive restarts")
	debugAddr := flag.String("debug-addr", "", "separate listen address for Go pprof handlers at /debug/pprof/ (empty = disabled; bind to loopback, e.g. 127.0.0.1:6060)")
	noTelemetry := flag.Bool("no-telemetry", false, "disable the observability surface (/metrics, /v1/trace, flight recorders); responses are identical either way")
	clientQPS := flag.Float64("client-qps", 0, "per-client quota on work-creating endpoints, requests/second (0 = disabled); exceeded clients get 429 + Retry-After")
	clientBurst := flag.Int("client-burst", 0, "per-client quota bucket depth (0 = client-qps+1)")
	faultSchedule := flag.String("faultinject", os.Getenv("JELLYFISHD_FAULTINJECT"),
		"deterministic fault schedule for chaos testing, e.g. persist.append:3-2:enospc (see internal/faultinject; default from JELLYFISHD_FAULTINJECT; empty = disabled)")
	flag.Parse()

	if *faultSchedule != "" {
		deactivate, err := faultinject.Activate(*faultSchedule)
		if err != nil {
			log.Fatalf("jellyfishd: -faultinject: %v", err)
		}
		defer deactivate()
		log.Printf("jellyfishd: FAULT INJECTION ACTIVE: %s", *faultSchedule)
	}

	srv, err := service.New(service.Options{
		Workers:          *workers,
		SolverWorkers:    *solverWorkers,
		CacheEntries:     *cacheEntries,
		MaxSyncInflight:  *maxSync,
		StateDir:         *stateDir,
		DisableTelemetry: *noTelemetry,
		ClientQPS:        *clientQPS,
		ClientBurst:      *clientBurst,
	})
	if err != nil {
		log.Fatalf("jellyfishd: %v", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The pprof surface rides a separate listener so profiling handlers
	// never share an address with the public API. DefaultServeMux is
	// deliberately avoided: only the pprof routes are mounted.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
		log.Printf("jellyfishd debug (pprof) listening on %s", *debugAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("jellyfishd listening on %s (%d workers)", *addr, *workers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %v, shutting down", sig)
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			log.Printf("debug shutdown: %v", err)
		}
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	// Graceful drain: finish (and journal) in-flight jobs within the
	// timeout; past it they are interrupted un-journaled, so a durable
	// store re-runs them on the next boot.
	srv.Drain(ctx)
}
