// Command jellyvet runs the repository's invariant analyzers
// (internal/lint) over a set of packages and exits nonzero if any
// finding survives suppression review. CI runs it as a required job:
//
//	go run ./cmd/jellyvet ./...
//
// Findings print as file:line:col: analyzer: message, one per line.
// Suppress a reviewed exception with
//
//	//jellyvet:allow <analyzer>[,<analyzer>] -- <reason>
//
// on the flagged line, the line above it, or the enclosing function's
// doc comment. See DESIGN.md §12 for the full grammar and the catalog
// of invariants each analyzer enforces.
package main

import (
	"flag"
	"fmt"
	"os"

	"jellyfish/internal/lint"
)

func main() {
	explain := flag.Bool("explain", false, "print each analyzer's documentation and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: jellyvet [-explain] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the jellyfish invariant analyzers (default pattern ./...).\nAnalyzers: ")
		for i, a := range lint.All() {
			if i > 0 {
				fmt.Fprint(flag.CommandLine.Output(), ", ")
			}
			fmt.Fprint(flag.CommandLine.Output(), a.Name)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *explain {
		for _, a := range lint.All() {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jellyvet:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jellyvet:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.All())
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "jellyvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
