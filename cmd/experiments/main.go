// Command experiments regenerates the tables and figures of the Jellyfish
// paper's evaluation. Run with no arguments to list experiments; pass one
// or more experiment IDs (or "all") to run them.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-trials N] [-workers N] [-cold] [fig2c table1 ... | all]
//
// Full-scale runs use the paper's sizes and can take minutes per figure;
// -quick trims every sweep to seconds, and -workers fans independent
// trials and sweep points out over CPU cores (0 = all cores; output is
// bit-identical for every worker count). -cold disables the flow solver's
// warm-start threading in the capacity searches and sweeps (fig2c and the
// mcf ablations) without changing any instance or random stream — the A/B
// lever behind the warm-start regression benchmarks.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"jellyfish/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size sweeps (seconds instead of minutes)")
	seed := flag.Uint64("seed", 1, "root random seed")
	trials := flag.Int("trials", 0, "trials per data point (0 = experiment default)")
	workers := flag.Int("workers", 0, "CPU parallelism (0 = all cores, 1 = serial; same output either way)")
	cold := flag.Bool("cold", false, "disable flow-solver warm starts in capacity searches and sweeps (identical instances, cold solves; A/B lever)")
	flag.Parse()

	opt := experiments.Options{Seed: *seed, Trials: *trials, Quick: *quick, Workers: *workers, ColdStart: *cold}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("available experiments (pass IDs or \"all\"):")
		for _, e := range experiments.All() {
			fmt.Printf("  %s\n", e.ID)
		}
		return
	}
	if len(args) == 1 && args[0] == "all" {
		args = nil
		for _, e := range experiments.All() {
			args = append(args, e.ID)
		}
	}
	exit := 0
	for _, id := range args {
		run := experiments.Lookup(id)
		if run == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			exit = 2
			continue
		}
		start := time.Now()
		tab := run(opt)
		tab.Fprint(os.Stdout)
		fmt.Printf("  [%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exit)
}
