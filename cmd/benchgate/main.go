// Command benchgate turns `go test -bench` output into a CI pass/fail
// signal: it compares the measured ns/op and allocs/op of budgeted
// benchmarks against the budgets recorded in BENCH_mcf.json and exits
// non-zero when any metric regresses beyond the recorded tolerance.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkMaxConcurrentFlow -benchtime 3x -benchmem . | tee bench.txt
//	go run ./cmd/benchgate -budget BENCH_mcf.json -input bench.txt
//
// With -input omitted the bench output is read from stdin. When a
// benchmark appears several times (e.g. -count=3), the best measurement
// is gated, which keeps shared-runner noise from failing honest pushes.
// A budgeted benchmark missing from the input is a failure: the gate
// must not silently pass because a benchmark was renamed or skipped.
//
// Budgets live in BENCH_mcf.json under "ci_budget":
//
//	"ci_budget": {
//	  "tolerance_pct": 15,
//	  "benchmarks": {
//	    "BenchmarkMaxConcurrentFlow": {"ns_per_op": 652000000, "allocs_per_op": 611}
//	  }
//	}
//
// Re-baseline by editing those numbers in the same commit that makes a
// deliberate performance trade (the diff then documents the regression).
//
// # Fold mode
//
// With -bench-file the gate is skipped and the measurements are instead
// folded into the budget file's "multicore" section — the one-command
// workflow for refreshing BENCH_mcf.json from CI's bench-multicore
// artifact (download it from the Actions run, then):
//
//	go run ./cmd/benchgate -bench-file bench-multicore.txt -budget BENCH_mcf.json
//
// -fold is the shorthand for exactly that invocation: it folds from the
// artifact's conventional filename, bench-multicore.txt, in the current
// directory (an explicit -bench-file overrides the filename):
//
//	go run ./cmd/benchgate -fold -note "ubuntu-latest 4 vCPU"
//
// -note records measurement provenance (host, caveats) in the folded
// section, so a fold from an unusual environment documents itself.
// Every other top-level section of the budget file is preserved
// byte-for-byte, in its original order; only "multicore" is replaced
// (or appended). Commit the refreshed file on its own.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

type budgetFile struct {
	CIBudget struct {
		TolerancePct float64 `json:"tolerance_pct"`
		// TolerancesPct overrides the default tolerance per metric key
		// (e.g. a wider ns_per_op band for cross-machine variance while
		// allocs_per_op — machine-independent — stays tight).
		TolerancesPct map[string]float64            `json:"tolerances_pct"`
		Benchmarks    map[string]map[string]float64 `json:"benchmarks"`
	} `json:"ci_budget"`
}

// metricUnits maps budget keys to the unit strings `go test -bench` prints.
var metricUnits = map[string]string{
	"ns_per_op":     "ns/op",
	"bytes_per_op":  "B/op",
	"allocs_per_op": "allocs/op",
}

func main() {
	budgetPath := flag.String("budget", "BENCH_mcf.json", "budget JSON (ci_budget section)")
	input := flag.String("input", "", "bench output file (default: stdin)")
	benchFile := flag.String("bench-file", "", "fold mode: parse this bench output (e.g. the downloaded bench-multicore artifact) and write its numbers into the budget file's \"multicore\" section instead of gating")
	foldFlag := flag.Bool("fold", false, "fold mode with the conventional artifact name bench-multicore.txt (shorthand for -bench-file bench-multicore.txt)")
	note := flag.String("note", "", "fold mode: provenance note recorded in the folded \"multicore\" section")
	flag.Parse()

	if *foldFlag && *benchFile == "" {
		*benchFile = "bench-multicore.txt"
	}
	if *benchFile != "" {
		if err := fold(*budgetPath, *benchFile, *note); err != nil {
			fatal("%v", err)
		}
		return
	}

	raw, err := os.ReadFile(*budgetPath)
	if err != nil {
		fatal("read budget: %v", err)
	}
	var bf budgetFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		fatal("parse budget %s: %v", *budgetPath, err)
	}
	if len(bf.CIBudget.Benchmarks) == 0 {
		fatal("budget %s has no ci_budget.benchmarks section", *budgetPath)
	}
	tol := bf.CIBudget.TolerancePct
	if tol <= 0 {
		tol = 15
	}

	var r io.Reader = os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal("open input: %v", err)
		}
		defer f.Close()
		r = f
	}
	measured := parseBench(r)

	names := make([]string, 0, len(bf.CIBudget.Benchmarks))
	for name := range bf.CIBudget.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		budget := bf.CIBudget.Benchmarks[name]
		got, ok := measured[name]
		if !ok {
			fmt.Printf("FAIL %s: benchmark missing from input (renamed or skipped?)\n", name)
			failed = true
			continue
		}
		metrics := make([]string, 0, len(budget))
		for m := range budget {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			unit, known := metricUnits[m]
			if !known {
				fmt.Printf("FAIL %s: unknown budget metric %q\n", name, m)
				failed = true
				continue
			}
			val, ok := got[unit]
			if !ok {
				fmt.Printf("FAIL %s: metric %s missing from input (run with -benchmem?)\n", name, unit)
				failed = true
				continue
			}
			mtol := tol
			if t, ok := bf.CIBudget.TolerancesPct[m]; ok && t > 0 {
				mtol = t
			}
			limit := budget[m] * (1 + mtol/100)
			status := "ok  "
			if val > limit {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s %s %s: %.0f (budget %.0f +%g%% = %.0f)\n",
				status, name, unit, val, budget[m], mtol, limit)
		}
	}
	if failed {
		fmt.Println("benchgate: regression detected")
		os.Exit(1)
	}
	fmt.Println("benchgate: all budgets met")
}

// parseBench extracts per-benchmark metrics from `go test -bench` output.
// Lines look like:
//
//	BenchmarkMaxConcurrentFlow-4   3   652000000 ns/op   120537 B/op   611 allocs/op
//
// The -N GOMAXPROCS suffix is stripped. For repeated measurements the
// minimum per metric is kept.
func parseBench(r io.Reader) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := out[name]
		if m == nil {
			m = map[string]float64{}
			out[name] = m
		}
		// fields[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if prev, ok := m[unit]; !ok || val < prev {
				m[unit] = val
			}
		}
	}
	return out
}

// multicoreSection is the shape written under the budget file's
// "multicore" key by fold mode. Benchmarks use the same metric keys as
// ci_budget ("ns_per_op", "bytes_per_op", "allocs_per_op") so a number
// can be promoted into a budget by copy-paste.
type multicoreSection struct {
	Source     string                        `json:"source"`
	Note       string                        `json:"note,omitempty"`
	Gomaxprocs int                           `json:"gomaxprocs,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// fold rewrites budgetPath so that its top-level "multicore" section
// holds the measurements parsed from benchPath (the downloaded
// bench-multicore artifact). All other top-level sections pass through
// byte-for-byte in their original order, so a fold produces a minimal,
// reviewable diff.
func fold(budgetPath, benchPath, note string) error {
	benchRaw, err := os.ReadFile(benchPath)
	if err != nil {
		return fmt.Errorf("read bench file: %w", err)
	}
	measured := parseBench(bytes.NewReader(benchRaw))
	if len(measured) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", benchPath)
	}
	budgetRaw, err := os.ReadFile(budgetPath)
	if err != nil {
		return fmt.Errorf("read budget: %w", err)
	}
	out, err := foldInto(budgetRaw, measured, benchProcs(benchRaw), filepath.Base(benchPath), note)
	if err != nil {
		return fmt.Errorf("fold into %s: %w", budgetPath, err)
	}
	if err := os.WriteFile(budgetPath, out, 0o644); err != nil {
		return fmt.Errorf("write budget: %w", err)
	}
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("benchgate: folded %d benchmark(s) from %s into %s \"multicore\":\n",
		len(names), benchPath, budgetPath)
	for _, name := range names {
		fmt.Printf("  %s\n", name)
	}
	return nil
}

// foldInto performs the pure part of fold: splice a freshly built
// "multicore" section into the budget JSON, leaving every other
// top-level section untouched (replace in place, or append when the
// section does not exist yet).
func foldInto(budget []byte, measured map[string]map[string]float64, procs int, benchFile, note string) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(budget))
	if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
		return nil, fmt.Errorf("budget is not a JSON object")
	}
	type section struct {
		key string
		raw json.RawMessage
	}
	var sections []section
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("read section key: %w", err)
		}
		key, ok := keyTok.(string)
		if !ok {
			return nil, fmt.Errorf("unexpected token %v for section key", keyTok)
		}
		// json.RawMessage keeps the value's original bytes, internal
		// indentation included, which is what makes the untouched
		// sections survive the round trip verbatim.
		var val json.RawMessage
		if err := dec.Decode(&val); err != nil {
			return nil, fmt.Errorf("section %q: %w", key, err)
		}
		sections = append(sections, section{key, val})
	}

	mc := multicoreSection{
		Source:     fmt.Sprintf("folded from %s by cmd/benchgate -bench-file", benchFile),
		Note:       note,
		Gomaxprocs: procs,
		Benchmarks: map[string]map[string]float64{},
	}
	for name, byUnit := range measured {
		metrics := map[string]float64{}
		for key, unit := range metricUnits {
			if v, ok := byUnit[unit]; ok {
				metrics[key] = v
			}
		}
		if len(metrics) > 0 {
			mc.Benchmarks[name] = metrics
		}
	}
	mcRaw, err := json.MarshalIndent(mc, "  ", "  ")
	if err != nil {
		return nil, err
	}

	replaced := false
	for i := range sections {
		if sections[i].key == "multicore" {
			sections[i].raw = mcRaw
			replaced = true
		}
	}
	if !replaced {
		sections = append(sections, section{"multicore", mcRaw})
	}

	var buf bytes.Buffer
	buf.WriteString("{\n")
	for i, s := range sections {
		fmt.Fprintf(&buf, "  %q: %s", s.key, s.raw)
		if i < len(sections)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("}\n")
	return buf.Bytes(), nil
}

// benchProcs extracts the GOMAXPROCS suffix shared by the benchmark
// lines ("BenchmarkFoo-4" → 4). Returns 0 when absent or inconsistent,
// in which case the field is omitted from the folded section.
func benchProcs(benchOutput []byte) int {
	procs := 0
	sc := bufio.NewScanner(bytes.NewReader(benchOutput))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		i := strings.LastIndex(fields[0], "-")
		if i < 0 {
			return 0
		}
		n, err := strconv.Atoi(fields[0][i+1:])
		if err != nil {
			return 0
		}
		if procs == 0 {
			procs = n
		} else if procs != n {
			return 0
		}
	}
	return procs
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(2)
}
