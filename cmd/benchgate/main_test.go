package main

import (
	"strings"
	"testing"
)

const foldBudget = `{
  "benchmark": "BenchmarkMaxConcurrentFlow",
  "environment": {
    "cores": 1,
    "note": "dev container"
  },
  "ci_budget": {
    "tolerance_pct": 15,
    "benchmarks": {
      "BenchmarkMaxConcurrentFlow": {"ns_per_op": 652000000, "allocs_per_op": 611}
    }
  }
}
`

const foldBench = `goos: linux
goarch: amd64
BenchmarkMaxConcurrentFlow-4             3   498000000 ns/op   120537 B/op   611 allocs/op
BenchmarkMaxConcurrentFlowParallel-4     3   201000000 ns/op   130001 B/op   702 allocs/op
PASS
`

func TestParseBenchKeepsMinimumOfRepeats(t *testing.T) {
	out := parseBench(strings.NewReader(
		"BenchmarkX-4 3 500 ns/op 10 allocs/op\nBenchmarkX-4 3 400 ns/op 12 allocs/op\n"))
	m := out["BenchmarkX"]
	if m == nil {
		t.Fatalf("BenchmarkX missing: %v", out)
	}
	if m["ns/op"] != 400 || m["allocs/op"] != 10 {
		t.Fatalf("want per-metric minimum (400 ns/op, 10 allocs/op), got %v", m)
	}
}

func TestFoldAppendsMulticoreAndPreservesOtherSections(t *testing.T) {
	measured := parseBench(strings.NewReader(foldBench))
	out, err := foldInto([]byte(foldBudget), measured, benchProcs([]byte(foldBench)), "bench-multicore.txt", "test note")
	if err != nil {
		t.Fatalf("foldInto: %v", err)
	}
	got := string(out)

	// Untouched sections must survive byte-for-byte, in order.
	for _, verbatim := range []string{
		`  "benchmark": "BenchmarkMaxConcurrentFlow",`,
		"  \"environment\": {\n    \"cores\": 1,\n    \"note\": \"dev container\"\n  },",
		`      "BenchmarkMaxConcurrentFlow": {"ns_per_op": 652000000, "allocs_per_op": 611}`,
	} {
		if !strings.Contains(got, verbatim) {
			t.Errorf("folded output lost verbatim section fragment %q:\n%s", verbatim, got)
		}
	}
	if strings.Index(got, `"benchmark"`) > strings.Index(got, `"environment"`) {
		t.Errorf("section order not preserved:\n%s", got)
	}

	for _, want := range []string{
		`"multicore"`,
		`"gomaxprocs": 4`,
		`"ns_per_op": 498000000`,
		`"BenchmarkMaxConcurrentFlowParallel"`,
		`folded from bench-multicore.txt`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("folded output missing %q:\n%s", want, got)
		}
	}
}

func TestFoldReplacesExistingMulticoreIdempotently(t *testing.T) {
	measured := parseBench(strings.NewReader(foldBench))
	procs := benchProcs([]byte(foldBench))
	once, err := foldInto([]byte(foldBudget), measured, procs, "bench-multicore.txt", "")
	if err != nil {
		t.Fatalf("first fold: %v", err)
	}
	twice, err := foldInto(once, measured, procs, "bench-multicore.txt", "")
	if err != nil {
		t.Fatalf("second fold: %v", err)
	}
	if string(once) != string(twice) {
		t.Fatalf("fold is not idempotent:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
	if n := strings.Count(string(twice), `"multicore"`); n != 1 {
		t.Fatalf("want exactly one multicore section after refold, got %d", n)
	}
}

func TestFoldRejectsNonObjectBudget(t *testing.T) {
	if _, err := foldInto([]byte(`[1, 2]`), map[string]map[string]float64{}, 0, "b.txt", ""); err == nil {
		t.Fatal("want error for non-object budget, got nil")
	}
}
