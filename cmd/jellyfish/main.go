// Command jellyfish builds and inspects Jellyfish topologies from the
// command line: generate a network, print its properties, evaluate its
// throughput, expand it, and emit a cabling blueprint.
//
// Usage:
//
//	jellyfish -switches 100 -ports 24 -degree 12 [-seed 1] [flags]
//
// Flags:
//
//	-throughput     evaluate optimal-routing throughput (random permutation)
//	-packet         evaluate flow-level throughput (kSP-8 + MPTCP)
//	-maxservers     binary-search the most servers this switch inventory
//	                supports at full throughput (warm-started incremental
//	                search; -trials bounds permutations per probe, -cold
//	                disables warm starts for A/B comparison)
//	-trials N       permutation matrices per feasibility probe (default 3)
//	-cold           solve every probe from scratch (same instances/streams)
//	-expand N       add N more switches incrementally before reporting
//	-blueprint      print the cable list (one "u v" pair per line)
//	-save FILE      write the full JSON blueprint to FILE
//	-load FILE      load a JSON blueprint instead of generating
//	-connectivity   report edge connectivity (min link failures to partition)
//	-fattree K      build a k-ary fat-tree instead (other topo flags ignored)
//	-workers N      CPU parallelism for evaluators (0 = all cores; results
//	                are identical for every worker count)
package main

import (
	"flag"
	"fmt"
	"os"

	"jellyfish"
)

func main() {
	switches := flag.Int("switches", 100, "number of top-of-rack switches")
	ports := flag.Int("ports", 24, "ports per switch")
	degree := flag.Int("degree", 12, "network ports per switch (rest attach servers)")
	seed := flag.Uint64("seed", 1, "random seed (construction is deterministic per seed)")
	expand := flag.Int("expand", 0, "incrementally add this many switches before reporting")
	fattree := flag.Int("fattree", 0, "build a k-ary fat-tree instead (k even)")
	saveFile := flag.String("save", "", "write the JSON blueprint to this file")
	loadFile := flag.String("load", "", "load a JSON blueprint instead of generating")
	connectivity := flag.Bool("connectivity", false, "report edge connectivity")
	throughput := flag.Bool("throughput", false, "evaluate optimal-routing throughput")
	packet := flag.Bool("packet", false, "evaluate flow-level (kSP-8 + MPTCP) throughput")
	maxServers := flag.Bool("maxservers", false, "binary-search the most servers supported at full throughput (uses -switches/-ports/-trials/-seed)")
	trials := flag.Int("trials", 3, "permutation matrices per feasibility probe of -maxservers")
	cold := flag.Bool("cold", false, "disable flow-solver warm starts in -maxservers (same instances, cold solves)")
	blueprint := flag.Bool("blueprint", false, "print the cabling blueprint (edge list)")
	workers := flag.Int("workers", 0, "CPU parallelism for evaluators (0 = all cores, 1 = serial)")
	flag.Parse()

	// -maxservers is an inventory-level search: it needs only the switch
	// count and port count, not the constructed topology (whose default
	// network degree may not even fit the given ports).
	if *maxServers {
		if *fattree > 0 || *loadFile != "" {
			fmt.Fprintln(os.Stderr, "-maxservers searches a jellyfish inventory; it needs -switches and -ports, not -fattree/-load")
			os.Exit(2)
		}
		got, err := jellyfish.CapacitySearch{
			Switches: *switches, Ports: *ports, Trials: *trials,
			Seed: *seed, Workers: *workers, ColdStart: *cold,
		}.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("max servers at full throughput: %d (%d %d-port switches, %d trials/probe)\n",
			got, *switches, *ports, *trials)
		return
	}

	var net *jellyfish.Topology
	if *loadFile != "" {
		f, err := os.Open(*loadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		net, err = jellyfish.ReadBlueprint(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else if *fattree > 0 {
		net = jellyfish.NewFatTree(*fattree)
	} else {
		net = jellyfish.New(jellyfish.Config{
			Switches: *switches, Ports: *ports, NetworkDegree: *degree, Seed: *seed,
		})
	}
	if *expand > 0 {
		if *fattree > 0 {
			fmt.Fprintln(os.Stderr, "fat-trees cannot be expanded incrementally; that is the point of the paper")
			os.Exit(2)
		}
		jellyfish.Expand(net, *expand, *ports, *degree, *seed+1)
	}

	stats := net.SwitchPathStats()
	fmt.Printf("topology:   %s\n", net)
	fmt.Printf("servers:    %d\n", net.NumServers())
	fmt.Printf("switches:   %d\n", net.NumSwitches())
	fmt.Printf("links:      %d\n", net.NumLinks())
	fmt.Printf("ports:      %d (free: %d)\n", net.TotalPorts(), net.TotalFreePorts())
	fmt.Printf("mean path:  %.3f switch hops\n", stats.Mean)
	fmt.Printf("diameter:   %d\n", stats.Diameter)
	if *connectivity {
		fmt.Printf("edge connectivity: %d\n", jellyfish.EdgeConnectivity(net))
	}
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := jellyfish.WriteBlueprint(net, f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("blueprint saved: %s\n", *saveFile)
	}
	if *throughput {
		fmt.Printf("optimal throughput:      %.4f of NIC rate\n", jellyfish.OptimalThroughput(net, *seed+2, *workers))
	}
	if *packet {
		res := jellyfish.PacketLevelThroughput(net, jellyfish.KSP8, jellyfish.MPTCP8Subflows, *seed+3, *workers)
		fmt.Printf("packet-level throughput: %.4f of NIC rate (Jain fairness %.4f)\n",
			res.MeanThroughput, res.Fairness)
	}
	if *blueprint {
		fmt.Println("cabling blueprint (switch pairs):")
		for _, e := range net.Graph.Edges() {
			fmt.Printf("%d %d\n", e.U, e.V)
		}
	}
}
