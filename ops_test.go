package jellyfish

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

// Sequential cross-goroutine use of one evaluator is race-free and
// bit-identical to single-goroutine use: the guard's acquire/release
// publishes the carried chain across the handoff. (Run under -race in CI.)
func TestWhatIfEvaluatorSequentialCrossGoroutine(t *testing.T) {
	base := New(Config{Switches: 24, Ports: 10, NetworkDegree: 6, Seed: 31})
	degraded := base.Clone()
	FailRandomLinks(degraded, 0.1, 32)

	single := NewWhatIfEvaluator(1)
	want := []float64{single.OptimalThroughput(base, 33), single.OptimalThroughput(degraded, 33)}

	ev := NewWhatIfEvaluator(1)
	got := make([]float64, 2)
	handoff := make(chan struct{})
	done := make(chan struct{})
	go func() {
		got[0] = ev.OptimalThroughput(base, 33)
		close(handoff)
	}()
	go func() {
		<-handoff
		got[1] = ev.OptimalThroughput(degraded, 33)
		close(done)
	}()
	<-done
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: cross-goroutine chain %v != single-goroutine chain %v", i, got, want)
		}
	}
}

// Overlapping evaluations must panic — loudly, deterministically — rather
// than silently corrupt the warm chain.
func TestWhatIfEvaluatorConcurrentUsePanics(t *testing.T) {
	ev := NewWhatIfEvaluator(1)
	net := New(Config{Switches: 12, Ports: 8, NetworkDegree: 4, Seed: 1})
	ev.busy.Store(true) // simulate an evaluation in flight
	defer ev.busy.Store(false)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping OptimalThroughput did not panic")
		}
	}()
	ev.OptimalThroughput(net, 2)
}

// Hammering one evaluator from many goroutines must never race (the -race
// build is the assertion): every call either completes under the guard or
// panics; no interleaving touches the chain unsynchronized.
func TestWhatIfEvaluatorGuardUnderContention(t *testing.T) {
	ev := NewWhatIfEvaluator(1)
	net := New(Config{Switches: 16, Ports: 8, NetworkDegree: 4, Seed: 5})
	const goroutines = 8
	var wg sync.WaitGroup
	var completed, panicked atomic.Int64
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					panicked.Add(1)
				}
			}()
			<-start
			ev.OptimalThroughput(net, 7)
			completed.Add(1)
		}()
	}
	close(start)
	wg.Wait()
	if completed.Load()+panicked.Load() != goroutines {
		t.Fatalf("%d completed + %d panicked != %d calls", completed.Load(), panicked.Load(), goroutines)
	}
	if completed.Load() == 0 {
		t.Fatal("every call panicked; at least the first acquirer must complete")
	}
	// The evaluator must remain usable: the guard was released by every
	// completed call, and the chain still evaluates deterministically.
	after := ev.OptimalThroughput(net, 7)
	if after <= 0 || after > 1 {
		t.Fatalf("post-contention evaluation out of range: %v", after)
	}
}

// State/SetState round-trip: resuming a chain from a checkpoint is
// bit-identical to continuing the chain that produced it — the cache
// equivalence the planning service's determinism rests on.
func TestWhatIfEvaluatorStateCheckpointResume(t *testing.T) {
	base := New(Config{Switches: 24, Ports: 10, NetworkDegree: 6, Seed: 41})
	step1 := base.Clone()
	FailRandomLinks(step1, 0.08, 42)
	step2 := step1.Clone()
	Expand(step2, 2, 10, 6, 43)

	full := NewWhatIfEvaluator(1)
	lam0 := full.OptimalThroughput(base, 44)
	checkpoint := full.State()
	if checkpoint == nil {
		t.Fatal("no state after an evaluation")
	}
	lam1 := full.OptimalThroughput(step1, 44)
	lam2 := full.OptimalThroughput(step2, 44)

	resumed := NewWhatIfEvaluator(1)
	resumed.SetState(checkpoint)
	if got := resumed.OptimalThroughput(step1, 44); got != lam1 {
		t.Fatalf("resumed step1 throughput %v != chained %v", got, lam1)
	}
	if got := resumed.OptimalThroughput(step2, 44); got != lam2 {
		t.Fatalf("resumed step2 throughput %v != chained %v", got, lam2)
	}
	_ = lam0
}

func TestBlueprintRoundTripPublic(t *testing.T) {
	net := New(Config{Switches: 25, Ports: 10, NetworkDegree: 6, Seed: 1})
	var buf bytes.Buffer
	if err := WriteBlueprint(net, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBlueprint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumServers() != net.NumServers() || got.NumLinks() != net.NumLinks() {
		t.Fatalf("round trip changed topology: %s vs %s", got, net)
	}
}

func TestPlanRewiringPublic(t *testing.T) {
	net := New(Config{Switches: 20, Ports: 12, NetworkDegree: 6, Seed: 2})
	grown := net.Clone()
	Expand(grown, 2, 12, 6, 3)
	plan := PlanRewiring(net, grown)
	if plan.Moves() == 0 {
		t.Fatal("expansion produced no cable moves")
	}
	// Rewiring must be bounded by the added ports (§4.2).
	if len(plan.Add) > 2*6 {
		t.Fatalf("added %d cables for 2 switches of degree 6", len(plan.Add))
	}
}

func TestMiswiringWorkflow(t *testing.T) {
	blueprint := New(Config{Switches: 40, Ports: 10, NetworkDegree: 6, Seed: 4})
	built := blueprint.Clone()
	n := SimulateMiswirings(built, 3, 5)
	if n != 3 {
		t.Fatalf("applied %d miswirings, want 3", n)
	}
	found := DetectMiswirings(blueprint, built)
	if len(found) != 6 {
		t.Fatalf("detected %d divergences for 3 swaps, want 6", len(found))
	}
	// §6.1: a few miswirings leave just another random graph — validate it
	// still carries traffic at essentially the same rate.
	orig := OptimalThroughput(blueprint, 6)
	after := OptimalThroughput(built, 6)
	if after < orig*0.95 {
		t.Fatalf("3 miswirings cost too much throughput: %v -> %v", orig, after)
	}
}

func TestEdgeConnectivityPublic(t *testing.T) {
	net := New(Config{Switches: 30, Ports: 10, NetworkDegree: 6, Seed: 7})
	if c := EdgeConnectivity(net); c != 6 {
		t.Fatalf("edge connectivity = %d, want 6 (r-connected, §4.3)", c)
	}
}

func TestExpansionQuality(t *testing.T) {
	// Jellyfish graphs are near-Ramanujan expanders — the structural fact
	// behind the paper's bandwidth results (§3 footnote 5).
	net := New(Config{Switches: 100, Ports: 9, NetworkDegree: 8, Seed: 8})
	lambda2, opt := ExpansionQuality(net, 8)
	if lambda2 > opt*1.25 {
		t.Fatalf("lambda2 = %v far above Ramanujan bound %v", lambda2, opt)
	}
	if lambda2 <= 0 {
		t.Fatalf("lambda2 = %v", lambda2)
	}
}

func TestCriticalLinks(t *testing.T) {
	net := New(Config{Switches: 30, Ports: 10, NetworkDegree: 6, Seed: 9})
	if bs := CriticalLinks(net); len(bs) != 0 {
		t.Fatalf("healthy jellyfish has critical links: %v", bs)
	}
	// Degrade until bridges appear; they must be real cut edges.
	FailRandomLinks(net, 0.6, 10)
	for _, b := range CriticalLinks(net) {
		comps := len(net.Graph.Components())
		net.Graph.RemoveEdge(b.U, b.V)
		if len(net.Graph.Components()) <= comps {
			t.Fatalf("reported critical link %v is not a cut edge", b)
		}
		net.Graph.AddEdge(b.U, b.V)
	}
}
