package jellyfish

import (
	"bytes"
	"testing"
)

func TestBlueprintRoundTripPublic(t *testing.T) {
	net := New(Config{Switches: 25, Ports: 10, NetworkDegree: 6, Seed: 1})
	var buf bytes.Buffer
	if err := WriteBlueprint(net, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBlueprint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumServers() != net.NumServers() || got.NumLinks() != net.NumLinks() {
		t.Fatalf("round trip changed topology: %s vs %s", got, net)
	}
}

func TestPlanRewiringPublic(t *testing.T) {
	net := New(Config{Switches: 20, Ports: 12, NetworkDegree: 6, Seed: 2})
	grown := net.Clone()
	Expand(grown, 2, 12, 6, 3)
	plan := PlanRewiring(net, grown)
	if plan.Moves() == 0 {
		t.Fatal("expansion produced no cable moves")
	}
	// Rewiring must be bounded by the added ports (§4.2).
	if len(plan.Add) > 2*6 {
		t.Fatalf("added %d cables for 2 switches of degree 6", len(plan.Add))
	}
}

func TestMiswiringWorkflow(t *testing.T) {
	blueprint := New(Config{Switches: 40, Ports: 10, NetworkDegree: 6, Seed: 4})
	built := blueprint.Clone()
	n := SimulateMiswirings(built, 3, 5)
	if n != 3 {
		t.Fatalf("applied %d miswirings, want 3", n)
	}
	found := DetectMiswirings(blueprint, built)
	if len(found) != 6 {
		t.Fatalf("detected %d divergences for 3 swaps, want 6", len(found))
	}
	// §6.1: a few miswirings leave just another random graph — validate it
	// still carries traffic at essentially the same rate.
	orig := OptimalThroughput(blueprint, 6)
	after := OptimalThroughput(built, 6)
	if after < orig*0.95 {
		t.Fatalf("3 miswirings cost too much throughput: %v -> %v", orig, after)
	}
}

func TestEdgeConnectivityPublic(t *testing.T) {
	net := New(Config{Switches: 30, Ports: 10, NetworkDegree: 6, Seed: 7})
	if c := EdgeConnectivity(net); c != 6 {
		t.Fatalf("edge connectivity = %d, want 6 (r-connected, §4.3)", c)
	}
}

func TestExpansionQuality(t *testing.T) {
	// Jellyfish graphs are near-Ramanujan expanders — the structural fact
	// behind the paper's bandwidth results (§3 footnote 5).
	net := New(Config{Switches: 100, Ports: 9, NetworkDegree: 8, Seed: 8})
	lambda2, opt := ExpansionQuality(net, 8)
	if lambda2 > opt*1.25 {
		t.Fatalf("lambda2 = %v far above Ramanujan bound %v", lambda2, opt)
	}
	if lambda2 <= 0 {
		t.Fatalf("lambda2 = %v", lambda2)
	}
}

func TestCriticalLinks(t *testing.T) {
	net := New(Config{Switches: 30, Ports: 10, NetworkDegree: 6, Seed: 9})
	if bs := CriticalLinks(net); len(bs) != 0 {
		t.Fatalf("healthy jellyfish has critical links: %v", bs)
	}
	// Degrade until bridges appear; they must be real cut edges.
	FailRandomLinks(net, 0.6, 10)
	for _, b := range CriticalLinks(net) {
		comps := len(net.Graph.Components())
		net.Graph.RemoveEdge(b.U, b.V)
		if len(net.Graph.Components()) <= comps {
			t.Fatalf("reported critical link %v is not a cut edge", b)
		}
		net.Graph.AddEdge(b.U, b.V)
	}
}
