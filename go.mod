module jellyfish

go 1.24
