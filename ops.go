package jellyfish

import (
	"io"

	"jellyfish/internal/graph"
	"jellyfish/internal/maxflow"
	"jellyfish/internal/placement"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

// Operational tooling: blueprints, rewiring plans, miswiring handling, and
// structural health checks — the §6 deployment story as an API.

// Edge is an undirected switch-switch cable (U < V).
type Edge = graph.Edge

// WriteBlueprint serializes the topology's construction blueprint (JSON):
// per-switch port budgets, server counts, and the cable list handed to the
// cabling crew.
func WriteBlueprint(t *Topology, w io.Writer) error { return t.WriteBlueprint(w) }

// ReadBlueprint loads a topology from a blueprint, validating port budgets
// and graph simplicity.
func ReadBlueprint(r io.Reader) (*Topology, error) { return topology.ReadBlueprint(r) }

// RewirePlan lists cable operations turning one topology into another.
type RewirePlan = topology.RewirePlan

// PlanRewiring diffs two topologies' cable sets — the §4.2/§6.2 promise
// that expansion rewiring "can be automatically identified".
func PlanRewiring(before, after *Topology) RewirePlan {
	return topology.PlanRewiring(before, after)
}

// Miswiring is one blueprint/as-built divergence.
type Miswiring = placement.Miswiring

// SimulateMiswirings applies `count` random cable-endpoint swaps in place
// (a careless cabling crew), returning how many were applied.
func SimulateMiswirings(t *Topology, count int, seed uint64) int {
	return placement.ApplyRandomMiswirings(t, count, rng.New(seed))
}

// DetectMiswirings compares an as-built network against its blueprint, as
// a link-layer discovery sweep would (§6.1).
func DetectMiswirings(blueprint, built *Topology) []Miswiring {
	return placement.DetectMiswirings(blueprint, built)
}

// EdgeConnectivity returns the minimum number of link failures that can
// disconnect the network. For Jellyfish this is almost surely the network
// degree r (§4.3).
func EdgeConnectivity(t *Topology) int { return maxflow.EdgeConnectivity(t.Graph) }

// ExpansionQuality reports the second adjacency eigenvalue of an r-regular
// topology together with the Ramanujan optimum 2√(r−1): the closer the
// two, the better an expander — and the better the capacity — the graph
// is. Panics if the switch graph is not r-regular.
func ExpansionQuality(t *Topology, r int) (lambda2, optimum float64) {
	return t.Graph.SecondEigenvalue(r, 0), graph.RamanujanBound(r)
}

// CriticalLinks returns the cables whose single failure would disconnect
// some pair of switches. A healthy Jellyfish has none (it is r-connected);
// after heavy failures this is the repair-priority list.
func CriticalLinks(t *Topology) []Edge { return t.Graph.Bridges() }
