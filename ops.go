package jellyfish

import (
	"io"
	"sync/atomic"

	"jellyfish/internal/graph"
	"jellyfish/internal/maxflow"
	"jellyfish/internal/mcf"
	"jellyfish/internal/metrics"
	"jellyfish/internal/placement"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
	"jellyfish/internal/traffic"
)

// Operational tooling: blueprints, rewiring plans, miswiring handling, and
// structural health checks — the §6 deployment story as an API.

// Edge is an undirected switch-switch cable (U < V).
type Edge = graph.Edge

// WriteBlueprint serializes the topology's construction blueprint (JSON):
// per-switch port budgets, server counts, and the cable list handed to the
// cabling crew.
func WriteBlueprint(t *Topology, w io.Writer) error { return t.WriteBlueprint(w) }

// ReadBlueprint loads a topology from a blueprint, validating port budgets
// and graph simplicity.
func ReadBlueprint(r io.Reader) (*Topology, error) { return topology.ReadBlueprint(r) }

// RewirePlan lists cable operations turning one topology into another.
type RewirePlan = topology.RewirePlan

// PlanRewiring diffs two topologies' cable sets — the §4.2/§6.2 promise
// that expansion rewiring "can be automatically identified".
func PlanRewiring(before, after *Topology) RewirePlan {
	return topology.PlanRewiring(before, after)
}

// Miswiring is one blueprint/as-built divergence.
type Miswiring = placement.Miswiring

// SimulateMiswirings applies `count` random cable-endpoint swaps in place
// (a careless cabling crew), returning how many were applied.
func SimulateMiswirings(t *Topology, count int, seed uint64) int {
	return placement.ApplyRandomMiswirings(t, count, rng.New(seed))
}

// DetectMiswirings compares an as-built network against its blueprint, as
// a link-layer discovery sweep would (§6.1).
func DetectMiswirings(blueprint, built *Topology) []Miswiring {
	return placement.DetectMiswirings(blueprint, built)
}

// EdgeConnectivity returns the minimum number of link failures that can
// disconnect the network. For Jellyfish this is almost surely the network
// degree r (§4.3).
func EdgeConnectivity(t *Topology) int { return maxflow.EdgeConnectivity(t.Graph) }

// ExpansionQuality reports the second adjacency eigenvalue of an r-regular
// topology together with the Ramanujan optimum 2√(r−1): the closer the
// two, the better an expander — and the better the capacity — the graph
// is. Panics if the switch graph is not r-regular.
func ExpansionQuality(t *Topology, r int) (lambda2, optimum float64) {
	return t.Graph.SecondEigenvalue(r, 0), graph.RamanujanBound(r)
}

// CriticalLinks returns the cables whose single failure would disconnect
// some pair of switches. A healthy Jellyfish has none (it is r-connected);
// after heavy failures this is the repair-priority list.
func CriticalLinks(t *Topology) []Edge { return t.Graph.Bridges() }

// A WhatIfEvaluator scores sequences of related what-if scenarios —
// failures, repairs, expansions, re-balancing — with optimal-routing
// throughput, warm-starting each evaluation from the previous scenario's
// flow-solver solution (DESIGN.md §9). Scenario sequences an operator
// explores are exactly the related-instance chains the incremental solver
// feeds on: each step perturbs a few cables or a few commodities, so most
// of the converged solver state carries over. Evaluations through one
// handle are deterministic: the same scenario sequence yields the same
// numbers on any worker count, and every number carries the solver's
// usual primal/dual accuracy guarantee.
//
// A WhatIfEvaluator enforces a single-evaluation-at-a-time contract:
// concurrent calls would interleave the warm chain in scheduling order,
// silently destroying the determinism guarantee above, so overlapping
// calls panic instead (an atomic guard, cheap enough to always be on).
// Sequential use from different goroutines is safe — the guard's
// acquire/release pair publishes the carried state across the handoff —
// which is exactly how the planning service drives one evaluator per
// shard worker. For independent concurrent sequences, use one evaluator
// each.
type WhatIfEvaluator struct {
	sv   *mcf.Solver
	st   *mcf.State
	srv  []int // server→switch scratch; the busy guard serializes access
	busy atomic.Bool
}

// NewWhatIfEvaluator returns a reusable evaluator. workers bounds the
// flow solver's CPU parallelism per evaluation (0 = all cores).
func NewWhatIfEvaluator(workers int) *WhatIfEvaluator {
	return &WhatIfEvaluator{sv: mcf.NewSolver(mcf.Options{Workers: workers})}
}

// OptimalThroughput is jellyfish.OptimalThroughput evaluated through the
// handle: identical traffic derivation and accuracy, but warm-started
// from the previous evaluation when the topologies are related (an
// unrelated topology falls back to a cold solve automatically).
//
// Panics if another evaluation is in flight on the same evaluator (see
// the type's concurrency contract).
func (e *WhatIfEvaluator) OptimalThroughput(t *Topology, seed uint64) float64 {
	e.acquire("OptimalThroughput")
	defer e.busy.Store(false)
	e.srv = t.ServerSwitchesInto(e.srv)
	pat := traffic.RandomPermutation(e.srv, rng.New(seed).Split("traffic"))
	var res mcf.Result
	res, e.st = e.sv.Solve(t.Graph, pat.Commodities(), e.st)
	return metrics.Clamp01(res.Lambda)
}

// SetInterrupt installs a cooperative cancellation poll on the
// evaluator's flow solver, bounding cancellation latency to one
// Garg–Könemann phase per evaluation. A fired interrupt truncates the
// evaluation in flight — callers that observe their own cancellation
// signal must discard that value and must NOT checkpoint the
// evaluator's state (the truncated state would poison later warm
// resumes; the solver's own maturity gate rejects it on seeding, but a
// checkpoint cache keyed as "converged" has no such gate). A nil or
// never-firing poll changes nothing.
func (e *WhatIfEvaluator) SetInterrupt(f func() bool) {
	e.acquire("SetInterrupt")
	defer e.busy.Store(false)
	e.sv.SetInterrupt(f)
}

// Reset drops the carried solver state, forcing the next evaluation to
// start cold (useful when switching to an unrelated network, though the
// solver's own overlap check would catch that too).
func (e *WhatIfEvaluator) Reset() {
	e.acquire("Reset")
	defer e.busy.Store(false)
	e.st = nil
}

// State returns the warm snapshot carried from the last evaluation (nil
// before any). mcf.State values are immutable, so the snapshot may be
// cached and shared freely — the planning service checkpoints scenario
// chains this way, keyed by the deterministic chain position that
// produced them (DESIGN.md §10).
func (e *WhatIfEvaluator) State() *mcf.State {
	e.acquire("State")
	defer e.busy.Store(false)
	return e.st
}

// SetState installs a warm snapshot as if the evaluator's previous
// evaluation had produced it, so a chain can resume from a cached
// checkpoint. Evaluations after SetState(st) are bit-identical to
// evaluations after the sequence that produced st — that equivalence is
// what lets a service cache chain prefixes without changing any response.
func (e *WhatIfEvaluator) SetState(st *mcf.State) {
	e.acquire("SetState")
	defer e.busy.Store(false)
	e.st = st
}

// acquire takes the single-evaluation guard or panics. The matching
// release is an atomic store, so sequential cross-goroutine use observes
// a consistent chain (the acquire/release pair is the synchronization).
func (e *WhatIfEvaluator) acquire(op string) {
	if !e.busy.CompareAndSwap(false, true) {
		panic("jellyfish: concurrent " + op + " on a WhatIfEvaluator; use one evaluator per concurrent sequence (see the type's contract)")
	}
}
