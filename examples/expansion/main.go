// Expansion: grow a data center one rack at a time — the scenario that
// motivates Jellyfish (paper §1, §4.2). Starting from 20 racks, we add
// racks in small increments and watch path length and throughput stay
// stable, with rewiring limited to a couple of cables per new rack.
package main

import (
	"fmt"

	"jellyfish"
)

func main() {
	const (
		ports  = 12
		degree = 8 // 4 servers per rack switch
	)
	net := jellyfish.New(jellyfish.Config{
		Switches: 20, Ports: ports, NetworkDegree: degree, Seed: 1,
	})

	fmt.Println("growing a data center rack by rack:")
	fmt.Printf("%8s %8s %10s %10s %12s\n", "racks", "servers", "mean_path", "diameter", "throughput")
	report := func() {
		stats := net.SwitchPathStats()
		lambda := jellyfish.OptimalThroughput(net, 99)
		fmt.Printf("%8d %8d %10.3f %10d %12.3f\n",
			net.NumSwitches(), net.NumServers(), stats.Mean, stats.Diameter, lambda)
	}
	report()

	// Each expansion step splices in 10 racks: per added rack, one random
	// existing cable is removed and two are added per pair of free ports —
	// no forklift upgrade, unlike a fat-tree which would need replacing.
	for step := 1; step <= 5; step++ {
		jellyfish.Expand(net, 10, ports, degree, uint64(step))
		report()
	}

	// Heterogeneous growth: newer 16-port switches join the same fabric.
	fmt.Println("\nadding 10 newer 16-port switches (8 servers each) to the same fabric:")
	portsList := make([]int, net.NumSwitches())
	serversList := make([]int, net.NumSwitches())
	copy(portsList, net.Ports)
	copy(serversList, net.Servers)
	for i := 0; i < 10; i++ {
		portsList = append(portsList, 16)
		serversList = append(serversList, 8)
	}
	het := jellyfish.NewHeterogeneous(portsList, serversList, 7)
	stats := het.SwitchPathStats()
	fmt.Printf("heterogeneous fabric: %d servers, mean path %.3f, diameter %d\n",
		het.NumServers(), stats.Mean, stats.Diameter)
}
