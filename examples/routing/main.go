// Routing: the paper's §5 finding reproduced as a demo — standard ECMP
// cannot exploit Jellyfish's capacity because it confines flows to
// shortest paths; k-shortest-path routing with MPTCP recovers it.
package main

import (
	"fmt"

	"jellyfish"
)

func main() {
	// A Jellyfish at roughly the paper's Table-1 load level.
	net := jellyfish.New(jellyfish.Config{
		Switches: 60, Ports: 12, NetworkDegree: 9, Seed: 3,
	})
	fmt.Printf("topology: %s (%d servers)\n\n", net, net.NumServers())

	fmt.Println("mean per-server throughput (fraction of NIC rate):")
	fmt.Printf("%-22s %10s %10s\n", "congestion control", "ECMP-8", "kSP-8")
	for _, proto := range []jellyfish.TransportProtocol{
		jellyfish.TCP1Flow, jellyfish.TCP8Flows, jellyfish.MPTCP8Subflows,
	} {
		ecmp := jellyfish.PacketLevelThroughput(net, jellyfish.ECMP8, proto, 11)
		ksp := jellyfish.PacketLevelThroughput(net, jellyfish.KSP8, proto, 11)
		fmt.Printf("%-22s %9.1f%% %9.1f%%\n", proto, 100*ecmp.MeanThroughput, 100*ksp.MeanThroughput)
	}

	// Why: ECMP leaves many links on few (or no) paths — Fig. 9.
	fmt.Println("\npath diversity per directed link (why ECMP underperforms):")
	for _, scheme := range []jellyfish.RoutingScheme{jellyfish.ECMP8, jellyfish.ECMP64, jellyfish.KSP8} {
		counts := jellyfish.LinkPathCounts(net, scheme, 13)
		atMost2 := 0
		for _, c := range counts {
			if c <= 2 {
				atMost2++
			}
		}
		fmt.Printf("  %-18s median %2d paths/link, %4.1f%% of links on ≤2 paths\n",
			scheme, counts[len(counts)/2], 100*float64(atMost2)/float64(len(counts)))
	}
	fmt.Println("\npaper: 55% of links on ≤2 ECMP paths vs 6% under 8-shortest-path routing")
}
