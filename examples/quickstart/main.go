// Quickstart: build a Jellyfish network, inspect its structure, and
// measure its throughput under the paper's two evaluation methodologies.
package main

import (
	"fmt"

	"jellyfish"
)

func main() {
	// A Jellyfish of 80 top-of-rack switches with 12 ports each: 8 ports
	// form the random interconnect, 4 attach servers → 320 servers.
	net := jellyfish.New(jellyfish.Config{
		Switches:      80,
		Ports:         12,
		NetworkDegree: 8,
		Seed:          1,
	})
	fmt.Println("built:", net)

	// Structure: random graphs have short paths — the source of
	// Jellyfish's capacity advantage (paper §3).
	stats := net.SwitchPathStats()
	fmt.Printf("mean inter-switch path: %.2f hops, diameter %d\n", stats.Mean, stats.Diameter)

	// Capacity with ideal routing: the largest fraction of every server's
	// NIC rate deliverable simultaneously under random-permutation traffic.
	lambda := jellyfish.OptimalThroughput(net, 7)
	fmt.Printf("optimal-routing throughput: %.3f of NIC rate\n", lambda)

	// Capacity with a realizable data plane: 8-shortest-path routing and
	// MPTCP congestion control (paper §5).
	res := jellyfish.PacketLevelThroughput(net, jellyfish.KSP8, jellyfish.MPTCP8Subflows, 7)
	fmt.Printf("kSP-8 + MPTCP throughput:   %.3f of NIC rate (fairness %.3f)\n",
		res.MeanThroughput, res.Fairness)

	// The same equipment as a fat-tree, more servers: compare against the
	// fat-tree built from identical switches.
	ft := jellyfish.NewFatTree(12) // 180 switches with 12 ports, 432 servers
	fmt.Printf("\nfat-tree(k=12): %d servers on %d switches, mean path %.2f\n",
		ft.NumServers(), ft.NumSwitches(), ft.SwitchPathStats().Mean)
	jf := jellyfish.SpreadServers(ft.NumSwitches(), 12, ft.NumServers(), 2)
	fmt.Printf("same-equipment jellyfish: mean path %.2f — shorter paths, spare capacity for more servers\n",
		jf.SwitchPathStats().Mean)
}
