// Cabling: plan the physical build of a Jellyfish cluster (paper §6).
// Compares naive switch-on-rack placement against the paper's central
// switch-cluster optimization, and shows the locality-constrained 2-layer
// Jellyfish used for container-scale deployments.
package main

import (
	"fmt"

	"jellyfish"
	"jellyfish/internal/placement"
	"jellyfish/internal/rng"
)

func main() {
	// A ~1000-server small cluster: 250 switches, 12 ports, 4 servers each.
	net := jellyfish.New(jellyfish.Config{
		Switches: 250, Ports: 12, NetworkDegree: 8, Seed: 5,
	})
	fmt.Printf("cluster: %s (%d servers)\n\n", net, net.NumServers())

	report := func(name string, l placement.Layout) {
		rep := l.PlanCables(net)
		fmt.Printf("%-24s %5d cables, total %7.0f m, mean %5.2f m, max %5.2f m, optical %d\n",
			name, rep.Cables, rep.TotalMeters, rep.MeanMeters, rep.MaxMeters, rep.OpticalCables)
	}
	report("switch-on-rack grid:", placement.Layout{RackPitch: 1.2})
	report("central switch-cluster:", placement.Layout{RackPitch: 1.2, SwitchCluster: true})
	fmt.Println("\nthe §6.2 optimization: place all switches centrally — every cable stays electrical (<10 m)")

	// Container scale: restrict links to be container-local and measure the
	// throughput cost (Fig. 14).
	fmt.Println("\n2-layer jellyfish (5 containers × 16 switches, k=12, r=8):")
	fmt.Printf("%12s %14s %12s\n", "local_frac", "measured_local", "throughput")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		top := placement.TwoLayerJellyfish(5, 16, 12, 8, frac, rng.New(7))
		measured := placement.LocalLinkFraction(top.Graph, 16)
		lambda := jellyfish.OptimalThroughput(top, 9)
		fmt.Printf("%12.2f %14.2f %12.3f\n", frac, measured, lambda)
	}
	fmt.Println("\npaper: ≤6% throughput loss with 60% of links kept inside pods")
}
