#!/bin/sh
# A scripted operator session against a local jellyfishd (DESIGN.md §10).
# Run from the repository root:
#
#	sh examples/operations/daemon_session.sh
#
# The same day-0/day-2 workflow main.go drives through the library,
# spoken over HTTP/JSON instead — what a planning dashboard or a fleet
# automation job would send. Every response here is deterministic: the
# same request body returns byte-identical JSON no matter how many
# -workers the daemon runs or what its caches hold, so these calls are
# safe to retry, fan out, and diff.
set -eu

ADDR=127.0.0.1:8093
BASE="http://$ADDR"
STATE=$(mktemp -d)

go build -o /tmp/jellyfishd ./cmd/jellyfishd
# -state-dir makes the job store durable: submissions are journaled
# before they are acknowledged, so jobs survive daemon restarts — even
# kill -9 — as demonstrated at the end of this session (DESIGN.md §14).
/tmp/jellyfishd -addr "$ADDR" -workers 4 -state-dir "$STATE" &
DAEMON=$!
# On exit: SIGTERM the daemon (it drains — finishes jobs, snapshots,
# closes the store), wait for it, then remove the session's state dir.
trap 'kill $DAEMON 2>/dev/null; wait $DAEMON 2>/dev/null; rm -rf "$STATE"' EXIT INT TERM

# Wait for the daemon to come up.
for i in $(seq 1 50); do
	curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
	sleep 0.1
done
echo "== healthz"
curl -fsS "$BASE/healthz"; echo

# Day 0: design the network. The response carries structural stats and
# the full cabling blueprint (same JSON WriteBlueprint emits).
echo "== design 50x12 (networkDegree 8)"
curl -fsS "$BASE/v1/design" -d '{"switches":50,"ports":12,"networkDegree":8,"seed":42}' |
	head -c 200; echo " ..."

# Throughput under random-permutation traffic. Naming the topology by
# its design spec lets the daemon route this to the shard already warm
# from the design call; an inline {"blueprint": ...} works too.
echo "== evaluate (3 trials)"
curl -fsS "$BASE/v1/evaluate" \
	-d '{"topology":{"design":{"switches":50,"ports":12,"networkDegree":8,"seed":42}},"seed":9,"trials":3}'
echo

# The same evaluation under a realizable data plane instead of the
# optimal-routing solver: kSP-8 routes + coupled MPTCP (Table 1's
# methodology). Repeated transport evaluations of one topology family
# hit the daemon's compiled-instance cache (the "sim:" tier).
echo "== evaluate, transport plane (mptcp8 over ksp8)"
curl -fsS "$BASE/v1/evaluate" \
	-d '{"topology":{"design":{"switches":50,"ports":12,"networkDegree":8,"seed":42}},"seed":9,"trials":3,"transport":{"protocol":"mptcp8","routing":"ksp8"}}'
echo

# What-if chain: drill 10% link failures, then a switch failure, then an
# expansion by 5 racks. Steps warm-start from the previous step's solve
# (DESIGN.md §9); re-running with a longer chain resumes from the cached
# prefix instead of recomputing it.
echo "== what-if chain"
curl -fsS "$BASE/v1/whatif" -d '{
  "base": {"design":{"switches":50,"ports":12,"networkDegree":8,"seed":42}},
  "seed": 21,
  "scenarios": [
    {"failLinks": {"fraction": 0.10, "seed": 17}},
    {"failSwitches": {"fraction": 0.05, "seed": 19}},
    {"expand": {"switches": 5, "ports": 12, "networkDegree": 8, "seed": 11}}
  ]}'
echo

# Heavy work goes through the job API instead of a held-open request:
# submit a Fig. 2(c)-style capacity search, poll until it finishes.
echo "== submit capacity-search job"
JOB=$(curl -fsS "$BASE/v1/jobs" \
	-d '{"type":"capacity-search","request":{"switches":20,"ports":6,"trials":1,"seed":7}}')
echo "$JOB"
ID=$(echo "$JOB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
while :; do
	VIEW=$(curl -fsS "$BASE/v1/jobs/$ID")
	case "$VIEW" in
	*'"status":"succeeded"'* | *'"status":"failed"'* | *'"status":"cancelled"'*) break ;;
	esac
	sleep 0.2
done
echo "== job $ID finished"
echo "$VIEW"
echo

# The sync endpoint answers the same request from the response cache —
# byte-identical to the job's result document.
echo "== same search, sync (cache hit)"
curl -fsS "$BASE/v1/capacity-search" -d '{"switches":20,"ports":6,"trials":1,"seed":7}'
echo

# Stream the finished job's progress as SSE: one "progress" frame per
# search probe, then a terminal "done" frame. Connecting mid-run tails
# the same frames live — the stream bytes are part of the determinism
# guarantee, so live tail and post-hoc replay are identical.
echo "== job $ID progress stream (SSE replay)"
curl -fsS "$BASE/v1/jobs/$ID/events" | head -c 400; echo " ..."

# The flight recorder (DESIGN.md §15): the finished job's execution was
# recorded as a span tree — search probes nesting trials nesting solver
# runs with their phases. Traces are wall-clock diagnostics, NOT covered
# by the determinism guarantee, and live only in daemon memory.
echo "== job $ID recorded span tree"
# (stderr silenced: head truncates the pipe, which curl reports as 23)
curl -fsS "$BASE/v1/trace/$ID" 2>/dev/null | head -c 400; echo " ..."

# The Prometheus surface: scheduler queue depths and waits, per-worker
# cache hits/misses by tier, solver phase counters and latencies,
# job-store append/snapshot timings. One-way telemetry — scraping it
# never perturbs a response (disable wholesale with -no-telemetry; a
# separate -debug-addr additionally serves Go pprof on loopback).
echo "== /metrics (solver + cache families)"
curl -fsS "$BASE/metrics" | grep -E '^jellyfishd_(solver_phases_total|capsearch_probes_total|cache_hits_total)' | head -12

# Kill/restart walkthrough: SIGKILL the daemon mid-job and restart it on
# the same state dir. The submitted job was journaled before the 202, so
# the restarted daemon re-runs it automatically; determinism makes the
# recovered result byte-identical to what the uninterrupted run would
# have produced.
echo "== submit a longer search, then kill -9 the daemon"
JOB2=$(curl -fsS "$BASE/v1/jobs" \
	-d '{"type":"capacity-search","request":{"switches":45,"ports":6,"trials":2,"seed":7}}')
ID2=$(echo "$JOB2" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
kill -9 "$DAEMON" 2>/dev/null
wait "$DAEMON" 2>/dev/null || true

echo "== restart on the same -state-dir; job $ID2 resumes"
/tmp/jellyfishd -addr "$ADDR" -workers 2 -state-dir "$STATE" &
DAEMON=$!
for i in $(seq 1 50); do
	curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
	sleep 0.1
done
while :; do
	VIEW=$(curl -fsS "$BASE/v1/jobs/$ID2")
	case "$VIEW" in
	*'"status":"succeeded"'* | *'"status":"failed"'* | *'"status":"cancelled"'*) break ;;
	esac
	sleep 0.2
done
echo "== job $ID2 finished after crash recovery"
curl -fsS "$BASE/v1/jobs/$ID2/result"; echo
# ...and the job finished before the kill is still fetchable:
echo "== job $ID survived the restart too"
curl -fsS "$BASE/v1/jobs/$ID" | head -c 200; echo " ..."

echo "== scheduler stats"
curl -fsS "$BASE/v1/stats"; echo

# ---------------------------------------------------------------------
# Failure-containment walkthrough (DESIGN.md §16): per-client quotas,
# bounded-latency cancellation, and failpoint-driven degraded mode.
# Restart the daemon with quotas on and a seeded fault schedule: the
# third journal append of this run will fail once, as if the disk
# filled at exactly that write. Fault schedules are deterministic —
# same schedule + same request sequence = same failure, every run.
kill "$DAEMON" 2>/dev/null
wait "$DAEMON" 2>/dev/null || true
echo "== restart with -client-qps 1 -client-burst 2 and a seeded failpoint"
/tmp/jellyfishd -addr "$ADDR" -workers 2 -state-dir "$STATE" \
	-client-qps 1 -client-burst 2 -faultinject 'persist.append:3-1:enospc' &
DAEMON=$!
for i in $(seq 1 50); do
	curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
	sleep 0.1
done

# Quotas meter only the endpoints that create work (sync planning, job
# submission); reads are never shed. Burst 2: two requests pass, the
# third gets 429 with a Retry-After hint (deterministically jittered
# per client, so a rejected herd does not re-arrive in one wave).
echo "== quota: two requests within burst, then a 429"
DESIGN='{"switches":20,"ports":6,"networkDegree":4,"seed":5}'
curl -fsS "$BASE/v1/design" -d "$DESIGN" >/dev/null && echo "request 1: ok"
curl -fsS "$BASE/v1/design" -d "$DESIGN" >/dev/null && echo "request 2: ok"
curl -sS -D - -o /dev/null "$BASE/v1/design" -d "$DESIGN" |
	grep -E '^(HTTP|Retry-After)' | tr -d '\r'
curl -fsS "$BASE/v1/jobs" >/dev/null && echo "reads stay unmetered"
sleep 2 # ~2 tokens refill at 1 qps

# Bounded-latency cancellation: kernels poll for cancellation at phase
# boundaries (GK solver per phase, simulators per round / per 1024
# events, searches per trial), so a cancel lands promptly even mid-solve
# — and a cancelled run leaves nothing truncated in any cache.
echo "== cancel a search mid-run"
JOB3=$(curl -fsS "$BASE/v1/jobs" \
	-d '{"type":"capacity-search","request":{"switches":45,"ports":6,"trials":3,"seed":23}}')
ID3=$(echo "$JOB3" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
curl -fsS "$BASE/v1/jobs/$ID3/cancel" -X POST -d '' >/dev/null
while :; do
	VIEW=$(curl -fsS "$BASE/v1/jobs/$ID3")
	case "$VIEW" in
	*'"status":"succeeded"'* | *'"status":"failed"'* | *'"status":"cancelled"'*) break ;;
	esac
	sleep 0.2
done
echo "$VIEW" | head -c 200; echo

# Degraded mode: the seeded failpoint fires on this submission's journal
# append. The daemon refuses with 503/degraded rather than acknowledge a
# job a restart would forget, flips read-only, and keeps serving reads.
# No operator action needed: the retry's own append is the recovery
# probe — it succeeds, the store snapshots, durability is restored.
echo "== degraded mode: submit hits the injected append failure"
SUBMIT='{"type":"design","request":{"switches":20,"ports":6,"networkDegree":4,"seed":5}}'
sleep 1 # one quota token back
curl -sS -o /dev/null -w 'submit: HTTP %{http_code}\n' "$BASE/v1/jobs" -d "$SUBMIT"
curl -fsS "$BASE/healthz"; echo " (alive, read-only)"
sleep 1
echo "== retry: the append succeeds and recovery is automatic"
curl -sS -o /dev/null -w 'retry:  HTTP %{http_code}\n' "$BASE/v1/jobs" -d "$SUBMIT"
curl -fsS "$BASE/healthz"; echo
# The containment counters tell the story on /metrics:
curl -fsS "$BASE/metrics" |
	grep -E '^jellyfishd_(degraded|degraded_transitions_total|quota_rejected_total|faultinject_fires_total|panics_contained_total) '
