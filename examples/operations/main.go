// Operations: the day-2 workflow of running a Jellyfish data center —
// blueprints, expansion rewiring plans, miswiring detection, and health
// checks (paper §6). Everything a network operator would script against
// this library.
//
// The same workflow is available over the network: daemon_session.sh in
// this directory drives a local jellyfishd (cmd/jellyfishd) through the
// equivalent curl session — design, evaluate, what-if chain, async
// capacity-search job — against the HTTP/JSON API.
package main

import (
	"bytes"
	"fmt"
	"log"

	"jellyfish"
)

func main() {
	// Day 0: design the network and emit the cabling blueprint.
	design := jellyfish.New(jellyfish.Config{
		Switches: 50, Ports: 12, NetworkDegree: 8, Seed: 42,
	})
	var blueprint bytes.Buffer
	if err := jellyfish.WriteBlueprint(design, &blueprint); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blueprint: %d bytes for %d cables\n", blueprint.Len(), design.NumLinks())

	// Day 1: the crew wires it up — with a few mistakes.
	built := design.Clone()
	swaps := jellyfish.SimulateMiswirings(built, 3, 7)
	fmt.Printf("crew crossed %d cable pairs during installation\n", swaps)

	// A link-layer discovery sweep finds every divergence.
	found := jellyfish.DetectMiswirings(design, built)
	fmt.Printf("discovery sweep: %d divergences detected:\n", len(found))
	for _, m := range found {
		fmt.Printf("  missing %v, found %v instead\n", m.Missing, m.Extra)
	}

	// §6.1's point: the miswired network is just another random graph.
	fmt.Printf("throughput as designed: %.3f | as built: %.3f — often not worth fixing\n",
		jellyfish.OptimalThroughput(design, 9), jellyfish.OptimalThroughput(built, 9))

	// Day 90: expansion. Plan the exact cable moves before touching anything.
	grown := built.Clone()
	jellyfish.Expand(grown, 5, 12, 8, 11)
	plan := jellyfish.PlanRewiring(built, grown)
	fmt.Printf("\nexpansion by 5 racks: %d cables to unplug, %d to run (rewiring bounded by added ports)\n",
		len(plan.Remove), len(plan.Add))

	// Health checks after the change.
	fmt.Printf("edge connectivity: %d (r-connected, so %d simultaneous link failures cannot partition it)\n",
		jellyfish.EdgeConnectivity(grown), jellyfish.EdgeConnectivity(grown)-1)
	lambda2, opt := jellyfish.ExpansionQuality(jellyfish.New(jellyfish.Config{
		Switches: 55, Ports: 12, NetworkDegree: 8, Seed: 13,
	}), 8)
	fmt.Printf("expander quality: lambda2 %.2f vs Ramanujan optimum %.2f — near-optimal expansion\n",
		lambda2, opt)

	// Resilience drill: fail 10% of links, then a whole switch.
	drill := grown.Clone()
	jellyfish.FailRandomLinks(drill, 0.10, 17)
	failed := jellyfish.FailRandomSwitches(drill, 0.05, 19)
	fmt.Printf("\ndrill: 10%% links + switches %v down -> throughput %.3f (healthy: %.3f)\n",
		failed, jellyfish.OptimalThroughput(drill, 21), jellyfish.OptimalThroughput(grown, 21))
}
