package jellyfish_test

import (
	"fmt"

	"jellyfish"
)

// Build a small Jellyfish and read its basic shape.
func ExampleNew() {
	net := jellyfish.New(jellyfish.Config{
		Switches: 40, Ports: 12, NetworkDegree: 8, Seed: 1,
	})
	fmt.Println(net.NumSwitches(), net.NumServers(), net.NumLinks())
	// Output: 40 160 160
}

// Same equipment as a fat-tree, shorter paths.
func ExampleNewFatTree() {
	ft := jellyfish.NewFatTree(8)
	fmt.Println(ft.NumSwitches(), ft.NumServers())
	// Output: 80 128
}

// Incremental expansion adds racks without restructuring.
func ExampleExpand() {
	net := jellyfish.New(jellyfish.Config{
		Switches: 20, Ports: 12, NetworkDegree: 8, Seed: 1,
	})
	jellyfish.Expand(net, 5, 12, 8, 2)
	fmt.Println(net.NumSwitches(), net.NumServers())
	// Output: 25 100
}

// The rewiring needed for an expansion is computable in advance.
func ExamplePlanRewiring() {
	before := jellyfish.New(jellyfish.Config{
		Switches: 20, Ports: 12, NetworkDegree: 8, Seed: 1,
	})
	after := before.Clone()
	jellyfish.Expand(after, 1, 12, 8, 2)
	plan := jellyfish.PlanRewiring(before, after)
	fmt.Println(len(plan.Remove)*2 == len(plan.Add)) // each splice: 1 out, 2 in
	// Output: true
}

// Jellyfish is r-connected: it takes r simultaneous link failures to even
// possibly partition it.
func ExampleEdgeConnectivity() {
	net := jellyfish.New(jellyfish.Config{
		Switches: 30, Ports: 10, NetworkDegree: 6, Seed: 1,
	})
	fmt.Println(jellyfish.EdgeConnectivity(net))
	// Output: 6
}
