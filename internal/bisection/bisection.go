// Package bisection computes the bisection-bandwidth quantities used by the
// paper's capacity analysis (§4.1, Figs. 2a/2b, and the LEGUP comparison of
// Fig. 7): the Bollobás lower bound on the bisection of random regular
// graphs, the fat-tree's closed form, and a Kernighan–Lin heuristic
// minimum bisection for explicit graphs.
package bisection

import (
	"math"
	"sort"

	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
)

// RRGCrossingLowerBound returns the Bollobás [8] lower bound on the number
// of edges crossing any equal split of an r-regular random graph on n
// vertices: n·(r/4 − √(r·ln2)/2). The bound holds for almost every
// r-regular graph. Negative values are clamped to zero (small r).
func RRGCrossingLowerBound(n, r int) float64 {
	b := float64(n) * (float64(r)/4 - math.Sqrt(float64(r)*math.Ln2)/2)
	if b < 0 {
		return 0
	}
	return b
}

// RRGNormalizedBisection returns the Bollobás bound normalized by the
// server line-rate bandwidth of one partition: with n switches of k ports
// and r network ports each, one side holds n(k−r)/2 servers.
// Values above 1 indicate overprovisioning.
func RRGNormalizedBisection(n, k, r int) float64 {
	servers := float64(n*(k-r)) / 2
	if servers <= 0 {
		return math.Inf(1)
	}
	return RRGCrossingLowerBound(n, r) / servers
}

// FatTreeNormalizedBisection returns 1: the 3-level fat-tree is a
// full-bisection-bandwidth network (k³/8 crossing links for k³/8 servers
// per side).
func FatTreeNormalizedBisection(k int) float64 { return 1 }

// FatTreeCrossing returns the fat-tree's bisection crossing-link count,
// k³/8.
func FatTreeCrossing(k int) float64 { return float64(k*k*k) / 8 }

// MaxServersAtFullBisection returns the largest number of servers a
// Jellyfish built from n switches of k ports can support at normalized
// bisection bandwidth ≥ 1, by scanning the server-per-switch split. The
// second return is the chosen network degree r.
func MaxServersAtFullBisection(n, k int) (servers, r int) {
	best, bestR := 0, 0
	for rr := 1; rr < k; rr++ {
		if rr >= n {
			break
		}
		if RRGNormalizedBisection(n, k, rr) >= 1 {
			if s := n * (k - rr); s > best {
				best, bestR = s, rr
			}
		}
	}
	return best, bestR
}

// MinPortsForServers returns the minimum total port count (equipment cost)
// of a Jellyfish network of k-port switches supporting at least the given
// number of servers at full (normalized ≥ 1) bisection bandwidth, along
// with the switch count and network degree chosen. Returns (0,0,0) if no
// k-port design can reach full bisection for that load.
func MinPortsForServers(servers, k int) (ports, n, r int) {
	// For each degree split, compute the switch count needed and keep the
	// cheapest feasible design.
	bestPorts := math.MaxInt
	var bestN, bestR int
	for rr := 1; rr < k; rr++ {
		perSwitch := k - rr
		if perSwitch == 0 {
			continue
		}
		n := (servers + perSwitch - 1) / perSwitch
		if n <= rr {
			continue
		}
		if RRGNormalizedBisection(n, k, rr) < 1 {
			continue
		}
		if cost := n * k; cost < bestPorts {
			bestPorts, bestN, bestR = cost, n, rr
		}
	}
	if bestPorts == math.MaxInt {
		return 0, 0, 0
	}
	return bestPorts, bestN, bestR
}

// KLBisection partitions the graph's vertices into two halves balanced by
// the given vertex weights (e.g. attached servers) while heuristically
// minimizing crossing edges, using randomized-restart Kernighan–Lin-style
// pairwise swap refinement. It returns the crossing edge count and the
// side assignment. Weights may be nil (unit weights).
func KLBisection(g *graph.Graph, weights []int, restarts int, src *rng.Source) (cut int, side []bool) {
	n := g.N()
	if weights == nil {
		weights = make([]int, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	if restarts <= 0 {
		restarts = 4
	}
	bestCut := math.MaxInt
	var bestSide []bool
	for rs := 0; rs < restarts; rs++ {
		s := RandomBalancedSide(n, weights, src.SplitN("restart", rs))
		c := refine(g, s, weights)
		if c < bestCut {
			bestCut = c
			bestSide = s
		}
	}
	return bestCut, bestSide
}

// RandomBalancedSide assigns vertices to sides by descending weight (random
// tie order), always placing into the lighter side — the LPT rule, which
// balances within the largest single weight.
func RandomBalancedSide(n int, weights []int, src *rng.Source) []bool {
	side := make([]bool, n)
	order := src.Perm(n)
	sort.SliceStable(order, func(i, j int) bool {
		return weights[order[i]] > weights[order[j]]
	})
	wA, wB := 0, 0
	for _, v := range order {
		if wA <= wB {
			wA += weights[v]
		} else {
			side[v] = true
			wB += weights[v]
		}
	}
	return side
}

// refine runs KL-style passes: repeatedly swap the cross pair with the best
// cut gain, subject to never worsening the weight imbalance, until no
// improving swap exists.
func refine(g *graph.Graph, side []bool, weights []int) int {
	n := g.N()
	wA, wB := 0, 0
	for v := 0; v < n; v++ {
		if side[v] {
			wB += weights[v]
		} else {
			wA += weights[v]
		}
	}
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	// gain(v): cut reduction from moving v across (external - internal).
	gain := func(v int) int {
		ext, inn := 0, 0
		for _, u := range g.Neighbors(v) {
			if side[u] != side[v] {
				ext++
			} else {
				inn++
			}
		}
		return ext - inn
	}
	for pass := 0; pass < 20; pass++ {
		bestDelta, bestA, bestB := 0, -1, -1
		for a := 0; a < n; a++ {
			if side[a] {
				continue
			}
			ga := gain(a)
			for b := 0; b < n; b++ {
				if !side[b] {
					continue
				}
				// Swapping a (side A) with b (side B) shifts balance by
				// 2*(w[b]-w[a]); forbid swaps that worsen imbalance.
				newImb := abs((wA - weights[a] + weights[b]) - (wB - weights[b] + weights[a]))
				if newImb > abs(wA-wB) {
					continue
				}
				delta := ga + gain(b)
				if g.HasEdge(a, b) {
					delta -= 2
				}
				if delta > bestDelta {
					bestDelta, bestA, bestB = delta, a, b
				}
			}
		}
		if bestA < 0 {
			break
		}
		wA += weights[bestB] - weights[bestA]
		wB += weights[bestA] - weights[bestB]
		side[bestA], side[bestB] = true, false
		_ = bestDelta
	}
	return cutSize(g, side)
}

func cutSize(g *graph.Graph, side []bool) int {
	cut := 0
	for _, e := range g.Edges() {
		if side[e.U] != side[e.V] {
			cut++
		}
	}
	return cut
}
