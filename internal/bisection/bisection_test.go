package bisection

import (
	"math"
	"testing"

	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

func TestRRGCrossingLowerBoundClamped(t *testing.T) {
	if b := RRGCrossingLowerBound(100, 1); b != 0 {
		t.Fatalf("bound = %v for r=1, want 0 (clamped)", b)
	}
}

func TestRRGCrossingLowerBoundGrowth(t *testing.T) {
	// Bound is linear in n and increasing in r (for r past the clamp).
	b1 := RRGCrossingLowerBound(100, 16)
	b2 := RRGCrossingLowerBound(200, 16)
	if math.Abs(b2-2*b1) > 1e-9 {
		t.Fatalf("bound not linear in n: %v vs %v", b1, b2)
	}
	if RRGCrossingLowerBound(100, 32) <= b1 {
		t.Fatal("bound not increasing in r")
	}
}

func TestRRGNormalizedBisectionApproachesHalfLinks(t *testing.T) {
	// As r→∞ the crossing bound approaches n·r/4 = half of the n·r/2
	// links (§4.1).
	n := 1000
	r := 10000
	frac := RRGCrossingLowerBound(n, r) / (float64(n*r) / 2)
	if frac < 0.45 || frac > 0.5 {
		t.Fatalf("crossing fraction = %v, want → 0.5", frac)
	}
}

func TestFatTreeForms(t *testing.T) {
	if FatTreeNormalizedBisection(48) != 1 {
		t.Fatal("fat-tree normalized bisection must be 1")
	}
	if FatTreeCrossing(4) != 8 {
		t.Fatalf("fat-tree crossing(4) = %v, want 8", FatTreeCrossing(4))
	}
}

// Paper Fig. 2(a) headline: with the same equipment as a 16,000-server
// fat-tree, Jellyfish supports >20,000 servers at full bisection.
func TestJellyfishBeatsFatTreeAtFullBisection(t *testing.T) {
	// Fat-tree with k=40 ports: 16,000 servers, 2,000 switches.
	k := 40
	ftServers := k * k * k / 4
	ftSwitches := 5 * k * k / 4
	jfServers, r := MaxServersAtFullBisection(ftSwitches, k)
	if jfServers <= ftServers {
		t.Fatalf("jellyfish %d servers (r=%d) not above fat-tree %d", jfServers, r, ftServers)
	}
	// The paper reports >20,000 for this configuration.
	if jfServers < 20000 {
		t.Fatalf("jellyfish servers = %d, paper reports >20000", jfServers)
	}
}

func TestMaxServersAtFullBisectionSmall(t *testing.T) {
	servers, r := MaxServersAtFullBisection(720, 24)
	if servers <= 0 || r <= 0 || r >= 24 {
		t.Fatalf("servers=%d r=%d", servers, r)
	}
	// The chosen design must itself be at full bisection.
	if RRGNormalizedBisection(720, 24, r) < 1 {
		t.Fatal("returned design below full bisection")
	}
}

func TestMinPortsForServers(t *testing.T) {
	ports, n, r := MinPortsForServers(3456, 24)
	if ports == 0 {
		t.Fatal("no feasible design found")
	}
	if n*(24-r) < 3456 {
		t.Fatalf("design n=%d r=%d supports %d servers < 3456", n, r, n*(24-r))
	}
	// Fig. 2(b): Jellyfish is cheaper than the fat-tree at equal servers.
	// Fat-tree with k=24 has 3456 servers and 720 switches → 17280 ports.
	if ports >= 17280 {
		t.Fatalf("jellyfish ports = %d, fat-tree needs 17280", ports)
	}
}

func TestMinPortsInfeasible(t *testing.T) {
	// Tiny port count cannot reach full bisection for a large server pool.
	if ports, _, _ := MinPortsForServers(100000, 3); ports != 0 {
		t.Fatalf("ports = %d for infeasible design, want 0", ports)
	}
}

func TestKLBisectionPathGraph(t *testing.T) {
	// Path of 8 vertices: optimal balanced bisection cuts exactly 1 edge.
	g := graph.New(8)
	for i := 0; i < 7; i++ {
		g.AddEdge(i, i+1)
	}
	cut, side := KLBisection(g, nil, 8, rng.New(1))
	if cut != 1 {
		t.Fatalf("path graph cut = %d, want 1", cut)
	}
	count := 0
	for _, s := range side {
		if s {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("unbalanced sides: %d/8", count)
	}
}

func TestKLBisectionTwoCliques(t *testing.T) {
	// Two K5s joined by one bridge: optimal cut = 1.
	g := graph.New(10)
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			g.AddEdge(a, b)
			g.AddEdge(a+5, b+5)
		}
	}
	g.AddEdge(0, 5)
	cut, _ := KLBisection(g, nil, 8, rng.New(2))
	if cut != 1 {
		t.Fatalf("two-clique cut = %d, want 1", cut)
	}
}

func TestKLBisectionRespectsWeights(t *testing.T) {
	// Vertex 0 has weight 4 (= all others combined); it must sit alone.
	g := graph.New(5)
	for v := 1; v < 5; v++ {
		g.AddEdge(0, v)
	}
	w := []int{4, 1, 1, 1, 1}
	_, side := KLBisection(g, w, 8, rng.New(3))
	wA, wB := 0, 0
	for v, s := range side {
		if s {
			wB += w[v]
		} else {
			wA += w[v]
		}
	}
	if wA != 4 || wB != 4 {
		t.Fatalf("weights split %d/%d, want 4/4", wA, wB)
	}
}

// KL cut on a Jellyfish should be consistent with (not far below) the
// Bollobás bound at moderate size — the bound says ALMOST every split has
// at least that many crossing edges.
func TestKLCutVsBollobasBound(t *testing.T) {
	n, k, r := 60, 10, 6
	top := topology.Jellyfish(n, k, r, rng.New(7))
	cut, _ := KLBisection(top.Graph, nil, 6, rng.New(8))
	bound := RRGCrossingLowerBound(n, r)
	if float64(cut) < bound {
		t.Fatalf("KL found cut %d below Bollobás bound %v", cut, bound)
	}
	// And KL should find something below the trivial expectation n·r/4.
	if float64(cut) > float64(n*r)/4+float64(n) {
		t.Fatalf("KL cut %d implausibly large", cut)
	}
}
