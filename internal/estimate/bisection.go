package estimate

import (
	"fmt"
	"math"

	"jellyfish/internal/bisection"
	"jellyfish/internal/mcf"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

// bisectionRestarts is the number of random balanced partitions evaluated
// per estimate. Each cut certifies a valid upper bound on its own, so more
// restarts only tighten the minimum; 8 recovers the ballpark of the
// paper's bisection bound on random regular graphs without the O(n²)
// Kernighan–Lin refinement that KLBisection spends at paper scale.
const bisectionRestarts = 8

// bisectionEstimator bounds λ* with the paper's bisection argument
// (§Jellyfish, Fig. 2's capacity ceiling): any balanced vertex cut has
// λ* ≤ crossing capacity / demand crossing it. The lower bound is the
// shared shortest-path-routing primal certificate.
type bisectionEstimator struct {
	core
}

func (e *bisectionEstimator) Name() string { return "bisection" }

func (e *bisectionEstimator) Estimate(t *topology.Compact, comms []mcf.Commodity) Bounds {
	csr := t.CSR
	if !e.prepare(csr.N(), comms) {
		return infinite()
	}
	lower, bad, ok := e.sprLower(csr)
	if !ok {
		return disconnected(bad)
	}
	upper := e.uplinkCut(csr)
	upperCert := "per-switch uplink cut"

	weights := e.serverWeights(t)
	src := rng.New(e.seed).Split("estimate-bisection")
	for rs := 0; rs < bisectionRestarts; rs++ {
		side := bisection.RandomBalancedSide(csr.N(), weights, src.SplitN("restart", rs))
		if b := e.cutBound(csr, side); b < upper {
			upper = b
			upperCert = fmt.Sprintf("server-balanced bisection cut (restart %d of %d, seed %d)",
				rs, bisectionRestarts, e.seed)
		}
	}
	if math.IsInf(upper, 1) {
		upperCert = "no demanding cut found"
	}
	return Bounds{
		Lower:     lower,
		Upper:     upper,
		LowerCert: "shortest-path routing scaled to worst arc overuse",
		UpperCert: upperCert,
	}
}
