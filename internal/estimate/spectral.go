package estimate

import (
	"fmt"
	"math"
	"sort"

	"jellyfish/internal/graph"
	"jellyfish/internal/mcf"
	"jellyfish/internal/topology"
)

// spectralIters is the power-iteration budget for the Fiedler-direction
// vector. The sweep cut below is certified by explicit evaluation, so the
// iteration count only affects how good the vertex ordering is, never
// soundness; 100 iterations separate the second eigenvector well past the
// ordering's needs on expander-like instances.
const spectralIters = 100

// spectralEstimator bounds λ* with a Cheeger-style sweep cut: order
// vertices by an approximate second adjacency eigenvector (the direction
// along which the graph pinches, per the expander argument the paper's
// capacity results rest on), then evaluate every prefix cut of that order
// in one O(n log n + m + |comms|) pass via difference arrays. Each prefix
// is an explicit bipartition, so the certified bound is exact for the best
// prefix regardless of eigenvector accuracy or regularity. The lower
// bound is the shared shortest-path-routing primal certificate.
type spectralEstimator struct {
	core
	x, y           []float64 // power-iteration vectors
	rank           []int32   // vertex → position in sweep order
	order          []int32   // sweep order (argsort of x)
	capDiff        []float64 // difference array: crossing capacity per prefix
	abDiff, baDiff []float64 // difference arrays: directional demand per prefix
}

func (e *spectralEstimator) Name() string { return "spectral" }

func (e *spectralEstimator) Estimate(t *topology.Compact, comms []mcf.Commodity) Bounds {
	csr := t.CSR
	if !e.prepare(csr.N(), comms) {
		return infinite()
	}
	lower, bad, ok := e.sprLower(csr)
	if !ok {
		return disconnected(bad)
	}
	upper := e.uplinkCut(csr)
	upperCert := "per-switch uplink cut"
	if b, p := e.sweepCut(csr); b < upper {
		upper = b
		upperCert = fmt.Sprintf("spectral sweep cut (prefix %d of %d)", p, csr.N())
	}
	return Bounds{
		Lower:     lower,
		Upper:     upper,
		LowerCert: "shortest-path routing scaled to worst arc overuse",
		UpperCert: upperCert,
	}
}

// sweepCut returns the best prefix-cut bound over the spectral order and
// the prefix size achieving it (+Inf, 0 when no prefix carries crossing
// demand). prepare must have run.
func (e *spectralEstimator) sweepCut(csr *graph.CSR) (float64, int) {
	n := csr.N()
	if n < 2 {
		return math.Inf(1), 0
	}
	e.powerIterate(csr)

	// Sweep order: eigenvector value ascending, vertex id tie-break.
	e.order = resizeInt32(e.order, n)
	for i := range e.order {
		e.order[i] = int32(i)
	}
	x := e.x
	sort.Slice(e.order, func(a, b int) bool {
		va, vb := e.order[a], e.order[b]
		if x[va] != x[vb] {
			return x[va] < x[vb]
		}
		return va < vb
	})
	e.rank = resizeInt32(e.rank, n)
	for p, v := range e.order {
		e.rank[v] = int32(p)
	}

	// A prefix cut p splits {order[0..p-1]} from the rest, p in 1..n-1.
	// An edge with endpoint ranks ru < rv crosses exactly the prefixes
	// p in (ru, rv]; a commodity with src rank rs < dst rank rt sends
	// prefix-A→B demand for the same interval (B→A when rs > rt). Both
	// accumulate as interval-add difference arrays, one prefix sum each.
	e.capDiff = resizeFloat(e.capDiff, n+1)
	e.abDiff = resizeFloat(e.abDiff, n+1)
	e.baDiff = resizeFloat(e.baDiff, n+1)
	clear(e.capDiff)
	clear(e.abDiff)
	clear(e.baDiff)
	for _, ed := range csr.Edges() {
		ru, rv := e.rank[ed.U], e.rank[ed.V]
		if ru > rv {
			ru, rv = rv, ru
		}
		e.capDiff[ru+1]++
		e.capDiff[rv+1]--
	}
	for _, cm := range e.eff {
		rs, rt := e.rank[cm.Src], e.rank[cm.Dst]
		if rs < rt {
			e.abDiff[rs+1] += cm.Demand
			e.abDiff[rt+1] -= cm.Demand
		} else {
			e.baDiff[rt+1] += cm.Demand
			e.baDiff[rs+1] -= cm.Demand
		}
	}

	best := math.Inf(1)
	bestP := 0
	var cutCap, dAB, dBA float64
	for p := 1; p < n; p++ {
		cutCap += e.capDiff[p]
		dAB += e.abDiff[p]
		dBA += e.baDiff[p]
		d := dAB
		if dBA > d {
			d = dBA
		}
		if d <= 0 {
			continue
		}
		if b := cutCap / d; b < best {
			best = b
			bestP = p
		}
	}
	return best, bestP
}

// powerIterate fills e.x with an approximate second adjacency eigenvector
// over the snapshot: the deterministic xorshift start vector and
// deflate-against-all-ones scheme of graph.SecondEigenvalue, generalized
// to any graph because the sweep cut never assumes regularity.
func (e *spectralEstimator) powerIterate(csr *graph.CSR) {
	n := csr.N()
	e.x = resizeFloat(e.x, n)
	e.y = resizeFloat(e.y, n)
	x, y := e.x, e.y
	h := uint64(0x9e3779b97f4a7c15)
	for i := range x {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		x[i] = float64(h%2048)/1024 - 1
	}
	deflate(x)
	normalize(x)
	for it := 0; it < spectralIters; it++ {
		clear(y)
		for u := 0; u < n; u++ {
			xu := x[u]
			for _, v := range csr.Nbrs[csr.Offsets[u]:csr.Offsets[u+1]] {
				y[v] += xu
			}
		}
		deflate(y)
		if !normalize(y) {
			break // vector vanished; keep the previous x as the order
		}
		x, y = y, x
	}
	e.x, e.y = x, y
}

// deflate removes the component along the all-ones vector.
func deflate(x []float64) {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

// normalize scales x to unit length, reporting false on the zero vector.
func normalize(x []float64) bool {
	var s float64
	for _, v := range x {
		s += v * v
	}
	if s == 0 {
		return false
	}
	inv := 1 / math.Sqrt(s)
	for i := range x {
		x[i] *= inv
	}
	return true
}
