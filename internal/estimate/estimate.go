// Package estimate provides bounded approximate throughput estimators for
// megascale planning: fast procedures that bracket the maximum concurrent
// flow λ* of a compact topology + commodity set between certified bounds,
// never point estimates. The contract every implementation obeys is
//
//	Bounds.Lower ≤ λ* ≤ Bounds.Upper
//
// with both sides computed from explicit primal/dual certificates — a
// concrete feasible routing for the lower bound, a concrete cut or dual
// solution for the upper — so a caller can trust a rejection (Upper below
// target) or an acceptance (Lower above target) without ever running the
// exact solver. Estimators are deterministic: the same (topology,
// commodities, kind, sample, seed) produce the same Bounds on every call,
// worker count, and process.
package estimate

import (
	"fmt"
	"math"

	"jellyfish/internal/graph"
	"jellyfish/internal/mcf"
	"jellyfish/internal/topology"
)

// Bounds brackets the exact maximum concurrent flow λ*.
type Bounds struct {
	// Lower ≤ λ* ≤ Upper.
	Lower, Upper float64
	// LowerCert and UpperCert name the certificates the bounds rest on.
	LowerCert, UpperCert string
}

// A ThroughputEstimator brackets λ* for compact instances. Implementations
// reuse internal scratch across calls and are NOT safe for concurrent use;
// build one per goroutine (they are cheap). Estimate is a pure function of
// its arguments and the estimator's construction parameters: internal
// randomness is re-derived from the constructor seed on every call, so
// call order and call count never shift a result.
type ThroughputEstimator interface {
	Name() string
	Estimate(c *topology.Compact, comms []mcf.Commodity) Bounds
}

// Interruptible is implemented by estimators whose Estimate can be
// cooperatively cancelled mid-computation (today: sampled-mcf, whose
// phase-capped solves poll once per GK phase). A fired interrupt makes
// the in-flight Estimate return early with a soundly-loose bracket;
// callers that interrupt must discard the result anyway. With the poll
// unset — or never firing — results are byte-identical to an estimator
// without one.
type Interruptible interface {
	SetInterrupt(func() bool)
}

// Kinds lists the available estimator kinds, in documentation order.
func Kinds() []string { return []string{"bisection", "spectral", "sampled-mcf"} }

// DefaultSample is the sampled-mcf commodity subsample size when the
// caller passes sample ≤ 0.
const DefaultSample = 64

// New builds an estimator. kind selects the implementation ("bisection",
// "spectral", "sampled-mcf"); sample is the sampled-mcf subsample size
// (≤ 0 selects DefaultSample, ignored by the other kinds); seed drives
// all internal randomness.
func New(kind string, sample int, seed uint64) (ThroughputEstimator, error) {
	switch kind {
	case "bisection":
		return &bisectionEstimator{core: core{seed: seed}}, nil
	case "spectral":
		return &spectralEstimator{core: core{seed: seed}}, nil
	case "sampled-mcf":
		if sample <= 0 {
			sample = DefaultSample
		}
		return &sampledEstimator{core: core{seed: seed}, sample: sample}, nil
	default:
		return nil, fmt.Errorf("estimate: unknown estimator kind %q (have %v)", kind, Kinds())
	}
}

// core holds the machinery shared by every estimator: the effective
// commodity filter, the shortest-path-routing primal lower bound, the
// per-switch uplink cut upper bound, and per-switch demand aggregation.
// All scratch is reused across calls.
type core struct {
	seed uint64

	eff            []mcf.Commodity // effective commodities (src != dst, demand > 0)
	outDem, inDem  []float64       // per-switch directional demand
	srcCount       []int32         // counting-sort scratch / per-source offsets
	commIdx        []int32         // commodity indices grouped by source
	dist, queue    []int32         // BFS scratch
	via            []int32         // arc id used to first reach each vertex
	arcLoad        []float64       // per-arc SPR load
	needStamp      []uint32        // per-vertex "is a pending destination" stamp
	epoch          uint32
	weights, sideA []int // bisection weight / side scratch
}

// prepare filters comms into c.eff and aggregates per-switch directional
// demand. Returns false when no effective commodities remain (λ* = +Inf).
func (c *core) prepare(n int, comms []mcf.Commodity) bool {
	c.eff = c.eff[:0]
	c.outDem = resizeFloat(c.outDem, n)
	c.inDem = resizeFloat(c.inDem, n)
	clear(c.outDem)
	clear(c.inDem)
	for _, cm := range comms {
		if cm.Src != cm.Dst && cm.Demand > 0 {
			c.eff = append(c.eff, cm)
			c.outDem[cm.Src] += cm.Demand
			c.inDem[cm.Dst] += cm.Demand
		}
	}
	return len(c.eff) > 0
}

// infinite is the Bounds for an instance with no effective commodities,
// mirroring mcf.MaxConcurrentFlow's λ = +Inf convention.
func infinite() Bounds {
	return Bounds{
		Lower:     math.Inf(1),
		Upper:     math.Inf(1),
		LowerCert: "no effective commodities",
		UpperCert: "no effective commodities",
	}
}

// disconnected is the Bounds for an instance where some commodity's
// endpoints lie in different components: λ* = 0 exactly.
func disconnected(cm mcf.Commodity) Bounds {
	cert := fmt.Sprintf("commodity %d→%d disconnected", cm.Src, cm.Dst)
	return Bounds{LowerCert: cert, UpperCert: cert}
}

// uplinkCut returns the per-switch uplink cut upper bound: isolating any
// single switch sw cuts degree(sw) unit links, which must carry
// λ·max(outDemand(sw), inDemand(sw)) in some direction, so
// λ* ≤ min over demanding switches of degree(sw)/max(out, in).
// prepare must have run. Returns +Inf if it never binds (cannot happen
// for a non-empty effective set, kept for safety).
func (c *core) uplinkCut(csr *graph.CSR) float64 {
	bound := math.Inf(1)
	for sw := 0; sw < csr.N(); sw++ {
		d := c.outDem[sw]
		if c.inDem[sw] > d {
			d = c.inDem[sw]
		}
		if d <= 0 {
			continue
		}
		if b := float64(csr.Degree(sw)) / d; b < bound {
			bound = b
		}
	}
	return bound
}

// sprLower computes the shortest-path-routing primal lower bound: every
// commodity routed in full on its lexicographic-first BFS shortest path,
// then the whole flow scaled down by the worst arc overuse. The scaled
// flow is feasible and carries the same fraction 1/overuse of every
// demand, so λ* ≥ 1/overuse. Returns (bound, ok); ok is false when some
// commodity is disconnected (the caller should return disconnected
// bounds), with the offending commodity in cm.
//
// Cost: one early-exiting BFS per distinct source plus one root-walk per
// commodity — O(sources·(n+m) + Σ path lengths) worst case, with the
// early exit cutting most BFS runs far short on permutation traffic.
func (c *core) sprLower(csr *graph.CSR) (bound float64, cm mcf.Commodity, ok bool) {
	n := csr.N()

	// Group commodity indices by source with a counting sort.
	c.srcCount = resizeInt32(c.srcCount, n+1)
	clear(c.srcCount)
	for _, e := range c.eff {
		c.srcCount[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		c.srcCount[v+1] += c.srcCount[v]
	}
	c.commIdx = resizeInt32(c.commIdx, len(c.eff))
	cursor := c.srcCount
	for i, e := range c.eff {
		c.commIdx[cursor[e.Src]] = int32(i)
		cursor[e.Src]++
	}
	// cursor advanced each slot by its own count; cursor[s-1] is now the
	// start of s's group and cursor[n] stayed len(eff). Walk groups by
	// remembering the previous boundary instead of re-deriving.

	c.dist = resizeInt32(c.dist, n)
	c.queue = resizeInt32(c.queue, n)
	c.via = resizeInt32(c.via, n)
	if len(c.needStamp) != n {
		c.needStamp = make([]uint32, n)
		c.epoch = 0
	}
	c.arcLoad = resizeFloat(c.arcLoad, 2*csr.M())
	clear(c.arcLoad)

	groupStart := int32(0)
	for s := 0; s < n; s++ {
		groupEnd := c.srcCount[s]
		group := c.commIdx[groupStart:groupEnd]
		groupStart = groupEnd
		if len(group) == 0 {
			continue
		}
		// Mark this source's destinations and BFS until all are settled.
		c.epoch++
		if c.epoch == 0 {
			clear(c.needStamp)
			c.epoch = 1
		}
		pending := 0
		for _, ci := range group {
			d := c.eff[ci].Dst
			if c.needStamp[d] != c.epoch {
				c.needStamp[d] = c.epoch
				pending++
			}
		}
		for i := range c.dist {
			c.dist[i] = -1
		}
		c.dist[s] = 0
		q := c.queue[:1]
		q[0] = int32(s)
		for head := 0; head < len(q) && pending > 0; head++ {
			u := q[head]
			du := c.dist[u] + 1
			lo, hi := csr.Offsets[u], csr.Offsets[u+1]
			for i := lo; i < hi; i++ {
				v := csr.Nbrs[i]
				if c.dist[v] != -1 {
					continue
				}
				c.dist[v] = du
				c.via[v] = csr.ArcID[i]
				if c.needStamp[v] == c.epoch {
					pending--
				}
				q = append(q, v)
			}
		}
		// Route each commodity backwards along its discovery path.
		for _, ci := range group {
			e := c.eff[ci]
			if c.dist[e.Dst] == -1 {
				return 0, e, false
			}
			for v := int32(e.Dst); v != int32(s); {
				arc := c.via[v]
				c.arcLoad[arc] += e.Demand
				// The arc's tail is the other endpoint of edge arc/2.
				ed := csr.Edges()[arc/2]
				if int32(ed.U) == v {
					v = int32(ed.V)
				} else {
					v = int32(ed.U)
				}
			}
		}
	}

	maxLoad := 0.0
	for _, l := range c.arcLoad {
		if l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad == 0 {
		return math.Inf(1), mcf.Commodity{}, true
	}
	return 1 / maxLoad, mcf.Commodity{}, true
}

// serverWeights expands the compact run-length server counts into a
// per-switch weight slice for balanced partitioning, falling back to unit
// weights when the topology carries no servers.
func (c *core) serverWeights(t *topology.Compact) []int {
	n := t.NumSwitches()
	if cap(c.weights) < n {
		c.weights = make([]int, n)
	}
	c.weights = c.weights[:n]
	sw := 0
	for _, r := range t.Servers {
		for i := int32(0); i < r.Count; i++ {
			c.weights[sw] = int(r.Value)
			sw++
		}
	}
	if t.NumServers() == 0 {
		for i := range c.weights {
			c.weights[i] = 1
		}
	}
	return c.weights
}

// cutBound evaluates the upper bound certified by one vertex bipartition:
// the crossing capacity divided by the larger directional demand across
// it. Returns +Inf when no demand crosses (the cut certifies nothing).
func (c *core) cutBound(csr *graph.CSR, side []bool) float64 {
	cutCap := 0.0
	for _, e := range csr.Edges() {
		if side[e.U] != side[e.V] {
			cutCap++
		}
	}
	var dAB, dBA float64
	for _, cm := range c.eff {
		switch {
		case !side[cm.Src] && side[cm.Dst]:
			dAB += cm.Demand
		case side[cm.Src] && !side[cm.Dst]:
			dBA += cm.Demand
		}
	}
	d := dAB
	if dBA > d {
		d = dBA
	}
	if d <= 0 {
		return math.Inf(1)
	}
	return cutCap / d
}

func resizeFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
