package estimate

import (
	"fmt"
	"math"
	"sort"

	"jellyfish/internal/mcf"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

// sampledEstimator bounds λ* by solving exact MCF on a seeded commodity
// subsample. The upper bound rests on commodity-subset monotonicity:
// dropping commodities only relaxes the program, so
//
//	λ*(full) ≤ λ*(subsample) ≤ dual bound of the subsample solve,
//
// making the sampled dual a certified upper bound on the full instance.
// There is no symmetric shortcut for the lower side (a subsample routing
// says nothing about the dropped demands), so the lower bound is the
// shared shortest-path-routing certificate over the FULL commodity set.
// The subsample is a deterministic function of (seed, |comms|): a seeded
// permutation prefix, sorted back to input order — the sampling
// certificate callers can replay.
type sampledEstimator struct {
	core
	sample    int
	sub       []mcf.Commodity
	idx       []int
	interrupt func() bool
}

// SetInterrupt installs the cooperative cancellation poll threaded into
// this estimator's phase-capped solves (see estimate.Interruptible).
func (e *sampledEstimator) SetInterrupt(f func() bool) { e.interrupt = f }

// solveOptions is the coarse solver configuration for estimator
// solves. The GK dual certificate is valid at every phase, not only at
// convergence, so capping phases and widening the step size keeps both
// bounds sound — the bracket just gets looser. The cap is what holds the
// estimator to interactive latency at megascale (a default 3000-phase
// solve on a 10k-switch instance runs minutes; 64 phases runs seconds).
func (e *sampledEstimator) solveOptions() mcf.Options {
	return mcf.Options{Workers: 1, Epsilon: 0.25, Tol: 0.1, MaxPhases: 64, Interrupt: e.interrupt}
}

func (e *sampledEstimator) Name() string { return "sampled-mcf" }

func (e *sampledEstimator) Estimate(t *topology.Compact, comms []mcf.Commodity) Bounds {
	csr := t.CSR
	if !e.prepare(csr.N(), comms) {
		return infinite()
	}
	lower, bad, ok := e.sprLower(csr)
	if !ok {
		return disconnected(bad)
	}
	upper := e.uplinkCut(csr)
	upperCert := "per-switch uplink cut"

	k := e.sample
	if k > len(e.eff) {
		k = len(e.eff)
	}
	if k == len(e.eff) {
		// Subsample is the whole instance: the (phase-capped) solve runs
		// on the full program, so both certificates come from it.
		res := mcf.MaxConcurrentFlowCSR(csr, e.eff, e.solveOptions())
		if res.UpperBound < upper {
			upper = res.UpperBound
			upperCert = fmt.Sprintf("MCF dual (all %d commodities)", len(e.eff))
		}
		if res.Lambda > lower {
			lower = res.Lambda
			return Bounds{
				Lower:     lower,
				Upper:     upper,
				LowerCert: fmt.Sprintf("MCF primal (all %d commodities)", len(e.eff)),
				UpperCert: upperCert,
			}
		}
		return Bounds{
			Lower:     lower,
			Upper:     upper,
			LowerCert: "shortest-path routing scaled to worst arc overuse",
			UpperCert: upperCert,
		}
	}

	// Seeded sample: permutation prefix, restored to input order so the
	// solver sees commodities in a canonical sequence.
	src := rng.New(e.seed).Split("estimate-sample")
	perm := src.Perm(len(e.eff))
	e.idx = append(e.idx[:0], perm[:k]...)
	sort.Ints(e.idx)
	e.sub = e.sub[:0]
	for _, i := range e.idx {
		e.sub = append(e.sub, e.eff[i])
	}
	res := mcf.MaxConcurrentFlowCSR(csr, e.sub, e.solveOptions())
	if res.UpperBound < upper {
		upper = res.UpperBound
		upperCert = fmt.Sprintf("MCF dual on seeded subsample (%d of %d commodities, seed %d); λ*(full) ≤ λ*(subsample) ≤ dual",
			k, len(e.eff), e.seed)
	}
	if math.IsInf(upper, 1) {
		upperCert = "no binding bound"
	}
	return Bounds{
		Lower:     lower,
		Upper:     upper,
		LowerCert: "shortest-path routing scaled to worst arc overuse",
		UpperCert: upperCert,
	}
}
