package estimate_test

import (
	"math"
	"testing"
	"time"

	"jellyfish/internal/estimate"
	"jellyfish/internal/graph"
	"jellyfish/internal/mcf"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
	"jellyfish/internal/traffic"
)

// paperInstance builds a paper-scale jellyfish (n k-port switches, r
// network links each) with its random-permutation commodities.
func paperInstance(n, k, r int, seed uint64) (*topology.Topology, []mcf.Commodity) {
	top := topology.Jellyfish(n, k, r, rng.New(seed))
	pat := traffic.RandomPermutation(top.ServerSwitches(), rng.New(seed).Split("traffic"))
	return top, pat.Commodities()
}

func allKinds(t *testing.T, sample int, seed uint64) []estimate.ThroughputEstimator {
	t.Helper()
	ests := make([]estimate.ThroughputEstimator, 0, 3)
	for _, kind := range estimate.Kinds() {
		est, err := estimate.New(kind, sample, seed)
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		ests = append(ests, est)
	}
	return ests
}

// The bound contract at paper scale: the exact answer always lands inside
// every estimator's bracket. The exact solver itself returns a certified
// interval [Lambda, UpperBound] ∋ λ*, so the robust consistency assertion
// is interval overlap: est.Lower ≤ exact.UpperBound and exact.Lambda ≤
// est.Upper — anything else proves one of the two certificates wrong.
func TestBracketsExactAtPaperScale(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		top, comms := paperInstance(50, 8, 5, seed)
		exact := mcf.MaxConcurrentFlow(top.Graph, comms, mcf.Options{Workers: 1})
		compact := top.Compact()
		for _, est := range allKinds(t, 16, seed) {
			b := est.Estimate(compact, comms)
			if !(b.Lower <= b.Upper+1e-9) {
				t.Errorf("seed %d %s: inverted bounds [%v, %v]", seed, est.Name(), b.Lower, b.Upper)
			}
			if b.Lower > exact.UpperBound+1e-9 {
				t.Errorf("seed %d %s: lower bound %v exceeds exact dual %v (%s)",
					seed, est.Name(), b.Lower, exact.UpperBound, b.LowerCert)
			}
			if exact.Lambda > b.Upper+1e-9 {
				t.Errorf("seed %d %s: exact primal %v exceeds upper bound %v (%s)",
					seed, est.Name(), exact.Lambda, b.Upper, b.UpperCert)
			}
			if b.Lower <= 0 {
				t.Errorf("seed %d %s: vacuous lower bound %v on a connected instance", seed, est.Name(), b.Lower)
			}
			if math.IsInf(b.Upper, 1) {
				t.Errorf("seed %d %s: vacuous upper bound on a demanding instance", seed, est.Name())
			}
		}
	}
}

// Estimate is a pure function: repeated calls on one estimator (scratch
// reuse) and calls on a fresh estimator with the same construction
// parameters return identical Bounds.
func TestEstimateDeterministic(t *testing.T) {
	top, comms := paperInstance(40, 8, 5, 3)
	compact := top.Compact()
	for _, kind := range estimate.Kinds() {
		a, _ := estimate.New(kind, 16, 99)
		b, _ := estimate.New(kind, 16, 99)
		r1 := a.Estimate(compact, comms)
		r2 := a.Estimate(compact, comms) // scratch reuse
		r3 := b.Estimate(compact, comms) // fresh instance
		if r1 != r2 {
			t.Errorf("%s: repeated call diverged: %+v vs %+v", kind, r1, r2)
		}
		if r1 != r3 {
			t.Errorf("%s: fresh instance diverged: %+v vs %+v", kind, r1, r3)
		}
	}
}

func TestNoEffectiveCommodities(t *testing.T) {
	top, _ := paperInstance(10, 6, 4, 1)
	compact := top.Compact()
	degenerate := []mcf.Commodity{{Src: 1, Dst: 1, Demand: 5}, {Src: 2, Dst: 3, Demand: 0}}
	for _, est := range allKinds(t, 0, 1) {
		for _, comms := range [][]mcf.Commodity{nil, degenerate} {
			b := est.Estimate(compact, comms)
			if !math.IsInf(b.Lower, 1) || !math.IsInf(b.Upper, 1) {
				t.Errorf("%s: bounds %+v for no effective commodities, want +Inf", est.Name(), b)
			}
		}
	}
}

// trianglePair builds two disjoint triangles: {0,1,2} and {3,4,5}.
func trianglePair() *graph.Graph {
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestDisconnectedCommodityBounds(t *testing.T) {
	// Two separate triangles; a commodity across them has λ* = 0.
	top := &topology.Topology{Name: "split", Graph: trianglePair(), Ports: make([]int, 6), Servers: make([]int, 6)}
	compact := top.Compact()
	comms := []mcf.Commodity{{Src: 0, Dst: 5, Demand: 1}}
	for _, est := range allKinds(t, 0, 1) {
		b := est.Estimate(compact, comms)
		if b.Lower != 0 || b.Upper != 0 {
			t.Errorf("%s: bounds %+v for disconnected commodity, want [0, 0]", est.Name(), b)
		}
	}
}

// Small subsample sizes must still produce sound (if loose) bounds.
func TestSampledSmallSample(t *testing.T) {
	top, comms := paperInstance(50, 8, 5, 11)
	exact := mcf.MaxConcurrentFlow(top.Graph, comms, mcf.Options{Workers: 1})
	for _, sample := range []int{1, 4, 1 << 20} {
		est, err := estimate.New("sampled-mcf", sample, 11)
		if err != nil {
			t.Fatal(err)
		}
		b := est.Estimate(top.Compact(), comms)
		if b.Lower > exact.UpperBound+1e-9 || exact.Lambda > b.Upper+1e-9 {
			t.Errorf("sample %d: exact [%v, %v] outside bracket [%v, %v]",
				sample, exact.Lambda, exact.UpperBound, b.Lower, b.Upper)
		}
	}
}

func benchEstimate(b *testing.B, kind string) {
	b.Helper()
	top := topology.Jellyfish(200, 12, 9, rng.New(2))
	pat := traffic.RandomPermutation(top.ServerSwitches(), rng.New(2).Split("traffic"))
	comms := pat.Commodities()
	compact := top.Compact()
	est, err := estimate.New(kind, estimate.DefaultSample, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bounds := est.Estimate(compact, comms)
		if bounds.Lower <= 0 {
			b.Fatalf("vacuous bounds %+v", bounds)
		}
	}
}

func BenchmarkEstimateBisection(b *testing.B)  { benchEstimate(b, "bisection") }
func BenchmarkEstimateSpectral(b *testing.B)   { benchEstimate(b, "spectral") }
func BenchmarkEstimateSampledMCF(b *testing.B) { benchEstimate(b, "sampled-mcf") }

// TestScaleSmoke pins the megascale acceptance bar: a 10k-switch
// jellyfish's compact build plus all three estimators complete within a
// wall-clock budget and produce non-vacuous certified bounds. Gated out
// of -short; CI runs it in the scale-smoke job.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke skipped in -short")
	}
	const n, k, r = 10000, 12, 9
	start := time.Now()
	top := topology.Jellyfish(n, k, r, rng.New(5))
	pat := traffic.RandomPermutation(top.ServerSwitches(), rng.New(5).Split("traffic"))
	comms := pat.Commodities()
	buildStart := time.Now()
	compact := top.Compact()
	if d := time.Since(buildStart); d > 10*time.Second {
		t.Errorf("Compact build took %v, budget 10s", d)
	}
	if compact.NumSwitches() != n || compact.NumServers() != n*(k-r) {
		t.Fatalf("compact dims: %d switches %d servers", compact.NumSwitches(), compact.NumServers())
	}
	t.Logf("construction+traffic %v (%d commodities, %d links)", time.Since(start), len(comms), compact.NumLinks())

	for _, est := range allKinds(t, 0, 5) {
		estStart := time.Now()
		b := est.Estimate(compact, comms)
		d := time.Since(estStart)
		t.Logf("%s: [%v, %v] in %v (upper: %s)", est.Name(), b.Lower, b.Upper, d, b.UpperCert)
		if d > 60*time.Second {
			t.Errorf("%s took %v, budget 60s", est.Name(), d)
		}
		if b.Lower <= 0 || b.Lower > b.Upper+1e-9 || math.IsInf(b.Upper, 1) {
			t.Errorf("%s: vacuous or inverted bounds [%v, %v] at scale", est.Name(), b.Lower, b.Upper)
		}
	}
}
