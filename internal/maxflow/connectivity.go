package maxflow

import "jellyfish/internal/graph"

// EdgeConnectivity returns the global edge connectivity of the undirected
// graph (the minimum number of links whose removal disconnects it), by
// taking the minimum s-t max flow from a fixed source to every other
// vertex on the unit-capacity network. Returns 0 for graphs with fewer
// than 2 vertices or any isolated vertex.
//
// The Jellyfish paper leans on the fact that an r-regular random graph is
// almost surely r-connected (§4.3); this function verifies that property
// on concrete instances.
func EdgeConnectivity(g *graph.Graph) int {
	n := g.N()
	if n < 2 {
		return 0
	}
	best := -1
	for t := 1; t < n; t++ {
		nw := New(n)
		for _, e := range g.Edges() {
			nw.AddUndirected(e.U, e.V, 1)
		}
		f := int(nw.MaxFlow(0, t) + 0.5)
		if best < 0 || f < best {
			best = f
		}
		if best == 0 {
			break
		}
	}
	return best
}
