// Package maxflow implements Dinic's maximum-flow algorithm on directed
// networks with float64 capacities. It is used to compute exact minimum cuts
// (bisection certificates) on the explicit topologies built elsewhere in this
// repository, and to verify the r-connectivity claims the Jellyfish paper
// makes about random regular graphs.
package maxflow

import "math"

// eps guards float comparisons on residual capacities.
const eps = 1e-12

// Network is a flow network on vertices 0..N-1.
// Arcs are directed; use AddUndirected for bidirectional capacity.
type Network struct {
	n     int
	head  [][]int // arc indices per node
	to    []int
	cap   []float64
	level []int
	iter  []int
}

// New returns an empty network with n vertices.
func New(n int) *Network {
	return &Network{n: n, head: make([][]int, n)}
}

// N returns the vertex count.
func (nw *Network) N() int { return nw.n }

// AddArc adds a directed arc u->v with the given capacity and returns its
// arc index. A reverse arc with zero capacity is added automatically.
func (nw *Network) AddArc(u, v int, c float64) int {
	if c < 0 {
		panic("maxflow: negative capacity")
	}
	id := len(nw.to)
	nw.to = append(nw.to, v, u)
	nw.cap = append(nw.cap, c, 0)
	nw.head[u] = append(nw.head[u], id)
	nw.head[v] = append(nw.head[v], id+1)
	return id
}

// AddUndirected adds capacity c in both directions between u and v.
func (nw *Network) AddUndirected(u, v int, c float64) {
	// Two arcs whose reverse arcs carry the opposite direction's capacity:
	// a single pair with cap c on both entries models an undirected edge.
	id := len(nw.to)
	nw.to = append(nw.to, v, u)
	nw.cap = append(nw.cap, c, c)
	nw.head[u] = append(nw.head[u], id)
	nw.head[v] = append(nw.head[v], id+1)
}

// MaxFlow computes the maximum s-t flow. The network's residual state is
// consumed; call MinCutSide afterwards to read the cut.
func (nw *Network) MaxFlow(s, t int) float64 {
	if s == t {
		return math.Inf(1)
	}
	var flow float64
	nw.level = make([]int, nw.n)
	nw.iter = make([]int, nw.n)
	for nw.bfsLevel(s, t) {
		for i := range nw.iter {
			nw.iter[i] = 0
		}
		for {
			f := nw.dfsAugment(s, t, math.Inf(1))
			if f <= eps {
				break
			}
			flow += f
		}
	}
	return flow
}

func (nw *Network) bfsLevel(s, t int) bool {
	for i := range nw.level {
		nw.level[i] = -1
	}
	queue := make([]int, 0, nw.n)
	queue = append(queue, s)
	nw.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range nw.head[u] {
			v := nw.to[a]
			if nw.cap[a] > eps && nw.level[v] < 0 {
				nw.level[v] = nw.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return nw.level[t] >= 0
}

func (nw *Network) dfsAugment(u, t int, f float64) float64 {
	if u == t {
		return f
	}
	for ; nw.iter[u] < len(nw.head[u]); nw.iter[u]++ {
		a := nw.head[u][nw.iter[u]]
		v := nw.to[a]
		if nw.cap[a] <= eps || nw.level[v] != nw.level[u]+1 {
			continue
		}
		d := nw.dfsAugment(v, t, math.Min(f, nw.cap[a]))
		if d > eps {
			nw.cap[a] -= d
			nw.cap[a^1] += d
			return d
		}
	}
	return 0
}

// MinCutSide returns, after MaxFlow(s,t), the set of vertices reachable from
// s in the residual network (the s-side of a minimum cut).
func (nw *Network) MinCutSide(s int) []bool {
	side := make([]bool, nw.n)
	queue := []int{s}
	side[s] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range nw.head[u] {
			v := nw.to[a]
			if nw.cap[a] > eps && !side[v] {
				side[v] = true
				queue = append(queue, v)
			}
		}
	}
	return side
}
