package maxflow

import (
	"testing"

	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

func TestEdgeConnectivityRing(t *testing.T) {
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddEdge(i, (i+1)%8)
	}
	if c := EdgeConnectivity(g); c != 2 {
		t.Fatalf("ring connectivity = %d, want 2", c)
	}
}

func TestEdgeConnectivityPath(t *testing.T) {
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	if c := EdgeConnectivity(g); c != 1 {
		t.Fatalf("path connectivity = %d, want 1", c)
	}
}

func TestEdgeConnectivityDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	if c := EdgeConnectivity(g); c != 0 {
		t.Fatalf("disconnected graph connectivity = %d, want 0", c)
	}
}

func TestEdgeConnectivityComplete(t *testing.T) {
	g := graph.New(6)
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			g.AddEdge(u, v)
		}
	}
	if c := EdgeConnectivity(g); c != 5 {
		t.Fatalf("K6 connectivity = %d, want 5", c)
	}
}

func TestEdgeConnectivityTiny(t *testing.T) {
	if EdgeConnectivity(graph.New(1)) != 0 {
		t.Fatal("single vertex connectivity != 0")
	}
	if EdgeConnectivity(graph.New(0)) != 0 {
		t.Fatal("empty graph connectivity != 0")
	}
}

// Paper §4.3: an r-regular random graph is almost surely r-connected.
// Verify on a handful of Jellyfish instances.
func TestJellyfishIsRConnected(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		r := 6
		top := topology.Jellyfish(30, 10, r, rng.New(seed))
		if c := EdgeConnectivity(top.Graph); c != r {
			t.Fatalf("seed %d: RRG edge connectivity = %d, want %d", seed, c, r)
		}
	}
}

// Hoffman–Singleton (7-regular Moore graph) is 7-edge-connected.
func TestHoffmanSingletonConnectivity(t *testing.T) {
	if c := EdgeConnectivity(topology.HoffmanSingleton()); c != 7 {
		t.Fatalf("HS connectivity = %d, want 7", c)
	}
}
