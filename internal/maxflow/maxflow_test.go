package maxflow

import (
	"math"
	"math/rand"
	"testing"

	"jellyfish/internal/graph"
)

func TestSingleArc(t *testing.T) {
	nw := New(2)
	nw.AddArc(0, 1, 3.5)
	if f := nw.MaxFlow(0, 1); f != 3.5 {
		t.Fatalf("flow = %v, want 3.5", f)
	}
}

func TestNoPath(t *testing.T) {
	nw := New(3)
	nw.AddArc(0, 1, 1)
	if f := nw.MaxFlow(0, 2); f != 0 {
		t.Fatalf("flow = %v, want 0", f)
	}
}

func TestSeriesBottleneck(t *testing.T) {
	nw := New(3)
	nw.AddArc(0, 1, 5)
	nw.AddArc(1, 2, 2)
	if f := nw.MaxFlow(0, 2); f != 2 {
		t.Fatalf("flow = %v, want 2", f)
	}
}

func TestParallelPaths(t *testing.T) {
	nw := New(4)
	nw.AddArc(0, 1, 1)
	nw.AddArc(1, 3, 1)
	nw.AddArc(0, 2, 2)
	nw.AddArc(2, 3, 2)
	if f := nw.MaxFlow(0, 3); f != 3 {
		t.Fatalf("flow = %v, want 3", f)
	}
}

// Classic CLRS example network.
func TestCLRSExample(t *testing.T) {
	nw := New(6)
	nw.AddArc(0, 1, 16)
	nw.AddArc(0, 2, 13)
	nw.AddArc(1, 2, 10)
	nw.AddArc(2, 1, 4)
	nw.AddArc(1, 3, 12)
	nw.AddArc(3, 2, 9)
	nw.AddArc(2, 4, 14)
	nw.AddArc(4, 3, 7)
	nw.AddArc(3, 5, 20)
	nw.AddArc(4, 5, 4)
	if f := nw.MaxFlow(0, 5); f != 23 {
		t.Fatalf("flow = %v, want 23", f)
	}
}

func TestUndirectedEdgeBothDirections(t *testing.T) {
	nw := New(2)
	nw.AddUndirected(0, 1, 2)
	if f := nw.MaxFlow(0, 1); f != 2 {
		t.Fatalf("forward flow = %v, want 2", f)
	}
	nw2 := New(2)
	nw2.AddUndirected(0, 1, 2)
	if f := nw2.MaxFlow(1, 0); f != 2 {
		t.Fatalf("reverse flow = %v, want 2", f)
	}
}

func TestUndirectedRing(t *testing.T) {
	// Unit-capacity ring: two disjoint paths between any pair.
	n := 8
	nw := New(n)
	for i := 0; i < n; i++ {
		nw.AddUndirected(i, (i+1)%n, 1)
	}
	if f := nw.MaxFlow(0, 4); f != 2 {
		t.Fatalf("ring flow = %v, want 2", f)
	}
}

func TestMinCutSide(t *testing.T) {
	nw := New(4)
	nw.AddArc(0, 1, 10)
	nw.AddArc(1, 2, 1) // bottleneck
	nw.AddArc(2, 3, 10)
	f := nw.MaxFlow(0, 3)
	if f != 1 {
		t.Fatalf("flow = %v, want 1", f)
	}
	side := nw.MinCutSide(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Fatalf("cut side = %v, want [true true false false]", side)
	}
}

func TestSameSourceSink(t *testing.T) {
	nw := New(2)
	nw.AddArc(0, 1, 1)
	if f := nw.MaxFlow(0, 0); !math.IsInf(f, 1) {
		t.Fatalf("s==t flow = %v, want +Inf", f)
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative capacity did not panic")
		}
	}()
	New(2).AddArc(0, 1, -1)
}

// Property: on a random r-regular-ish unit-capacity undirected graph, the
// s-t max flow equals min(deg(s), deg(t)) at most and is at least 1 when
// connected. Also verify flow equals capacity across the returned cut.
func TestFlowEqualsCutCapacity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 6 + r.Intn(15)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		nw := New(n)
		for _, e := range g.Edges() {
			nw.AddUndirected(e.U, e.V, 1)
		}
		s, tt := 0, n-1
		f := nw.MaxFlow(s, tt)
		side := nw.MinCutSide(s)
		if side[tt] && f > 0 {
			t.Fatal("sink on source side of cut with positive flow")
		}
		// Cut capacity = number of original edges crossing the side split.
		cut := 0.0
		for _, e := range g.Edges() {
			if side[e.U] != side[e.V] {
				cut++
			}
		}
		if math.Abs(f-cut) > 1e-9 {
			t.Fatalf("flow %v != cut capacity %v", f, cut)
		}
		// Flow cannot exceed either endpoint degree.
		if f > float64(g.Degree(s)) || f > float64(g.Degree(tt)) {
			t.Fatalf("flow %v exceeds endpoint degree", f)
		}
	}
}

// The paper cites that an r-regular random graph is almost surely
// r-connected; verify EdgeConnectivity-style flows on a known r-regular
// graph (complete bipartite K4,4 is 4-regular and 4-edge-connected).
func TestK44EdgeConnectivity(t *testing.T) {
	nw := New(8)
	for u := 0; u < 4; u++ {
		for v := 4; v < 8; v++ {
			nw.AddUndirected(u, v, 1)
		}
	}
	if f := nw.MaxFlow(0, 1); f != 4 {
		t.Fatalf("K4,4 same-side flow = %v, want 4", f)
	}
}
