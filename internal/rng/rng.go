// Package rng provides deterministic, splittable random number generation
// shared by every topology generator and experiment harness in this
// repository. All randomized procedures in the paper (RRG construction,
// permutation traffic, link failures, ...) are seeded through this package so
// that every figure is exactly reproducible from a root seed.
package rng

import "math/rand"

// A Source is a deterministic random stream. It wraps math/rand.Rand with a
// stable seed-splitting scheme so that independent components of an
// experiment (topology, traffic, failures) draw from independent streams.
type Source struct {
	*rand.Rand
	seed uint64
}

// New returns a source seeded with seed.
func New(seed uint64) *Source {
	return &Source{Rand: rand.New(rand.NewSource(int64(mix(seed)))), seed: seed}
}

// Seed reports the seed this source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Split derives an independent source for the named sub-component. Calling
// Split with the same label always yields the same stream, regardless of how
// much the parent stream has been consumed.
func (s *Source) Split(label string) *Source {
	h := s.seed
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 0x100000001b3
	}
	return New(mix(h))
}

// SplitN derives an independent source for the i-th trial of the named
// sub-component.
func (s *Source) SplitN(label string, i int) *Source {
	h := s.Split(label).seed
	return New(mix(h ^ (0x9e3779b97f4a7c15 * uint64(i+1))))
}

// mix is the SplitMix64 finalizer; it decorrelates nearby seeds.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Perm returns a random permutation of n elements, like rand.Perm but
// guaranteed to use this source.
func (s *Source) Perm(n int) []int { return s.Rand.Perm(n) }

// Shuffle shuffles the ints in place.
func (s *Source) ShuffleInts(xs []int) {
	s.Rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
