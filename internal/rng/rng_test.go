package rng

import "testing"

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := true
	for i := 0; i < 20; i++ {
		if a.Intn(1<<30) != b.Intn(1<<30) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a := New(7)
	a.Intn(100) // consume some of the parent stream
	s1 := a.Split("topology")
	b := New(7)
	s2 := b.Split("topology")
	for i := 0; i < 50; i++ {
		if s1.Intn(1000) != s2.Intn(1000) {
			t.Fatal("Split depends on parent consumption")
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	a := New(7)
	s1, s2 := a.Split("x"), a.Split("y")
	same := true
	for i := 0; i < 20; i++ {
		if s1.Intn(1<<30) != s2.Intn(1<<30) {
			same = false
		}
	}
	if same {
		t.Fatal("different labels produced identical streams")
	}
}

func TestSplitNDiffers(t *testing.T) {
	a := New(7)
	s0, s1 := a.SplitN("trial", 0), a.SplitN("trial", 1)
	same := true
	for i := 0; i < 20; i++ {
		if s0.Intn(1<<30) != s1.Intn(1<<30) {
			same = false
		}
	}
	if same {
		t.Fatal("different trial indices produced identical streams")
	}
}

func TestSeedAccessor(t *testing.T) {
	if New(99).Seed() != 99 {
		t.Fatal("Seed() wrong")
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(3).Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleInts(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	New(5).ShuffleInts(xs)
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatal("shuffle changed multiset")
	}
}
