package routing

import (
	"testing"

	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

func ecmp(g *graph.Graph, pairs []Pair, w int) *Table {
	return ECMP(g, pairs, w, rng.New(99), 4)
}

func ring(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestECMPFindsAllEqualCostPaths(t *testing.T) {
	// Ring of 4: exactly two equal-cost 2-hop paths 0→2.
	g := ring(4)
	tab := ecmp(g, []Pair{{0, 2}}, 8)
	paths := tab.PathsFor(0, 2)
	if len(paths) != 2 {
		t.Fatalf("got %d ECMP paths, want 2: %v", len(paths), paths)
	}
	for _, p := range paths {
		if p.Len() != 2 {
			t.Fatalf("non-shortest ECMP path: %v", p)
		}
	}
}

// Regression: with exactly w equal-cost paths the table must hold all w —
// the doc promises exhaustive dedup in that regime, but rejection sampling
// under a bounded attempt budget could come up short. The θ-graph below
// has exactly 8 two-hop 0→9 paths (one per middle vertex); enumeration
// must return every one of them for w = 8, every time.
func TestECMPExactlyWPathsAllReturned(t *testing.T) {
	g := graph.New(10)
	for mid := 1; mid <= 8; mid++ {
		g.AddEdge(0, mid)
		g.AddEdge(mid, 9)
	}
	for seed := uint64(1); seed <= 20; seed++ {
		tab := ECMP(g, []Pair{{0, 9}}, 8, rng.New(seed), 1)
		paths := tab.PathsFor(0, 9)
		if len(paths) != 8 {
			t.Fatalf("seed %d: got %d of the 8 equal-cost paths: %v", seed, len(paths), paths)
		}
		seen := map[int]bool{}
		for _, p := range paths {
			if p.Len() != 2 || p[0] != 0 || p[2] != 9 {
				t.Fatalf("seed %d: unexpected path %v", seed, p)
			}
			seen[p[1]] = true
		}
		if len(seen) != 8 {
			t.Fatalf("seed %d: paths not distinct: %v", seed, paths)
		}
	}
}

func TestECMPWidthCap(t *testing.T) {
	// K5 minus direct edge: many 2-hop paths 0→1; cap at 2.
	g := graph.New(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.AddEdge(u, v)
		}
	}
	g.RemoveEdge(0, 1)
	tab := ecmp(g, []Pair{{0, 1}}, 2)
	if got := len(tab.PathsFor(0, 1)); got != 2 {
		t.Fatalf("got %d paths with w=2, want 2", got)
	}
}

func TestECMPOnlyShortest(t *testing.T) {
	// Diamond with a longer detour: ECMP must exclude the detour.
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	tab := ecmp(g, []Pair{{0, 2}}, 8)
	paths := tab.PathsFor(0, 2)
	if len(paths) != 1 || paths[0].Len() != 2 {
		t.Fatalf("ECMP paths = %v, want single 2-hop", paths)
	}
}

func TestKShortestIncludesLonger(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	tab := KShortest(g, []Pair{{0, 2}}, 8, 4)
	paths := tab.PathsFor(0, 2)
	if len(paths) != 2 {
		t.Fatalf("kSP paths = %v, want 2", paths)
	}
	if paths[0].Len() != 2 || paths[1].Len() != 3 {
		t.Fatalf("kSP lengths = %d,%d, want 2,3", paths[0].Len(), paths[1].Len())
	}
}

func TestTableKinds(t *testing.T) {
	g := ring(4)
	if k := ecmp(g, nil, 64).Kind; k != "ecmp-64" {
		t.Fatalf("kind = %q", k)
	}
	if k := KShortest(g, nil, 8, 4).Kind; k != "ksp-8" {
		t.Fatalf("kind = %q", k)
	}
}

func TestUnreachablePair(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	if p := ecmp(g, []Pair{{0, 2}}, 8).PathsFor(0, 2); p != nil {
		t.Fatalf("ECMP found paths to unreachable: %v", p)
	}
	if p := KShortest(g, []Pair{{0, 2}}, 8, 4).PathsFor(0, 2); p != nil {
		t.Fatalf("kSP found paths to unreachable: %v", p)
	}
}

func TestLinkLoadCountsDirected(t *testing.T) {
	// Path 0-1-2, route 0→2 and 2→0: each direction counted separately.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tab := KShortest(g, []Pair{{0, 2}, {2, 0}}, 4, 4)
	load := LinkLoad(g, tab)
	if load[[2]int{0, 1}] != 1 || load[[2]int{1, 0}] != 1 {
		t.Fatalf("directed loads = %v", load)
	}
	if len(load) != 4 {
		t.Fatalf("expected 4 directed links, got %d", len(load))
	}
}

func TestLinkLoadIncludesUnusedLinks(t *testing.T) {
	g := ring(6)
	tab := KShortest(g, []Pair{{0, 1}}, 1, 4)
	load := LinkLoad(g, tab)
	if len(load) != 12 {
		t.Fatalf("got %d directed links, want 12", len(load))
	}
	zero := 0
	for _, c := range load {
		if c == 0 {
			zero++
		}
	}
	if zero != 11 {
		t.Fatalf("zero-load links = %d, want 11", zero)
	}
}

func TestRankedLinkLoadsSorted(t *testing.T) {
	g := ring(6)
	tab := KShortest(g, []Pair{{0, 3}, {1, 4}}, 4, 4)
	ranks := RankedLinkLoads(g, tab)
	for i := 1; i < len(ranks); i++ {
		if ranks[i] < ranks[i-1] {
			t.Fatal("ranks not ascending")
		}
	}
}

func TestPairsForCommodities(t *testing.T) {
	pairs := PairsForCommodities([][2]int{{0, 1}, {0, 1}, {1, 1}, {2, 0}})
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v, want 2 entries", pairs)
	}
	if pairs[0] != (Pair{0, 1}) || pairs[1] != (Pair{2, 0}) {
		t.Fatalf("pairs = %v", pairs)
	}
}

// Fig. 9's core claim at small scale: 8-shortest-path routing spreads load
// over strictly more links than 8-way ECMP on a Jellyfish topology.
func TestKSPUsesMoreLinksThanECMP(t *testing.T) {
	top := topology.Jellyfish(40, 10, 6, rng.New(2))
	var pairs []Pair
	for s := 0; s < 40; s++ {
		pairs = append(pairs, Pair{s, (s + 7) % 40})
	}
	ecmp := ecmp(top.Graph, pairs, 8)
	ksp := KShortest(top.Graph, pairs, 8, 4)
	usedECMP, usedKSP := 0, 0
	for _, c := range LinkLoad(top.Graph, ecmp) {
		if c > 0 {
			usedECMP++
		}
	}
	for _, c := range LinkLoad(top.Graph, ksp) {
		if c > 0 {
			usedKSP++
		}
	}
	if usedKSP <= usedECMP {
		t.Fatalf("kSP uses %d links, ECMP %d — expected kSP > ECMP", usedKSP, usedECMP)
	}
}

// Route tables must be identical for every worker count: kSP is pure
// fan-out, and ECMP samples from per-source streams derived by source id
// rather than a shared sequentially-consumed stream.
func TestTablesIdenticalAcrossWorkerCounts(t *testing.T) {
	top := topology.Jellyfish(40, 10, 6, rng.New(3))
	var pairs []Pair
	for s := 0; s < 40; s++ {
		pairs = append(pairs, Pair{s, (s + 11) % 40}, Pair{s, (s + 23) % 40})
	}
	samePaths := func(a, b *Table) bool {
		if len(a.Paths) != len(b.Paths) {
			return false
		}
		for p, pa := range a.Paths {
			pb, ok := b.Paths[p]
			if !ok || len(pa) != len(pb) {
				return false
			}
			for i := range pa {
				if pathKey(pa[i]) != pathKey(pb[i]) {
					return false
				}
			}
		}
		return true
	}
	kspSerial := KShortest(top.Graph, pairs, 8, 1)
	ecmpSerial := ECMP(top.Graph, pairs, 8, rng.New(99), 1)
	for _, w := range []int{2, 8, 0} {
		if !samePaths(kspSerial, KShortest(top.Graph, pairs, 8, w)) {
			t.Fatalf("kSP table differs at workers=%d", w)
		}
		if !samePaths(ecmpSerial, ECMP(top.Graph, pairs, 8, rng.New(99), w)) {
			t.Fatalf("ECMP table differs at workers=%d", w)
		}
	}
}

func TestDedupPairs(t *testing.T) {
	got := dedupPairs([]Pair{{0, 1}, {2, 3}, {0, 1}, {2, 3}, {4, 5}})
	want := []Pair{{0, 1}, {2, 3}, {4, 5}}
	if len(got) != len(want) {
		t.Fatalf("dedupPairs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupPairs[%d] = %v, want %v (first-appearance order)", i, got[i], want[i])
		}
	}
}
