package routing

import (
	"testing"

	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

func tablesEqual(t *testing.T, label string, a, b *Table) {
	t.Helper()
	if a.Kind != b.Kind {
		t.Fatalf("%s: kind %q vs %q", label, a.Kind, b.Kind)
	}
	if len(a.Paths) != len(b.Paths) {
		t.Fatalf("%s: %d pairs vs %d", label, len(a.Paths), len(b.Paths))
	}
	for pair, ap := range a.Paths {
		bp, ok := b.Paths[pair]
		if !ok {
			t.Fatalf("%s: pair %v missing", label, pair)
		}
		if len(ap) != len(bp) {
			t.Fatalf("%s: pair %v has %d vs %d paths", label, pair, len(ap), len(bp))
		}
		for i := range ap {
			if !ap[i].Equal(bp[i]) {
				t.Fatalf("%s: pair %v path %d = %v vs %v", label, pair, i, ap[i], bp[i])
			}
		}
	}
}

// A Compiled instance must produce tables byte-identical to the one-shot
// constructors, on first build (cold memo), on rebuild (warm memo), and
// for pair sets that only partially overlap the memo.
func TestCompiledMatchesOneShot(t *testing.T) {
	top := topology.Jellyfish(40, 10, 6, rng.New(5))
	g := top.Graph
	var pairsA, pairsB []Pair
	for s := 0; s < 20; s++ {
		pairsA = append(pairsA, Pair{s, (s + 7) % 40}, Pair{s, (s + 13) % 40})
		pairsB = append(pairsB, Pair{s, (s + 13) % 40}, Pair{(s + 5) % 40, s})
	}

	c := NewCompiled(g)
	for round := 0; round < 2; round++ {
		for _, pairs := range [][]Pair{pairsA, pairsB} {
			tablesEqual(t, "ksp", KShortest(g, pairs, 8, 1), c.KShortest(pairs, 8, 2))
			// Different k must not collide in the memo.
			tablesEqual(t, "ksp4", KShortest(g, pairs, 4, 1), c.KShortest(pairs, 4, 1))
			tablesEqual(t, "ecmp", ECMP(g, pairs, 8, rng.New(99), 1), c.ECMP(pairs, 8, rng.New(99), 2))
		}
	}
}

// The ECMP stream contract: per-source sampling streams are derived by
// source id from the passed src, so a compiled rebuild with the same src
// replays identical draws no matter what was built in between.
func TestCompiledECMPStreamIdentity(t *testing.T) {
	top := topology.Jellyfish(30, 8, 5, rng.New(11))
	pairs := []Pair{{0, 9}, {4, 21}, {17, 3}, {9, 0}}
	c := NewCompiled(top.Graph)
	first := c.ECMP(pairs, 8, rng.New(42), 1)
	c.KShortest(pairs, 8, 1) // unrelated interleaved work
	c.ECMP([]Pair{{2, 14}}, 64, rng.New(7), 1)
	again := c.ECMP(pairs, 8, rng.New(42), 1)
	tablesEqual(t, "ecmp-replay", first, again)
}

func TestCompiledConcurrentUse(t *testing.T) {
	top := topology.Jellyfish(30, 8, 5, rng.New(3))
	var pairs []Pair
	for s := 0; s < 30; s++ {
		pairs = append(pairs, Pair{s, (s + 11) % 30})
	}
	c := NewCompiled(top.Graph)
	want := KShortest(top.Graph, pairs, 8, 1)
	done := make(chan *Table, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- c.KShortest(pairs, 8, 1) }()
	}
	for i := 0; i < 4; i++ {
		tablesEqual(t, "concurrent", want, <-done)
	}
}
