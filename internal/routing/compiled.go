package routing

import (
	"sort"
	"sync"

	"jellyfish/internal/graph"
	"jellyfish/internal/parallel"
	"jellyfish/internal/rng"
)

// A Compiled instance is the reusable routing state of one switch graph:
// it memoizes the pure, expensive pieces of table construction — Yen
// k-shortest path sets per (src, dst, k) and the per-source BFS
// distance/path-count state behind ECMP sampling — so repeated table
// builds over the same topology (Table 1's three protocols × trials, a
// capacity search's trials within one probe, the planning service's
// repeated transport evaluations) stop recomputing them.
//
// Tables built through a Compiled instance are bit-identical to the
// package-level ECMP/KShortest constructors: the memoized values are pure
// functions of (graph, key), and the ECMP sampling loop — the only
// stream-consuming part — runs the identical code over them. Reuse
// changes wall-clock, never a path set (compiled_test.go pins this).
//
// A Compiled instance is safe for concurrent use; memoized path slices
// are shared across the tables it produces and must be treated as
// read-only, which every consumer of a Table already does. It must be
// discarded if the underlying graph mutates (the incremental searches
// build one per probe).
type Compiled struct {
	g   *graph.Graph
	csr *graph.CSR // adjacency snapshot taken at NewCompiled

	mu   sync.Mutex
	ksp  map[kspKey][]graph.Path
	ecmp map[int]*ecmpSource
}

type kspKey struct {
	src, dst, k int32
}

// ecmpSource is the sampling-independent per-source state of ECMP table
// construction: BFS levels and shortest-path counts.
type ecmpSource struct {
	dist    []int
	npaths  []float64
	unblock chan struct{} // closed when dist/npaths are ready
}

// NewCompiled returns an empty compiled instance for g.
func NewCompiled(g *graph.Graph) *Compiled {
	return &Compiled{g: g, csr: g.CSR(), ksp: map[kspKey][]graph.Path{}, ecmp: map[int]*ecmpSource{}}
}

// Graph returns the graph this instance was compiled against.
func (c *Compiled) Graph() *graph.Graph { return c.g }

// KShortest builds the k-shortest-path table for the given pairs,
// computing only the pairs this instance has not seen before (fanned out
// over `workers` goroutines, each with its own flat-scratch KSPEngine)
// and serving the rest from the memo. Bit-identical to the package-level
// KShortest.
func (c *Compiled) KShortest(pairs []Pair, k, workers int) *Table {
	t := &Table{Paths: make(map[Pair][]graph.Path, len(pairs)), Kind: kindName("ksp", k)}
	uniq := dedupPairs(pairs)

	c.mu.Lock()
	missing := make([]Pair, 0, len(uniq))
	for _, p := range uniq {
		if _, ok := c.ksp[kspKey{int32(p.Src), int32(p.Dst), int32(k)}]; !ok {
			missing = append(missing, p)
		}
	}
	c.mu.Unlock()

	if len(missing) > 0 {
		engines := make([]*graph.KSPEngine, parallel.Workers(workers))
		computed := parallel.MapWorker(workers, len(missing), func(worker, i int) []graph.Path {
			if engines[worker] == nil {
				engines[worker] = graph.NewKSPEngine(c.g)
			}
			return engines[worker].Paths(missing[i].Src, missing[i].Dst, k)
		})
		c.mu.Lock()
		for i, p := range missing {
			c.ksp[kspKey{int32(p.Src), int32(p.Dst), int32(k)}] = computed[i]
		}
		c.mu.Unlock()
	}

	c.mu.Lock()
	for _, p := range uniq {
		t.Paths[p] = c.ksp[kspKey{int32(p.Src), int32(p.Dst), int32(k)}]
	}
	c.mu.Unlock()
	return t
}

// ECMP builds an equal-cost multipath table for the given pairs, sampling
// from src exactly like the package-level ECMP — per-source streams
// derived by source id, destinations visited in first-appearance order —
// but over memoized per-source BFS state, so repeated builds on one graph
// pay the sampling cost only. Bit-identical to the package-level ECMP for
// the same (pairs, w, src).
func (c *Compiled) ECMP(pairs []Pair, w int, src *rng.Source, workers int) *Table {
	t := &Table{Paths: make(map[Pair][]graph.Path, len(pairs)), Kind: kindName("ecmp", w)}
	uniq := dedupPairs(pairs)
	bySrc := map[int][]int{}
	for _, p := range uniq {
		bySrc[p.Src] = append(bySrc[p.Src], p.Dst)
	}
	srcs := make([]int, 0, len(bySrc))
	for s := range bySrc { //jellyvet:allow determinism -- keys collected then sorted before any use
		srcs = append(srcs, s)
	}
	sort.Ints(srcs)
	groups := parallel.Map(workers, len(srcs), func(i int) [][]graph.Path {
		s := srcs[i]
		ssrc := src.SplitN("ecmp-src", s)
		es := c.source(s)
		out := make([][]graph.Path, len(bySrc[s]))
		for j, dst := range bySrc[s] {
			out[j] = sampleEqualCostPaths(c.csr, s, dst, es.dist, es.npaths, w, ssrc)
		}
		return out
	})
	for i, s := range srcs {
		for j, dst := range bySrc[s] {
			t.Paths[Pair{s, dst}] = groups[i][j]
		}
	}
	return t
}

// source returns the memoized BFS state for s, computing it on first use.
// Concurrent first users coordinate through the entry's ready channel so
// the BFS runs once and nobody holds the instance lock while it does.
func (c *Compiled) source(s int) *ecmpSource {
	c.mu.Lock()
	es, ok := c.ecmp[s]
	if !ok {
		es = &ecmpSource{unblock: make(chan struct{})}
		c.ecmp[s] = es
		c.mu.Unlock()
		es.dist = bfsLevels(c.csr, s)
		es.npaths = pathCounts(c.csr, s, es.dist)
		close(es.unblock)
		return es
	}
	c.mu.Unlock()
	<-es.unblock
	return es
}
