// Package routing builds the forwarding state evaluated in §5 of the paper:
// ECMP (equal-cost multi-path over shortest paths, 8- or 64-way) and Yen's
// k-shortest-path routing, plus the per-link distinct-path counts behind
// Fig. 9's "ECMP is not enough" result.
package routing

import (
	"fmt"
	"sort"

	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
	"jellyfish/internal/traffic"
)

// A Pair identifies an ordered (srcSwitch, dstSwitch) route-table entry.
type Pair struct{ Src, Dst int }

// Table maps switch pairs to their usable path sets, in deterministic
// (shortest-first) order.
type Table struct {
	Paths map[Pair][]graph.Path
	// Kind records how the table was built ("ecmp-8", "ksp-8", ...).
	Kind string
}

// PathsFor returns the path set for the given pair (nil if absent).
func (t *Table) PathsFor(src, dst int) []graph.Path {
	return t.Paths[Pair{src, dst}]
}

// KShortest builds a k-shortest-path table for the given pairs using Yen's
// algorithm on the switch graph. The per-pair computations are independent
// and fan out over `workers` goroutines (0 = all cores); the table is
// identical for every worker count. One-shot form of Compiled.KShortest.
func KShortest(g *graph.Graph, pairs []Pair, k, workers int) *Table {
	return NewCompiled(g).KShortest(pairs, k, workers)
}

// ECMP builds an equal-cost multipath table: for each pair, up to w
// distinct shortest paths sampled uniformly from the shortest-path DAG —
// modeling hash-based ECMP, which spreads flows over ALL equal-cost
// next-hops rather than a lexicographically-first subset. Pass src for
// reproducible sampling.
//
// Pairs are grouped by source (one BFS serves every destination of that
// source) and the groups fan out over `workers` goroutines. Each source
// samples from its own stream, derived from src by source id — never from
// a shared stream consumed in completion order — so the table is identical
// for every worker count.
func ECMP(g *graph.Graph, pairs []Pair, w int, src *rng.Source, workers int) *Table {
	return NewCompiled(g).ECMP(pairs, w, src, workers)
}

// dedupPairs drops duplicate pairs, keeping first-appearance order.
func dedupPairs(pairs []Pair) []Pair {
	seen := make(map[Pair]bool, len(pairs))
	out := make([]Pair, 0, len(pairs))
	for _, p := range pairs {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// bfsLevels computes BFS hop counts from s over the snapshot, with
// graph.Unreachable for unreached vertices — the same output as
// Graph.BFS, read off the compact adjacency.
func bfsLevels(c *graph.CSR, s int) []int {
	n := c.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = graph.Unreachable
	}
	dist[s] = 0
	queue := make([]int32, 1, n)
	queue[0] = int32(s)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u] + 1
		for _, v := range c.Neighbors(int(u)) {
			if dist[v] == graph.Unreachable {
				dist[v] = du
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// pathCounts computes the number of shortest paths from s to every vertex
// by DP in BFS-distance order.
func pathCounts(c *graph.CSR, s int, dist []int) []float64 {
	n := c.N()
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if dist[v] != graph.Unreachable {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(i, j int) bool { return dist[order[i]] < dist[order[j]] })
	np := make([]float64, n)
	np[s] = 1
	for _, v := range order {
		if v == s {
			continue
		}
		for _, u := range c.Neighbors(v) {
			if dist[u] == dist[v]-1 {
				np[v] += np[u]
			}
		}
	}
	return np
}

// sampleEqualCostPaths draws up to w distinct uniform-random shortest
// paths from s to dst. If the DAG holds ≤ w paths they are all returned
// (enumerated exhaustively — rejection sampling could terminate early and
// silently drop paths the table contract promises); otherwise rejection
// sampling collects w distinct ones.
func sampleEqualCostPaths(c *graph.CSR, s, dst int, dist []int, npaths []float64, w int, src *rng.Source) []graph.Path {
	if dist[dst] == graph.Unreachable {
		return nil
	}
	if s == dst {
		return []graph.Path{{s}}
	}
	total := npaths[dst]
	if total <= float64(w) {
		// npaths saturates only far above any practical w, so in this
		// regime the count is exact and enumeration is cheap: the DAG
		// holds at most w paths.
		return enumerateEqualCostPaths(c, s, dst, dist)
	}
	want := w
	seen := map[string]bool{}
	var out []graph.Path
	attempts := 0
	maxAttempts := 20 * w
	for len(out) < want && attempts < maxAttempts {
		attempts++
		// Walk backwards from dst, choosing each predecessor u with
		// probability npaths[u]/Σ — a uniform random shortest path.
		path := make(graph.Path, dist[dst]+1)
		path[len(path)-1] = dst
		v := dst
		for i := len(path) - 2; i >= 0; i-- {
			var sum float64
			for _, u := range c.Neighbors(v) {
				if dist[u] == dist[v]-1 {
					sum += npaths[u]
				}
			}
			x := src.Float64() * sum
			next := -1
			for _, u := range c.Neighbors(v) {
				if dist[u] == dist[v]-1 {
					x -= npaths[u]
					next = int(u)
					if x <= 0 {
						break
					}
				}
			}
			v = next
			path[i] = v
		}
		key := pathKey(path)
		if !seen[key] {
			seen[key] = true
			out = append(out, path)
		}
	}
	sort.Slice(out, func(a, b int) bool { return lessPath(out[a], out[b]) })
	return out
}

// enumerateEqualCostPaths returns every shortest s→dst path, in lessPath
// order, by walking the shortest-path DAG backwards from dst (predecessors
// of v are the neighbors one BFS level closer to s). Callers bound the
// path count before enumerating.
func enumerateEqualCostPaths(c *graph.CSR, s, dst int, dist []int) []graph.Path {
	var out []graph.Path
	stack := make(graph.Path, dist[dst]+1)
	stack[len(stack)-1] = dst
	var walk func(v, i int)
	walk = func(v, i int) {
		if v == s {
			out = append(out, append(graph.Path(nil), stack...))
			return
		}
		for _, u := range c.Neighbors(v) {
			if dist[u] == dist[v]-1 {
				stack[i-1] = int(u)
				walk(int(u), i-1)
			}
		}
	}
	walk(dst, len(stack)-1)
	sort.Slice(out, func(a, b int) bool { return lessPath(out[a], out[b]) })
	return out
}

func pathKey(p graph.Path) string {
	b := make([]byte, 0, 4*len(p))
	for _, v := range p {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func lessPath(a, b graph.Path) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// LinkLoad counts, for every directed link, the number of distinct table
// paths that traverse it — the y-axis of Fig. 9. Each cable counts as two
// links, one per direction; links on no path are included with count 0.
func LinkLoad(g *graph.Graph, t *Table) map[[2]int]int {
	counts := make(map[[2]int]int, 2*g.M())
	for _, e := range g.Edges() {
		counts[[2]int{e.U, e.V}] = 0
		counts[[2]int{e.V, e.U}] = 0
	}
	//jellyvet:allow determinism -- additive count reduction; increments commute across iteration order
	for _, paths := range t.Paths {
		for _, p := range paths {
			for i := 0; i+1 < len(p); i++ {
				counts[[2]int{p[i], p[i+1]}]++
			}
		}
	}
	return counts
}

// RankedLinkLoads returns the per-directed-link path counts sorted
// ascending (the rank-plot series of Fig. 9).
func RankedLinkLoads(g *graph.Graph, t *Table) []int {
	counts := LinkLoad(g, t)
	out := make([]int, 0, len(counts))
	for _, c := range counts { //jellyvet:allow determinism -- values collected then sorted before any use
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// PairsForPattern extracts the route-table pairs a traffic pattern needs:
// the distinct (srcSwitch, dstSwitch) pairs of its flows, same-switch
// flows dropped. The single definition of "which pairs a pattern routes",
// shared by the experiment harness and the planning service.
func PairsForPattern(pat *traffic.Pattern) []Pair {
	sd := make([][2]int, 0, len(pat.Flows))
	for _, f := range pat.Flows {
		sd = append(sd, [2]int{f.SrcSwitch, f.DstSwitch})
	}
	return PairsForCommodities(sd)
}

// PairsForCommodities extracts the distinct switch pairs (src != dst) from
// server-level flow endpoints.
func PairsForCommodities(srcDst [][2]int) []Pair {
	seen := map[Pair]bool{}
	var out []Pair
	for _, sd := range srcDst {
		if sd[0] == sd[1] {
			continue
		}
		p := Pair{sd[0], sd[1]}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func kindName(base string, n int) string {
	return fmt.Sprintf("%s-%d", base, n)
}
