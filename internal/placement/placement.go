// Package placement models the physical construction concerns of §6:
// rack/switch-cluster layout with cable-length accounting for small
// clusters, and the locality-constrained "2-layer" Jellyfish used for
// massive-scale container data centers (Fig. 14).
package placement

import (
	"fmt"
	"math"

	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

// ElectricalLimitMeters is the cable length beyond which an electrical
// cable must be replaced by (much more expensive) optics (§6: <10 m).
const ElectricalLimitMeters = 10.0

// TwoLayerJellyfish builds the locality-constrained Jellyfish of §6.3:
// switches are split evenly over containers; each switch dedicates
// round(localFrac·r) of its r network ports to random links inside its own
// container and the rest to random links across containers. The container
// of switch i is i / switchesPerContainer.
func TwoLayerJellyfish(containers, switchesPerContainer, k, r int, localFrac float64, src *rng.Source) *topology.Topology {
	if localFrac < 0 || localFrac > 1 {
		panic(fmt.Sprintf("placement: localFrac %v out of [0,1]", localFrac))
	}
	n := containers * switchesPerContainer
	t := &topology.Topology{
		Name:    fmt.Sprintf("jellyfish-2layer(c=%d,spc=%d,local=%.2f)", containers, switchesPerContainer, localFrac),
		Graph:   graph.New(n),
		Ports:   make([]int, n),
		Servers: make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.Ports[i] = k
		t.Servers[i] = k - r
	}
	localDeg := int(math.Round(localFrac * float64(r)))
	if localDeg >= switchesPerContainer {
		localDeg = switchesPerContainer - 1
	}
	globalDeg := r - localDeg

	// Layer 1: a random regular graph inside each container.
	for c := 0; c < containers; c++ {
		members := make([]int, switchesPerContainer)
		for j := range members {
			members[j] = c*switchesPerContainer + j
		}
		wireSubset(t.Graph, members, localDeg, src.SplitN("local", c))
	}
	// Layer 2: a random graph over the remaining ports, constrained to
	// cross containers.
	wireGlobal(t.Graph, n, switchesPerContainer, globalDeg, localDeg, src.Split("global"))
	return t
}

// Container returns the container of switch id under TwoLayerJellyfish's
// layout.
func Container(id, switchesPerContainer int) int { return id / switchesPerContainer }

// LocalLinkFraction measures the fraction of links staying inside one
// container.
func LocalLinkFraction(g *graph.Graph, switchesPerContainer int) float64 {
	if g.M() == 0 {
		return 0
	}
	local := 0
	for _, e := range g.Edges() {
		if Container(e.U, switchesPerContainer) == Container(e.V, switchesPerContainer) {
			local++
		}
	}
	return float64(local) / float64(g.M())
}

// wireSubset wires a degree-bounded random graph among the given members.
func wireSubset(g *graph.Graph, members []int, degree int, src *rng.Source) {
	if degree <= 0 {
		return
	}
	// Local wiring runs before any global links exist, so every incident
	// edge of a member is local and plain degree suffices.
	free := func(u int) int { return degree - g.Degree(u) }
	stall := 0
	for {
		var candidates []int
		for _, u := range members {
			if free(u) > 0 {
				candidates = append(candidates, u)
			}
		}
		if len(candidates) < 2 {
			break
		}
		u := candidates[src.Intn(len(candidates))]
		v := candidates[src.Intn(len(candidates))]
		if u == v || g.HasEdge(u, v) {
			stall++
			if stall > 100*len(members) {
				break
			}
			continue
		}
		g.AddEdge(u, v)
		stall = 0
	}
}

// wireGlobal wires cross-container links until every switch reaches its
// total degree budget (localDeg+globalDeg) or no progress is possible.
func wireGlobal(g *graph.Graph, n, spc, globalDeg, localDeg int, src *rng.Source) {
	if globalDeg <= 0 {
		return
	}
	total := globalDeg + localDeg
	free := func(u int) int { return total - g.Degree(u) }
	stall := 0
	for {
		var candidates []int
		for u := 0; u < n; u++ {
			if free(u) > 0 {
				candidates = append(candidates, u)
			}
		}
		if len(candidates) < 2 {
			break
		}
		u := candidates[src.Intn(len(candidates))]
		v := candidates[src.Intn(len(candidates))]
		if u == v || g.HasEdge(u, v) || Container(u, spc) == Container(v, spc) {
			stall++
			if stall > 100*n {
				break
			}
			continue
		}
		g.AddEdge(u, v)
		stall = 0
	}
}

// ---- Small-cluster layout & cabling (§6.2) ----

// Layout places racks on a 2D floor grid and switches either with their
// racks or aggregated in a central switch-cluster, and prices the cabling.
type Layout struct {
	// RackPitch is the center-to-center rack spacing in meters.
	RackPitch float64
	// SwitchCluster places all switches centrally (the §6.2 optimization)
	// instead of one switch on top of each rack.
	SwitchCluster bool
}

// CableReport summarizes the cable plan for a topology under a layout.
type CableReport struct {
	Cables          int     // switch-switch cables
	TotalMeters     float64 // total trunk length
	MeanMeters      float64
	MaxMeters       float64
	OpticalCables   int // cables longer than ElectricalLimitMeters
	LocalFraction   float64
	AggregateTrunks int // distinct rack-pair trunk routes
}

// PlanCables computes the cable plan: racks are placed on a near-square
// grid, one switch per rack (or all switches centrally with
// SwitchCluster), with Manhattan cable routing.
func (l Layout) PlanCables(t *topology.Topology) CableReport {
	n := t.NumSwitches()
	pitch := l.RackPitch
	if pitch == 0 {
		pitch = 0.6 // standard rack width
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	pos := make([][2]float64, n)
	for i := 0; i < n; i++ {
		if l.SwitchCluster {
			// All switches in a central cluster: intra-cluster runs are
			// single-rack scale.
			pos[i] = [2]float64{0, 0}
		} else {
			pos[i] = [2]float64{float64(i%cols) * pitch, float64(i/cols) * pitch}
		}
	}
	rep := CableReport{}
	trunks := map[[2]int]bool{}
	for _, e := range t.Graph.Edges() {
		du := math.Abs(pos[e.U][0]-pos[e.V][0]) + math.Abs(pos[e.U][1]-pos[e.V][1])
		if l.SwitchCluster {
			du = 2 // intra-cluster patch length
		}
		rep.Cables++
		rep.TotalMeters += du
		if du > rep.MaxMeters {
			rep.MaxMeters = du
		}
		if du > ElectricalLimitMeters {
			rep.OpticalCables++
		}
		trunks[[2]int{e.U / 8, e.V / 8}] = true
	}
	if rep.Cables > 0 {
		rep.MeanMeters = rep.TotalMeters / float64(rep.Cables)
	}
	rep.AggregateTrunks = len(trunks)
	return rep
}
