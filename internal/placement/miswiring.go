package placement

import (
	"sort"

	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

// §6.1: cabling is performed by hand from a generated blueprint, so some
// miswirings are inevitable; the paper argues they are cheap to detect
// (link-layer discovery) and often harmless (a random graph with a few
// swapped cables is just another random graph). This file provides the
// machinery to simulate, detect, and quantify miswirings.

// Miswiring records one divergence between blueprint and as-built network.
type Miswiring struct {
	Missing graph.Edge // in the blueprint but not observed
	Extra   graph.Edge // observed but not in the blueprint
}

// ApplyRandomMiswirings simulates a careless cabling crew: count times,
// two random cables have one endpoint each swapped — (a,b),(c,d) become
// (a,d),(c,b) — exactly the error a worker makes by crossing two plugs.
// Returns the number of swaps actually applied (a swap is skipped when it
// would create a duplicate link or self-loop).
func ApplyRandomMiswirings(t *topology.Topology, count int, src *rng.Source) int {
	g := t.Graph
	applied := 0
	guard := 0
	for applied < count && guard < 100*count+100 {
		guard++
		e1, ok1 := randomEdgeOf(g, src)
		e2, ok2 := randomEdgeOf(g, src)
		if !ok1 || !ok2 {
			break
		}
		a, b, c, d := e1.U, e1.V, e2.U, e2.V
		if a == c || a == d || b == c || b == d {
			continue
		}
		if g.HasEdge(a, d) || g.HasEdge(c, b) {
			continue
		}
		g.RemoveEdge(a, b)
		g.RemoveEdge(c, d)
		g.AddEdge(a, d)
		g.AddEdge(c, b)
		applied++
	}
	return applied
}

// DetectMiswirings compares the as-built network against its blueprint —
// what a link-layer discovery sweep reports. Results are sorted for
// deterministic output.
func DetectMiswirings(blueprint, built *topology.Topology) []Miswiring {
	bpSet := map[graph.Edge]bool{}
	for _, e := range blueprint.Graph.Edges() {
		bpSet[e] = true
	}
	builtSet := map[graph.Edge]bool{}
	for _, e := range built.Graph.Edges() {
		builtSet[e] = true
	}
	var missing, extra []graph.Edge
	for e := range bpSet {
		if !builtSet[e] {
			missing = append(missing, e)
		}
	}
	for e := range builtSet {
		if !bpSet[e] {
			extra = append(extra, e)
		}
	}
	sortEdges(missing)
	sortEdges(extra)
	// Pair them positionally; lengths can differ if links were dropped
	// rather than swapped.
	n := len(missing)
	if len(extra) > n {
		n = len(extra)
	}
	out := make([]Miswiring, n)
	for i := 0; i < n; i++ {
		if i < len(missing) {
			out[i].Missing = missing[i]
		}
		if i < len(extra) {
			out[i].Extra = extra[i]
		}
	}
	return out
}

func sortEdges(es []graph.Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}

// randomEdgeOf samples a uniform random edge in O(N).
func randomEdgeOf(g *graph.Graph, src *rng.Source) (graph.Edge, bool) {
	if g.M() == 0 {
		return graph.Edge{}, false
	}
	target := src.Intn(2 * g.M())
	for u := 0; u < g.N(); u++ {
		d := g.Degree(u)
		if target < d {
			return graph.Canon(u, g.Neighbors(u)[target]), true
		}
		target -= d
	}
	return graph.Edge{}, false
}
