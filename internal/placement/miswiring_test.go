package placement

import (
	"testing"

	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

func TestApplyRandomMiswiringsPreservesDegrees(t *testing.T) {
	top := topology.Jellyfish(30, 10, 6, rng.New(1))
	degrees := make([]int, 30)
	for i := range degrees {
		degrees[i] = top.Graph.Degree(i)
	}
	applied := ApplyRandomMiswirings(top, 5, rng.New(2))
	if applied != 5 {
		t.Fatalf("applied = %d, want 5", applied)
	}
	for i := range degrees {
		if top.Graph.Degree(i) != degrees[i] {
			t.Fatalf("miswiring changed degree of switch %d", i)
		}
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectMiswiringsFindsSwaps(t *testing.T) {
	blueprint := topology.Jellyfish(30, 10, 6, rng.New(3))
	built := blueprint.Clone()
	applied := ApplyRandomMiswirings(built, 4, rng.New(4))
	found := DetectMiswirings(blueprint, built)
	// Each endpoint swap disturbs 2 cables: 2 missing + 2 extra pairs.
	if len(found) != 2*applied {
		t.Fatalf("found %d miswirings for %d swaps, want %d", len(found), applied, 2*applied)
	}
	for _, m := range found {
		if !blueprint.Graph.HasEdge(m.Missing.U, m.Missing.V) {
			t.Fatalf("reported missing cable %v not in blueprint", m.Missing)
		}
		if !built.Graph.HasEdge(m.Extra.U, m.Extra.V) {
			t.Fatalf("reported extra cable %v not in built network", m.Extra)
		}
	}
}

func TestDetectMiswiringsCleanBuild(t *testing.T) {
	blueprint := topology.Jellyfish(20, 8, 4, rng.New(5))
	if found := DetectMiswirings(blueprint, blueprint); len(found) != 0 {
		t.Fatalf("clean build reported %d miswirings", len(found))
	}
}

func TestApplyMiswiringsEmptyGraph(t *testing.T) {
	top := topology.Jellyfish(10, 6, 3, rng.New(6))
	topology.RemoveRandomLinks(top, 1.0, rng.New(7))
	if applied := ApplyRandomMiswirings(top, 3, rng.New(8)); applied != 0 {
		t.Fatalf("applied %d miswirings to linkless network", applied)
	}
}

// §6.1's claim: a few miswirings often need no fixing at all — the network
// stays connected and path lengths barely move.
func TestMiswiringsAreHarmless(t *testing.T) {
	top := topology.Jellyfish(60, 12, 8, rng.New(9))
	before := top.Graph.AllPairsStats().Mean
	ApplyRandomMiswirings(top, 10, rng.New(10))
	if !top.Graph.Connected() {
		t.Fatal("10 miswirings disconnected the network")
	}
	after := top.Graph.AllPairsStats().Mean
	if after > before*1.05 {
		t.Fatalf("10 miswirings inflated mean path: %v -> %v", before, after)
	}
}
