package placement

import (
	"math"
	"testing"

	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

func TestTwoLayerShape(t *testing.T) {
	top := TwoLayerJellyfish(4, 10, 8, 5, 0.4, rng.New(1))
	if top.NumSwitches() != 40 {
		t.Fatalf("switches = %d, want 40", top.NumSwitches())
	}
	if top.NumServers() != 40*3 {
		t.Fatalf("servers = %d, want 120", top.NumServers())
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if !top.Graph.Connected() {
		t.Fatal("2-layer jellyfish disconnected")
	}
}

func TestTwoLayerLocalFractionTracksParameter(t *testing.T) {
	for _, lf := range []float64{0.0, 0.4, 0.8} {
		top := TwoLayerJellyfish(5, 12, 10, 6, lf, rng.New(2))
		got := LocalLinkFraction(top.Graph, 12)
		if math.Abs(got-lf) > 0.15 {
			t.Fatalf("localFrac=%v: measured %v", lf, got)
		}
	}
}

func TestTwoLayerFullyLocalDisconnects(t *testing.T) {
	// localFrac=1 gives isolated containers — verify we detect that
	// (degree capped below r when container too small is also exercised).
	top := TwoLayerJellyfish(3, 8, 8, 4, 1.0, rng.New(3))
	comps := top.Graph.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3 isolated containers", len(comps))
	}
}

func TestTwoLayerLocalDegreeCappedBySize(t *testing.T) {
	// Container of 4 switches cannot host local degree > 3.
	top := TwoLayerJellyfish(4, 4, 10, 6, 1.0, rng.New(4))
	for i := 0; i < top.NumSwitches(); i++ {
		localDeg := 0
		for _, v := range top.Graph.Neighbors(i) {
			if Container(v, 4) == Container(i, 4) {
				localDeg++
			}
		}
		if localDeg > 3 {
			t.Fatalf("switch %d local degree %d > 3", i, localDeg)
		}
	}
}

func TestTwoLayerPanicsOnBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad localFrac did not panic")
		}
	}()
	TwoLayerJellyfish(2, 4, 6, 3, 1.5, rng.New(1))
}

func TestContainer(t *testing.T) {
	if Container(0, 10) != 0 || Container(9, 10) != 0 || Container(10, 10) != 1 {
		t.Fatal("Container mapping wrong")
	}
}

func TestGlobalLinksCrossContainers(t *testing.T) {
	top := TwoLayerJellyfish(4, 10, 8, 5, 0.4, rng.New(5))
	spc := 10
	crossing := 0
	for _, e := range top.Graph.Edges() {
		if Container(e.U, spc) != Container(e.V, spc) {
			crossing++
		}
	}
	if crossing == 0 {
		t.Fatal("no cross-container links with localFrac=0.4")
	}
}

func TestPlanCablesGrid(t *testing.T) {
	top := topology.Jellyfish(36, 8, 4, rng.New(6))
	rep := Layout{RackPitch: 1.0}.PlanCables(top)
	if rep.Cables != top.NumLinks() {
		t.Fatalf("cables = %d, want %d", rep.Cables, top.NumLinks())
	}
	if rep.TotalMeters <= 0 || rep.MeanMeters <= 0 {
		t.Fatalf("lengths not positive: %+v", rep)
	}
	if rep.MaxMeters < rep.MeanMeters {
		t.Fatal("max < mean")
	}
}

func TestSwitchClusterShortensCables(t *testing.T) {
	top := topology.Jellyfish(100, 8, 4, rng.New(7))
	grid := Layout{RackPitch: 1.2}.PlanCables(top)
	cluster := Layout{RackPitch: 1.2, SwitchCluster: true}.PlanCables(top)
	if cluster.TotalMeters >= grid.TotalMeters {
		t.Fatalf("cluster layout not shorter: %v >= %v", cluster.TotalMeters, grid.TotalMeters)
	}
	// §6.2: with a central switch-cluster, everything is electrical.
	if cluster.OpticalCables != 0 {
		t.Fatalf("cluster layout needs %d optical cables, want 0", cluster.OpticalCables)
	}
}

func TestPlanCablesEmptyGraph(t *testing.T) {
	top := topology.Jellyfish(5, 4, 2, rng.New(8))
	topology.RemoveRandomLinks(top, 1.0, rng.New(9))
	rep := Layout{}.PlanCables(top)
	if rep.Cables != 0 || rep.TotalMeters != 0 || rep.MeanMeters != 0 {
		t.Fatalf("empty graph report: %+v", rep)
	}
}

// Fig. 14's mechanism at small scale: restricting about half of the links
// to be local costs only a few percent of throughput-relevant structure;
// we check the cheap proxy (mean path length) rises only modestly.
func TestLocalityCostsLittlePathLength(t *testing.T) {
	free := TwoLayerJellyfish(5, 16, 10, 6, 0.0, rng.New(10))
	half := TwoLayerJellyfish(5, 16, 10, 6, 0.5, rng.New(10))
	fm := free.Graph.AllPairsStats().Mean
	hm := half.Graph.AllPairsStats().Mean
	if hm > fm*1.25 {
		t.Fatalf("50%% locality inflated mean path too much: %v -> %v", fm, hm)
	}
}
