// Package telemetry is the stack's observability core: fixed-slot atomic
// counters and gauges, power-of-two-bucket latency histograms, and a
// per-goroutine span ring buffer (the flight recorder), all stdlib-only
// and allocation-free on the instrumented path.
//
// The package exists so the deterministic kernels (internal/mcf,
// internal/capsearch, internal/service, …) can be instrumented without
// perturbing their results. Two rules make that safe, and the jellyvet
// obsconfine analyzer enforces both (DESIGN.md §15):
//
//  1. One-way flow. Telemetry reads clocks and writes atomics; its
//     values never feed back into computation. All wall-clock reads live
//     HERE — a deterministic package calls StartTimer/Observe/Begin and
//     never touches time.Now itself, so the determinism analyzer's
//     no-clock rule stays intact for kernel code.
//  2. Zero-alloc instrumentation. Every method a hot path may call
//     (Counter.Add/Inc, Gauge.Set/Add/Inc/Dec, Histogram.Observe/
//     ObserveSince, StartTimer, Recorder.Begin/End/Mark) performs no
//     allocation and no locking: plain atomics into preallocated slots.
//
// Every type is nil-safe: a nil *Counter, *Gauge, *Histogram, or
// *Recorder accepts all of its write methods as no-ops, so "telemetry
// disabled" is represented by nil instruments with no branches at call
// sites and no second code path to keep byte-identical.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// base anchors the package's monotonic clock: all timestamps are
// nanoseconds since process start, read via time.Since so they use the
// runtime's monotonic reading (immune to wall-clock steps).
var base = time.Now()

// nowNanos returns monotonic nanoseconds since process start.
func nowNanos() int64 { return int64(time.Since(base)) }

// A Counter is a monotonically increasing atomic counter. The zero
// value and nil are both ready to use (nil discards writes).
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative for Prometheus counter semantics).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is an atomic instantaneous value. Nil discards writes.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistogramBuckets is the fixed bucket count of every Histogram: bucket
// i holds observations v (nanoseconds) with bits.Len64(v) == i, i.e.
// v ∈ [2^(i-1), 2^i). Bucket 0 holds v = 0 and the last bucket absorbs
// everything ≥ 2^(HistogramBuckets-2) (~1.6 days), so no observation is
// ever dropped. Power-of-two bucketing keeps Observe at one bits.Len64
// plus one atomic add — no search, no float math, no allocation.
const HistogramBuckets = 48

// A Histogram accumulates nanosecond durations into power-of-two
// buckets. All fields are atomics: concurrent Observe calls from many
// goroutines are safe, and WritePrometheus snapshots without locking
// writers out. Nil discards observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [HistogramBuckets]atomic.Int64
}

// Observe records a duration in nanoseconds (negative values clamp to
// zero rather than corrupting the bucket index).
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= HistogramBuckets {
		b = HistogramBuckets - 1
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[b].Add(1)
}

// ObserveSince records the elapsed time of t.
func (h *Histogram) ObserveSince(t Timer) { h.Observe(t.ElapsedNanos()) }

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snapshot copies the atomics for exposition. Buckets are read after
// count, so a concurrent Observe can at worst surface in the buckets
// but not the count — the exposition stays internally monotone because
// the writer emits cumulative bucket counts capped at the sampled
// count.
func (h *Histogram) snapshot() (count, sum int64, buckets [HistogramBuckets]int64) {
	count = h.count.Load()
	sum = h.sum.Load()
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return count, sum, buckets
}

// bucketUpperNanos returns the inclusive upper bound of bucket i: the
// largest duration it can hold, 2^i − 1 nanoseconds.
func bucketUpperNanos(i int) int64 { return int64(1)<<uint(i) - 1 }

// A Timer is a captured start instant. It is a plain value (no pointer,
// no allocation); the zero Timer reads as "started at process start",
// which only ever happens when telemetry is disabled and the resulting
// observation is discarded by a nil instrument.
type Timer struct{ start int64 }

// StartTimer captures the current monotonic instant.
func StartTimer() Timer { return Timer{start: nowNanos()} }

// ElapsedNanos returns nanoseconds since the timer started.
func (t Timer) ElapsedNanos() int64 { return nowNanos() - t.start }
