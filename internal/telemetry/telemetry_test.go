package telemetry

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

// Every write method must accept a nil receiver: nil instruments ARE
// the telemetry-disabled mode.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Inc()
	g.Dec()
	var h *Histogram
	h.Observe(5)
	h.ObserveSince(StartTimer())
	if h.Count() != 0 {
		t.Fatal("nil histogram has a count")
	}
	var r *Recorder
	r.Begin("x", 0)
	r.End()
	if tr := r.TraceSince(r.Mark()); tr != nil {
		t.Fatal("nil recorder produced a trace")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)    // bucket 0
	h.Observe(1)    // bucket 1: [1,2)
	h.Observe(1023) // bucket 10: [512,1024)
	h.Observe(1024) // bucket 11
	h.Observe(-5)   // clamps to 0 → bucket 0
	h.Observe(1 << 62)
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	count, sum, buckets := h.snapshot()
	if count != 6 {
		t.Fatalf("snapshot count = %d", count)
	}
	if want := int64(0 + 1 + 1023 + 1024 + 0 + 1<<62); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	for i, want := range map[int]int64{0: 2, 1: 1, 10: 1, 11: 1, HistogramBuckets - 1: 1} {
		if buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, buckets[i], want)
		}
	}
}

func TestRecorderTree(t *testing.T) {
	r := NewRecorder(128)
	m := r.Mark()
	r.Begin("probe", 40)
	r.Begin("trial", 0)
	r.End()
	r.Begin("trial", 1)
	r.Begin("solve", 16)
	r.End()
	r.End()
	r.End()
	tr := r.TraceSince(m)
	if tr.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "probe" || tr.Spans[0].Arg != 40 {
		t.Fatalf("roots = %+v, want one probe span", tr.Spans)
	}
	kids := tr.Spans[0].Children
	if len(kids) != 2 || kids[0].Name != "trial" || kids[1].Name != "trial" {
		t.Fatalf("probe children = %+v, want two trials", kids)
	}
	if kids[0].Arg != 0 || kids[1].Arg != 1 {
		t.Fatalf("trial order wrong: args %d,%d", kids[0].Arg, kids[1].Arg)
	}
	if len(kids[1].Children) != 1 || kids[1].Children[0].Name != "solve" {
		t.Fatalf("trial 1 children = %+v, want one solve", kids[1].Children)
	}
	if kids[0].DurNs < 0 || tr.Spans[0].StartNs != 0 {
		t.Fatalf("timing wrong: root start %d, trial dur %d", tr.Spans[0].StartNs, kids[0].DurNs)
	}
}

// Ring overflow keeps the most recent spans and reports the loss — the
// flight-recorder contract.
func TestRecorderTruncation(t *testing.T) {
	r := NewRecorder(64)
	m := r.Mark()
	for i := 0; i < 100; i++ {
		r.Begin("s", int64(i))
		r.End()
	}
	tr := r.TraceSince(m)
	if tr.Dropped != 36 {
		t.Fatalf("dropped = %d, want 36", tr.Dropped)
	}
	if len(tr.Spans) != 64 {
		t.Fatalf("kept %d spans, want 64", len(tr.Spans))
	}
	if tr.Spans[len(tr.Spans)-1].Arg != 99 {
		t.Fatalf("newest span arg = %d, want 99", tr.Spans[len(tr.Spans)-1].Arg)
	}
}

// A Mark taken mid-history excludes everything before it.
func TestTraceSinceMark(t *testing.T) {
	r := NewRecorder(128)
	r.Begin("old", 0)
	r.End()
	m := r.Mark()
	r.Begin("new", 0)
	r.End()
	tr := r.TraceSince(m)
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "new" {
		t.Fatalf("spans = %+v, want just the new one", tr.Spans)
	}
}

// Over-deep nesting degrades (drops the deepest spans) without
// corrupting the stack.
func TestRecorderDepthOverflow(t *testing.T) {
	r := NewRecorder(256)
	m := r.Mark()
	for i := 0; i < maxOpenSpans+5; i++ {
		r.Begin("deep", int64(i))
	}
	for i := 0; i < maxOpenSpans+5; i++ {
		r.End()
	}
	tr := r.TraceSince(m)
	if tr.Dropped != 5 {
		t.Fatalf("dropped = %d, want 5", tr.Dropped)
	}
	if len(tr.Spans) != 1 {
		t.Fatalf("roots = %d, want 1", len(tr.Spans))
	}
	// After realignment the recorder still works.
	r.Begin("after", 0)
	r.End()
	if tr := r.TraceSince(m); tr.Dropped != 5 {
		t.Fatalf("post-recovery dropped = %d, want 5", tr.Dropped)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jf_hits_total", "cache hits", Labels("tier", "resp", "worker", "0"))
	reg.Counter("jf_hits_total", "cache hits", Labels("tier", "resp", "worker", "1"))
	c.Add(3)
	g := reg.Gauge("jf_depth", "queue depth", "")
	g.Set(2)
	reg.GaugeFunc("jf_live", "liveness", "", func() int64 { return 1 })
	h := reg.Histogram("jf_wait_seconds", "queue wait", "")
	h.Observe(1000) // bucket 10, le (2^10-1)/1e9
	h.Observe(0)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP jf_hits_total cache hits\n# TYPE jf_hits_total counter\n",
		`jf_hits_total{tier="resp",worker="0"} 3`,
		`jf_hits_total{tier="resp",worker="1"} 0`,
		"# TYPE jf_depth gauge",
		"jf_depth 2",
		"jf_live 1",
		"# TYPE jf_wait_seconds histogram",
		`jf_wait_seconds_bucket{le="0"} 1`,
		`jf_wait_seconds_bucket{le="1.023e-06"} 2`,
		`jf_wait_seconds_bucket{le="+Inf"} 2`,
		"jf_wait_seconds_sum 1e-06",
		"jf_wait_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE once per family, not per series.
	if strings.Count(out, "# TYPE jf_hits_total") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
}

// The instruments a hot path may call must not allocate — the same
// contract the jellyvet hotpath analyzer and the kernel AllocsPerRun
// pins enforce at their call sites.
func TestHotPathInstrumentsZeroAlloc(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	r := NewRecorder(128)
	if n := testing.AllocsPerRun(100, func() {
		tm := StartTimer()
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(1)
		h.Observe(17)
		h.ObserveSince(tm)
		r.Begin("span", 1)
		r.End()
		_ = r.Mark()
	}); n != 0 {
		t.Fatalf("hot-path instruments allocated %v/op, want 0", n)
	}
}
