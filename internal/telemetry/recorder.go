// The flight recorder: a fixed-capacity ring buffer of completed spans,
// confined to one goroutine (each scheduler shard worker owns one).
// Begin/End cost two struct writes and two clock reads — no atomics, no
// allocation, no locking — which is what lets solver phases and warm-
// chain steps be recorded from inside kernel loops. Old spans are
// overwritten, never flushed: like an aircraft flight recorder, the
// ring always holds the most recent window, and TraceSince reports how
// many spans the window lost.

package telemetry

import "sort"

// spanRec is one completed span in the ring.
type spanRec struct {
	id, parent uint64
	start, end int64 // monotonic nanoseconds
	arg        int64
	name       string
}

// openSpan is a begun-but-unfinished span on the recorder's stack.
type openSpan struct {
	id    uint64
	start int64
	arg   int64
	name  string
}

// maxOpenSpans bounds span nesting. Begins past this depth are counted
// as dropped and their matching Ends realign the stack, so a runaway
// recursion degrades the trace instead of corrupting it.
const maxOpenSpans = 32

// minRecorderSpans floors the ring capacity.
const minRecorderSpans = 64

// A Recorder is a per-goroutine flight recorder. It is NOT safe for
// concurrent use: exactly one goroutine may call Begin/End/Mark/
// TraceSince (the scheduler gives each shard worker its own). Nil is a
// valid recorder that discards everything.
type Recorder struct {
	ring    []spanRec
	next    uint64 // completed spans ever written; ring slot = next % len(ring)
	seq     uint64 // ids handed out by Begin
	stack   [maxOpenSpans]openSpan
	depth   int
	dropped uint64 // Begins lost to stack overflow
}

// NewRecorder returns a recorder holding the most recent `capacity`
// completed spans (floored at 64).
func NewRecorder(capacity int) *Recorder {
	if capacity < minRecorderSpans {
		capacity = minRecorderSpans
	}
	return &Recorder{ring: make([]spanRec, capacity)}
}

// Begin opens a span. name should be a constant string (it is stored,
// not copied); arg is an optional integer annotation (servers probed,
// phase number, …) rendered into the trace.
func (r *Recorder) Begin(name string, arg int64) {
	if r == nil {
		return
	}
	r.depth++
	if r.depth > maxOpenSpans {
		r.dropped++
		return
	}
	r.seq++
	s := &r.stack[r.depth-1]
	s.id = r.seq
	s.start = nowNanos()
	s.arg = arg
	s.name = name
}

// End closes the most recently begun span, writing it into the ring.
// An End with no matching Begin is a no-op.
func (r *Recorder) End() {
	if r == nil || r.depth == 0 {
		return
	}
	d := r.depth
	r.depth--
	if d > maxOpenSpans {
		return // the matching Begin was dropped
	}
	s := &r.stack[d-1]
	var parent uint64
	if d >= 2 {
		parent = r.stack[d-2].id
	}
	w := &r.ring[r.next%uint64(len(r.ring))]
	w.id, w.parent = s.id, parent
	w.start, w.end = s.start, nowNanos()
	w.arg = s.arg
	w.name = s.name
	r.next++
}

// A Mark is a position in a recorder's history; TraceSince(mark)
// extracts everything recorded after it. The zero Mark means "from the
// beginning".
type Mark struct{ next, dropped uint64 }

// Mark captures the recorder's current position.
func (r *Recorder) Mark() Mark {
	if r == nil {
		return Mark{}
	}
	return Mark{next: r.next, dropped: r.dropped}
}

// A Span is one node of an extracted trace tree. Times are nanoseconds
// relative to the earliest span in the trace.
type Span struct {
	Name     string  `json:"name"`
	Arg      int64   `json:"arg,omitempty"`
	StartNs  int64   `json:"startNs"`
	DurNs    int64   `json:"durNs"`
	Children []*Span `json:"children,omitempty"`
}

// A Trace is the span tree extracted between a Mark and now. Dropped
// counts spans lost to ring overwrites or stack overflow in that window
// — the flight-recorder truncation contract: the most recent spans are
// always present, the oldest go first.
type Trace struct {
	Spans   []*Span `json:"spans"`
	Dropped int64   `json:"dropped,omitempty"`
}

// TraceSince builds the span tree for everything recorded after m. It
// allocates (per span) and must be called off the hot path, on the
// recorder's own goroutine, after the instrumented work completes. The
// returned Trace is immutable and safe to share across goroutines.
func (r *Recorder) TraceSince(m Mark) *Trace {
	if r == nil {
		return nil
	}
	tr := &Trace{Dropped: int64(r.dropped - m.dropped)}
	lo := m.next
	if span := r.next - lo; span > uint64(len(r.ring)) {
		overwritten := span - uint64(len(r.ring))
		tr.Dropped += int64(overwritten)
		lo += overwritten
	}
	if lo == r.next {
		return tr
	}
	// Spans are written at End time (close order): children precede
	// parents. Two passes — materialize, then link.
	nodes := make(map[uint64]*Span, r.next-lo)
	recs := make([]spanRec, 0, r.next-lo)
	minStart := int64(1<<63 - 1)
	for i := lo; i < r.next; i++ {
		rec := r.ring[i%uint64(len(r.ring))]
		recs = append(recs, rec)
		nodes[rec.id] = &Span{Name: rec.name, Arg: rec.arg, DurNs: rec.end - rec.start}
		if rec.start < minStart {
			minStart = rec.start
		}
	}
	for _, rec := range recs {
		n := nodes[rec.id]
		n.StartNs = rec.start - minStart
		if p, ok := nodes[rec.parent]; ok && rec.parent != 0 {
			p.Children = append(p.Children, n)
		} else {
			tr.Spans = append(tr.Spans, n)
		}
	}
	sortSpans(tr.Spans)
	for _, rec := range recs {
		sortSpans(nodes[rec.id].Children)
	}
	return tr
}

// sortSpans orders siblings by start time (ties by duration) so the
// rendered tree reads chronologically.
func sortSpans(s []*Span) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].StartNs != s[j].StartNs {
			return s[i].StartNs < s[j].StartNs
		}
		return s[i].DurNs < s[j].DurNs
	})
}
