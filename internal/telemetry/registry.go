// The metric registry: fixed slots registered once at startup, exposed
// in Prometheus text format. Registration allocates; scraping walks the
// slots under a mutex that instrument writers never take (writers are
// pure atomics), so a scrape cannot stall a kernel.

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: a fixed instrument or a read-out
// function, with pre-rendered labels.
type metric struct {
	name   string
	help   string
	labels string // pre-rendered `worker="0",tier="resp"`, or ""
	kind   metricKind
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() int64
}

// A Registry holds the metric slots a /metrics endpoint exposes. All
// registration happens at server construction; WritePrometheus may be
// called concurrently with instrument writes.
type Registry struct {
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Labels renders a label set deterministically (sorted by key) for the
// registration calls, e.g. Labels("worker", "0", "tier", "resp").
// Panics on an odd pair count — registration is startup-time code.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("telemetry.Labels: odd key/value count")
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help, labels string) *Counter {
	c := &Counter{}
	r.metrics = append(r.metrics, metric{name: name, help: help, labels: labels, kind: counterKind, ctr: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	g := &Gauge{}
	r.metrics = append(r.metrics, metric{name: name, help: help, labels: labels, kind: gaugeKind, gauge: g})
	return g
}

// Histogram registers and returns a latency histogram series (values
// observed in nanoseconds, exposed in seconds).
func (r *Registry) Histogram(name, help, labels string) *Histogram {
	h := &Histogram{}
	r.metrics = append(r.metrics, metric{name: name, help: help, labels: labels, kind: histogramKind, hist: h})
	return h
}

// CounterFunc registers a counter series backed by a read-out function
// — the bridge for counts that already live in non-telemetry atomics
// (the scheduler's stats struct). fn is called at scrape time and must
// be safe for concurrent use and monotone.
func (r *Registry) CounterFunc(name, help, labels string, fn func() int64) {
	r.metrics = append(r.metrics, metric{name: name, help: help, labels: labels, kind: counterKind, fn: fn})
}

// GaugeFunc registers a gauge series backed by a read-out function
// (queue depths, cache sizes). Same safety contract as CounterFunc.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() int64) {
	r.metrics = append(r.metrics, metric{name: name, help: help, labels: labels, kind: gaugeKind, fn: fn})
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4). HELP/TYPE headers are emitted once
// per family, on its first series; series registered consecutively
// under one name form one family block.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	seen := make(map[string]bool, len(r.metrics))
	for i := range r.metrics {
		m := &r.metrics[i]
		if !seen[m.name] {
			seen[m.name] = true
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind)
		}
		switch m.kind {
		case counterKind, gaugeKind:
			v := m.fn
			var n int64
			if v != nil {
				n = v()
			} else if m.ctr != nil {
				n = m.ctr.Value()
			} else {
				n = m.gauge.Value()
			}
			fmt.Fprintf(w, "%s%s %d\n", m.name, renderLabels(m.labels), n)
		case histogramKind:
			writeHistogram(w, m)
		}
	}
}

// writeHistogram emits the cumulative bucket series, sum, and count for
// one histogram. Buckets are elided above the highest non-empty one —
// le="+Inf" always closes the series, so the exposition stays complete
// while a cold histogram costs two lines instead of fifty.
func writeHistogram(w io.Writer, m *metric) {
	count, sumNs, buckets := m.hist.snapshot()
	top := -1
	for i, b := range buckets {
		if b != 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += buckets[i]
		if cum > count {
			cum = count // racing Observe landed in buckets after count was read
		}
		le := strconv.FormatFloat(float64(bucketUpperNanos(i))/1e9, 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, renderLabels(m.labels+`,le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, renderLabels(m.labels+`,le="+Inf"`), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", m.name, renderLabels(m.labels),
		strconv.FormatFloat(float64(sumNs)/1e9, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, renderLabels(m.labels), count)
}

// renderLabels wraps a pre-rendered label body in braces, tolerating a
// leading comma from label-less histogram bucket composition.
func renderLabels(body string) string {
	body = strings.TrimPrefix(body, ",")
	if body == "" {
		return ""
	}
	return "{" + body + "}"
}
