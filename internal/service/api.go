// Package service implements jellyfishd, the resident topology-planning
// service: every planning operation the library can compute — designing a
// Jellyfish, evaluating throughput, Fig. 2(c)-style capacity searches,
// what-if failure/expansion chains, blueprint diffs — exposed as
// HTTP/JSON endpoints, with an async job API for the heavy sweeps.
//
// The core is a sharded scheduler (scheduler.go): a fixed pool of solver
// workers, each owning a warm-state cache; requests are hashed by
// topology-family key to a shard so related queries land on the worker
// holding the matching warm state. Responses are deterministic — the same
// request yields byte-identical JSON regardless of worker count, cache
// hits, or request interleaving — because every cached value is a pure
// function of its cache key (DESIGN.md §10).
package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"

	"jellyfish"
	"jellyfish/internal/telemetry"
)

// An apiError is an error with an HTTP mapping; executors return it for
// client mistakes (bad configs, unknown jobs) so handlers can answer with
// the right status instead of a blanket 500.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return e.Message }

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: code, Message: fmt.Sprintf(format, args...)}
}

// errorBody is the JSON envelope every error response uses.
type errorBody struct {
	Error *apiError `json:"error"`
}

// digest is the canonical content hash used for cache keys and
// single-flight identity: requests that decode to the same normalized
// value collide regardless of their JSON formatting.
func digest(parts ...[]byte) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("service: marshaling internal value: %v", err))
	}
	return b
}

// DesignSpec is the request-shaped jellyfish.Config.
type DesignSpec struct {
	Switches      int    `json:"switches"`
	Ports         int    `json:"ports"`
	NetworkDegree int    `json:"networkDegree"`
	Seed          uint64 `json:"seed"`
}

func (d DesignSpec) config() jellyfish.Config {
	return jellyfish.Config{Switches: d.Switches, Ports: d.Ports, NetworkDegree: d.NetworkDegree, Seed: d.Seed}
}

// TopologySpec names a topology in a request: either a design to
// construct deterministically or an inline blueprint (the JSON produced
// by WriteBlueprint / the /v1/design endpoint). Exactly one must be set.
type TopologySpec struct {
	Design    *DesignSpec     `json:"design,omitempty"`
	Blueprint json.RawMessage `json:"blueprint,omitempty"`
}

// A materialized topology spec: the canonical digest (cache and shard
// identity), the server count (for eager no-servers rejection), and a
// deferred constructor. Deferring construction keeps it off the handler
// goroutine: plans digest and schedule immediately, and a response-cache
// hit never builds the topology at all. build is called at most once —
// each plan executes at most once (hits and single-flight followers
// reuse the leader's bytes) — and the topology it returns is owned by
// that execution.
type materialized struct {
	digest  string
	servers int
	build   func() *jellyfish.Topology
}

// materialize validates the named topology and returns its deferred
// form, normalizing ts in place (blueprints are re-serialized
// canonically so formatting differences cannot split the cache).
// Topologies with no switches — including an empty or null blueprint
// document, which decodes without error — are rejected here: every
// planning operation on them is undefined.
func (ts *TopologySpec) materialize() (materialized, *apiError) {
	switch {
	case ts.Design != nil && ts.Blueprint == nil:
		cfg := ts.Design.config()
		if err := cfg.Validate(); err != nil {
			return materialized{}, badRequest("invalid_config", "%v", err)
		}
		return materialized{
			digest:  "d:" + digest(mustJSON(ts.Design)),
			servers: cfg.Switches * (cfg.Ports - cfg.NetworkDegree),
			build:   func() *jellyfish.Topology { return jellyfish.New(cfg) },
		}, nil
	case ts.Blueprint != nil && ts.Design == nil:
		top, err := jellyfish.ReadBlueprint(bytes.NewReader(ts.Blueprint))
		if err != nil {
			return materialized{}, badRequest("invalid_blueprint", "%v", err)
		}
		if top.NumSwitches() == 0 {
			return materialized{}, badRequest("invalid_blueprint", "blueprint describes no switches")
		}
		canon, aerr := canonicalBlueprint(top)
		if aerr != nil {
			return materialized{}, aerr
		}
		ts.Blueprint = canon
		return materialized{
			digest:  "b:" + digest(canon),
			servers: top.NumServers(),
			build:   func() *jellyfish.Topology { return top },
		}, nil
	default:
		return materialized{}, badRequest("invalid_topology", "specify exactly one of \"design\" or \"blueprint\"")
	}
}

// canonicalBlueprint serializes a topology to compact canonical JSON.
func canonicalBlueprint(top *jellyfish.Topology) (json.RawMessage, *apiError) {
	var buf bytes.Buffer
	if err := jellyfish.WriteBlueprint(top, &buf); err != nil {
		return nil, &apiError{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, buf.Bytes()); err != nil {
		return nil, &apiError{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
	}
	return compact.Bytes(), nil
}

// DesignResponse reports a constructed topology with its headline
// structural properties and the cabling blueprint.
type DesignResponse struct {
	Switches  int             `json:"switches"`
	Servers   int             `json:"servers"`
	Links     int             `json:"links"`
	MeanPath  float64         `json:"meanPath"`
	Diameter  int             `json:"diameter"`
	Blueprint json.RawMessage `json:"blueprint"`
}

// A TransportSpec selects a realizable data plane — a routing scheme plus
// a congestion-control model from internal/flowsim — instead of the
// optimal-routing flow solver. Evaluations with a transport spec report
// what the named protocol actually achieves over the named route tables
// (Table 1's methodology as a service).
type TransportSpec struct {
	// Protocol is "tcp1", "tcp8", or "mptcp8".
	Protocol string `json:"protocol"`
	// Routing is "ecmp8", "ecmp64", or "ksp8" (default "ksp8").
	Routing string `json:"routing,omitempty"`
}

// An EstimatorSpec selects a bounded approximate throughput estimator
// (internal/estimate) instead of the exact flow solver: the megascale
// path for instances far beyond the exact solver's practical scale.
// Results carry certified [lower, upper] brackets around the exact
// answer, never point estimates.
type EstimatorSpec struct {
	// Kind is "bisection", "spectral", or "sampled-mcf".
	Kind string `json:"kind"`
	// Sample is the sampled-mcf commodity subsample size (0 selects the
	// default; ignored by the other kinds).
	Sample int `json:"sample,omitempty"`
}

// EvaluateRequest asks for throughput under random-permutation traffic;
// trial i evaluates at seed+i, so trials=1 at seed s reproduces
// jellyfish.OptimalThroughput(t, s) exactly. With Transport set, trials
// run the flow-level transport simulator over compiled per-topology
// instances (the "sim:" warm-cache tier) instead of the optimal-routing
// solver. With Estimator set (exclusive with Transport), trials run the
// named bounded estimator: Throughputs carries the certified lower
// bounds and Bounds the full [lower, upper] brackets.
type EvaluateRequest struct {
	Topology  TopologySpec   `json:"topology"`
	Seed      uint64         `json:"seed"`
	Trials    int            `json:"trials,omitempty"`
	Transport *TransportSpec `json:"transport,omitempty"`
	Estimator *EstimatorSpec `json:"estimator,omitempty"`
}

type EvaluateResponse struct {
	Throughputs []float64 `json:"throughputs"`
	Min         float64   `json:"min"`
	Mean        float64   `json:"mean"`
	// Bounds, present only for estimator evaluations, carries trial i's
	// certified [lower, upper] bracket around the exact normalized
	// throughput (omitted otherwise, keeping legacy responses
	// byte-identical).
	Bounds [][2]float64 `json:"bounds,omitempty"`
}

// CapacitySearchRequest is the request-shaped jellyfish.CapacitySearch.
// Trials and Slack default like the library's (3 and 0.03); ColdStart is
// the A/B lever that disables solver warm starts inside the search.
type CapacitySearchRequest struct {
	Switches  int     `json:"switches"`
	Ports     int     `json:"ports"`
	Trials    int     `json:"trials,omitempty"`
	Slack     float64 `json:"slack,omitempty"`
	Seed      uint64  `json:"seed"`
	ColdStart bool    `json:"coldStart,omitempty"`
	// Estimator, when set, screens probe trials with certified bounds so
	// only near-boundary probes pay for exact solves. Answers are
	// identical to the exact-only search (rejection-only screening; the
	// final bracket is always confirmed exactly).
	Estimator *EstimatorSpec `json:"estimator,omitempty"`
}

type CapacitySearchResponse struct {
	MaxServers       int     `json:"maxServers"`
	Switches         int     `json:"switches"`
	Ports            int     `json:"ports"`
	ServersPerSwitch float64 `json:"serversPerSwitch"`
}

// A Scenario is one what-if step applied to the preceding topology in the
// chain. Exactly one operation must be set.
type Scenario struct {
	FailLinks    *FailLinksOp    `json:"failLinks,omitempty"`
	FailSwitches *FailSwitchesOp `json:"failSwitches,omitempty"`
	Expand       *ExpandOp       `json:"expand,omitempty"`
	Miswire      *MiswireOp      `json:"miswire,omitempty"`
}

type FailLinksOp struct {
	Fraction float64 `json:"fraction"`
	Seed     uint64  `json:"seed"`
}

type FailSwitchesOp struct {
	Fraction float64 `json:"fraction"`
	Seed     uint64  `json:"seed"`
}

type ExpandOp struct {
	Switches      int    `json:"switches"`
	Ports         int    `json:"ports"`
	NetworkDegree int    `json:"networkDegree"`
	Seed          uint64 `json:"seed"`
}

// MiswireOp swaps endpoint pairs between `count` random cable pairs —
// the careless-cabling-crew model of §6.1 (SimulateMiswirings). The
// paper's claim that a Jellyfish with a few crossed cables is just
// another random graph becomes a testable what-if: chain a miswire step
// and compare its throughput to the base's.
type MiswireOp struct {
	Count int    `json:"count"`
	Seed  uint64 `json:"seed"`
}

// validate checks that exactly one operation is set and its parameters
// are sensible.
func (sc *Scenario) validate(i int) *apiError {
	set := 0
	if sc.FailLinks != nil {
		set++
		if f := sc.FailLinks.Fraction; f < 0 || f >= 1 {
			return badRequest("invalid_scenario", "scenario %d: failLinks.fraction %v outside [0, 1)", i, f)
		}
	}
	if sc.FailSwitches != nil {
		set++
		if f := sc.FailSwitches.Fraction; f < 0 || f >= 1 {
			return badRequest("invalid_scenario", "scenario %d: failSwitches.fraction %v outside [0, 1)", i, f)
		}
	}
	if sc.Expand != nil {
		set++
		e := sc.Expand
		if e.Switches <= 0 || e.Ports <= 0 || e.NetworkDegree < 0 || e.NetworkDegree > e.Ports {
			return badRequest("invalid_scenario", "scenario %d: expand needs switches > 0, ports > 0, and 0 <= networkDegree <= ports", i)
		}
	}
	if sc.Miswire != nil {
		set++
		if sc.Miswire.Count <= 0 {
			return badRequest("invalid_scenario", "scenario %d: miswire.count must be > 0", i)
		}
	}
	if set != 1 {
		return badRequest("invalid_scenario", "scenario %d: exactly one of failLinks, failSwitches, expand, miswire must be set", i)
	}
	return nil
}

// apply mutates top in place and returns the step's description.
func (sc *Scenario) apply(top *jellyfish.Topology) string {
	switch {
	case sc.FailLinks != nil:
		n := jellyfish.FailRandomLinks(top, sc.FailLinks.Fraction, sc.FailLinks.Seed)
		return fmt.Sprintf("failLinks(fraction=%v, seed=%d): %d links removed", sc.FailLinks.Fraction, sc.FailLinks.Seed, n)
	case sc.FailSwitches != nil:
		ids := jellyfish.FailRandomSwitches(top, sc.FailSwitches.Fraction, sc.FailSwitches.Seed)
		return fmt.Sprintf("failSwitches(fraction=%v, seed=%d): %d switches failed", sc.FailSwitches.Fraction, sc.FailSwitches.Seed, len(ids))
	case sc.Miswire != nil:
		m := sc.Miswire
		n := jellyfish.SimulateMiswirings(top, m.Count, m.Seed)
		return fmt.Sprintf("miswire(count=%d, seed=%d): %d cable-pair swaps applied", m.Count, m.Seed, n)
	default:
		e := sc.Expand
		jellyfish.Expand(top, e.Switches, e.Ports, e.NetworkDegree, e.Seed)
		return fmt.Sprintf("expand(switches=%d, ports=%d, networkDegree=%d, seed=%d)", e.Switches, e.Ports, e.NetworkDegree, e.Seed)
	}
}

// WhatIfRequest scores a scenario sequence rooted at a base topology.
// Step i's throughput is chain-evaluated: the flow solver warm-starts
// from step i-1's solution (DESIGN.md §9), so the sequence itself is part
// of the request contract — the same base, seed, and scenario prefix
// always yield the same numbers, which is what lets the service cache
// chain prefixes without changing any response.
type WhatIfRequest struct {
	Base      TopologySpec `json:"base"`
	Seed      uint64       `json:"seed"`
	Scenarios []Scenario   `json:"scenarios"`
	// Transport, when set, additionally reports each step's flow-level
	// transport throughput (TransportThroughput) alongside the optimal-
	// routing one, reusing the family's compiled simulator instance.
	Transport *TransportSpec `json:"transport,omitempty"`
}

type WhatIfStep struct {
	// Step 0 is the base topology; step i is after scenarios[i-1].
	Step        int     `json:"step"`
	Description string  `json:"description"`
	Switches    int     `json:"switches"`
	Servers     int     `json:"servers"`
	Links       int     `json:"links"`
	Throughput  float64 `json:"throughput"`
	// TransportThroughput is set only when the request named a transport
	// spec (pointer so legacy responses stay byte-identical).
	TransportThroughput *float64 `json:"transportThroughput,omitempty"`
}

type WhatIfResponse struct {
	Steps []WhatIfStep `json:"steps"`
}

// RewireRequest asks for the cable moves turning one topology into
// another (§4.2/§6.2 automation).
type RewireRequest struct {
	Before TopologySpec `json:"before"`
	After  TopologySpec `json:"after"`
}

type RewireResponse struct {
	Remove [][2]int `json:"remove"`
	Add    [][2]int `json:"add"`
	Moves  int      `json:"moves"`
}

// Streaming progress events (GET /v1/jobs/{id}/events, served as
// Server-Sent Events): each executor emits typed payloads at its
// natural progress boundaries — capacity searches per feasibility
// probe, evaluations per trial, what-if chains per step. Event
// PAYLOADS are covered by the determinism guarantee: the same request
// yields the identical payload sequence regardless of worker count,
// cache state (cache hits replay the recorded stream), or whether the
// subscriber watched live or connected after completion. Job envelope
// metadata (ids, timestamps) never appears in the stream for exactly
// that reason.

// A ProbeEvent reports one capacity-search feasibility probe.
type ProbeEvent struct {
	Op       string `json:"op"` // "probe"
	Servers  int    `json:"servers"`
	Feasible bool   `json:"feasible"`
}

// A TrialEvent reports one completed evaluation trial.
type TrialEvent struct {
	Op         string  `json:"op"` // "trial"
	Trial      int     `json:"trial"`
	Throughput float64 `json:"throughput"`
	// Bounds carries the certified bracket for estimator trials (absent
	// otherwise).
	Bounds *[2]float64 `json:"bounds,omitempty"`
}

// A StepEvent reports one evaluated what-if chain step.
type StepEvent struct {
	Op   string     `json:"op"` // "step"
	Step WhatIfStep `json:"step"`
}

// TraceResponse is GET /v1/trace/{id}: the span tree a finished job's
// execution recorded on its shard worker's flight recorder — operation
// root span, capacity-search probes and trials, solver solves and
// phases, what-if steps — with wall-clock timings. Diagnostics only:
// NOT covered by the determinism guarantee, and not persisted.
type TraceResponse struct {
	JobID string           `json:"jobId"`
	Trace *telemetry.Trace `json:"trace"`
}

// StatsResponse reports scheduler and cache counters (diagnostics; not
// covered by the determinism guarantee).
type StatsResponse struct {
	Workers      int   `json:"workers"`
	ResultHits   int64 `json:"resultHits"`
	ResultMisses int64 `json:"resultMisses"`
	FamilyHits   int64 `json:"familyHits"`
	ChainHits    int64 `json:"chainHits"`
	SimHits      int64 `json:"simHits"`
	Deduped      int64 `json:"deduped"`
	SyncRejected int64 `json:"syncRejected"`
	CacheEntries int   `json:"cacheEntries"`
}
