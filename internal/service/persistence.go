package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"jellyfish/internal/persist"
)

// Durable job store plumbing. The journal holds one JSON record per
// state transition; a snapshot (written every snapshotEvery records)
// subsumes the journal and truncates it. Result and event-stream bytes
// live outside both, in content-addressed blobs — the journal and
// snapshot reference them by digest, which keeps records small and makes
// replay cheap. Because job results are pure functions of their request
// (the service-wide determinism guarantee), re-running an interrupted
// job after a crash reproduces the exact bytes a completed run would
// have stored; durability only has to preserve *intent* (the submit
// record), not progress. See DESIGN.md §14 for the full format and the
// replay-determinism argument.

// Journal record kinds.
const (
	recSubmit = "submit"
	recDone   = "done"
	recEvict  = "evict"
)

// persistedError journals an apiError with its HTTP status, which the
// in-memory type deliberately omits from client-facing JSON.
type persistedError struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func toPersistedError(e *apiError) *persistedError {
	if e == nil {
		return nil
	}
	return &persistedError{Status: e.Status, Code: e.Code, Message: e.Message}
}

func (pe *persistedError) toAPIError() *apiError {
	if pe == nil {
		return nil
	}
	return &apiError{Status: pe.Status, Code: pe.Code, Message: pe.Message}
}

// jobRecord is one journal entry. Kind selects which fields are
// meaningful: submit carries the request envelope, done the terminal
// state and blob digests, evict just the id.
type jobRecord struct {
	Kind    string          `json:"kind"`
	ID      string          `json:"id"`
	Seq     int             `json:"seq,omitempty"`
	Type    string          `json:"type,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`
	Created string          `json:"created,omitempty"`

	Status       string          `json:"status,omitempty"`
	Started      string          `json:"started,omitempty"`
	Finished     string          `json:"finished,omitempty"`
	Error        *persistedError `json:"error,omitempty"`
	ResultDigest string          `json:"resultDigest,omitempty"`
	EventsDigest string          `json:"eventsDigest,omitempty"`
}

// persistedJob is a job's durable view: the submit envelope plus, once
// terminal, the done fields. It doubles as the snapshot entry and the
// replay accumulator.
type persistedJob struct {
	ID      string          `json:"id"`
	Seq     int             `json:"seq"`
	Type    string          `json:"type"`
	Request json.RawMessage `json:"request"`
	Created string          `json:"created"`

	Status       string          `json:"status,omitempty"`
	Started      string          `json:"started,omitempty"`
	Finished     string          `json:"finished,omitempty"`
	Error        *persistedError `json:"error,omitempty"`
	ResultDigest string          `json:"resultDigest,omitempty"`
	EventsDigest string          `json:"eventsDigest,omitempty"`
}

// snapshotDoc is the snapshot file: everything needed to rebuild the
// job store without the journal.
type snapshotDoc struct {
	Seq     int            `json:"seq"`
	Evicted []string       `json:"evicted,omitempty"`
	Jobs    []persistedJob `json:"jobs"`
}

// appendRecord journals one record and advances the snapshot cadence.
// A write failure is surfaced so submit can refuse to acknowledge a job
// that would vanish on restart — and flips the store into degraded
// (read-only) mode. A later successful append is the recovery probe
// that flips it back (DESIGN.md §16). No-op without a store.
func (js *jobStore) appendRecord(rec *jobRecord) *apiError {
	js.pmu.Lock()
	defer js.pmu.Unlock()
	if js.store == nil {
		return nil
	}
	if err := js.store.Append(mustJSON(rec)); err != nil {
		js.enterDegradedUnderPMU(fmt.Sprintf("journaling %s record: %v", rec.Kind, err))
		return &apiError{Status: http.StatusServiceUnavailable, Code: "degraded",
			Message: fmt.Sprintf("journal write failed (%v); serving read-only until writes recover — retry the submission", err)}
	}
	js.appended++
	js.recoverDegradedUnderPMU()
	if js.appended >= js.snapshotEvery {
		js.snapshotUnderPMU()
	}
	return nil
}

// enterDegradedUnderPMU flips the store into read-only degraded mode
// (idempotent; counts only the healthy→degraded edge).
func (js *jobStore) enterDegradedUnderPMU(reason string) {
	if !js.degraded.Swap(true) {
		fmt.Printf("jellyfishd: entering degraded mode: %s\n", reason)
		js.tele.degradedTransitions().Inc()
		js.tele.degradedGauge().Set(1)
	}
}

// recoverDegradedUnderPMU clears degraded mode after a successful
// persist write and immediately snapshots the live store. The snapshot
// is what makes recovery lossless: any terminal job whose persistDone
// failed while degraded is re-persisted here from memory (buildSnapshot
// rewrites every terminal job's blobs and records), so a restart after
// recovery loses no terminal state. If the snapshot itself fails the
// store goes straight back to degraded.
func (js *jobStore) recoverDegradedUnderPMU() {
	if !js.degraded.Swap(false) {
		return
	}
	js.tele.degradedGauge().Set(0)
	fmt.Printf("jellyfishd: persist writes recovered; snapshotting to re-persist degraded-era terminal jobs\n")
	if err := js.snapshotUnderPMU(); err != nil {
		js.enterDegradedUnderPMU(fmt.Sprintf("recovery snapshot: %v", err))
	}
}

// persistDone writes a finished job's result and event stream to blob
// storage and journals the terminal record. Blobs land before the record
// that references them, so a crash between the two leaves only harmless
// unreferenced blobs (collected at the next snapshot), never a dangling
// digest.
func (js *jobStore) persistDone(j *job) {
	js.pmu.Lock()
	defer js.pmu.Unlock()
	if js.store == nil {
		return
	}
	j.mu.Lock()
	rec := &jobRecord{
		Kind:     recDone,
		ID:       j.id,
		Status:   j.status,
		Started:  formatTime(j.started),
		Finished: formatTime(j.finished),
		Error:    toPersistedError(j.err),
	}
	result := j.result
	events := j.events
	j.mu.Unlock()
	var err error
	if rec.ResultDigest, err = putOptionalBlob(js.store, result); err == nil {
		rec.EventsDigest, err = putOptionalBlob(js.store, encodeEvents(events))
	}
	if err == nil {
		err = js.store.Append(mustJSON(rec))
	}
	if err != nil {
		// The job finished in memory and stays servable; the recovery
		// snapshot re-persists it once writes come back (or, failing
		// that, it simply re-runs after a restart). Losing durability is
		// worth a degraded flag and a log line, not a crash.
		fmt.Printf("jellyfishd: persisting job %s: %v\n", j.id, err)
		js.enterDegradedUnderPMU(fmt.Sprintf("persisting job %s: %v", j.id, err))
		return
	}
	js.appended++
	js.recoverDegradedUnderPMU()
	if js.appended >= js.snapshotEvery {
		js.snapshotUnderPMU()
	}
}

func formatTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format(time.RFC3339Nano)
}

func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339Nano, s)
}

// putOptionalBlob stores b (empty → no blob, empty digest).
func putOptionalBlob(store *persist.Store, b []byte) (string, error) {
	if len(b) == 0 {
		return "", nil
	}
	return store.PutBlob(b)
}

// encodeEvents packs an event stream into one blob: a JSON array of the
// raw payloads, in emission order.
func encodeEvents(events [][]byte) []byte {
	if len(events) == 0 {
		return nil
	}
	raw := make([]json.RawMessage, len(events))
	for i, e := range events {
		raw[i] = e
	}
	return mustJSON(raw)
}

func decodeEvents(b []byte) ([][]byte, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var raw []json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil {
		return nil, err
	}
	events := make([][]byte, len(raw))
	for i, r := range raw {
		events[i] = r
	}
	return events, nil
}

// snapshotUnderPMU writes a snapshot of the live job store, truncates
// the journal, and collects unreferenced blobs. Caller holds pmu (which
// serializes all blob writes, so the GC scan cannot race a PutBlob).
// The returned error covers the snapshot itself; blob-GC failures only
// log (they cost disk, not correctness).
func (js *jobStore) snapshotUnderPMU() error {
	doc, live, err := js.buildSnapshot()
	if err == nil {
		err = js.store.WriteSnapshot(mustJSON(doc))
	}
	if err != nil {
		fmt.Printf("jellyfishd: writing snapshot: %v\n", err)
		return err
	}
	js.appended = 0
	digests, err := js.store.Blobs()
	if err != nil {
		fmt.Printf("jellyfishd: listing blobs for gc: %v\n", err)
		return nil
	}
	for _, d := range digests {
		if !live[d] {
			if err := js.store.RemoveBlob(d); err != nil {
				fmt.Printf("jellyfishd: collecting blob %s: %v\n", d, err)
			}
		}
	}
	return nil
}

// buildSnapshot renders the live store as a snapshotDoc plus the set of
// blob digests it references. Terminal jobs' blobs are (re)written here
// so the snapshot never references a digest the blob store lacks — a
// snapshot can race a finishing job whose persistDone has not run yet.
// Shutdown-interrupted jobs (cancelled without clientCancel) snapshot as
// unfinished so the next boot re-runs them.
func (js *jobStore) buildSnapshot() (*snapshotDoc, map[string]bool, error) {
	js.mu.Lock()
	jobs := make([]*job, 0, len(js.jobs))
	for _, j := range js.jobs { //jellyvet:allow determinism -- collected then sorted by id before any use
		jobs = append(jobs, j)
	}
	doc := &snapshotDoc{Seq: js.seq, Evicted: make([]string, 0, len(js.evicted))}
	for id := range js.evicted { //jellyvet:allow determinism -- collected then sorted before any use
		doc.Evicted = append(doc.Evicted, id)
	}
	js.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return olderID(jobs[a].id, jobs[b].id) })
	sort.Slice(doc.Evicted, func(a, b int) bool { return olderID(doc.Evicted[a], doc.Evicted[b]) })

	live := make(map[string]bool)
	for _, j := range jobs {
		j.mu.Lock()
		pj := persistedJob{
			ID:      j.id,
			Seq:     jobSeq(j.id),
			Type:    j.typ,
			Request: j.request,
			Created: formatTime(j.created),
		}
		durableTerminal := terminalStatus(j.status) && (j.status != jobCancelled || j.clientCancel)
		var result, eventsBlob []byte
		if durableTerminal {
			pj.Status = j.status
			pj.Started = formatTime(j.started)
			pj.Finished = formatTime(j.finished)
			pj.Error = toPersistedError(j.err)
			result = j.result
			eventsBlob = encodeEvents(j.events)
		}
		j.mu.Unlock()
		if durableTerminal {
			var err error
			if pj.ResultDigest, err = putOptionalBlob(js.store, result); err != nil {
				return nil, nil, err
			}
			if pj.EventsDigest, err = putOptionalBlob(js.store, eventsBlob); err != nil {
				return nil, nil, err
			}
			if pj.ResultDigest != "" {
				live[pj.ResultDigest] = true
			}
			if pj.EventsDigest != "" {
				live[pj.EventsDigest] = true
			}
		}
		doc.Jobs = append(doc.Jobs, pj)
	}
	return doc, live, nil
}

// jobSeq recovers the sequence number embedded in a job id ("j%06d").
func jobSeq(id string) int {
	var n int
	fmt.Sscanf(id, "j%d", &n)
	return n
}

// recoverJobs rebuilds the job store from a recovered state: snapshot
// first, then journal records in order. Finished jobs come back with
// their result and event bytes loaded from blob storage; unfinished jobs
// (queued, running, or shutdown-interrupted at the crash) are re-planned
// and re-launched through the exact submit execution path, so the
// determinism guarantee makes their eventual results byte-identical to
// an uninterrupted run. Corruption — unknown record kinds, missing
// blobs, unparsable documents — fails loudly rather than guessing.
func (js *jobStore) recoverJobs(sched *scheduler, state persist.RecoveredState) error {
	byID := make(map[string]*persistedJob)
	evicted := make(map[string]bool)
	maxSeq := 0
	if len(state.Snapshot) > 0 {
		var doc snapshotDoc
		if err := json.Unmarshal(state.Snapshot, &doc); err != nil {
			return fmt.Errorf("parsing snapshot: %w", err)
		}
		maxSeq = doc.Seq
		for _, id := range doc.Evicted {
			evicted[id] = true
		}
		for i := range doc.Jobs {
			pj := doc.Jobs[i]
			byID[pj.ID] = &pj
		}
	}
	for i, raw := range state.Records {
		var rec jobRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("parsing journal record %d: %w", i, err)
		}
		switch rec.Kind {
		case recSubmit:
			byID[rec.ID] = &persistedJob{
				ID: rec.ID, Seq: rec.Seq, Type: rec.Type, Request: rec.Request, Created: rec.Created,
			}
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
		case recDone:
			pj, ok := byID[rec.ID]
			if !ok {
				// A job can be evicted (terminal in memory) before its
				// done record lands; the late record is then harmless.
				if evicted[rec.ID] {
					continue
				}
				return fmt.Errorf("journal record %d: done for unknown job %s", i, rec.ID)
			}
			pj.Status = rec.Status
			pj.Started = rec.Started
			pj.Finished = rec.Finished
			pj.Error = rec.Error
			pj.ResultDigest = rec.ResultDigest
			pj.EventsDigest = rec.EventsDigest
		case recEvict:
			delete(byID, rec.ID)
			evicted[rec.ID] = true
		default:
			return fmt.Errorf("journal record %d: unknown kind %q — refusing to guess", i, rec.Kind)
		}
	}

	ids := make([]string, 0, len(byID))
	for id := range byID { //jellyvet:allow determinism -- collected then sorted by id before any use
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return olderID(ids[a], ids[b]) })

	js.mu.Lock()
	js.seq = maxSeq
	for id := range evicted { //jellyvet:allow determinism -- set copy; order-free
		js.evicted[id] = true
	}
	js.mu.Unlock()

	for _, id := range ids {
		pj := byID[id]
		j, restart, err := js.rebuildJob(pj)
		if err != nil {
			return err
		}
		js.mu.Lock()
		js.jobs[j.id] = j
		js.mu.Unlock()
		if restart != nil {
			js.start(sched, j, restart, j.runCtx)
		}
	}
	return nil
}

// rebuildJob turns a persisted view back into a live job. For terminal
// jobs the returned plan is nil; otherwise the job must be started with
// the returned plan. A persisted request that no longer plans cleanly
// comes back as a failed job rather than poisoning recovery: the store
// survives, the job reports the planning error.
func (js *jobStore) rebuildJob(pj *persistedJob) (*job, *plan, error) {
	created, err := parseTime(pj.Created)
	if err != nil {
		return nil, nil, fmt.Errorf("job %s: parsing created time: %w", pj.ID, err)
	}
	started, err := parseTime(pj.Started)
	if err != nil {
		return nil, nil, fmt.Errorf("job %s: parsing started time: %w", pj.ID, err)
	}
	finished, err := parseTime(pj.Finished)
	if err != nil {
		return nil, nil, fmt.Errorf("job %s: parsing finished time: %w", pj.ID, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := newJob(pj.ID, pj.Type, pj.Request, cancel)
	j.created = created
	j.runCtx = ctx

	if pj.Status != "" {
		if !terminalStatus(pj.Status) {
			return nil, nil, fmt.Errorf("job %s: persisted with non-terminal status %q", pj.ID, pj.Status)
		}
		j.status = pj.Status
		j.started = started
		j.finished = finished
		j.err = pj.Error.toAPIError()
		j.clientCancel = pj.Status == jobCancelled
		if pj.ResultDigest != "" {
			if j.result, err = js.store.GetBlob(pj.ResultDigest); err != nil {
				return nil, nil, fmt.Errorf("job %s: loading result blob: %w", pj.ID, err)
			}
		}
		if pj.EventsDigest != "" {
			blob, err := js.store.GetBlob(pj.EventsDigest)
			if err != nil {
				return nil, nil, fmt.Errorf("job %s: loading events blob: %w", pj.ID, err)
			}
			if j.events, err = decodeEvents(blob); err != nil {
				return nil, nil, fmt.Errorf("job %s: decoding events blob: %w", pj.ID, err)
			}
		}
		close(j.done)
		return j, nil, nil
	}

	p, aerr := planJob(&JobSpec{Type: pj.Type, Request: pj.Request})
	if aerr != nil {
		j.status = jobFailed
		j.err = aerr
		close(j.done)
		return j, nil, nil
	}
	return j, p, nil
}
