package service

import "container/list"

// lru is the per-worker warm-state cache: a plain entry-count-bounded LRU
// over string keys. It is deliberately NOT thread-safe — each instance is
// owned by exactly one shard worker goroutine, which is the whole
// ownership story for the mutable warm assets it holds (capsearch.Family
// memoization, chain checkpoints). The cached values themselves are pure
// functions of their keys, so eviction can change wall-clock but never a
// response (DESIGN.md §10).
//
//jellyvet:confined
type lru struct {
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *lru) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lru) put(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// remove drops one entry, if present. Used by panic containment to
// discard a family's possibly-poisoned warm state: a kernel that
// panicked mid-mutation may have left the memoized asset inconsistent,
// and the pure-function-of-key guarantee only holds for values a
// completed execution produced.
func (c *lru) remove(key string) {
	if el, ok := c.items[key]; ok {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

func (c *lru) len() int { return c.order.Len() }
