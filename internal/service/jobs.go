package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The async job API: heavy planning operations (capacity searches, long
// what-if chains, multi-trial evaluations) submitted as jobs instead of
// held-open requests. A job runs through the same scheduler as the sync
// endpoints — same shard routing, same warm-state caches, same canonical
// digests — so its result bytes are identical to the sync endpoint's for
// the same request (asserted in the e2e suite). Job envelopes (ids,
// timestamps) are bookkeeping and are NOT covered by the determinism
// guarantee; results are.

// Job states.
const (
	jobQueued    = "queued"
	jobRunning   = "running"
	jobSucceeded = "succeeded"
	jobFailed    = "failed"
	jobCancelled = "cancelled"
)

type job struct {
	id  string
	typ string

	mu       sync.Mutex
	status   string
	result   []byte
	err      *apiError
	created  time.Time
	started  time.Time
	finished time.Time

	cancel context.CancelFunc
	done   chan struct{}
}

// JobView is the wire representation of a job.
type JobView struct {
	ID       string          `json:"id"`
	Type     string          `json:"type"`
	Status   string          `json:"status"`
	Created  string          `json:"created"`
	Started  string          `json:"started,omitempty"`
	Finished string          `json:"finished,omitempty"`
	Error    *apiError       `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// JobSpec is the submission body: the operation type plus the same
// request document the matching sync endpoint accepts.
type JobSpec struct {
	Type    string          `json:"type"`
	Request json.RawMessage `json:"request"`
}

// maxJobs bounds the job store of this resident daemon: past it, submit
// evicts finished jobs oldest-first (their results were retrievable the
// whole time; clients polling a just-finished job still have maxJobs/2
// submissions of slack before it ages out) and, if every retained job is
// still queued or running, rejects new submissions instead of growing
// without bound.
const maxJobs = 1024

type jobStore struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*job
	// cap is maxJobs, overridable in tests.
	cap int
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*job), cap: maxJobs}
}

// submit validates the spec, plans it, and starts it asynchronously on
// the scheduler. Validation errors surface now (HTTP 400); execution
// errors surface on the job.
func (js *jobStore) submit(sched *scheduler, spec *JobSpec) (*job, *apiError) {
	p, aerr := planJob(spec)
	if aerr != nil {
		return nil, aerr
	}
	ctx, cancel := context.WithCancel(context.Background())
	js.mu.Lock()
	if len(js.jobs) >= js.cap && !js.evictFinishedLocked() {
		js.mu.Unlock()
		cancel()
		return nil, &apiError{Status: http.StatusTooManyRequests, Code: "job_store_full",
			Message: fmt.Sprintf("all %d retained jobs are still queued or running; retry after some finish or cancel", len(js.jobs))}
	}
	js.seq++
	j := &job{
		id:      fmt.Sprintf("j%06d", js.seq),
		typ:     spec.Type,
		status:  jobQueued,
		created: time.Now().UTC(), //jellyvet:allow determinism -- job metadata timestamp; never enters a response digest
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	js.jobs[j.id] = j
	js.mu.Unlock()

	//jellyvet:allow determinism -- async job executor; the result itself is computed on the scheduler's deterministic path
	go func() {
		defer close(j.done)
		// Jobs skip single-flight (each has its own cancellation scope)
		// but still hit the response cache on the worker.
		resp, err := sched.do(ctx, p, false, func() {
			j.mu.Lock()
			if j.status == jobQueued {
				j.status = jobRunning
				j.started = time.Now().UTC() //jellyvet:allow determinism -- job metadata timestamp; never enters a response digest
			}
			j.mu.Unlock()
		})
		j.mu.Lock()
		defer j.mu.Unlock()
		j.finished = time.Now().UTC() //jellyvet:allow determinism -- job metadata timestamp; never enters a response digest
		switch {
		case err == nil:
			j.status = jobSucceeded
			j.result = resp
		case ctx.Err() != nil:
			j.status = jobCancelled
			j.err = &apiError{Status: http.StatusConflict, Code: "cancelled", Message: "job cancelled"}
		default:
			j.status = jobFailed
			if ae, ok := err.(*apiError); ok {
				j.err = ae
			} else {
				j.err = &apiError{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
			}
		}
	}()
	return j, nil
}

// planJob maps a job type to the sync endpoint's planner, so job results
// and sync results share canonical digests (and so response bytes).
func planJob(spec *JobSpec) (*plan, *apiError) {
	if len(spec.Request) == 0 {
		return nil, badRequest("invalid_job", "job request body missing")
	}
	switch spec.Type {
	case "design":
		var req DesignSpec
		if aerr := decodeStrict(spec.Request, &req); aerr != nil {
			return nil, aerr
		}
		return planDesign(&req)
	case "evaluate":
		var req EvaluateRequest
		if aerr := decodeStrict(spec.Request, &req); aerr != nil {
			return nil, aerr
		}
		return planEvaluate(&req)
	case "capacity-search":
		var req CapacitySearchRequest
		if aerr := decodeStrict(spec.Request, &req); aerr != nil {
			return nil, aerr
		}
		return planCapacitySearch(&req)
	case "whatif":
		var req WhatIfRequest
		if aerr := decodeStrict(spec.Request, &req); aerr != nil {
			return nil, aerr
		}
		return planWhatIf(&req)
	case "rewire-plan":
		var req RewireRequest
		if aerr := decodeStrict(spec.Request, &req); aerr != nil {
			return nil, aerr
		}
		return planRewire(&req)
	default:
		return nil, badRequest("unknown_job_type", "unknown job type %q (want design, evaluate, capacity-search, whatif, or rewire-plan)", spec.Type)
	}
}

// olderID orders job ids by age. Ids are zero-padded sequence numbers,
// so shorter — then lexicographically smaller — means older (the length
// tiebreak keeps the order right past the padding width).
func olderID(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// evictFinishedLocked drops the oldest finished job, reporting whether
// one was found.
func (js *jobStore) evictFinishedLocked() bool {
	oldest := ""
	//jellyvet:allow determinism -- min-by-id reduction; result independent of iteration order
	for id, j := range js.jobs {
		j.mu.Lock()
		finished := j.status == jobSucceeded || j.status == jobFailed || j.status == jobCancelled
		j.mu.Unlock()
		if finished && (oldest == "" || olderID(id, oldest)) {
			oldest = id
		}
	}
	if oldest == "" {
		return false
	}
	delete(js.jobs, oldest)
	return true
}

func (js *jobStore) get(id string) (*job, *apiError) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	if !ok {
		return nil, &apiError{Status: http.StatusNotFound, Code: "unknown_job", Message: fmt.Sprintf("no job %q", id)}
	}
	return j, nil
}

// list returns views of all jobs, oldest first.
func (js *jobStore) list() []JobView {
	js.mu.Lock()
	jobs := make([]*job, 0, len(js.jobs))
	for _, j := range js.jobs { //jellyvet:allow determinism -- collected then sorted by id before any use
		jobs = append(jobs, j)
	}
	js.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return olderID(jobs[a].id, jobs[b].id) })
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view(false)
	}
	return views
}

// view renders the job; withResult includes the (possibly large) result
// document — the list endpoint omits it.
func (j *job) view(withResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.id,
		Type:    j.typ,
		Status:  j.status,
		Created: j.created.Format(time.RFC3339Nano),
		Error:   j.err,
	}
	if !j.started.IsZero() {
		v.Started = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.Format(time.RFC3339Nano)
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// cancelJob requests cancellation: queued jobs die at dequeue, running
// interruptible operations (capacity searches between trial solves,
// what-if chains and evaluations between solves) at their next poll. A
// finished job is left untouched.
func (j *job) cancelJob() {
	j.cancel()
}
