package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jellyfish/internal/persist"
	"jellyfish/internal/telemetry"
)

// The async job API: heavy planning operations (capacity searches, long
// what-if chains, multi-trial evaluations) submitted as jobs instead of
// held-open requests. A job runs through the same scheduler as the sync
// endpoints — same shard routing, same warm-state caches, same canonical
// digests — so its result bytes are identical to the sync endpoint's for
// the same request (asserted in the e2e suite). Job envelopes (ids,
// timestamps) are bookkeeping and are NOT covered by the determinism
// guarantee; results and streamed progress payloads are.
//
// With a state directory configured (Options.StateDir), the store is
// durable: every submission and terminal transition is journaled, and a
// restarted daemon replays the journal so queued/running jobs re-execute
// (byte-identical by the determinism guarantee) and finished jobs stay
// fetchable. See persistence.go and DESIGN.md §14.

// Job states.
const (
	jobQueued    = "queued"
	jobRunning   = "running"
	jobSucceeded = "succeeded"
	jobFailed    = "failed"
	jobCancelled = "cancelled"
)

func terminalStatus(s string) bool {
	return s == jobSucceeded || s == jobFailed || s == jobCancelled
}

type job struct {
	id  string
	typ string
	// request is the submitted request document, retained so a durable
	// store can journal it and a restarted daemon can re-plan it.
	request json.RawMessage

	mu sync.Mutex
	// eventsCh broadcasts on every append to events and on the terminal
	// transition, waking SSE subscribers; it is a *sync.Cond over mu.
	eventsCh *sync.Cond
	status   string
	result   []byte
	events   [][]byte
	// trace is the execution's recorded span tree (GET /v1/trace/{id}).
	// In-memory only: traces are wall-clock diagnostics, deliberately
	// kept out of the durable store and the determinism guarantee.
	trace    *telemetry.Trace
	err      *apiError
	created  time.Time
	started  time.Time
	finished time.Time
	// clientCancel marks a cancellation requested through the API (as
	// opposed to daemon shutdown): only client cancellations journal a
	// terminal record — a shutdown-interrupted job must replay as
	// unfinished so the next boot restarts it.
	clientCancel bool

	cancel context.CancelFunc
	// runCtx is the execution context paired with cancel; retained so
	// recovery can relaunch a rebuilt job through start.
	runCtx context.Context
	done   chan struct{}
}

func newJob(id, typ string, request json.RawMessage, cancel context.CancelFunc) *job {
	j := &job{
		id:      id,
		typ:     typ,
		request: request,
		status:  jobQueued,
		created: time.Now().UTC(), //jellyvet:allow determinism -- job metadata timestamp; never enters a response digest or event payload
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	j.eventsCh = sync.NewCond(&j.mu)
	return j
}

// JobView is the wire representation of a job.
type JobView struct {
	ID       string          `json:"id"`
	Type     string          `json:"type"`
	Status   string          `json:"status"`
	Created  string          `json:"created"`
	Started  string          `json:"started,omitempty"`
	Finished string          `json:"finished,omitempty"`
	Error    *apiError       `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// JobSpec is the submission body: the operation type plus the same
// request document the matching sync endpoint accepts.
type JobSpec struct {
	Type    string          `json:"type"`
	Request json.RawMessage `json:"request"`
}

// maxJobs bounds the job store of this resident daemon: past it, submit
// evicts finished jobs oldest-first (their results were retrievable the
// whole time; clients polling a just-finished job still have maxJobs/2
// submissions of slack before it ages out) and, if every retained job is
// still queued or running, rejects new submissions instead of growing
// without bound.
const maxJobs = 1024

// maxTombstones bounds the evicted-id set behind the 410 Gone answers;
// past it the oldest tombstones age out to plain 404s.
const maxTombstones = 4 * maxJobs

type jobStore struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*job
	// evicted remembers ids dropped by the retention cap, so clients can
	// distinguish "evicted" (410 Gone) from "never existed" (404).
	evicted map[string]bool
	// draining refuses new submissions during graceful shutdown.
	draining bool
	// cap is maxJobs, overridable in tests.
	cap int

	// Persistence (nil store = memory-only daemon). pmu serializes all
	// store I/O and the snapshot cadence. Lock order: pmu may take mu
	// (and per-job mu) while building a snapshot, so appendRecord and
	// persistDone must never be called with mu held.
	pmu           sync.Mutex
	store         *persist.Store
	snapshotEvery int
	appended      int

	// degraded marks the read-only failure mode: a persist write failed,
	// so submissions are refused with 503 "degraded" while reads keep
	// serving from memory. The flag clears itself — every later persist
	// write doubles as the recovery probe (see persistence.go). Atomic so
	// healthz can read it without touching pmu.
	degraded atomic.Bool
	// tele records degraded-mode transitions (nil-safe; nil when the
	// daemon runs without telemetry).
	tele *tele
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*job), evicted: make(map[string]bool), cap: maxJobs}
}

// submit validates the spec, plans it, journals it, and starts it
// asynchronously on the scheduler. Validation and journaling errors
// surface now (HTTP 400/500); execution errors surface on the job.
func (js *jobStore) submit(sched *scheduler, spec *JobSpec) (*job, *apiError) {
	p, aerr := planJob(spec)
	if aerr != nil {
		return nil, aerr
	}
	ctx, cancel := context.WithCancel(context.Background())
	js.mu.Lock()
	if js.draining {
		js.mu.Unlock()
		cancel()
		return nil, &apiError{Status: http.StatusServiceUnavailable, Code: "shutting_down",
			Message: "server is draining; no new jobs admitted"}
	}
	evictedID := ""
	if len(js.jobs) >= js.cap {
		if evictedID = js.evictFinishedLocked(); evictedID == "" {
			n := len(js.jobs)
			js.mu.Unlock()
			cancel()
			return nil, &apiError{Status: http.StatusTooManyRequests, Code: "job_store_full",
				Message: fmt.Sprintf("all %d retained jobs are still queued or running; retry after some finish or cancel", n)}
		}
	}
	js.seq++
	j := newJob(fmt.Sprintf("j%06d", js.seq), spec.Type, spec.Request, cancel)
	j.runCtx = ctx
	js.jobs[j.id] = j
	seq := js.seq
	js.mu.Unlock()

	if evictedID != "" {
		js.appendRecord(&jobRecord{Kind: recEvict, ID: evictedID})
	}
	if aerr := js.appendRecord(&jobRecord{
		Kind: recSubmit, ID: j.id, Seq: seq, Type: j.typ, Request: j.request,
		Created: j.created.Format(time.RFC3339Nano),
	}); aerr != nil {
		// The submission never became durable: withdraw it rather than
		// acknowledge a job a restart would forget.
		js.mu.Lock()
		delete(js.jobs, j.id)
		js.mu.Unlock()
		cancel()
		return nil, aerr
	}
	js.start(sched, j, p, ctx)
	return j, nil
}

// start launches a job's executor goroutine — shared by submit and
// crash recovery (recoverState re-runs unfinished jobs through exactly
// this path, which is why replayed results are byte-identical).
//
//jellyvet:allow determinism -- async job executor; the result itself is computed on the scheduler's deterministic path
func (js *jobStore) start(sched *scheduler, j *job, p *plan, ctx context.Context) {
	go func() {
		defer close(j.done)
		onEvent := func(b []byte) {
			j.mu.Lock()
			j.events = append(j.events, b)
			j.eventsCh.Broadcast()
			j.mu.Unlock()
		}
		// Jobs skip single-flight (each has its own cancellation scope)
		// but still hit the response cache on the worker.
		resp, trace, err := sched.do(ctx, p, false, func() {
			j.mu.Lock()
			if j.status == jobQueued {
				j.status = jobRunning
				j.started = time.Now().UTC() //jellyvet:allow determinism -- job metadata timestamp; never enters a response digest or event payload
			}
			j.mu.Unlock()
		}, onEvent)
		j.mu.Lock()
		j.trace = trace
		j.finished = time.Now().UTC() //jellyvet:allow determinism -- job metadata timestamp; never enters a response digest or event payload
		persist := true
		switch {
		case err == nil:
			j.status = jobSucceeded
			j.result = resp
		case ctx.Err() != nil:
			j.status = jobCancelled
			j.err = &apiError{Status: http.StatusConflict, Code: "cancelled", Message: "job cancelled"}
			// Shutdown interruptions journal nothing: the submit record
			// without a terminal record is the checkpoint that makes the
			// next boot re-run this job.
			persist = j.clientCancel
		default:
			j.status = jobFailed
			if ae, ok := err.(*apiError); ok {
				j.err = ae
			} else {
				j.err = &apiError{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
			}
		}
		j.eventsCh.Broadcast()
		j.mu.Unlock()
		if persist {
			js.persistDone(j)
		}
	}()
}

// planJob maps a job type to the sync endpoint's planner, so job results
// and sync results share canonical digests (and so response bytes).
func planJob(spec *JobSpec) (*plan, *apiError) {
	if len(spec.Request) == 0 {
		return nil, badRequest("invalid_job", "job request body missing")
	}
	switch spec.Type {
	case "design":
		var req DesignSpec
		if aerr := decodeStrict(spec.Request, &req); aerr != nil {
			return nil, aerr
		}
		return planDesign(&req)
	case "evaluate":
		var req EvaluateRequest
		if aerr := decodeStrict(spec.Request, &req); aerr != nil {
			return nil, aerr
		}
		return planEvaluate(&req)
	case "capacity-search":
		var req CapacitySearchRequest
		if aerr := decodeStrict(spec.Request, &req); aerr != nil {
			return nil, aerr
		}
		return planCapacitySearch(&req)
	case "whatif":
		var req WhatIfRequest
		if aerr := decodeStrict(spec.Request, &req); aerr != nil {
			return nil, aerr
		}
		return planWhatIf(&req)
	case "rewire-plan":
		var req RewireRequest
		if aerr := decodeStrict(spec.Request, &req); aerr != nil {
			return nil, aerr
		}
		return planRewire(&req)
	default:
		return nil, badRequest("unknown_job_type", "unknown job type %q (want design, evaluate, capacity-search, whatif, or rewire-plan)", spec.Type)
	}
}

// olderID orders job ids by age. Ids are zero-padded sequence numbers,
// so shorter — then lexicographically smaller — means older (the length
// tiebreak keeps the order right past the padding width).
func olderID(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// evictFinishedLocked drops the oldest finished job, returning its id
// ("" if every retained job is still queued or running). The dropped id
// joins the tombstone set so later lookups answer 410 Gone.
func (js *jobStore) evictFinishedLocked() string {
	oldest := ""
	//jellyvet:allow determinism -- min-by-id reduction; result independent of iteration order
	for id, j := range js.jobs {
		j.mu.Lock()
		finished := terminalStatus(j.status)
		j.mu.Unlock()
		if finished && (oldest == "" || olderID(id, oldest)) {
			oldest = id
		}
	}
	if oldest == "" {
		return ""
	}
	delete(js.jobs, oldest)
	js.evicted[oldest] = true
	if len(js.evicted) > maxTombstones {
		js.dropOldestTombstonesLocked()
	}
	return oldest
}

// dropOldestTombstonesLocked ages the oldest half of the tombstone set
// out to plain 404s, keeping the 410 memory bounded.
func (js *jobStore) dropOldestTombstonesLocked() {
	ids := make([]string, 0, len(js.evicted))
	//jellyvet:allow determinism -- collected then sorted by id before any use
	for id := range js.evicted {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return olderID(ids[a], ids[b]) })
	for _, id := range ids[:len(ids)/2] {
		delete(js.evicted, id)
	}
}

func (js *jobStore) get(id string) (*job, *apiError) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	if !ok {
		if js.evicted[id] {
			return nil, &apiError{Status: http.StatusGone, Code: "job_evicted",
				Message: fmt.Sprintf("job %q was evicted by the retention cap (%d jobs); resubmit the request — results are deterministic", id, js.cap)}
		}
		return nil, &apiError{Status: http.StatusNotFound, Code: "unknown_job", Message: fmt.Sprintf("no job %q", id)}
	}
	return j, nil
}

// list returns views of all jobs, oldest first.
func (js *jobStore) list() []JobView {
	js.mu.Lock()
	jobs := make([]*job, 0, len(js.jobs))
	for _, j := range js.jobs { //jellyvet:allow determinism -- collected then sorted by id before any use
		jobs = append(jobs, j)
	}
	js.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return olderID(jobs[a].id, jobs[b].id) })
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view(false)
	}
	return views
}

// view renders the job; withResult includes the (possibly large) result
// document — the list endpoint omits it.
func (j *job) view(withResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.id,
		Type:    j.typ,
		Status:  j.status,
		Created: j.created.Format(time.RFC3339Nano),
		Error:   j.err,
	}
	if !j.started.IsZero() {
		v.Started = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.Format(time.RFC3339Nano)
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// cancelJob requests cancellation on a client's behalf: queued jobs die
// at dequeue, running interruptible operations (capacity searches
// between trial solves, what-if chains and evaluations between solves)
// at their next poll. A finished job is left untouched. Unlike shutdown
// interruption, a client cancellation is a terminal state and is
// journaled as one.
func (j *job) cancelJob() {
	j.mu.Lock()
	j.clientCancel = true
	j.mu.Unlock()
	j.cancel()
}
