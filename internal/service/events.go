package service

import (
	"fmt"
	"net/http"

	"jellyfish/internal/faultinject"
)

// Streaming job progress. GET /v1/jobs/{id}/events serves the job's
// progress stream as Server-Sent Events: one "progress" frame per
// emitted payload (per-probe for capacity searches, per-trial for
// evaluations, per-step for what-if chains; see the event types in
// api.go), then a terminal "done" frame carrying the final status.
//
// Determinism: the payload bytes and their order are covered by the
// service-wide guarantee — same request ⇒ identical frame sequence
// regardless of worker count, cache state, live tailing vs post-hoc
// replay, or a daemon restart in between (streams are persisted with
// results). The SSE envelope carries no ids, timestamps, or retry
// hints, so the whole response body is reproducible byte-for-byte
// (asserted in stream_test.go).

// handleJobEvents tails a job's event stream. Connecting after the job
// finished replays the full stream; connecting mid-run streams live and
// the frames are identical either way.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, aerr := s.jobs.get(r.PathValue("id"))
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &apiError{Status: http.StatusInternalServerError, Code: "internal",
			Message: "response writer does not support streaming"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	s.tele.sse().Inc()
	defer s.tele.sse().Dec()

	// A disconnected client must wake the cond-wait below; the watcher
	// broadcasts once and exits when the request context ends (which
	// also happens when this handler returns).
	//jellyvet:allow determinism -- disconnect watcher; never touches response bytes
	go func() {
		<-r.Context().Done()
		j.mu.Lock()
		j.eventsCh.Broadcast()
		j.mu.Unlock()
	}()

	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.events) && !terminalStatus(j.status) && r.Context().Err() == nil {
			j.eventsCh.Wait()
		}
		pending := j.events[next:]
		next = len(j.events)
		status := j.status
		j.mu.Unlock()
		if r.Context().Err() != nil {
			return
		}
		for _, e := range pending {
			if faultinject.Enabled() {
				// Chaos site: a failed frame write drops the connection
				// mid-stream, exercising the same path as a vanished
				// client. The stream replays in full on reconnect.
				if f, failed := faultinject.Hit("sse.write"); failed && f.Err != nil {
					return
				}
			}
			fmt.Fprintf(w, "event: progress\ndata: %s\n\n", e)
		}
		// Appends happen-before the terminal transition, so a terminal
		// status observed in the same critical section as the pending
		// slice means the stream above is complete.
		if terminalStatus(status) {
			fmt.Fprintf(w, "event: done\ndata: {\"status\":%q}\n\n", status)
			fl.Flush()
			return
		}
		fl.Flush()
	}
}

// handleJobResult serves a succeeded job's result document verbatim —
// the exact bytes the matching sync endpoint would produce, with no job
// envelope around them, so clients (and the CI kill-and-recover smoke)
// can compare the two responses byte-for-byte.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, aerr := s.jobs.get(r.PathValue("id"))
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	j.mu.Lock()
	status := j.status
	result := j.result
	jerr := j.err
	j.mu.Unlock()
	switch {
	case !terminalStatus(status):
		writeErr(w, &apiError{Status: http.StatusConflict, Code: "not_finished",
			Message: fmt.Sprintf("job is %s; poll GET /v1/jobs/{id} or stream /events until it finishes", status)})
	case status != jobSucceeded:
		if jerr == nil {
			jerr = &apiError{Status: http.StatusConflict, Code: status, Message: "job did not succeed"}
		}
		writeErr(w, jerr)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	}
}
