package service

import (
	"strconv"

	"jellyfish/internal/capsearch"
	"jellyfish/internal/faultinject"
	"jellyfish/internal/mcf"
	"jellyfish/internal/persist"
	"jellyfish/internal/telemetry"
)

// The service's telemetry bundle: every metric slot and flight recorder
// the daemon owns, registered once at construction and surfaced on
// GET /metrics (Prometheus text format) and GET /v1/trace/{id} (the
// recorded span tree of a finished job). A nil *tele — the
// Options.DisableTelemetry configuration — disables everything through
// the instruments' nil-safety; there is no second code path, which is
// what the byte-identity tests in telemetry_test.go rely on.
//
// Confinement: counters and histograms are shared atomics and may be
// written from any goroutine; each shard worker's flight Recorder is
// confined to that worker's goroutine (workerTele), and the *Trace
// trees it extracts are immutable and shared freely. Telemetry is
// one-way — nothing read from an instrument may influence a response —
// and jellyvet's obsconfine analyzer enforces that across the package.

// recorderSpans is each shard worker's flight-recorder window: the ring
// holds the most recent completed spans, so a trace covers roughly this
// many probe/trial/phase spans before truncation (Trace.Dropped counts
// the overflow). At ~56 bytes a span this is ~56 KiB per worker.
const recorderSpans = 1024

// ops enumerates the planning operations for per-op duration series.
var ops = []string{"design", "evaluate", "capacity-search", "whatif", "rewire-plan"}

// cacheTiers enumerates the warm-state cache tiers for hit/miss series.
var cacheTiers = []string{"resp", "family", "chain", "sim"}

// workerTele is one shard worker's telemetry: the goroutine-confined
// flight recorder plus that worker's per-tier cache counters and the
// kernel observability bundles threaded into solver and search calls.
// The zero value (telemetry disabled) records nothing — every field is
// nil and every instrument is nil-safe.
//
//jellyvet:confined
type workerTele struct {
	rec *telemetry.Recorder

	respHits, respMisses     *telemetry.Counter
	familyHits, familyMisses *telemetry.Counter
	chainHits, chainMisses   *telemetry.Counter
	simHits, simMisses       *telemetry.Counter

	// search carries the worker's recorder and the shared kernel
	// counters into capacity searches (capsearch.probe > capsearch.trial
	// > mcf.solve spans); search.Solver is the matching mcf bundle.
	search *capsearch.Obs
}

// tele is the server-wide bundle behind /metrics. Nil means telemetry
// is disabled; every method is nil-receiver-safe.
type tele struct {
	reg *telemetry.Registry

	opDur     map[string]*telemetry.Histogram
	queueWait *telemetry.Histogram
	sseSubs   *telemetry.Gauge
	replayDur *telemetry.Histogram
	store     *persist.Obs

	// Failure-containment families (DESIGN.md §16).
	panics        *telemetry.Counter
	degradedState *telemetry.Gauge
	degradedFlips *telemetry.Counter
	quotaRejects  *telemetry.Counter

	workers []*workerTele
}

// newTele builds the registry and every fixed instrument slot for a
// daemon with the given worker count. Registration order groups series
// of one family together so the exposition renders each family as one
// block.
func newTele(workers int) *tele {
	reg := telemetry.NewRegistry()
	t := &tele{
		reg:     reg,
		opDur:   make(map[string]*telemetry.Histogram, len(ops)),
		workers: make([]*workerTele, workers),
	}
	for i := range t.workers {
		t.workers[i] = &workerTele{rec: telemetry.NewRecorder(recorderSpans)}
	}

	for _, op := range ops {
		t.opDur[op] = reg.Histogram("jellyfishd_op_duration_seconds",
			"Cold execution time of one planning operation on its shard worker (cache hits excluded).",
			telemetry.Labels("op", op))
	}
	t.queueWait = reg.Histogram("jellyfishd_scheduler_queue_wait_seconds",
		"Time a task spent queued on its shard before execution began.", "")
	t.sseSubs = reg.Gauge("jellyfishd_sse_subscribers",
		"Currently connected job event-stream (SSE) subscribers.", "")
	t.replayDur = reg.Histogram("jellyfishd_jobstore_replay_seconds",
		"Durable job store replay time at boot (snapshot parse + journal apply + job relaunch).", "")
	t.panics = reg.Counter("jellyfishd_panics_contained_total",
		"Kernel panics recovered on a shard worker (job failed, warm state discarded, worker kept alive).", "")
	t.degradedState = reg.Gauge("jellyfishd_degraded",
		"1 while the daemon is serving read-only after persist-write failures, 0 when healthy.", "")
	t.degradedFlips = reg.Counter("jellyfishd_degraded_transitions_total",
		"Healthy-to-degraded transitions of the durable job store.", "")
	t.quotaRejects = reg.Counter("jellyfishd_quota_rejected_total",
		"Requests shed with 429 by the per-client quota layer.", "")
	reg.CounterFunc("jellyfishd_faultinject_fires_total",
		"Failpoint firings under the active fault schedule (0 outside chaos runs).", "",
		//jellyvet:allow faultconfine -- scrape-time counter read, not a failpoint: runs on /metrics requests only, never on a response path
		func() int64 { return int64(faultinject.FireCount()) })
	t.store = &persist.Obs{
		Appends: reg.Counter("jellyfishd_jobstore_appends_total",
			"Journal records appended to the durable job store.", ""),
		Snapshots: reg.Counter("jellyfishd_jobstore_snapshots_total",
			"Snapshots written by the durable job store.", ""),
		AppendDur: reg.Histogram("jellyfishd_jobstore_append_seconds",
			"Journal append latency (write reaching the kernel).", ""),
		SnapshotDur: reg.Histogram("jellyfishd_jobstore_snapshot_seconds",
			"Snapshot write latency (temp file, fsync, rename, journal reset).", ""),
	}

	for _, tier := range cacheTiers {
		for i, wt := range t.workers {
			c := reg.Counter("jellyfishd_cache_hits_total",
				"Warm-state cache hits by worker and tier.",
				telemetry.Labels("worker", strconv.Itoa(i), "tier", tier))
			switch tier {
			case "resp":
				wt.respHits = c
			case "family":
				wt.familyHits = c
			case "chain":
				wt.chainHits = c
			case "sim":
				wt.simHits = c
			}
		}
	}
	for _, tier := range cacheTiers {
		for i, wt := range t.workers {
			c := reg.Counter("jellyfishd_cache_misses_total",
				"Warm-state cache misses by worker and tier.",
				telemetry.Labels("worker", strconv.Itoa(i), "tier", tier))
			switch tier {
			case "resp":
				wt.respMisses = c
			case "family":
				wt.familyMisses = c
			case "chain":
				wt.chainMisses = c
			case "sim":
				wt.simMisses = c
			}
		}
	}

	// Kernel-level instruments are shared across workers (they are plain
	// atomics); only the flight recorder is per-worker.
	solver := &mcf.Obs{
		Solves: reg.Counter("jellyfishd_solver_solves_total",
			"Complete max-concurrent-flow solves.", ""),
		Phases: reg.Counter("jellyfishd_solver_phases_total",
			"Garg–Könemann phases across all solves.", ""),
		Batches: reg.Counter("jellyfishd_solver_batches_total",
			"Source-batch Dijkstra sweeps across all phases.", ""),
		DualRefreshes: reg.Counter("jellyfishd_solver_dual_refreshes_total",
			"Dual upper-bound refreshes across all solves.", ""),
		SolveDur: reg.Histogram("jellyfishd_solver_solve_seconds",
			"Wall time of one complete solve.", ""),
		PhaseDur: reg.Histogram("jellyfishd_solver_phase_seconds",
			"Wall time of one Garg–Könemann phase.", ""),
	}
	probes := reg.Counter("jellyfishd_capsearch_probes_total",
		"Capacity-search feasibility probes.", "")
	trials := reg.Counter("jellyfishd_capsearch_trials_total",
		"Capacity-search trial evaluations.", "")
	probeDur := reg.Histogram("jellyfishd_capsearch_probe_seconds",
		"Wall time of one feasibility probe (all its trials).", "")
	for _, wt := range t.workers {
		wt.search = &capsearch.Obs{
			Probes:   probes,
			Trials:   trials,
			ProbeDur: probeDur,
			Rec:      wt.rec,
			Solver:   &mcf.Obs{Solves: solver.Solves, Phases: solver.Phases, Batches: solver.Batches, DualRefreshes: solver.DualRefreshes, SolveDur: solver.SolveDur, PhaseDur: solver.PhaseDur, Rec: wt.rec},
		}
	}
	return t
}

// bindScheduler registers the read-out bridges over the scheduler's own
// state: per-worker queue depth and cache size, plus the counters the
// stats endpoint already tracks in non-telemetry atomics. Called once,
// right after the scheduler is built.
func (t *tele) bindScheduler(s *scheduler) {
	if t == nil {
		return
	}
	for i, w := range s.workers {
		t.reg.GaugeFunc("jellyfishd_scheduler_queue_depth",
			"Tasks queued on the shard worker.",
			telemetry.Labels("worker", strconv.Itoa(i)),
			func() int64 { return int64(len(w.queue)) })
	}
	for i, w := range s.workers {
		t.reg.GaugeFunc("jellyfishd_cache_entries",
			"Entries across the worker's warm-state cache tiers.",
			telemetry.Labels("worker", strconv.Itoa(i)), w.cacheLen.Load)
	}
	t.reg.CounterFunc("jellyfishd_sched_deduped_total",
		"Requests coalesced onto an identical in-flight execution.", "",
		s.stats.deduped.Load)
	t.reg.CounterFunc("jellyfishd_sync_rejected_total",
		"Synchronous requests shed with 429 at the admission gate.", "",
		s.stats.syncRejected.Load)
}

// worker returns shard i's telemetry (an inert zero bundle when
// telemetry is disabled, so worker code never branches on enablement).
func (t *tele) worker(i int) *workerTele {
	if t == nil {
		return &workerTele{}
	}
	return t.workers[i]
}

// opDurH returns the duration histogram for one operation (nil when
// telemetry is disabled or the op is unknown; nil histograms discard).
func (t *tele) opDurH(op string) *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.opDur[op]
}

// queueWaitH returns the shard queue-wait histogram.
func (t *tele) queueWaitH() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.queueWait
}

// sse returns the SSE subscriber gauge.
func (t *tele) sse() *telemetry.Gauge {
	if t == nil {
		return nil
	}
	return t.sseSubs
}

// panicsContained returns the recovered-kernel-panic counter.
func (t *tele) panicsContained() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.panics
}

// degradedGauge returns the degraded-mode state gauge (1 = degraded).
func (t *tele) degradedGauge() *telemetry.Gauge {
	if t == nil {
		return nil
	}
	return t.degradedState
}

// degradedTransitions returns the healthy→degraded transition counter.
func (t *tele) degradedTransitions() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.degradedFlips
}

// quotaRejected returns the per-client quota rejection counter.
func (t *tele) quotaRejected() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.quotaRejects
}

// replayH returns the job store replay-duration histogram.
func (t *tele) replayH() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.replayDur
}

// storeObs returns the persist-layer bundle to attach to the job store.
func (t *tele) storeObs() *persist.Obs {
	if t == nil {
		return nil
	}
	return t.store
}
