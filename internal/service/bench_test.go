package service

import (
	"context"
	"testing"
)

// The acceptance benchmark for warm-shard routing: a repeated
// capacity-search workload — the request stream a planning service
// actually sees (NSLP's observation: planning workloads are streams of
// nearly identical instances) — served by one resident service with its
// warm-state caches, versus a cold baseline that tears the service down
// between requests (every request pays family construction and a full
// from-scratch search, as the one-shot CLIs do).
//
// The workload: 6 capacity searches over one inventory at Fig. 2(c) k=6
// scale — 3 distinct requests (increasing trial counts, as an operator
// tightening confidence would send), each submitted twice. Warm serving
// answers repeats from the response cache and shares one topology family
// across the distinct searches; the cold baseline recomputes everything.
// Measured numbers live in BENCH_mcf.json ("service_warm_routing").

var capacityWorkload = []CapacitySearchRequest{
	{Switches: 45, Ports: 6, Trials: 1, Seed: 71},
	{Switches: 45, Ports: 6, Trials: 2, Seed: 71},
	{Switches: 45, Ports: 6, Trials: 1, Seed: 71},
	{Switches: 45, Ports: 6, Trials: 3, Seed: 71},
	{Switches: 45, Ports: 6, Trials: 2, Seed: 71},
	{Switches: 45, Ports: 6, Trials: 3, Seed: 71},
}

func runCapacityRequest(b *testing.B, srv *Server, req CapacitySearchRequest) {
	b.Helper()
	p, aerr := planCapacitySearch(&req)
	if aerr != nil {
		b.Fatal(aerr)
	}
	if _, _, err := srv.sched.do(context.Background(), p, true, nil, nil); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkServiceCapacitySearchWarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		srv := mustNew(b, Options{Workers: 1})
		for _, req := range capacityWorkload {
			runCapacityRequest(b, srv, req)
		}
		srv.Close()
	}
}

func BenchmarkServiceCapacitySearchCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, req := range capacityWorkload {
			srv := mustNew(b, Options{Workers: 1})
			runCapacityRequest(b, srv, req)
			srv.Close()
		}
	}
}
