package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// Estimator evaluations return per-trial certified bounds, use the lower
// bound as the conservative throughput column, and stay byte-identical
// across worker counts and cache states.
func TestEvaluateEstimator(t *testing.T) {
	req := `{"topology":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":4}},` +
		`"seed":9,"trials":3,"estimator":{"kind":"bisection"}}`
	warmURL, _ := newTestServer(t, Options{Workers: 1})
	var warm []byte
	for round := 0; round < 2; round++ { // second round exercises the response cache
		warm = mustPost(t, warmURL.URL+"/v1/evaluate", req)
	}
	coldURL, _ := newTestServer(t, Options{Workers: 4})
	cold := mustPost(t, coldURL.URL+"/v1/evaluate", req)
	if !bytes.Equal(warm, cold) {
		t.Fatalf("estimator evaluation differs across servers:\nwarm %s\ncold %s", warm, cold)
	}

	var resp EvaluateResponse
	if err := json.Unmarshal(warm, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(resp.Bounds) != 3 || len(resp.Throughputs) != 3 {
		t.Fatalf("%d bounds / %d throughputs, want 3 / 3", len(resp.Bounds), len(resp.Throughputs))
	}
	for i, b := range resp.Bounds {
		if b[0] > b[1] {
			t.Fatalf("trial %d: inverted bounds %v", i, b)
		}
		if resp.Throughputs[i] != b[0] {
			t.Fatalf("trial %d: throughput %v is not the lower bound %v", i, resp.Throughputs[i], b[0])
		}
		if b[0] < 0 || b[1] > 1 {
			t.Fatalf("trial %d: bounds %v outside [0,1]", i, b)
		}
	}

	// All kinds are accepted and report the bounds column.
	for _, kind := range []string{"spectral", "sampled-mcf"} {
		body := mustPost(t, warmURL.URL+"/v1/evaluate",
			`{"topology":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":4}},`+
				`"seed":9,"trials":2,"estimator":{"kind":"`+kind+`","sample":8}}`)
		if !bytes.Contains(body, []byte(`"bounds"`)) {
			t.Fatalf("kind %s: response missing bounds: %s", kind, body)
		}
	}
}

// Non-estimator responses must not grow a bounds column — the estimator
// plumbing may not perturb legacy response bytes.
func TestEvaluateWithoutEstimatorOmitsBounds(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	body := mustPost(t, ts.URL+"/v1/evaluate",
		`{"topology":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":4}},"seed":9,"trials":2}`)
	if bytes.Contains(body, []byte("bounds")) {
		t.Fatalf("plain evaluation leaked the bounds column: %s", body)
	}
}

func TestEstimatorValidation(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	topo := `"topology":{"design":{"switches":5,"ports":4,"networkDegree":3,"seed":1}}`

	code, body := doPost(t, ts.URL+"/v1/evaluate", `{`+topo+`,"estimator":{"kind":"oracle"}}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "oracle") {
		t.Fatalf("unknown kind: code %d body %s", code, body)
	}
	code, body = doPost(t, ts.URL+"/v1/evaluate", `{`+topo+`,"estimator":{"kind":"sampled-mcf","sample":-1}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("negative sample: code %d body %s", code, body)
	}
	code, body = doPost(t, ts.URL+"/v1/evaluate",
		`{`+topo+`,"estimator":{"kind":"bisection"},"transport":{"protocol":"tcp8"}}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "transport") {
		t.Fatalf("estimator+transport: code %d body %s", code, body)
	}
	code, body = doPost(t, ts.URL+"/v1/capacity-search",
		`{"switches":10,"ports":6,"seed":2,"estimator":{"kind":"oracle"}}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "oracle") {
		t.Fatalf("capacity-search unknown kind: code %d body %s", code, body)
	}
}

// Estimator-screened capacity search returns the same maxServers as the
// exact-only search — screening is reject-only and answer-preserving.
func TestCapacitySearchEstimatorIdentity(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	plain := mustPost(t, ts.URL+"/v1/capacity-search",
		`{"switches":20,"ports":8,"trials":2,"seed":7}`)
	var base CapacitySearchResponse
	if err := json.Unmarshal(plain, &base); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if base.MaxServers <= 0 {
		t.Fatalf("exact-only search found %d servers", base.MaxServers)
	}
	for _, kind := range []string{"bisection", "spectral", "sampled-mcf"} {
		body := mustPost(t, ts.URL+"/v1/capacity-search",
			`{"switches":20,"ports":8,"trials":2,"seed":7,"estimator":{"kind":"`+kind+`","sample":16}}`)
		var got CapacitySearchResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got.MaxServers != base.MaxServers {
			t.Fatalf("estimator %q: maxServers %d != exact-only %d", kind, got.MaxServers, base.MaxServers)
		}
	}
}
