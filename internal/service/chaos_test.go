package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jellyfish/internal/faultinject"
)

// Chaos suite: seeded fault schedules driven through the public API
// (DESIGN.md §16). Each test activates one schedule, walks the failure
// through injection, containment, and recovery, and finishes by proving
// the service's core invariant survived: responses byte-identical to a
// never-faulted server. The faultinject registry is process-global, so
// none of these tests may call t.Parallel().

// chaosSchedule activates a fault schedule for the test and guarantees
// deactivation at cleanup (failing the test on a grammar error, which
// would otherwise silently test nothing).
func chaosSchedule(t *testing.T, schedule string) func() {
	t.Helper()
	deactivate, err := faultinject.Activate(schedule)
	if err != nil {
		t.Fatalf("activating %q: %v", schedule, err)
	}
	t.Cleanup(deactivate)
	return deactivate
}

// hardStop kills a durable server the way SIGKILL would: detach the
// store first so none of the orderly shutdown paths (final snapshot,
// terminal records) can run, then tear everything down. Whatever bytes
// already reached the kernel are exactly what the next boot replays.
func hardStop(ts *httptest.Server, srv *Server) {
	srv.jobs.pmu.Lock()
	store := srv.jobs.store
	srv.jobs.store = nil
	srv.jobs.pmu.Unlock()
	ts.Close()
	srv.Close()
	if store != nil {
		store.Close()
	}
}

// waitDegraded polls the degraded gauge to the wanted state; persistDone
// runs after the job flips terminal, so the flag can lag waitJob.
func waitDegraded(t *testing.T, srv *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.tele.degradedState.Value() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("degraded gauge never reached %d", want)
}

const chaosJobBody = `{"type":"capacity-search","request":{"switches":16,"ports":6,"trials":1,"seed":11}}`
const chaosSyncPath = "/v1/capacity-search"
const chaosSyncBody = `{"switches":16,"ports":6,"trials":1,"seed":11}`

func submitJob(t *testing.T, base, body string) JobView {
	t.Helper()
	status, b := doPost(t, base+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, b)
	}
	var v JobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// A journal-append failure must flip the store into degraded read-only
// mode (503 on submits, reads fine), a later successful append must
// recover it, and the recovery snapshot must re-persist every terminal
// job whose own done record was lost while degraded — so a hard stop
// after recovery loses nothing.
func TestChaosAppendFaultDegradedThenRecovers(t *testing.T) {
	dir := t.TempDir()
	// Hits: 1 = job A's submit record (ok), 2 = A's done record (FIRE →
	// degraded with A terminal only in memory), 3 = job B's submit
	// (FIRE → 503), 4 = job C's submit (ok → recovery + snapshot).
	deactivate := chaosSchedule(t, "persist.append:2-2:enospc")
	ts, srv := durableServer(t, dir, Options{Workers: 1})

	a := submitJob(t, ts.URL, chaosJobBody)
	if got := waitJob(t, ts.URL, a.ID); got.Status != jobSucceeded {
		t.Fatalf("job A: %s", got.Status)
	}
	_, resultA := doGet(t, ts.URL+"/v1/jobs/"+a.ID+"/result")
	waitDegraded(t, srv, 1)

	// Degraded: submits refuse with 503/degraded and are withdrawn...
	status, body := doPost(t, ts.URL+"/v1/jobs", chaosJobBody)
	if status != http.StatusServiceUnavailable || !strings.Contains(string(body), `"degraded"`) {
		t.Fatalf("submit while degraded: status %d: %s", status, body)
	}
	// ...reads keep working, and liveness reports degraded but alive.
	if status, _ := doGet(t, ts.URL+"/v1/jobs/"+a.ID); status != http.StatusOK {
		t.Fatalf("read while degraded: status %d", status)
	}
	if status, body := doGet(t, ts.URL+"/healthz"); status != http.StatusOK || string(body) != `{"status":"degraded"}` {
		t.Fatalf("healthz while degraded: status %d body %s", status, body)
	}
	if got := srv.tele.degradedFlips.Value(); got != 1 {
		t.Fatalf("degraded transitions = %d, want 1", got)
	}

	// The next submit's append is itself the recovery probe: it succeeds,
	// clears the flag, and snapshots job A back into durability.
	c := submitJob(t, ts.URL, chaosJobBody)
	waitDegraded(t, srv, 0)
	if status, body := doGet(t, ts.URL+"/healthz"); status != http.StatusOK || string(body) != `{"status":"ok"}` {
		t.Fatalf("healthz after recovery: status %d body %s", status, body)
	}
	if got := waitJob(t, ts.URL, c.ID); got.Status != jobSucceeded {
		t.Fatalf("job C: %s", got.Status)
	}

	// SIGKILL after recovery: job A's durability must have been restored
	// by the recovery snapshot, not by any orderly-shutdown path.
	hardStop(ts, srv)
	deactivate()
	ts2, srv2 := durableServer(t, dir, Options{Workers: 1})
	defer func() { ts2.Close(); srv2.Close() }()
	status, body = doGet(t, ts2.URL+"/v1/jobs/"+a.ID)
	if status != http.StatusOK {
		t.Fatalf("job A after restart: status %d: %s", status, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Status != jobSucceeded {
		t.Fatalf("job A after restart: %s (terminal state lost across degraded era)", v.Status)
	}
	if _, result2 := doGet(t, ts2.URL+"/v1/jobs/"+a.ID+"/result"); string(result2) != string(resultA) {
		t.Fatalf("job A result changed across degraded era:\n before %s\n after  %s", resultA, result2)
	}
}

// A failure in the crash-during-snapshot window (after the temp write,
// before the rename) must leave the previous (snapshot, journal) pair
// as the recoverable state: the journal is only reset after a rename
// lands, so nothing is lost.
func TestChaosSnapshotRenameFailureKeepsJournal(t *testing.T) {
	dir := t.TempDir()
	deactivate := chaosSchedule(t, "persist.snapshot.rename:1:eio")
	ts, srv := durableServer(t, dir, Options{Workers: 1})

	a := submitJob(t, ts.URL, chaosJobBody)
	if got := waitJob(t, ts.URL, a.ID); got.Status != jobSucceeded {
		t.Fatalf("job: %s", got.Status)
	}
	_, result1 := doGet(t, ts.URL+"/v1/jobs/"+a.ID+"/result")

	// Orderly close attempts a final snapshot; every rename fails under
	// the schedule, so the journal must carry the state across.
	ts.Close()
	srv.Close()
	deactivate()

	ts2, srv2 := durableServer(t, dir, Options{Workers: 1})
	defer func() { ts2.Close(); srv2.Close() }()
	got := waitJob(t, ts2.URL, a.ID)
	if got.Status != jobSucceeded {
		t.Fatalf("job after restart: %s", got.Status)
	}
	_, result2 := doGet(t, ts2.URL+"/v1/jobs/"+a.ID+"/result")
	if string(result1) != string(result2) {
		t.Fatalf("result changed across failed snapshot:\n before %s\n after  %s", result1, result2)
	}
}

// A kernel panic mid-probe must fail exactly the one job that hit it
// (500/internal_error), discard the worker's possibly-poisoned warm
// state, and leave the worker alive — the next identical job must
// succeed with bytes identical to a cold, never-faulted server.
func TestChaosPanicMidProbeContainedToOneJob(t *testing.T) {
	coldTS, _ := newTestServer(t, Options{Workers: 1})
	coldBytes := mustPost(t, coldTS.URL+chaosSyncPath, chaosSyncBody)

	deactivate := chaosSchedule(t, "capsearch.trial:1-1:panic")
	ts, srv := newTestServer(t, Options{Workers: 1})

	a := submitJob(t, ts.URL, chaosJobBody)
	got := waitJob(t, ts.URL, a.ID)
	if got.Status != jobFailed {
		t.Fatalf("panicked job: %s, want failed", got.Status)
	}
	if got.Error == nil || got.Error.Code != "internal_error" ||
		!strings.Contains(got.Error.Message, "faultinject: injected panic") {
		t.Fatalf("panicked job error: %+v", got.Error)
	}
	if n := srv.tele.panics.Value(); n != 1 {
		t.Fatalf("panics contained = %d, want 1", n)
	}

	// Same worker, same family, next job: the discarded warm state means
	// this runs cold — and must therefore match the cold baseline.
	deactivate()
	b := submitJob(t, ts.URL, chaosJobBody)
	got = waitJob(t, ts.URL, b.ID)
	if got.Status != jobSucceeded {
		t.Fatalf("job after contained panic: %s (%+v)", got.Status, got.Error)
	}
	_, result := doGet(t, ts.URL+"/v1/jobs/"+b.ID+"/result")
	if string(result) != string(coldBytes) {
		t.Fatalf("post-panic result diverged from cold server:\n cold %s\n got  %s", coldBytes, result)
	}
	if n := srv.tele.panics.Value(); n != 1 {
		t.Fatalf("panics contained = %d after recovery job, want still 1", n)
	}
}

// Cancelling a job mid-execution must reach a terminal cancelled state
// promptly and leave no truncated partial results in any cache: the
// same request afterwards returns bytes identical to a fresh server.
func TestChaosCancelMidSearchLeavesCachesClean(t *testing.T) {
	freshTS, _ := newTestServer(t, Options{Workers: 1})
	freshBytes := mustPost(t, freshTS.URL+chaosSyncPath, chaosSyncBody)

	// Stall the first dequeue so the cancel deterministically lands while
	// the task is mid-execution (the stall sits between dequeue and the
	// executor, whose first interrupt poll then observes the cancel).
	oldStall := faultinject.StallDuration
	faultinject.StallDuration = 300 * time.Millisecond
	t.Cleanup(func() { faultinject.StallDuration = oldStall })
	deactivate := chaosSchedule(t, "sched.worker.stall:1:stall")
	ts, _ := newTestServer(t, Options{Workers: 1})

	a := submitJob(t, ts.URL, chaosJobBody)
	time.Sleep(50 * time.Millisecond) // let the worker dequeue into the stall
	cancelStart := time.Now()
	if status, body := doPost(t, ts.URL+"/v1/jobs/"+a.ID+"/cancel", ""); status != http.StatusOK {
		t.Fatalf("cancel: status %d: %s", status, body)
	}
	got := waitJob(t, ts.URL, a.ID)
	if got.Status != jobCancelled {
		t.Fatalf("cancelled job: %s", got.Status)
	}
	// Phase-bounded cancellation: terminal well before the job's own
	// runtime, even with the injected stall still draining.
	if elapsed := time.Since(cancelStart); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}

	// Nothing truncated may have been cached on the worker.
	deactivate()
	if after := mustPost(t, ts.URL+chaosSyncPath, chaosSyncBody); string(after) != string(freshBytes) {
		t.Fatalf("post-cancel response diverged from fresh server:\n fresh %s\n got   %s", freshBytes, after)
	}
}

// A torn append (short write, as a crash mid-write would leave it) must
// be dropped on replay as a truncated tail: the job whose done record
// tore re-runs from its durable submit record and converges on the same
// bytes.
func TestChaosShortWriteTornFrameReplay(t *testing.T) {
	dir := t.TempDir()
	// Hit 1 = submit record (ok), hit 2 = done record (torn).
	deactivate := chaosSchedule(t, "persist.append:2-1:shortwrite")
	ts, srv := durableServer(t, dir, Options{Workers: 1})

	a := submitJob(t, ts.URL, chaosJobBody)
	if got := waitJob(t, ts.URL, a.ID); got.Status != jobSucceeded {
		t.Fatalf("job: %s", got.Status)
	}
	_, result1 := doGet(t, ts.URL+"/v1/jobs/"+a.ID+"/result")
	waitDegraded(t, srv, 1)

	hardStop(ts, srv)
	deactivate()

	// Replay: the torn done record is dropped, so the job is interrupted
	// state — it must re-run automatically and reproduce the result.
	ts2, srv2 := durableServer(t, dir, Options{Workers: 1})
	defer func() { ts2.Close(); srv2.Close() }()
	got := waitJob(t, ts2.URL, a.ID)
	if got.Status != jobSucceeded {
		t.Fatalf("job after torn-frame replay: %s (%+v)", got.Status, got.Error)
	}
	_, result2 := doGet(t, ts2.URL+"/v1/jobs/"+a.ID+"/result")
	if string(result1) != string(result2) {
		t.Fatalf("re-run after torn frame diverged:\n before %s\n after  %s", result1, result2)
	}
}

// Activating a schedule whose rules never fire must change nothing:
// responses stay byte-identical to a never-activated server across
// worker counts. This is the faults-off byte-identity floor under the
// strictest reading — even the activated-but-idle registry is invisible.
func TestChaosIdleScheduleIsByteInvisible(t *testing.T) {
	baseTS, _ := newTestServer(t, Options{Workers: 1})
	evalBody := `{"topology":{"design":{"switches":16,"ports":8,"networkDegree":5,"seed":29}},"seed":31,"trials":1}`
	baseEval := mustPost(t, baseTS.URL+"/v1/evaluate", evalBody)
	baseCap := mustPost(t, baseTS.URL+chaosSyncPath, chaosSyncBody)

	before := faultinject.FireCount()
	chaosSchedule(t, "sse.write:999999:err,persist.append:999999:enospc")
	ts, _ := newTestServer(t, Options{Workers: 4})
	if got := mustPost(t, ts.URL+"/v1/evaluate", evalBody); string(got) != string(baseEval) {
		t.Fatalf("evaluate diverged under idle schedule:\n base %s\n got  %s", baseEval, got)
	}
	if got := mustPost(t, ts.URL+chaosSyncPath, chaosSyncBody); string(got) != string(baseCap) {
		t.Fatalf("capacity-search diverged under idle schedule:\n base %s\n got  %s", baseCap, got)
	}
	if after := faultinject.FireCount(); after != before {
		t.Fatalf("idle schedule fired %d times", after-before)
	}
}
