package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// SSE determinism suite: the /events stream is part of the byte-exact
// contract. Same request ⇒ identical frame bytes across worker counts,
// cache states (cold, warm, cache-hit replay), and live tailing vs
// post-hoc replay.

// runJobAndStream submits a job, waits for it, and returns the full
// /events response body.
func runJobAndStream(t *testing.T, base, jobBody string) string {
	t.Helper()
	status, body := doPost(t, base+"/v1/jobs", jobBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if got := waitJob(t, base, v.ID); got.Status != jobSucceeded {
		t.Fatalf("job: %s (error %+v)", got.Status, got.Error)
	}
	st, stream := doGet(t, base+"/v1/jobs/"+v.ID+"/events")
	if st != http.StatusOK {
		t.Fatalf("events: status %d: %s", st, stream)
	}
	return string(stream)
}

var streamWorkloads = []struct {
	name string
	body string
}{
	{"capacity-search", `{"type":"capacity-search","request":{"switches":16,"ports":6,"trials":2,"seed":11}}`},
	{"evaluate", `{"type":"evaluate","request":{"topology":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":1}},"seed":7,"trials":2}}`},
	{"whatif", `{"type":"whatif","request":{"base":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":1}},"seed":9,"scenarios":[{"failLinks":{"fraction":0.1,"seed":2}},{"expand":{"switches":2,"ports":8,"networkDegree":5,"seed":3}}]}}`},
}

func TestEventStreamByteIdenticalAcrossWorkers(t *testing.T) {
	oneURL, _ := newTestServer(t, Options{Workers: 1})
	fourURL, _ := newTestServer(t, Options{Workers: 4})
	for _, wl := range streamWorkloads {
		one := runJobAndStream(t, oneURL.URL, wl.body)
		four := runJobAndStream(t, fourURL.URL, wl.body)
		if one != four {
			t.Errorf("%s: stream differs between -workers 1 and 4:\n w1 %q\n w4 %q", wl.name, one, four)
		}
		if !strings.Contains(one, "event: progress\n") {
			t.Errorf("%s: stream has no progress frames: %q", wl.name, one)
		}
		if !strings.HasSuffix(one, "event: done\ndata: {\"status\":\"succeeded\"}\n\n") {
			t.Errorf("%s: stream does not end with a done frame: %q", wl.name, one)
		}
	}
}

// TestEventStreamCacheHitReplay pins the subtlest determinism hazards:
// a cache-hit job (second identical submission) must replay the exact
// stream the miss produced, and a what-if chain resumed from a warm
// prefix must emit the same frames as one computed cold — the resumed
// steps are replayed into the stream, not silently skipped.
func TestEventStreamCacheHitReplay(t *testing.T) {
	warmTS, _ := newTestServer(t, Options{Workers: 2})
	coldTS, _ := newTestServer(t, Options{Workers: 2})

	for _, wl := range streamWorkloads {
		miss := runJobAndStream(t, warmTS.URL, wl.body)
		hit := runJobAndStream(t, warmTS.URL, wl.body)
		if miss != hit {
			t.Errorf("%s: cache-hit stream differs from miss:\n miss %q\n hit  %q", wl.name, miss, hit)
		}
	}

	// Warm the chain cache with the one-scenario prefix, then run the
	// two-scenario chain on both servers: the warm run resumes from the
	// cached prefix, the cold run computes everything.
	prefix := `{"base":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":1}},"seed":9,"scenarios":[{"failLinks":{"fraction":0.1,"seed":2}}]}`
	full := streamWorkloads[2].body
	mustPost(t, warmTS.URL+"/v1/whatif", prefix)
	warm := runJobAndStream(t, warmTS.URL, full)
	cold := runJobAndStream(t, coldTS.URL, full)
	if warm != cold {
		t.Errorf("whatif: warm-prefix stream differs from cold:\n warm %q\n cold %q", warm, cold)
	}
}

// TestSSEDisconnectMidStreamFreesSubscriber is the subscriber-leak
// regression: a client that vanishes mid-stream (while the job is still
// running and the handler is blocked waiting for more events) must wake
// the handler, return the subscriber gauge to zero, and leave nothing
// behind — the store must not accumulate dead sinks across a
// disconnect storm.
func TestSSEDisconnectMidStreamFreesSubscriber(t *testing.T) {
	ts, srv := newTestServer(t, Options{Workers: 1})
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	j := newJob("j990001", "design", nil, cancel)
	j.runCtx = ctx
	srv.jobs.mu.Lock()
	srv.jobs.jobs[j.id] = j
	srv.jobs.mu.Unlock()
	p := &plan{family: "leak", key: "leak", op: "design",
		run: func(ctx context.Context, w *worker) (any, error) {
			emit(ctx, struct {
				N int `json:"n"`
			}{1})
			<-release
			return "done", nil
		}}
	srv.jobs.start(srv.sched, j, p, ctx)

	const storm = 8
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() { //jellyvet:allow determinism -- test harness goroutine; errors travel through the WaitGroup'd closure
			defer wg.Done()
			reqCtx, disconnect := context.WithCancel(context.Background())
			defer disconnect()
			req, _ := http.NewRequestWithContext(reqCtx, "GET", ts.URL+"/v1/jobs/"+j.id+"/events", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			// Read the first progress frame so the handler is mid-stream,
			// then vanish.
			buf := make([]byte, 1)
			resp.Body.Read(buf)
			disconnect()
			io.ReadAll(resp.Body)
		}()
	}
	wg.Wait()

	// The gauge drains asynchronously (each handler must observe its
	// context and return); poll briefly rather than sleeping blind.
	deadline := time.Now().Add(5 * time.Second)
	for srv.tele.sseSubs.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber gauge stuck at %d after disconnect storm", srv.tele.sseSubs.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	if got := waitJob(t, ts.URL, j.id); got.Status != jobSucceeded {
		t.Fatalf("job after disconnect storm: %s", got.Status)
	}
}

func TestEventStreamLiveTailMatchesReplay(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	jobBody := streamWorkloads[0].body
	status, body := doPost(t, ts.URL+"/v1/jobs", jobBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}

	// Tail live, immediately — racing the job on purpose; the handler
	// blocks until the done frame no matter when we connect.
	live := make(chan string, 1)
	go func() { //jellyvet:allow determinism -- test harness goroutine; t.Fatal is not legal here, so errors travel the channel
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
		if err != nil {
			live <- fmt.Sprintf("ERROR %v", err)
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			live <- fmt.Sprintf("ERROR reading stream: %v", err)
			return
		}
		live <- string(b)
	}()

	if got := waitJob(t, ts.URL, v.ID); got.Status != jobSucceeded {
		t.Fatalf("job: %s", got.Status)
	}
	_, replayed := doGet(t, ts.URL+"/v1/jobs/"+v.ID+"/events")
	if tail := <-live; tail != string(replayed) {
		t.Fatalf("live tail differs from post-hoc replay:\n live   %q\n replay %q", tail, replayed)
	}
}
