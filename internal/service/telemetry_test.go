package service

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"jellyfish/internal/telemetry"
)

// The telemetry suite pins the one-way-flow contract from the outside:
// enabling the full observability surface (metrics, flight recorders,
// trace extraction) must not change a single response or stream byte,
// for any worker count. Then it exercises the surface itself: /metrics
// families and exposition format, /v1/trace span trees, and the
// disabled-mode answers.

// syncWorkloads exercises every sync endpoint with a small instance.
var syncWorkloads = []struct {
	name, path, body string
}{
	{"design", "/v1/design", `{"switches":12,"ports":6,"networkDegree":4,"seed":3}`},
	{"evaluate", "/v1/evaluate", `{"topology":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":1}},"seed":7,"trials":2}`},
	{"capacity-search", "/v1/capacity-search", `{"switches":16,"ports":6,"trials":2,"seed":11}`},
	{"whatif", "/v1/whatif", `{"base":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":1}},"seed":9,"scenarios":[{"failLinks":{"fraction":0.1,"seed":2}}]}`},
	{"rewire-plan", "/v1/rewire-plan", `{"before":{"design":{"switches":10,"ports":5,"networkDegree":3,"seed":1}},"after":{"design":{"switches":10,"ports":5,"networkDegree":3,"seed":2}}}`},
}

// TestResponsesByteIdenticalTelemetryOnOff is the tentpole guarantee:
// telemetry on vs off, across -workers 1 vs 4, yields byte-identical
// responses on every sync endpoint and byte-identical SSE streams on
// every job workload. If an instrument ever fed a value back into a
// computation, this is the test that would catch it.
func TestResponsesByteIdenticalTelemetryOnOff(t *testing.T) {
	type variant struct {
		name string
		opt  Options
	}
	variants := []variant{
		{"w1-telemetry", Options{Workers: 1}},
		{"w1-disabled", Options{Workers: 1, DisableTelemetry: true}},
		{"w4-telemetry", Options{Workers: 4}},
		{"w4-disabled", Options{Workers: 4, DisableTelemetry: true}},
	}
	servers := make([]string, len(variants))
	for i, v := range variants {
		ts, _ := newTestServer(t, v.opt)
		servers[i] = ts.URL
	}

	for _, wl := range syncWorkloads {
		ref := string(mustPost(t, servers[0]+wl.path, wl.body))
		for i := 1; i < len(variants); i++ {
			got := string(mustPost(t, servers[i]+wl.path, wl.body))
			if got != ref {
				t.Errorf("%s: response differs between %s and %s:\n a %q\n b %q",
					wl.name, variants[0].name, variants[i].name, ref, got)
			}
		}
	}
	for _, wl := range streamWorkloads {
		ref := runJobAndStream(t, servers[0], wl.body)
		for i := 1; i < len(variants); i++ {
			got := runJobAndStream(t, servers[i], wl.body)
			if got != ref {
				t.Errorf("%s: stream differs between %s and %s:\n a %q\n b %q",
					wl.name, variants[0].name, variants[i].name, ref, got)
			}
		}
	}
}

// metricValue extracts the value of the first sample line whose series
// name+labels starts with prefix. Returns ok=false if no line matches.
func metricValue(body, prefix string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		return v, true
	}
	return 0, false
}

func TestMetricsExposition(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 2})
	// Drive every subsystem: a capacity search (solver + capsearch
	// instruments), the same search again (response-cache hit), and an
	// evaluate (op series).
	mustPost(t, ts.URL+"/v1/capacity-search", `{"switches":16,"ports":6,"trials":2,"seed":11}`)
	mustPost(t, ts.URL+"/v1/capacity-search", `{"switches":16,"ports":6,"trials":2,"seed":11}`)
	mustPost(t, ts.URL+"/v1/evaluate", `{"topology":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":1}},"seed":7,"trials":1}`)

	status, raw := doGet(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d: %s", status, raw)
	}
	body := string(raw)

	families := []string{
		"jellyfishd_op_duration_seconds",
		"jellyfishd_scheduler_queue_wait_seconds",
		"jellyfishd_scheduler_queue_depth",
		"jellyfishd_cache_hits_total",
		"jellyfishd_cache_misses_total",
		"jellyfishd_cache_entries",
		"jellyfishd_sched_deduped_total",
		"jellyfishd_sync_rejected_total",
		"jellyfishd_sse_subscribers",
		"jellyfishd_jobstore_appends_total",
		"jellyfishd_jobstore_replay_seconds",
		"jellyfishd_solver_solves_total",
		"jellyfishd_solver_phases_total",
		"jellyfishd_solver_batches_total",
		"jellyfishd_solver_phase_seconds",
		"jellyfishd_capsearch_probes_total",
		"jellyfishd_capsearch_trials_total",
		"jellyfishd_capsearch_probe_seconds",
	}
	for _, f := range families {
		if !strings.Contains(body, "# HELP "+f+" ") || !strings.Contains(body, "# TYPE "+f+" ") {
			t.Errorf("/metrics missing HELP/TYPE for family %s", f)
		}
	}

	// Exposition format sanity: every non-comment, non-blank line is
	// exactly `name{labels} value` with a parsable value.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("/metrics sample line not `series value`: %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("/metrics sample value unparsable: %q", line)
		}
	}

	// The two searches hit both subsystems: the cold one drove the
	// solver, the repeat was a resp-tier hit somewhere.
	if v, ok := metricValue(body, "jellyfishd_solver_phases_total"); !ok || v <= 0 {
		t.Errorf("solver_phases_total = %v after a capacity search, want > 0", v)
	}
	if v, ok := metricValue(body, "jellyfishd_capsearch_probes_total"); !ok || v <= 0 {
		t.Errorf("capsearch_probes_total = %v after a capacity search, want > 0", v)
	}
	hits := 0.0
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `jellyfishd_cache_hits_total{tier="resp"`) {
			if v, err := strconv.ParseFloat(strings.Fields(line)[1], 64); err == nil {
				hits += v
			}
		}
	}
	if hits <= 0 {
		t.Errorf("resp-tier cache hits = %v after an identical repeat, want > 0", hits)
	}
}

func TestMetricsDisabled(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1, DisableTelemetry: true})
	status, body := doGet(t, ts.URL+"/metrics")
	if status != http.StatusNotFound || !strings.Contains(string(body), "telemetry_disabled") {
		t.Fatalf("/metrics with telemetry disabled: status %d body %s, want 404 telemetry_disabled", status, body)
	}
}

// runJobWait submits a job and waits for success, returning its id.
func runJobWait(t *testing.T, base, jobBody string) string {
	t.Helper()
	status, body := doPost(t, base+"/v1/jobs", jobBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if got := waitJob(t, base, v.ID); got.Status != jobSucceeded {
		t.Fatalf("job: %s (error %+v)", got.Status, got.Error)
	}
	return v.ID
}

// findSpans collects every span with the given name anywhere in the
// trees.
func findSpans(spans []*telemetry.Span, name string) []*telemetry.Span {
	var out []*telemetry.Span
	for _, s := range spans {
		if s.Name == name {
			out = append(out, s)
		}
		out = append(out, findSpans(s.Children, name)...)
	}
	return out
}

// TestTraceEndpoint runs a capacity search as a job and checks the
// recorded span tree: one root span named by the operation, feasibility
// probes nested under it, trials under probes, and solver solves with
// their Garg–Könemann phases under trials — the flight-recorder view
// of DESIGN.md §15.
func TestTraceEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	id := runJobWait(t, ts.URL, streamWorkloads[0].body) // capacity-search switches=16 ports=6

	status, body := doGet(t, ts.URL+"/v1/trace/"+id)
	if status != http.StatusOK {
		t.Fatalf("/v1/trace/%s: status %d: %s", id, status, body)
	}
	var tr TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	if tr.JobID != id || tr.Trace == nil {
		t.Fatalf("trace envelope: %+v", tr)
	}
	if len(tr.Trace.Spans) != 1 || tr.Trace.Spans[0].Name != "capacity-search" {
		t.Fatalf("want one root span %q, got %d roots (first %+v)", "capacity-search", len(tr.Trace.Spans), tr.Trace.Spans)
	}
	root := tr.Trace.Spans[0]
	probes := findSpans(root.Children, "capsearch.probe")
	if len(probes) == 0 {
		t.Fatal("no capsearch.probe spans under the root")
	}
	trials := findSpans(probes[0].Children, "capsearch.trial")
	if len(trials) == 0 {
		t.Fatalf("no capsearch.trial spans under the first probe: %+v", probes[0])
	}
	solves := findSpans(trials[0].Children, "mcf.solve")
	if len(solves) == 0 {
		t.Fatalf("no mcf.solve spans under the first trial: %+v", trials[0])
	}
	if phases := findSpans(solves[0].Children, "gk.phase"); len(phases) == 0 {
		t.Fatalf("no gk.phase spans under the first solve: %+v", solves[0])
	}
	for _, s := range append([]*telemetry.Span{root}, probes...) {
		if s.DurNs < 0 || s.StartNs < 0 {
			t.Errorf("span %s has negative timing: %+v", s.Name, s)
		}
	}

	// A second identical job is a response-cache hit; it must carry the
	// original execution's trace rather than none at all.
	id2 := runJobWait(t, ts.URL, streamWorkloads[0].body)
	status, body2 := doGet(t, ts.URL+"/v1/trace/"+id2)
	if status != http.StatusOK {
		t.Fatalf("/v1/trace/%s (cache hit): status %d: %s", id2, status, body2)
	}
	var tr2 TraceResponse
	if err := json.Unmarshal(body2, &tr2); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(tr.Trace)
	b, _ := json.Marshal(tr2.Trace)
	if string(a) != string(b) {
		t.Errorf("cache-hit job's trace differs from the original execution's")
	}
}

func TestTraceUnknownAndDisabled(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	if status, body := doGet(t, ts.URL+"/v1/trace/j999999"); status != http.StatusNotFound || !strings.Contains(string(body), "unknown_job") {
		t.Errorf("unknown job trace: status %d body %s, want 404 unknown_job", status, body)
	}

	off, _ := newTestServer(t, Options{Workers: 1, DisableTelemetry: true})
	id := runJobWait(t, off.URL, `{"type":"design","request":{"switches":8,"ports":4,"networkDegree":2,"seed":1}}`)
	status, body := doGet(t, off.URL+"/v1/trace/"+id)
	if status != http.StatusNotFound || !strings.Contains(string(body), "trace_not_recorded") {
		t.Errorf("disabled-telemetry trace: status %d body %s, want 404 trace_not_recorded", status, body)
	}
}

// TestJobStoreMetrics pins the persistence instruments: with a durable
// store, submissions append journal records and the counters move.
func TestJobStoreMetrics(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newTestServer(t, Options{Workers: 1, StateDir: dir})
	runJobWait(t, ts.URL, `{"type":"design","request":{"switches":8,"ports":4,"networkDegree":2,"seed":1}}`)

	_, raw := doGet(t, ts.URL+"/metrics")
	body := string(raw)
	if v, ok := metricValue(body, "jellyfishd_jobstore_appends_total"); !ok || v < 2 {
		t.Errorf("jobstore_appends_total = %v after a submit+done, want >= 2", v)
	}
	if v, ok := metricValue(body, "jellyfishd_jobstore_append_seconds_count"); !ok || v < 2 {
		t.Errorf("jobstore_append_seconds_count = %v, want >= 2", v)
	}
}

// TestMetricsScrapeDuringLoad pins the writer/scraper concurrency
// contract: scraping while jobs execute must not race (the -race CI
// run gives this test its teeth) or produce malformed lines.
func TestMetricsScrapeDuringLoad(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 2})
	done := make(chan struct{})
	go func() {
		defer close(done)
		mustPost(t, ts.URL+"/v1/capacity-search", `{"switches":16,"ports":6,"trials":2,"seed":13}`)
	}()
	for i := 0; i < 20; i++ {
		if status, _ := doGet(t, ts.URL+"/metrics"); status != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, status)
		}
	}
	<-done
}
