package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"jellyfish/internal/persist"
	"jellyfish/internal/telemetry"
)

// Options configure a Server. Worker count and cache size trade memory
// and parallelism for wall-clock only: responses are byte-identical for
// every setting (the determinism guarantee, tested in
// determinism_test.go).
type Options struct {
	// Workers is the number of shard workers (default 4). Each owns one
	// warm-state cache and executes its shard's requests sequentially.
	Workers int
	// SolverWorkers bounds each flow solve's CPU parallelism (default 1).
	// 0 selects all cores only when Workers is 1; with several shard
	// workers it falls back to 1, because many workers each spawning
	// all-core solves would oversubscribe the machine — cross-request
	// parallelism comes from Workers.
	SolverWorkers int
	// CacheEntries bounds each worker's warm-state cache (default 128
	// entries across response, family, chain, and sim tiers).
	CacheEntries int
	// MaxSyncInflight bounds concurrently admitted synchronous planning
	// requests (default 8×Workers; negative = unlimited). Beyond the
	// bound the server sheds load immediately — 429 with a Retry-After
	// hint — instead of queueing unbounded work on the shard workers;
	// heavy sweeps belong on the job API, which is not admission-gated.
	MaxSyncInflight int
	// StateDir, when set, makes the job store durable: submissions and
	// terminal transitions are journaled there and replayed on the next
	// boot — queued and running jobs re-execute (byte-identical, by the
	// determinism guarantee), finished jobs stay fetchable. Empty =
	// memory-only daemon. See DESIGN.md §14.
	StateDir string
	// SnapshotEvery is the journal compaction cadence: after this many
	// appended records the store writes a snapshot and truncates the
	// journal (default 256). Only meaningful with StateDir.
	SnapshotEvery int
	// ClientQPS, when positive, enables per-client quotas on the
	// work-creating endpoints (sync planning + job submission): each
	// client host earns this many requests per second, spends from a
	// bucket of ClientBurst, and is shed with 429 + Retry-After beyond
	// it. 0 (the default) disables quotas. Reads are never metered.
	ClientQPS float64
	// ClientBurst is the quota bucket depth (default ClientQPS+1).
	ClientBurst int
	// DisableTelemetry turns the observability surface off: no metric
	// slots, no flight recorders, GET /metrics answers 404 and
	// GET /v1/trace/{id} reports trace_not_recorded. Planning responses
	// are byte-identical either way (asserted in telemetry_test.go) —
	// telemetry is strictly one-way.
	DisableTelemetry bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.SolverWorkers < 0 {
		o.SolverWorkers = 1
	}
	if o.SolverWorkers == 0 && o.Workers > 1 {
		// Many shard workers each spawning all-core solves oversubscribes
		// the machine; default per-solve parallelism to serial.
		o.SolverWorkers = 1
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 128
	}
	if o.MaxSyncInflight == 0 {
		o.MaxSyncInflight = 8 * o.Workers
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 256
	}
	return o
}

// A Server is the jellyfishd planning service: construct with New, mount
// Handler on any http.Server, Close on shutdown.
type Server struct {
	sched *scheduler
	jobs  *jobStore
	mux   *http.ServeMux
	// tele is the telemetry bundle behind /metrics and /v1/trace (nil
	// with Options.DisableTelemetry).
	tele *tele
	// syncSem admits synchronous planning requests (admission control);
	// nil = unlimited.
	syncSem chan struct{}
	// quota is the per-client token-bucket table (nil = quotas disabled).
	quota *quotaTable
}

// New builds a Server with its worker pool running. With a StateDir it
// opens (or creates) the durable job store there and replays it before
// returning: finished jobs are fetchable again, unfinished ones are
// already re-running. A corrupt store fails construction loudly — a
// daemon that silently dropped journaled jobs would be worse than one
// that refuses to start.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	var tl *tele
	if !opt.DisableTelemetry {
		tl = newTele(opt.Workers)
	}
	s := &Server{
		sched: newScheduler(opt.Workers, opt.SolverWorkers, opt.CacheEntries, tl),
		jobs:  newJobStore(),
		mux:   http.NewServeMux(),
		tele:  tl,
	}
	s.jobs.tele = tl
	tl.bindScheduler(s.sched)
	if opt.ClientQPS > 0 {
		s.quota = newQuotaTable(opt.ClientQPS, opt.ClientBurst, tl)
	}
	if opt.MaxSyncInflight > 0 {
		s.syncSem = make(chan struct{}, opt.MaxSyncInflight)
	}
	if opt.StateDir != "" {
		store, state, err := persist.Open(opt.StateDir)
		if err != nil {
			s.sched.close()
			return nil, fmt.Errorf("opening state dir %s: %w", opt.StateDir, err)
		}
		store.SetObs(tl.storeObs())
		s.jobs.store = store
		s.jobs.snapshotEvery = opt.SnapshotEvery
		replayT := telemetry.StartTimer()
		if err := s.jobs.recoverJobs(s.sched, state); err != nil {
			store.Close()
			s.sched.close()
			return nil, fmt.Errorf("replaying state dir %s: %w", opt.StateDir, err)
		}
		tl.replayH().ObserveSince(replayT)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("POST /v1/design", s.handleDesign)
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/capacity-search", s.handleCapacitySearch)
	s.mux.HandleFunc("POST /v1/whatif", s.handleWhatIf)
	s.mux.HandleFunc("POST /v1/rewire-plan", s.handleRewire)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels outstanding jobs and shuts the worker pool down after
// in-flight work drains. Interrupted jobs are NOT journaled as terminal,
// so a durable store re-runs them on the next boot — Close is the
// abrupt path; Drain is the graceful one.
func (s *Server) Close() {
	s.jobs.mu.Lock()
	s.jobs.draining = true
	jobs := make([]*job, 0, len(s.jobs.jobs))
	for _, j := range s.jobs.jobs { //jellyvet:allow determinism -- shutdown cancels every job; order is irrelevant
		j.cancel()
		jobs = append(jobs, j)
	}
	s.jobs.mu.Unlock()
	// Wait for executor goroutines: they exit promptly once cancelled
	// (queued jobs at dequeue, running ones at the next interrupt poll),
	// and the store must not close under a persistDone in flight.
	for _, j := range jobs {
		<-j.done
	}
	s.closeStore()
	s.sched.close()
}

// Drain is the graceful counterpart to Close: stop admitting work, let
// in-flight jobs finish (journaling their results), and only once ctx
// expires fall back to cancelling stragglers — which are deliberately
// left un-journaled so the next boot re-runs them from their durable
// submit record (their "checkpoint"). Finally the store is snapshotted
// and closed, and the worker pool shut down.
func (s *Server) Drain(ctx context.Context) {
	s.jobs.mu.Lock()
	s.jobs.draining = true
	jobs := make([]*job, 0, len(s.jobs.jobs))
	for _, j := range s.jobs.jobs { //jellyvet:allow determinism -- drain waits on every job; order is irrelevant
		jobs = append(jobs, j)
	}
	s.jobs.mu.Unlock()
	for _, j := range jobs {
		select {
		case <-j.done:
		case <-ctx.Done():
			// Out of patience: interrupt everything still running and
			// wait for the prompt exits.
			for _, j := range jobs {
				j.cancel()
			}
			for _, j := range jobs {
				<-j.done
			}
		}
		if ctx.Err() != nil {
			break
		}
	}
	s.closeStore()
	s.sched.close()
}

// closeStore writes a final snapshot (so the next boot replays a compact
// store) and closes the journal. Safe without a store, and idempotent.
func (s *Server) closeStore() {
	js := s.jobs
	js.pmu.Lock()
	defer js.pmu.Unlock()
	if js.store == nil {
		return
	}
	js.snapshotUnderPMU()
	if err := js.store.Close(); err != nil {
		fmt.Printf("jellyfishd: closing state store: %v\n", err)
	}
	js.store = nil
}

// handleHealthz reports liveness. A degraded daemon still answers 200 —
// it is alive and serving reads — but says so, so probes and operators
// can tell "healthy" from "read-only until persist writes recover".
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.jobs.degraded.Load() {
		w.Write([]byte(`{"status":"degraded"}`))
		return
	}
	w.Write([]byte(`{"status":"ok"}`))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.statsSnapshot())
}

// handleMetrics serves the Prometheus text exposition. Scraping walks
// fixed registry slots and read-out bridges; it never takes a lock an
// instrument writer holds, so a scrape cannot stall a solve.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.tele == nil {
		writeErr(w, &apiError{Status: http.StatusNotFound, Code: "telemetry_disabled",
			Message: "telemetry is disabled on this daemon"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tele.reg.WritePrometheus(w)
}

// handleTrace serves a finished job's recorded span tree — the flight-
// recorder view of what its execution did (solver phases, probes,
// chain steps), with wall-clock timings. Traces are diagnostics: they
// live only in memory (a restarted daemon answers trace_not_recorded
// for replayed jobs) and are NOT covered by the determinism guarantee.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, aerr := s.jobs.get(r.PathValue("id"))
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	j.mu.Lock()
	status := j.status
	trace := j.trace
	j.mu.Unlock()
	if !terminalStatus(status) {
		writeErr(w, &apiError{Status: http.StatusConflict, Code: "not_finished",
			Message: fmt.Sprintf("job is %s; traces are available once it finishes", status)})
		return
	}
	if trace == nil {
		writeErr(w, &apiError{Status: http.StatusNotFound, Code: "trace_not_recorded",
			Message: "no trace recorded for this job (telemetry disabled, or the job predates this daemon process)"})
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{JobID: j.id, Trace: trace})
}

// decodeStrict unmarshals a request document, rejecting unknown fields so
// typos ("trails") fail loudly instead of silently selecting defaults.
func decodeStrict(data []byte, v any) *apiError {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid_json", "%v", err)
	}
	// A second document in the body is a client bug too.
	if dec.More() {
		return badRequest("invalid_json", "trailing data after request document")
	}
	return nil
}

// readBody reads and strictly decodes an HTTP request body.
func readBody(r *http.Request, v any) *apiError {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 16<<20))
	if err != nil {
		return badRequest("invalid_body", "reading request body: %v", err)
	}
	return decodeStrict(body, v)
}

// runSync admits, plans, schedules with single-flight dedup, and writes
// the response. Sync executions deliberately run with a background
// context: a dropped client must not abort work that concurrent
// identical requests — or the response cache — will want. Heavy
// operations that need cancellation belong on the job API.
//
// Admission happens before scheduling: when MaxSyncInflight requests are
// already in flight the server answers 429 with a Retry-After hint
// instead of queueing — saturation should surface at the edge, not as
// unbounded shard-queue latency. Malformed requests (aerr != nil) are
// rejected without consuming an admission slot or quota.
func (s *Server) runSync(w http.ResponseWriter, r *http.Request, p *plan, aerr *apiError) {
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	if qerr := s.quota.checkQuota(w, r); qerr != nil {
		writeErr(w, qerr)
		return
	}
	s.jobs.mu.Lock()
	draining := s.jobs.draining
	s.jobs.mu.Unlock()
	if draining {
		writeErr(w, &apiError{Status: http.StatusServiceUnavailable, Code: "shutting_down",
			Message: "server is draining; no new work admitted"})
		return
	}
	if s.syncSem != nil {
		select {
		case s.syncSem <- struct{}{}:
			defer func() { <-s.syncSem }()
		default:
			s.sched.stats.syncRejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, &apiError{
				Status: http.StatusTooManyRequests, Code: "overloaded",
				Message: "synchronous request limit reached; retry shortly or submit as a job (POST /v1/jobs)",
			})
			return
		}
	}
	resp, _, err := s.sched.do(context.Background(), p, true, nil, nil)
	if err != nil {
		writeSchedErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(resp)
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	var req DesignSpec
	if aerr := readBody(r, &req); aerr != nil {
		writeErr(w, aerr)
		return
	}
	p, aerr := planDesign(&req)
	s.runSync(w, r, p, aerr)
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if aerr := readBody(r, &req); aerr != nil {
		writeErr(w, aerr)
		return
	}
	p, aerr := planEvaluate(&req)
	s.runSync(w, r, p, aerr)
}

func (s *Server) handleCapacitySearch(w http.ResponseWriter, r *http.Request) {
	var req CapacitySearchRequest
	if aerr := readBody(r, &req); aerr != nil {
		writeErr(w, aerr)
		return
	}
	p, aerr := planCapacitySearch(&req)
	s.runSync(w, r, p, aerr)
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req WhatIfRequest
	if aerr := readBody(r, &req); aerr != nil {
		writeErr(w, aerr)
		return
	}
	p, aerr := planWhatIf(&req)
	s.runSync(w, r, p, aerr)
}

func (s *Server) handleRewire(w http.ResponseWriter, r *http.Request) {
	var req RewireRequest
	if aerr := readBody(r, &req); aerr != nil {
		writeErr(w, aerr)
		return
	}
	p, aerr := planRewire(&req)
	s.runSync(w, r, p, aerr)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if aerr := readBody(r, &spec); aerr != nil {
		writeErr(w, aerr)
		return
	}
	if qerr := s.quota.checkQuota(w, r); qerr != nil {
		writeErr(w, qerr)
		return
	}
	j, aerr := s.jobs.submit(s.sched, &spec)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusAccepted, j.view(false))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{Jobs: s.jobs.list()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, aerr := s.jobs.get(r.PathValue("id"))
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, aerr := s.jobs.get(r.PathValue("id"))
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	j.cancelJob()
	writeJSON(w, http.StatusOK, j.view(false))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeErr(w, &apiError{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
}

func writeErr(w http.ResponseWriter, aerr *apiError) {
	b, _ := json.Marshal(errorBody{Error: aerr})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(aerr.Status)
	w.Write(b)
}

// writeSchedErr maps scheduler errors onto HTTP.
func writeSchedErr(w http.ResponseWriter, err error) {
	var aerr *apiError
	switch {
	case errors.As(err, &aerr):
		writeErr(w, aerr)
	case errors.Is(err, errSchedulerClosed):
		writeErr(w, &apiError{Status: http.StatusServiceUnavailable, Code: "shutting_down", Message: "server is shutting down"})
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeErr(w, &apiError{Status: http.StatusServiceUnavailable, Code: "cancelled", Message: err.Error()})
	default:
		writeErr(w, &apiError{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()})
	}
}
