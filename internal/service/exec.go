package service

import (
	"context"
	"fmt"
	"slices"

	"jellyfish"
	"jellyfish/internal/mcf"
)

// This file turns normalized requests into plans: the executor closures
// that run on a shard worker with access to its warm-state cache. Every
// cache entry written here is a pure function of its key — the property
// the determinism guarantee rests on (DESIGN.md §10):
//
//   - "family:" entries memoize capacity-search topology families
//     (jellyfish.SearchFamily), pure in the inventory;
//   - "chain:" entries checkpoint what-if chains, keyed by the content
//     digest of the exact (base, seed, scenario-prefix) that produced
//     them, so resuming from one is bit-identical to replaying it;
//   - "resp:" entries (scheduler.go) memoize finished response bytes by
//     canonical request digest.

func planDesign(spec *DesignSpec) (*plan, *apiError) {
	ts := TopologySpec{Design: spec}
	// Validate eagerly so bad requests fail before scheduling.
	mat, aerr := ts.materialize()
	if aerr != nil {
		return nil, aerr
	}
	canon := mustJSON(spec)
	return &plan{
		family: "d:" + digest(canon),
		key:    "design:" + digest(canon),
		run: func(ctx context.Context, w *worker) (any, error) {
			top := mat.build()
			bp, aerr := canonicalBlueprint(top)
			if aerr != nil {
				return nil, aerr
			}
			stats := top.SwitchPathStats()
			return &DesignResponse{
				Switches:  top.NumSwitches(),
				Servers:   top.NumServers(),
				Links:     top.NumLinks(),
				MeanPath:  stats.Mean,
				Diameter:  stats.Diameter,
				Blueprint: bp,
			}, nil
		},
	}, nil
}

func planEvaluate(req *EvaluateRequest) (*plan, *apiError) {
	if req.Trials == 0 {
		req.Trials = 1
	}
	if req.Trials < 0 || req.Trials > 64 {
		return nil, badRequest("invalid_config", "trials %d outside [1, 64]; split larger sweeps across requests (the cap applies to jobs too)", req.Trials)
	}
	mat, aerr := req.Topology.materialize()
	if aerr != nil {
		return nil, aerr
	}
	if mat.servers == 0 {
		return nil, badRequest("invalid_topology", "topology has no servers; throughput is undefined")
	}
	canon := mustJSON(req) // materialize canonicalized inline blueprints
	return &plan{
		family: mat.digest,
		key:    "evaluate:" + digest(canon),
		run: func(ctx context.Context, w *worker) (any, error) {
			top := mat.build()
			resp := &EvaluateResponse{Throughputs: make([]float64, 0, req.Trials)}
			sum := 0.0
			for i := 0; i < req.Trials; i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				lam := jellyfish.OptimalThroughput(top, req.Seed+uint64(i), w.solverWorkers)
				resp.Throughputs = append(resp.Throughputs, lam)
				sum += lam
			}
			resp.Min = slices.Min(resp.Throughputs)
			resp.Mean = sum / float64(req.Trials)
			return resp, nil
		},
	}, nil
}

func planCapacitySearch(req *CapacitySearchRequest) (*plan, *apiError) {
	// Normalize the optional knobs to their documented defaults before
	// digesting, so {"trials":3} and an omitted trials coalesce.
	if req.Trials == 0 {
		req.Trials = 3
	}
	if req.Slack == 0 {
		req.Slack = 0.03
	}
	cs := jellyfish.CapacitySearch{
		Switches: req.Switches, Ports: req.Ports, Trials: req.Trials,
		Slack: req.Slack, Seed: req.Seed, ColdStart: req.ColdStart,
	}
	if err := cs.Validate(); err != nil {
		return nil, badRequest("invalid_config", "%v", err)
	}
	canon := mustJSON(req)
	famKey := fmt.Sprintf("family:%d:%d:%d", req.Switches, req.Ports, req.Seed)
	return &plan{
		family: famKey,
		key:    "capsearch:" + digest(canon),
		run: func(ctx context.Context, w *worker) (any, error) {
			// The family is the search's reusable warm asset: one
			// incrementally grown topology per inventory, shared across
			// every search over it (bit-identical to rebuilding, because
			// SearchFamily is pure in the inventory). The search itself is
			// the library's: same brackets, defaults, and random streams
			// as CapacitySearch.Run, just probing the cached family.
			cs := cs
			cs.Workers = w.solverWorkers
			var fam *jellyfish.SearchFamily
			if v, ok := w.cache.get(famKey); ok {
				fam = v.(*jellyfish.SearchFamily)
				w.stats.familyHits.Add(1)
			} else {
				var err error
				if fam, err = cs.NewFamily(); err != nil {
					return nil, err
				}
				w.cache.put(famKey, fam)
			}
			max, err := cs.RunOnFamily(fam, func() bool {
				return ctx.Err() != nil
			})
			if err == jellyfish.ErrInterrupted {
				return nil, ctx.Err()
			}
			if err != nil {
				return nil, err
			}
			return &CapacitySearchResponse{
				MaxServers:       max,
				Switches:         req.Switches,
				Ports:            req.Ports,
				ServersPerSwitch: float64(max) / float64(req.Switches),
			}, nil
		},
	}, nil
}

// chainPoint is a what-if chain checkpoint: the steps evaluated so far
// and the solver state after the last one. Both are immutable once cached
// (steps are cloned on store and on resume; mcf.State is immutable by
// construction), so checkpoints can be shared across requests freely.
type chainPoint struct {
	steps []WhatIfStep
	st    *mcf.State
}

// chainKeys derives the checkpoint keys of a what-if chain: keys[0]
// covers the base solve, keys[i] the chain through scenarios[i-1]. Each
// key is a running content digest, so two requests share a key exactly
// when they share the base, the seed, and the whole scenario prefix —
// the condition under which their chains are bit-identical.
func chainKeys(baseDigest string, seed uint64, scenarios []Scenario) []string {
	keys := make([]string, len(scenarios)+1)
	keys[0] = digest([]byte("whatif"), []byte(baseDigest), []byte(fmt.Sprint(seed)))
	for i, sc := range scenarios {
		keys[i+1] = digest([]byte(keys[i]), mustJSON(&sc))
	}
	return keys
}

func planWhatIf(req *WhatIfRequest) (*plan, *apiError) {
	mat, aerr := req.Base.materialize()
	if aerr != nil {
		return nil, aerr
	}
	if mat.servers == 0 {
		return nil, badRequest("invalid_topology", "base topology has no servers; throughput is undefined")
	}
	if len(req.Scenarios) > 128 {
		return nil, badRequest("invalid_config", "%d scenarios exceed the per-request limit of 128; split the chain", len(req.Scenarios))
	}
	for i := range req.Scenarios {
		if aerr := req.Scenarios[i].validate(i); aerr != nil {
			return nil, aerr
		}
	}
	canon := mustJSON(req)
	keys := chainKeys(mat.digest, req.Seed, req.Scenarios)
	return &plan{
		family: mat.digest,
		key:    "whatif:" + digest(canon),
		run: func(ctx context.Context, w *worker) (any, error) {
			// Resume from the deepest cached checkpoint of this exact
			// chain; everything before it is bit-identical by key purity.
			resumed := -1
			var cp *chainPoint
			for i := len(keys) - 1; i >= 0; i-- {
				if v, ok := w.cache.get("chain:" + keys[i]); ok {
					cp = v.(*chainPoint)
					resumed = i
					break
				}
			}
			top := mat.build()
			for i := 1; i <= resumed; i++ {
				req.Scenarios[i-1].apply(top)
			}
			// A fresh evaluator per request keeps executions pure: warm
			// value is carried by the immutable checkpoint states, never
			// by solver buffers with cross-request history.
			ev := jellyfish.NewWhatIfEvaluator(w.solverWorkers)
			var steps []WhatIfStep
			if resumed >= 0 {
				w.stats.chainHits.Add(1)
				steps = slices.Clone(cp.steps)
				ev.SetState(cp.st)
			} else {
				lam := ev.OptimalThroughput(top, req.Seed)
				steps = []WhatIfStep{{
					Step: 0, Description: "base",
					Switches: top.NumSwitches(), Servers: top.NumServers(),
					Links: top.NumLinks(), Throughput: lam,
				}}
				w.cache.put("chain:"+keys[0], &chainPoint{steps: slices.Clone(steps), st: ev.State()})
				resumed = 0
			}
			for i := resumed + 1; i < len(keys); i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				desc := req.Scenarios[i-1].apply(top)
				if top.NumServers() == 0 {
					return nil, badRequest("invalid_scenario", "scenario %d leaves the topology with no servers; throughput is undefined", i-1)
				}
				lam := ev.OptimalThroughput(top, req.Seed)
				steps = append(steps, WhatIfStep{
					Step: i, Description: desc,
					Switches: top.NumSwitches(), Servers: top.NumServers(),
					Links: top.NumLinks(), Throughput: lam,
				})
				w.cache.put("chain:"+keys[i], &chainPoint{steps: slices.Clone(steps), st: ev.State()})
			}
			return &WhatIfResponse{Steps: steps}, nil
		},
	}, nil
}

func planRewire(req *RewireRequest) (*plan, *apiError) {
	matBefore, aerr := req.Before.materialize()
	if aerr != nil {
		return nil, aerr
	}
	matAfter, aerr := req.After.materialize()
	if aerr != nil {
		return nil, aerr
	}
	canon := mustJSON(req)
	return &plan{
		family: matBefore.digest,
		key:    "rewire:" + digest(canon),
		run: func(ctx context.Context, w *worker) (any, error) {
			rp := jellyfish.PlanRewiring(matBefore.build(), matAfter.build())
			resp := &RewireResponse{
				Remove: make([][2]int, 0, len(rp.Remove)),
				Add:    make([][2]int, 0, len(rp.Add)),
				Moves:  rp.Moves(),
			}
			for _, e := range rp.Remove {
				resp.Remove = append(resp.Remove, [2]int{e.U, e.V})
			}
			for _, e := range rp.Add {
				resp.Add = append(resp.Add, [2]int{e.U, e.V})
			}
			return resp, nil
		},
	}, nil
}
