package service

import (
	"context"
	"fmt"
	"slices"

	"jellyfish"
	"jellyfish/internal/estimate"
	"jellyfish/internal/flowsim"
	"jellyfish/internal/mcf"
	"jellyfish/internal/rng"
	"jellyfish/internal/routing"
	"jellyfish/internal/topology"
	"jellyfish/internal/traffic"
)

// This file turns normalized requests into plans: the executor closures
// that run on a shard worker with access to its warm-state cache. Every
// cache entry written here is a pure function of its key — the property
// the determinism guarantee rests on (DESIGN.md §10):
//
//   - "family:" entries memoize capacity-search topology families
//     (jellyfish.SearchFamily), pure in the inventory;
//   - "chain:" entries checkpoint what-if chains, keyed by the content
//     digest of the exact (base, seed, scenario-prefix) that produced
//     them, so resuming from one is bit-identical to replaying it;
//   - "resp:" entries (scheduler.go) memoize finished response bytes by
//     canonical request digest;
//   - "sim:" entries hold compiled transport instances (built topology +
//     routing.Compiled + flowsim.Sim) keyed by the same topology-family
//     digest the shard router hashes on, so repeated transport
//     evaluate/what-if requests over one family reuse route tables and
//     simulator scratch. Reuse is bit-identical to cold state by the
//     simulator's and compiled router's contracts, so this tier — like
//     the others — changes wall-clock, never a response.

// emitKey carries the progress sink through an execution's context; the
// scheduler installs it (runGuarded) so executors stay ignorant of who —
// if anyone — is listening.
type emitKey struct{}

// emit publishes one progress payload from inside an executor. Payloads
// are canonical JSON of deterministic values only — they are cached with
// the response and replayed on hits, so anything nondeterministic here
// would break the stream's byte-identity guarantee.
func emit(ctx context.Context, v any) {
	if sink, ok := ctx.Value(emitKey{}).(func([]byte)); ok {
		sink(mustJSON(v))
	}
}

func planDesign(spec *DesignSpec) (*plan, *apiError) {
	ts := TopologySpec{Design: spec}
	// Validate eagerly so bad requests fail before scheduling.
	mat, aerr := ts.materialize()
	if aerr != nil {
		return nil, aerr
	}
	canon := mustJSON(spec)
	return &plan{
		family: "d:" + digest(canon),
		key:    "design:" + digest(canon),
		op:     "design",
		run: func(ctx context.Context, w *worker) (any, error) {
			top := mat.build()
			bp, aerr := canonicalBlueprint(top)
			if aerr != nil {
				return nil, aerr
			}
			stats := top.SwitchPathStats()
			return &DesignResponse{
				Switches:  top.NumSwitches(),
				Servers:   top.NumServers(),
				Links:     top.NumLinks(),
				MeanPath:  stats.Mean,
				Diameter:  stats.Diameter,
				Blueprint: bp,
			}, nil
		},
	}, nil
}

// validate checks an estimator spec (nil is valid: it selects the exact
// solver path).
func (es *EstimatorSpec) validate() *apiError {
	if es == nil {
		return nil
	}
	if es.Sample < 0 {
		return badRequest("invalid_config", "estimator sample %d cannot be negative (0 selects the default)", es.Sample)
	}
	if _, err := estimate.New(es.Kind, es.Sample, 0); err != nil {
		return badRequest("invalid_config", "estimator kind %q not one of %v", es.Kind, estimate.Kinds())
	}
	return nil
}

// validate normalizes and checks a transport spec (nil is valid: it
// selects the optimal-routing solver).
func (ts *TransportSpec) validate() *apiError {
	if ts == nil {
		return nil
	}
	switch ts.Protocol {
	case "tcp1", "tcp8", "mptcp8":
	default:
		return badRequest("invalid_config", "transport protocol %q not one of tcp1, tcp8, mptcp8", ts.Protocol)
	}
	if ts.Routing == "" {
		ts.Routing = "ksp8"
	}
	switch ts.Routing {
	case "ecmp8", "ecmp64", "ksp8":
	default:
		return badRequest("invalid_config", "transport routing %q not one of ecmp8, ecmp64, ksp8", ts.Routing)
	}
	return nil
}

func (ts *TransportSpec) protocol() flowsim.Protocol {
	switch ts.Protocol {
	case "tcp1":
		return flowsim.TCP1
	case "tcp8":
		return flowsim.TCP8
	default:
		return flowsim.MPTCP8
	}
}

// cacheKey distinguishes chains evaluated under different data planes.
func (ts *TransportSpec) cacheKey() string {
	if ts == nil {
		return ""
	}
	return ts.Protocol + "/" + ts.Routing
}

// simAsset is a "sim:" tier entry: the compiled transport instance of one
// topology family. Confined to its shard worker like every mutable warm
// asset; reuse is bit-identical to cold state.
//
//jellyvet:confined
type simAsset struct {
	top      *topology.Topology
	compiled *routing.Compiled
	sim      *flowsim.Sim
	srv      []int // server→switch scratch reused across trials
}

// transportAsset fetches or creates the family's compiled instance.
// needTopology selects whether the built base topology and its compiled
// routing are populated: evaluate runs on them, while what-if borrows
// only the simulator scratch (its scenarios mutate a private copy of the
// topology, so building the base assets would be wasted work). They are
// filled in lazily on the first evaluate over the family — every field
// is a pure function of the digest, so the entry stays
// cache-state-invisible either way.
func transportAsset(w *worker, mat materialized, needTopology bool) *simAsset {
	key := "sim:" + mat.digest
	var a *simAsset
	if v, ok := w.cache.get(key); ok {
		w.stats.simHits.Add(1)
		w.tele.simHits.Inc()
		a = v.(*simAsset)
	} else {
		w.tele.simMisses.Inc()
		a = &simAsset{sim: flowsim.NewSim(0, mat.servers)}
		w.cache.put(key, a)
	}
	if needTopology && a.top == nil {
		a.top = mat.build()
		a.compiled = routing.NewCompiled(a.top.Graph)
	}
	return a
}

// transportThroughput runs one transport trial on top using the given
// compiled routing instance and simulator scratch. Streams are derived
// from the seed exactly like the experiment harness's simMean ("traffic",
// "routes", and — for the hashed-subflow protocols only — "sim";
// mptcp8 consumes no randomness, per flowsim's stream contract).
// The srv buffer holds the server→switch map between trials; the pattern
// built from it is dead before the next trial overwrites it.
func transportThroughput(sim *flowsim.Sim, compiled *routing.Compiled, top *topology.Topology, spec *TransportSpec, seed uint64, srv *[]int) float64 {
	src := rng.New(seed).Split("transport")
	*srv = top.ServerSwitchesInto(*srv)
	pat := traffic.RandomPermutation(*srv, src.Split("traffic"))
	pairs := routing.PairsForPattern(pat)
	var table *routing.Table
	switch spec.Routing {
	case "ecmp8":
		table = compiled.ECMP(pairs, 8, src.Split("routes"), 1)
	case "ecmp64":
		table = compiled.ECMP(pairs, 64, src.Split("routes"), 1)
	default:
		table = compiled.KShortest(pairs, 8, 1)
	}
	proto := spec.protocol()
	return sim.Simulate(pat.Flows, table, proto, flowsim.SimSource(src, proto)).Mean()
}

func planEvaluate(req *EvaluateRequest) (*plan, *apiError) {
	if req.Trials == 0 {
		req.Trials = 1
	}
	if req.Trials < 0 || req.Trials > 64 {
		return nil, badRequest("invalid_config", "trials %d outside [1, 64]; split larger sweeps across requests (the cap applies to jobs too)", req.Trials)
	}
	if aerr := req.Transport.validate(); aerr != nil {
		return nil, aerr
	}
	if aerr := req.Estimator.validate(); aerr != nil {
		return nil, aerr
	}
	if req.Transport != nil && req.Estimator != nil {
		return nil, badRequest("invalid_config", "transport and estimator are mutually exclusive: a transport simulation measures a realizable data plane, an estimator brackets the optimal-routing answer")
	}
	mat, aerr := req.Topology.materialize()
	if aerr != nil {
		return nil, aerr
	}
	if mat.servers == 0 {
		return nil, badRequest("invalid_topology", "topology has no servers; throughput is undefined")
	}
	canon := mustJSON(req) // materialize canonicalized inline blueprints
	return &plan{
		family: mat.digest,
		key:    "evaluate:" + digest(canon),
		op:     "evaluate",
		run: func(ctx context.Context, w *worker) (any, error) {
			resp := &EvaluateResponse{Throughputs: make([]float64, 0, req.Trials)}
			sum := 0.0
			// Thread this request's cancellation into the kernels so a
			// cancel lands mid-trial (one solver phase, one sim filling
			// round) instead of waiting out the whole trial. A truncated
			// kernel can return a partial value, so every trial that could
			// have been interrupted is followed by a ctx re-check before
			// its value is trusted — and the final check below keeps a
			// partial last trial out of the response cache.
			intr := func() bool { return ctx.Err() != nil }
			var top *topology.Topology
			var asset *simAsset
			if req.Transport != nil {
				asset = transportAsset(w, mat, true)
				asset.sim.SetInterrupt(intr)
			} else {
				top = mat.build()
			}
			for i := 0; i < req.Trials; i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				w.tele.rec.Begin("evaluate.trial", int64(i))
				var lam float64
				var bounds *[2]float64
				switch {
				case asset != nil:
					lam = transportThroughput(asset.sim, asset.compiled, asset.top, req.Transport, req.Seed+uint64(i), &asset.srv)
				case req.Estimator != nil:
					// Certified bracket around the exact trial answer; the
					// conservative (lower) side stands in as the trial's
					// throughput so aggregate Min/Mean never overpromise.
					lo, hi, err := jellyfish.EstimateThroughputInterruptible(top, req.Estimator.Kind, req.Estimator.Sample, req.Seed+uint64(i), intr)
					if err != nil {
						w.tele.rec.End()
						return nil, err // unreachable: kind validated at plan time
					}
					resp.Bounds = append(resp.Bounds, [2]float64{lo, hi})
					bounds = &resp.Bounds[len(resp.Bounds)-1]
					lam = lo
				default:
					lam = jellyfish.OptimalThroughputInterruptible(top, req.Seed+uint64(i), intr, w.solverWorkers)
				}
				w.tele.rec.End()
				resp.Throughputs = append(resp.Throughputs, lam)
				sum += lam
				emit(ctx, &TrialEvent{Op: "trial", Trial: i, Throughput: lam, Bounds: bounds})
			}
			if err := ctx.Err(); err != nil {
				return nil, err // a truncated trial must not reach the resp: cache
			}
			resp.Min = slices.Min(resp.Throughputs)
			resp.Mean = sum / float64(req.Trials)
			return resp, nil
		},
	}, nil
}

func planCapacitySearch(req *CapacitySearchRequest) (*plan, *apiError) {
	// Normalize the optional knobs to their documented defaults before
	// digesting, so {"trials":3} and an omitted trials coalesce.
	if req.Trials == 0 {
		req.Trials = 3
	}
	if req.Slack == 0 {
		req.Slack = 0.03
	}
	cs := jellyfish.CapacitySearch{
		Switches: req.Switches, Ports: req.Ports, Trials: req.Trials,
		Slack: req.Slack, Seed: req.Seed, ColdStart: req.ColdStart,
	}
	if req.Estimator != nil {
		if aerr := req.Estimator.validate(); aerr != nil {
			return nil, aerr
		}
		cs.Estimator = req.Estimator.Kind
		cs.EstimatorSample = req.Estimator.Sample
	}
	if err := cs.Validate(); err != nil {
		return nil, badRequest("invalid_config", "%v", err)
	}
	canon := mustJSON(req)
	famKey := fmt.Sprintf("family:%d:%d:%d", req.Switches, req.Ports, req.Seed)
	return &plan{
		family: famKey,
		key:    "capsearch:" + digest(canon),
		op:     "capacity-search",
		run: func(ctx context.Context, w *worker) (any, error) {
			// The family is the search's reusable warm asset: one
			// incrementally grown topology per inventory, shared across
			// every search over it (bit-identical to rebuilding, because
			// SearchFamily is pure in the inventory). The search itself is
			// the library's: same brackets, defaults, and random streams
			// as CapacitySearch.Run, just probing the cached family.
			cs := cs
			cs.Workers = w.solverWorkers
			// One-way kernel observability: probe/trial/solve spans land on
			// this worker's flight recorder, counters on the shared slots.
			cs.Obs = w.tele.search
			var fam *jellyfish.SearchFamily
			if v, ok := w.cache.get(famKey); ok {
				fam = v.(*jellyfish.SearchFamily)
				w.stats.familyHits.Add(1)
				w.tele.familyHits.Inc()
			} else {
				w.tele.familyMisses.Inc()
				var err error
				if fam, err = cs.NewFamily(); err != nil {
					return nil, err
				}
				w.cache.put(famKey, fam)
			}
			max, err := cs.RunOnFamilyObserved(fam, func() bool {
				return ctx.Err() != nil
			}, func(servers int, feasible bool) {
				emit(ctx, &ProbeEvent{Op: "probe", Servers: servers, Feasible: feasible})
			})
			if err == jellyfish.ErrInterrupted {
				return nil, ctx.Err()
			}
			if err != nil {
				return nil, err
			}
			return &CapacitySearchResponse{
				MaxServers:       max,
				Switches:         req.Switches,
				Ports:            req.Ports,
				ServersPerSwitch: float64(max) / float64(req.Switches),
			}, nil
		},
	}, nil
}

// chainPoint is a what-if chain checkpoint: the steps evaluated so far
// and the solver state after the last one. Both are immutable once cached
// (steps are cloned on store and on resume; mcf.State is immutable by
// construction), so checkpoints can be shared across requests freely.
type chainPoint struct {
	steps []WhatIfStep
	st    *mcf.State
}

// chainKeys derives the checkpoint keys of a what-if chain: keys[0]
// covers the base solve, keys[i] the chain through scenarios[i-1]. Each
// key is a running content digest, so two requests share a key exactly
// when they share the base, the seed, the data plane (transport spec —
// cached steps embed its throughput column), and the whole scenario
// prefix — the condition under which their chains are bit-identical.
func chainKeys(baseDigest string, seed uint64, transport string, scenarios []Scenario) []string {
	keys := make([]string, len(scenarios)+1)
	keys[0] = digest([]byte("whatif"), []byte(baseDigest), []byte(fmt.Sprint(seed)), []byte(transport))
	for i, sc := range scenarios {
		keys[i+1] = digest([]byte(keys[i]), mustJSON(&sc))
	}
	return keys
}

func planWhatIf(req *WhatIfRequest) (*plan, *apiError) {
	mat, aerr := req.Base.materialize()
	if aerr != nil {
		return nil, aerr
	}
	if mat.servers == 0 {
		return nil, badRequest("invalid_topology", "base topology has no servers; throughput is undefined")
	}
	if len(req.Scenarios) > 128 {
		return nil, badRequest("invalid_config", "%d scenarios exceed the per-request limit of 128; split the chain", len(req.Scenarios))
	}
	if aerr := req.Transport.validate(); aerr != nil {
		return nil, aerr
	}
	for i := range req.Scenarios {
		if aerr := req.Scenarios[i].validate(i); aerr != nil {
			return nil, aerr
		}
	}
	canon := mustJSON(req)
	keys := chainKeys(mat.digest, req.Seed, req.Transport.cacheKey(), req.Scenarios)
	return &plan{
		family: mat.digest,
		key:    "whatif:" + digest(canon),
		op:     "whatif",
		run: func(ctx context.Context, w *worker) (any, error) {
			// Resume from the deepest cached checkpoint of this exact
			// chain; everything before it is bit-identical by key purity.
			resumed := -1
			var cp *chainPoint
			for i := len(keys) - 1; i >= 0; i-- {
				if v, ok := w.cache.get("chain:" + keys[i]); ok {
					cp = v.(*chainPoint)
					resumed = i
					break
				}
			}
			top := mat.build()
			for i := 1; i <= resumed; i++ {
				req.Scenarios[i-1].apply(top)
			}
			// A fresh evaluator per request keeps executions pure: warm
			// value is carried by the immutable checkpoint states, never
			// by solver buffers with cross-request history. The transport
			// column borrows the family's compiled simulator scratch (the
			// "sim:" tier) — reuse is result-invisible by the Sim
			// contract — but compiles routing per step: scenarios mutate
			// the graph, and a routing.Compiled is bound to one graph.
			ev := jellyfish.NewWhatIfEvaluator(w.solverWorkers)
			// Cancellation lands mid-step (one solver phase / one sim
			// round); each step re-checks ctx before its checkpoint is
			// cached, so a truncated solve never becomes a chain
			// checkpoint other requests would resume from.
			intr := func() bool { return ctx.Err() != nil }
			ev.SetInterrupt(intr)
			var simScratch *flowsim.Sim
			var srvBuf []int
			if req.Transport != nil {
				simScratch = transportAsset(w, mat, false).sim
				// Always (re)install this request's poll: the shared sim
				// asset still holds the previous borrower's closure, which
				// may reference a context that has since been cancelled.
				simScratch.SetInterrupt(intr)
			}
			stepOf := func(i int, desc string, lam float64) WhatIfStep {
				st := WhatIfStep{
					Step: i, Description: desc,
					Switches: top.NumSwitches(), Servers: top.NumServers(),
					Links: top.NumLinks(), Throughput: lam,
				}
				if req.Transport != nil {
					tp := transportThroughput(simScratch, routing.NewCompiled(top.Graph), top, req.Transport, req.Seed, &srvBuf)
					st.TransportThroughput = &tp
				}
				return st
			}
			var steps []WhatIfStep
			if resumed >= 0 {
				w.stats.chainHits.Add(1)
				w.tele.chainHits.Inc()
				steps = slices.Clone(cp.steps)
				ev.SetState(cp.st)
			} else {
				w.tele.chainMisses.Inc()
				w.tele.rec.Begin("whatif.step", 0)
				lam := ev.OptimalThroughput(top, req.Seed)
				w.tele.rec.End()
				st := stepOf(0, "base", lam)
				if err := ctx.Err(); err != nil {
					return nil, err // truncated base solve; do not checkpoint
				}
				steps = []WhatIfStep{st}
				w.cache.put("chain:"+keys[0], &chainPoint{steps: slices.Clone(steps), st: ev.State()})
				resumed = 0
			}
			// Replay the resumed prefix into the event stream: a checkpoint
			// hit must emit exactly the payloads a cold evaluation would,
			// or cache state would leak into the stream bytes.
			for _, st := range steps {
				emit(ctx, &StepEvent{Op: "step", Step: st})
			}
			for i := resumed + 1; i < len(keys); i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				desc := req.Scenarios[i-1].apply(top)
				if top.NumServers() == 0 {
					return nil, badRequest("invalid_scenario", "scenario %d leaves the topology with no servers; throughput is undefined", i-1)
				}
				w.tele.rec.Begin("whatif.step", int64(i))
				lam := ev.OptimalThroughput(top, req.Seed)
				w.tele.rec.End()
				st := stepOf(i, desc, lam)
				if err := ctx.Err(); err != nil {
					return nil, err // truncated step solve; do not checkpoint
				}
				steps = append(steps, st)
				w.cache.put("chain:"+keys[i], &chainPoint{steps: slices.Clone(steps), st: ev.State()})
				emit(ctx, &StepEvent{Op: "step", Step: steps[len(steps)-1]})
			}
			return &WhatIfResponse{Steps: steps}, nil
		},
	}, nil
}

func planRewire(req *RewireRequest) (*plan, *apiError) {
	matBefore, aerr := req.Before.materialize()
	if aerr != nil {
		return nil, aerr
	}
	matAfter, aerr := req.After.materialize()
	if aerr != nil {
		return nil, aerr
	}
	canon := mustJSON(req)
	return &plan{
		family: matBefore.digest,
		key:    "rewire:" + digest(canon),
		op:     "rewire-plan",
		run: func(ctx context.Context, w *worker) (any, error) {
			rp := jellyfish.PlanRewiring(matBefore.build(), matAfter.build())
			resp := &RewireResponse{
				Remove: make([][2]int, 0, len(rp.Remove)),
				Add:    make([][2]int, 0, len(rp.Add)),
				Moves:  rp.Moves(),
			}
			for _, e := range rp.Remove {
				resp.Remove = append(resp.Remove, [2]int{e.U, e.V})
			}
			for _, e := range rp.Add {
				resp.Add = append(resp.Add, [2]int{e.U, e.V})
			}
			return resp, nil
		},
	}, nil
}
