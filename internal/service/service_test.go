package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jellyfish"
)

// mustNew builds a Server, failing the test on a construction error
// (which only a corrupt or unwritable state dir can produce).
func mustNew(tb testing.TB, opt Options) *Server {
	tb.Helper()
	srv, err := New(opt)
	if err != nil {
		tb.Fatal(err)
	}
	return srv
}

// newTestServer starts a service plus an HTTP front; both are torn down
// with the test.
func newTestServer(t *testing.T, opt Options) (*httptest.Server, *Server) {
	t.Helper()
	srv := mustNew(t, opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv
}

func doGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, body
}

func doPost(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, b
}

func mustPost(t *testing.T, url, body string) []byte {
	t.Helper()
	status, b := doPost(t, url, body)
	if status != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, status, b)
	}
	return b
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	status, body := doGet(t, ts.URL+"/healthz")
	if status != http.StatusOK || string(body) != `{"status":"ok"}` {
		t.Fatalf("healthz: status %d body %q", status, body)
	}
}

func TestDesignEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 2})
	body := mustPost(t, ts.URL+"/v1/design",
		`{"switches":20,"ports":8,"networkDegree":5,"seed":1}`)
	var resp DesignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding design response: %v", err)
	}
	if resp.Switches != 20 || resp.Servers != 20*3 {
		t.Fatalf("design: %d switches, %d servers", resp.Switches, resp.Servers)
	}
	if resp.Links != 20*5/2 {
		t.Fatalf("design links = %d, want %d", resp.Links, 20*5/2)
	}
	if resp.Diameter <= 0 || resp.MeanPath <= 1 {
		t.Fatalf("degenerate path stats: diameter %d, mean %v", resp.Diameter, resp.MeanPath)
	}
	// The returned blueprint must round-trip through the library and
	// describe the same deterministic construction.
	top, err := jellyfish.ReadBlueprint(bytes.NewReader(resp.Blueprint))
	if err != nil {
		t.Fatalf("returned blueprint does not parse: %v", err)
	}
	want := jellyfish.New(jellyfish.Config{Switches: 20, Ports: 8, NetworkDegree: 5, Seed: 1})
	if top.NumLinks() != want.NumLinks() || top.NumServers() != want.NumServers() {
		t.Fatal("blueprint differs from the library's construction")
	}
}

func TestEvaluateMatchesLibrary(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 2})
	body := mustPost(t, ts.URL+"/v1/evaluate",
		`{"topology":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":3}},"seed":7,"trials":2}`)
	var resp EvaluateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Throughputs) != 2 {
		t.Fatalf("got %d throughputs, want 2", len(resp.Throughputs))
	}
	top := jellyfish.New(jellyfish.Config{Switches: 20, Ports: 8, NetworkDegree: 5, Seed: 3})
	for i, lam := range resp.Throughputs {
		if want := jellyfish.OptimalThroughput(top, 7+uint64(i), 1); lam != want {
			t.Fatalf("trial %d: service %v != library %v", i, lam, want)
		}
	}
	if resp.Min != min(resp.Throughputs[0], resp.Throughputs[1]) {
		t.Fatalf("min %v inconsistent with %v", resp.Min, resp.Throughputs)
	}
}

// The evaluate endpoint accepts the blueprint produced by /v1/design and
// scores the identical topology.
func TestEvaluateAcceptsBlueprint(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 2})
	design := mustPost(t, ts.URL+"/v1/design",
		`{"switches":16,"ports":8,"networkDegree":5,"seed":5}`)
	var dr DesignResponse
	if err := json.Unmarshal(design, &dr); err != nil {
		t.Fatal(err)
	}
	req := fmt.Sprintf(`{"topology":{"blueprint":%s},"seed":9}`, dr.Blueprint)
	viaBlueprint := mustPost(t, ts.URL+"/v1/evaluate", req)
	viaDesign := mustPost(t, ts.URL+"/v1/evaluate",
		`{"topology":{"design":{"switches":16,"ports":8,"networkDegree":5,"seed":5}},"seed":9}`)
	var a, b EvaluateResponse
	if err := json.Unmarshal(viaBlueprint, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(viaDesign, &b); err != nil {
		t.Fatal(err)
	}
	if a.Throughputs[0] != b.Throughputs[0] {
		t.Fatalf("blueprint evaluation %v != design evaluation %v", a.Throughputs[0], b.Throughputs[0])
	}
}

func TestCapacitySearchMatchesLibrary(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 2})
	body := mustPost(t, ts.URL+"/v1/capacity-search",
		`{"switches":10,"ports":4,"trials":1,"seed":11}`)
	var resp CapacitySearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	want, err := jellyfish.CapacitySearch{Switches: 10, Ports: 4, Trials: 1, Seed: 11, Workers: 1}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resp.MaxServers != want {
		t.Fatalf("service maxServers %d != library %d", resp.MaxServers, want)
	}
}

func TestWhatIfEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 2})
	body := mustPost(t, ts.URL+"/v1/whatif", `{
		"base":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":13}},
		"seed":17,
		"scenarios":[
			{"failLinks":{"fraction":0.1,"seed":1}},
			{"expand":{"switches":2,"ports":8,"networkDegree":5,"seed":2}}
		]}`)
	var resp WhatIfResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Steps) != 3 {
		t.Fatalf("got %d steps, want 3 (base + 2 scenarios)", len(resp.Steps))
	}
	if resp.Steps[0].Description != "base" || resp.Steps[0].Switches != 20 {
		t.Fatalf("bad base step: %+v", resp.Steps[0])
	}
	if resp.Steps[2].Switches != 22 {
		t.Fatalf("expansion step has %d switches, want 22", resp.Steps[2].Switches)
	}
	for i, st := range resp.Steps {
		if st.Throughput <= 0 || st.Throughput > 1 {
			t.Fatalf("step %d throughput %v outside (0,1]", i, st.Throughput)
		}
	}
	if resp.Steps[1].Links >= resp.Steps[0].Links {
		t.Fatalf("failLinks step did not remove links: %d -> %d", resp.Steps[0].Links, resp.Steps[1].Links)
	}
}

// TestWhatIfMiswireScenario pins the §6.1 story as a what-if: endpoint
// swaps preserve every degree (so switch, server, and link counts are
// unchanged), and a Jellyfish with a few crossed cables is still just a
// random graph, so throughput stays in the base's neighborhood.
func TestWhatIfMiswireScenario(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 2})
	body := mustPost(t, ts.URL+"/v1/whatif", `{
		"base":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":13}},
		"seed":17,
		"scenarios":[{"miswire":{"count":3,"seed":7}}]}`)
	var resp WhatIfResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Steps) != 2 {
		t.Fatalf("got %d steps, want 2 (base + miswire)", len(resp.Steps))
	}
	base, mis := resp.Steps[0], resp.Steps[1]
	if !strings.Contains(mis.Description, "miswire(count=3, seed=7)") {
		t.Fatalf("miswire step description = %q", mis.Description)
	}
	if mis.Switches != base.Switches || mis.Servers != base.Servers || mis.Links != base.Links {
		t.Fatalf("miswiring changed counts: base %+v -> %+v", base, mis)
	}
	if mis.Throughput <= 0 || mis.Throughput > 1 {
		t.Fatalf("miswire throughput %v outside (0,1]", mis.Throughput)
	}
	if mis.Throughput < 0.75*base.Throughput {
		t.Fatalf("miswired throughput %v collapsed versus base %v; a few swapped cables should leave a random graph random", mis.Throughput, base.Throughput)
	}
}

func TestRewireEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 2})
	before := jellyfish.New(jellyfish.Config{Switches: 20, Ports: 8, NetworkDegree: 5, Seed: 19})
	after := before.Clone()
	jellyfish.Expand(after, 2, 8, 5, 23)
	var beforeBP, afterBP bytes.Buffer
	if err := jellyfish.WriteBlueprint(before, &beforeBP); err != nil {
		t.Fatal(err)
	}
	if err := jellyfish.WriteBlueprint(after, &afterBP); err != nil {
		t.Fatal(err)
	}
	body := mustPost(t, ts.URL+"/v1/rewire-plan", fmt.Sprintf(
		`{"before":{"blueprint":%s},"after":{"blueprint":%s}}`, beforeBP.String(), afterBP.String()))
	var resp RewireResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	want := jellyfish.PlanRewiring(before, after)
	if resp.Moves != want.Moves() || len(resp.Add) != len(want.Add) || len(resp.Remove) != len(want.Remove) {
		t.Fatalf("service plan (%d moves) != library plan (%d moves)", resp.Moves, want.Moves())
	}
	if resp.Moves == 0 {
		t.Fatal("expansion produced no cable moves")
	}
}

// Every class of client mistake maps to a 400 with a machine-readable
// code — the typed-error plumbing from the library boundary outward.
func TestValidationErrors(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name, path, body, code string
	}{
		{"bad design", "/v1/design", `{"switches":0,"ports":8,"networkDegree":5,"seed":1}`, "invalid_config"},
		{"degree over ports", "/v1/design", `{"switches":10,"ports":4,"networkDegree":5,"seed":1}`, "invalid_config"},
		{"bad search ports", "/v1/capacity-search", `{"switches":10,"ports":1,"seed":1}`, "invalid_config"},
		{"negative trials", "/v1/capacity-search", `{"switches":10,"ports":4,"trials":-1,"seed":1}`, "invalid_config"},
		{"evaluate no topology", "/v1/evaluate", `{"seed":1}`, "invalid_topology"},
		{"evaluate both topologies", "/v1/evaluate", `{"topology":{"design":{"switches":4,"ports":4,"networkDegree":2,"seed":1},"blueprint":{}},"seed":1}`, "invalid_topology"},
		{"bad blueprint", "/v1/evaluate", `{"topology":{"blueprint":{"ports":[4],"servers":[1,2]}},"seed":1}`, "invalid_blueprint"},
		{"empty blueprint", "/v1/evaluate", `{"topology":{"blueprint":{}},"seed":1}`, "invalid_blueprint"},
		{"null blueprint", "/v1/evaluate", `{"topology":{"blueprint":null},"seed":1}`, "invalid_blueprint"},
		{"empty blueprint rewire", "/v1/rewire-plan", `{"before":{"blueprint":{}},"after":{"design":{"switches":4,"ports":4,"networkDegree":2,"seed":1}}}`, "invalid_blueprint"},
		{"serverless design evaluate", "/v1/evaluate", `{"topology":{"design":{"switches":6,"ports":4,"networkDegree":4,"seed":1}},"seed":1}`, "invalid_topology"},
		{"serverless base whatif", "/v1/whatif", `{"base":{"design":{"switches":6,"ports":4,"networkDegree":4,"seed":1}},"seed":1,"scenarios":[]}`, "invalid_topology"},
		{"unknown field", "/v1/evaluate", `{"topology":{"design":{"switches":4,"ports":4,"networkDegree":2,"seed":1}},"trails":3}`, "invalid_json"},
		{"malformed json", "/v1/evaluate", `{"topology":`, "invalid_json"},
		{"bad scenario", "/v1/whatif", `{"base":{"design":{"switches":10,"ports":4,"networkDegree":2,"seed":1}},"scenarios":[{}]}`, "invalid_scenario"},
		{"two-op scenario", "/v1/whatif", `{"base":{"design":{"switches":10,"ports":4,"networkDegree":2,"seed":1}},"scenarios":[{"failLinks":{"fraction":0.1,"seed":1},"failSwitches":{"fraction":0.1,"seed":1}}]}`, "invalid_scenario"},
		{"zero-count miswire", "/v1/whatif", `{"base":{"design":{"switches":10,"ports":4,"networkDegree":2,"seed":1}},"scenarios":[{"miswire":{"count":0,"seed":7}}]}`, "invalid_scenario"},
		{"unknown job type", "/v1/jobs", `{"type":"frobnicate","request":{}}`, "unknown_job_type"},
	}
	for _, tc := range cases {
		status, body := doPost(t, ts.URL+tc.path, tc.body)
		if status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (body %s)", tc.name, status, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == nil {
			t.Fatalf("%s: unparseable error body %s", tc.name, body)
		}
		if eb.Error.Code != tc.code {
			t.Fatalf("%s: code %q, want %q (message: %s)", tc.name, eb.Error.Code, tc.code, eb.Error.Message)
		}
	}
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		status, body := doGet(t, base+"/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("job get: status %d: %s", status, body)
		}
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		switch v.Status {
		case jobSucceeded, jobFailed, jobCancelled:
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobView{}
}

// A job's result must be byte-identical to the sync endpoint's response
// for the same request — one scheduler, one canonical digest, one answer.
func TestJobLifecycleAndResultBytes(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 2})
	req := `{"topology":{"design":{"switches":16,"ports":8,"networkDegree":5,"seed":29}},"seed":31,"trials":1}`
	syncBytes := mustPost(t, ts.URL+"/v1/evaluate", req)

	status, body := doPost(t, ts.URL+"/v1/jobs", `{"type":"evaluate","request":`+req+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("job submit: status %d: %s", status, body)
	}
	var submitted JobView
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted.ID == "" || (submitted.Status != jobQueued && submitted.Status != jobRunning) {
		t.Fatalf("bad submit view: %+v", submitted)
	}
	final := waitJob(t, ts.URL, submitted.ID)
	if final.Status != jobSucceeded {
		t.Fatalf("job status %s (error %+v)", final.Status, final.Error)
	}
	if !bytes.Equal(final.Result, syncBytes) {
		t.Fatalf("job result differs from sync response:\njob:  %s\nsync: %s", final.Result, syncBytes)
	}

	// The list endpoint reports the job (without the result payload).
	status, body = doGet(t, ts.URL+"/v1/jobs")
	if status != http.StatusOK || !strings.Contains(string(body), submitted.ID) {
		t.Fatalf("job list missing %s: %s", submitted.ID, body)
	}
	if status, _ := doGet(t, ts.URL+"/v1/jobs/nope"); status != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", status)
	}
}

func TestJobCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("cancellation needs a search long enough to catch mid-run")
	}
	ts, _ := newTestServer(t, Options{Workers: 1})
	// A k=8-scale search takes ~1s — plenty of trial-solve boundaries for
	// the interrupt to land on.
	status, body := doPost(t, ts.URL+"/v1/jobs",
		`{"type":"capacity-search","request":{"switches":125,"ports":8,"trials":3,"seed":37}}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if status, _ = doPost(t, ts.URL+"/v1/jobs/"+v.ID+"/cancel", ""); status != http.StatusOK {
		t.Fatalf("cancel: status %d", status)
	}
	final := waitJob(t, ts.URL, v.ID)
	if final.Status != jobCancelled {
		t.Fatalf("cancelled job finished as %s", final.Status)
	}
	if final.Result != nil {
		t.Fatal("cancelled job carries a result")
	}
}

// Identical in-flight requests must execute once: single-flight plus the
// response cache guarantee one solver execution no matter how many
// clients ask, and every client gets the same bytes.
func TestSingleFlightExecutesOnce(t *testing.T) {
	ts, srv := newTestServer(t, Options{Workers: 2})
	req := `{"switches":15,"ports":5,"trials":1,"seed":41}`
	const clients = 8
	results := make(chan []byte, clients)
	for i := 0; i < clients; i++ {
		go func() {
			results <- mustPost(t, ts.URL+"/v1/capacity-search", req)
		}()
	}
	first := <-results
	for i := 1; i < clients; i++ {
		if got := <-results; !bytes.Equal(got, first) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
	if misses := srv.sched.stats.resultMisses.Load(); misses != 1 {
		t.Fatalf("%d executions for %d identical requests, want exactly 1", misses, clients)
	}
	if hits := srv.sched.stats.resultHits.Load() + srv.sched.stats.deduped.Load(); hits != clients-1 {
		t.Fatalf("hits+deduped = %d, want %d", hits, clients-1)
	}
}

// A panicking executor must fail its one request with a 500, not take
// down the shard goroutine (and with it the daemon): the next request on
// the same worker must still be served.
func TestExecutorPanicConfinedToRequest(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1})
	boom := &plan{family: "f", key: "boom", run: func(ctx context.Context, w *worker) (any, error) {
		panic("boom")
	}}
	_, _, err := srv.sched.do(context.Background(), boom, true, nil, nil)
	var aerr *apiError
	if !errors.As(err, &aerr) || aerr.Status != http.StatusInternalServerError ||
		!strings.Contains(aerr.Message, "executor panic: boom") {
		t.Fatalf("panicking executor returned %v, want a 500 apiError wrapping the panic", err)
	}
	ok := &plan{family: "f", key: "after", run: func(ctx context.Context, w *worker) (any, error) {
		return "alive", nil
	}}
	resp, _, err := srv.sched.do(context.Background(), ok, true, nil, nil)
	if err != nil || string(resp) != `"alive"` {
		t.Fatalf("worker did not survive the panic: resp %s, err %v", resp, err)
	}
}

// The job store is bounded: past the cap, submissions evict the oldest
// finished job, and when every retained job is still queued or running
// they are rejected with 429 instead of growing without bound.
func TestJobStoreBounded(t *testing.T) {
	ts, srv := newTestServer(t, Options{Workers: 1})
	srv.jobs.cap = 1

	// Park the single shard worker so a submitted job stays queued.
	release := make(chan struct{})
	blocked := &plan{family: "x", key: "block", run: func(ctx context.Context, w *worker) (any, error) {
		<-release
		return "done", nil
	}}
	go srv.sched.do(context.Background(), blocked, false, nil, nil)

	jobReq := `{"type":"evaluate","request":{"topology":{"design":{"switches":4,"ports":4,"networkDegree":2,"seed":1}},"seed":1}}`
	status, body := doPost(t, ts.URL+"/v1/jobs", jobReq)
	if status != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", status, body)
	}
	var first JobView
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}

	// Store full, nothing finished: reject.
	status, body = doPost(t, ts.URL+"/v1/jobs", jobReq)
	if status != http.StatusTooManyRequests || !strings.Contains(string(body), "job_store_full") {
		t.Fatalf("submit over cap: status %d body %s, want 429 job_store_full", status, body)
	}

	close(release)
	if v := waitJob(t, ts.URL, first.ID); v.Status != jobSucceeded {
		t.Fatalf("first job: %s", v.Status)
	}

	// Now the finished job is evictable: the next submit takes its slot.
	status, body = doPost(t, ts.URL+"/v1/jobs", jobReq)
	if status != http.StatusAccepted {
		t.Fatalf("submit after finish: status %d: %s", status, body)
	}
	var second JobView
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	// An evicted id answers 410 Gone with a typed error — distinguishable
	// from an id that never existed (404) — on every job route.
	for _, path := range []string{"", "/events", "/result"} {
		status, body := doGet(t, ts.URL+"/v1/jobs/"+first.ID+path)
		if status != http.StatusGone || !strings.Contains(string(body), "job_evicted") {
			t.Fatalf("evicted job GET %s: status %d body %s, want 410 job_evicted", path, status, body)
		}
	}
	if status, body := doGet(t, ts.URL+"/v1/jobs/j999999"); status != http.StatusNotFound || !strings.Contains(string(body), "unknown_job") {
		t.Fatalf("unknown job: status %d body %s, want 404 unknown_job", status, body)
	}
	if v := waitJob(t, ts.URL, second.ID); v.Status != jobSucceeded {
		t.Fatalf("second job: %s", v.Status)
	}
}
