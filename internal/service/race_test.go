package service

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentMixedRequests hammers one service with overlapping
// planning requests from many goroutines — identical requests (exercising
// single-flight and the response cache), chain-prefix overlaps (warm
// checkpoints), family overlaps, and async jobs, all interleaved. The
// -race build is half the assertion; the other half is that every
// response observed for a given request body is byte-identical, no matter
// which goroutine, worker, or cache path produced it.
func TestConcurrentMixedRequests(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 4})

	requests := []struct{ path, body string }{
		{"/v1/design", `{"switches":16,"ports":8,"networkDegree":5,"seed":61}`},
		{"/v1/design", `{"switches":16,"ports":8,"networkDegree":5,"seed":62}`},
		{"/v1/evaluate", `{"topology":{"design":{"switches":16,"ports":8,"networkDegree":5,"seed":61}},"seed":1}`},
		{"/v1/evaluate", `{"topology":{"design":{"switches":16,"ports":8,"networkDegree":5,"seed":62}},"seed":1}`},
		{"/v1/whatif", `{"base":{"design":{"switches":16,"ports":8,"networkDegree":5,"seed":61}},"seed":2,"scenarios":[{"failLinks":{"fraction":0.1,"seed":3}}]}`},
		{"/v1/whatif", `{"base":{"design":{"switches":16,"ports":8,"networkDegree":5,"seed":61}},"seed":2,"scenarios":[{"failLinks":{"fraction":0.1,"seed":3}},{"expand":{"switches":1,"ports":8,"networkDegree":5,"seed":4}}]}`},
		{"/v1/capacity-search", `{"switches":8,"ports":4,"trials":1,"seed":67}`},
		{"/v1/capacity-search", `{"switches":8,"ports":4,"trials":2,"seed":67}`},
	}

	var mu sync.Mutex
	seen := map[string][]byte{} // request body -> first response observed

	const goroutines = 12
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				req := requests[(g+r)%len(requests)]
				resp, err := http.Post(ts.URL+req.path, "application/json", strings.NewReader(req.body))
				if err != nil {
					errs <- err
					return
				}
				body := make([]byte, 0, 4096)
				buf := make([]byte, 4096)
				for {
					n, rerr := resp.Body.Read(buf)
					body = append(body, buf[:n]...)
					if rerr != nil {
						break
					}
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: %s: status %d: %s", g, req.path, resp.StatusCode, body)
					return
				}
				mu.Lock()
				if prior, ok := seen[req.body]; ok {
					if !bytes.Equal(prior, body) {
						mu.Unlock()
						errs <- fmt.Errorf("goroutine %d: %s: response diverged under concurrency", g, req.path)
						return
					}
				} else {
					seen[req.body] = body
				}
				mu.Unlock()

				// Interleave job traffic over the same scheduler.
				if g%4 == 0 && r == 0 {
					jb := fmt.Sprintf(`{"type":"evaluate","request":%s}`, requests[2].body)
					status, body := doPost(t, ts.URL+"/v1/jobs", jb)
					if status != http.StatusAccepted {
						errs <- fmt.Errorf("goroutine %d: job submit status %d: %s", g, status, body)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(seen) != len(requests) {
		t.Fatalf("observed %d distinct requests, want %d", len(seen), len(requests))
	}
}
