package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"jellyfish/internal/faultinject"
	"jellyfish/internal/telemetry"
)

// The scheduler is the serving core: a fixed pool of solver workers, each
// owning a warm-state cache, with requests hashed by topology-family key
// to a shard. One goroutine per worker executes that shard's requests
// sequentially, which is what makes holding mutable warm assets
// (capsearch.Family memoization, reusable solver chains) safe without any
// locking: confinement, not synchronization, is the ownership story.
//
// Determinism argument (tested end to end in determinism_test.go): every
// cache entry — response bytes, chain checkpoints, topology families — is
// a pure function of its key, and keys are canonical content digests of
// the request (or of a chain prefix of it). A cache hit therefore returns
// exactly the bytes/state a cold execution would have computed, and the
// shard a family lands on — which changes with the worker count — can
// affect only wall-clock, never results.

// errSchedulerClosed reports a submit after Close (shutdown path).
var errSchedulerClosed = errors.New("service: scheduler closed")

// A plan is a normalized, validated request ready to execute: where it
// shards (family), its canonical identity (key, the single-flight and
// response-cache handle), and the executor to run on the owning worker.
type plan struct {
	family string
	key    string
	// op names the operation ("design", "evaluate", …) for the per-op
	// duration series and the root span of the recorded trace.
	op  string
	run func(ctx context.Context, w *worker) (any, error)
}

// A task is one scheduled execution of a plan.
type task struct {
	*plan
	ctx     context.Context
	dedup   bool
	onStart func()
	// onEvent, when non-nil, receives each progress payload the executor
	// emits (and, on a response-cache hit, the cached stream replayed in
	// order) — the live feed behind GET /v1/jobs/{id}/events.
	onEvent func([]byte)

	// enq marks submission time for the queue-wait histogram.
	enq telemetry.Timer

	done   chan struct{}
	resp   []byte
	events [][]byte
	trace  *telemetry.Trace
	err    error
}

// A cachedResult is one "resp:" cache entry: the response bytes plus
// the progress-event payloads the execution emitted. They live in one
// entry so a cache hit replays exactly the event stream a cold
// execution produces — evicting one without the other could otherwise
// split the determinism guarantee between response and stream.
type cachedResult struct {
	resp   []byte
	events [][]byte
	// trace is the span tree the original execution recorded, shared by
	// every hit so a cached job's /v1/trace answer matches the cold
	// run's. Traces are diagnostics, NOT covered by the determinism
	// guarantee (their durations are wall-clock), which is why they live
	// beside the guaranteed bytes rather than inside them.
	trace *telemetry.Trace
}

type stats struct {
	resultHits   atomic.Int64
	resultMisses atomic.Int64
	familyHits   atomic.Int64
	chainHits    atomic.Int64
	simHits      atomic.Int64
	deduped      atomic.Int64
	syncRejected atomic.Int64
}

// worker is one cache shard: a queue, the warm-state cache it owns, and
// the goroutine (spawned in newScheduler) that is the sole executor of
// everything behind it.
//
//jellyvet:confined
type worker struct {
	queue         chan *task
	cache         *lru
	solverWorkers int
	stats         *stats
	// tele is this shard's telemetry (never nil; inert when disabled).
	// Its flight recorder is confined to this worker's goroutine.
	tele *workerTele
	// cacheLen mirrors cache.len() for the stats endpoint (the cache
	// itself is confined to this worker's goroutine).
	cacheLen atomic.Int64
}

type scheduler struct {
	workers []*worker
	stats   stats
	tele    *tele // nil when telemetry is disabled

	mu       sync.Mutex
	inflight map[string]*task
	closed   bool
	// submitters tracks in-progress queue sends so close can wait for
	// them before closing the queues (a send on a closed channel panics).
	submitters sync.WaitGroup
	wg         sync.WaitGroup
}

func newScheduler(workers, solverWorkers, cacheEntries int, tl *tele) *scheduler {
	s := &scheduler{
		workers:  make([]*worker, workers),
		inflight: make(map[string]*task),
		tele:     tl,
	}
	for i := range s.workers {
		w := &worker{
			queue:         make(chan *task, 256),
			cache:         newLRU(cacheEntries),
			solverWorkers: solverWorkers,
			stats:         &s.stats,
			tele:          tl.worker(i),
		}
		s.workers[i] = w
		s.wg.Add(1)
		//jellyvet:allow determinism,confinement -- the shard worker pool itself: w is handed off here, before the loop starts, and this goroutine becomes its sole owner
		go func() {
			defer s.wg.Done()
			for t := range w.queue {
				w.execute(s, t)
			}
		}()
	}
	return s
}

// do schedules a plan and blocks until its execution — or the identical
// in-flight execution it was deduplicated onto — completes. ctx is the
// execution context (checked at dequeue and polled by interruptible
// executors); dedup enables single-flight coalescing, onStart (optional)
// fires when execution actually begins on the worker. The returned
// trace is the execution's recorded span tree (nil with telemetry
// disabled); deduped followers and response-cache hits share the
// original execution's trace.
func (s *scheduler) do(ctx context.Context, p *plan, dedup bool, onStart func(), onEvent func([]byte)) ([]byte, *telemetry.Trace, error) {
	t := &task{plan: p, ctx: ctx, dedup: dedup, onStart: onStart, onEvent: onEvent, done: make(chan struct{})}
	t.enq = telemetry.StartTimer()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, errSchedulerClosed
	}
	if dedup {
		if prior, ok := s.inflight[p.key]; ok {
			s.mu.Unlock()
			s.stats.deduped.Add(1)
			<-prior.done
			// A deduped follower receives the leader's event stream after
			// the fact — identical payload bytes, just not live.
			if onEvent != nil && prior.err == nil {
				for _, e := range prior.events {
					onEvent(e)
				}
			}
			return prior.resp, prior.trace, prior.err
		}
		s.inflight[p.key] = t
	}
	s.submitters.Add(1)
	s.mu.Unlock()

	s.workers[s.shard(p.family)].queue <- t
	s.submitters.Done()
	<-t.done
	return t.resp, t.trace, t.err
}

// shard maps a topology-family key to its owning worker. Related requests
// — same design, same capacity-search inventory — always land together,
// so they find each other's warm state; the mapping itself can change
// with the worker count, which is safe because cached values are pure.
func (s *scheduler) shard(family string) int {
	h := fnv.New32a()
	h.Write([]byte(family))
	return int(h.Sum32() % uint32(len(s.workers)))
}

func (w *worker) execute(s *scheduler, t *task) {
	defer func() {
		w.cacheLen.Store(int64(w.cache.len()))
		if t.dedup {
			s.mu.Lock()
			delete(s.inflight, t.key)
			s.mu.Unlock()
		}
		close(t.done)
	}()
	s.tele.queueWaitH().ObserveSince(t.enq)
	if faultinject.Enabled() {
		// Chaos site: a stall here models a wedged shard worker (slow
		// disk, scheduler starvation) without touching kernel code. Only
		// the stall shape is meaningful — this runs outside runGuarded,
		// so error and panic shapes are ignored rather than allowed to
		// kill the shard goroutine.
		if f, ok := faultinject.Hit("sched.worker.stall"); ok && f.Stall {
			time.Sleep(faultinject.StallDuration)
		}
	}
	if t.ctx != nil {
		if err := t.ctx.Err(); err != nil {
			t.err = err
			return
		}
	}
	if v, ok := w.cache.get("resp:" + t.key); ok {
		cr := v.(*cachedResult)
		w.stats.resultHits.Add(1)
		w.tele.respHits.Inc()
		if t.onEvent != nil {
			for _, e := range cr.events {
				t.onEvent(e)
			}
		}
		t.resp = cr.resp
		t.events = cr.events
		t.trace = cr.trace
		return
	}
	w.stats.resultMisses.Add(1)
	w.tele.respMisses.Inc()
	if t.onStart != nil {
		t.onStart()
	}
	// Record the execution: a root span named by the operation, with
	// whatever the executor and the kernels beneath it record nested
	// inside. The trace is extracted here — on the recorder's own
	// goroutine, after the work — and is immutable from then on.
	opT := telemetry.StartTimer()
	mark := w.tele.rec.Mark()
	w.tele.rec.Begin(t.op, 0)
	v, err := runGuarded(s, t, w)
	w.tele.rec.End()
	t.trace = w.tele.rec.TraceSince(mark)
	s.tele.opDurH(t.op).ObserveSince(opT)
	if err != nil {
		t.err = err
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.err = &apiError{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
		return
	}
	t.resp = b
	if faultinject.Enabled() {
		// Chaos site: a cache-insert failure serves the response but skips
		// memoizing it, so the next identical request re-executes cold.
		// Correctness is unaffected (entries are pure functions of their
		// keys); chaos runs use it to prove hit/miss paths are
		// byte-identical.
		if _, failed := faultinject.Hit("sched.cache.insert"); failed {
			return
		}
	}
	w.cache.put("resp:"+t.key, &cachedResult{resp: b, events: t.events, trace: t.trace})
}

// runGuarded executes a plan, converting a panic into a 500. The shard
// goroutines are shared by every request on the shard — unlike net/http's
// per-connection goroutines — so an executor panic (a validation gap
// reaching one of the library's documented panic paths) must fail its one
// request, not kill the daemon and every in-flight job.
//
// Containment also discards the family's warm-state cache entries: a
// kernel that panicked mid-mutation may have left its memoized asset
// (capsearch family, compiled sim) half-updated, and the
// pure-function-of-key guarantee only covers values a completed
// execution produced. Dropping them costs one cold rebuild; keeping
// them could poison every later response on the shard. Chain
// checkpoints need no discard — they are only cached after their solve
// completes, so a panic can never publish a partial one.
func runGuarded(s *scheduler, t *task, w *worker) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			w.cache.remove(t.family)
			w.cache.remove("sim:" + t.family)
			s.tele.panicsContained().Inc()
			err = &apiError{Status: http.StatusInternalServerError, Code: "internal_error",
				Message: fmt.Sprintf("executor panic: %v", r)}
		}
	}()
	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Progress payloads are recorded on the task (for the response cache)
	// and forwarded live to the subscriber, in emission order. The sink
	// runs on this worker goroutine only, so the slice needs no locking.
	sink := func(b []byte) {
		t.events = append(t.events, b)
		if t.onEvent != nil {
			t.onEvent(b)
		}
	}
	return t.run(context.WithValue(ctx, emitKey{}, sink), w)
}

// close shuts the pool down after in-flight work drains. Submitting after
// close returns errSchedulerClosed.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.submitters.Wait()
	for _, w := range s.workers {
		close(w.queue)
	}
	s.wg.Wait()
}

func (s *scheduler) statsSnapshot() StatsResponse {
	entries := 0
	for _, w := range s.workers {
		entries += int(w.cacheLen.Load())
	}
	return StatsResponse{
		Workers:      len(s.workers),
		ResultHits:   s.stats.resultHits.Load(),
		ResultMisses: s.stats.resultMisses.Load(),
		FamilyHits:   s.stats.familyHits.Load(),
		ChainHits:    s.stats.chainHits.Load(),
		SimHits:      s.stats.simHits.Load(),
		Deduped:      s.stats.deduped.Load(),
		SyncRejected: s.stats.syncRejected.Load(),
		CacheEntries: entries,
	}
}
