package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"
)

// The scheduler is the serving core: a fixed pool of solver workers, each
// owning a warm-state cache, with requests hashed by topology-family key
// to a shard. One goroutine per worker executes that shard's requests
// sequentially, which is what makes holding mutable warm assets
// (capsearch.Family memoization, reusable solver chains) safe without any
// locking: confinement, not synchronization, is the ownership story.
//
// Determinism argument (tested end to end in determinism_test.go): every
// cache entry — response bytes, chain checkpoints, topology families — is
// a pure function of its key, and keys are canonical content digests of
// the request (or of a chain prefix of it). A cache hit therefore returns
// exactly the bytes/state a cold execution would have computed, and the
// shard a family lands on — which changes with the worker count — can
// affect only wall-clock, never results.

// errSchedulerClosed reports a submit after Close (shutdown path).
var errSchedulerClosed = errors.New("service: scheduler closed")

// A plan is a normalized, validated request ready to execute: where it
// shards (family), its canonical identity (key, the single-flight and
// response-cache handle), and the executor to run on the owning worker.
type plan struct {
	family string
	key    string
	run    func(ctx context.Context, w *worker) (any, error)
}

// A task is one scheduled execution of a plan.
type task struct {
	*plan
	ctx     context.Context
	dedup   bool
	onStart func()
	// onEvent, when non-nil, receives each progress payload the executor
	// emits (and, on a response-cache hit, the cached stream replayed in
	// order) — the live feed behind GET /v1/jobs/{id}/events.
	onEvent func([]byte)

	done   chan struct{}
	resp   []byte
	events [][]byte
	err    error
}

// A cachedResult is one "resp:" cache entry: the response bytes plus
// the progress-event payloads the execution emitted. They live in one
// entry so a cache hit replays exactly the event stream a cold
// execution produces — evicting one without the other could otherwise
// split the determinism guarantee between response and stream.
type cachedResult struct {
	resp   []byte
	events [][]byte
}

type stats struct {
	resultHits   atomic.Int64
	resultMisses atomic.Int64
	familyHits   atomic.Int64
	chainHits    atomic.Int64
	simHits      atomic.Int64
	deduped      atomic.Int64
	syncRejected atomic.Int64
}

// worker is one cache shard: a queue, the warm-state cache it owns, and
// the goroutine (spawned in newScheduler) that is the sole executor of
// everything behind it.
//
//jellyvet:confined
type worker struct {
	queue         chan *task
	cache         *lru
	solverWorkers int
	stats         *stats
	// cacheLen mirrors cache.len() for the stats endpoint (the cache
	// itself is confined to this worker's goroutine).
	cacheLen atomic.Int64
}

type scheduler struct {
	workers []*worker
	stats   stats

	mu       sync.Mutex
	inflight map[string]*task
	closed   bool
	// submitters tracks in-progress queue sends so close can wait for
	// them before closing the queues (a send on a closed channel panics).
	submitters sync.WaitGroup
	wg         sync.WaitGroup
}

func newScheduler(workers, solverWorkers, cacheEntries int) *scheduler {
	s := &scheduler{
		workers:  make([]*worker, workers),
		inflight: make(map[string]*task),
	}
	for i := range s.workers {
		w := &worker{
			queue:         make(chan *task, 256),
			cache:         newLRU(cacheEntries),
			solverWorkers: solverWorkers,
			stats:         &s.stats,
		}
		s.workers[i] = w
		s.wg.Add(1)
		//jellyvet:allow determinism,confinement -- the shard worker pool itself: w is handed off here, before the loop starts, and this goroutine becomes its sole owner
		go func() {
			defer s.wg.Done()
			for t := range w.queue {
				w.execute(s, t)
			}
		}()
	}
	return s
}

// do schedules a plan and blocks until its execution — or the identical
// in-flight execution it was deduplicated onto — completes. ctx is the
// execution context (checked at dequeue and polled by interruptible
// executors); dedup enables single-flight coalescing, onStart (optional)
// fires when execution actually begins on the worker.
func (s *scheduler) do(ctx context.Context, p *plan, dedup bool, onStart func(), onEvent func([]byte)) ([]byte, error) {
	t := &task{plan: p, ctx: ctx, dedup: dedup, onStart: onStart, onEvent: onEvent, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errSchedulerClosed
	}
	if dedup {
		if prior, ok := s.inflight[p.key]; ok {
			s.mu.Unlock()
			s.stats.deduped.Add(1)
			<-prior.done
			// A deduped follower receives the leader's event stream after
			// the fact — identical payload bytes, just not live.
			if onEvent != nil && prior.err == nil {
				for _, e := range prior.events {
					onEvent(e)
				}
			}
			return prior.resp, prior.err
		}
		s.inflight[p.key] = t
	}
	s.submitters.Add(1)
	s.mu.Unlock()

	s.workers[s.shard(p.family)].queue <- t
	s.submitters.Done()
	<-t.done
	return t.resp, t.err
}

// shard maps a topology-family key to its owning worker. Related requests
// — same design, same capacity-search inventory — always land together,
// so they find each other's warm state; the mapping itself can change
// with the worker count, which is safe because cached values are pure.
func (s *scheduler) shard(family string) int {
	h := fnv.New32a()
	h.Write([]byte(family))
	return int(h.Sum32() % uint32(len(s.workers)))
}

func (w *worker) execute(s *scheduler, t *task) {
	defer func() {
		w.cacheLen.Store(int64(w.cache.len()))
		if t.dedup {
			s.mu.Lock()
			delete(s.inflight, t.key)
			s.mu.Unlock()
		}
		close(t.done)
	}()
	if t.ctx != nil {
		if err := t.ctx.Err(); err != nil {
			t.err = err
			return
		}
	}
	if v, ok := w.cache.get("resp:" + t.key); ok {
		cr := v.(*cachedResult)
		w.stats.resultHits.Add(1)
		if t.onEvent != nil {
			for _, e := range cr.events {
				t.onEvent(e)
			}
		}
		t.resp = cr.resp
		t.events = cr.events
		return
	}
	w.stats.resultMisses.Add(1)
	if t.onStart != nil {
		t.onStart()
	}
	v, err := runGuarded(t, w)
	if err != nil {
		t.err = err
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.err = &apiError{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
		return
	}
	t.resp = b
	w.cache.put("resp:"+t.key, &cachedResult{resp: b, events: t.events})
}

// runGuarded executes a plan, converting a panic into a 500. The shard
// goroutines are shared by every request on the shard — unlike net/http's
// per-connection goroutines — so an executor panic (a validation gap
// reaching one of the library's documented panic paths) must fail its one
// request, not kill the daemon and every in-flight job.
func runGuarded(t *task, w *worker) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &apiError{Status: http.StatusInternalServerError, Code: "internal",
				Message: fmt.Sprintf("executor panic: %v", r)}
		}
	}()
	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Progress payloads are recorded on the task (for the response cache)
	// and forwarded live to the subscriber, in emission order. The sink
	// runs on this worker goroutine only, so the slice needs no locking.
	sink := func(b []byte) {
		t.events = append(t.events, b)
		if t.onEvent != nil {
			t.onEvent(b)
		}
	}
	return t.run(context.WithValue(ctx, emitKey{}, sink), w)
}

// close shuts the pool down after in-flight work drains. Submitting after
// close returns errSchedulerClosed.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.submitters.Wait()
	for _, w := range s.workers {
		close(w.queue)
	}
	s.wg.Wait()
}

func (s *scheduler) statsSnapshot() StatsResponse {
	entries := 0
	for _, w := range s.workers {
		entries += int(w.cacheLen.Load())
	}
	return StatsResponse{
		Workers:      len(s.workers),
		ResultHits:   s.stats.resultHits.Load(),
		ResultMisses: s.stats.resultMisses.Load(),
		FamilyHits:   s.stats.familyHits.Load(),
		ChainHits:    s.stats.chainHits.Load(),
		SimHits:      s.stats.simHits.Load(),
		Deduped:      s.stats.deduped.Load(),
		SyncRejected: s.stats.syncRejected.Load(),
		CacheEntries: entries,
	}
}
