package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Per-client quota suite: token-bucket arithmetic under an injected
// clock, deterministic Retry-After jitter, bounded table size, and the
// HTTP contract (429 on work-creating endpoints only).

// fakeClock swaps the table's clock for a hand-advanced one.
func fakeClock(q *quotaTable) *time.Time {
	now := time.Unix(1_700_000_000, 0)
	q.now = func() time.Time { return now }
	return &now
}

func TestQuotaBucketSpendAndRefill(t *testing.T) {
	q := newQuotaTable(1, 2, nil)
	now := fakeClock(q)
	key := "10.0.0.1"

	for i := 0; i < 2; i++ {
		if ok, _ := q.allow(key); !ok {
			t.Fatalf("request %d within burst denied", i+1)
		}
	}
	ok, retry := q.allow(key)
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	// Empty bucket at 1 qps: one second to a token, +1 ceiling slack,
	// plus the deterministic per-client jitter.
	if want := 1 + 1 + quotaJitter(key); retry != want {
		t.Fatalf("retryAfter = %d, want %d", retry, want)
	}

	// 1.5s refills 1.5 tokens: exactly one more request fits.
	*now = now.Add(1500 * time.Millisecond)
	if ok, _ := q.allow(key); !ok {
		t.Fatal("request after refill denied")
	}
	if ok, _ := q.allow(key); ok {
		t.Fatal("second request after partial refill allowed")
	}

	// A long idle period caps at burst, never beyond.
	*now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := q.allow(key); !ok {
			t.Fatalf("request %d after long idle denied", i+1)
		}
	}
	if ok, _ := q.allow(key); ok {
		t.Fatal("burst cap not enforced after long idle")
	}
}

func TestQuotaJitterIsDeterministicPerClient(t *testing.T) {
	for _, key := range []string{"10.0.0.1", "10.0.0.2", "host"} {
		j := quotaJitter(key)
		if j < 0 || j > 2 {
			t.Fatalf("jitter(%q) = %d, want [0,3)", key, j)
		}
		if quotaJitter(key) != j {
			t.Fatalf("jitter(%q) not stable", key)
		}
	}
}

func TestQuotaTableBoundedWithDeterministicEviction(t *testing.T) {
	q := newQuotaTable(1, 1, nil)
	fakeClock(q)
	for i := 0; i < maxQuotaClients; i++ {
		q.allow(fmt.Sprintf("10.0.%d.%d", i/256, i%256))
	}
	if n := len(q.buckets); n != maxQuotaClients {
		t.Fatalf("table size %d, want %d", n, maxQuotaClients)
	}
	// Every bucket is equally drained; the tie-break evicts the smallest
	// key, deterministically.
	if ok, _ := q.allow("newcomer"); !ok {
		t.Fatal("newcomer denied at table cap")
	}
	if n := len(q.buckets); n != maxQuotaClients {
		t.Fatalf("table size %d after eviction, want %d", n, maxQuotaClients)
	}
	if _, still := q.buckets["10.0.0.0"]; still {
		t.Fatal("deterministic eviction victim (smallest key) survived")
	}
	if _, in := q.buckets["newcomer"]; !in {
		t.Fatal("newcomer not admitted")
	}
}

// The HTTP contract: work-creating endpoints (sync planning, job
// submission) shed over-quota clients with 429 + Retry-After; reads are
// never metered.
func TestQuotaHTTPSheddingAndUnmeteredReads(t *testing.T) {
	ts, srv := newTestServer(t, Options{Workers: 1, ClientQPS: 0.001, ClientBurst: 1})

	designBody := `{"switches":20,"ports":8,"networkDegree":5,"seed":1}`
	mustPost(t, ts.URL+"/v1/design", designBody)

	status, body := doPost(t, ts.URL+"/v1/design", designBody)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota sync: status %d: %s", status, body)
	}
	resp, err := http.Post(ts.URL+"/v1/design", "application/json", strings.NewReader(designBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	// Job submission is metered too...
	status, body = doPost(t, ts.URL+"/v1/jobs", `{"type":"design","request":`+designBody+`}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d: %s", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("over-quota error body %s: %v", body, err)
	}
	if eb.Error == nil || eb.Error.Code != "quota_exceeded" {
		t.Fatalf("over-quota error body: %s", body)
	}

	// ...reads never are: an exhausted client can still poll and fetch.
	if status, _ := doGet(t, ts.URL+"/v1/jobs"); status != http.StatusOK {
		t.Fatalf("job list while over quota: status %d", status)
	}
	if status, _ := doGet(t, ts.URL+"/v1/stats"); status != http.StatusOK {
		t.Fatalf("stats while over quota: status %d", status)
	}
	if got := srv.tele.quotaRejects.Value(); got < 3 {
		t.Fatalf("quota rejections = %d, want >= 3", got)
	}
}

// Quotas off (the default) means no table at all: heavy request streams
// from one client are never shed.
func TestQuotaDisabledByDefault(t *testing.T) {
	ts, srv := newTestServer(t, Options{Workers: 1})
	if srv.quota != nil {
		t.Fatal("quota table exists without ClientQPS")
	}
	designBody := `{"switches":20,"ports":8,"networkDegree":5,"seed":1}`
	for i := 0; i < 5; i++ {
		mustPost(t, ts.URL+"/v1/design", designBody)
	}
}
