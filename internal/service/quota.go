package service

import (
	"hash/fnv"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Per-client quotas: a token-bucket table keyed by client host that
// sheds abusive load with 429 before it reaches admission control or
// the shard queues. Quotas are an operator opt-in (Options.ClientQPS;
// off by default) and cover the endpoints that create work — the sync
// planning endpoints and job submission. Reads (job polls, event
// streams, metrics) stay unmetered: a client waiting on its own job
// must not be starved into never seeing it finish.
//
// Rejections carry a Retry-After hint with a small deterministic
// per-client jitter (a hash of the client host), so a herd of rejected
// clients that all honor the header does not re-arrive in one wave.
// The jitter is a function of the key, not of a random stream or the
// clock — quota behavior stays reproducible under test.

// maxQuotaClients bounds the bucket table. At the cap, admitting a new
// client evicts the fullest bucket — the client who least recently
// exhausted its quota and therefore loses the least by starting fresh.
const maxQuotaClients = 1024

type quotaBucket struct {
	tokens float64
	last   time.Time
}

// quotaTable is the shared token-bucket table. One mutex over a small
// map is plenty: the critical section is a few float ops, orders of
// magnitude cheaper than the planning work behind it.
type quotaTable struct {
	qps   float64
	burst float64
	// now is the clock, injectable so tests drive refill deterministically.
	now  func() time.Time
	tele *tele

	mu      sync.Mutex
	buckets map[string]*quotaBucket
}

func newQuotaTable(qps float64, burst int, tl *tele) *quotaTable {
	if burst <= 0 {
		burst = int(qps) + 1
	}
	return &quotaTable{
		qps:     qps,
		burst:   float64(burst),
		now:     time.Now, //jellyvet:allow determinism -- quota refill clock; load shedding, never part of a response body
		tele:    tl,
		buckets: make(map[string]*quotaBucket),
	}
}

// allow spends one token from the client's bucket, reporting whether
// the request may proceed and, if not, the Retry-After hint in seconds.
func (q *quotaTable) allow(key string) (ok bool, retryAfter int) {
	t := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b, found := q.buckets[key]
	if !found {
		if len(q.buckets) >= maxQuotaClients {
			q.evictFullestLocked()
		}
		b = &quotaBucket{tokens: q.burst, last: t}
		q.buckets[key] = b
	} else {
		b.tokens += t.Sub(b.last).Seconds() * q.qps
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = t
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	// Seconds until one token refills, plus the per-client jitter.
	wait := (1 - b.tokens) / q.qps
	return false, int(wait) + 1 + quotaJitter(key)
}

// evictFullestLocked drops the bucket with the most tokens (ties by
// smaller key, so eviction is deterministic). A full bucket belongs to
// a client that has not spent quota recently; evicting it re-admits
// them at full burst, which is indistinguishable from keeping it.
func (q *quotaTable) evictFullestLocked() {
	victim := ""
	best := -1.0
	//jellyvet:allow determinism -- max-by-(tokens,key) reduction; result independent of iteration order
	for k, b := range q.buckets {
		if b.tokens > best || (b.tokens == best && (victim == "" || k < victim)) {
			victim, best = k, b.tokens
		}
	}
	if victim != "" {
		delete(q.buckets, victim)
	}
}

// quotaJitter spreads Retry-After hints over [0,3) seconds as a pure
// function of the client key.
func quotaJitter(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % 3)
}

// clientKey extracts the quota key from a request: the client host
// without the ephemeral port, falling back to the raw RemoteAddr when
// it does not parse (test servers, unix sockets).
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// checkQuota enforces the per-client quota for a work-creating request.
// nil table (quotas disabled) always admits.
func (q *quotaTable) checkQuota(w http.ResponseWriter, r *http.Request) *apiError {
	if q == nil {
		return nil
	}
	ok, retryAfter := q.allow(clientKey(r))
	if ok {
		return nil
	}
	q.tele.quotaRejected().Inc()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	return &apiError{Status: http.StatusTooManyRequests, Code: "quota_exceeded",
		Message: "per-client request quota exceeded; honor Retry-After and slow down"}
}
