package service

import (
	"bytes"
	"net/http/httptest"
	"testing"
)

// This file is the service's determinism proof, exercised end to end:
// the same request body yields byte-identical response bytes
//
//   1. across worker counts (shard placement must not matter),
//   2. across cold and warm-cache executions (a chain-prefix or family
//      hit must reproduce exactly what a cold run computes), and
//   3. across repeated submissions (response-cache hits return the
//      original bytes).
//
// The argument for why this holds is in DESIGN.md §10: every cache entry
// is a pure function of its canonical content-digest key. These tests are
// the regression net under that argument. Run with -race in CI.

// planningSequence is a mixed workload covering every planning endpoint,
// with deliberate warm-state overlap: repeated designs, a what-if chain
// sharing a prefix with a longer one, capacity searches sharing a family.
var planningSequence = []struct{ path, body string }{
	{"/v1/design", `{"switches":20,"ports":8,"networkDegree":5,"seed":1}`},
	{"/v1/evaluate", `{"topology":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":1}},"seed":7,"trials":2}`},
	{"/v1/whatif", `{"base":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":1}},"seed":9,"scenarios":[{"failLinks":{"fraction":0.1,"seed":2}}]}`},
	{"/v1/whatif", `{"base":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":1}},"seed":9,"scenarios":[{"failLinks":{"fraction":0.1,"seed":2}},{"expand":{"switches":2,"ports":8,"networkDegree":5,"seed":3}}]}`},
	{"/v1/capacity-search", `{"switches":10,"ports":4,"trials":1,"seed":5}`},
	{"/v1/capacity-search", `{"switches":10,"ports":4,"trials":2,"seed":5}`},
	{"/v1/design", `{"switches":20,"ports":8,"networkDegree":5,"seed":1}`},
	{"/v1/evaluate", `{"topology":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":1}},"seed":7,"trials":2}`},
}

// replay runs the full planning sequence against a fresh service with the
// given worker count and returns the response bodies.
func replay(t *testing.T, workers int) [][]byte {
	t.Helper()
	srv := mustNew(t, Options{Workers: workers})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	out := make([][]byte, len(planningSequence))
	for i, req := range planningSequence {
		out[i] = mustPost(t, ts.URL+req.path, req.body)
	}
	return out
}

func TestResponsesInvariantAcrossWorkerCounts(t *testing.T) {
	base := replay(t, 1)
	for _, workers := range []int{2, 4} {
		got := replay(t, workers)
		for i := range base {
			if !bytes.Equal(got[i], base[i]) {
				t.Fatalf("workers=%d request %d (%s):\n%s\nvs workers=1:\n%s",
					workers, i, planningSequence[i].path, got[i], base[i])
			}
		}
	}
}

// Re-sending every request against the same server returns the original
// bytes from the response cache.
func TestRepeatedRequestsHitResponseCache(t *testing.T) {
	srv := mustNew(t, Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	first := make([][]byte, len(planningSequence))
	for i, req := range planningSequence {
		first[i] = mustPost(t, ts.URL+req.path, req.body)
	}
	hitsBefore := srv.sched.stats.resultHits.Load()
	for i, req := range planningSequence {
		if got := mustPost(t, ts.URL+req.path, req.body); !bytes.Equal(got, first[i]) {
			t.Fatalf("request %d: second submission changed bytes", i)
		}
	}
	if hits := srv.sched.stats.resultHits.Load() - hitsBefore; hits != int64(len(planningSequence)) {
		t.Fatalf("second pass took %d response-cache hits, want %d", hits, len(planningSequence))
	}
}

// A what-if request that extends an already-evaluated chain resumes from
// the cached prefix checkpoint — and must produce exactly the bytes a
// cold evaluation of the full chain produces.
func TestWhatIfWarmPrefixMatchesCold(t *testing.T) {
	prefix := `{"base":{"design":{"switches":24,"ports":8,"networkDegree":5,"seed":43}},"seed":47,"scenarios":[{"failLinks":{"fraction":0.08,"seed":2}}]}`
	full := `{"base":{"design":{"switches":24,"ports":8,"networkDegree":5,"seed":43}},"seed":47,"scenarios":[{"failLinks":{"fraction":0.08,"seed":2}},{"failSwitches":{"fraction":0.05,"seed":3}}]}`

	warmSrv := mustNew(t, Options{Workers: 2})
	defer warmSrv.Close()
	warmTS := httptest.NewServer(warmSrv.Handler())
	defer warmTS.Close()
	mustPost(t, warmTS.URL+"/v1/whatif", prefix)
	warm := mustPost(t, warmTS.URL+"/v1/whatif", full)
	if hits := warmSrv.sched.stats.chainHits.Load(); hits < 1 {
		t.Fatalf("chain hits = %d; the second request did not resume from the prefix checkpoint", hits)
	}

	coldSrv := mustNew(t, Options{Workers: 2})
	defer coldSrv.Close()
	coldTS := httptest.NewServer(coldSrv.Handler())
	defer coldTS.Close()
	cold := mustPost(t, coldTS.URL+"/v1/whatif", full)

	if !bytes.Equal(warm, cold) {
		t.Fatalf("warm-resumed chain differs from cold chain:\nwarm: %s\ncold: %s", warm, cold)
	}
}

// A capacity search over an inventory another search already probed
// reuses the cached topology family — and must return exactly the bytes
// a cold search returns.
func TestCapacitySearchFamilyReuseMatchesCold(t *testing.T) {
	first := `{"switches":12,"ports":4,"trials":1,"seed":53}`
	second := `{"switches":12,"ports":4,"trials":2,"seed":53}`

	warmSrv := mustNew(t, Options{Workers: 2})
	defer warmSrv.Close()
	warmTS := httptest.NewServer(warmSrv.Handler())
	defer warmTS.Close()
	mustPost(t, warmTS.URL+"/v1/capacity-search", first)
	warm := mustPost(t, warmTS.URL+"/v1/capacity-search", second)
	if hits := warmSrv.sched.stats.familyHits.Load(); hits < 1 {
		t.Fatalf("family hits = %d; the second search did not reuse the cached family", hits)
	}

	coldSrv := mustNew(t, Options{Workers: 2})
	defer coldSrv.Close()
	coldTS := httptest.NewServer(coldSrv.Handler())
	defer coldTS.Close()
	cold := mustPost(t, coldTS.URL+"/v1/capacity-search", second)

	if !bytes.Equal(warm, cold) {
		t.Fatalf("family-warm search differs from cold search:\nwarm: %s\ncold: %s", warm, cold)
	}
}
