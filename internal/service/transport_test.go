package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// Transport evaluations must be deterministic across cache states: a warm
// server (same family evaluated repeatedly, "sim:" tier hits) and a cold
// one must return byte-identical responses, for every protocol/routing
// combination.
func TestEvaluateTransportWarmVsCold(t *testing.T) {
	warmURL, warmSrv := newTestServer(t, Options{Workers: 1})
	req := func(proto, routing string, seed uint64) string {
		return `{"topology":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":4}},` +
			`"seed":` + itoa(seed) + `,"trials":3,"transport":{"protocol":"` + proto + `","routing":"` + routing + `"}}`
	}
	combos := [][2]string{{"tcp1", "ecmp8"}, {"tcp8", "ecmp64"}, {"mptcp8", "ksp8"}, {"mptcp8", ""}}
	warm := make([][]byte, len(combos))
	for round := 0; round < 2; round++ { // second round hits the sim: tier
		for i, c := range combos {
			warm[i] = mustPost(t, warmURL.URL+"/v1/evaluate", req(c[0], c[1], 9))
		}
	}
	if warmSrv.sched.stats.simHits.Load() < 1 {
		t.Fatal("repeated transport evaluations never hit the sim: tier")
	}
	coldURL, _ := newTestServer(t, Options{Workers: 4})
	for i, c := range combos {
		cold := mustPost(t, coldURL.URL+"/v1/evaluate", req(c[0], c[1], 9))
		if !bytes.Equal(warm[i], cold) {
			t.Fatalf("combo %v: warm %s != cold %s", c, warm[i], cold)
		}
	}
	// The transport plane must actually differ from the optimal solver.
	opt := mustPost(t, coldURL.URL+"/v1/evaluate",
		`{"topology":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":4}},"seed":9,"trials":3}`)
	if bytes.Equal(opt, warm[2]) {
		t.Fatal("transport evaluation returned the optimal-routing bytes")
	}
}

func TestEvaluateTransportValidation(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	code, body := doPost(t, ts.URL+"/v1/evaluate",
		`{"topology":{"design":{"switches":5,"ports":4,"networkDegree":3,"seed":1}},"transport":{"protocol":"quic"}}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "quic") {
		t.Fatalf("bad protocol: code %d body %s", code, body)
	}
	code, body = doPost(t, ts.URL+"/v1/evaluate",
		`{"topology":{"design":{"switches":5,"ports":4,"networkDegree":3,"seed":1}},"transport":{"protocol":"tcp8","routing":"rip"}}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "rip") {
		t.Fatalf("bad routing: code %d body %s", code, body)
	}
}

// What-if chains with a transport spec: every step carries the transport
// column; chain checkpoints keyed by data plane must not leak between
// transport and non-transport requests; and a resumed (chain-hit)
// evaluation is byte-identical to a cold full replay.
func TestWhatIfTransportChain(t *testing.T) {
	base := `{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":4}}`
	prefix := `{"base":` + base + `,"seed":3,"transport":{"protocol":"mptcp8"},"scenarios":[{"failLinks":{"fraction":0.05,"seed":1}}`
	full := prefix + `,{"failSwitches":{"fraction":0.1,"seed":2}}]}`

	warmURL, warmSrv := newTestServer(t, Options{Workers: 1})
	mustPost(t, warmURL.URL+"/v1/whatif", prefix+`]}`) // seeds the chain prefix
	got := mustPost(t, warmURL.URL+"/v1/whatif", full) // resumes it
	if warmSrv.sched.stats.chainHits.Load() < 1 {
		t.Fatal("extending a transport chain never hit a checkpoint")
	}
	coldURL, _ := newTestServer(t, Options{Workers: 2})
	cold := mustPost(t, coldURL.URL+"/v1/whatif", full)
	if !bytes.Equal(got, cold) {
		t.Fatalf("resumed chain differs from cold replay:\nwarm %s\ncold %s", got, cold)
	}

	var resp WhatIfResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(resp.Steps) != 3 {
		t.Fatalf("%d steps, want 3", len(resp.Steps))
	}
	for i, st := range resp.Steps {
		if st.TransportThroughput == nil {
			t.Fatalf("step %d missing transport throughput", i)
		}
		if *st.TransportThroughput < 0 || *st.TransportThroughput > 1 {
			t.Fatalf("step %d transport throughput %v outside [0,1]", i, *st.TransportThroughput)
		}
	}

	// The same chain without transport must not reuse those checkpoints'
	// steps (they embed the transport column) — and must omit the field.
	plain := mustPost(t, warmURL.URL+"/v1/whatif",
		`{"base":`+base+`,"seed":3,"scenarios":[{"failLinks":{"fraction":0.05,"seed":1}},{"failSwitches":{"fraction":0.1,"seed":2}}]}`)
	if bytes.Contains(plain, []byte("transportThroughput")) {
		t.Fatalf("non-transport chain leaked the transport column: %s", plain)
	}
}

// Admission control: with the sync limit saturated, planning endpoints
// shed load with 429 + Retry-After (and count it), the job API stays
// open, and releasing the limit restores service.
func TestSyncAdmissionControl(t *testing.T) {
	ts, srv := newTestServer(t, Options{Workers: 1, MaxSyncInflight: 1})
	design := `{"switches":5,"ports":4,"networkDegree":3,"seed":1}`

	// Occupy the single admission slot like an in-flight request would
	// (runSync acquires before scheduling, releases after writing).
	srv.syncSem <- struct{}{}
	resp, err := http.Post(ts.URL+"/v1/design", "application/json", strings.NewReader(design))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if srv.sched.stats.syncRejected.Load() != 1 {
		t.Fatalf("syncRejected = %d, want 1", srv.sched.stats.syncRejected.Load())
	}
	// The async job API is not admission-gated.
	code, _ := doPost(t, ts.URL+"/v1/jobs", `{"type":"design","request":`+design+`}`)
	if code != http.StatusAccepted {
		t.Fatalf("job submit under saturation returned %d, want 202", code)
	}
	<-srv.syncSem // release the slot
	code, _ = doPost(t, ts.URL+"/v1/design", design)
	if code != http.StatusOK {
		t.Fatalf("after release, design returned %d, want 200", code)
	}
}

// Under a concurrent overload burst, every request either succeeds or is
// cleanly rejected with 429 — admission never deadlocks or drops slots
// (each success/rejection accounted, and the server still serves after).
func TestSyncAdmissionUnderBurst(t *testing.T) {
	ts, srv := newTestServer(t, Options{Workers: 2, MaxSyncInflight: 2})
	design := `{"switches":10,"ports":6,"networkDegree":4,"seed":2}`
	const n = 16
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/design", "application/json", strings.NewReader(design))
			if err != nil {
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	ok, shed := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok == 0 {
		t.Fatal("burst: no request succeeded")
	}
	if int64(shed) != srv.sched.stats.syncRejected.Load() {
		t.Fatalf("shed %d but counter says %d", shed, srv.sched.stats.syncRejected.Load())
	}
	if code, _ := doPost(t, ts.URL+"/v1/design", design); code != http.StatusOK {
		t.Fatalf("after burst, design returned %d, want 200", code)
	}
}

func itoa(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
