package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Crash-recovery suite for the durable job store: jobs survive restarts,
// interrupted jobs re-run to byte-identical results, client
// cancellations stay cancelled, tombstones persist, and corruption is a
// refusal to start, never a silent guess.

// durableServer builds a state-backed server plus HTTP front. Unlike
// newTestServer it does NOT register cleanup — recovery tests tear down
// and restart by hand.
func durableServer(t *testing.T, dir string, opt Options) (*httptest.Server, *Server) {
	t.Helper()
	opt.StateDir = dir
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return httptest.NewServer(srv.Handler()), srv
}

const recoveryJobBody = `{"type":"capacity-search","request":{"switches":16,"ports":6,"trials":1,"seed":11}}`
const recoverySyncPath = "/v1/capacity-search"
const recoverySyncBody = `{"switches":16,"ports":6,"trials":1,"seed":11}`

func TestFinishedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts, srv := durableServer(t, dir, Options{Workers: 1})

	status, body := doPost(t, ts.URL+"/v1/jobs", recoveryJobBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if got := waitJob(t, ts.URL, v.ID); got.Status != jobSucceeded {
		t.Fatalf("job: %s", got.Status)
	}
	_, result1 := doGet(t, ts.URL+"/v1/jobs/"+v.ID+"/result")
	_, events1 := doGet(t, ts.URL+"/v1/jobs/"+v.ID+"/events")
	ts.Close()
	srv.Close()

	ts2, srv2 := durableServer(t, dir, Options{Workers: 2})
	defer func() { ts2.Close(); srv2.Close() }()
	status, body = doGet(t, ts2.URL+"/v1/jobs/"+v.ID)
	if status != http.StatusOK {
		t.Fatalf("job after restart: status %d: %s", status, body)
	}
	var v2 JobView
	if err := json.Unmarshal(body, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.Status != jobSucceeded || v2.Created != v.Created {
		t.Fatalf("job after restart: status %s created %s, want succeeded/%s", v2.Status, v2.Created, v.Created)
	}
	_, result2 := doGet(t, ts2.URL+"/v1/jobs/"+v.ID+"/result")
	if string(result1) != string(result2) {
		t.Fatalf("result changed across restart:\n before %s\n after  %s", result1, result2)
	}
	// The recovered result still matches the sync endpoint bit-for-bit.
	if sync := mustPost(t, ts2.URL+recoverySyncPath, recoverySyncBody); string(sync) != string(result2) {
		t.Fatalf("recovered job result != sync response:\n job  %s\n sync %s", result2, sync)
	}
	// And so does the replayed event stream.
	if _, events2 := doGet(t, ts2.URL+"/v1/jobs/"+v.ID+"/events"); string(events1) != string(events2) {
		t.Fatalf("event stream changed across restart:\n before %q\n after  %q", events1, events2)
	}
}

// crash simulates kill -9: detach the store FIRST, so none of the
// orderly shutdown paths (final snapshot, terminal records) can run,
// then unpark the worker and tear the server down. Whatever bytes
// Append already handed the kernel are exactly what the next boot sees.
func crash(ts *httptest.Server, srv *Server, release chan struct{}) {
	srv.jobs.pmu.Lock()
	store := srv.jobs.store
	srv.jobs.store = nil
	srv.jobs.pmu.Unlock()
	close(release)
	ts.Close()
	srv.Close()
	if store != nil {
		store.Close()
	}
}

func TestInterruptedJobRerunsAfterCrash(t *testing.T) {
	dir := t.TempDir()
	ts, srv := durableServer(t, dir, Options{Workers: 1})

	// Park the single shard worker so the submitted job is still queued
	// when the daemon "dies": its submit record is durable, its work is
	// not — the canonical mid-flight crash.
	release := make(chan struct{})
	blocked := &plan{family: "x", key: "block", run: func(ctx context.Context, w *worker) (any, error) {
		<-release
		return "done", nil
	}}
	go srv.sched.do(context.Background(), blocked, false, nil, nil)

	status, body := doPost(t, ts.URL+"/v1/jobs", recoveryJobBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	crash(ts, srv, release)

	// Boot a fresh daemon on the same state dir: the job re-runs
	// automatically and converges to the same bytes the sync endpoint
	// produces.
	ts2, srv2 := durableServer(t, dir, Options{Workers: 2})
	defer func() { ts2.Close(); srv2.Close() }()
	if got := waitJob(t, ts2.URL, v.ID); got.Status != jobSucceeded {
		t.Fatalf("recovered job: %s (error %+v)", got.Status, got.Error)
	}
	_, result := doGet(t, ts2.URL+"/v1/jobs/"+v.ID+"/result")
	if sync := mustPost(t, ts2.URL+recoverySyncPath, recoverySyncBody); string(sync) != string(result) {
		t.Fatalf("re-run job result != sync response:\n job  %s\n sync %s", result, sync)
	}
}

func TestClientCancelSticksAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ts, srv := durableServer(t, dir, Options{Workers: 1})

	release := make(chan struct{})
	blocked := &plan{family: "x", key: "block", run: func(ctx context.Context, w *worker) (any, error) {
		<-release
		return "done", nil
	}}
	go srv.sched.do(context.Background(), blocked, false, nil, nil)

	status, body := doPost(t, ts.URL+"/v1/jobs", recoveryJobBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	doPost(t, ts.URL+"/v1/jobs/"+v.ID+"/cancel", "")
	close(release)
	if got := waitJob(t, ts.URL, v.ID); got.Status != jobCancelled {
		t.Fatalf("job: %s, want cancelled", got.Status)
	}
	ts.Close()
	srv.Close()

	// A client cancellation is a journaled terminal state: the restarted
	// daemon must NOT re-run the job (unlike a shutdown interruption).
	ts2, srv2 := durableServer(t, dir, Options{Workers: 1})
	defer func() { ts2.Close(); srv2.Close() }()
	status, body = doGet(t, ts2.URL+"/v1/jobs/"+v.ID)
	if status != http.StatusOK {
		t.Fatalf("job after restart: status %d: %s", status, body)
	}
	var v2 JobView
	if err := json.Unmarshal(body, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.Status != jobCancelled {
		t.Fatalf("job after restart: %s, want cancelled", v2.Status)
	}
}

func TestEvictionTombstoneSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts, srv := durableServer(t, dir, Options{Workers: 1})
	srv.jobs.cap = 1

	status, body := doPost(t, ts.URL+"/v1/jobs", recoveryJobBody)
	if status != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", status, body)
	}
	var first JobView
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if got := waitJob(t, ts.URL, first.ID); got.Status != jobSucceeded {
		t.Fatalf("first job: %s", got.Status)
	}
	// Second submit evicts the finished first job and journals the
	// eviction.
	status, body = doPost(t, ts.URL+"/v1/jobs", recoveryJobBody)
	if status != http.StatusAccepted {
		t.Fatalf("second submit: status %d: %s", status, body)
	}
	var second JobView
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	waitJob(t, ts.URL, second.ID)
	ts.Close()
	srv.Close()

	ts2, srv2 := durableServer(t, dir, Options{Workers: 1})
	defer func() { ts2.Close(); srv2.Close() }()
	status, body = doGet(t, ts2.URL+"/v1/jobs/"+first.ID)
	if status != http.StatusGone || !strings.Contains(string(body), "job_evicted") {
		t.Fatalf("evicted job after restart: status %d body %s, want 410 job_evicted", status, body)
	}
	if got := waitJob(t, ts2.URL, second.ID); got.Status != jobSucceeded {
		t.Fatalf("second job after restart: %s", got.Status)
	}
}

func TestCorruptStoreRefusesToStart(t *testing.T) {
	dir := t.TempDir()
	ts, srv := durableServer(t, dir, Options{Workers: 1})
	status, body := doPost(t, ts.URL+"/v1/jobs", recoveryJobBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	waitJob(t, ts.URL, v.ID)
	// Tear down crash-style (no final snapshot) so the journal keeps its
	// submit/done records for corrupting.
	crash(ts, srv, make(chan struct{}))

	// Flip one payload byte mid-journal: the checksum catches it and New
	// fails loudly instead of replaying a corrupted record.
	path := filepath.Join(dir, "journal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 16 {
		t.Fatalf("journal unexpectedly small: %d bytes", len(data))
	}
	data[12] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Workers: 1, StateDir: dir}); err == nil {
		t.Fatal("New succeeded on a corrupt journal; want a loud failure")
	}
}

func TestSnapshotCompactsJournalAndCollectsBlobs(t *testing.T) {
	dir := t.TempDir()
	// SnapshotEvery=1: every record triggers a snapshot, so the journal
	// stays empty and blob GC runs constantly — maximal stress on the
	// snapshot path.
	ts, srv := durableServer(t, dir, Options{Workers: 1, SnapshotEvery: 1})
	srv.jobs.cap = 1

	var last JobView
	for i := 0; i < 3; i++ {
		status, body := doPost(t, ts.URL+"/v1/jobs", recoveryJobBody)
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, status, body)
		}
		if err := json.Unmarshal(body, &last); err != nil {
			t.Fatal(err)
		}
		waitJob(t, ts.URL, last.ID)
	}
	ts.Close()
	srv.Close()

	if fi, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot.json missing or empty after compaction: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "journal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not truncated by final snapshot: err=%v size=%d", err, fi.Size())
	}
	// Three identical jobs share one result blob and one events blob;
	// GC must have removed nothing live and kept nothing dead.
	entries, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("blob count after gc: %d (%v), want 2 (one result, one event stream)", len(entries), names)
	}

	ts2, srv2 := durableServer(t, dir, Options{Workers: 1})
	defer func() { ts2.Close(); srv2.Close() }()
	if status, _ := doGet(t, ts2.URL+"/v1/jobs/"+last.ID+"/result"); status != http.StatusOK {
		t.Fatalf("last job result after compacted restart: status %d", status)
	}
}

func TestDrainRejectsNewWorkAndFinishesJobs(t *testing.T) {
	dir := t.TempDir()
	ts, srv := durableServer(t, dir, Options{Workers: 1})

	status, body := doPost(t, ts.URL+"/v1/jobs", recoveryJobBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}

	drained := make(chan struct{})
	go func() { //jellyvet:allow determinism -- test harness goroutine
		srv.Drain(context.Background())
		close(drained)
	}()

	// Draining refuses new jobs with 503 shutting_down.
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body = doPost(t, ts.URL+"/v1/jobs", recoveryJobBody)
		if status == http.StatusServiceUnavailable {
			if !strings.Contains(string(body), "shutting_down") {
				t.Fatalf("drain submit: body %s, want shutting_down", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never started rejecting submissions (last status %d)", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	<-drained
	ts.Close()

	// The in-flight job was allowed to finish and journal before the
	// store closed: the restarted daemon serves it without re-running.
	ts2, srv2 := durableServer(t, dir, Options{Workers: 1})
	defer func() { ts2.Close(); srv2.Close() }()
	status, body = doGet(t, ts2.URL+"/v1/jobs/"+v.ID)
	if status != http.StatusOK {
		t.Fatalf("job after drain+restart: status %d: %s", status, body)
	}
	var v2 JobView
	if err := json.Unmarshal(body, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.Status != jobSucceeded {
		t.Fatalf("job after drain+restart: %s, want succeeded (drain must let it finish)", v2.Status)
	}
}
