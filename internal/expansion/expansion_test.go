package expansion

import (
	"testing"
)

func smallArcConfig() ArcConfig {
	return ArcConfig{
		SwitchPorts:     24,
		InitialServers:  120,
		InitialSwitches: 12,
		StageBudgets:    []float64{20000, 20000, 20000, 20000},
		ServersAdded:    60,
		Seed:            1,
	}
}

func TestDefaultCostModel(t *testing.T) {
	c := DefaultCostModel()
	if c.PortCost <= 0 || c.CableCost <= 0 || c.RewireCost <= 0 {
		t.Fatalf("cost model has non-positive entries: %+v", c)
	}
	if c.SwitchCost(48) != 48*c.PortCost {
		t.Fatal("switch cost wrong")
	}
}

func TestJellyfishArcShape(t *testing.T) {
	stages := JellyfishArc(smallArcConfig())
	if len(stages) != 5 {
		t.Fatalf("stages = %d, want 5", len(stages))
	}
	if stages[0].Servers != 120 {
		t.Fatalf("initial servers = %d, want 120", stages[0].Servers)
	}
	// Stage 1 adds servers.
	if stages[1].Servers <= stages[0].Servers {
		t.Fatalf("stage 1 did not add servers: %d -> %d", stages[0].Servers, stages[1].Servers)
	}
	// Later stages add only switches.
	for i := 2; i < len(stages); i++ {
		if stages[i].Servers != stages[1].Servers {
			t.Fatalf("stage %d changed servers: %d", i, stages[i].Servers)
		}
		if stages[i].Switches < stages[i-1].Switches {
			t.Fatalf("stage %d lost switches", i)
		}
	}
}

func TestJellyfishArcBudgetsRespected(t *testing.T) {
	// Switch-only stages must respect their budgets; the server-adding
	// stage is a mandatory purchase (both designs) and may exceed it.
	cfg := smallArcConfig().withDefaults()
	stages := JellyfishArc(cfg)
	for i, s := range stages[1:] {
		if i+1 == cfg.ServersAddedStage {
			continue
		}
		if s.Spent > cfg.StageBudgets[i]+1e-9 {
			t.Fatalf("stage %d overspent: %v > %v", i+1, s.Spent, cfg.StageBudgets[i])
		}
	}
}

func TestJellyfishArcBisectionImproves(t *testing.T) {
	stages := JellyfishArc(smallArcConfig())
	first, last := stages[1], stages[len(stages)-1]
	// Adding switch-only capacity must not reduce bisection materially.
	if last.NormalizedBisection < first.NormalizedBisection {
		t.Fatalf("bisection fell across switch-only stages: %v -> %v",
			first.NormalizedBisection, last.NormalizedBisection)
	}
}

func TestClosArcShape(t *testing.T) {
	stages := ClosArc(smallArcConfig())
	if len(stages) != 5 {
		t.Fatalf("stages = %d, want 5", len(stages))
	}
	if stages[0].Servers != 120 {
		t.Fatalf("initial servers = %d, want 120", stages[0].Servers)
	}
	for i, s := range stages {
		if s.NormalizedBisection < 0 || s.NormalizedBisection > 1 {
			t.Fatalf("stage %d bisection %v out of [0,1]", i, s.NormalizedBisection)
		}
	}
}

func TestClosArcBudgetsRespected(t *testing.T) {
	cfg := smallArcConfig().withDefaults()
	stages := ClosArc(cfg)
	for i, s := range stages[1:] {
		if i+1 == cfg.ServersAddedStage {
			continue // mandatory server purchase
		}
		if s.Spent > cfg.StageBudgets[i]+1e-9 {
			t.Fatalf("stage %d overspent: %v > %v", i+1, s.Spent, cfg.StageBudgets[i])
		}
	}
}

// Fig. 7's headline: at matched per-stage budgets, Jellyfish's bisection
// exceeds the Clos upgrader's at every post-expansion stage.
func TestJellyfishBeatsClosArc(t *testing.T) {
	cfg := smallArcConfig()
	jf := JellyfishArc(cfg)
	clos := ClosArc(cfg)
	wins := 0
	for i := 1; i < len(jf); i++ {
		if jf[i].NormalizedBisection >= clos[i].NormalizedBisection {
			wins++
		}
	}
	if wins < len(jf)-2 {
		t.Fatalf("jellyfish won only %d/%d stages", wins, len(jf)-1)
	}
	last := len(jf) - 1
	if jf[last].NormalizedBisection <= clos[last].NormalizedBisection {
		t.Fatalf("final stage: jellyfish %v <= clos %v",
			jf[last].NormalizedBisection, clos[last].NormalizedBisection)
	}
}

func TestArcDefaultsApplied(t *testing.T) {
	cfg := ArcConfig{}.withDefaults()
	if cfg.SwitchPorts != 24 || cfg.InitialServers != 480 || cfg.InitialSwitches != 34 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if len(cfg.StageBudgets) != 8 {
		t.Fatalf("default budgets = %d, want 8", len(cfg.StageBudgets))
	}
}

func TestArcDeterministic(t *testing.T) {
	a := JellyfishArc(smallArcConfig())
	b := JellyfishArc(smallArcConfig())
	for i := range a {
		if a[i].NormalizedBisection != b[i].NormalizedBisection || a[i].Switches != b[i].Switches {
			t.Fatal("same seed produced different arcs")
		}
	}
}

func TestClosBuildValid(t *testing.T) {
	cfg := smallArcConfig().withDefaults()
	c := newClos(cfg, cfg.SwitchPorts)
	top := c.build()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.NumServers() < cfg.InitialServers {
		t.Fatalf("clos carries %d servers, want >= %d", top.NumServers(), cfg.InitialServers)
	}
}
