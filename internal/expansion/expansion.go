// Package expansion implements the incremental-growth machinery of §4.2:
// staged, budget-constrained expansion arcs for Jellyfish and for a
// LEGUP-like Clos upgrader (the paper compares against LEGUP [14], which is
// closed-source; DESIGN.md §8 documents the substitution), under a shared
// cost model for switches, cables, and rewiring.
package expansion

import (
	"fmt"

	"jellyfish/internal/bisection"
	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

// CostModel prices the equipment and labor charged to both designs.
// The defaults follow the ballpark figures of §6: ~$100/port switches,
// $5-6/m electrical cables (~$60 per installed cable including labor), and
// rewiring charged per cable end moved.
type CostModel struct {
	PortCost   float64 // dollars per switch port purchased
	CableCost  float64 // dollars per new cable installed
	RewireCost float64 // dollars per existing cable moved or removed
}

// DefaultCostModel returns the cost model used by the Fig. 7 reproduction.
func DefaultCostModel() CostModel {
	return CostModel{PortCost: 100, CableCost: 60, RewireCost: 30}
}

// SwitchCost prices one k-port switch.
func (c CostModel) SwitchCost(k int) float64 { return float64(k) * c.PortCost }

// A Stage records one point of an expansion arc.
type Stage struct {
	Index               int
	Budget              float64 // budget available for this stage's purchases
	Spent               float64
	CumulativeCost      float64
	Servers             int
	Switches            int
	NormalizedBisection float64
}

// ArcConfig describes the Fig. 7 scenario: an initial network, one stage
// that adds servers, then switch-only stages, all under per-stage budgets.
type ArcConfig struct {
	SwitchPorts       int // port count of every switch (default 48)
	InitialServers    int // default 480
	InitialSwitches   int // default 34
	StageBudgets      []float64
	ServersAddedStage int // stage index that adds servers (default 1)
	ServersAdded      int // default 240
	Seed              uint64
	Cost              CostModel
}

func (c ArcConfig) withDefaults() ArcConfig {
	if c.SwitchPorts == 0 {
		c.SwitchPorts = 24
	}
	if c.InitialServers == 0 {
		c.InitialServers = 480
	}
	if c.InitialSwitches == 0 {
		c.InitialSwitches = 34
	}
	if len(c.StageBudgets) == 0 {
		c.StageBudgets = []float64{60000, 60000, 60000, 60000, 60000, 60000, 60000, 60000}
	}
	if c.ServersAdded == 0 {
		c.ServersAdded = 240
	}
	if c.ServersAddedStage == 0 {
		c.ServersAddedStage = 1
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel()
	}
	return c
}

// measuredBisection computes the server-normalized bisection of an explicit
// topology with a KL heuristic cut balanced by attached servers.
func measuredBisection(t *topology.Topology, src *rng.Source) float64 {
	cut, _ := bisection.KLBisection(t.Graph, t.Servers, 4, src)
	servers := t.NumServers()
	if servers == 0 {
		return 0
	}
	norm := float64(cut) / (float64(servers) / 2)
	if norm > 1 {
		norm = 1 // a network cannot deliver more than NIC rate per server
	}
	return norm
}

// JellyfishArc runs the staged expansion for Jellyfish: each stage buys as
// many switches as the budget allows (switch + cable + rewire costs) and
// splices them in randomly; the designated stage also spreads the new
// servers over the new switches.
func JellyfishArc(cfg ArcConfig) []Stage {
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed).Split("jellyfish-arc")
	k := cfg.SwitchPorts

	perSwitch := (cfg.InitialServers + cfg.InitialSwitches - 1) / cfg.InitialSwitches
	ports := make([]int, cfg.InitialSwitches)
	servers := make([]int, cfg.InitialSwitches)
	left := cfg.InitialServers
	for i := range ports {
		ports[i] = k
		s := perSwitch
		if s > left {
			s = left
		}
		servers[i] = s
		left -= s
	}
	top := topology.JellyfishHeterogeneous(ports, servers, src.Split("initial"))

	stages := make([]Stage, 0, len(cfg.StageBudgets)+1)
	cumulative := initialCost(top, cfg.Cost)
	stages = append(stages, Stage{
		Index: 0, Budget: 0, Spent: cumulative, CumulativeCost: cumulative,
		Servers: top.NumServers(), Switches: top.NumSwitches(),
		NormalizedBisection: measuredBisection(top, src.SplitN("bisect", 0)),
	})

	for si, budget := range cfg.StageBudgets {
		spent := 0.0
		// Unit cost of splicing in one switch: the switch itself, r new
		// cables, and r/2 removed cables' labor.
		r := k // network degree for a server-free switch
		serversThisStage := 0
		if si+1 == cfg.ServersAddedStage {
			serversThisStage = cfg.ServersAdded
		}
		newSwitches := 0
		for {
			deg := r
			sv := 0
			if serversThisStage > 0 {
				sv = perSwitch
				if sv > serversThisStage {
					sv = serversThisStage
				}
				deg = k - sv
			}
			unit := cfg.Cost.SwitchCost(k) +
				float64(deg)*cfg.Cost.CableCost +
				float64(deg/2)*cfg.Cost.RewireCost +
				float64(sv)*cfg.Cost.CableCost // server cables
			// Server racks are mandatory purchases (the scenario fixes the
			// server count per stage for both designs); pure network
			// capacity stops at the budget.
			if sv == 0 && spent+unit > budget {
				break
			}
			topology.ExpandJellyfish(top, 1, k, deg, src.SplitN(fmt.Sprintf("stage%d", si), newSwitches))
			top.Servers[top.NumSwitches()-1] = sv
			serversThisStage -= sv
			spent += unit
			newSwitches++
		}
		cumulative += spent
		stages = append(stages, Stage{
			Index: si + 1, Budget: budget, Spent: spent, CumulativeCost: cumulative,
			Servers: top.NumServers(), Switches: top.NumSwitches(),
			NormalizedBisection: measuredBisection(top, src.SplitN("bisect", si+1)),
		})
	}
	return stages
}

// ClosArc runs the staged expansion for the LEGUP-like Clos design: a
// two-level folded Clos (ToRs + aggregation) that must preserve Clos
// structure at every stage. Like LEGUP it reserves a fraction of
// aggregation ports free for future expansion, and pays rewiring costs to
// re-spread ToR uplinks evenly whenever the aggregation layer grows.
func ClosArc(cfg ArcConfig) []Stage {
	cfg = cfg.withDefaults()
	k := cfg.SwitchPorts

	c := newClos(cfg, k)
	stages := make([]Stage, 0, len(cfg.StageBudgets)+1)
	top := c.build()
	cumulative := initialCost(top, cfg.Cost)
	stages = append(stages, Stage{
		Index: 0, Spent: cumulative, CumulativeCost: cumulative,
		Servers: top.NumServers(), Switches: top.NumSwitches(),
		NormalizedBisection: c.normalizedBisection(),
	})

	for si, budget := range cfg.StageBudgets {
		spent := 0.0
		if si+1 == cfg.ServersAddedStage {
			spent += c.addServers(cfg.ServersAdded, cfg.Cost, budget)
		}
		// Buy aggregation switches with the remaining budget. Each new agg
		// switch requires re-spreading every ToR's uplinks (rewiring cost
		// proportional to the uplinks moved) — the structural tax of Clos.
		for {
			moved := c.uplinksMovedByAggGrowth()
			unit := cfg.Cost.SwitchCost(k) +
				float64(c.newCablesForAgg())*cfg.Cost.CableCost +
				float64(moved)*cfg.Cost.RewireCost
			if spent+unit > budget {
				break
			}
			c.aggSwitches++
			spent += unit
		}
		cumulative += spent
		top = c.build()
		stages = append(stages, Stage{
			Index: si + 1, Budget: budget, Spent: spent, CumulativeCost: cumulative,
			Servers: top.NumServers(), Switches: top.NumSwitches(),
			NormalizedBisection: c.normalizedBisection(),
		})
	}
	return stages
}

// clos models a two-level folded-Clos under expansion.
type clos struct {
	k           int // ports per switch
	torSwitches int
	aggSwitches int
	serversPer  int // servers per ToR (max)
	servers     int // total servers carried
	reserveFrac float64
	extraTors   int // ToRs added later (server expansion)
}

func newClos(cfg ArcConfig, k int) *clos {
	c := &clos{k: k, reserveFrac: 0.25, servers: cfg.InitialServers}
	// Split the initial switches between ToR and aggregation so the initial
	// bisection is maximized subject to carrying all servers: ToRs carry
	// ceil(servers/torCount) servers each; uplinks use the rest.
	best := -1.0
	for tors := cfg.InitialSwitches - 1; tors >= cfg.InitialSwitches/2; tors-- {
		aggs := cfg.InitialSwitches - tors
		per := (cfg.InitialServers + tors - 1) / tors
		if per >= k {
			continue
		}
		uplinks := min(k-per, aggs*k/tors)
		bis := float64(tors*uplinks) / 2
		if bis > best {
			best = bis
			c.torSwitches, c.aggSwitches, c.serversPer = tors, aggs, per
		}
	}
	if c.torSwitches == 0 {
		c.torSwitches = cfg.InitialSwitches * 3 / 4
		c.aggSwitches = cfg.InitialSwitches - c.torSwitches
		c.serversPer = (cfg.InitialServers + c.torSwitches - 1) / c.torSwitches
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// uplinksPerTor returns how many uplinks each ToR can run: limited by its
// own free ports and by the aggregation capacity remaining after LEGUP-like
// port reservation.
func (c *clos) uplinksPerTor() int {
	own := c.k - c.serversPer
	tors := c.torSwitches + c.extraTors
	aggCapacity := int(float64(c.aggSwitches*c.k) * (1 - c.reserveFrac))
	fromAgg := aggCapacity / tors
	return min(own, fromAgg)
}

// normalizedBisection returns the Clos's server-normalized bisection
// analytically: a two-level folded Clos with U uplinks per ToR and S
// servers per ToR delivers U/S of NIC rate across any balanced server
// split (parallel ToR-agg cables counted exactly, unlike the simple-graph
// rendering of build). This credits the Clos with ideal internal routing.
func (c *clos) normalizedBisection() float64 {
	if c.serversPer == 0 {
		return 0
	}
	norm := float64(c.uplinksPerTor()) / float64(c.serversPer)
	if norm > 1 {
		return 1
	}
	return norm
}

func (c *clos) uplinksMovedByAggGrowth() int {
	// Growing the agg layer re-spreads all ToR uplinks; charge half of them
	// as moved cable-ends.
	return (c.torSwitches + c.extraTors) * c.uplinksPerTor() / 2
}

func (c *clos) newCablesForAgg() int {
	return int(float64(c.k) * (1 - c.reserveFrac))
}

// addServers buys the ToRs needed for extra servers (a mandatory purchase,
// mirroring the Jellyfish arc) and returns the amount spent.
func (c *clos) addServers(servers int, cost CostModel, budget float64) float64 {
	spent := 0.0
	for servers > 0 {
		sv := min(c.serversPer, servers)
		unit := cost.SwitchCost(c.k) +
			float64(c.uplinksPerTor())*cost.CableCost +
			float64(sv)*cost.CableCost
		c.extraTors++
		c.servers += sv
		servers -= sv
		spent += unit
	}
	_ = budget
	return spent
}

// build materializes the Clos as an explicit topology: each ToR spreads its
// uplinks round-robin over the aggregation switches.
func (c *clos) build() *topology.Topology {
	tors := c.torSwitches + c.extraTors
	n := tors + c.aggSwitches
	t := &topology.Topology{
		Name:    fmt.Sprintf("clos(tors=%d,aggs=%d)", tors, c.aggSwitches),
		Graph:   graph.New(n),
		Ports:   make([]int, n),
		Servers: make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.Ports[i] = c.k
	}
	up := c.uplinksPerTor()
	aggUsed := make([]int, c.aggSwitches)
	aggCap := int(float64(c.k) * (1 - c.reserveFrac))
	next := 0
	remaining := c.servers
	for tor := 0; tor < tors; tor++ {
		t.Servers[tor] = min(c.serversPer, remaining)
		remaining -= t.Servers[tor]
		placed := 0
		for tries := 0; placed < up && tries < c.aggSwitches; tries++ {
			agg := next % c.aggSwitches
			next++
			if aggUsed[agg] >= aggCap {
				continue
			}
			if t.Graph.AddEdge(tor, tors+agg) {
				aggUsed[agg]++
				placed++
			}
		}
	}
	return t
}

func initialCost(t *topology.Topology, cost CostModel) float64 {
	return float64(t.TotalPorts())*cost.PortCost +
		float64(t.NumLinks()+t.NumServers())*cost.CableCost
}
