package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJainFairnessEqual(t *testing.T) {
	if f := JainFairness([]float64{5, 5, 5, 5}); f != 1 {
		t.Fatalf("fairness = %v, want 1", f)
	}
}

func TestJainFairnessSkewed(t *testing.T) {
	// One user gets everything: index = 1/n.
	f := JainFairness([]float64{1, 0, 0, 0})
	if math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("fairness = %v, want 0.25", f)
	}
}

func TestJainFairnessEmptyAndZero(t *testing.T) {
	if JainFairness(nil) != 1 {
		t.Fatal("empty fairness != 1")
	}
	if JainFairness([]float64{0, 0}) != 1 {
		t.Fatal("all-zero fairness != 1")
	}
}

func TestJainFairnessBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = math.Abs(math.Mod(x, 100))
				if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
					xs[i] = 1
				}
			}
		}
		j := JainFairness(xs)
		if len(xs) == 0 {
			return j == 1
		}
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.N != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestRankAscendingDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	out := RankAscending(in)
	if in[0] != 3 {
		t.Fatal("input mutated")
	}
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("rank = %v", out)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if p := Percentile(xs, 50); p != 50 {
		t.Fatalf("P50 = %v, want 50", p)
	}
	if p := Percentile(xs, 100); p != 100 {
		t.Fatalf("P100 = %v, want 100", p)
	}
	if p := Percentile(xs, 1); p != 10 {
		t.Fatalf("P1 = %v, want 10", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile != 0")
	}
}

func TestClamp01(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.7, 0.7}, {1, 1}, {1.3, 1},
	} {
		if got := Clamp01(tc.in); got != tc.want {
			t.Fatalf("Clamp01(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
