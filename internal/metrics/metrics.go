// Package metrics provides the summary statistics the paper reports:
// Jain's fairness index over flow throughputs, normalized-throughput
// aggregation, and distribution helpers for the rank plots (Figs. 9, 13).
package metrics

import (
	"math"
	"sort"
)

// JainFairness returns Jain's fairness index (Σx)²/(n·Σx²) over the given
// nonnegative values; 1 means perfectly fair. Returns 1 for empty input.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	// The index is scale-invariant; normalize by the maximum to avoid
	// overflow on extreme inputs.
	max := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if max == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		v := x / max
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Summary holds the average / minimum / maximum of a sample, the shape
// reported by the paper's stability plot (Fig. 12).
type Summary struct {
	Mean, Min, Max float64
	N              int
}

// Summarize computes a Summary. Empty input yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1), N: len(xs)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	return s
}

// RankAscending returns the values sorted ascending — the x-axis ordering
// of the paper's rank plots (per-flow throughput in Fig. 13, per-link path
// counts in Fig. 9).
func RankAscending(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// Percentile returns the p-th percentile (0..100) of the sample using
// nearest-rank on a sorted copy. Empty input returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := RankAscending(xs)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Clamp01 clamps x into [0,1] — normalized throughput can exceed 1 on
// overprovisioned networks but a server cannot exceed its NIC rate.
func Clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
