// Package faultinject is jellyfishd's deterministic failpoint registry
// (DESIGN.md §16). Production code declares named sites at the places
// that can actually fail — journal appends, snapshot renames, blob
// writes, scheduler dequeues, SSE frame writes, capacity-search trial
// boundaries — and a fault *schedule* activated at process start (or
// per-test) decides which hits of which sites fail, and how.
//
// The schedule grammar is a comma-separated list of entries:
//
//	site:trigger[-count]:shape
//
// where trigger is the 1-based hit number at which the site starts
// firing, count is how many consecutive hits fire (omitted = forever),
// and shape is one of:
//
//	enospc     return an error wrapping syscall.ENOSPC
//	eio        return an error wrapping syscall.EIO
//	err        return ErrInjected
//	shortwrite return an error wrapping io.ErrShortWrite; write sites
//	           additionally truncate the write partway (Fault.ShortWrite)
//	panic      panic with a recognizable faultinject message
//	stall      sleep StallDuration, then continue normally
//
// Example: "persist.append:3-2:enospc,sse.write:1:err" makes the 3rd
// and 4th journal appends fail with ENOSPC and every SSE frame write
// fail with ErrInjected.
//
// Determinism: hit counting is per-site and per-activation, so a fixed
// schedule against a fixed request sequence fires at exactly the same
// operations every run. When no schedule is active every entry point is
// a single atomic load returning the zero value — no locks, no
// allocations, no branches taken — which is what keeps the registry
// jellyvet-clean and admissible near (never inside, see the
// faultconfine analyzer) deterministic hot loops.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected is the error returned by the generic "err" shape.
var ErrInjected = errors.New("faultinject: injected fault")

// StallDuration is how long the "stall" shape sleeps. It is a variable
// so tests can shrink it; production schedules use the default.
var StallDuration = 50 * time.Millisecond

// A Fault describes one firing of a failpoint.
type Fault struct {
	// Err is non-nil for the error shapes (enospc, eio, err,
	// shortwrite). It wraps the corresponding sentinel.
	Err error
	// ShortWrite marks the shortwrite shape: write sites should write
	// a truncated prefix before returning Err, exercising torn-write
	// recovery instead of clean failure.
	ShortWrite bool
	// Panic marks the panic shape: the site (or Fire on its behalf)
	// must panic.
	Panic bool
	// Stall marks the stall shape: the site (or Fire) sleeps
	// StallDuration and then proceeds normally.
	Stall bool
	site  string
}

// PanicMessage is the value a panic-shape firing panics with;
// recover handlers can match the prefix to recognize injected panics.
func (f Fault) PanicMessage() string {
	return "faultinject: injected panic at " + f.site
}

type rule struct {
	from  uint64 // 1-based hit number of the first firing
	count uint64 // firings; 0 = forever
	shape string
	hits  atomic.Uint64
}

type registry struct {
	rules map[string][]*rule
}

var (
	active atomic.Pointer[registry]
	fires  atomic.Uint64
)

// Enabled reports whether a fault schedule is active. It is the
// disabled-fast-path guard: a single atomic load.
func Enabled() bool { return active.Load() != nil }

// FireCount returns the number of failpoint firings since process
// start (across activations); bridged into /metrics by the service.
func FireCount() uint64 { return fires.Load() }

// Hit records one hit of the named site and reports whether a
// scheduled fault fires on it. When no schedule is active it is a
// single atomic load. Sites with special behavior (short writes)
// inspect the returned Fault; plain sites can use Fire instead.
func Hit(site string) (Fault, bool) {
	reg := active.Load()
	if reg == nil {
		return Fault{}, false
	}
	rules := reg.rules[site]
	if len(rules) == 0 {
		return Fault{}, false
	}
	var firing *rule
	for _, r := range rules {
		// Every rule counts every hit of its site, even when an
		// earlier rule fires on it — otherwise later rules' triggers
		// would drift by the number of earlier firings.
		n := r.hits.Add(1)
		if n < r.from || (r.count != 0 && n >= r.from+r.count) {
			continue
		}
		if firing == nil {
			firing = r
		}
	}
	if firing == nil {
		return Fault{}, false
	}
	fires.Add(1)
	return makeFault(site, firing.shape), true
}

// Fire is the convenience form of Hit for sites without special write
// semantics: it panics on the panic shape, sleeps on the stall shape,
// and otherwise returns the fault's error (nil when nothing fires).
func Fire(site string) error {
	f, ok := Hit(site)
	if !ok {
		return nil
	}
	if f.Panic {
		panic(f.PanicMessage())
	}
	if f.Stall {
		time.Sleep(StallDuration)
		return nil
	}
	return f.Err
}

func makeFault(site, shape string) Fault {
	f := Fault{site: site}
	switch shape {
	case "enospc":
		f.Err = fmt.Errorf("faultinject: %s: %w", site, syscall.ENOSPC)
	case "eio":
		f.Err = fmt.Errorf("faultinject: %s: %w", site, syscall.EIO)
	case "err":
		f.Err = fmt.Errorf("faultinject: %s: %w", site, ErrInjected)
	case "shortwrite":
		f.Err = fmt.Errorf("faultinject: %s: %w", site, io.ErrShortWrite)
		f.ShortWrite = true
	case "panic":
		f.Panic = true
	case "stall":
		f.Stall = true
	}
	return f
}

var validShapes = map[string]bool{
	"enospc": true, "eio": true, "err": true,
	"shortwrite": true, "panic": true, "stall": true,
}

// Activate parses a schedule and installs it, returning a deactivate
// function. Exactly one schedule may be active at a time; activating
// over a live schedule is an error (tests defer the deactivate).
func Activate(schedule string) (func(), error) {
	reg, err := parse(schedule)
	if err != nil {
		return nil, err
	}
	if !active.CompareAndSwap(nil, reg) {
		return nil, errors.New("faultinject: a schedule is already active")
	}
	return func() { active.CompareAndSwap(reg, nil) }, nil
}

func parse(schedule string) (*registry, error) {
	reg := &registry{rules: make(map[string][]*rule)}
	entries := strings.Split(schedule, ",")
	if strings.TrimSpace(schedule) == "" {
		return nil, errors.New("faultinject: empty schedule")
	}
	for _, e := range entries {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		// site names may themselves contain dots but not colons.
		parts := strings.Split(e, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("faultinject: entry %q: want site:trigger[-count]:shape", e)
		}
		site, trig, shape := parts[0], parts[1], parts[2]
		if site == "" {
			return nil, fmt.Errorf("faultinject: entry %q: empty site", e)
		}
		if !validShapes[shape] {
			return nil, fmt.Errorf("faultinject: entry %q: unknown shape %q", e, shape)
		}
		r := &rule{count: 0, shape: shape}
		trigStr, countStr, hasCount := strings.Cut(trig, "-")
		from, err := strconv.ParseUint(trigStr, 10, 64)
		if err != nil || from == 0 {
			return nil, fmt.Errorf("faultinject: entry %q: trigger must be a positive hit number", e)
		}
		r.from = from
		if hasCount {
			count, err := strconv.ParseUint(countStr, 10, 64)
			if err != nil || count == 0 {
				return nil, fmt.Errorf("faultinject: entry %q: count must be a positive firing count", e)
			}
			r.count = count
		}
		reg.rules[site] = append(reg.rules[site], r)
	}
	if len(reg.rules) == 0 {
		return nil, errors.New("faultinject: empty schedule")
	}
	return reg, nil
}
