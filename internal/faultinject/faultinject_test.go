package faultinject

import (
	"errors"
	"io"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestDisabledIsInert(t *testing.T) {
	if Enabled() {
		t.Fatal("no schedule active, Enabled() = true")
	}
	if f, ok := Hit("persist.append"); ok {
		t.Fatalf("Hit fired with no schedule: %+v", f)
	}
	if err := Fire("persist.append"); err != nil {
		t.Fatalf("Fire with no schedule: %v", err)
	}
}

func TestTriggerWindow(t *testing.T) {
	deactivate, err := Activate("persist.append:3-2:enospc")
	if err != nil {
		t.Fatal(err)
	}
	defer deactivate()
	if !Enabled() {
		t.Fatal("Enabled() = false with active schedule")
	}
	var fired []int
	for i := 1; i <= 6; i++ {
		if _, ok := Hit("persist.append"); ok {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("fired on hits %v, want [3 4]", fired)
	}
}

func TestForeverWhenCountOmitted(t *testing.T) {
	deactivate, err := Activate("sse.write:2:err")
	if err != nil {
		t.Fatal(err)
	}
	defer deactivate()
	if err := Fire("sse.write"); err != nil {
		t.Fatalf("hit 1 fired: %v", err)
	}
	for i := 2; i <= 5; i++ {
		if err := Fire("sse.write"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
		}
	}
}

func TestShapes(t *testing.T) {
	deactivate, err := Activate("a:1:enospc,b:1:eio,c:1:shortwrite")
	if err != nil {
		t.Fatal(err)
	}
	defer deactivate()
	f, ok := Hit("a")
	if !ok || !errors.Is(f.Err, syscall.ENOSPC) {
		t.Fatalf("enospc shape: %+v ok=%v", f, ok)
	}
	f, ok = Hit("b")
	if !ok || !errors.Is(f.Err, syscall.EIO) {
		t.Fatalf("eio shape: %+v ok=%v", f, ok)
	}
	f, ok = Hit("c")
	if !ok || !f.ShortWrite || !errors.Is(f.Err, io.ErrShortWrite) {
		t.Fatalf("shortwrite shape: %+v ok=%v", f, ok)
	}
}

func TestPanicShape(t *testing.T) {
	deactivate, err := Activate("capsearch.trial:1:panic")
	if err != nil {
		t.Fatal(err)
	}
	defer deactivate()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Fire did not panic")
		}
		msg, _ := r.(string)
		if !strings.HasPrefix(msg, "faultinject: injected panic at capsearch.trial") {
			t.Fatalf("panic value %v", r)
		}
	}()
	_ = Fire("capsearch.trial")
}

func TestStallShape(t *testing.T) {
	old := StallDuration
	StallDuration = 10 * time.Millisecond
	defer func() { StallDuration = old }()
	deactivate, err := Activate("sched.worker.stall:1:stall")
	if err != nil {
		t.Fatal(err)
	}
	defer deactivate()
	start := time.Now()
	if err := Fire("sched.worker.stall"); err != nil {
		t.Fatalf("stall returned error: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("stall slept %v, want >= 10ms", d)
	}
}

func TestUnknownSiteNeverFires(t *testing.T) {
	deactivate, err := Activate("persist.append:1:err")
	if err != nil {
		t.Fatal(err)
	}
	defer deactivate()
	if err := Fire("persist.snapshot.rename"); err != nil {
		t.Fatalf("unscheduled site fired: %v", err)
	}
}

func TestDoubleActivateRejected(t *testing.T) {
	deactivate, err := Activate("a:1:err")
	if err != nil {
		t.Fatal(err)
	}
	defer deactivate()
	if _, err := Activate("b:1:err"); err == nil {
		t.Fatal("second Activate succeeded over a live schedule")
	}
}

func TestDeterministicAcrossActivations(t *testing.T) {
	run := func() []int {
		deactivate, err := Activate("x:2-3:err")
		if err != nil {
			t.Fatal(err)
		}
		defer deactivate()
		var fired []int
		for i := 1; i <= 8; i++ {
			if _, ok := Hit("x"); ok {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs differ: %v vs %v", a, b)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"persist.append",
		"persist.append:1",
		"persist.append:0:err",
		"persist.append:1-0:err",
		"persist.append:one:err",
		"persist.append:1:explode",
		":1:err",
		"a:1:err,b:bad:err",
	}
	for _, s := range bad {
		if _, err := Activate(s); err == nil {
			t.Fatalf("Activate(%q) accepted a bad schedule", s)
		}
	}
}

func TestMultipleRulesSameSite(t *testing.T) {
	deactivate, err := Activate("s:1-1:err,s:3-1:enospc")
	if err != nil {
		t.Fatal(err)
	}
	defer deactivate()
	if err := Fire("s"); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 1: %v", err)
	}
	if err := Fire("s"); err != nil {
		t.Fatalf("hit 2: %v", err)
	}
	if err := Fire("s"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("hit 3: %v", err)
	}
}
