package traffic

import (
	"math"
	"testing"

	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

func serverSwitchesFor(t *testing.T, n, k, r int, seed uint64) []int {
	t.Helper()
	top := topology.Jellyfish(n, k, r, rng.New(seed))
	return top.ServerSwitches()
}

func TestRandomPermutationIsDerangement(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		ss := serverSwitchesFor(t, 10, 6, 3, seed)
		p := RandomPermutation(ss, rng.New(seed))
		if len(p.Flows) != len(ss) {
			t.Fatalf("flows = %d, want %d", len(p.Flows), len(ss))
		}
		seen := make([]bool, len(ss))
		for _, f := range p.Flows {
			if f.SrcServer == f.DstServer {
				t.Fatalf("seed %d: fixed point at server %d", seed, f.SrcServer)
			}
			if seen[f.DstServer] {
				t.Fatalf("seed %d: server %d receives twice", seed, f.DstServer)
			}
			seen[f.DstServer] = true
			if f.SrcSwitch != ss[f.SrcServer] || f.DstSwitch != ss[f.DstServer] {
				t.Fatal("switch annotation wrong")
			}
		}
	}
}

func TestDerangementSmall(t *testing.T) {
	for n := 2; n <= 6; n++ {
		for seed := uint64(0); seed < 30; seed++ {
			d := derangement(n, rng.New(seed))
			seen := make([]bool, n)
			for i, v := range d {
				if i == v {
					t.Fatalf("n=%d seed=%d: fixed point %d", n, seed, i)
				}
				if v < 0 || v >= n || seen[v] {
					t.Fatalf("n=%d seed=%d: not a permutation: %v", n, seed, d)
				}
				seen[v] = true
			}
		}
	}
}

func TestDerangementSingleServer(t *testing.T) {
	if d := derangement(1, rng.New(1)); len(d) != 1 {
		t.Fatal("derangement(1) wrong length")
	}
}

func TestCommoditiesAggregate(t *testing.T) {
	// 3 servers on switch 0, 3 on switch 1; force all flows 0→1.
	ss := []int{0, 0, 0, 1, 1, 1}
	p := &Pattern{ServerSwitch: ss}
	for s := 0; s < 3; s++ {
		p.Flows = append(p.Flows, Flow{SrcServer: s, DstServer: s + 3, SrcSwitch: 0, DstSwitch: 1})
	}
	comms := p.Commodities()
	if len(comms) != 1 {
		t.Fatalf("commodities = %d, want 1 aggregated", len(comms))
	}
	if comms[0].Src != 0 || comms[0].Dst != 1 || comms[0].Demand != 3 {
		t.Fatalf("commodity = %+v", comms[0])
	}
}

func TestCommoditiesTotalDemand(t *testing.T) {
	ss := serverSwitchesFor(t, 15, 8, 4, 3)
	p := RandomPermutation(ss, rng.New(3))
	var total float64
	for _, c := range p.Commodities() {
		total += c.Demand
	}
	if total != float64(len(ss)) {
		t.Fatalf("total demand = %v, want %d", total, len(ss))
	}
}

func TestIntraSwitchFlows(t *testing.T) {
	p := &Pattern{
		ServerSwitch: []int{0, 0, 1},
		Flows: []Flow{
			{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 0},
			{SrcServer: 2, DstServer: 0, SrcSwitch: 1, DstSwitch: 0},
		},
	}
	if p.IntraSwitchFlows() != 1 {
		t.Fatalf("intra = %d, want 1", p.IntraSwitchFlows())
	}
}

func TestAllToAllDemand(t *testing.T) {
	ss := []int{0, 0, 1, 2} // 4 servers across 3 switches
	comms := AllToAll(ss)
	var total float64
	for _, c := range comms {
		if c.Src == c.Dst {
			t.Fatal("self commodity present")
		}
		total += c.Demand
	}
	// Total inter-switch demand: all pairs except the intra-switch pair
	// (2 ordered pairs on switch 0) = (12-2)/3 ... each server sources
	// (n-1)·1/(n-1) = 1 unit total including intra; intra pairs are 2
	// ordered pairs at 1/3 each.
	want := float64(4) - 2.0/3.0
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("total inter-switch demand = %v, want %v", total, want)
	}
}

func TestAllToAllTiny(t *testing.T) {
	if AllToAll([]int{0}) != nil {
		t.Fatal("single server all-to-all should be nil")
	}
}

func TestHotspotRedirectsFlows(t *testing.T) {
	ss := serverSwitchesFor(t, 12, 6, 3, 5)
	hot := 0
	p := Hotspot(ss, hot, 0.5, rng.New(5))
	toHot := 0
	for _, f := range p.Flows {
		if f.DstSwitch == hot {
			toHot++
		}
	}
	// At least a third of flows should now target the hot switch.
	if toHot < len(ss)/3 {
		t.Fatalf("only %d/%d flows to hot switch", toHot, len(ss))
	}
}

func TestPermutationDeterministic(t *testing.T) {
	ss := serverSwitchesFor(t, 10, 6, 3, 7)
	a := RandomPermutation(ss, rng.New(9))
	b := RandomPermutation(ss, rng.New(9))
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatal("same seed produced different permutations")
		}
	}
}

func TestAdversarialPermutationStretchesPaths(t *testing.T) {
	top := topology.Jellyfish(40, 10, 6, rng.New(21))
	ss := top.ServerSwitches()
	distCache := map[int][]int{}
	dist := func(a, b int) int {
		d, ok := distCache[a]
		if !ok {
			d = top.Graph.BFS(a)
			distCache[a] = d
		}
		return d[b]
	}
	adv := AdversarialPermutation(ss, dist, rng.New(22))
	rnd := RandomPermutation(ss, rng.New(22))
	hops := func(p *Pattern) float64 {
		var sum float64
		for _, f := range p.Flows {
			sum += float64(dist(f.SrcSwitch, f.DstSwitch))
		}
		return sum / float64(len(p.Flows))
	}
	if hops(adv) <= hops(rnd) {
		t.Fatalf("adversarial mean hops %v not above random %v", hops(adv), hops(rnd))
	}
	// Every server sends somewhere else.
	for _, f := range adv.Flows {
		if f.SrcServer == f.DstServer {
			t.Fatal("adversarial permutation has a fixed point")
		}
	}
}

func TestAdversarialPermutationIsInjective(t *testing.T) {
	top := topology.Jellyfish(15, 8, 4, rng.New(23))
	ss := top.ServerSwitches()
	dist := func(a, b int) int { return top.Graph.BFS(a)[b] }
	adv := AdversarialPermutation(ss, dist, rng.New(24))
	seen := map[int]bool{}
	for _, f := range adv.Flows {
		if seen[f.DstServer] {
			t.Fatalf("destination %d receives twice", f.DstServer)
		}
		seen[f.DstServer] = true
	}
}
