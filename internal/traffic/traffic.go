// Package traffic generates the workloads the Jellyfish paper evaluates
// with: server-level random-permutation traffic (every server sends at full
// NIC rate to exactly one other server and receives from exactly one), plus
// all-to-all and hotspot generators used by the extension experiments.
package traffic

import (
	"jellyfish/internal/mcf"
	"jellyfish/internal/rng"
)

// A Flow is one server-to-server demand at unit (NIC) rate.
type Flow struct {
	SrcServer, DstServer int
	SrcSwitch, DstSwitch int
}

// A Pattern is a server-level traffic pattern over a topology's servers.
type Pattern struct {
	// ServerSwitch[i] is the switch hosting server i.
	ServerSwitch []int
	// Flows lists every demand (unit rate each).
	Flows []Flow
}

// NumServers returns the number of servers in the pattern's topology.
func (p *Pattern) NumServers() int { return len(p.ServerSwitch) }

// Commodities aggregates the server flows into switch-level commodities for
// the concurrent-flow solver, merging flows that share a (srcSwitch,
// dstSwitch) pair. Same-switch flows are included (the solver ignores them;
// they never traverse the network and always run at full rate).
func (p *Pattern) Commodities() []mcf.Commodity {
	type key struct{ s, d int }
	agg := map[key]float64{}
	for _, f := range p.Flows {
		agg[key{f.SrcSwitch, f.DstSwitch}]++
	}
	out := make([]mcf.Commodity, 0, len(agg))
	// Deterministic order: iterate flows, emit a commodity the first time a
	// pair is seen.
	seen := map[key]bool{}
	for _, f := range p.Flows {
		k := key{f.SrcSwitch, f.DstSwitch}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, mcf.Commodity{Src: k.s, Dst: k.d, Demand: agg[k]})
	}
	return out
}

// IntraSwitchFlows counts flows whose endpoints share a switch; these are
// served at full rate without touching the network.
func (p *Pattern) IntraSwitchFlows() int {
	n := 0
	for _, f := range p.Flows {
		if f.SrcSwitch == f.DstSwitch {
			n++
		}
	}
	return n
}

// RandomPermutation builds the paper's random-permutation workload over the
// given server-to-switch assignment: a uniform random derangement of
// servers (no server sends to itself).
func RandomPermutation(serverSwitch []int, src *rng.Source) *Pattern {
	n := len(serverSwitch)
	dest := derangement(n, src)
	p := &Pattern{ServerSwitch: serverSwitch, Flows: make([]Flow, 0, n)}
	for s, d := range dest {
		p.Flows = append(p.Flows, Flow{
			SrcServer: s, DstServer: d,
			SrcSwitch: serverSwitch[s], DstSwitch: serverSwitch[d],
		})
	}
	return p
}

// CycleSuccessors samples a uniform random cyclic permutation of n
// elements by successive uniform insertion: element i enters the cycle
// after a uniform random predecessor among 0..i-1, so the cycle over the
// first s elements is a prefix-stable function of the stream — the
// permutation at s+1 extends the one at s with a single element spliced
// in. The stream is consumed strictly in element order (one draw per
// element past the first), which is what lets capacity searches rebuild
// the same nested permutations at every probe. Returns next[i], the
// successor of element i.
func CycleSuccessors(n int, src *rng.Source) []int {
	next := make([]int, n)
	for i := 1; i < n; i++ {
		x := src.Intn(i)
		next[i] = next[x]
		next[x] = i
	}
	return next
}

// NestedCycle builds the capacity-search workload as a server-level
// pattern: a uniform random cyclic permutation over the server slots
// (CycleSuccessors), each server sending one unit toward its successor.
// Under a stable slot assignment (an incremental topology family), the
// pattern at s+1 servers rewires exactly one flow of the pattern at s —
// the transport analogue of capsearch's nested commodities.
func NestedCycle(serverSwitch []int, src *rng.Source) *Pattern {
	next := CycleSuccessors(len(serverSwitch), src)
	p := &Pattern{ServerSwitch: serverSwitch, Flows: make([]Flow, 0, len(serverSwitch))}
	for s, d := range next {
		p.Flows = append(p.Flows, Flow{
			SrcServer: s, DstServer: d,
			SrcSwitch: serverSwitch[s], DstSwitch: serverSwitch[d],
		})
	}
	return p
}

// derangement samples a uniform permutation and repairs fixed points by
// cyclic rotation among them (plus one extra swap if a single fixed point
// remains), yielding a fixed-point-free permutation.
func derangement(n int, src *rng.Source) []int {
	if n == 1 {
		return []int{0} // degenerate: a single server can only "send" to itself
	}
	perm := src.Perm(n)
	var fixed []int
	for i, v := range perm {
		if i == v {
			fixed = append(fixed, i)
		}
	}
	switch len(fixed) {
	case 0:
	case 1:
		i := fixed[0]
		j := src.Intn(n - 1)
		if j >= i {
			j++
		}
		perm[i], perm[j] = perm[j], perm[i]
	default:
		for x := 0; x < len(fixed); x++ {
			i, j := fixed[x], fixed[(x+1)%len(fixed)]
			perm[i] = j
		}
	}
	return perm
}

// AllToAll builds the uniform all-to-all workload: every ordered server
// pair exchanges 1/(n-1) units so each server still sources one NIC of
// demand. Returned as switch-level commodities directly (the server-level
// flow list would be quadratic).
func AllToAll(serverSwitch []int) []mcf.Commodity {
	n := len(serverSwitch)
	if n < 2 {
		return nil
	}
	perServer := 1.0 / float64(n-1)
	// Demand between switch pair (a,b) = servers(a)·servers(b)·perServer.
	count := map[int]int{}
	maxSw := 0
	for _, sw := range serverSwitch {
		count[sw]++
		if sw > maxSw {
			maxSw = sw
		}
	}
	var out []mcf.Commodity
	for a := 0; a <= maxSw; a++ {
		if count[a] == 0 {
			continue
		}
		for b := 0; b <= maxSw; b++ {
			if a == b || count[b] == 0 {
				continue
			}
			out = append(out, mcf.Commodity{
				Src: a, Dst: b,
				Demand: float64(count[a]) * float64(count[b]) * perServer,
			})
		}
	}
	return out
}

// Hotspot builds a workload where frac of the servers (rounded up, at least
// one) all send to servers on a single hot switch, and the rest follow a
// random permutation. Used by the failure/extension experiments.
func Hotspot(serverSwitch []int, hotSwitch int, frac float64, src *rng.Source) *Pattern {
	base := RandomPermutation(serverSwitch, src)
	nHot := int(frac * float64(len(serverSwitch)))
	if nHot < 1 {
		nHot = 1
	}
	// Targets: servers on the hot switch (if none, pattern is unchanged).
	var hotServers []int
	for s, sw := range serverSwitch {
		if sw == hotSwitch {
			hotServers = append(hotServers, s)
		}
	}
	if len(hotServers) == 0 {
		return base
	}
	perm := src.Perm(len(serverSwitch))
	for i := 0; i < nHot && i < len(perm); i++ {
		s := perm[i]
		d := hotServers[src.Intn(len(hotServers))]
		if d == s {
			continue
		}
		base.Flows[s] = Flow{
			SrcServer: s, DstServer: d,
			SrcSwitch: serverSwitch[s], DstSwitch: serverSwitch[d],
		}
	}
	return base
}

// AdversarialPermutation builds a permutation chosen to stress the
// network: servers are paired so that switch-to-switch distances are
// (heuristically) maximized, via greedy matching of BFS-farthest switches.
// The paper's footnote 9 notes that bisection bandwidth is not the same as
// capacity under worst-case traffic; this generator probes that gap.
func AdversarialPermutation(serverSwitch []int, dist func(a, b int) int, src *rng.Source) *Pattern {
	n := len(serverSwitch)
	p := &Pattern{ServerSwitch: serverSwitch, Flows: make([]Flow, 0, n)}
	// Greedily pair each server (in random order) with the unclaimed
	// server whose switch is farthest from its own.
	order := src.Perm(n)
	claimed := make([]bool, n)
	for _, s := range order {
		best, bestDist := -1, -1
		for d := 0; d < n; d++ {
			if d == s || claimed[d] {
				continue
			}
			dd := dist(serverSwitch[s], serverSwitch[d])
			if dd > bestDist {
				best, bestDist = d, dd
			}
		}
		if best < 0 {
			// Only s itself is unclaimed: steal the first flow's
			// destination and give that flow s instead, preserving
			// injectivity without a fixed point.
			f := &p.Flows[0]
			best = f.DstServer
			f.DstServer = s
			f.DstSwitch = serverSwitch[s]
		}
		claimed[best] = true
		p.Flows = append(p.Flows, Flow{
			SrcServer: s, DstServer: best,
			SrcSwitch: serverSwitch[s], DstSwitch: serverSwitch[best],
		})
	}
	return p
}
