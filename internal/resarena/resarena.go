// Package resarena assigns stable dense integer ids to the transport
// simulators' resources: per-server source/destination NICs and directed
// switch-switch links. flowsim and packetsim used to rebuild a
// map[[2]int]int registry of these on every Simulate call; an Arena is
// the compiled replacement — a flat switch×switch id matrix plus flat
// per-server NIC tables, assigned on first touch and stable for the
// lifetime of the owning simulator instance.
//
// Stability across calls is the load-bearing property: ids persist even
// when the next call simulates a different (possibly rewired) topology,
// so a reused simulator never confuses one resource with another, and
// the simulators' results are independent of id numbering by
// construction (their kernels take minima and per-resource sums, never
// order-sensitive reductions over ids). Stale ids from links a rewired
// topology no longer has are harmless: nothing touches them.
package resarena

// Grow returns buf with length n, reusing capacity. Growth carries 25%
// headroom: the simulators' per-call sizes jitter (hashed path picks
// change incidence totals between calls on one instance), so exact-fit
// growth — like internal/mcf's resize helpers use for its stable solver
// shapes — would keep reallocating at every new high-water mark instead
// of converging to zero steady-state allocations. Contents are
// unspecified.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n, n+n/4+64)
	}
	return buf[:n]
}

// An Arena allocates resource ids. The zero value is ready to use.
type Arena struct {
	n    int     // switch-id bound of the link matrix
	link []int32 // n×n, row-major; -1 = unassigned
	nic  []int32 // 2 ids per server (src, dst); -1 = unassigned
	next int32
}

// Len returns the number of ids assigned so far; ids are dense in
// [0, Len).
func (a *Arena) Len() int { return int(a.next) }

// EnsureSwitches grows the link matrix to cover switch ids < n,
// preserving existing assignments. O(n²) when it grows; a no-op
// afterwards.
func (a *Arena) EnsureSwitches(n int) {
	if n <= a.n {
		return
	}
	grown := make([]int32, n*n)
	for i := range grown {
		grown[i] = -1
	}
	for u := 0; u < a.n; u++ {
		copy(grown[u*n:u*n+a.n], a.link[u*a.n:(u+1)*a.n])
	}
	a.n, a.link = n, grown
}

// EnsureServers grows the NIC tables to cover server ids < s.
func (a *Arena) EnsureServers(s int) {
	if 2*s <= len(a.nic) {
		return
	}
	grown := make([]int32, 2*s)
	for i := range grown {
		grown[i] = -1
	}
	copy(grown, a.nic)
	a.nic = grown
}

// Link returns the id of the directed link u→v, assigning one on first
// touch (and growing the matrix if either endpoint is new).
func (a *Arena) Link(u, v int) int32 {
	if u >= a.n || v >= a.n {
		m := u
		if v > m {
			m = v
		}
		a.EnsureSwitches(m + 1)
	}
	idx := u*a.n + v
	if a.link[idx] < 0 {
		a.link[idx] = a.next
		a.next++
	}
	return a.link[idx]
}

// SrcNIC returns the id of server s's sending NIC.
func (a *Arena) SrcNIC(s int) int32 { return a.nicAt(2 * s) }

// DstNIC returns the id of server s's receiving NIC.
func (a *Arena) DstNIC(s int) int32 { return a.nicAt(2*s + 1) }

func (a *Arena) nicAt(slot int) int32 {
	if slot >= len(a.nic) {
		a.EnsureServers(slot/2 + 1)
	}
	if a.nic[slot] < 0 {
		a.nic[slot] = a.next
		a.next++
	}
	return a.nic[slot]
}
