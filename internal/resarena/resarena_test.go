package resarena

import "testing"

func TestIDsAreStableAndDense(t *testing.T) {
	var a Arena
	l01 := a.Link(0, 1)
	l10 := a.Link(1, 0)
	src0 := a.SrcNIC(0)
	dst0 := a.DstNIC(0)
	if l01 == l10 {
		t.Fatal("directed links share an id")
	}
	if src0 == dst0 {
		t.Fatal("src and dst NICs of one server share an id")
	}
	seen := map[int32]bool{l01: true, l10: true, src0: true, dst0: true}
	if len(seen) != 4 || a.Len() != 4 {
		t.Fatalf("ids not dense/unique: %v, Len=%d", seen, a.Len())
	}
	for id := range seen {
		if id < 0 || int(id) >= a.Len() {
			t.Fatalf("id %d outside [0, %d)", id, a.Len())
		}
	}
	// Re-touching returns the same ids.
	if a.Link(0, 1) != l01 || a.SrcNIC(0) != src0 || a.DstNIC(0) != dst0 {
		t.Fatal("re-touch changed an id")
	}
	if a.Len() != 4 {
		t.Fatalf("re-touch grew the arena to %d", a.Len())
	}
}

// Growth — new switches, new servers — must preserve every prior
// assignment (the property that makes one simulator instance reusable
// across the members of a growing topology family).
func TestGrowthPreservesAssignments(t *testing.T) {
	var a Arena
	a.EnsureSwitches(3)
	a.EnsureServers(2)
	ids := map[[2]int]int32{}
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if u != v {
				ids[[2]int{u, v}] = a.Link(u, v)
			}
		}
	}
	nic0 := a.SrcNIC(0)
	a.Link(7, 2) // implicit switch growth
	a.DstNIC(9)  // implicit server growth
	a.EnsureSwitches(20)
	a.EnsureServers(40)
	for k, want := range ids {
		if got := a.Link(k[0], k[1]); got != want {
			t.Fatalf("link %v id changed %d -> %d after growth", k, want, got)
		}
	}
	if a.SrcNIC(0) != nic0 {
		t.Fatal("NIC id changed after growth")
	}
}
