package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// bruteLooplessPaths enumerates ALL loopless paths from src to dst by DFS,
// returned sorted by (length, lexicographic) — the ground truth Yen's
// algorithm must prefix-match.
func bruteLooplessPaths(g *Graph, src, dst int) []Path {
	var out []Path
	onPath := make([]bool, g.N())
	var stack Path
	var walk func(v int)
	walk = func(v int) {
		stack = append(stack, v)
		onPath[v] = true
		if v == dst {
			out = append(out, append(Path(nil), stack...))
		} else {
			for _, u := range g.Neighbors(v) {
				if !onPath[u] {
					walk(u)
				}
			}
		}
		onPath[v] = false
		stack = stack[:len(stack)-1]
	}
	walk(src)
	sort.Slice(out, func(a, b int) bool { return lessPath(out[a], out[b]) })
	return out
}

// Yen's k shortest paths must equal the first k of the exhaustive
// enumeration, for every k, on every small random graph.
func TestKShortestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 4 + r.Intn(4) // 4..7 vertices: enumeration stays tiny
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		src, dst := 0, n-1
		want := bruteLooplessPaths(g, src, dst)
		for _, k := range []int{1, 2, 3, 5, 100} {
			got := g.KShortestPaths(src, dst, k)
			expect := len(want)
			if k < expect {
				expect = k
			}
			if len(want) == 0 {
				if got != nil {
					t.Fatalf("trial %d: paths found in disconnected pair", trial)
				}
				continue
			}
			if len(got) != expect {
				t.Fatalf("trial %d k=%d: got %d paths, brute force says %d available",
					trial, k, len(got), len(want))
			}
			for i := range got {
				// Lengths must agree exactly with the brute-force ranking;
				// tie order within a length class may legitimately differ
				// when multiple paths tie (Yen picks any valid order among
				// equals), so compare multisets per length. Our
				// implementation breaks ties lexicographically, so compare
				// exactly.
				if !got[i].Equal(want[i]) {
					t.Fatalf("trial %d k=%d path %d: got %v, want %v",
						trial, k, i, got[i], want[i])
				}
			}
		}
	}
}

// lessPath is defined in yen.go; this guards against accidental changes to
// its ordering contract, which the brute-force comparison depends on.
func TestLessPathOrdering(t *testing.T) {
	a := Path{0, 1, 2}
	b := Path{0, 2, 2}
	c := Path{0, 1, 2, 3}
	if !lessPath(a, b) || lessPath(b, a) {
		t.Fatal("lexicographic ordering broken")
	}
	if !lessPath(a, c) || lessPath(c, a) {
		t.Fatal("length ordering broken")
	}
	if lessPath(a, a) {
		t.Fatal("irreflexivity broken")
	}
}
