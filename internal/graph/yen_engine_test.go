package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// kShortestPathsReference is the pre-engine one-shot implementation
// (per-call maps and slices), kept verbatim as the oracle for the
// engine's bit-identity contract: KSPEngine.Paths must return exactly
// these paths in exactly this order.
func kShortestPathsReference(g *Graph, src, dst, k int) []Path {
	if k <= 0 {
		return nil
	}
	first := refMaskedShortestPath(g, src, dst, nil, nil)
	if first == nil {
		return nil
	}
	paths := []Path{first}
	var candidates []Path
	removedEdges := make(map[Edge]bool)
	removedNodes := make(map[int]bool)

	for len(paths) < k {
		prev := paths[len(paths)-1]
		for i := 0; i < len(prev)-1; i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]

			clear(removedEdges)
			clear(removedNodes)
			for _, p := range paths {
				if len(p) > i && samePrefix(p, rootPath) {
					removedEdges[Canon(p[i], p[i+1])] = true
				}
			}
			for _, p := range candidates {
				if len(p) > i && samePrefix(p, rootPath) {
					removedEdges[Canon(p[i], p[i+1])] = true
				}
			}
			for _, v := range rootPath[:len(rootPath)-1] {
				removedNodes[v] = true
			}

			spurPath := refMaskedShortestPath(g, spurNode, dst, removedNodes, removedEdges)
			if spurPath == nil {
				continue
			}
			total := make(Path, 0, i+len(spurPath))
			total = append(total, rootPath...)
			total = append(total, spurPath[1:]...)
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return lessPath(candidates[a], candidates[b]) })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func refMaskedShortestPath(g *Graph, src, dst int, skipNode map[int]bool, skipEdge map[Edge]bool) Path {
	if skipNode[src] || skipNode[dst] {
		return nil
	}
	if src == dst {
		return Path{src}
	}
	n := g.N()
	dist := make([]int, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = Unreachable
		parent[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		for _, v := range g.adj[u] {
			if dist[v] != Unreachable || skipNode[v] {
				continue
			}
			if len(skipEdge) > 0 && skipEdge[Canon(u, v)] {
				continue
			}
			dist[v] = dist[u] + 1
			parent[v] = u
			queue = append(queue, v)
		}
	}
	if dist[dst] == Unreachable {
		return nil
	}
	path := make(Path, dist[dst]+1)
	cur := dst
	for i := len(path) - 1; i >= 0; i-- {
		path[i] = cur
		cur = parent[cur]
	}
	return path
}

func randomConnectedGraph(n, extraEdges int, r *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, r.Intn(v))
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// The engine's whole value proposition is scratch reuse without
// observable effect: one engine driven across many pairs, many k values,
// and interleaved sparse/dense graphs must reproduce the reference
// algorithm byte for byte.
func TestKSPEngineMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		n := 8 + r.Intn(25)
		g := randomConnectedGraph(n, n+r.Intn(3*n), r)
		eng := NewKSPEngine(g)
		for pair := 0; pair < 40; pair++ {
			src, dst := r.Intn(n), r.Intn(n)
			k := 1 + r.Intn(10)
			want := kShortestPathsReference(g, src, dst, k)
			got := eng.Paths(src, dst, k)
			if len(got) != len(want) {
				t.Fatalf("n=%d %d->%d k=%d: %d paths, want %d", n, src, dst, k, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("n=%d %d->%d k=%d: path %d = %v, want %v", n, src, dst, k, i, got[i], want[i])
				}
			}
		}
	}
}

// One-shot KShortestPaths delegates to the engine; pin the delegation on
// a disconnected pair and the trivial same-node pair.
func TestKSPEngineEdgeCases(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	if got := g.KShortestPaths(0, 3, 4); got != nil {
		t.Fatalf("disconnected pair returned %v", got)
	}
	eng := NewKSPEngine(g)
	if got := eng.Paths(2, 2, 3); len(got) != 1 || !got[0].Equal(Path{2}) {
		t.Fatalf("self pair returned %v", got)
	}
	if got := eng.Paths(0, 1, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

// The engine must observe graph mutations made between calls (the
// incremental-family searches rewire links between probes).
func TestKSPEngineSeesMutations(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	eng := NewKSPEngine(g)
	if got := eng.Paths(0, 3, 2); len(got) != 1 {
		t.Fatalf("before mutation: %v", got)
	}
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	got := eng.Paths(0, 3, 4)
	want := kShortestPathsReference(g, 0, 3, 4)
	if len(got) != len(want) {
		t.Fatalf("after mutation: %v, want %v", got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("after mutation path %d: %v, want %v", i, got[i], want[i])
		}
	}
}
