package graph

import (
	"container/heap"
	"sort"
)

// A Path is a loopless vertex sequence from Path[0] to Path[len-1].
type Path []int

// Len returns the hop count (number of edges) of the path.
func (p Path) Len() int { return len(p) - 1 }

// Equal reports whether two paths visit the same vertex sequence.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// nondecreasing hop-count order, using Yen's ranking algorithm [Yen 1971]
// with a BFS/Dijkstra inner subroutine on the unweighted graph. Ties are
// broken deterministically by lexicographic vertex order so results are
// reproducible. It returns nil if dst is unreachable.
func (g *Graph) KShortestPaths(src, dst, k int) []Path {
	if k <= 0 {
		return nil
	}
	first := g.maskedShortestPath(src, dst, nil, nil)
	if first == nil {
		return nil
	}
	paths := []Path{first}
	// Candidate pool, kept sorted by (length, lexicographic).
	var candidates []Path
	removedEdges := make(map[Edge]bool)
	removedNodes := make(map[int]bool)

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Spur from every node of the previous path except the terminal.
		for i := 0; i < len(prev)-1; i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]

			clearMap(removedEdges)
			clearNodeMap(removedNodes)
			// Remove edges that would recreate an already-accepted path
			// sharing this root.
			for _, p := range paths {
				if len(p) > i && samePrefix(p, rootPath) {
					removedEdges[Canon(p[i], p[i+1])] = true
				}
			}
			for _, p := range candidates {
				if len(p) > i && samePrefix(p, rootPath) {
					removedEdges[Canon(p[i], p[i+1])] = true
				}
			}
			// Remove root-path nodes (except the spur node) to keep
			// paths loopless.
			for _, v := range rootPath[:len(rootPath)-1] {
				removedNodes[v] = true
			}

			spurPath := g.maskedShortestPath(spurNode, dst, removedNodes, removedEdges)
			if spurPath == nil {
				continue
			}
			total := make(Path, 0, i+len(spurPath))
			total = append(total, rootPath...)
			total = append(total, spurPath[1:]...)
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return lessPath(candidates[a], candidates[b]) })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func samePrefix(p Path, root Path) bool {
	if len(p) < len(root) {
		return false
	}
	for i := range root {
		if p[i] != root[i] {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, q Path) bool {
	for _, p := range ps {
		if p.Equal(q) {
			return true
		}
	}
	return false
}

func lessPath(a, b Path) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func clearMap(m map[Edge]bool) {
	for k := range m {
		delete(m, k)
	}
}
func clearNodeMap(m map[int]bool) {
	for k := range m {
		delete(m, k)
	}
}

// maskedShortestPath finds one shortest path from src to dst avoiding the
// given nodes and edges, breaking ties lexicographically. Returns nil if no
// path exists.
func (g *Graph) maskedShortestPath(src, dst int, skipNode map[int]bool, skipEdge map[Edge]bool) Path {
	if skipNode[src] || skipNode[dst] {
		return nil
	}
	if src == dst {
		return Path{src}
	}
	n := g.N()
	dist := make([]int, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = Unreachable
		parent[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		for _, v := range g.adj[u] {
			if dist[v] != Unreachable || skipNode[v] {
				continue
			}
			if len(skipEdge) > 0 && skipEdge[Canon(u, v)] {
				continue
			}
			dist[v] = dist[u] + 1
			parent[v] = u
			queue = append(queue, v)
		}
	}
	if dist[dst] == Unreachable {
		return nil
	}
	path := make(Path, dist[dst]+1)
	cur := dst
	for i := len(path) - 1; i >= 0; i-- {
		path[i] = cur
		cur = parent[cur]
	}
	return path
}

// ---- Weighted Dijkstra (used by flow algorithms over derived weights) ----

// DijkstraWeights computes single-source shortest path distances where the
// weight of edge {u,v} is given by w (must be >= 0). It returns the distance
// slice and a parent slice for path extraction; unreachable vertices have
// distance +Inf encoded as -1 parent and dist math.MaxFloat64 is avoided by
// the caller checking parent.
func (g *Graph) DijkstraWeights(src int, w func(u, v int) float64) (dist []float64, parent []int) {
	n := g.N()
	dist = make([]float64, n)
	parent = make([]int, n)
	visited := make([]bool, n)
	const inf = 1e308
	for i := range dist {
		dist[i] = inf
		parent[i] = -1
	}
	dist[src] = 0
	pq := &floatHeap{items: []heapItem{{node: src, prio: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		u := it.node
		if visited[u] {
			continue
		}
		visited[u] = true
		for _, v := range g.adj[u] {
			if visited[v] {
				continue
			}
			nd := dist[u] + w(u, v)
			if nd < dist[v] {
				dist[v] = nd
				parent[v] = u
				heap.Push(pq, heapItem{node: v, prio: nd})
			}
		}
	}
	return dist, parent
}

type heapItem struct {
	node int
	prio float64
}

type floatHeap struct{ items []heapItem }

func (h *floatHeap) Len() int           { return len(h.items) }
func (h *floatHeap) Less(i, j int) bool { return h.items[i].prio < h.items[j].prio }
func (h *floatHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *floatHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *floatHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
