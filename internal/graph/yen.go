package graph

import "container/heap"

// A Path is a loopless vertex sequence from Path[0] to Path[len-1].
type Path []int

// Len returns the hop count (number of edges) of the path.
func (p Path) Len() int { return len(p) - 1 }

// Equal reports whether two paths visit the same vertex sequence.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// nondecreasing hop-count order, using Yen's ranking algorithm [Yen 1971]
// with a BFS inner subroutine on the unweighted graph. Ties are broken
// deterministically by lexicographic vertex order so results are
// reproducible. It returns nil if dst is unreachable.
//
// This one-shot form builds fresh scratch per call; callers computing
// many pairs on one graph should hold a KSPEngine (or go through
// routing.Compiled) to reuse it.
func (g *Graph) KShortestPaths(src, dst, k int) []Path {
	return NewKSPEngine(g).Paths(src, dst, k)
}

func samePrefix(p Path, root Path) bool {
	if len(p) < len(root) {
		return false
	}
	for i := range root {
		if p[i] != root[i] {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, q Path) bool {
	for _, p := range ps {
		if p.Equal(q) {
			return true
		}
	}
	return false
}

func lessPath(a, b Path) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// ---- Weighted Dijkstra (used by flow algorithms over derived weights) ----

// DijkstraWeights computes single-source shortest path distances where the
// weight of edge {u,v} is given by w (must be >= 0). It returns the distance
// slice and a parent slice for path extraction; unreachable vertices have
// distance +Inf encoded as -1 parent and dist math.MaxFloat64 is avoided by
// the caller checking parent.
func (g *Graph) DijkstraWeights(src int, w func(u, v int) float64) (dist []float64, parent []int) {
	n := g.N()
	dist = make([]float64, n)
	parent = make([]int, n)
	visited := make([]bool, n)
	const inf = 1e308
	for i := range dist {
		dist[i] = inf
		parent[i] = -1
	}
	dist[src] = 0
	pq := &floatHeap{items: []heapItem{{node: src, prio: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		u := it.node
		if visited[u] {
			continue
		}
		visited[u] = true
		for _, v := range g.adj[u] {
			if visited[v] {
				continue
			}
			nd := dist[u] + w(u, v)
			if nd < dist[v] {
				dist[v] = nd
				parent[v] = u
				heap.Push(pq, heapItem{node: v, prio: nd})
			}
		}
	}
	return dist, parent
}

type heapItem struct {
	node int
	prio float64
}

type floatHeap struct{ items []heapItem }

func (h *floatHeap) Len() int           { return len(h.items) }
func (h *floatHeap) Less(i, j int) bool { return h.items[i].prio < h.items[j].prio }
func (h *floatHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *floatHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *floatHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
