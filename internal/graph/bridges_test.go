package graph

import (
	"math/rand"
	"testing"
)

func TestBridgesPathGraph(t *testing.T) {
	g := New(4)
	for i := 0; i < 3; i++ {
		g.AddEdge(i, i+1)
	}
	bs := g.Bridges()
	if len(bs) != 3 {
		t.Fatalf("path graph bridges = %v, want all 3 edges", bs)
	}
}

func TestBridgesRingHasNone(t *testing.T) {
	if bs := ringGraph(8).Bridges(); len(bs) != 0 {
		t.Fatalf("ring has bridges: %v", bs)
	}
}

func TestBridgesBarbell(t *testing.T) {
	// Two triangles joined by one edge: exactly that edge is a bridge.
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	g.AddEdge(2, 3)
	bs := g.Bridges()
	if len(bs) != 1 || bs[0] != (Edge{2, 3}) {
		t.Fatalf("barbell bridges = %v, want [{2 3}]", bs)
	}
}

func TestBridgesDisconnected(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	bs := g.Bridges()
	if len(bs) != 2 {
		t.Fatalf("bridges = %v, want both isolated edges", bs)
	}
}

// Property: an edge is a bridge iff removing it increases the component
// count — verified against brute force on random graphs.
func TestBridgesMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(15)
		g := New(n)
		for i := 0; i < n+r.Intn(n); i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		got := map[Edge]bool{}
		for _, b := range g.Bridges() {
			got[b] = true
		}
		base := len(g.Components())
		for _, e := range g.Edges() {
			g.RemoveEdge(e.U, e.V)
			isBridge := len(g.Components()) > base
			g.AddEdge(e.U, e.V)
			if got[e] != isBridge {
				t.Fatalf("trial %d edge %v: tarjan=%v brute=%v", trial, e, got[e], isBridge)
			}
		}
	}
}
