package graph

// A CSR is an immutable compressed-sparse-row snapshot of a Graph's
// adjacency: 32-bit node ids in three flat arrays instead of per-node
// slice headers. It is the storage format of the megascale planning tier
// — at 100k switches the per-node slices of Graph cost 24 bytes of header
// plus a separate allocation each, while the CSR form is two int32 words
// per half-edge and loads with one index computation per neighbor scan.
//
// The neighbor order within each node is the Graph's sorted order, so
// every algorithm that iterates adjacency (BFS tie-breaks, path-count
// sums, ECMP sampling walks) produces bit-identical results over either
// representation. A CSR is a snapshot: mutating the source Graph after
// Graph.CSR() does not change it, and the next Graph.CSR() call returns a
// fresh snapshot. All fields are shared and read-only.
type CSR struct {
	n int
	m int
	// Offsets[u]:Offsets[u+1] bounds u's half-edges in Nbrs and ArcID.
	Offsets []int32 // len n+1
	// Nbrs holds each node's neighbors, sorted ascending within the node.
	Nbrs []int32 // len 2m
	// ArcID[i] is the directed-arc id of half-edge i under the solver
	// convention: arc 2e is U→V and arc 2e+1 is V→U of Edges()[e].
	ArcID []int32 // len 2m
	edges []Edge  // lexicographic edge list, built once with the snapshot
}

// N returns the number of vertices.
func (c *CSR) N() int { return c.n }

// M returns the number of edges.
func (c *CSR) M() int { return c.m }

// Degree returns the degree of vertex u.
func (c *CSR) Degree(u int) int { return int(c.Offsets[u+1] - c.Offsets[u]) }

// Neighbors returns u's sorted neighbor ids. The slice aliases the
// snapshot and must not be modified.
func (c *CSR) Neighbors(u int) []int32 { return c.Nbrs[c.Offsets[u]:c.Offsets[u+1]] }

// Edges returns all edges with U < V in lexicographic order — the same
// list, in the same order, as Graph.Edges() at snapshot time. The slice
// is shared by every caller of the snapshot and must not be modified.
func (c *CSR) Edges() []Edge { return c.edges }

// BFSInto computes unweighted shortest-path hop counts from src over the
// snapshot, reusing the caller's buffers: dist must have length N and be
// pre-filled with Unreachable, queue must have capacity for N entries.
func (c *CSR) BFSInto(src int32, dist []int32, queue []int32) {
	dist[src] = 0
	queue = append(queue[:0], src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u] + 1
		for _, v := range c.Nbrs[c.Offsets[u]:c.Offsets[u+1]] {
			if dist[v] == Unreachable {
				dist[v] = du
				queue = append(queue, v)
			}
		}
	}
}

// csrSnap pairs a built snapshot with the graph version it reflects.
type csrSnap struct {
	version uint64
	csr     *CSR
}

// CSR returns the compact snapshot of the graph's current adjacency,
// building it on first use and after any mutation (AddVertex, AddEdge,
// RemoveEdge bump an internal version). Repeated calls on an unmutated
// graph return the identical pointer, which is what lets consumers skip
// same-topology rebuild checks entirely.
//
// Safe for concurrent callers as long as nothing mutates the graph
// concurrently — the same contract every read path of Graph already has.
func (g *Graph) CSR() *CSR {
	if snap := g.csr.Load(); snap != nil && snap.version == g.version {
		return snap.csr
	}
	c := buildCSR(g)
	g.csr.Store(&csrSnap{version: g.version, csr: c})
	return c
}

func buildCSR(g *Graph) *CSR {
	n, m := g.N(), g.m
	c := &CSR{
		n:       n,
		m:       m,
		Offsets: make([]int32, n+1),
		Nbrs:    make([]int32, 2*m),
		ArcID:   make([]int32, 2*m),
		edges:   make([]Edge, 0, m),
	}
	pos := int32(0)
	for u := 0; u < n; u++ {
		c.Offsets[u] = pos
		for _, v := range g.adj[u] {
			c.Nbrs[pos] = int32(v)
			pos++
		}
	}
	c.Offsets[n] = pos
	// Arc ids: sweeping u ascending and v over u's sorted list visits the
	// u < v half-edges in exactly Edges() order, assigning edge indices.
	// The reverse half-edge (v,u) sits in the < v prefix of v's list, and
	// those arrive in increasing u order, so a per-node cursor locates it
	// without any search.
	rev := make([]int32, n)
	for u := 0; u < n; u++ {
		base := c.Offsets[u]
		for i, v := range g.adj[u] {
			if v > u {
				e := int32(len(c.edges))
				c.edges = append(c.edges, Edge{u, v})
				c.ArcID[base+int32(i)] = 2 * e
				c.ArcID[c.Offsets[v]+rev[v]] = 2*e + 1
				rev[v]++
			}
		}
	}
	return c
}

// mutated invalidates any cached CSR snapshot.
func (g *Graph) mutated() { g.version++ }
