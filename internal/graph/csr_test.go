package graph

import (
	"testing"

	"jellyfish/internal/rng"
)

// randomTestGraph builds a connected graph on n vertices: a ring plus
// roughly n*(r-2)/2 random chords drawn from src.
func randomTestGraph(n, r int, src *rng.Source) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		g.AddEdge(u, (u+1)%n)
	}
	for i := 0; i < n*(r-2)/2; i++ {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestCSRMatchesGraph(t *testing.T) {
	src := rng.New(7)
	g := randomTestGraph(40, 5, src)
	c := g.CSR()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatalf("CSR dims n=%d m=%d, graph n=%d m=%d", c.N(), c.M(), g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		ns := g.Neighbors(u)
		cs := c.Neighbors(u)
		if len(ns) != len(cs) || c.Degree(u) != g.Degree(u) {
			t.Fatalf("vertex %d: neighbor count %d vs %d", u, len(cs), len(ns))
		}
		for i, v := range ns {
			if int(cs[i]) != v {
				t.Fatalf("vertex %d slot %d: %d vs %d", u, i, cs[i], v)
			}
		}
	}
	edges := g.Edges()
	cedges := c.Edges()
	if len(edges) != len(cedges) {
		t.Fatalf("edge count %d vs %d", len(cedges), len(edges))
	}
	for i := range edges {
		if edges[i] != cedges[i] {
			t.Fatalf("edge %d: %v vs %v", i, cedges[i], edges[i])
		}
	}
}

func TestCSRArcIDs(t *testing.T) {
	src := rng.New(11)
	g := randomTestGraph(30, 4, src)
	c := g.CSR()
	edges := c.Edges()
	// Arc 2e must be the U→V half-edge of edges[e], arc 2e+1 the V→U one.
	seen := make([]int, 2*c.M())
	for u := 0; u < c.N(); u++ {
		lo, hi := c.Offsets[u], c.Offsets[u+1]
		for i := lo; i < hi; i++ {
			v := int(c.Nbrs[i])
			arc := c.ArcID[i]
			e := edges[arc/2]
			if arc%2 == 0 {
				if e.U != u || e.V != v {
					t.Fatalf("arc %d at (%d,%d): edge %v", arc, u, v, e)
				}
			} else {
				if e.U != v || e.V != u {
					t.Fatalf("arc %d at (%d,%d): edge %v", arc, u, v, e)
				}
			}
			seen[arc]++
		}
	}
	for arc, n := range seen {
		if n != 1 {
			t.Fatalf("arc %d appears %d times", arc, n)
		}
	}
}

func TestCSRSnapshotCachingAndInvalidation(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c1 := g.CSR()
	if c2 := g.CSR(); c2 != c1 {
		t.Fatal("unmutated graph returned a different snapshot pointer")
	}
	if !g.AddEdge(2, 3) {
		t.Fatal("AddEdge failed")
	}
	c3 := g.CSR()
	if c3 == c1 {
		t.Fatal("snapshot not invalidated by AddEdge")
	}
	if c3.M() != 3 {
		t.Fatalf("snapshot M=%d, want 3", c3.M())
	}
	// Failed mutations must not invalidate.
	if g.AddEdge(2, 3) {
		t.Fatal("duplicate AddEdge succeeded")
	}
	if g.RemoveEdge(0, 3) {
		t.Fatal("RemoveEdge of absent edge succeeded")
	}
	if g.CSR() != c3 {
		t.Fatal("no-op mutations invalidated the snapshot")
	}
	if !g.RemoveEdge(2, 3) {
		t.Fatal("RemoveEdge failed")
	}
	if c4 := g.CSR(); c4 == c3 || c4.M() != 2 {
		t.Fatalf("snapshot not rebuilt after RemoveEdge (m=%d)", c4.M())
	}
	g.AddVertex()
	if c5 := g.CSR(); c5.N() != 5 {
		t.Fatalf("snapshot N=%d after AddVertex, want 5", c5.N())
	}
	// Old snapshots are unaffected by later mutations.
	if c1.N() != 4 || c1.M() != 2 {
		t.Fatalf("old snapshot mutated: n=%d m=%d", c1.N(), c1.M())
	}
}

func TestCSRBFSIntoMatchesBFS(t *testing.T) {
	src := rng.New(3)
	g := randomTestGraph(50, 4, src)
	c := g.CSR()
	dist := make([]int32, c.N())
	queue := make([]int32, 0, c.N())
	for s := 0; s < 5; s++ {
		want := g.BFS(s)
		for i := range dist {
			dist[i] = Unreachable
		}
		c.BFSInto(int32(s), dist, queue)
		for v := range want {
			if int(dist[v]) != want[v] {
				t.Fatalf("src %d vertex %d: dist %d, want %d", s, v, dist[v], want[v])
			}
		}
	}
}
