// Package graph implements the undirected simple-graph substrate that every
// topology in this repository is built on: adjacency storage with O(log d)
// membership tests, breadth-first shortest paths, all-pairs path statistics,
// connectivity, and Yen's loopless k-shortest-paths algorithm.
//
// Vertices are dense integers 0..N-1 (switch IDs). Graphs are simple
// (no self-loops, no parallel edges), matching the Jellyfish construction
// rule that two switches are joined by at most one cable.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// An Edge is an undirected edge between vertices U and V with U < V.
type Edge struct {
	U, V int
}

// Canon returns the edge with endpoints ordered U < V.
func Canon(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{u, v}
}

// Graph is a mutable undirected simple graph on vertices 0..N()-1.
// The zero value is an empty graph with no vertices; use New.
type Graph struct {
	adj [][]int // sorted adjacency lists
	m   int     // number of edges

	// CSR snapshot cache: version counts successful mutations, csr holds
	// the last snapshot built (tagged with the version it reflects).
	version uint64
	csr     atomic.Pointer[csrSnap]
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddVertex appends a new isolated vertex and returns its ID.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	g.mutated()
	return len(g.adj) - 1
}

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns the sorted neighbor list of u. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// HasEdge reports whether the edge {u,v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// AddEdge inserts the edge {u,v}. It panics on self-loops and returns false
// without modification if the edge already exists.
func (g *Graph) AddEdge(u, v int) bool {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, len(g.adj)))
	}
	if g.HasEdge(u, v) {
		return false
	}
	g.insertHalf(u, v)
	g.insertHalf(v, u)
	g.m++
	g.mutated()
	return true
}

// RemoveEdge deletes the edge {u,v}, reporting whether it was present.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.removeHalf(u, v)
	g.removeHalf(v, u)
	g.m--
	g.mutated()
	return true
}

func (g *Graph) insertHalf(u, v int) {
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = v
	g.adj[u] = a
}

func (g *Graph) removeHalf(u, v int) {
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	copy(a[i:], a[i+1:])
	g.adj[u] = a[:len(a)-1]
}

// Edges returns all edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u, ns := range g.adj {
		for _, v := range ns {
			if u < v {
				es = append(es, Edge{u, v})
			}
		}
	}
	return es
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int, len(g.adj)), m: g.m}
	for u, ns := range g.adj {
		c.adj[u] = append([]int(nil), ns...)
	}
	return c
}

// Connected reports whether the graph is connected (true for N ≤ 1).
func (g *Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	return g.componentSize(0) == n
}

// Components returns the vertex sets of the connected components, each
// sorted, ordered by smallest member.
func (g *Graph) Components() [][]int {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]int
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		queue = queue[:0]
		queue = append(queue, s)
		seen[s] = true
		var comp []int
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

func (g *Graph) componentSize(s int) int {
	seen := make([]bool, g.N())
	queue := []int{s}
	seen[s] = true
	count := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		count++
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return count
}

// MinDegree returns the minimum vertex degree (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, ns := range g.adj[1:] {
		if len(ns) < min {
			min = len(ns)
		}
	}
	return min
}

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, ns := range g.adj {
		if len(ns) > max {
			max = len(ns)
		}
	}
	return max
}

// IsRegular reports whether every vertex has degree r.
func (g *Graph) IsRegular(r int) bool {
	for _, ns := range g.adj {
		if len(ns) != r {
			return false
		}
	}
	return true
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.m)
}
