package graph

import "math"

// Unreachable is the distance reported by BFS for vertices not reachable
// from the source.
const Unreachable = -1

// BFS computes unweighted shortest-path distances from src to every vertex.
// Unreachable vertices get distance Unreachable.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	g.bfsInto(src, dist, make([]int, 0, g.N()))
	return dist
}

// bfsInto runs BFS reusing the provided dist (must be pre-filled with
// Unreachable) and queue buffers.
func (g *Graph) bfsInto(src int, dist []int, queue []int) {
	dist[src] = 0
	queue = append(queue[:0], src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
}

// ShortestPath returns one shortest path from src to dst as a vertex
// sequence including both endpoints, or nil if dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	dist := g.BFS(src)
	if dist[dst] == Unreachable {
		return nil
	}
	path := make([]int, dist[dst]+1)
	path[len(path)-1] = dst
	cur := dst
	for i := len(path) - 2; i >= 0; i-- {
		for _, v := range g.adj[cur] {
			if dist[v] == dist[cur]-1 {
				cur = v
				break
			}
		}
		path[i] = cur
	}
	return path
}

// PathStats summarizes the all-pairs shortest path structure of a graph.
type PathStats struct {
	Mean      float64 // mean distance over ordered reachable pairs (u != v)
	Diameter  int     // maximum finite distance; 0 if no pairs
	Hist      []int64 // Hist[d] = number of ordered pairs at distance d (d >= 1)
	Pairs     int64   // number of ordered reachable pairs
	Connected bool    // whether all ordered pairs were reachable
}

// Percentile returns the smallest distance d such that at least frac
// (0 < frac <= 1) of ordered pairs are within distance d.
func (s PathStats) Percentile(frac float64) int {
	if s.Pairs == 0 {
		return 0
	}
	target := int64(math.Ceil(frac * float64(s.Pairs)))
	var cum int64
	for d := 1; d < len(s.Hist); d++ {
		cum += s.Hist[d]
		if cum >= target {
			return d
		}
	}
	return s.Diameter
}

// CDF returns the cumulative fraction of ordered pairs within each distance
// 1..Diameter. CDF()[d] is the fraction of pairs with distance <= d.
func (s PathStats) CDF() []float64 {
	cdf := make([]float64, len(s.Hist))
	var cum int64
	for d := 1; d < len(s.Hist); d++ {
		cum += s.Hist[d]
		if s.Pairs > 0 {
			cdf[d] = float64(cum) / float64(s.Pairs)
		}
	}
	return cdf
}

// AllPairsStats runs BFS from every vertex and aggregates distance
// statistics over all ordered vertex pairs.
func (g *Graph) AllPairsStats() PathStats {
	return g.PairsStats(nil)
}

// PairsStats aggregates shortest-path statistics over ordered pairs (u,v)
// with u,v in subset (all vertices if subset is nil) and u != v. This is
// used to measure switch-to-switch and server-to-server path lengths.
func (g *Graph) PairsStats(subset []int) PathStats {
	var sc PairsScratch
	return g.PairsStatsInto(subset, &sc)
}

// PairsScratch holds the reusable working buffers of PairsStatsInto.
// The zero value is ready to use; buffers grow to the largest graph seen
// and are reused across calls. Not safe for concurrent use.
type PairsScratch struct {
	dist    []int
	queue   []int
	sources []int
	hist    []int64
}

// PairsStatsInto is PairsStats with caller-owned scratch: repeated calls
// over a warm chain of same-sized graphs allocate nothing after the first.
// The returned PathStats.Hist aliases the scratch and is valid only until
// the next call with the same scratch — copy it to retain.
func (g *Graph) PairsStatsInto(subset []int, sc *PairsScratch) PathStats {
	n := g.N()
	sources := subset
	if sources == nil {
		sc.sources = sc.sources[:0]
		for i := 0; i < n; i++ {
			sc.sources = append(sc.sources, i)
		}
		sources = sc.sources
	}
	stats := PathStats{Connected: true, Hist: sc.hist[:0]}
	var sum int64
	if cap(sc.dist) < n {
		sc.dist = make([]int, n)
		sc.queue = make([]int, 0, n)
	}
	dist, queue := sc.dist[:n], sc.queue[:0]
	for _, src := range sources {
		for i := range dist {
			dist[i] = Unreachable
		}
		g.bfsInto(src, dist, queue)
		for _, v := range sources {
			if v == src {
				continue
			}
			d := dist[v]
			if d == Unreachable {
				stats.Connected = false
				continue
			}
			for d >= len(stats.Hist) {
				stats.Hist = append(stats.Hist, 0)
			}
			stats.Hist[d]++
			sum += int64(d)
			stats.Pairs++
			if d > stats.Diameter {
				stats.Diameter = d
			}
		}
	}
	if stats.Pairs > 0 {
		stats.Mean = float64(sum) / float64(stats.Pairs)
	}
	sc.hist = stats.Hist // keep any growth for the next call
	return stats
}

// Eccentricity returns the maximum finite BFS distance from src.
func (g *Graph) Eccentricity(src int) int {
	dist := g.BFS(src)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the maximum eccentricity over all vertices
// (ignoring unreachable pairs).
func (g *Graph) Diameter() int {
	diam := 0
	n := g.N()
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = Unreachable
		}
		g.bfsInto(s, dist, queue)
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}
