package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	if g.Connected() {
		// 5 isolated vertices are not connected.
		t.Fatal("empty 5-vertex graph reported connected")
	}
}

func TestNewZeroAndOne(t *testing.T) {
	if !New(0).Connected() {
		t.Error("0-vertex graph should be connected")
	}
	if !New(1).Connected() {
		t.Error("1-vertex graph should be connected")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) = false on empty graph")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("duplicate edge (reversed) accepted")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge not symmetric")
	}
	if g.HasEdge(0, 0) {
		t.Fatal("self-loop reported present")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatal("degrees wrong after one edge")
	}
}

func TestAddEdgeSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge(1,0) = false")
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge still present after removal")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d after removal, want 1", g.M())
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("removing absent edge returned true")
	}
	if g.Degree(1) != 1 {
		t.Fatalf("Degree(1) = %d, want 1", g.Degree(1))
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(6)
	for _, v := range []int{5, 2, 4, 1} {
		g.AddEdge(0, v)
	}
	ns := g.Neighbors(0)
	want := []int{1, 2, 4, 5}
	if len(ns) != len(want) {
		t.Fatalf("neighbors = %v, want %v", ns, want)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", ns, want)
		}
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(0, 2)
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("got %d edges, want 2", len(es))
	}
	for _, e := range es {
		if e.U >= e.V {
			t.Fatalf("edge %v not canonical", e)
		}
	}
	if es[0] != (Edge{0, 2}) || es[1] != (Edge{1, 3}) {
		t.Fatalf("edges = %v, want [{0 2} {1 3}]", es)
	}
}

func TestCanon(t *testing.T) {
	if Canon(5, 2) != (Edge{2, 5}) {
		t.Fatal("Canon(5,2) wrong")
	}
	if Canon(2, 5) != (Edge{2, 5}) {
		t.Fatal("Canon(2,5) wrong")
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone affected original")
	}
	if c.M() != 2 || g.M() != 1 {
		t.Fatal("edge counts wrong after clone mutation")
	}
}

func TestAddVertex(t *testing.T) {
	g := New(2)
	id := g.AddVertex()
	if id != 2 || g.N() != 3 {
		t.Fatalf("AddVertex returned %d (n=%d), want 2 (n=3)", id, g.N())
	}
	g.AddEdge(2, 0)
	if !g.HasEdge(0, 2) {
		t.Fatal("edge to new vertex missing")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes = %d,%d,%d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
}

func TestConnectedPathGraph(t *testing.T) {
	g := New(10)
	for i := 0; i < 9; i++ {
		g.AddEdge(i, i+1)
	}
	if !g.Connected() {
		t.Fatal("path graph not connected")
	}
	g.RemoveEdge(4, 5)
	if g.Connected() {
		t.Fatal("cut path graph still connected")
	}
}

func TestDegreeExtremes(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if g.MaxDegree() != 3 || g.MinDegree() != 1 {
		t.Fatalf("max=%d min=%d, want 3, 1", g.MaxDegree(), g.MinDegree())
	}
	if New(2).MinDegree() != 0 {
		t.Fatal("isolated-vertex graph should have min degree 0")
	}
	if g.IsRegular(1) {
		t.Fatal("star graph reported regular")
	}
	k4 := completeGraph(4)
	if !k4.IsRegular(3) {
		t.Fatal("K4 not reported 3-regular")
	}
}

func completeGraph(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

func ringGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestBFSRing(t *testing.T) {
	g := ringGraph(8)
	d := g.BFS(0)
	want := []int{0, 1, 2, 3, 4, 3, 2, 1}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], w)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	d := g.BFS(0)
	if d[2] != Unreachable {
		t.Fatalf("dist[2] = %d, want Unreachable", d[2])
	}
}

func TestShortestPathEndpoints(t *testing.T) {
	g := ringGraph(6)
	p := g.ShortestPath(0, 3)
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Fatalf("path = %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path uses missing edge %d-%d", p[i], p[i+1])
		}
	}
	if got := g.ShortestPath(2, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("trivial path = %v", got)
	}
	g2 := New(2)
	if g2.ShortestPath(0, 1) != nil {
		t.Fatal("path found in disconnected graph")
	}
}

func TestAllPairsStatsComplete(t *testing.T) {
	g := completeGraph(5)
	s := g.AllPairsStats()
	if s.Mean != 1 || s.Diameter != 1 {
		t.Fatalf("K5 stats mean=%v diam=%d", s.Mean, s.Diameter)
	}
	if s.Pairs != 20 {
		t.Fatalf("K5 pairs = %d, want 20", s.Pairs)
	}
	if !s.Connected {
		t.Fatal("K5 reported disconnected")
	}
}

func TestAllPairsStatsRing(t *testing.T) {
	g := ringGraph(6)
	s := g.AllPairsStats()
	// Ring of 6: each vertex sees distances 1,1,2,2,3 -> mean 9/5.
	if s.Diameter != 3 {
		t.Fatalf("diameter = %d, want 3", s.Diameter)
	}
	if want := 9.0 / 5.0; s.Mean != want {
		t.Fatalf("mean = %v, want %v", s.Mean, want)
	}
	if s.Hist[1] != 12 || s.Hist[2] != 12 || s.Hist[3] != 6 {
		t.Fatalf("hist = %v", s.Hist)
	}
}

func TestPairsStatsSubset(t *testing.T) {
	g := ringGraph(8)
	s := g.PairsStats([]int{0, 4})
	if s.Pairs != 2 || s.Mean != 4 || s.Diameter != 4 {
		t.Fatalf("subset stats = %+v", s)
	}
}

func TestPathStatsPercentileAndCDF(t *testing.T) {
	g := ringGraph(6)
	s := g.AllPairsStats()
	if p := s.Percentile(0.4); p != 1 {
		t.Fatalf("P40 = %d, want 1", p)
	}
	if p := s.Percentile(1.0); p != 3 {
		t.Fatalf("P100 = %d, want 3", p)
	}
	cdf := s.CDF()
	if cdf[3] != 1.0 {
		t.Fatalf("CDF[diam] = %v, want 1", cdf[3])
	}
	if cdf[1] <= 0 || cdf[1] >= cdf[2] {
		t.Fatalf("CDF not increasing: %v", cdf)
	}
}

func TestDiameterAndEccentricity(t *testing.T) {
	g := New(5) // path 0-1-2-3-4
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	if g.Diameter() != 4 {
		t.Fatalf("diameter = %d, want 4", g.Diameter())
	}
	if g.Eccentricity(2) != 2 {
		t.Fatalf("ecc(2) = %d, want 2", g.Eccentricity(2))
	}
	if g.Eccentricity(0) != 4 {
		t.Fatalf("ecc(0) = %d, want 4", g.Eccentricity(0))
	}
}

// Property: on random graphs, BFS distances satisfy the triangle-ish
// property dist(v) <= dist(u)+1 for every edge {u,v}, and ShortestPath
// length equals the BFS distance.
func TestBFSPropertyRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(30)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		d := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := d[e.U], d[e.V]
			if du != Unreachable && dv != Unreachable {
				if dv > du+1 || du > dv+1 {
					t.Fatalf("BFS violates edge relaxation: d[%d]=%d d[%d]=%d", e.U, du, e.V, dv)
				}
			}
			if (du == Unreachable) != (dv == Unreachable) {
				t.Fatalf("edge spans reachable/unreachable: %v", e)
			}
		}
		for v := 1; v < n; v++ {
			p := g.ShortestPath(0, v)
			if d[v] == Unreachable {
				if p != nil {
					t.Fatalf("path to unreachable %d", v)
				}
				continue
			}
			if len(p)-1 != d[v] {
				t.Fatalf("path len %d != BFS dist %d", len(p)-1, d[v])
			}
		}
	}
}

// Property-based: adding then removing an edge restores the original graph.
func TestAddRemoveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		g := New(n)
		for i := 0; i < n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		before := g.Edges()
		u, v := r.Intn(n), (r.Intn(n-1) + 1)
		v = (u + v) % n
		if u == v {
			return true
		}
		had := g.HasEdge(u, v)
		if had {
			g.RemoveEdge(u, v)
			g.AddEdge(u, v)
		} else {
			g.AddEdge(u, v)
			g.RemoveEdge(u, v)
		}
		after := g.Edges()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
