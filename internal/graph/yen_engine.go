package graph

import "sort"

// A KSPEngine computes loopless k-shortest paths with reusable flat
// scratch: epoch-stamped visited/mask arrays, a preallocated BFS ring
// queue, and a compact masked-edge list replace the per-call maps and
// slices of the one-shot algorithm. Results are bit-identical to
// Graph.KShortestPaths (which delegates here); only the wall-clock and
// allocation profile differ. The returned paths are freshly allocated and
// owned by the caller; everything else is engine scratch.
//
// An engine is bound to one graph and is NOT safe for concurrent use —
// give each worker goroutine its own (routing.Compiled does exactly
// that). Mutating the graph between calls is allowed: the scratch carries
// no cross-call state beyond its epoch counter, so the next call simply
// observes the new adjacency.
type KSPEngine struct {
	g     *Graph
	csr   *CSR // refreshed at the top of each Paths call
	epoch uint32
	// BFS scratch, valid where stamp == epoch.
	seen   []uint32
	dist   []int32
	parent []int32
	queue  []int32
	// Spur masks, valid where stamp == epoch.
	skipNode []uint32
	// Masked neighbors of the current spur node. Every edge Yen masks is
	// p[i]→p[i+1] of a path sharing the spur root — always incident to
	// the spur node — so the mask is a handful of neighbor ids checked
	// only when the BFS expands its source.
	maskedNbrs []int32
	candidates []Path
}

// NewKSPEngine returns an engine for g. O(N) memory; cheap enough to
// build one per worker, too expensive to build one per pair.
func NewKSPEngine(g *Graph) *KSPEngine {
	return &KSPEngine{g: g}
}

// bump starts a new epoch, invalidating all stamps at once. On the
// (practically unreachable) wraparound the stamp arrays are cleared so
// stale stamps from 4 billion spurs ago cannot alias the new epoch.
func (e *KSPEngine) bump() {
	e.epoch++
	if e.epoch == 0 {
		clear(e.seen)
		clear(e.skipNode)
		e.epoch = 1
	}
}

func (e *KSPEngine) ensure() {
	n := e.csr.N()
	if len(e.seen) >= n {
		return
	}
	e.seen = make([]uint32, n)
	e.dist = make([]int32, n)
	e.parent = make([]int32, n)
	e.queue = make([]int32, n)
	e.skipNode = make([]uint32, n)
	e.epoch = 0
}

// Paths returns up to k loopless shortest src→dst paths in nondecreasing
// hop-count order with lexicographic tie-breaks — the same contract, and
// the same bytes, as Graph.KShortestPaths.
func (e *KSPEngine) Paths(src, dst, k int) []Path {
	if k <= 0 {
		return nil
	}
	// Refresh the adjacency snapshot: unmutated graphs return the cached
	// pointer, mutated ones a rebuilt snapshot — which is how "mutating
	// the graph between calls" keeps working.
	e.csr = e.g.CSR()
	e.ensure()
	e.maskedNbrs = e.maskedNbrs[:0]
	e.bump()
	first := e.bfs(src, dst, false)
	if first == nil {
		return nil
	}
	paths := []Path{first}
	candidates := e.candidates[:0]

	for len(paths) < k {
		prev := paths[len(paths)-1]
		for i := 0; i < len(prev)-1; i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]

			e.bump()
			e.maskedNbrs = e.maskedNbrs[:0]
			// Mask edges that would recreate an already-known path
			// sharing this root (p[i] is the spur node for all of them),
			// then the root's interior nodes.
			for _, p := range paths {
				if len(p) > i && samePrefix(p, rootPath) {
					e.maskNbr(p[i+1])
				}
			}
			for _, p := range candidates {
				if len(p) > i && samePrefix(p, rootPath) {
					e.maskNbr(p[i+1])
				}
			}
			for _, v := range rootPath[:len(rootPath)-1] {
				e.skipNode[v] = e.epoch
			}

			spurPath := e.bfs(spurNode, dst, true)
			if spurPath == nil {
				continue
			}
			total := make(Path, 0, i+len(spurPath))
			total = append(total, rootPath...)
			total = append(total, spurPath[1:]...)
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return lessPath(candidates[a], candidates[b]) })
		paths = append(paths, candidates[0])
		candidates = append(candidates[:0], candidates[1:]...)
	}
	// Keep the slice's capacity but actually drop the Path references it
	// accumulated (including slots past len from the pop-front shifts),
	// so a long-lived engine doesn't pin a large ranking round's memory.
	clear(candidates[:cap(candidates)])
	e.candidates = candidates[:0]
	return paths
}

//jellyvet:hotpath
func (e *KSPEngine) maskNbr(v int) {
	for _, m := range e.maskedNbrs {
		if m == int32(v) {
			return
		}
	}
	e.maskedNbrs = append(e.maskedNbrs, int32(v)) //jellyvet:allow hotpath -- grows engine-owned mask scratch; bounded by max degree and reused across queries
}

//jellyvet:hotpath
func (e *KSPEngine) nbrMasked(v int) bool {
	for _, m := range e.maskedNbrs {
		if m == int32(v) {
			return true
		}
	}
	return false
}

// bfs finds one shortest src→dst path under the current epoch's masks,
// breaking ties lexicographically (FIFO order over sorted adjacency —
// exactly the one-shot maskedShortestPath's rule; dst's parent is fixed
// at discovery, so the search stops there). masked selects whether the
// spur masks apply; the first path of a pair runs unmasked. Edge masks
// apply only to expansions of src itself: every masked edge is incident
// to the spur node, and its far endpoint is src's neighbor (traversals
// back into src are impossible — src is already seen).
//
//jellyvet:hotpath
func (e *KSPEngine) bfs(src, dst int, masked bool) Path {
	if masked && (e.skipNode[src] == e.epoch || e.skipNode[dst] == e.epoch) {
		return nil
	}
	if src == dst {
		return Path{src} //jellyvet:allow hotpath -- returned Path is caller-owned by contract; one allocation per emitted path
	}
	c := e.csr
	ep := e.epoch
	e.seen[src] = ep
	e.dist[src] = 0
	e.parent[src] = -1
	q := e.queue
	q[0] = int32(src)
	head, tail := 0, 1
	found := false
	for head < tail && !found {
		u := int(q[head])
		head++
		du := e.dist[u]
		edgeMasks := masked && u == src && len(e.maskedNbrs) > 0
		for _, v32 := range c.Nbrs[c.Offsets[u]:c.Offsets[u+1]] {
			v := int(v32)
			if e.seen[v] == ep || (masked && e.skipNode[v] == ep) {
				continue
			}
			if edgeMasks && e.nbrMasked(v) {
				continue
			}
			e.seen[v] = ep
			e.dist[v] = du + 1
			e.parent[v] = int32(u)
			if v == dst {
				found = true
				break
			}
			q[tail] = int32(v)
			tail++
		}
	}
	if !found {
		return nil
	}
	path := make(Path, e.dist[dst]+1) //jellyvet:allow hotpath -- returned Path is caller-owned by contract; one allocation per emitted path
	cur := dst
	for i := len(path) - 1; i >= 0; i-- {
		path[i] = cur
		cur = int(e.parent[cur])
	}
	return path
}
