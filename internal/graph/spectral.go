package graph

import "math"

// SecondEigenvalue estimates the second-largest eigenvalue (in absolute
// value) of the adjacency matrix of an r-regular graph by power iteration
// with deflation of the trivial all-ones eigenvector. The spectral gap
// r − λ₂ measures expansion: the Jellyfish paper's capacity results rest on
// random regular graphs being near-optimal expanders (λ₂ ≈ 2√(r−1), the
// Ramanujan bound), which this function lets callers verify.
//
// The graph must be r-regular (checked); iters controls accuracy
// (0 selects a default).
func (g *Graph) SecondEigenvalue(r, iters int) float64 {
	if !g.IsRegular(r) {
		panic("graph: SecondEigenvalue requires an r-regular graph")
	}
	n := g.N()
	if n < 2 || r == 0 {
		return 0
	}
	if iters <= 0 {
		iters = 200
	}
	// Deterministic pseudo-random start vector, orthogonal to all-ones.
	x := make([]float64, n)
	h := uint64(0x9e3779b97f4a7c15)
	for i := range x {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		x[i] = float64(h%2048)/1024 - 1
	}
	deflate(x)
	normalize(x)

	y := make([]float64, n)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		// y = A·x
		for i := range y {
			y[i] = 0
		}
		for u := 0; u < n; u++ {
			xu := x[u]
			for _, v := range g.adj[u] {
				y[v] += xu
			}
		}
		deflate(y)
		lambda = norm(y)
		if lambda == 0 {
			return 0
		}
		for i := range y {
			y[i] /= lambda
		}
		x, y = y, x
	}
	return lambda
}

// RamanujanBound returns 2√(r−1), the asymptotic optimum for λ₂ of an
// r-regular graph; random regular graphs come within o(1) of it.
func RamanujanBound(r int) float64 {
	if r < 1 {
		return 0
	}
	return 2 * math.Sqrt(float64(r-1))
}

// deflate removes the component along the all-ones vector.
func deflate(x []float64) {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	n := norm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}
