package graph

import (
	"math/rand"
	"testing"
)

// diamondGraph:  0-1, 0-2, 1-3, 2-3, plus long detour 0-4, 4-5, 5-3.
func diamondGraph() *Graph {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(0, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	return g
}

func TestKShortestDiamond(t *testing.T) {
	g := diamondGraph()
	ps := g.KShortestPaths(0, 3, 4)
	if len(ps) != 3 {
		t.Fatalf("got %d paths, want 3: %v", len(ps), ps)
	}
	if ps[0].Len() != 2 || ps[1].Len() != 2 || ps[2].Len() != 3 {
		t.Fatalf("path lengths = %d,%d,%d, want 2,2,3", ps[0].Len(), ps[1].Len(), ps[2].Len())
	}
	// Deterministic tie-break: 0-1-3 before 0-2-3.
	if !ps[0].Equal(Path{0, 1, 3}) || !ps[1].Equal(Path{0, 2, 3}) {
		t.Fatalf("tie-break order wrong: %v", ps[:2])
	}
	if !ps[2].Equal(Path{0, 4, 5, 3}) {
		t.Fatalf("third path = %v", ps[2])
	}
}

func TestKShortestLooplessAndValid(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 6 + r.Intn(20)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		src, dst := 0, n-1
		ps := g.KShortestPaths(src, dst, 8)
		seen := map[string]bool{}
		prevLen := 0
		for _, p := range ps {
			if p[0] != src || p[len(p)-1] != dst {
				t.Fatalf("path endpoints wrong: %v", p)
			}
			// Valid edges.
			for i := 0; i+1 < len(p); i++ {
				if !g.HasEdge(p[i], p[i+1]) {
					t.Fatalf("path uses non-edge: %v", p)
				}
			}
			// Loopless.
			nodes := map[int]bool{}
			for _, v := range p {
				if nodes[v] {
					t.Fatalf("path has loop: %v", p)
				}
				nodes[v] = true
			}
			// Unique.
			key := ""
			for _, v := range p {
				key += string(rune(v)) + ","
			}
			if seen[key] {
				t.Fatalf("duplicate path: %v", p)
			}
			seen[key] = true
			// Nondecreasing length.
			if p.Len() < prevLen {
				t.Fatalf("paths out of order: %v", ps)
			}
			prevLen = p.Len()
		}
		// First path must be a true shortest path.
		if len(ps) > 0 {
			d := g.BFS(src)
			if ps[0].Len() != d[dst] {
				t.Fatalf("first path len %d != BFS %d", ps[0].Len(), d[dst])
			}
		}
	}
}

func TestKShortestUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	if ps := g.KShortestPaths(0, 3, 5); ps != nil {
		t.Fatalf("got paths to unreachable vertex: %v", ps)
	}
}

func TestKShortestKZero(t *testing.T) {
	g := diamondGraph()
	if ps := g.KShortestPaths(0, 3, 0); ps != nil {
		t.Fatalf("k=0 returned %v", ps)
	}
}

func TestKShortestSingleVertex(t *testing.T) {
	g := New(1)
	ps := g.KShortestPaths(0, 0, 3)
	if len(ps) != 1 || !ps[0].Equal(Path{0}) {
		t.Fatalf("self path = %v", ps)
	}
}

func TestKShortestExhaustsCandidates(t *testing.T) {
	// Path graph has exactly one loopless path between ends.
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	ps := g.KShortestPaths(0, 4, 10)
	if len(ps) != 1 {
		t.Fatalf("got %d paths on a path graph, want 1", len(ps))
	}
}

func TestKShortestRingCount(t *testing.T) {
	// A ring has exactly two loopless paths between any pair.
	g := ringGraph(7)
	ps := g.KShortestPaths(0, 3, 10)
	if len(ps) != 2 {
		t.Fatalf("got %d paths on ring, want 2: %v", len(ps), ps)
	}
	if ps[0].Len() != 3 || ps[1].Len() != 4 {
		t.Fatalf("ring path lengths = %d, %d", ps[0].Len(), ps[1].Len())
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(25)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		bfs := g.BFS(0)
		dist, parent := g.DijkstraWeights(0, func(u, v int) float64 { return 1 })
		for v := 0; v < n; v++ {
			if bfs[v] == Unreachable {
				if parent[v] != -1 && v != 0 {
					t.Fatalf("dijkstra reached unreachable %d", v)
				}
				continue
			}
			if int(dist[v]) != bfs[v] {
				t.Fatalf("dijkstra dist %v != bfs %d at %d", dist[v], bfs[v], v)
			}
		}
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// Triangle where the direct edge is heavy.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	w := func(u, v int) float64 {
		if Canon(u, v) == (Edge{0, 2}) {
			return 10
		}
		return 1
	}
	dist, parent := g.DijkstraWeights(0, w)
	if dist[2] != 2 {
		t.Fatalf("dist[2] = %v, want 2 (via vertex 1)", dist[2])
	}
	if parent[2] != 1 {
		t.Fatalf("parent[2] = %d, want 1", parent[2])
	}
}
