package graph

import (
	"math"
	"testing"
)

func TestSecondEigenvalueCompleteGraph(t *testing.T) {
	// K_n has eigenvalues n-1 (once) and -1 (n-1 times): λ₂ = 1.
	g := completeGraph(8)
	l2 := g.SecondEigenvalue(7, 500)
	if math.Abs(l2-1) > 0.01 {
		t.Fatalf("K8 lambda2 = %v, want 1", l2)
	}
}

func TestSecondEigenvalueRing(t *testing.T) {
	// Even cycles are bipartite: the eigenvalue of largest absolute value
	// after the trivial one is −2, so |λ₂| = 2.
	g := ringGraph(12)
	l2 := g.SecondEigenvalue(2, 2000)
	if math.Abs(l2-2) > 0.01 {
		t.Fatalf("C12 |lambda2| = %v, want 2", l2)
	}
}

func TestSecondEigenvaluePetersen(t *testing.T) {
	// Petersen graph spectrum: 3, 1 (×5), −2 (×4): |λ₂| = 2.
	g := New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
		g.AddEdge(5+i, 5+((i+2)%5))
		g.AddEdge(i, 5+i)
	}
	l2 := g.SecondEigenvalue(3, 1000)
	if math.Abs(l2-2) > 0.02 {
		t.Fatalf("Petersen |lambda2| = %v, want 2", l2)
	}
}

func TestSecondEigenvaluePanicsOnIrregular(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on irregular graph")
		}
	}()
	g.SecondEigenvalue(2, 10)
}

func TestRamanujanBound(t *testing.T) {
	if RamanujanBound(3) != 2*math.Sqrt(2) {
		t.Fatal("bound(3) wrong")
	}
	if RamanujanBound(0) != 0 {
		t.Fatal("bound(0) != 0")
	}
}

func TestSecondEigenvalueTiny(t *testing.T) {
	if New(1).SecondEigenvalue(0, 10) != 0 {
		t.Fatal("single vertex lambda2 != 0")
	}
}
