package graph

// Bridges returns every bridge (cut edge) of the graph — cables whose
// single failure disconnects some pair of switches — via Tarjan's
// linear-time low-link algorithm. A healthy Jellyfish has none (it is
// r-connected, §4.3); bridges appear only after heavy failures, and
// identifying them tells an operator which cables must be repaired first.
func (g *Graph) Bridges() []Edge {
	n := g.N()
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	var bridges []Edge
	timer := 0

	// Iterative DFS (explicit stack) to stay safe on large graphs.
	type frame struct {
		v, idx int
	}
	for start := 0; start < n; start++ {
		if disc[start] != -1 {
			continue
		}
		stack := []frame{{start, 0}}
		disc[start] = timer
		low[start] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			ns := g.Neighbors(f.v)
			if f.idx < len(ns) {
				u := ns[f.idx]
				f.idx++
				if disc[u] == -1 {
					parent[u] = f.v
					disc[u] = timer
					low[u] = timer
					timer++
					stack = append(stack, frame{u, 0})
				} else if u != parent[f.v] {
					if disc[u] < low[f.v] {
						low[f.v] = disc[u]
					}
				}
				continue
			}
			// Post-order: propagate low-link to the parent.
			stack = stack[:len(stack)-1]
			if p := parent[f.v]; p != -1 {
				if low[f.v] < low[p] {
					low[p] = low[f.v]
				}
				if low[f.v] > disc[p] {
					bridges = append(bridges, Canon(p, f.v))
				}
			}
		}
	}
	return bridges
}
