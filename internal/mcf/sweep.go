package mcf

import "math"

// This file is the solver's shortest-path kernel: a zero-steady-state-
// allocation Dijkstra over the CSR arc arrays, with per-caller reusable
// scratch, generation-stamped clearing, an inlined index-based 4-ary heap,
// and early exit once every destination of the swept source is settled.
//
// The kernel is the hot path of every capacity result in the repo: a GK
// solve runs one sweep per source per phase (plus recomputes and dual
// refreshes), so sweeps number in the hundreds of thousands per topology.
// The seed implementation rebuilt four O(n) slices and a boxed
// container/heap per sweep; sweepScratch owns all of that state across
// sweeps and clears it in O(touched) via generation stamps.

// sweepScratch is the reusable per-sweep state. One instance serves one
// sweep at a time; the solver keeps a pool indexed by batch slot (phases)
// and by worker (dual refreshes). All clearing is done by bumping gen, so
// a sweep costs no allocations and no O(n) memsets in steady state.
type sweepScratch struct {
	dist      []float64 // tentative/final distance; valid iff reach[v] == gen
	parentArc []int32   // arc entering v on the tree; valid iff reach[v] == gen
	reach     []uint32  // v touched this sweep iff reach[v] == gen
	gen       uint32
	heapNode  []int32 // 4-ary min-heap, parallel slices (node, key)
	heapDist  []float64
}

func newSweepScratch(n int) *sweepScratch {
	return &sweepScratch{
		dist:      make([]float64, n),
		parentArc: make([]int32, n),
		reach:     make([]uint32, n),
	}
}

// distTo returns the sweep's distance to v, +Inf if v was never reached.
// Valid only for the sweep's requested destinations (each is settled or
// unreachable when sweep returns; other vertices may hold tentative
// values after an early exit).
//
//jellyvet:hotpath
func (sc *sweepScratch) distTo(v int32) float64 {
	if sc.reach[v] != sc.gen {
		return math.Inf(1)
	}
	return sc.dist[v]
}

// sweep runs Dijkstra from src under the solver's current arc lengths,
// stopping as soon as every vertex in dsts is settled. dsts must be sorted
// and duplicate-free; an empty dsts settles the whole reachable component.
//
// Early exit is exact, not approximate: a vertex's distance and parent are
// final at settle time, so the prefix of the sweep that ran is bit-identical
// to the same prefix of a full sweep. Destinations not settled when the
// frontier empties are unreachable (distTo reports +Inf).
//
// The body hand-inlines the heap and hoists every array into a local so
// the whole loop runs on registers and bounds-check-eliminated slices;
// pushes append into scratch-owned backing arrays, so steady state
// allocates nothing. Relaxation uses strict improvement, which makes the
// pushed keys per node strictly decreasing — a popped entry is stale iff
// its key exceeds dist[node], so no separate settled array is needed.
//
//jellyvet:hotpath
func (s *solver) sweep(sc *sweepScratch, src int32, dsts []int32) {
	gen := sc.gen + 1
	if gen == 0 { // uint32 wraparound: stamps from 2^32 sweeps ago alias
		clear(sc.reach)
		gen = 1
	}
	sc.gen = gen
	dist, parent, reach := sc.dist, sc.parentArc, sc.reach
	csrStart, csrArc, arcTo, length := s.csrStart, s.csrArc, s.arcTo, s.length
	hn, hd := sc.heapNode[:0], sc.heapDist[:0]
	dist[src] = 0
	parent[src] = -1
	reach[src] = gen
	hn = append(hn, src) //jellyvet:allow hotpath -- push into scratch-owned heap backing; capacity is warm after the first sweep (TestPhaseLoopZeroAllocs)
	hd = append(hd, 0)   //jellyvet:allow hotpath -- push into scratch-owned heap backing; capacity is warm after the first sweep (TestPhaseLoopZeroAllocs)
	// Single-destination fast path (permutation traffic: ~1 dst/source).
	target := int32(-1)
	if len(dsts) == 1 {
		target = dsts[0]
	}
	pending := len(dsts)
	for len(hn) > 0 {
		// pop-min
		u, du := hn[0], hd[0]
		last := len(hn) - 1
		lv, ld := hn[last], hd[last]
		hn, hd = hn[:last], hd[:last]
		if last > 0 {
			i := 0
			for {
				c := 4*i + 1
				if c >= last {
					break
				}
				m, md := c, hd[c]
				hi := c + 4
				if hi > last {
					hi = last
				}
				for j := c + 1; j < hi; j++ {
					if hd[j] < md {
						m, md = j, hd[j]
					}
				}
				if md >= ld {
					break
				}
				hn[i], hd[i] = hn[m], hd[m]
				i = m
			}
			hn[i], hd[i] = lv, ld
		}
		if du > dist[u] {
			continue // stale entry (lazy deletion)
		}
		// u is settled.
		if u == target || (target < 0 && pending > 0 && containsSorted(dsts, u)) {
			pending--
			if pending == 0 {
				break
			}
		}
		for ai := csrStart[u]; ai < csrStart[u+1]; ai++ {
			a := csrArc[ai]
			v := arcTo[a]
			nd := du + length[a]
			if reach[v] == gen && nd >= dist[v] {
				continue
			}
			dist[v] = nd
			parent[v] = a
			reach[v] = gen
			// push(v, nd)
			hn = append(hn, v)  //jellyvet:allow hotpath -- push into scratch-owned heap backing; capacity is warm after the first sweep (TestPhaseLoopZeroAllocs)
			hd = append(hd, nd) //jellyvet:allow hotpath -- push into scratch-owned heap backing; capacity is warm after the first sweep (TestPhaseLoopZeroAllocs)
			i := len(hn) - 1
			for i > 0 {
				p := (i - 1) >> 2
				if hd[p] <= nd {
					break
				}
				hn[i], hd[i] = hn[p], hd[p]
				i = p
			}
			hn[i], hd[i] = v, nd
		}
	}
	sc.heapNode, sc.heapDist = hn[:0], hd[:0] // keep grown backing arrays
}

// containsSorted reports whether sorted list contains v. Destination lists
// are tiny (permutation traffic has ~1 per source), so a linear scan with
// the sorted early-out beats binary search.
func containsSorted(list []int32, v int32) bool {
	for _, x := range list {
		if x >= v {
			return x == v
		}
	}
	return false
}
