package mcf

import "jellyfish/internal/telemetry"

// Obs is the solver's telemetry bundle: shared atomic counters and
// histograms plus an optional per-goroutine flight recorder. All fields
// may be nil, and a nil *Obs disables instrumentation entirely — every
// helper below is a nil-safe no-op, so the solver carries no second
// code path for "telemetry off".
//
// The flow is strictly one-way (telemetry reads clocks and writes
// atomics, never the reverse; enforced by jellyvet's obsconfine
// analyzer): nothing the solver computes depends on an Obs value, which
// is why instrumented and uninstrumented runs are byte-identical.
//
// Rec, when set, must be confined to the goroutine running the solve —
// the scheduler gives each shard worker its own recorder.
type Obs struct {
	Solves        *telemetry.Counter // solver runs started
	Phases        *telemetry.Counter // GK phases executed
	Batches       *telemetry.Counter // Dijkstra source batches swept
	DualRefreshes *telemetry.Counter // exact dual certificate recomputations
	SolveDur      *telemetry.Histogram
	PhaseDur      *telemetry.Histogram
	Rec           *telemetry.Recorder // spans: mcf.solve > gk.phase / gk.dual
}

func (o *Obs) solveBegin(commodities int) telemetry.Timer {
	if o == nil {
		return telemetry.Timer{}
	}
	o.Solves.Inc()
	o.Rec.Begin("mcf.solve", int64(commodities))
	return telemetry.StartTimer()
}

func (o *Obs) solveEnd(t telemetry.Timer) {
	if o == nil {
		return
	}
	o.SolveDur.ObserveSince(t)
	o.Rec.End()
}

func (o *Obs) phaseBegin(phase int) telemetry.Timer {
	if o == nil {
		return telemetry.Timer{}
	}
	o.Rec.Begin("gk.phase", int64(phase))
	return telemetry.StartTimer()
}

func (o *Obs) phaseEnd(t telemetry.Timer) {
	if o == nil {
		return
	}
	o.Phases.Inc()
	o.PhaseDur.ObserveSince(t)
	o.Rec.End()
}

func (o *Obs) dualBegin() {
	if o == nil {
		return
	}
	o.Rec.Begin("gk.dual", 0)
}

func (o *Obs) dualEnd() {
	if o == nil {
		return
	}
	o.DualRefreshes.Inc()
	o.Rec.End()
}

// batch counts one Dijkstra source batch. Called from the phase loop
// (//jellyvet:hotpath): a nil check plus one atomic add, no allocation.
func (o *Obs) batch() {
	if o == nil {
		return
	}
	o.Batches.Inc()
}
