// Package mcf computes maximum concurrent multi-commodity flow on switch
// topologies: the largest λ such that λ·demand can be routed for every
// commodity simultaneously, with flows splittable across paths. This is the
// "optimal routing / ideal load balancing" oracle the Jellyfish paper
// evaluates topologies with (the paper uses the CPLEX LP solver; see
// DESIGN.md §8 for the substitution argument).
//
// The solver is the Garg–Könemann multiplicative-weights approximation with
// Fleischer-style shortest-path reuse. Correctness does not rest on the
// routing heuristic: every run produces
//
//   - a primal certificate — an explicit feasible flow, whose concurrent
//     fraction is Result.Lambda (a true lower bound), and
//   - a dual certificate — a length function whose normalized volume bounds
//     the optimum from above (Result.UpperBound).
//
// The solver iterates until the two certificates are within Options.Tol of
// each other, so reported throughputs carry per-run accuracy guarantees.
package mcf

import (
	"container/heap"
	"math"

	"jellyfish/internal/graph"
	"jellyfish/internal/parallel"
)

// A Commodity is a demand of Demand units from switch Src to switch Dst.
type Commodity struct {
	Src, Dst int
	Demand   float64
}

// Options configure the solver. The zero value selects sensible defaults.
type Options struct {
	// Epsilon is the multiplicative-weights step size (default 0.1).
	Epsilon float64
	// Tol is the target relative gap between the primal and dual
	// certificates (default 0.05).
	Tol float64
	// MaxPhases caps the number of GK phases (default 3000).
	MaxPhases int
	// LinkCapacity is the capacity of every switch-switch link in each
	// direction, in server-NIC units (default 1).
	LinkCapacity float64
	// Workers bounds the goroutines used for the per-source shortest-path
	// sweeps (0 = all cores, 1 = serial). Sources are processed in fixed
	// batches of sourceBatch trees computed against a length snapshot, so
	// the result is bit-identical for every Workers value.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.1
	}
	if o.Tol <= 0 {
		o.Tol = 0.05
	}
	if o.MaxPhases <= 0 {
		o.MaxPhases = 3000
	}
	if o.LinkCapacity <= 0 {
		o.LinkCapacity = 1
	}
	return o
}

// Result reports the outcome of a concurrent-flow computation.
type Result struct {
	// Lambda is the certified feasible concurrent fraction: every commodity
	// can simultaneously route Lambda × its demand.
	Lambda float64
	// UpperBound is the dual bound: the optimum is ≤ UpperBound.
	UpperBound float64
	// Phases is the number of GK phases executed.
	Phases int
	// ArcFlow[i] is the (scaled, feasible) flow on arc i; arcs are indexed
	// as 2*edgeIndex (U→V) and 2*edgeIndex+1 (V→U) over g.Edges().
	ArcFlow []float64
	// Edges records the edge list the arc indexing refers to.
	Edges []graph.Edge
}

// MaxConcurrentFlow computes the maximum concurrent flow for the given
// commodities over the switch graph g. Commodities with Src == Dst or
// Demand <= 0 are ignored (they consume no network capacity). If there are
// no effective commodities the result has Lambda = +Inf.
func MaxConcurrentFlow(g *graph.Graph, comms []Commodity, opt Options) Result {
	opt = opt.withDefaults()
	s := newSolver(g, comms, opt)
	if s == nil {
		return Result{Lambda: math.Inf(1), UpperBound: math.Inf(1)}
	}
	return s.run()
}

// FeasibleAtFull reports whether all commodities can be routed at full
// demand (λ ≥ 1), using certificates to answer early in either direction.
// slack tightens the test: it requires λ ≥ 1-slack to accept (accounting for
// approximation error) and UpperBound < 1-slack to reject.
func FeasibleAtFull(g *graph.Graph, comms []Commodity, opt Options, slack float64) bool {
	opt = opt.withDefaults()
	s := newSolver(g, comms, opt)
	if s == nil {
		return true
	}
	s.earlyAccept = 1 - slack
	s.earlyReject = 1 - slack
	res := s.run()
	return res.Lambda >= 1-slack
}

type solver struct {
	g   *graph.Graph
	opt Options

	// static topology (CSR adjacency with arc ids)
	n       int
	edges   []graph.Edge
	arcTo   []int   // arc i goes to arcTo[i]
	arcCap  float64 // uniform capacity
	nodeArc [][]int // outgoing arc ids per node

	// commodities grouped by source
	srcList []int   // distinct sources
	bySrc   [][]int // commodity indices per source (parallel to srcList)
	comms   []Commodity

	// GK state
	length  []float64 // per arc
	flow    []float64 // per arc, accumulated unscaled
	delta   float64
	demSum  float64
	epsilon float64

	earlyAccept float64 // accept once certified lambda >= this (0 = off)
	earlyReject float64 // reject once upper bound < this (0 = off)

	workers int
}

// sourceBatch is the number of source vertices whose shortest-path trees
// are computed together against one snapshot of the length function. It is
// a fixed constant — NOT the worker count — so the routing decisions, and
// therefore λ, do not depend on how many goroutines run the batch.
//
// Staleness within a batch slows convergence: batch 1 reproduces the
// seed's Gauss-Seidel sweep exactly, batch 4 costs ~13% more phases on
// the full experiment suite (59s → 67s single-core) but lets one solver
// occupy up to 4 cores, which repays the overhead on any multicore box.
// Larger batches showed no further measurable serial cost on this suite
// but drift grows with each routed unit (arcs scale by 1+ε per step), so
// stay conservative.
const sourceBatch = 4

func newSolver(g *graph.Graph, comms []Commodity, opt Options) *solver {
	var eff []Commodity
	for _, c := range comms {
		if c.Src != c.Dst && c.Demand > 0 {
			eff = append(eff, c)
		}
	}
	if len(eff) == 0 {
		return nil
	}
	edges := g.Edges()
	m := len(edges)
	s := &solver{
		g:       g,
		opt:     opt,
		n:       g.N(),
		edges:   edges,
		arcTo:   make([]int, 2*m),
		arcCap:  opt.LinkCapacity,
		nodeArc: make([][]int, g.N()),
		comms:   eff,
		length:  make([]float64, 2*m),
		flow:    make([]float64, 2*m),
		epsilon: opt.Epsilon,
		workers: parallel.Workers(opt.Workers),
	}
	for i, e := range edges {
		s.arcTo[2*i] = e.V
		s.arcTo[2*i+1] = e.U
		s.nodeArc[e.U] = append(s.nodeArc[e.U], 2*i)
		s.nodeArc[e.V] = append(s.nodeArc[e.V], 2*i+1)
	}
	// Group commodities by source so one Dijkstra serves many demands.
	bySrcMap := map[int][]int{}
	for i, c := range eff {
		bySrcMap[c.Src] = append(bySrcMap[c.Src], i)
		s.demSum += c.Demand
	}
	for src := 0; src < g.N(); src++ {
		if list, ok := bySrcMap[src]; ok {
			s.srcList = append(s.srcList, src)
			s.bySrc = append(s.bySrc, list)
		}
	}
	// Garg–Könemann initial length δ/c per arc.
	mm := float64(2 * m)
	s.delta = (1 + s.epsilon) * math.Pow((1+s.epsilon)*mm, -1/s.epsilon)
	for i := range s.length {
		s.length[i] = s.delta / s.arcCap
	}
	return s
}

func (s *solver) run() Result {
	if len(s.edges) == 0 {
		// No links at all but demands exist: nothing routable.
		return Result{Lambda: 0, UpperBound: 0}
	}
	bestLB, bestUB := 0.0, math.Inf(1)
	phases := 0
	routedPhases := 0.0 // fractional count of full-demand rounds routed
	for phases < s.opt.MaxPhases {
		phases++
		ok := s.phase()
		if !ok {
			// Some commodity is disconnected: λ = 0.
			return Result{Lambda: 0, UpperBound: 0, Phases: phases, ArcFlow: s.scaledFlow(1), Edges: s.edges}
		}
		routedPhases++
		lb := s.primalLambda(routedPhases)
		if lb > bestLB {
			bestLB = lb
		}
		// The dual certificate costs a full Dijkstra sweep — as much as a
		// phase — so refresh it only periodically. Certificates stay valid:
		// any length function bounds the optimum.
		if phases%2 != 0 && phases > 2 {
			if s.earlyAccept > 0 && bestLB >= s.earlyAccept {
				break
			}
			continue
		}
		ub := s.dualBound()
		if ub < bestUB {
			bestUB = ub
		}
		if s.earlyAccept > 0 && bestLB >= s.earlyAccept {
			break
		}
		if s.earlyReject > 0 && bestUB < s.earlyReject {
			break
		}
		if bestLB > 0 && (bestUB-bestLB)/bestUB <= s.opt.Tol {
			break
		}
		if s.volume() >= 1 && bestLB > 0 {
			// Canonical GK termination; certificates already computed.
			if (bestUB-bestLB)/bestUB <= 2*s.opt.Tol {
				break
			}
		}
	}
	rho := s.maxOveruse()
	scale := 1.0
	if rho > 0 {
		scale = 1 / rho
	}
	return Result{
		Lambda:     bestLB,
		UpperBound: bestUB,
		Phases:     phases,
		ArcFlow:    s.scaledFlow(scale),
		Edges:      s.edges,
	}
}

// phase routes one full round of demands (every commodity once). Returns
// false if some commodity has no path.
//
// Sources are processed in fixed batches of sourceBatch: the batch's
// shortest-path trees are computed concurrently against the length
// function as it stood at batch start (lengths are only read during the
// sweep), then flow is applied source by source in srcList order. Within a
// batch later sources route on slightly stale trees — the certificates do
// not care (the primal bound holds for ANY flow, the dual for ANY length
// function), and batch-start snapshots make the routing, and hence λ,
// independent of the worker count.
func (s *solver) phase() bool {
	type tree struct {
		dist      []float64
		parentArc []int
	}
	for start := 0; start < len(s.srcList); start += sourceBatch {
		end := start + sourceBatch
		if end > len(s.srcList) {
			end = len(s.srcList)
		}
		trees := parallel.Map(s.workers, end-start, func(i int) tree {
			d, p := s.dijkstra(s.srcList[start+i])
			return tree{d, p}
		})
		for gi := start; gi < end; gi++ {
			src := s.srcList[gi]
			dist, parentArc := trees[gi-start].dist, trees[gi-start].parentArc
			for _, ci := range s.bySrc[gi] {
				c := s.comms[ci]
				remaining := c.Demand
				// Route along the current tree path; if the path saturates
				// badly (lengths grew), recompute the tree.
				for remaining > 0 {
					if math.IsInf(dist[c.Dst], 1) {
						return false
					}
					path := s.extractPath(c.Dst, parentArc)
					// Bottleneck-limited step: with uniform arc capacities the
					// path bottleneck is a single arc's capacity.
					step := math.Min(remaining, s.arcCap)
					for _, a := range path {
						s.flow[a] += step
						s.length[a] *= 1 + s.epsilon*step/s.arcCap
					}
					remaining -= step
					if remaining > 0 {
						dist, parentArc = s.dijkstra(src)
					}
				}
			}
		}
	}
	return true
}

func (s *solver) extractPath(dst int, parentArc []int) []int {
	var path []int
	for v := dst; parentArc[v] >= 0; {
		a := parentArc[v]
		path = append(path, a)
		// Move to the arc's tail: arc a goes tail->head where head = arcTo[a].
		// Tail is arcTo[a^1].
		v = s.arcTo[a^1]
	}
	return path
}

// primalLambda computes the certified feasible concurrent fraction for the
// accumulated flow: routedPhases full-demand rounds scaled down by the
// maximum capacity overuse.
func (s *solver) primalLambda(routedPhases float64) float64 {
	rho := s.maxOveruse()
	if rho <= 0 {
		return math.Inf(1)
	}
	return routedPhases / rho
}

func (s *solver) maxOveruse() float64 {
	rho := 0.0
	for _, f := range s.flow {
		if r := f / s.arcCap; r > rho {
			rho = r
		}
	}
	return rho
}

// dualBound computes D(l) / α(l) where D is the length volume and α(l) is
// the minimum over length functions of Σ_i demand_i · dist_l(src_i, dst_i).
// By LP duality every length function yields an upper bound on λ*.
// The sweep only reads lengths, so all source trees run concurrently;
// per-source contributions are summed in srcList order to keep the value
// independent of scheduling.
func (s *solver) dualBound() float64 {
	parts := parallel.Map(s.workers, len(s.srcList), func(gi int) float64 {
		dist, _ := s.dijkstra(s.srcList[gi])
		var a float64
		for _, ci := range s.bySrc[gi] {
			c := s.comms[ci]
			if math.IsInf(dist[c.Dst], 1) {
				return math.Inf(-1) // marker: disconnected commodity
			}
			a += c.Demand * dist[c.Dst]
		}
		return a
	})
	var alpha float64
	for _, a := range parts {
		if math.IsInf(a, -1) {
			return 0
		}
		alpha += a
	}
	if alpha <= 0 {
		return math.Inf(1)
	}
	return s.volume() / alpha
}

func (s *solver) volume() float64 {
	var d float64
	for _, l := range s.length {
		d += l * s.arcCap
	}
	return d
}

// dijkstra computes shortest paths from src under the current arc lengths.
// parentArc[v] is the arc entering v on the shortest path tree (-1 at src
// and unreachable vertices).
func (s *solver) dijkstra(src int) (dist []float64, parentArc []int) {
	n := s.n
	dist = make([]float64, n)
	parentArc = make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parentArc[i] = -1
	}
	dist[src] = 0
	pq := &arcHeap{}
	heap.Push(pq, arcItem{node: src, dist: 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(arcItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		du := dist[u]
		for _, a := range s.nodeArc[u] {
			v := s.arcTo[a]
			if done[v] {
				continue
			}
			nd := du + s.length[a]
			if nd < dist[v] {
				dist[v] = nd
				parentArc[v] = a
				heap.Push(pq, arcItem{node: v, dist: nd})
			}
		}
	}
	return dist, parentArc
}

func (s *solver) scaledFlow(scale float64) []float64 {
	out := make([]float64, len(s.flow))
	for i, f := range s.flow {
		out[i] = f * scale
	}
	return out
}

type arcItem struct {
	node int
	dist float64
}

type arcHeap struct{ items []arcItem }

func (h *arcHeap) Len() int           { return len(h.items) }
func (h *arcHeap) Less(i, j int) bool { return h.items[i].dist < h.items[j].dist }
func (h *arcHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *arcHeap) Push(x interface{}) { h.items = append(h.items, x.(arcItem)) }
func (h *arcHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
