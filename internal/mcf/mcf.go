// Package mcf computes maximum concurrent multi-commodity flow on switch
// topologies: the largest λ such that λ·demand can be routed for every
// commodity simultaneously, with flows splittable across paths. This is the
// "optimal routing / ideal load balancing" oracle the Jellyfish paper
// evaluates topologies with (the paper uses the CPLEX LP solver; see
// DESIGN.md §8 for the substitution argument).
//
// The solver is the Garg–Könemann multiplicative-weights approximation with
// Fleischer-style shortest-path reuse. Correctness does not rest on the
// routing heuristic: every run produces
//
//   - a primal certificate — an explicit feasible flow, whose concurrent
//     fraction is Result.Lambda (a true lower bound), and
//   - a dual certificate — a length function whose normalized volume bounds
//     the optimum from above (Result.UpperBound).
//
// The solver iterates until the two certificates are within Options.Tol of
// each other, so reported throughputs carry per-run accuracy guarantees.
//
// The hot path is engineered for zero steady-state allocations (DESIGN.md
// §5): CSR adjacency, reusable generation-stamped Dijkstra scratch per
// batch slot and per worker, a hand-inlined 4-ary heap, early-exit sweeps
// that stop once the source's destinations are settled, and a free
// per-phase dual bound that lets the exact dual refresh run sparsely. The
// measured trajectory lives in BENCH_mcf.json.
package mcf

import (
	"math"
	"sort"

	"jellyfish/internal/graph"
	"jellyfish/internal/parallel"
)

// A Commodity is a demand of Demand units from switch Src to switch Dst.
type Commodity struct {
	Src, Dst int
	Demand   float64
}

// Options configure the solver. The zero value selects sensible defaults.
type Options struct {
	// Epsilon is the multiplicative-weights step size (default 0.1).
	Epsilon float64
	// Tol is the target relative gap between the primal and dual
	// certificates (default 0.05).
	Tol float64
	// MaxPhases caps the number of GK phases (default 3000).
	MaxPhases int
	// LinkCapacity is the capacity of every switch-switch link in each
	// direction, in server-NIC units (default 1).
	LinkCapacity float64
	// Workers bounds the goroutines used for the per-source shortest-path
	// sweeps (0 = all cores, 1 = serial). Sources are processed in fixed
	// batches of sourceBatch trees computed against a length snapshot, so
	// the result is bit-identical for every Workers value.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.1
	}
	if o.Tol <= 0 {
		o.Tol = 0.05
	}
	if o.MaxPhases <= 0 {
		o.MaxPhases = 3000
	}
	if o.LinkCapacity <= 0 {
		o.LinkCapacity = 1
	}
	return o
}

// Result reports the outcome of a concurrent-flow computation.
type Result struct {
	// Lambda is the certified feasible concurrent fraction: every commodity
	// can simultaneously route Lambda × its demand.
	Lambda float64
	// UpperBound is the dual bound: the optimum is ≤ UpperBound.
	UpperBound float64
	// Phases is the number of GK phases executed.
	Phases int
	// ArcFlow[i] is the (scaled, feasible) flow on arc i; arcs are indexed
	// as 2*edgeIndex (U→V) and 2*edgeIndex+1 (V→U) over g.Edges().
	ArcFlow []float64
	// Edges records the edge list the arc indexing refers to.
	Edges []graph.Edge
}

// MaxConcurrentFlow computes the maximum concurrent flow for the given
// commodities over the switch graph g. Commodities with Src == Dst or
// Demand <= 0 are ignored (they consume no network capacity). If there are
// no effective commodities the result has Lambda = +Inf.
func MaxConcurrentFlow(g *graph.Graph, comms []Commodity, opt Options) Result {
	opt = opt.withDefaults()
	s := newSolver(g, comms, opt)
	if s == nil {
		return Result{Lambda: math.Inf(1), UpperBound: math.Inf(1)}
	}
	return s.run()
}

// FeasibleAtFull reports whether all commodities can be routed at full
// demand (λ ≥ 1), using certificates to answer early in either direction.
// slack tightens the test: it requires λ ≥ 1-slack to accept (accounting for
// approximation error) and UpperBound < 1-slack to reject.
func FeasibleAtFull(g *graph.Graph, comms []Commodity, opt Options, slack float64) bool {
	opt = opt.withDefaults()
	s := newSolver(g, comms, opt)
	if s == nil {
		return true
	}
	s.earlyAccept = 1 - slack
	s.earlyReject = 1 - slack
	res := s.run()
	return res.Lambda >= 1-slack
}

type solver struct {
	g   *graph.Graph
	opt Options

	// static topology, flattened to CSR so a sweep touches three flat
	// arrays instead of chasing per-node slice headers
	n        int
	edges    []graph.Edge
	arcTo    []int32 // arc a goes to arcTo[a]; its tail is arcTo[a^1]
	arcCap   float64 // uniform capacity
	csrStart []int32 // arcs out of node u are csrArc[csrStart[u]:csrStart[u+1]]
	csrArc   []int32 // outgoing arc ids, grouped by tail node

	// commodities grouped by source
	srcList   []int32   // distinct sources
	bySrc     [][]int   // commodity indices per source (parallel to srcList)
	dstsBySrc [][]int32 // sorted distinct destinations per source (sweep targets)
	comms     []Commodity

	// GK state
	length  []float64 // per arc
	flow    []float64 // per arc, accumulated unscaled
	delta   float64
	demSum  float64
	epsilon float64

	earlyAccept float64 // accept once certified lambda >= this (0 = off)
	earlyReject float64 // reject once upper bound < this (0 = off)

	workers int

	// reusable hot-path state: scratch[i] serves batch slot i during
	// phases and worker i during dual refreshes (never both at once);
	// dualParts collects per-source dual contributions for index-order
	// summation; the closures are built once in newSolver so the phase
	// loop passes pre-existing funcs to the pool instead of allocating
	// a capture per batch.
	scratch    []*sweepScratch
	dualParts  []float64
	batchStart int
	sweepFn    func(i int)
	dualFn     func(worker, gi int)

	// phaseAlpha is Σ_i demand_i · dist(src_i, dst_i) read off the phase's
	// own batch trees — the ingredient of the free per-phase dual bound
	// (see run); written by phase, summed in srcList order.
	phaseAlpha float64
}

// sourceBatch is the number of source vertices whose shortest-path trees
// are computed together against one snapshot of the length function. It is
// a fixed constant — NOT the worker count — so the routing decisions, and
// therefore λ, do not depend on how many goroutines run the batch.
//
// Staleness within a batch slows convergence: batch 1 reproduces a pure
// Gauss-Seidel sweep, batch 4 costs ~8% serial time on the benchmark
// instance with the zero-allocation kernel (629ms/549 phases → 652ms/609
// phases, BENCH_mcf.json) but lets one solver occupy up to 4 cores, which
// repays the overhead on any multicore box; batch 8 measured strictly
// worse serially (690ms/626 phases) for parallelism this suite can't use,
// and drift grows with each routed unit (arcs scale by 1+ε per step), so
// stay at 4.
const sourceBatch = 4

// dualRefreshEvery is the exact-dual cadence in phases. Between refreshes
// the free per-phase bound (see run) tracks the optimum to within the
// intra-phase length growth (~ε relative), so the refresh only needs to be
// frequent enough that termination isn't delayed long after the true gap
// closes; 8 costs ~12% of the sweep budget (the seed refreshed every 2nd
// phase, ~50% of it) and moved no benchmark's phase count by more than a
// few phases.
const dualRefreshEvery = 8

func newSolver(g *graph.Graph, comms []Commodity, opt Options) *solver {
	var eff []Commodity
	for _, c := range comms {
		if c.Src != c.Dst && c.Demand > 0 {
			eff = append(eff, c)
		}
	}
	if len(eff) == 0 {
		return nil
	}
	edges := g.Edges()
	m := len(edges)
	n := g.N()
	s := &solver{
		g:       g,
		opt:     opt,
		n:       n,
		edges:   edges,
		arcTo:   make([]int32, 2*m),
		arcCap:  opt.LinkCapacity,
		comms:   eff,
		length:  make([]float64, 2*m),
		flow:    make([]float64, 2*m),
		epsilon: opt.Epsilon,
		workers: parallel.Workers(opt.Workers),
	}
	// CSR adjacency: counting sort of arcs by tail node, preserving edge
	// order within each node (the order the seed's per-node slices had).
	s.csrStart = make([]int32, n+1)
	s.csrArc = make([]int32, 2*m)
	for _, e := range edges {
		s.csrStart[e.U+1]++
		s.csrStart[e.V+1]++
	}
	for v := 0; v < n; v++ {
		s.csrStart[v+1] += s.csrStart[v]
	}
	cursor := make([]int32, n)
	for i, e := range edges {
		s.arcTo[2*i] = int32(e.V)
		s.arcTo[2*i+1] = int32(e.U)
		s.csrArc[s.csrStart[e.U]+cursor[e.U]] = int32(2 * i)
		cursor[e.U]++
		s.csrArc[s.csrStart[e.V]+cursor[e.V]] = int32(2*i + 1)
		cursor[e.V]++
	}
	// Group commodities by source so one sweep serves many demands, and
	// record each source's destination set as its sweep's early-exit
	// targets (permutation traffic has ~1 destination per source, so a
	// targeted sweep settles a small fraction of the graph).
	bySrcMap := map[int][]int{}
	for i, c := range eff {
		bySrcMap[c.Src] = append(bySrcMap[c.Src], i)
		s.demSum += c.Demand
	}
	for src := 0; src < n; src++ {
		list, ok := bySrcMap[src]
		if !ok {
			continue
		}
		s.srcList = append(s.srcList, int32(src))
		s.bySrc = append(s.bySrc, list)
		dsts := make([]int32, 0, len(list))
		for _, ci := range list {
			dsts = append(dsts, int32(eff[ci].Dst))
		}
		sort.Slice(dsts, func(a, b int) bool { return dsts[a] < dsts[b] })
		uniq := dsts[:0]
		for i, d := range dsts {
			if i == 0 || d != uniq[len(uniq)-1] {
				uniq = append(uniq, d)
			}
		}
		s.dstsBySrc = append(s.dstsBySrc, uniq)
	}
	// Scratch pool: phases index it by batch slot, dual refreshes by
	// worker; size for whichever is larger.
	nscratch := min(max(sourceBatch, s.workers), len(s.srcList))
	s.scratch = make([]*sweepScratch, nscratch)
	for i := range s.scratch {
		s.scratch[i] = newSweepScratch(n)
	}
	s.dualParts = make([]float64, len(s.srcList))
	s.sweepFn = func(i int) {
		gi := s.batchStart + i
		s.sweep(s.scratch[i], s.srcList[gi], s.dstsBySrc[gi])
	}
	s.dualFn = func(worker, gi int) {
		sc := s.scratch[worker]
		s.sweep(sc, s.srcList[gi], s.dstsBySrc[gi])
		var a float64
		for _, ci := range s.bySrc[gi] {
			c := s.comms[ci]
			d := sc.distTo(int32(c.Dst))
			if math.IsInf(d, 1) {
				a = math.Inf(-1) // marker: disconnected commodity
				break
			}
			a += c.Demand * d
		}
		s.dualParts[gi] = a
	}
	// Garg–Könemann initial length δ/c per arc.
	mm := float64(2 * m)
	s.delta = (1 + s.epsilon) * math.Pow((1+s.epsilon)*mm, -1/s.epsilon)
	for i := range s.length {
		s.length[i] = s.delta / s.arcCap
	}
	return s
}

func (s *solver) run() Result {
	if len(s.edges) == 0 {
		// No links at all but demands exist: nothing routable.
		return Result{Lambda: 0, UpperBound: 0}
	}
	bestLB, bestUB := 0.0, math.Inf(1)
	phases := 0
	routedPhases := 0.0 // fractional count of full-demand rounds routed
	for phases < s.opt.MaxPhases {
		phases++
		ok := s.phase()
		if !ok {
			// Some commodity is disconnected: λ = 0. The flow accumulated
			// before the dead end may already overuse capacity (phases are
			// unscaled), so normalize by the overuse like the main return
			// does — Result.ArcFlow is documented "(scaled, feasible)".
			rho := s.maxOveruse()
			scale := 1.0
			if rho > 0 {
				scale = 1 / rho
			}
			return Result{Lambda: 0, UpperBound: 0, Phases: phases, ArcFlow: s.scaledFlow(scale), Edges: s.edges}
		}
		routedPhases++
		lb := s.primalLambda(routedPhases)
		if lb > bestLB {
			bestLB = lb
		}
		// Free per-phase dual bound: each source's batch-tree distances were
		// computed under lengths ≤ the end-of-phase lengths l (lengths only
		// grow), so phaseAlpha ≤ α(l) and D(l)/phaseAlpha ≥ D(l)/α(l) ≥ λ*
		// — a valid (slightly loose) upper bound costing zero extra sweeps.
		if s.phaseAlpha > 0 {
			if ub := s.volume() / s.phaseAlpha; ub < bestUB {
				bestUB = ub
			}
		}
		// The exact dual certificate costs a full sweep set — as much as a
		// phase — so refresh it sparsely, just often enough to close the
		// intra-phase slack the free bound carries. Certificates stay valid
		// at any cadence: any length function bounds the optimum.
		if phases == 2 || phases%dualRefreshEvery == 0 {
			if ub := s.dualBound(); ub < bestUB {
				bestUB = ub
			}
		}
		if s.earlyAccept > 0 && bestLB >= s.earlyAccept {
			break
		}
		if s.earlyReject > 0 && bestUB < s.earlyReject {
			break
		}
		if bestLB > 0 && (bestUB-bestLB)/bestUB <= s.opt.Tol {
			break
		}
		if s.volume() >= 1 && bestLB > 0 {
			// Canonical GK termination; certificates already computed.
			if (bestUB-bestLB)/bestUB <= 2*s.opt.Tol {
				break
			}
		}
	}
	rho := s.maxOveruse()
	scale := 1.0
	if rho > 0 {
		scale = 1 / rho
	}
	return Result{
		Lambda:     bestLB,
		UpperBound: bestUB,
		Phases:     phases,
		ArcFlow:    s.scaledFlow(scale),
		Edges:      s.edges,
	}
}

// phase routes one full round of demands (every commodity once). Returns
// false if some commodity has no path.
//
// Sources are processed in fixed batches of sourceBatch: the batch's
// shortest-path trees are computed concurrently against the length
// function as it stood at batch start (lengths are only read during the
// sweep), then flow is applied source by source in srcList order. Within a
// batch later sources route on slightly stale trees — the certificates do
// not care (the primal bound holds for ANY flow, the dual for ANY length
// function), and batch-start snapshots make the routing, and hence λ,
// independent of the worker count.
//
// Each batch slot i sweeps into s.scratch[i], so the whole batch's trees
// stay alive while flow is applied, and nothing is allocated: the sweeps
// reuse slot scratch, the route walk applies flow directly off the parent
// arcs, and s.sweepFn is a closure built once at solver construction.
func (s *solver) phase() bool {
	for start := 0; start < len(s.srcList); start += sourceBatch {
		end := start + sourceBatch
		if end > len(s.srcList) {
			end = len(s.srcList)
		}
		s.batchStart = start
		parallel.ForEach(s.workers, end-start, s.sweepFn)
		for gi := start; gi < end; gi++ {
			src := s.srcList[gi]
			sc := s.scratch[gi-start]
			// Record this source's dual contribution off the batch tree
			// (before any of its routing grows the lengths further).
			var a float64
			for _, ci := range s.bySrc[gi] {
				c := s.comms[ci]
				d := sc.distTo(int32(c.Dst))
				if math.IsInf(d, 1) {
					return false
				}
				a += c.Demand * d
			}
			s.dualParts[gi] = a
			for _, ci := range s.bySrc[gi] {
				c := s.comms[ci]
				dst := int32(c.Dst)
				remaining := c.Demand
				// Route along the current tree path; if the demand exceeds
				// one bottleneck step (lengths grew), recompute the tree.
				// Reachability was checked on the batch tree above and is
				// static, so recomputed trees always reach dst.
				for remaining > 0 {
					// Bottleneck-limited step: with uniform arc capacities the
					// path bottleneck is a single arc's capacity.
					step := math.Min(remaining, s.arcCap)
					s.applyFlow(sc, dst, step)
					remaining -= step
					if remaining > 0 {
						s.sweep(sc, src, s.dstsBySrc[gi])
					}
				}
			}
		}
	}
	var alpha float64
	for _, a := range s.dualParts {
		alpha += a
	}
	s.phaseAlpha = alpha
	return true
}

// applyFlow walks the tree path into dst (parent arcs back to the source)
// and routes step units along it, updating flows and GK lengths in place.
// Every vertex on the path was settled by the sweep, so the walk is over
// final parents.
func (s *solver) applyFlow(sc *sweepScratch, dst int32, step float64) {
	for v := dst; sc.parentArc[v] >= 0; {
		a := sc.parentArc[v]
		s.flow[a] += step
		s.length[a] *= 1 + s.epsilon*step/s.arcCap
		// Move to the arc's tail: arc a goes tail->head where head = arcTo[a].
		v = s.arcTo[a^1]
	}
}

// primalLambda computes the certified feasible concurrent fraction for the
// accumulated flow: routedPhases full-demand rounds scaled down by the
// maximum capacity overuse.
func (s *solver) primalLambda(routedPhases float64) float64 {
	rho := s.maxOveruse()
	if rho <= 0 {
		return math.Inf(1)
	}
	return routedPhases / rho
}

func (s *solver) maxOveruse() float64 {
	rho := 0.0
	for _, f := range s.flow {
		if r := f / s.arcCap; r > rho {
			rho = r
		}
	}
	return rho
}

// dualBound computes D(l) / α(l) where D is the length volume and α(l) is
// the minimum over length functions of Σ_i demand_i · dist_l(src_i, dst_i).
// By LP duality every length function yields an upper bound on λ*.
// The sweeps only read lengths, so all source trees run concurrently —
// each worker reusing its own scratch (s.dualFn writes s.dualParts[gi]) —
// and per-source contributions are summed in srcList order to keep the
// value independent of scheduling.
func (s *solver) dualBound() float64 {
	parallel.ForEachWorker(s.workers, len(s.srcList), s.dualFn)
	var alpha float64
	for _, a := range s.dualParts {
		if math.IsInf(a, -1) {
			return 0
		}
		alpha += a
	}
	if alpha <= 0 {
		return math.Inf(1)
	}
	return s.volume() / alpha
}

func (s *solver) volume() float64 {
	var d float64
	for _, l := range s.length {
		d += l * s.arcCap
	}
	return d
}

func (s *solver) scaledFlow(scale float64) []float64 {
	out := make([]float64, len(s.flow))
	for i, f := range s.flow {
		out[i] = f * scale
	}
	return out
}
