// Package mcf computes maximum concurrent multi-commodity flow on switch
// topologies: the largest λ such that λ·demand can be routed for every
// commodity simultaneously, with flows splittable across paths. This is the
// "optimal routing / ideal load balancing" oracle the Jellyfish paper
// evaluates topologies with (the paper uses the CPLEX LP solver; see
// DESIGN.md §8 for the substitution argument).
//
// The solver is the Garg–Könemann multiplicative-weights approximation with
// Fleischer-style shortest-path reuse. Correctness does not rest on the
// routing heuristic: every run produces
//
//   - a primal certificate — an explicit feasible flow, whose concurrent
//     fraction is Result.Lambda (a true lower bound), and
//   - a dual certificate — a length function whose normalized volume bounds
//     the optimum from above (Result.UpperBound).
//
// The solver iterates until the two certificates are within Options.Tol of
// each other, so reported throughputs carry per-run accuracy guarantees.
//
// The hot path is engineered for zero steady-state allocations (DESIGN.md
// §5): CSR adjacency, reusable generation-stamped Dijkstra scratch per
// batch slot and per worker, a hand-inlined 4-ary heap, early-exit sweeps
// that stop once the source's destinations are settled, and a free
// per-phase dual bound that lets the exact dual refresh run sparsely. The
// measured trajectory lives in BENCH_mcf.json.
package mcf

import (
	"math"
	"slices"

	"jellyfish/internal/graph"
	"jellyfish/internal/parallel"
)

// A Commodity is a demand of Demand units from switch Src to switch Dst.
type Commodity struct {
	Src, Dst int
	Demand   float64
}

// Options configure the solver. The zero value selects sensible defaults.
type Options struct {
	// Epsilon is the multiplicative-weights step size (default 0.1).
	Epsilon float64
	// Tol is the target relative gap between the primal and dual
	// certificates (default 0.05).
	Tol float64
	// MaxPhases caps the number of GK phases (default 3000).
	MaxPhases int
	// LinkCapacity is the capacity of every switch-switch link in each
	// direction, in server-NIC units (default 1).
	LinkCapacity float64
	// Workers bounds the goroutines used for the per-source shortest-path
	// sweeps (0 = all cores, 1 = serial). Sources are processed in fixed
	// batches of sourceBatch trees computed against a length snapshot, so
	// the result is bit-identical for every Workers value.
	Workers int
	// Obs, when non-nil, receives one-way instrumentation (phase/batch
	// counts, solve and phase durations, flight-recorder spans). It never
	// influences the computation: results are byte-identical with or
	// without it. See mcf.Obs.
	Obs *Obs
	// Interrupt, when non-nil, is polled once per GK phase; when it
	// returns true the solve stops before starting another phase and
	// returns the certificates accumulated so far. This bounds
	// cancellation latency to a single phase (DESIGN.md §16). The poll
	// is allocation-free and, while Interrupt keeps returning false,
	// has no effect on the computation — results are byte-identical to
	// a solve without it. A truncated result is NOT marked: callers
	// that interrupt must discard the result themselves (the service
	// checks ctx.Err() after every kernel call), and warm-start chains
	// are safe regardless because seedWarm rejects unconverged states.
	Interrupt func() bool
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.1
	}
	if o.Tol <= 0 {
		o.Tol = 0.05
	}
	if o.MaxPhases <= 0 {
		o.MaxPhases = 3000
	}
	if o.LinkCapacity <= 0 {
		o.LinkCapacity = 1
	}
	return o
}

// Result reports the outcome of a concurrent-flow computation.
type Result struct {
	// Lambda is the certified feasible concurrent fraction: every commodity
	// can simultaneously route Lambda × its demand.
	Lambda float64
	// UpperBound is the dual bound: the optimum is ≤ UpperBound.
	UpperBound float64
	// Phases is the number of GK phases executed.
	Phases int
	// ArcFlow[i] is the (scaled, feasible) flow on arc i; arcs are indexed
	// as 2*edgeIndex (U→V) and 2*edgeIndex+1 (V→U) over g.Edges().
	ArcFlow []float64
	// Edges records the edge list the arc indexing refers to.
	Edges []graph.Edge
}

// MaxConcurrentFlow computes the maximum concurrent flow for the given
// commodities over the switch graph g. Commodities with Src == Dst or
// Demand <= 0 are ignored (they consume no network capacity). If there are
// no effective commodities the result has Lambda = +Inf.
func MaxConcurrentFlow(g *graph.Graph, comms []Commodity, opt Options) Result {
	return MaxConcurrentFlowCSR(g.CSR(), comms, opt)
}

// MaxConcurrentFlowCSR is MaxConcurrentFlow over a compact adjacency
// snapshot (see graph.CSR). It is the native entry point of the megascale
// tier: consumers that already hold a snapshot (topology.Compact, the
// estimate package) avoid touching the mutable graph entirely, and
// repeated solves on the identical snapshot pointer skip the edge-set
// comparison a fresh Graph would require.
func MaxConcurrentFlowCSR(csr *graph.CSR, comms []Commodity, opt Options) Result {
	opt = opt.withDefaults()
	s := newSolver(csr, comms, opt)
	if s == nil {
		return Result{Lambda: math.Inf(1), UpperBound: math.Inf(1)}
	}
	return s.run()
}

// FeasibleAtFull reports whether all commodities can be routed at full
// demand (λ ≥ 1), using certificates to answer early in either direction.
// slack tightens the test: it requires λ ≥ 1-slack to accept (accounting for
// approximation error) and UpperBound < 1-slack to reject.
func FeasibleAtFull(g *graph.Graph, comms []Commodity, opt Options, slack float64) bool {
	opt = opt.withDefaults()
	s := newSolver(g.CSR(), comms, opt)
	if s == nil {
		return true
	}
	s.earlyAccept = 1 - slack
	s.earlyReject = 1 - slack
	res := s.run()
	return res.Lambda >= 1-slack
}

type solver struct {
	csr *graph.CSR
	opt Options
	obs *Obs // nil-safe one-way telemetry (see Options.Obs)

	// static topology, flattened to CSR so a sweep touches three flat
	// arrays instead of chasing per-node slice headers
	n        int
	edges    []graph.Edge
	arcTo    []int32 // arc a goes to arcTo[a]; its tail is arcTo[a^1]
	arcCap   float64 // uniform capacity
	csrStart []int32 // arcs out of node u are csrArc[csrStart[u]:csrStart[u+1]]
	csrArc   []int32 // outgoing arc ids, grouped by tail node

	// commodities grouped by source
	srcList   []int32   // distinct sources
	bySrc     [][]int   // commodity indices per source (parallel to srcList)
	dstsBySrc [][]int32 // sorted distinct destinations per source (sweep targets)
	comms     []Commodity

	// GK state
	length  []float64 // per arc
	flow    []float64 // per arc, accumulated unscaled
	delta   float64
	demSum  float64
	epsilon float64

	earlyAccept float64 // accept once certified lambda >= this (0 = off)
	earlyReject float64 // reject once upper bound < this (0 = off)

	// warmed is set when seedWarm installed a carried-over length function;
	// it schedules an extra exact dual refresh at phase 1 (the warmed
	// lengths usually certify a near-tight upper bound immediately, which
	// is what makes early rejection cheap on warm starts).
	warmed bool
	// restart enables the one-shot primal restart (see run); set for
	// solves made through a Solver handle.
	restart bool

	workers int

	// reusable grouping scratch (see groupCommodities): commIdx is the
	// counting-sorted commodity order that bySrc views slice into, dstFlat
	// the backing for dstsBySrc, srcCount the per-node counters/offsets.
	commIdx  []int
	dstFlat  []int32
	srcCount []int32

	// reusable hot-path state: scratch[i] serves batch slot i during
	// phases and worker i during dual refreshes (never both at once);
	// dualParts collects per-source dual contributions for index-order
	// summation; the closures are built once in newSolver so the phase
	// loop passes pre-existing funcs to the pool instead of allocating
	// a capture per batch.
	scratch    []*sweepScratch
	dualParts  []float64
	batchStart int
	sweepFn    func(i int)
	dualFn     func(worker, gi int)

	// bestFlow snapshots the (already feasibility-scaled) flow certifying
	// bestLB in restart-capable runs, where the live flow may be dropped
	// after the certificate was taken (see run).
	bestFlow []float64

	// phaseAlpha is Σ_i demand_i · dist(src_i, dst_i) read off the phase's
	// own batch trees — the ingredient of the free per-phase dual bound
	// (see run); written by phase, summed in srcList order.
	phaseAlpha float64
}

// sourceBatch is the number of source vertices whose shortest-path trees
// are computed together against one snapshot of the length function. It is
// a fixed constant — NOT the worker count — so the routing decisions, and
// therefore λ, do not depend on how many goroutines run the batch.
//
// Staleness within a batch slows convergence: batch 1 reproduces a pure
// Gauss-Seidel sweep, batch 4 costs ~8% serial time on the benchmark
// instance with the zero-allocation kernel (629ms/549 phases → 652ms/609
// phases, BENCH_mcf.json) but lets one solver occupy up to 4 cores, which
// repays the overhead on any multicore box; batch 8 measured strictly
// worse serially (690ms/626 phases) for parallelism this suite can't use,
// and drift grows with each routed unit (arcs scale by 1+ε per step), so
// stay at 4.
const sourceBatch = 4

// dualRefreshEvery is the exact-dual cadence in phases. Between refreshes
// the free per-phase bound (see run) tracks the optimum to within the
// intra-phase length growth (~ε relative), so the refresh only needs to be
// frequent enough that termination isn't delayed long after the true gap
// closes; 8 costs ~12% of the sweep budget (the seed refreshed every 2nd
// phase, ~50% of it) and moved no benchmark's phase count by more than a
// few phases.
const dualRefreshEvery = 8

func newSolver(csr *graph.CSR, comms []Commodity, opt Options) *solver {
	s := &solver{}
	if !s.init(csr, comms, opt) {
		return nil
	}
	return s
}

// init (re)builds the solver for one instance. A zero solver initializes
// from scratch; a solver that already ran keeps every backing array whose
// capacity still fits, so a handle re-solving a sequence of related
// instances (see Solver) does no steady-state topology allocations — and
// when the edge set is unchanged it skips the CSR arc-array rebuild
// entirely. Returns false when no effective commodities remain.
func (s *solver) init(csr *graph.CSR, comms []Commodity, opt Options) bool {
	s.opt = opt
	s.obs = opt.Obs
	s.arcCap = opt.LinkCapacity
	s.epsilon = opt.Epsilon
	s.workers = parallel.Workers(opt.Workers)
	s.earlyAccept, s.earlyReject = 0, 0
	s.warmed = false
	s.restart = false
	s.demSum = 0
	s.phaseAlpha = 0

	s.comms = s.comms[:0]
	for _, c := range comms {
		if c.Src != c.Dst && c.Demand > 0 {
			s.comms = append(s.comms, c)
			s.demSum += c.Demand
		}
	}
	if len(s.comms) == 0 {
		return false
	}

	// Topology: rebuild the CSR arc arrays only when the edge set actually
	// changed since the previous instance (the arrays are rewritten in
	// place; see buildArcs). The identical-snapshot pointer — the common
	// case when warm-starting across perturbed commodity sets — skips even
	// the edge-list comparison; snapshots are immutable, so pointer
	// equality implies edge-set equality.
	if s.csr != csr {
		edges := csr.Edges()
		if s.n != csr.N() || !slices.Equal(edges, s.edges) {
			s.buildArcs(csr.N(), edges)
		}
		s.csr = csr
	}
	m := len(s.edges)

	s.length = resizeFloat(s.length, 2*m)
	s.flow = resizeFloat(s.flow, 2*m)
	clear(s.flow)

	s.groupCommodities()

	// Scratch pool: phases index it by batch slot, dual refreshes by
	// worker; size for whichever is larger. Entries survive re-init when
	// the vertex count is unchanged.
	nscratch := min(max(sourceBatch, s.workers), len(s.srcList))
	if len(s.scratch) > 0 && len(s.scratch[0].dist) != s.n {
		s.scratch = s.scratch[:0]
	}
	for len(s.scratch) < nscratch {
		s.scratch = append(s.scratch, newSweepScratch(s.n))
	}
	s.dualParts = resizeFloat(s.dualParts, len(s.srcList))
	if s.sweepFn == nil {
		// The closures capture only the (stable) receiver, so they are
		// built once per solver and survive re-init.
		s.sweepFn = func(i int) {
			gi := s.batchStart + i
			s.sweep(s.scratch[i], s.srcList[gi], s.dstsBySrc[gi])
		}
		s.dualFn = func(worker, gi int) {
			sc := s.scratch[worker]
			s.sweep(sc, s.srcList[gi], s.dstsBySrc[gi])
			var a float64
			for _, ci := range s.bySrc[gi] {
				c := s.comms[ci]
				d := sc.distTo(int32(c.Dst))
				if math.IsInf(d, 1) {
					a = math.Inf(-1) // marker: disconnected commodity
					break
				}
				a += c.Demand * d
			}
			s.dualParts[gi] = a
		}
	}

	// Garg–Könemann initial length δ/c per arc (a warm seed, if any,
	// overwrites this; see seedWarm).
	mm := float64(2 * m)
	s.delta = (1 + s.epsilon) * math.Pow((1+s.epsilon)*mm, -1/s.epsilon)
	s.resetLengthsCold()
	return true
}

func (s *solver) resetLengthsCold() {
	for i := range s.length {
		s.length[i] = s.delta / s.arcCap
	}
}

// buildArcs (re)derives the CSR adjacency — a counting sort of arcs by
// tail node, preserving edge order within each node — writing into the
// solver's existing backing arrays whenever their capacity fits, so a
// topology delta (servers added, links failed) mutates the arc arrays in
// place instead of reallocating them.
func (s *solver) buildArcs(n int, edges []graph.Edge) {
	m := len(edges)
	s.n = n
	s.edges = edges
	s.arcTo = resizeInt32(s.arcTo, 2*m)
	s.csrStart = resizeInt32(s.csrStart, n+1)
	clear(s.csrStart)
	s.csrArc = resizeInt32(s.csrArc, 2*m)
	for _, e := range edges {
		s.csrStart[e.U+1]++
		s.csrStart[e.V+1]++
	}
	for v := 0; v < n; v++ {
		s.csrStart[v+1] += s.csrStart[v]
	}
	cursor := resizeInt32(s.srcCount, n) // srcCount doubles as cursor scratch
	clear(cursor)
	s.srcCount = cursor
	for i, e := range edges {
		s.arcTo[2*i] = int32(e.V)
		s.arcTo[2*i+1] = int32(e.U)
		s.csrArc[s.csrStart[e.U]+cursor[e.U]] = int32(2 * i)
		cursor[e.U]++
		s.csrArc[s.csrStart[e.V]+cursor[e.V]] = int32(2*i + 1)
		cursor[e.V]++
	}
}

// groupCommodities groups the effective commodities by source so one sweep
// serves many demands, and records each source's destination set as its
// sweep's early-exit targets (permutation traffic has ~1 destination per
// source, so a targeted sweep settles a small fraction of the graph).
// Grouping is a counting sort into reusable flat arrays: bySrc and
// dstsBySrc are subslice views of commIdx and dstFlat, which are sized
// up front so the views can never be invalidated by reallocation.
func (s *solver) groupCommodities() {
	n := s.n
	cnt := resizeInt32(s.srcCount, n+1)
	clear(cnt)
	s.srcCount = cnt
	for _, c := range s.comms {
		cnt[c.Src+1]++
	}
	for v := 0; v < n; v++ {
		cnt[v+1] += cnt[v]
	}
	s.commIdx = resizeInt(s.commIdx, len(s.comms))
	for i, c := range s.comms {
		s.commIdx[cnt[c.Src]] = i
		cnt[c.Src]++
	}
	// cnt[v] is now the END offset of source v's group; the start is the
	// previous source's end (0 for v == 0).
	s.srcList = s.srcList[:0]
	s.bySrc = s.bySrc[:0]
	s.dstsBySrc = s.dstsBySrc[:0]
	if cap(s.dstFlat) < len(s.comms) {
		s.dstFlat = make([]int32, 0, len(s.comms))
	}
	s.dstFlat = s.dstFlat[:0]
	start := int32(0)
	for v := 0; v < n; v++ {
		end := cnt[v]
		if end == start {
			continue
		}
		list := s.commIdx[start:end]
		s.srcList = append(s.srcList, int32(v))
		s.bySrc = append(s.bySrc, list)
		dstStart := len(s.dstFlat)
		for _, ci := range list {
			s.dstFlat = append(s.dstFlat, int32(s.comms[ci].Dst))
		}
		seg := s.dstFlat[dstStart:]
		slices.Sort(seg)
		uniq := seg[:0]
		for i, d := range seg {
			if i == 0 || d != uniq[len(uniq)-1] {
				uniq = append(uniq, d)
			}
		}
		s.dstFlat = s.dstFlat[:dstStart+len(uniq)]
		s.dstsBySrc = append(s.dstsBySrc, s.dstFlat[dstStart:])
		start = end
	}
}

// resizeFloat returns a slice of length n, reusing buf's backing array
// when its capacity allows. Contents are unspecified.
func resizeFloat(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func resizeInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func resizeInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func (s *solver) run() Result {
	if len(s.edges) == 0 {
		// No links at all but demands exist: nothing routable.
		return Result{Lambda: 0, UpperBound: 0}
	}
	solveT := s.obs.solveBegin(len(s.comms))
	defer s.obs.solveEnd(solveT)
	bestLB, bestUB := 0.0, math.Inf(1)
	phases := 0
	routedPhases := 0.0 // fractional count of full-demand rounds routed
	restartRhoPrev := 0.0
	for phases < s.opt.MaxPhases {
		// Cooperative cancellation: one poll per phase, so a cancel is
		// observed after at most the phase in flight completes. Both
		// certificates remain valid at any stopping point.
		if s.opt.Interrupt != nil && s.opt.Interrupt() {
			break
		}
		phases++
		phaseT := s.obs.phaseBegin(phases)
		ok := s.phase()
		s.obs.phaseEnd(phaseT)
		if !ok {
			// Some commodity is disconnected: λ = 0. The flow accumulated
			// before the dead end may already overuse capacity (phases are
			// unscaled), so normalize by the overuse like the main return
			// does — Result.ArcFlow is documented "(scaled, feasible)".
			rho := s.maxOveruse()
			scale := 1.0
			if rho > 0 {
				scale = 1 / rho
			}
			return Result{Lambda: 0, UpperBound: 0, Phases: phases, ArcFlow: s.scaledFlow(scale), Edges: s.edges}
		}
		routedPhases++
		lb := s.primalLambda(routedPhases)
		if lb > bestLB {
			bestLB = lb
			// Result.ArcFlow must be the flow witnessing Result.Lambda. In
			// a restart-capable run the live flow can be discarded after
			// bestLB was set, so snapshot the certifying flow (scaled to
			// feasibility here, so the exit path returns it as-is) whenever
			// the certificate improves. Plain cold runs keep the historical
			// exit-time scaling: their flow only ever grows.
			if s.restart {
				s.bestFlow = resizeFloat(s.bestFlow, len(s.flow))
				scale := 1.0
				if rho := s.maxOveruse(); rho > 0 {
					scale = 1 / rho
				}
				for i, f := range s.flow {
					s.bestFlow[i] = f * scale
				}
			}
		}
		// Primal restart: the certified fraction routedPhases/overuse
		// charges the early phases' misrouting (greedy routing under
		// still-uninformed lengths) against every later round. Every
		// restartWindow phases, compare the marginal quality of recent
		// routing (window / overuse added in the window) with the
		// certified average: once recent rounds route restartMargin
		// better than the lifetime average, drop the burn-in flow and
		// count afresh — the post-restart certificate climbs at the
		// marginal rate instead of dragging the burn-in forever. Any
		// feasible flow certifies, so discarding flow is always sound;
		// bestLB keeps the pre-restart certificate. The trigger reads
		// solver state only (worker-count invariant), and the margin
		// makes restarts self-limiting: once the average catches up with
		// the marginal rate no further restart fires.
		if s.restart && phases%restartWindow == 0 {
			rho := s.maxOveruse()
			if drho := rho - restartRhoPrev; drho > 0 {
				if marginal := restartWindow / drho; marginal > bestLB*restartMargin {
					clear(s.flow)
					routedPhases = 0
					rho = 0
				}
			}
			restartRhoPrev = rho
		}
		// Free per-phase dual bound: each source's batch-tree distances were
		// computed under lengths ≤ the end-of-phase lengths l (lengths only
		// grow), so phaseAlpha ≤ α(l) and D(l)/phaseAlpha ≥ D(l)/α(l) ≥ λ*
		// — a valid (slightly loose) upper bound costing zero extra sweeps.
		if s.phaseAlpha > 0 {
			if ub := s.volume() / s.phaseAlpha; ub < bestUB {
				bestUB = ub
			}
		}
		// The exact dual certificate costs a full sweep set — as much as a
		// phase — so refresh it sparsely, just often enough to close the
		// intra-phase slack the free bound carries. Certificates stay valid
		// at any cadence: any length function bounds the optimum. Warm
		// starts add a refresh at phase 1: the carried-over lengths usually
		// certify a near-tight bound before any routing happens, which is
		// what lets an infeasible probe reject after a single phase.
		if phases == 2 || phases%dualRefreshEvery == 0 || (s.warmed && phases == 1) {
			s.obs.dualBegin()
			ub := s.dualBound()
			s.obs.dualEnd()
			if ub < bestUB {
				bestUB = ub
			}
		}
		if s.earlyAccept > 0 && bestLB >= s.earlyAccept {
			break
		}
		if s.earlyReject > 0 && bestUB < s.earlyReject {
			break
		}
		if bestLB > 0 && (bestUB-bestLB)/bestUB <= s.opt.Tol {
			break
		}
		if s.volume() >= 1 && bestLB > 0 && !(s.restart && s.earlyAccept > 0) {
			// Canonical GK termination; certificates already computed.
			// Handle-driven feasibility runs skip this loose exit: their
			// warm seeds start near volume 1 (so a 2×Tol exit here would
			// systematically weaken the primal certificate right at the
			// accept threshold), and the primal restart makes reaching
			// the primary Tol gap cheap. Plain solves keep it — the
			// canonical cost/quality point — warm or not.
			if (bestUB-bestLB)/bestUB <= 2*s.opt.Tol {
				break
			}
		}
	}
	arcFlow := func() []float64 {
		if s.restart && bestLB > 0 {
			return append([]float64(nil), s.bestFlow...)
		}
		rho := s.maxOveruse()
		scale := 1.0
		if rho > 0 {
			scale = 1 / rho
		}
		return s.scaledFlow(scale)
	}
	return Result{
		Lambda:     bestLB,
		UpperBound: bestUB,
		Phases:     phases,
		ArcFlow:    arcFlow(),
		Edges:      s.edges,
	}
}

// phase routes one full round of demands (every commodity once). Returns
// false if some commodity has no path.
//
// Sources are processed in fixed batches of sourceBatch: the batch's
// shortest-path trees are computed concurrently against the length
// function as it stood at batch start (lengths are only read during the
// sweep), then flow is applied source by source in srcList order. Within a
// batch later sources route on slightly stale trees — the certificates do
// not care (the primal bound holds for ANY flow, the dual for ANY length
// function), and batch-start snapshots make the routing, and hence λ,
// independent of the worker count.
//
// Each batch slot i sweeps into s.scratch[i], so the whole batch's trees
// stay alive while flow is applied, and nothing is allocated: the sweeps
// reuse slot scratch, the route walk applies flow directly off the parent
// arcs, and s.sweepFn is a closure built once at solver construction.
//
//jellyvet:hotpath
func (s *solver) phase() bool {
	for start := 0; start < len(s.srcList); start += sourceBatch {
		end := start + sourceBatch
		if end > len(s.srcList) {
			end = len(s.srcList)
		}
		s.batchStart = start
		s.obs.batch()
		parallel.ForEach(s.workers, end-start, s.sweepFn)
		for gi := start; gi < end; gi++ {
			src := s.srcList[gi]
			sc := s.scratch[gi-start]
			// Record this source's dual contribution off the batch tree
			// (before any of its routing grows the lengths further).
			var a float64
			for _, ci := range s.bySrc[gi] {
				c := s.comms[ci]
				d := sc.distTo(int32(c.Dst))
				if math.IsInf(d, 1) {
					return false
				}
				a += c.Demand * d
			}
			s.dualParts[gi] = a
			for _, ci := range s.bySrc[gi] {
				c := s.comms[ci]
				dst := int32(c.Dst)
				remaining := c.Demand
				// Route along the current tree path; if the demand exceeds
				// one bottleneck step (lengths grew), recompute the tree.
				// Reachability was checked on the batch tree above and is
				// static, so recomputed trees always reach dst.
				for remaining > 0 {
					// Bottleneck-limited step: with uniform arc capacities the
					// path bottleneck is a single arc's capacity.
					step := math.Min(remaining, s.arcCap)
					s.applyFlow(sc, dst, step)
					remaining -= step
					if remaining > 0 {
						s.sweep(sc, src, s.dstsBySrc[gi])
					}
				}
			}
		}
	}
	var alpha float64
	for _, a := range s.dualParts {
		alpha += a
	}
	s.phaseAlpha = alpha
	return true
}

// applyFlow walks the tree path into dst (parent arcs back to the source)
// and routes step units along it, updating flows and GK lengths in place.
// Every vertex on the path was settled by the sweep, so the walk is over
// final parents.
//
//jellyvet:hotpath
func (s *solver) applyFlow(sc *sweepScratch, dst int32, step float64) {
	for v := dst; sc.parentArc[v] >= 0; {
		a := sc.parentArc[v]
		s.flow[a] += step
		s.length[a] *= 1 + s.epsilon*step/s.arcCap
		// Move to the arc's tail: arc a goes tail->head where head = arcTo[a].
		v = s.arcTo[a^1]
	}
}

// primalLambda computes the certified feasible concurrent fraction for the
// accumulated flow: routedPhases full-demand rounds scaled down by the
// maximum capacity overuse.
func (s *solver) primalLambda(routedPhases float64) float64 {
	rho := s.maxOveruse()
	if rho <= 0 {
		return math.Inf(1)
	}
	return routedPhases / rho
}

//jellyvet:hotpath
func (s *solver) maxOveruse() float64 {
	rho := 0.0
	for _, f := range s.flow {
		if r := f / s.arcCap; r > rho {
			rho = r
		}
	}
	return rho
}

// dualBound computes D(l) / α(l) where D is the length volume and α(l) is
// the minimum over length functions of Σ_i demand_i · dist_l(src_i, dst_i).
// By LP duality every length function yields an upper bound on λ*.
// The sweeps only read lengths, so all source trees run concurrently —
// each worker reusing its own scratch (s.dualFn writes s.dualParts[gi]) —
// and per-source contributions are summed in srcList order to keep the
// value independent of scheduling.
//
//jellyvet:hotpath
func (s *solver) dualBound() float64 {
	parallel.ForEachWorker(s.workers, len(s.srcList), s.dualFn)
	var alpha float64
	for _, a := range s.dualParts {
		if math.IsInf(a, -1) {
			return 0
		}
		alpha += a
	}
	if alpha <= 0 {
		return math.Inf(1)
	}
	return s.volume() / alpha
}

func (s *solver) volume() float64 {
	var d float64
	for _, l := range s.length {
		d += l * s.arcCap
	}
	return d
}

func (s *solver) scaledFlow(scale float64) []float64 {
	out := make([]float64, len(s.flow))
	for i, f := range s.flow {
		out[i] = f * scale
	}
	return out
}
