package mcf

import (
	"math"

	"jellyfish/internal/graph"
)

// This file is the incremental / warm-started solving layer (DESIGN.md §9).
//
// Capacity searches and sweeps solve sequences of *related* MCF instances:
// adjacent points of a binary search share almost the whole topology and
// most of the traffic structure, so the length function Garg–Könemann
// converged to at one point is a near-converged starting point for the
// next. A Solver is a reusable handle that carries that state between
// Solve calls, and a State is the explicit, immutable snapshot callers
// thread through their own search order.
//
// Correctness never depends on the seed. Both certificates are
// self-validating — the primal bound holds for any accumulated flow, the
// dual bound for any positive length function — so a warm start can only
// change how fast the primal/dual gap closes, never what a closed gap
// means. A bad seed costs phases; it cannot produce a wrong answer.

// warmMinOverlap is the topological half of the warm-start invalidation
// rule: a seed is used only if the shared fraction of the edge sets
// (against the larger of the two) is at least this. Below it, the carried
// lengths describe mostly-missing topology and a cold start converges
// faster than un-learning them.
const warmMinOverlap = 0.5

// The maturity half of the invalidation rule: a seed is used only if the
// solve that produced it actually converged — closed its certificate gap
// to the solver's Tol. A length function from a truncated run (an
// early-accepted feasibility probe, say) is matured for neither instance;
// measured on the capacity searches, such seeds slow the next solve down,
// while converged seeds (full solves, gap-exit rejections) speed it up.
// The tolerance check happens in seedWarm against the receiving solver's
// Tol (producer and consumer share options in every chain).

// warmStartVolume is the normalized total length volume a warm seed is
// rescaled to. The dual bound is scale-invariant, so only phase dynamics
// care: starting near the canonical termination volume (~1) lets the
// loose volume-based exit fire as soon as the gap closes, while leaving
// room for a few dozen phases of multiplicative growth so the primal can
// accumulate routed rounds first.
const warmStartVolume = 0.25

// restartWindow and restartMargin parameterize the primal restart of
// Solver-handle runs (see run): every restartWindow phases the marginal
// routing quality is compared with the certified average, and the
// accumulated flow is dropped when the margin is exceeded. The window
// matches a handful of dual-refresh periods so the marginal estimate is
// stable; the margin is high enough that a restart only fires while the
// burn-in still dominates the average.
const (
	restartWindow = 16
	restartMargin = 1.15
)

// A State is an immutable warm-start snapshot taken after a solve: the
// final GK length function keyed by the edge list it was computed on,
// plus the certificates of the producing solve. States are pure values —
// threading one into a later Solve on a related instance seeds the
// solver; the State itself is never mutated, so a search can hold many
// and re-use them in any deterministic order.
type State struct {
	edges  []graph.Edge
	length []float64 // per arc, indexed 2*i / 2*i+1 over edges

	// Lambda and UpperBound are the certificates of the solve that
	// produced this state (diagnostics; not used for seeding).
	Lambda, UpperBound float64
}

// Edges reports how many edges the snapshot covers.
func (st *State) Edges() int {
	if st == nil {
		return 0
	}
	return len(st.edges)
}

// A Solver is a reusable handle for solving sequences of related
// instances. It keeps every internal array — CSR arc arrays, Dijkstra
// scratch, commodity grouping — between Solve calls, rebuilding each
// piece only when the instance actually changed it: a re-solve on the
// same graph does no topology work at all, and a small topology delta
// (servers added, links failed) rewrites the arc arrays in place instead
// of reallocating them.
//
// A Solver is NOT safe for concurrent use; use one handle per chain
// (e.g. one per trial in a capacity search).
type Solver struct {
	opt Options
	s   solver
}

// NewSolver returns a reusable solving handle with the given options.
// Options.Workers applies to every solve made through the handle.
func NewSolver(opt Options) *Solver {
	return &Solver{opt: opt.withDefaults()}
}

// SetInterrupt installs (nil clears) the cooperative cancellation poll
// applied to every subsequent Solve through this handle — see
// Options.Interrupt. Callers that interrupt a solve must discard its
// Result and State; the warm-start maturity gate would reject the
// truncated State anyway, so a chain cannot be poisoned by one.
func (sv *Solver) SetInterrupt(f func() bool) { sv.opt.Interrupt = f }

// Solve computes the maximum concurrent flow for the instance, optionally
// warm-started from a State produced by a previous solve on a related
// instance (same or mildly perturbed graph, any commodity set). A nil
// warm — or a warm whose topology overlaps the instance by less than
// warmMinOverlap — falls back to a cold start; the result is then
// bit-identical to MaxConcurrentFlow with the same Options.
//
// The returned State snapshots this solve for the next point in the
// chain. Like MaxConcurrentFlow, an instance with no effective
// commodities yields Lambda = +Inf; the input warm state is passed
// through unchanged so a degenerate point never breaks a chain.
func (sv *Solver) Solve(g *graph.Graph, comms []Commodity, warm *State) (Result, *State) {
	return sv.solve(g, comms, warm, 0, 0)
}

// FeasibleAtFull is the warm-started analogue of the package-level
// FeasibleAtFull: it reports whether all commodities can be routed at
// full demand (λ ≥ 1-slack), using certificates to answer early in
// either direction, and returns the warm snapshot for the next probe.
func (sv *Solver) FeasibleAtFull(g *graph.Graph, comms []Commodity, slack float64, warm *State) (bool, *State) {
	res, st := sv.solve(g, comms, warm, 1-slack, 1-slack)
	return res.Lambda >= 1-slack, st
}

func (sv *Solver) solve(g *graph.Graph, comms []Commodity, warm *State, accept, reject float64) (Result, *State) {
	if !sv.s.init(g.CSR(), comms, sv.opt) {
		return Result{Lambda: math.Inf(1), UpperBound: math.Inf(1)}, warm
	}
	sv.s.restart = true
	sv.s.earlyAccept, sv.s.earlyReject = accept, reject
	sv.s.seedWarm(warm) // after the thresholds: the maturity gate reads them
	res := sv.s.run()
	st := &State{
		edges:      sv.s.edges,
		length:     append([]float64(nil), sv.s.length...),
		Lambda:     res.Lambda,
		UpperBound: res.UpperBound,
	}
	return res, st
}

// seedWarm overwrites the cold initial lengths with the lengths carried
// in st, matched edge-by-edge between the two (sorted) edge lists: shared
// edges keep their converged lengths, edges new to this instance start at
// the minimum shared length (attractive enough to be explored, and
// multiplicative updates correct an underestimate within a few routings).
// The seeded function is rescaled to warmStartVolume; scaling cancels in
// the dual bound, so relative structure is all that is carried — which
// also makes seeds portable across LinkCapacity changes.
//
// Falls back (returns false, cold lengths intact) when st is nil or
// immature (certificate gap above warmMaxSeedGap), overlaps the instance
// by less than warmMinOverlap, or carries degenerate lengths.
func (s *solver) seedWarm(st *State) bool {
	if st == nil || len(st.edges) == 0 || len(s.edges) == 0 {
		return false
	}
	// Maturity: the gate matches the receiving run's own convergence
	// target — Tol for feasibility runs (whose early-accepted neighbors
	// produce looser, measurably harmful seeds), the canonical 2·Tol for
	// plain solves (whose loose-exit states are the chain's lifeblood).
	maxGap := 2 * s.opt.Tol
	if s.earlyAccept > 0 {
		maxGap = s.opt.Tol
	}
	if !(st.UpperBound > 0) || math.IsInf(st.UpperBound, 1) ||
		(st.UpperBound-st.Lambda)/st.UpperBound > maxGap+1e-12 {
		return false
	}
	// First walk: count shared edges to apply the invalidation rule
	// before touching any state.
	shared := 0
	i, j := 0, 0
	for i < len(s.edges) && j < len(st.edges) {
		switch {
		case s.edges[i] == st.edges[j]:
			shared++
			i++
			j++
		case edgeLess(s.edges[i], st.edges[j]):
			i++
		default:
			j++
		}
	}
	if float64(shared) < warmMinOverlap*float64(max(len(s.edges), len(st.edges))) {
		return false
	}
	// Second walk: install shared lengths, mark new arcs, track the
	// minimum shared length for filling them.
	minL := math.Inf(1)
	i, j = 0, 0
	for i < len(s.edges) {
		switch {
		case j < len(st.edges) && s.edges[i] == st.edges[j]:
			l0, l1 := st.length[2*j], st.length[2*j+1]
			s.length[2*i], s.length[2*i+1] = l0, l1
			minL = min(minL, l0, l1)
			i++
			j++
		case j < len(st.edges) && !edgeLess(s.edges[i], st.edges[j]):
			j++
		default:
			s.length[2*i], s.length[2*i+1] = -1, -1 // marker: new arc
			i++
		}
	}
	if minL <= 0 || math.IsInf(minL, 1) || math.IsNaN(minL) {
		s.resetLengthsCold() // degenerate carried lengths: refuse the seed
		return false
	}
	for a := range s.length {
		if s.length[a] < 0 {
			s.length[a] = minL
		}
	}
	vol := s.volume()
	if vol <= 0 || math.IsInf(vol, 1) || math.IsNaN(vol) {
		s.resetLengthsCold()
		return false
	}
	scale := warmStartVolume / vol
	for a := range s.length {
		s.length[a] *= scale
	}
	s.warmed = true
	return true
}

func edgeLess(a, b graph.Edge) bool {
	return a.U < b.U || (a.U == b.U && a.V < b.V)
}
