package mcf

import (
	"math"
	"math/rand"
	"testing"

	"jellyfish/internal/graph"
)

// regularish builds a connected random graph with n vertices and roughly
// n*deg/2 edges (ring backbone + random chords), deterministic per seed.
func regularish(n, deg int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	for g.M() < n*deg/2 {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func permComms(n int, demand float64, seed int64) []Commodity {
	r := rand.New(rand.NewSource(seed))
	var comms []Commodity
	for i, p := range r.Perm(n) {
		if i != p {
			comms = append(comms, Commodity{i, p, demand})
		}
	}
	return comms
}

// assertAgree checks that two results on the same instance agree within
// the solver's approximation guarantee: each carries certificates
// bracketing the true optimum, so the intervals must overlap and the
// primal values can differ by at most the certified gaps.
func assertAgree(t *testing.T, a, b Result) {
	t.Helper()
	if a.Lambda > a.UpperBound+1e-9 || b.Lambda > b.UpperBound+1e-9 {
		t.Fatalf("certificates inverted: a=[%v,%v] b=[%v,%v]", a.Lambda, a.UpperBound, b.Lambda, b.UpperBound)
	}
	if a.Lambda > b.UpperBound+1e-9 || b.Lambda > a.UpperBound+1e-9 {
		t.Fatalf("certificate intervals disjoint: a=[%v,%v] b=[%v,%v]", a.Lambda, a.UpperBound, b.Lambda, b.UpperBound)
	}
}

// A warm re-solve of the same instance must agree with the cold solve and
// converge in far fewer phases — the core warm-start claim.
func TestWarmResolveSameInstance(t *testing.T) {
	g := regularish(40, 8, 1)
	comms := permComms(40, 2, 2)
	sv := NewSolver(Options{Workers: 1})
	cold, st := sv.Solve(g, comms, nil)
	warm, _ := sv.Solve(g, comms, st)
	assertAgree(t, cold, warm)
	if warm.Phases >= cold.Phases {
		t.Fatalf("warm re-solve took %d phases, cold took %d — no speedup", warm.Phases, cold.Phases)
	}
}

// Warm-starting across a perturbed commodity set (same graph, different
// permutation) must agree with a cold solve of the perturbed instance
// within the approximation guarantee.
func TestWarmAcrossCommodityPerturbation(t *testing.T) {
	g := regularish(40, 8, 1)
	c1 := permComms(40, 2, 2)
	c2 := permComms(40, 2, 3)
	coldRef := MaxConcurrentFlow(g, c2, Options{Workers: 1})
	sv := NewSolver(Options{Workers: 1})
	_, st := sv.Solve(g, c1, nil)
	warm, _ := sv.Solve(g, c2, st)
	assertAgree(t, coldRef, warm)
	// The warm primal may not fall below the cold one by more than the
	// guarantee: both bracket the same optimum λ*.
	if warm.Lambda < coldRef.Lambda*(1-2*0.05)-1e-9 {
		t.Fatalf("warm λ=%v more than 2·Tol below cold λ=%v", warm.Lambda, coldRef.Lambda)
	}
}

// Warm-starting across a topology perturbation (a few links removed, as
// in failure sweeps) must agree with the cold solve of the new topology.
func TestWarmAcrossTopologyPerturbation(t *testing.T) {
	g := regularish(40, 8, 1)
	comms := permComms(40, 2, 2)
	sv := NewSolver(Options{Workers: 1})
	_, st := sv.Solve(g, comms, nil)

	g2 := g.Clone()
	edges := g2.Edges()
	for i := 0; i < 4; i++ {
		g2.RemoveEdge(edges[i*7].U, edges[i*7].V)
	}
	coldRef := MaxConcurrentFlow(g2, comms, Options{Workers: 1})
	warm, _ := sv.Solve(g2, comms, st)
	assertAgree(t, coldRef, warm)
}

// A warm state from an unrelated topology must be refused: the solve
// falls back to a cold start, bit-identical to the same handle solving
// with no warm state at all.
func TestWarmFallbackOnUnrelatedTopology(t *testing.T) {
	g := regularish(40, 8, 1)
	other := regularish(40, 8, 99) // different chords: overlap well below 50%
	comms := permComms(40, 2, 2)

	svA := NewSolver(Options{Workers: 1})
	_, stOther := svA.Solve(other, permComms(40, 2, 5), nil)

	svB := NewSolver(Options{Workers: 1})
	ref, _ := svB.Solve(g, comms, nil)
	svC := NewSolver(Options{Workers: 1})
	got, _ := svC.Solve(g, comms, stOther)
	if got.Lambda != ref.Lambda || got.UpperBound != ref.UpperBound || got.Phases != ref.Phases {
		t.Fatalf("unrelated warm state changed the solve: got (λ=%v ub=%v ph=%d), want (λ=%v ub=%v ph=%d)",
			got.Lambda, got.UpperBound, got.Phases, ref.Lambda, ref.UpperBound, ref.Phases)
	}
	for i := range ref.ArcFlow {
		if got.ArcFlow[i] != ref.ArcFlow[i] {
			t.Fatalf("arc %d flow %v != %v after refused warm seed", i, got.ArcFlow[i], ref.ArcFlow[i])
		}
	}
}

// A warm state from a truncated (unconverged) run must be refused too:
// immature seeds measurably slow the next solve down, so the maturity
// rule falls back to cold.
func TestWarmSeedRefusedWhenImmature(t *testing.T) {
	g := regularish(40, 8, 1)
	comms := permComms(40, 2, 2)

	// An early-accepted feasibility probe exits long before the gap
	// closes: its state must be immature (demand far below capacity).
	svA := NewSolver(Options{Workers: 1})
	ok, st := svA.FeasibleAtFull(g, permComms(40, 0.2, 5), 0.03, nil)
	if !ok {
		t.Fatal("setup: lightly loaded instance must be feasible")
	}
	if gap := (st.UpperBound - st.Lambda) / st.UpperBound; gap <= 0.05 {
		t.Skipf("setup produced a converged state (gap %v); cannot exercise the maturity rule", gap)
	}

	svB := NewSolver(Options{Workers: 1})
	ref, _ := svB.Solve(g, comms, nil)
	svC := NewSolver(Options{Workers: 1})
	got, _ := svC.Solve(g, comms, st)
	if got.Lambda != ref.Lambda || got.UpperBound != ref.UpperBound || got.Phases != ref.Phases {
		t.Fatalf("immature warm state was not refused: got (λ=%v ph=%d), want (λ=%v ph=%d)",
			got.Lambda, got.Phases, ref.Lambda, ref.Phases)
	}
}

// A chain of warm-started solves must be bit-identical for every worker
// count: warm state is a pure function of the chain position.
func TestWarmChainWorkerInvariance(t *testing.T) {
	g := regularish(48, 8, 7)
	chain := [][]Commodity{permComms(48, 2, 1), permComms(48, 2, 2), permComms(48, 2, 3)}

	run := func(workers int) []Result {
		sv := NewSolver(Options{Workers: workers})
		var st *State
		var out []Result
		for _, comms := range chain {
			var res Result
			res, st = sv.Solve(g, comms, st)
			out = append(out, res)
		}
		return out
	}
	base := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range base {
			if got[i].Lambda != base[i].Lambda || got[i].UpperBound != base[i].UpperBound || got[i].Phases != base[i].Phases {
				t.Fatalf("workers=%d link %d: (λ=%v ub=%v ph=%d) != serial (λ=%v ub=%v ph=%d)",
					w, i, got[i].Lambda, got[i].UpperBound, got[i].Phases,
					base[i].Lambda, base[i].UpperBound, base[i].Phases)
			}
			for a := range base[i].ArcFlow {
				if got[i].ArcFlow[a] != base[i].ArcFlow[a] {
					t.Fatalf("workers=%d link %d: arc %d flow differs", w, i, a)
				}
			}
		}
	}
}

// Degenerate chain links (no effective commodities) pass the incoming
// state through so the chain is not broken.
func TestWarmChainSurvivesDegenerateLink(t *testing.T) {
	g := regularish(40, 8, 1)
	sv := NewSolver(Options{Workers: 1})
	_, st := sv.Solve(g, permComms(40, 2, 2), nil)
	res, st2 := sv.Solve(g, []Commodity{{3, 3, 1}}, st)
	if !math.IsInf(res.Lambda, 1) {
		t.Fatalf("degenerate instance λ=%v, want +Inf", res.Lambda)
	}
	if st2 != st {
		t.Fatal("degenerate link did not pass the warm state through")
	}
	if st.Edges() != g.M() {
		t.Fatalf("State.Edges() = %d, want %d", st.Edges(), g.M())
	}
}

// Result.ArcFlow must witness Result.Lambda even in restart-capable
// handle runs, where the live flow can be discarded after the best
// certificate was taken: the returned flow, pushed through the returned
// λ's definition (routed rounds / overuse), must certify at least Lambda
// and respect capacity.
func TestHandleArcFlowCertifiesLambda(t *testing.T) {
	g := regularish(40, 8, 1)
	for _, seed := range []int64{2, 3, 4} {
		comms := permComms(40, 2, seed)
		sv := NewSolver(Options{Workers: 1})
		res, _ := sv.Solve(g, comms, nil)
		opt := Options{}.withDefaults()
		total := 0.0
		for i, f := range res.ArcFlow {
			if f > opt.LinkCapacity+1e-9 {
				t.Fatalf("seed %d: arc %d flow %v exceeds capacity", seed, i, f)
			}
			total += f
		}
		// A flow shipping λ·demand for every commodity crosses at least
		// one arc per shipped unit, so its total arc volume is ≥ λ·Σd.
		demSum := 0.0
		for _, c := range comms {
			demSum += c.Demand
		}
		if total < res.Lambda*demSum*(1-1e-9) {
			t.Fatalf("seed %d: ArcFlow volume %v cannot witness λ=%v over demand %v (dropped or mis-scaled flow)",
				seed, total, res.Lambda, demSum)
		}
	}
}

// The handle must keep results identical to the package-level entry point
// semantics on a fresh (cold) solve for the certificates' sake, and its
// state snapshots must be immutable: re-solving through the handle must
// not corrupt a previously returned state.
func TestStateImmutableAcrossHandleReuse(t *testing.T) {
	g := regularish(40, 8, 1)
	c1 := permComms(40, 2, 2)
	c2 := permComms(40, 2, 3)
	sv := NewSolver(Options{Workers: 1})
	_, st1 := sv.Solve(g, c1, nil)
	snapshot := append([]float64(nil), st1.length...)
	_, _ = sv.Solve(g, c2, st1)
	for i := range snapshot {
		if st1.length[i] != snapshot[i] {
			t.Fatal("handle reuse mutated a previously returned State")
		}
	}
}
