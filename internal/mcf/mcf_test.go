package mcf

import (
	"math"
	"math/rand"
	"testing"

	"jellyfish/internal/graph"
	"jellyfish/internal/telemetry"
)

func ring(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// check asserts lambda certificates bracket a known optimum.
func check(t *testing.T, res Result, wantLambda, tol float64) {
	t.Helper()
	if res.Lambda > res.UpperBound+1e-9 {
		t.Fatalf("primal %v exceeds dual %v", res.Lambda, res.UpperBound)
	}
	if math.Abs(res.Lambda-wantLambda) > tol*wantLambda {
		t.Fatalf("lambda = %v, want %v (±%v%%)", res.Lambda, wantLambda, tol*100)
	}
}

func TestSingleCommoditySingleEdge(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	res := MaxConcurrentFlow(g, []Commodity{{0, 1, 1}}, Options{})
	// One unit-capacity edge, one unit demand: λ = 1.
	check(t, res, 1.0, 0.08)
}

func TestOversubscribedEdge(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	res := MaxConcurrentFlow(g, []Commodity{{0, 1, 4}}, Options{})
	check(t, res, 0.25, 0.08)
}

func TestTwoDisjointPathsDoubleCapacity(t *testing.T) {
	// Ring of 4: 0 to 2 has two vertex-disjoint 2-hop paths, λ = 2 for
	// demand 1 (both paths carry 1 unit each).
	res := MaxConcurrentFlow(ring(4), []Commodity{{0, 2, 1}}, Options{})
	check(t, res, 2.0, 0.08)
}

func TestDisconnectedCommodity(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	res := MaxConcurrentFlow(g, []Commodity{{0, 3, 1}}, Options{})
	if res.Lambda != 0 {
		t.Fatalf("lambda = %v for disconnected commodity, want 0", res.Lambda)
	}
}

// Regression: the disconnected early return must honor Result.ArcFlow's
// "(scaled, feasible)" contract. Source 0 routes its 3-unit demand over
// the single unit-capacity edge (3× overuse, phases are unscaled) before
// source 2 hits its dead end; the returned flow used to be handed back
// unscaled, overusing the edge 3×.
func TestDisconnectedResultFlowFeasible(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	res := MaxConcurrentFlow(g, []Commodity{{0, 1, 3}, {2, 3, 1}}, Options{})
	if res.Lambda != 0 {
		t.Fatalf("lambda = %v with a disconnected commodity, want 0", res.Lambda)
	}
	maxFlow := 0.0
	for i, f := range res.ArcFlow {
		if f > 1+1e-9 {
			t.Fatalf("arc %d flow %v exceeds capacity 1: disconnected return not scaled", i, f)
		}
		if f > maxFlow {
			maxFlow = f
		}
	}
	// The accumulated flow is normalized by its overuse, so the bottleneck
	// arc sits exactly at capacity.
	if math.Abs(maxFlow-1) > 1e-9 {
		t.Fatalf("bottleneck arc flow = %v, want 1 (3 routed units / 3× overuse)", maxFlow)
	}
}

// The steady-state phase loop — sweeps, routing, free dual bound, exact
// dual refresh — must not allocate: all Dijkstra state lives in reusable
// generation-stamped scratch and the fan-out closures are built once at
// solver construction. One warm-up phase grows the heap backing arrays to
// their high-water mark first.
func TestPhaseLoopZeroAllocs(t *testing.T) {
	g := ring(16)
	var comms []Commodity
	for i := 0; i < 16; i++ {
		comms = append(comms, Commodity{i, (i + 5) % 16, 2})
	}
	s := newSolver(g.CSR(), comms, Options{Workers: 1}.withDefaults())
	s.phase()
	s.dualBound()
	allocs := testing.AllocsPerRun(10, func() {
		s.phase()
		s.dualBound()
	})
	if allocs != 0 {
		t.Fatalf("phase loop allocated %v times per phase, want 0", allocs)
	}
}

// The instrumented phase loop must allocate exactly as much as the bare
// one: nothing. This is the AllocsPerRun pin behind DESIGN.md §15's
// claim that attaching a fully populated Obs (counters, histograms,
// flight recorder) costs no allocations on the hot path.
func TestPhaseLoopZeroAllocsInstrumented(t *testing.T) {
	g := ring(16)
	var comms []Commodity
	for i := 0; i < 16; i++ {
		comms = append(comms, Commodity{i, (i + 5) % 16, 2})
	}
	obs := &Obs{
		Solves:        &telemetry.Counter{},
		Phases:        &telemetry.Counter{},
		Batches:       &telemetry.Counter{},
		DualRefreshes: &telemetry.Counter{},
		SolveDur:      &telemetry.Histogram{},
		PhaseDur:      &telemetry.Histogram{},
		Rec:           telemetry.NewRecorder(256),
	}
	s := newSolver(g.CSR(), comms, Options{Workers: 1, Obs: obs}.withDefaults())
	s.phase()
	s.dualBound()
	allocs := testing.AllocsPerRun(10, func() {
		pt := s.obs.phaseBegin(1)
		s.phase()
		s.obs.phaseEnd(pt)
		s.obs.dualBegin()
		s.dualBound()
		s.obs.dualEnd()
	})
	if allocs != 0 {
		t.Fatalf("instrumented phase loop allocated %v times per phase, want 0", allocs)
	}
	if obs.Phases.Value() == 0 || obs.Batches.Value() == 0 { //jellyvet:allow obsconfine -- test asserts the instrumentation fired; values never reach solver state
		t.Fatal("instrumentation recorded no phases/batches")
	}
}

// Attaching telemetry must not change any answer: same instance, with
// and without a populated Obs, identical Result.
func TestObsDoesNotPerturbResult(t *testing.T) {
	g := complete(8)
	var comms []Commodity
	for i := 0; i < 8; i++ {
		comms = append(comms, Commodity{i, (i + 3) % 8, 1})
	}
	bare := MaxConcurrentFlow(g, comms, Options{Workers: 1})
	obs := &Obs{
		Phases:   &telemetry.Counter{},
		PhaseDur: &telemetry.Histogram{},
		Rec:      telemetry.NewRecorder(128),
	}
	inst := MaxConcurrentFlow(g, comms, Options{Workers: 1, Obs: obs})
	if bare.Lambda != inst.Lambda || bare.UpperBound != inst.UpperBound || bare.Phases != inst.Phases {
		t.Fatalf("telemetry perturbed the solve: bare %+v vs instrumented %+v",
			Result{Lambda: bare.Lambda, UpperBound: bare.UpperBound, Phases: bare.Phases},
			Result{Lambda: inst.Lambda, UpperBound: inst.UpperBound, Phases: inst.Phases})
	}
	if obs.Phases.Value() != int64(inst.Phases) { //jellyvet:allow obsconfine -- test cross-checks the counter against the result; read-out stays in the test
		t.Fatalf("phase counter %d != result phases %d", obs.Phases.Value(), inst.Phases)
	}
}

func TestNoCommodities(t *testing.T) {
	res := MaxConcurrentFlow(ring(4), nil, Options{})
	if !math.IsInf(res.Lambda, 1) {
		t.Fatalf("lambda = %v with no commodities, want +Inf", res.Lambda)
	}
}

func TestSelfCommodityIgnored(t *testing.T) {
	res := MaxConcurrentFlow(ring(4), []Commodity{{1, 1, 5}}, Options{})
	if !math.IsInf(res.Lambda, 1) {
		t.Fatalf("lambda = %v with only self-commodity, want +Inf", res.Lambda)
	}
}

func TestZeroDemandIgnored(t *testing.T) {
	res := MaxConcurrentFlow(ring(4), []Commodity{{0, 2, 0}}, Options{})
	if !math.IsInf(res.Lambda, 1) {
		t.Fatalf("lambda = %v with zero demand, want +Inf", res.Lambda)
	}
}

func TestRingUniformPermutation(t *testing.T) {
	// Ring of n, every node sends 1 unit to its antipode. Each of the n
	// unit-capacity edges (per direction) must carry flow; the bisection
	// argument gives λ = 8/n... verify against brute known case n=4:
	// commodities (0,2),(1,3),(2,0),(3,1), each can use 2 disjoint 2-hop
	// paths; total demand crossing any cut of 2 edges is 2 per direction.
	// By symmetry each edge-direction carries λ·(2 hops·4 demands)/8 arcs =
	// λ; so λ = 1.
	g := ring(4)
	comms := []Commodity{{0, 2, 1}, {1, 3, 1}, {2, 0, 1}, {3, 1, 1}}
	res := MaxConcurrentFlow(g, comms, Options{})
	check(t, res, 1.0, 0.08)
}

func TestCompleteGraphPermutation(t *testing.T) {
	// K6 with a cyclic permutation: every commodity has a direct edge,
	// plus abundant 2-hop spare capacity; λ should be well above 1. The
	// exact optimum for a single-cycle permutation on K_n is 1 + (n-2)/2·...
	// — we only assert λ ≥ 2 (direct path gives 1, 2-hop paths add more).
	n := 6
	g := complete(n)
	var comms []Commodity
	for i := 0; i < n; i++ {
		comms = append(comms, Commodity{i, (i + 1) % n, 1})
	}
	res := MaxConcurrentFlow(g, comms, Options{})
	if res.Lambda < 2 {
		t.Fatalf("K6 cyclic permutation lambda = %v, want >= 2", res.Lambda)
	}
	if res.Lambda > res.UpperBound {
		t.Fatalf("primal exceeds dual")
	}
}

func TestStarBottleneck(t *testing.T) {
	// Star with center 0, leaves 1..4. Leaves 1→2 and 3→4 both cross the
	// center; each leaf edge carries at most 1, center edges shared by one
	// flow each: λ = 1.
	g := graph.New(5)
	for v := 1; v <= 4; v++ {
		g.AddEdge(0, v)
	}
	comms := []Commodity{{1, 2, 1}, {3, 4, 1}}
	res := MaxConcurrentFlow(g, comms, Options{})
	check(t, res, 1.0, 0.08)
}

func TestStarOversubscribed(t *testing.T) {
	// Two flows from the same leaf saturate its single uplink: λ = 1/2.
	g := graph.New(4)
	for v := 1; v <= 3; v++ {
		g.AddEdge(0, v)
	}
	comms := []Commodity{{1, 2, 1}, {1, 3, 1}}
	res := MaxConcurrentFlow(g, comms, Options{})
	check(t, res, 0.5, 0.08)
}

func TestLinkCapacityScales(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	res := MaxConcurrentFlow(g, []Commodity{{0, 1, 1}}, Options{LinkCapacity: 10})
	check(t, res, 10.0, 0.08)
}

func TestFeasibleAtFull(t *testing.T) {
	g := ring(4)
	if !FeasibleAtFull(g, []Commodity{{0, 2, 1}}, Options{}, 0.05) {
		t.Fatal("clearly feasible instance rejected")
	}
	g2 := graph.New(2)
	g2.AddEdge(0, 1)
	if FeasibleAtFull(g2, []Commodity{{0, 1, 3}}, Options{}, 0.05) {
		t.Fatal("clearly infeasible instance accepted")
	}
}

func TestCertificatesBracketOnRandomInstances(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 8 + r.Intn(12)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		if !g.Connected() {
			continue
		}
		perm := r.Perm(n)
		var comms []Commodity
		for i, p := range perm {
			if i != p {
				comms = append(comms, Commodity{i, p, 1})
			}
		}
		res := MaxConcurrentFlow(g, comms, Options{})
		if res.Lambda <= 0 {
			t.Fatalf("trial %d: lambda = %v on connected instance", trial, res.Lambda)
		}
		if res.Lambda > res.UpperBound+1e-9 {
			t.Fatalf("trial %d: primal %v > dual %v", trial, res.Lambda, res.UpperBound)
		}
		gap := (res.UpperBound - res.Lambda) / res.UpperBound
		if gap > 0.10 {
			t.Fatalf("trial %d: certificate gap %v too large", trial, gap)
		}
	}
}

// The scaled arc flows must respect capacity and deliver λ·demand per
// commodity in aggregate (flow conservation checked via total volume).
func TestArcFlowFeasibility(t *testing.T) {
	g := ring(6)
	comms := []Commodity{{0, 3, 1}, {1, 4, 1}, {2, 5, 1}}
	opt := Options{}.withDefaults()
	res := MaxConcurrentFlow(g, comms, Options{})
	for i, f := range res.ArcFlow {
		if f > opt.LinkCapacity+1e-6 {
			t.Fatalf("arc %d flow %v exceeds capacity", i, f)
		}
	}
}

func TestTighterEpsilonTightensGap(t *testing.T) {
	g := ring(8)
	comms := []Commodity{{0, 4, 1}, {2, 6, 1}}
	loose := MaxConcurrentFlow(g, comms, Options{Epsilon: 0.3, Tol: 0.15})
	tight := MaxConcurrentFlow(g, comms, Options{Epsilon: 0.05, Tol: 0.01, MaxPhases: 20000})
	gapL := (loose.UpperBound - loose.Lambda) / loose.UpperBound
	gapT := (tight.UpperBound - tight.Lambda) / tight.UpperBound
	if gapT > gapL+1e-9 {
		t.Fatalf("tight eps gap %v not better than loose %v", gapT, gapL)
	}
	if gapT > 0.011 {
		t.Fatalf("tight gap %v exceeds requested tolerance", gapT)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Epsilon != 0.1 || o.Tol != 0.05 || o.MaxPhases != 3000 || o.LinkCapacity != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	custom := Options{Epsilon: 0.2, Tol: 0.01, MaxPhases: 7, LinkCapacity: 4}.withDefaults()
	if custom.Epsilon != 0.2 || custom.Tol != 0.01 || custom.MaxPhases != 7 || custom.LinkCapacity != 4 ||
		custom.Workers != 0 || custom.Obs != nil || custom.Interrupt != nil {
		t.Fatalf("custom options overwritten: %+v", custom)
	}
}

// TestInterruptPhaseBound pins the documented cancellation-latency
// bound (DESIGN.md §16): an interrupt that fires from the Nth poll
// onward stops the solve after at most N phases — the poll runs before
// every phase, so only the phase in flight can complete after a fire.
func TestInterruptPhaseBound(t *testing.T) {
	g := ring(8)
	comms := []Commodity{{0, 4, 1}, {1, 5, 1}, {2, 6, 1}}
	base := MaxConcurrentFlow(g, comms, Options{Tol: 1e-6, Epsilon: 0.02})
	if base.Phases < 20 {
		t.Fatalf("instance too easy to exercise interruption: %d phases", base.Phases)
	}
	for _, fireAt := range []int{1, 3, 10} {
		polls := 0
		res := MaxConcurrentFlow(g, comms, Options{
			Tol: 1e-6, Epsilon: 0.02,
			Interrupt: func() bool { polls++; return polls >= fireAt },
		})
		if res.Phases > fireAt {
			t.Fatalf("interrupt at poll %d: solve ran %d phases, bound is %d", fireAt, res.Phases, fireAt)
		}
		// Even truncated, certificates must bracket.
		if res.Lambda > res.UpperBound+1e-9 {
			t.Fatalf("certificates inverted after interrupt: %v > %v", res.Lambda, res.UpperBound)
		}
	}
}

// TestInterruptNeverFiringIsByteIdentical pins the faults-off identity
// argument: a poll that never fires changes nothing about the solve.
func TestInterruptNeverFiringIsByteIdentical(t *testing.T) {
	g := ring(8)
	comms := []Commodity{{0, 4, 1}, {1, 5, 1}, {2, 6, 1}}
	plain := MaxConcurrentFlow(g, comms, Options{Tol: 1e-6, Epsilon: 0.02})
	polled := MaxConcurrentFlow(g, comms, Options{
		Tol: 1e-6, Epsilon: 0.02,
		Interrupt: func() bool { return false },
	})
	if plain.Lambda != polled.Lambda || plain.UpperBound != polled.UpperBound || plain.Phases != polled.Phases {
		t.Fatalf("never-firing interrupt perturbed the solve: %+v vs %+v", plain, polled)
	}
	for i := range plain.ArcFlow {
		if plain.ArcFlow[i] != polled.ArcFlow[i] {
			t.Fatalf("arc %d flow differs: %v vs %v", i, plain.ArcFlow[i], polled.ArcFlow[i])
		}
	}
}

func TestMaxPhasesCapRespected(t *testing.T) {
	g := ring(8)
	comms := []Commodity{{0, 4, 1}, {1, 5, 1}, {2, 6, 1}}
	res := MaxConcurrentFlow(g, comms, Options{MaxPhases: 3, Tol: 1e-9, Epsilon: 0.01})
	if res.Phases > 3 {
		t.Fatalf("phases = %d, cap was 3", res.Phases)
	}
	// Even truncated, certificates must bracket.
	if res.Lambda > res.UpperBound+1e-9 {
		t.Fatalf("certificates inverted: %v > %v", res.Lambda, res.UpperBound)
	}
}

func TestFeasibleAtFullWithCapacity(t *testing.T) {
	// Demand 3 over a capacity-4 link: feasible only thanks to capacity.
	g := graph.New(2)
	g.AddEdge(0, 1)
	if !FeasibleAtFull(g, []Commodity{{0, 1, 3}}, Options{LinkCapacity: 4}, 0.05) {
		t.Fatal("feasible instance rejected with LinkCapacity=4")
	}
	if FeasibleAtFull(g, []Commodity{{0, 1, 3}}, Options{LinkCapacity: 2}, 0.05) {
		t.Fatal("infeasible instance accepted with LinkCapacity=2")
	}
}

func TestResultEdgesIndexing(t *testing.T) {
	g := ring(4)
	res := MaxConcurrentFlow(g, []Commodity{{0, 2, 1}}, Options{})
	if len(res.Edges) != 4 || len(res.ArcFlow) != 8 {
		t.Fatalf("edges=%d arcs=%d, want 4, 8", len(res.Edges), len(res.ArcFlow))
	}
	// Flow conservation sanity: total arc flow equals λ·demand·meanhops;
	// for one unit demand split over two 2-hop paths: 2·λ/... just assert
	// positive flow on some arc.
	var total float64
	for _, f := range res.ArcFlow {
		total += f
	}
	if total <= 0 {
		t.Fatal("no flow recorded")
	}
}

// The batched solver must produce bit-identical results for every Workers
// value: batches are fixed-size length-snapshot sweeps, so the worker count
// only changes scheduling, never routing.
func TestWorkerCountInvariance(t *testing.T) {
	// A random-ish regular graph with many sources keeps several batches
	// and the recompute path (Demand > LinkCapacity) exercised.
	g := graph.New(24)
	r := rand.New(rand.NewSource(5))
	for u := 0; u < 24; u++ {
		for _, v := range []int{(u + 1) % 24, (u + 5) % 24, (u + 11) % 24} {
			g.AddEdge(u, v)
		}
	}
	var comms []Commodity
	for u := 0; u < 24; u++ {
		comms = append(comms, Commodity{u, (u + 7) % 24, 1 + float64(r.Intn(3))})
	}
	base := MaxConcurrentFlow(g, comms, Options{Workers: 1})
	for _, w := range []int{2, 8} {
		res := MaxConcurrentFlow(g, comms, Options{Workers: w})
		if res.Lambda != base.Lambda || res.UpperBound != base.UpperBound || res.Phases != base.Phases {
			t.Fatalf("workers=%d: (λ=%v ub=%v phases=%d) != serial (λ=%v ub=%v phases=%d)",
				w, res.Lambda, res.UpperBound, res.Phases, base.Lambda, base.UpperBound, base.Phases)
		}
		for i := range base.ArcFlow {
			if res.ArcFlow[i] != base.ArcFlow[i] {
				t.Fatalf("workers=%d: arc %d flow %v != %v", w, i, res.ArcFlow[i], base.ArcFlow[i])
			}
		}
	}
}
