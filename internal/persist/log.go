package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"

	"jellyfish/internal/faultinject"
)

// Record framing: an 8-byte header — payload length then CRC32 (IEEE)
// of the payload, both little-endian uint32 — followed by the payload.
// The framing is what lets replay distinguish the two failure modes a
// log can exhibit:
//
//   - a crash-truncated tail (incomplete header, or fewer payload bytes
//     than the header promises): the normal kill -9 case. Replay drops
//     the partial record and recovers the complete-record prefix —
//     truncation can only remove a suffix of what was appended, so every
//     byte before the cut is exactly as written;
//   - a complete record whose payload fails its checksum: damage that
//     cannot be explained by truncation. Replay fails loudly with a
//     *CorruptLogError rather than ever accepting a damaged record.
const recordHeaderLen = 8

// A CorruptLogError reports a journal record whose payload does not
// match its checksum — damage replay refuses to paper over.
type CorruptLogError struct {
	Path   string
	Offset int64
}

func (e *CorruptLogError) Error() string {
	return fmt.Sprintf("persist: corrupt record at %s offset %d: payload checksum mismatch", e.Path, e.Offset)
}

// ReplayLog reads every complete record of the log at path, returning
// the records and the byte offset where the clean prefix ends (the
// append position after truncating a partial tail). A missing file
// replays as empty. A checksum mismatch returns a *CorruptLogError.
func ReplayLog(path string) ([][]byte, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("persist: reading journal: %w", err)
	}
	var recs [][]byte
	off := int64(0)
	for int64(len(data))-off >= recordHeaderLen {
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if int64(len(data))-off-recordHeaderLen < n {
			break // truncated tail: header promises more bytes than exist
		}
		payload := data[off+recordHeaderLen : off+recordHeaderLen+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, 0, &CorruptLogError{Path: path, Offset: off}
		}
		// Detach from the read buffer: records outlive this call.
		recs = append(recs, append([]byte(nil), payload...))
		off += recordHeaderLen + n
	}
	return recs, off, nil
}

// A Log is an append-only record log open for writing. Not safe for
// concurrent use.
type Log struct {
	path string
	f    *os.File
	buf  []byte // frame assembly scratch, reused across appends
}

// OpenLog replays the log at path (see ReplayLog), truncates any
// partial tail, and opens it positioned for appending.
func OpenLog(path string) (*Log, [][]byte, error) {
	recs, off, err := ReplayLog(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: opening journal: %w", err)
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("persist: truncating partial tail: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("persist: seeking journal: %w", err)
	}
	return &Log{path: path, f: f}, recs, nil
}

// Append frames payload and writes it in a single syscall, so a record
// is either absent, partially present (crash mid-write — dropped on
// replay), or complete. The bytes reach the kernel before Append
// returns; they are not fsynced (see the package durability model).
func (l *Log) Append(payload []byte) error {
	need := recordHeaderLen + len(payload)
	if cap(l.buf) < need {
		l.buf = make([]byte, 0, need*2)
	}
	b := l.buf[:need]
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(payload))
	copy(b[recordHeaderLen:], payload)
	if faultinject.Enabled() {
		if f, ok := faultinject.Hit("persist.append"); ok && f.Err != nil {
			if f.ShortWrite {
				// Torn write: a prefix of the frame lands on disk, as a
				// crash mid-write would leave it. Replay drops it as a
				// truncated tail; the degraded-mode recovery snapshot
				// resets the journal before any record after the tear
				// would matter.
				l.f.Write(b[:need/2])
			}
			return fmt.Errorf("persist: appending record: %w", f.Err)
		}
	}
	if _, err := l.f.Write(b); err != nil {
		return fmt.Errorf("persist: appending record: %w", err)
	}
	return nil
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	if f, ok := faultinject.Hit("persist.fsync"); ok && f.Err != nil {
		return fmt.Errorf("persist: syncing journal: %w", f.Err)
	}
	return l.f.Sync()
}

// Reset truncates the log to empty (after its records were subsumed by
// a snapshot) and syncs the truncation.
func (l *Log) Reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("persist: resetting journal: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("persist: resetting journal: %w", err)
	}
	return l.f.Sync()
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
