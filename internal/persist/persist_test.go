package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testRecords builds a deterministic set of variably sized payloads,
// including empty and binary ones, so frame boundaries land at many
// different alignments.
func testRecords() [][]byte {
	recs := [][]byte{
		[]byte(`{"kind":"submit","id":"j000001"}`),
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0x00, 0xff, 0x7f}, 33),
	}
	for i := 0; i < 8; i++ {
		recs = append(recs, bytes.Repeat([]byte{byte('a' + i)}, 7*i+5))
	}
	return recs
}

func writeLog(t *testing.T, path string, recs [][]byte) {
	t.Helper()
	l, prior, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh log replayed %d records", len(prior))
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	recs := testRecords()
	writeLog(t, path, recs)
	got, _, err := ReplayLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], recs[i])
		}
	}
}

// The crash-recovery property, checked exhaustively: a log truncated at
// EVERY byte boundary either replays cleanly to exactly the prefix of
// records whose complete frames survived, or — never — accepts a
// partial record. Truncation is the only damage kill -9 can inflict
// (appends are sequential), so clean recovery must hold at all offsets.
func TestReplayTruncatedAtEveryByteBoundary(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "journal.log")
	recs := testRecords()
	writeLog(t, full, recs)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// frameEnd[i] is the byte offset at which record i's frame completes.
	frameEnd := make([]int64, len(recs))
	off := int64(0)
	for i, r := range recs {
		off += recordHeaderLen + int64(len(r))
		frameEnd[i] = off
	}
	if off != int64(len(data)) {
		t.Fatalf("frame accounting: %d != file size %d", off, len(data))
	}

	trunc := filepath.Join(dir, "trunc.log")
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(trunc, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, cleanOff, err := ReplayLog(trunc)
		if err != nil {
			t.Fatalf("cut %d: replay failed on pure truncation: %v", cut, err)
		}
		wantN := 0
		for wantN < len(recs) && frameEnd[wantN] <= int64(cut) {
			wantN++
		}
		if len(got) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), wantN)
		}
		for i := 0; i < wantN; i++ {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("cut %d: record %d differs after recovery", cut, i)
			}
		}
		var wantOff int64
		if wantN > 0 {
			wantOff = frameEnd[wantN-1]
		}
		if cleanOff != wantOff {
			t.Fatalf("cut %d: clean offset %d, want %d", cut, cleanOff, wantOff)
		}
		// OpenLog on the truncated file must drop the tail and keep
		// appending from the record boundary.
		l, replayed, err := OpenLog(trunc)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(replayed) != wantN {
			t.Fatalf("cut %d: reopen replayed %d records, want %d", cut, len(replayed), wantN)
		}
		if err := l.Append([]byte("post-crash")); err != nil {
			t.Fatal(err)
		}
		l.Close()
		again, _, err := ReplayLog(trunc)
		if err != nil || len(again) != wantN+1 || string(again[wantN]) != "post-crash" {
			t.Fatalf("cut %d: append after recovery broken: %d records, err %v", cut, len(again), err)
		}
	}
}

// Corruption — a bit flip inside a complete record's payload — must
// fail loudly, not replay as if the damaged bytes were written.
func TestReplayCorruptPayloadFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.log")
	recs := testRecords()
	writeLog(t, path, recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle record (records 0..3 are tiny;
	// record 5 starts after 4 frames — compute its payload offset).
	off := int64(0)
	for i := 0; i < 5; i++ {
		off += recordHeaderLen + int64(len(recs[i]))
	}
	corruptAt := off + recordHeaderLen // first payload byte of record 5
	data[corruptAt] ^= 0x01
	bad := filepath.Join(dir, "bad.log")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReplayLog(bad)
	var cerr *CorruptLogError
	if !errors.As(err, &cerr) {
		t.Fatalf("corrupted payload replayed with err %v, want *CorruptLogError", err)
	}
	if cerr.Offset != off {
		t.Fatalf("corruption reported at offset %d, want %d", cerr.Offset, off)
	}
	if _, _, err := OpenLog(bad); !errors.As(err, &cerr) {
		t.Fatalf("OpenLog accepted a corrupt journal: %v", err)
	}
}

func TestStoreSnapshotSubsumesJournal(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh store recovered %+v", rec)
	}
	for i := 0; i < 5; i++ {
		if err := st.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot([]byte(`{"snap":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if string(rec2.Snapshot) != `{"snap":1}` {
		t.Fatalf("snapshot = %q", rec2.Snapshot)
	}
	if len(rec2.Records) != 1 || string(rec2.Records[0]) != "after" {
		t.Fatalf("post-snapshot records = %q", rec2.Records)
	}
}

func TestStoreBlobs(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a := []byte(`{"result":1}`)
	d1, err := st.PutBlob(a)
	if err != nil {
		t.Fatal(err)
	}
	// Content addressing: same bytes, same digest, no second file.
	d2, err := st.PutBlob(a)
	if err != nil || d2 != d1 {
		t.Fatalf("re-put digest %s err %v, want %s", d2, err, d1)
	}
	if d1 != Digest(a) {
		t.Fatalf("blob digest %s != Digest %s", d1, Digest(a))
	}
	got, err := st.GetBlob(d1)
	if err != nil || !bytes.Equal(got, a) {
		t.Fatalf("GetBlob = %q, %v", got, err)
	}
	d3, err := st.PutBlob([]byte("other"))
	if err != nil {
		t.Fatal(err)
	}
	names, err := st.Blobs()
	if err != nil || len(names) != 2 {
		t.Fatalf("Blobs = %v, %v", names, err)
	}
	if err := st.RemoveBlob(d3); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveBlob(d3); err != nil {
		t.Fatalf("removing a missing blob: %v", err)
	}
	if names, _ = st.Blobs(); len(names) != 1 || names[0] != d1 {
		t.Fatalf("after GC: %v", names)
	}
	if _, err := st.GetBlob(d3); err == nil {
		t.Fatal("removed blob still readable")
	}
}
