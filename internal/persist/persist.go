// Package persist is jellyfishd's crash-safe on-disk state store: an
// append-only record log with checksummed framing, an atomically
// replaced snapshot, and a content-addressed blob store for result
// documents (DESIGN.md §14).
//
// The package is deliberately policy-free: records and the snapshot are
// opaque byte payloads whose semantics (job envelopes, the job-table
// snapshot) live in internal/service. What persist owns is the
// durability discipline:
//
//   - every record is framed with its length and CRC32, so replay can
//     tell a crash-truncated tail (dropped silently — the normal kill -9
//     case) from payload corruption (a loud *CorruptLogError — never
//     accept a damaged record as if it were written);
//   - the snapshot is written to a temp file, synced, and renamed over
//     the old one, then the journal is truncated — a crash at any point
//     leaves either the old (snapshot, journal) pair or the new one;
//   - blobs are named by the content digest of their bytes, so a blob
//     file is immutable once written and identical payloads share one
//     file.
//
// Durability model: appends reach the kernel on every call (no
// user-space buffering), which makes the store proof against process
// death — kill -9 included — at any byte. fsync happens on snapshot
// replacement and Close, not per record, so an OS crash or power loss
// can lose the records appended since the last sync. See DESIGN.md §14
// for what the guarantee does and does not cover.
package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"jellyfish/internal/faultinject"
	"jellyfish/internal/telemetry"
)

// The fixed state-directory layout.
const (
	journalName  = "journal.log"
	snapshotName = "snapshot.json"
	blobDirName  = "blobs"
)

// Digest is the content hash used to name blobs: the same truncated
// sha256 convention the service uses for cache keys, so a stored result
// document and its cache identity agree.
func Digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// Obs is the store's telemetry bundle (internal/telemetry): append and
// snapshot counts and latencies, fed by the store itself so every
// caller's journal writes are covered. Nil — the default — records
// nothing; all instruments are nil-safe.
type Obs struct {
	Appends     *telemetry.Counter
	Snapshots   *telemetry.Counter
	AppendDur   *telemetry.Histogram
	SnapshotDur *telemetry.Histogram
}

// A Store is one state directory: journal + snapshot + blobs. Methods
// are not safe for concurrent use — the caller (the service's job
// store) serializes access.
type Store struct {
	dir string
	log *Log
	obs *Obs
}

// SetObs attaches a telemetry bundle; call before concurrent use. A nil
// bundle (the default) disables observation.
func (s *Store) SetObs(o *Obs) { s.obs = o }

// RecoveredState is what Open found on disk: the snapshot bytes (nil if
// no snapshot has been written) and every complete journal record
// appended since it.
type RecoveredState struct {
	Snapshot []byte
	Records  [][]byte
}

// Open opens (creating if needed) the state directory and replays its
// journal. A crash-truncated journal tail is discarded; corruption
// fails loudly with a *CorruptLogError.
func Open(dir string) (*Store, RecoveredState, error) {
	if err := os.MkdirAll(filepath.Join(dir, blobDirName), 0o755); err != nil {
		return nil, RecoveredState{}, fmt.Errorf("persist: creating state dir: %w", err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, RecoveredState{}, fmt.Errorf("persist: reading snapshot: %w", err)
		}
		snap = nil
	}
	log, recs, err := OpenLog(filepath.Join(dir, journalName))
	if err != nil {
		return nil, RecoveredState{}, err
	}
	return &Store{dir: dir, log: log}, RecoveredState{Snapshot: snap, Records: recs}, nil
}

// Append appends one record to the journal. The write reaches the
// kernel before Append returns (kill -9 safe); it is not fsynced.
func (s *Store) Append(rec []byte) error {
	if s.obs == nil {
		return s.log.Append(rec)
	}
	t := telemetry.StartTimer()
	err := s.log.Append(rec)
	s.obs.Appends.Inc()
	s.obs.AppendDur.ObserveSince(t)
	return err
}

// Sync flushes the journal to stable storage.
func (s *Store) Sync() error { return s.log.Sync() }

// WriteSnapshot atomically replaces the snapshot with b and truncates
// the journal: temp file, fsync, rename, directory fsync, then journal
// reset. Replay state afterwards is (b, no records).
func (s *Store) WriteSnapshot(b []byte) error {
	if s.obs != nil {
		t := telemetry.StartTimer()
		defer func() {
			s.obs.Snapshots.Inc()
			s.obs.SnapshotDur.ObserveSince(t)
		}()
	}
	path := filepath.Join(s.dir, snapshotName)
	tmp := path + ".tmp"
	if err := writeFileSynced(tmp, b); err != nil {
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	// Failpoint between the temp write and the rename: the
	// crash-during-snapshot window. The old (snapshot, journal) pair
	// must remain the recoverable state.
	if f, ok := faultinject.Hit("persist.snapshot.rename"); ok && f.Err != nil {
		return fmt.Errorf("persist: installing snapshot: %w", f.Err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: installing snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// Only after the snapshot is durably in place may the journal records
	// it subsumes be dropped.
	return s.log.Reset()
}

// PutBlob stores b under its content digest and returns the digest.
// Blobs are immutable: if the digest already exists the bytes are
// already on disk and the write is skipped.
func (s *Store) PutBlob(b []byte) (string, error) {
	d := Digest(b)
	path := filepath.Join(s.dir, blobDirName, d)
	if _, err := os.Stat(path); err == nil {
		return d, nil
	}
	if f, ok := faultinject.Hit("persist.blob.write"); ok && f.Err != nil {
		return "", fmt.Errorf("persist: writing blob: %w", f.Err)
	}
	if err := writeFileSynced(path+".tmp", b); err != nil {
		return "", fmt.Errorf("persist: writing blob: %w", err)
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		return "", fmt.Errorf("persist: installing blob: %w", err)
	}
	return d, nil
}

// GetBlob returns the bytes stored under digest d.
func (s *Store) GetBlob(d string) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, blobDirName, d))
	if err != nil {
		return nil, fmt.Errorf("persist: reading blob %s: %w", d, err)
	}
	return b, nil
}

// Blobs lists the stored blob digests in sorted order.
func (s *Store) Blobs() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.dir, blobDirName))
	if err != nil {
		return nil, fmt.Errorf("persist: listing blobs: %w", err)
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) != ".tmp" {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// RemoveBlob deletes the blob stored under digest d (garbage collection
// after its last referencing job is evicted). Removing a missing blob
// is not an error.
func (s *Store) RemoveBlob(d string) error {
	err := os.Remove(filepath.Join(s.dir, blobDirName, d))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("persist: removing blob %s: %w", d, err)
	}
	return nil
}

// Close syncs and closes the journal.
func (s *Store) Close() error { return s.log.Close() }

// writeFileSynced writes b to path and fsyncs it before closing.
func writeFileSynced(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: opening dir for sync: %w", err)
	}
	err = f.Sync()
	f.Close()
	if err != nil {
		return fmt.Errorf("persist: syncing dir: %w", err)
	}
	return nil
}
