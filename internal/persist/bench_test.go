package persist

import (
	"fmt"
	"path/filepath"
	"testing"
)

// The persistence benchmarks gate the job store's hot path in CI
// (BENCH_mcf.json ci_budget): Append is on every job submit and
// completion, Replay on every daemon boot. Budgets keep persistence
// from silently growing into a per-request cost — an Append is one
// framed write with reused scratch, and replaying a daemon's worth of
// records stays well under boot-time noise.

// benchRecord is a representative job envelope (submit record with an
// inline request document).
var benchRecord = []byte(`{"kind":"submit","id":"j000042","seq":42,"type":"capacity-search",` +
	`"request":{"switches":125,"ports":8,"trials":3,"seed":97},"created":"2026-08-08T12:00:00.000000001Z"}`)

func BenchmarkJobStoreAppend(b *testing.B) {
	l, _, err := OpenLog(filepath.Join(b.TempDir(), "journal.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(benchRecord); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJobStoreReplay(b *testing.B) {
	// A log of 1024 envelopes — a full job store's worth (maxJobs) of
	// submit records, the worst realistic boot.
	path := filepath.Join(b.TempDir(), "journal.log")
	l, _, err := OpenLog(path)
	if err != nil {
		b.Fatal(err)
	}
	const records = 1024
	for i := 0; i < records; i++ {
		rec := []byte(fmt.Sprintf(`{"kind":"submit","id":"j%06d","seq":%d,"type":"evaluate",`+
			`"request":{"topology":{"design":{"switches":20,"ports":8,"networkDegree":5,"seed":1}},"seed":%d}}`, i+1, i+1, i))
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, _, err := ReplayLog(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != records {
			b.Fatalf("replayed %d records, want %d", len(recs), records)
		}
	}
}
