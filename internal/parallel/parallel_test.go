package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"

	"jellyfish/internal/rng"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatalf("Workers(3) = %d", Workers(3))
	}
	if Workers(0) != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", Workers(0), runtime.NumCPU())
	}
	if Workers(-1) != runtime.NumCPU() {
		t.Fatalf("Workers(-1) = %d, want NumCPU", Workers(-1))
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8, 64} {
		n := 100
		counts := make([]atomic.Int32, n)
		ForEach(w, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const w, n = 3, 200
	var inFlight, peak atomic.Int32
	ForEach(w, n, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > w {
		t.Fatalf("observed %d concurrent tasks, worker bound is %d", p, w)
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	fn := func(i int) int { return i * i }
	want := Map(1, 50, fn)
	for _, w := range []int{2, 7, 16} {
		got := Map(w, 50, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapSeededDeterministicAcrossWorkerCounts(t *testing.T) {
	draw := func(workers int) []float64 {
		root := rng.New(7)
		return MapSeeded(workers, root, "trial", 32, func(i int, src *rng.Source) float64 {
			return src.Float64()
		})
	}
	want := draw(1)
	for _, w := range []int{2, 8} {
		got := draw(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: stream %d drew %v, want %v", w, i, got[i], want[i])
			}
		}
	}
}

// The worker-scratch contract: fn(worker, i) may freely mutate
// scratch[worker] without synchronization because no two tasks with the
// same worker index ever overlap. The unsynchronized read-modify-write
// cycles below are exactly what the race detector flags if two goroutines
// ever share a worker index (CI runs this package under -race), and the
// final counts prove every index ran exactly once on an in-range worker.
func TestForEachWorkerScratchIsWorkerExclusive(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		const n = 500
		scratch := make([][]int, w)
		ForEachWorker(w, n, func(worker, i int) {
			if worker < 0 || worker >= w {
				t.Errorf("worker index %d outside [0,%d)", worker, w)
			}
			// Unsynchronized append: safe iff the worker owns the slot.
			scratch[worker] = append(scratch[worker], i)
		})
		covered := make([]int, n)
		total := 0
		for _, tasks := range scratch {
			for _, i := range tasks {
				covered[i]++
			}
			total += len(tasks)
		}
		if total != n {
			t.Fatalf("w=%d: %d tasks ran, want %d", w, total, n)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("w=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestMapWorkerDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(worker, i int) int { return i*i + 1 } // result ignores worker
	want := MapWorker(1, 64, fn)
	for _, w := range []int{2, 7, 16} {
		got := MapWorker(w, 64, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestForEachWorkerSerialRunsInlineAsWorkerZero(t *testing.T) {
	order := []int{}
	ForEachWorker(1, 5, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("serial worker index = %d, want 0", worker)
		}
		order = append(order, i) // inline execution: no race possible
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v, want ascending", order)
		}
	}
	if allocs := testing.AllocsPerRun(10, func() {
		ForEachWorker(1, 8, noopWorkerFn)
	}); allocs != 0 {
		t.Fatalf("serial ForEachWorker allocated %v times, want 0", allocs)
	}
}

func noopWorkerFn(worker, i int) {}

func TestSumFloat64MatchesSequentialOrder(t *testing.T) {
	fn := func(i int) float64 { return 1.0 / float64(i+1) }
	var seq float64
	for i := 0; i < 1000; i++ {
		seq += fn(i)
	}
	for _, w := range []int{1, 4, 16} {
		if got := SumFloat64(w, 1000, fn); got != seq {
			t.Fatalf("workers=%d: sum = %v, want bit-identical %v", w, got, seq)
		}
	}
}

func TestAll(t *testing.T) {
	for _, w := range []int{1, 4} {
		if All(w, 20, func(i int) bool { return i != 3 }) {
			t.Fatalf("workers=%d: All = true despite a failing index", w)
		}
		if !All(w, 20, func(int) bool { return true }) {
			t.Fatalf("workers=%d: All = false with no failing index", w)
		}
	}
	// An early failure skips un-started work (serial execution makes the
	// count deterministic: index 0 fails, 1..19 are skipped).
	var evaluated atomic.Int32
	All(1, 20, func(i int) bool {
		evaluated.Add(1)
		return false
	})
	if n := evaluated.Load(); n != 1 {
		t.Fatalf("serial All evaluated %d indices after a failure, want 1", n)
	}
}

func TestZeroTasks(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called with n=0") })
	if out := Map(4, 0, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("Map with n=0 returned %v", out)
	}
	if !All(4, 0, func(int) bool { return false }) {
		t.Fatal("All over empty range should be vacuously true")
	}
}
