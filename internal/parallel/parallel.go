// Package parallel provides the bounded worker pool that fans out the
// embarrassingly parallel pieces of the evaluation: independent experiment
// trials, per-source route-table construction, and batched shortest-path
// sweeps inside the flow solver.
//
// Determinism is the design constraint. Every helper returns results in
// index order, and per-task randomness is derived from a root seed by
// stable index (never by completion order), so a computation produces
// bit-identical output whether it runs on one worker or sixty-four.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"jellyfish/internal/rng"
)

// Workers resolves a worker-count knob: n > 0 is used as given; 0 (and any
// negative value) selects runtime.NumCPU().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ForEach runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines. Tasks are claimed dynamically, so uneven task costs balance
// across workers. With one worker (or one task) everything runs inline on
// the calling goroutine. fn must write only to per-index state.
func ForEach(workers, n int, fn func(i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachWorker is ForEach with a worker identity: fn(worker, i) runs with
// worker ∈ [0, W) where W = min(Workers(workers), n), and no two calls with
// the same worker index ever run concurrently. That makes `worker` a safe
// index into caller-owned scratch (one reusable buffer per worker instead
// of one allocation per task) — the pattern the flow solver's Dijkstra
// sweeps use to stay allocation-free across phases.
//
// Which worker claims which task is scheduling-dependent, so determinism
// has a contract: fn's observable result for index i must not depend on the
// worker index or on leftover scratch state. Callers that reuse scratch
// must reset it (cheaply — e.g. generation stamps) at the top of fn.
//
// With one worker (or one task) everything runs inline on the calling
// goroutine as worker 0, allocating nothing.
func ForEachWorker(workers, n int, fn func(worker, i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
}

// MapWorker is Map with a worker identity (see ForEachWorker): out[i] =
// fn(worker, i) in index order, where fn may reuse per-worker scratch as
// long as the result for each index is worker-independent.
func MapWorker[T any](workers, n int, fn func(worker, i int) T) []T {
	out := make([]T, n)
	ForEachWorker(workers, n, func(worker, i int) { out[i] = fn(worker, i) })
	return out
}

// Map computes fn(i) for every i in [0, n) concurrently and returns the
// results in index order: out[i] = fn(i) regardless of worker count or
// scheduling.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapSeeded is Map with a per-task random stream: task i receives
// root.SplitN(label, i), derived by stable index so the stream it sees does
// not depend on which worker runs it or when.
func MapSeeded[T any](workers int, root *rng.Source, label string, n int, fn func(i int, src *rng.Source) T) []T {
	return Map(workers, n, func(i int) T { return fn(i, root.SplitN(label, i)) })
}

// SumFloat64 computes fn(i) concurrently and sums the results in index
// order, preserving the floating-point accumulation order of the
// equivalent sequential loop.
func SumFloat64(workers, n int, fn func(i int) float64) float64 {
	vals := Map(workers, n, fn)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum
}

// All reports whether fn(i) holds for every i in [0, n). The answer is a
// pure AND over independent per-index results, so it is worker-count
// independent; a failure stops un-started indices early (tasks already
// running finish), which only skips work, never changes the answer —
// callers must derive any per-index randomness by index, not share a
// stream across indices.
func All(workers, n int, fn func(i int) bool) bool {
	var failed atomic.Bool
	ForEach(workers, n, func(i int) {
		if failed.Load() {
			return
		}
		if !fn(i) {
			failed.Store(true)
		}
	})
	return !failed.Load()
}
