// Package capsearch drives the capacity searches behind the paper's
// headline numbers (Fig. 2(c), MaxServersAtFullThroughput): binary
// searches for the largest server count a switch inventory supports at
// full throughput under random-permutation traffic.
//
// Adjacent probes of such a search are made to solve *nearly identical*
// MCF instances, end to end:
//
//   - topologies come from an incremental Family — one canonical network
//     grown a server at a time, so adjacent probes share almost every
//     cable and every server keeps the switch it was placed on;
//   - traffic is a nested uniform random cyclic permutation over those
//     stable server slots — adding a server inserts it after a uniform
//     random predecessor, perturbing exactly one existing commodity;
//   - the flow solver warm-starts each probe from the previous probe's
//     solution, one state chain per trial, advanced in probe order, and
//     performs a marginal-quality primal restart inside each solve.
//
// Determinism is preserved by construction: the instance probed at a
// given server count, and the warm state used for it, are pure functions
// of the search position (probe sequence × trial index), never of worker
// scheduling. See DESIGN.md §9.
package capsearch

import (
	"errors"
	"fmt"
	"math"

	"jellyfish/internal/estimate"
	"jellyfish/internal/faultinject"
	"jellyfish/internal/mcf"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
	"jellyfish/internal/traffic"
)

// TrafficSeedOffset decorrelates a capacity search's traffic streams from
// its topology streams (the historical constant, kept so results are
// comparable across versions). Callers that build a Config by hand — the
// public CapacitySearch entry point and the planning service — must derive
// Traffic as rng.New(seed + TrafficSeedOffset) to probe the same instances.
const TrafficSeedOffset = 0x5f5e100

// ErrInterrupted is returned by MaxServers when Config.Interrupt stopped
// the search before it converged (e.g. a cancelled service job).
var ErrInterrupted = errors.New("capsearch: search interrupted")

// A Family is a canonical incremental-topology family over server counts:
// At(servers) is the base topology grown one server at a time to the
// requested count, with the i-th server's randomness derived from the
// family source by the absolute index i. That makes At a pure function of
// its argument — probing 1080 before or after 900 yields bit-identical
// networks — while adjacent members differ by O(delta) links, which is
// what the solver's warm starts feed on.
//
// Ownership: a Family memoizes grown snapshots and is therefore NOT safe
// for concurrent use — confine each Family to one goroutine (the planning
// service pins one to its shard worker). Because At is pure by index,
// sharing a Family across sequential searches is bit-identical to
// rebuilding it per search, which is exactly what makes it a cacheable
// warm asset: reuse changes wall-clock, never results.
type Family struct {
	src    *rng.Source
	base   int
	assign []int // assign[j]: the switch hosting server slot j, by add order
	snaps  map[int]*topology.Topology
}

// NewFamily roots a family at base (the search's lower bracket). The base
// topology is retained and must not be mutated afterwards.
func NewFamily(base *topology.Topology, src *rng.Source) *Family {
	return &Family{
		src:    src,
		base:   base.NumServers(),
		assign: base.ServerSwitches(),
		snaps:  map[int]*topology.Topology{base.NumServers(): base},
	}
}

// At returns the family member with the given server count (≥ the base's).
// Members are cached at every requested count and shared: treat them as
// read-only. Panics if the inventory cannot host the requested servers —
// callers bound searches by the physical port capacity.
func (f *Family) At(servers int) *topology.Topology {
	if t, ok := f.snaps[servers]; ok {
		return t
	}
	if servers < f.base {
		panic(fmt.Sprintf("capsearch: %d servers below family base %d", servers, f.base))
	}
	// Grow a clone of the nearest materialized point below; per-step
	// randomness is indexed absolutely, so the result is independent of
	// which snapshot we start from.
	best := f.base
	//jellyvet:allow determinism -- max-reduction over keys; result independent of iteration order
	for s := range f.snaps {
		if s <= servers && s > best {
			best = s
		}
	}
	t := f.snaps[best].Clone()
	for i := best; i < servers; i++ {
		sw := topology.AddServerSpread(t, f.src.SplitN("srv", i))
		if sw < 0 {
			panic(fmt.Sprintf("capsearch: inventory full after %d of %d servers", i, servers))
		}
		if len(f.assign) == i {
			f.assign = append(f.assign, sw)
		}
	}
	f.snaps[servers] = t
	return t
}

// Assign returns the switch assignment of the first `servers` server
// slots (shared; read-only). Slots are stable: growing the family never
// moves an existing server, which is what keeps traffic endpoints — and
// so the solver's warm state — coherent across probes.
func (f *Family) Assign(servers int) []int {
	if len(f.assign) < servers {
		f.At(servers)
	}
	return f.assign[:servers]
}

// cycleCommodities builds the probe's traffic: a uniform random cyclic
// permutation over the server slots (traffic.CycleSuccessors — shared
// with the transport-level searches, which need the same nesting), so
// the permutation at s+1 servers extends the one at s with a single
// commodity rewired. Every server sends one unit toward its successor's
// switch — the paper's "each server sends at full rate to one other
// server" methodology; same-switch pairs are dropped by the solver like
// any permutation's. The stream is consumed strictly in slot order, so
// rebuilding per probe replays identical draws.
func cycleCommodities(assign []int, src *rng.Source) []mcf.Commodity {
	next := traffic.CycleSuccessors(len(assign), src)
	comms := make([]mcf.Commodity, 0, len(assign))
	for j := range assign {
		comms = append(comms, mcf.Commodity{Src: assign[j], Dst: assign[next[j]], Demand: 1})
	}
	return comms
}

// Config describes one capacity search.
type Config struct {
	// Lo and Hi bracket the search: Lo is the smallest candidate (the
	// search returns 0 if it is infeasible), Hi the largest (returned
	// directly if feasible).
	Lo, Hi int
	// Family provides the probed topologies and the stable server slots.
	Family *Family
	// Traffic is the root random source for traffic; trial i's cyclic
	// permutation is built from Traffic.SplitN("trial", i) at every
	// probe (pure in (servers, trial) by construction).
	Traffic *rng.Source
	// Trials is the number of independent permutations a probe must
	// support (all must pass). Trials run sequentially, gated on the
	// previous trial's result: an infeasible probe stops at its first
	// failing permutation, and — because trial results are deterministic
	// — the set of solves executed, and so every warm chain's contents,
	// is a pure function of the probe sequence.
	Trials int
	// Slack absorbs the solver's approximation tolerance (0.03 typical).
	Slack float64
	// Workers bounds the flow solver's CPU parallelism within each solve
	// (0 = all cores; the solver's fixed-batch sweeps keep results
	// bit-identical for every worker count). Trials themselves are
	// sequential — see Trials.
	Workers int
	// Cold disables warm-start threading: every solve starts from
	// scratch, on exactly the same instances and random streams — the
	// A/B lever for the warm-start benchmarks and equivalence tests.
	Cold bool
	// Solver overrides the per-trial solver options (zero value =
	// defaults; its Workers field is superseded by Config.Workers).
	Solver mcf.Options
	// Estimator, when non-nil, screens each trial with certified bounds
	// before the exact solve: a trial whose estimator Upper bound falls
	// below 1-Slack is rejected without solving — answer-preserving
	// because the exact solver's λ ≤ λ* ≤ Upper < 1-Slack, so it would
	// have rejected too. Acceptances are NEVER taken from the estimator
	// (the exact solver's approximate λ could fall below a bound-certified
	// 1-Slack, which would flip answers vs. exact-only search); the final
	// bracket is always confirmed by exact solves. Estimators are not
	// safe for concurrent use — give each search its own.
	Estimator estimate.ThroughputEstimator
	// Interrupt, when non-nil, is polled between trial solves AND once
	// per GK phase inside each solve (threaded into the trial solvers
	// as mcf.Options.Interrupt); returning true abandons the search
	// (MaxServers returns ErrInterrupted). This is the cancellation
	// hook for long-running service jobs: a fired interrupt costs at
	// most the GK phase in flight, and warm state stays coherent —
	// truncated solver states are rejected by the warm-start maturity
	// gate, and the search result is discarded outright.
	Interrupt func() bool
	// Probe, when non-nil, observes each completed feasibility probe in
	// execution order — the streaming-progress hook for service jobs.
	// The probe sequence is a deterministic function of the instance
	// (see MaxServers), so observers see identical (servers, feasible)
	// streams for identical searches. Probe must not mutate search
	// state; an interrupted probe is not observed.
	Probe func(servers int, feasible bool)
	// Obs, when non-nil, receives one-way instrumentation (probe/trial
	// spans and counts, with Obs.Solver threaded into every trial's
	// solver). It never influences the search; results are identical
	// with or without it. See capsearch.Obs.
	Obs *Obs
}

// MaxServers searches for the largest feasible server count in [Lo, Hi].
// Probe order is Lo, Hi, then prediction-guided bisection: a probe whose
// certificates bracket its own λ* tightly predicts where λ crosses
// 1-Slack (per-server capacity scales like links/servers along the
// family), and the next probe lands there instead of at the midpoint —
// near the boundary the prediction is accurate to a couple of servers,
// which removes most of the expensive near-boundary probes a plain
// bisection visits. Probes far from the boundary carry loose certificates
// and fall back to the midpoint, so the bracket always shrinks and the
// worst case stays a bisection. The probe sequence — and with it every
// warm chain — remains a deterministic function of the instance alone.
//
// The only possible error is ErrInterrupted (Config.Interrupt fired); a
// search without an Interrupt hook never fails.
func MaxServers(cfg Config) (int, error) {
	p := newProber(cfg)
	ok, err := p.feasible(cfg.Lo)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	if cfg.Hi <= cfg.Lo {
		return cfg.Lo, nil
	}
	loGuess := p.predict()
	if ok, err = p.feasible(cfg.Hi); err != nil {
		return 0, err
	}
	if ok {
		return cfg.Hi, nil
	}
	lo, hi := cfg.Lo, cfg.Hi
	guess := loGuess // Hi probes are usually capacity-degenerate; prefer Lo's estimate
	if g := p.predict(); g > 0 {
		guess = g
	}
	for lo < hi-1 {
		next := guess
		if next <= lo || next >= hi {
			next = (lo + hi) / 2
		}
		if ok, err = p.feasible(next); err != nil {
			return 0, err
		}
		if ok {
			lo = next
		} else {
			hi = next
		}
		guess = p.predict()
	}
	return lo, nil
}

// prober evaluates feasibility probes, holding one solver handle and one
// warm chain per trial, plus the certificates of the most recent probe
// for the boundary prediction.
type prober struct {
	cfg     Config
	solvers []*mcf.Solver
	states  []*mcf.State
	last    probeStats
}

// probeStats summarizes a probe for prediction: the binding (minimum)
// certificates over its executed trials, and the probed topology's size.
type probeStats struct {
	servers, links int
	lb, ub         float64
}

func newProber(cfg Config) *prober {
	opt := cfg.Solver
	opt.Workers = cfg.Workers
	opt.Obs = cfg.Obs.solverObs()
	// Bounded-latency cancellation: the same poll the probe loop uses
	// runs once per GK phase inside every trial solve, and inside the
	// sampled-MCF estimator's screening solves when one is attached.
	opt.Interrupt = cfg.Interrupt
	if est, ok := cfg.Estimator.(estimate.Interruptible); ok && cfg.Interrupt != nil {
		est.SetInterrupt(cfg.Interrupt)
	}
	p := &prober{
		cfg:     cfg,
		solvers: make([]*mcf.Solver, cfg.Trials),
		states:  make([]*mcf.State, cfg.Trials),
	}
	for i := range p.solvers {
		p.solvers[i] = mcf.NewSolver(opt)
	}
	return p
}

func (p *prober) feasible(servers int) (bool, error) {
	top := p.cfg.Family.At(servers)
	assign := p.cfg.Family.Assign(servers)
	obsT := p.cfg.Obs.probeBegin(servers)
	defer p.cfg.Obs.probeEnd(obsT)
	p.last = probeStats{servers: servers, links: top.NumLinks(), lb: math.Inf(1), ub: math.Inf(1)}
	for i := 0; i < p.cfg.Trials; i++ {
		if p.cfg.Interrupt != nil && p.cfg.Interrupt() {
			return false, ErrInterrupted
		}
		ok := p.trial(i, top, assign)
		// The interrupt also threads into the trial's solver (one poll
		// per GK phase). A truncated solve returns sound but premature
		// certificates — feasible traffic could read as infeasible — so
		// re-poll before trusting the verdict: a fired interrupt
		// discards the tainted trial instead of misreading it.
		if p.cfg.Interrupt != nil && p.cfg.Interrupt() {
			return false, ErrInterrupted
		}
		if !ok {
			p.observe(servers, false)
			return false, nil
		}
	}
	p.observe(servers, true)
	return true, nil
}

func (p *prober) observe(servers int, feasible bool) {
	if p.cfg.Probe != nil {
		p.cfg.Probe(servers, feasible)
	}
}

// predictGapMax bounds how loose a probe's certificates may be for its λ
// estimate to steer the search: beyond a 35% bracket the extrapolation is
// worse than bisecting.
const predictGapMax = 1.35

// predict estimates the server count at which the binding trial's λ
// crosses 1-Slack, extrapolated from the most recent probe's certificates.
// Along the family, per-server capacity scales like links(s)/s and each
// added server costs half a link, so with λ̂ the probe's midpoint estimate,
//
//	λ(s*) ≈ λ̂ · (L − (s*−s)/2)/L · s/s*  =  1 − Slack
//
// solves in closed form. Returns 0 when the certificates are too loose
// (far-from-boundary or degenerate probes), which falls back to bisection.
func (p *prober) predict() int {
	st := p.last
	if st.servers == 0 || st.lb <= 0 || math.IsInf(st.ub, 1) || st.ub > predictGapMax*st.lb {
		return 0
	}
	lam := (st.lb + st.ub) / 2
	t := 1 - p.cfg.Slack
	L := float64(st.links)
	s := float64(st.servers)
	den := t*L + lam*s/2
	if den <= 0 {
		return 0
	}
	return int(lam * s * (L + s/2) / den)
}

// trial advances trial i's chain through the probe at the given topology,
// reporting whether the permutation is supported at full rate.
func (p *prober) trial(i int, top *topology.Topology, assign []int) bool {
	if faultinject.Enabled() {
		// Chaos hook for the panic-containment suite: the trial boundary
		// is where a mid-probe kernel panic is injected (the panic shape;
		// error shapes are meaningless here and ignored).
		_ = faultinject.Fire("capsearch.trial")
	}
	p.cfg.Obs.trialBegin(i)
	defer p.cfg.Obs.trialEnd()
	comms := cycleCommodities(assign, p.cfg.Traffic.SplitN("trial", i))
	if p.cfg.Estimator != nil {
		b := p.cfg.Estimator.Estimate(top.Compact(), comms)
		if b.Upper < 1-p.cfg.Slack {
			// Certified rejection: feed the estimator's bracket to the
			// boundary predictor (the exact certificates it replaces) and
			// skip the solve. Trial i's warm chain simply doesn't advance
			// here; chains remain pure functions of the probe sequence.
			p.last.lb = math.Min(p.last.lb, b.Lower)
			p.last.ub = math.Min(p.last.ub, b.Upper)
			return false
		}
	}
	var warm *mcf.State
	if !p.cfg.Cold {
		warm = p.states[i]
	}
	ok, st := p.solvers[i].FeasibleAtFull(top.Graph, comms, p.cfg.Slack, warm)
	if debugProbe != nil {
		debugProbe(len(assign), i, ok, st)
	}
	p.states[i] = st
	if st != nil {
		p.last.lb = math.Min(p.last.lb, st.Lambda)
		p.last.ub = math.Min(p.last.ub, st.UpperBound)
	}
	return ok
}

// debugProbe, when set, observes every trial solve (diagnostics only).
var debugProbe func(servers, trial int, ok bool, st *mcf.State)
