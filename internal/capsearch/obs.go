package capsearch

import (
	"jellyfish/internal/mcf"
	"jellyfish/internal/telemetry"
)

// Obs is the capacity search's telemetry bundle: probe/trial counters
// and durations, flight-recorder spans, and the solver-level bundle to
// thread into each trial's mcf.Options. Like mcf.Obs it is strictly
// one-way (enforced by jellyvet's obsconfine analyzer) and fully
// nil-safe: a nil *Obs — the default — records nothing and changes no
// result.
//
// Rec (and Solver.Rec) must be confined to the goroutine running the
// search.
type Obs struct {
	Probes   *telemetry.Counter // feasibility probes completed
	Trials   *telemetry.Counter // trial evaluations (incl. estimator-screened)
	ProbeDur *telemetry.Histogram
	Rec      *telemetry.Recorder // spans: capsearch.probe > capsearch.trial > mcf.solve
	Solver   *mcf.Obs            // threaded into the per-trial solver options
}

func (o *Obs) solverObs() *mcf.Obs {
	if o == nil {
		return nil
	}
	return o.Solver
}

func (o *Obs) probeBegin(servers int) telemetry.Timer {
	if o == nil {
		return telemetry.Timer{}
	}
	o.Rec.Begin("capsearch.probe", int64(servers))
	return telemetry.StartTimer()
}

func (o *Obs) probeEnd(t telemetry.Timer) {
	if o == nil {
		return
	}
	o.Probes.Inc()
	o.ProbeDur.ObserveSince(t)
	o.Rec.End()
}

func (o *Obs) trialBegin(i int) {
	if o == nil {
		return
	}
	o.Rec.Begin("capsearch.trial", int64(i))
}

func (o *Obs) trialEnd() {
	if o == nil {
		return
	}
	o.Trials.Inc()
	o.Rec.End()
}
