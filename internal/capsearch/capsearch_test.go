package capsearch

import (
	"testing"

	"jellyfish/internal/estimate"
	"jellyfish/internal/mcf"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

func spreadEven(switches, ports, servers int, src *rng.Source) *topology.Topology {
	portsPer := make([]int, switches)
	serversPer := make([]int, switches)
	base, extra := servers/switches, servers%switches
	for i := range portsPer {
		portsPer[i] = ports
		serversPer[i] = base
		if i < extra {
			serversPer[i]++
		}
	}
	return topology.JellyfishHeterogeneous(portsPer, serversPer, src)
}

func testFamily(switches, ports int, seed uint64) *Family {
	base := spreadEven(switches, ports, switches, rng.New(seed))
	return NewFamily(base, rng.New(seed).Split("grow"))
}

// Family.At is a pure function of the server count: probing out of order
// must produce bit-identical topologies, and Assign prefixes must nest.
func TestFamilyPurity(t *testing.T) {
	f1 := testFamily(20, 8, 11)
	outOfOrder := f1.At(60)
	mid := f1.At(45)

	f2 := testFamily(20, 8, 11)
	direct := f2.At(45)
	de, me := direct.Graph.Edges(), mid.Graph.Edges()
	if len(de) != len(me) {
		t.Fatalf("edge counts differ: direct %d, after out-of-order %d", len(de), len(me))
	}
	for i := range de {
		if de[i] != me[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, de[i], me[i])
		}
	}
	if got, want := len(f1.Assign(60)), 60; got != want {
		t.Fatalf("Assign(60) has %d entries, want %d", got, want)
	}
	a60, a45 := f1.Assign(60), f2.Assign(45)
	for i := range a45 {
		if a60[i] != a45[i] {
			t.Fatalf("slot %d assignment differs across probe orders: %d vs %d", i, a60[i], a45[i])
		}
	}
	_ = outOfOrder
}

// The nested cyclic permutation: traffic at s+delta servers differs from
// traffic at s by O(delta) commodities — the property warm starts and
// cold solves both rely on for cross-probe instance continuity.
func TestCycleCommoditiesNested(t *testing.T) {
	f := testFamily(20, 8, 11)
	f.At(60)
	small := cycleCommodities(f.Assign(50), rng.New(5).SplitN("trial", 0))
	big := cycleCommodities(f.Assign(55), rng.New(5).SplitN("trial", 0))
	if len(small) != 50 || len(big) != 55 {
		t.Fatalf("commodity counts %d/%d, want 50/55", len(small), len(big))
	}
	changed := 0
	for j := range small {
		if small[j] != big[j] {
			changed++
		}
	}
	// Each of the 5 insertions rewires exactly one existing slot's
	// successor (destination switch may coincidentally stay equal).
	if changed > 5 {
		t.Fatalf("%d of the first 50 commodities changed across a 5-server delta, want ≤5", changed)
	}
}

// The search result must be identical for every worker count: the warm
// chains, probe sequence, and solver are all scheduling-independent.
func TestMaxServersWorkerInvariance(t *testing.T) {
	run := func(workers int) int {
		got, err := MaxServers(Config{
			Lo: 20, Hi: 20 * 7,
			Family:  testFamily(20, 8, 11),
			Traffic: rng.New(77),
			Trials:  2, Slack: 0.03, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	base := run(1)
	if base <= 0 {
		t.Fatalf("search returned %d on a healthy inventory", base)
	}
	for _, w := range []int{2, 4} {
		if got := run(w); got != base {
			t.Fatalf("workers=%d: result %d != serial result %d", w, got, base)
		}
	}
}

// Cold mode must probe exactly the same instances (same topologies, same
// traffic streams) as warm mode — the flag may only change solver
// seeding — and the two searches must agree within the solver's
// approximation tolerance.
func TestWarmVsColdSameInstancesAndAgreement(t *testing.T) {
	type probe struct {
		servers, trial int
	}
	record := func(cold bool) (int, map[probe]float64) {
		seen := map[probe]float64{}
		debugProbe = func(servers, trial int, ok bool, st *mcf.State) {
			seen[probe{servers, trial}] = st.Lambda
		}
		defer func() { debugProbe = nil }()
		res, err := MaxServers(Config{
			Lo: 20, Hi: 20 * 7,
			Family:  testFamily(20, 8, 11),
			Traffic: rng.New(77),
			Trials:  2, Slack: 0.03, Workers: 1, Cold: cold,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, seen
	}
	coldRes, coldSeen := record(true)
	warmRes, warmSeen := record(false)

	// Agreement: the searches may disagree only by the solver's
	// approximation at the boundary (a few percent of the answer).
	diff := coldRes - warmRes
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(coldRes)+2 {
		t.Fatalf("warm result %d and cold result %d disagree beyond the approximation guarantee", warmRes, coldRes)
	}
	// Instance identity: for every probe position both modes executed,
	// both solved the same instance — λ values may differ only within
	// the certificate tolerance, and never reflect different traffic
	// (a stream divergence would produce unrelated λ).
	common := 0
	for k, coldLam := range coldSeen {
		warmLam, ok := warmSeen[k]
		if !ok {
			continue
		}
		common++
		lo, hi := coldLam, warmLam
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo > 0 && (hi-lo)/hi > 0.12 {
			t.Fatalf("probe %+v: cold λ=%v vs warm λ=%v — instances diverged", k, coldLam, warmLam)
		}
	}
	if common == 0 {
		t.Fatal("no common probe positions between warm and cold searches")
	}
}

// Estimator screening is reject-only: a screened search must return the
// same answer as the exact-only search for every estimator kind, because
// a trial is skipped only when the estimator's certified upper bound
// already proves the exact solver would reject it.
func TestMaxServersEstimatorIdentity(t *testing.T) {
	run := func(est estimate.ThroughputEstimator) (int, int) {
		probes := 0
		debugProbe = func(servers, trial int, ok bool, st *mcf.State) { probes++ }
		defer func() { debugProbe = nil }()
		got, err := MaxServers(Config{
			Lo: 20, Hi: 20 * 7,
			Family:  testFamily(20, 8, 11),
			Traffic: rng.New(77),
			Trials:  2, Slack: 0.03, Workers: 1,
			Estimator: est,
		})
		if err != nil {
			t.Fatal(err)
		}
		return got, probes
	}
	base, baseProbes := run(nil)
	if base <= 0 {
		t.Fatalf("exact-only search returned %d on a healthy inventory", base)
	}
	for _, kind := range estimate.Kinds() {
		est, err := estimate.New(kind, 16, 77)
		if err != nil {
			t.Fatal(err)
		}
		got, probes := run(est)
		if got != base {
			t.Fatalf("estimator %q: result %d != exact-only result %d", kind, got, base)
		}
		// Screening can only remove exact solves, never add them.
		if probes > baseProbes {
			t.Fatalf("estimator %q: %d exact probes > unscreened %d", kind, probes, baseProbes)
		}
		t.Logf("%s: %d exact probes (unscreened %d)", kind, probes, baseProbes)
	}
}

// An infeasible lower bracket returns 0 — the search never reports an
// unverified lo (the PR 2 regression, preserved across the rewrite).
func TestMaxServersInfeasibleLo(t *testing.T) {
	// 2-port switches: the network is a perfect matching, permutation
	// traffic across pairs is unroutable.
	base := spreadEven(4, 2, 4, rng.New(1))
	got, err := MaxServers(Config{
		Lo: 4, Hi: 4,
		Family:  NewFamily(base, rng.New(1).Split("grow")),
		Traffic: rng.New(2),
		Trials:  2, Slack: 0.03, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("search reported %d servers on a disconnected matching, want 0", got)
	}
}

// An Interrupt hook that fires mid-search abandons it with ErrInterrupted
// — the cancellation path service jobs rely on. The hook fires after a
// few trials so both the "interrupt between trials" and the propagation
// through the bisection loop are exercised.
func TestMaxServersInterrupt(t *testing.T) {
	calls := 0
	_, err := MaxServers(Config{
		Lo: 20, Hi: 20 * 7,
		Family:  testFamily(20, 8, 11),
		Traffic: rng.New(77),
		Trials:  2, Slack: 0.03, Workers: 1,
		Interrupt: func() bool {
			calls++
			return calls > 3
		},
	})
	if err != ErrInterrupted {
		t.Fatalf("interrupted search returned err=%v, want ErrInterrupted", err)
	}
}
