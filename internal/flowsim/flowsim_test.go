package flowsim

import (
	"math"
	"testing"

	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
	"jellyfish/internal/routing"
	"jellyfish/internal/topology"
	"jellyfish/internal/traffic"
)

// lineTopology: two switches joined by one link, one server each.
func lineFlows() ([]traffic.Flow, *graph.Graph) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	flows := []traffic.Flow{
		{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 1},
	}
	return flows, g
}

func tableFor(g *graph.Graph, flows []traffic.Flow, kind string, k int) *routing.Table {
	var sd [][2]int
	for _, f := range flows {
		sd = append(sd, [2]int{f.SrcSwitch, f.DstSwitch})
	}
	pairs := routing.PairsForCommodities(sd)
	if kind == "ecmp" {
		return routing.ECMP(g, pairs, k, rng.New(99), 1)
	}
	return routing.KShortest(g, pairs, k, 1)
}

func TestSingleFlowFullRate(t *testing.T) {
	flows, g := lineFlows()
	table := tableFor(g, flows, "ecmp", 8)
	for _, proto := range []Protocol{TCP1, TCP8, MPTCP8} {
		res := Simulate(flows, table, proto, rng.New(1))
		if math.Abs(res.FlowRate[0]-1) > 1e-9 {
			t.Fatalf("%v: rate = %v, want 1", proto, res.FlowRate[0])
		}
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	flows := []traffic.Flow{
		{SrcServer: 0, DstServer: 2, SrcSwitch: 0, DstSwitch: 1},
		{SrcServer: 1, DstServer: 3, SrcSwitch: 0, DstSwitch: 1},
	}
	table := tableFor(g, flows, "ecmp", 8)
	res := Simulate(flows, table, TCP1, rng.New(1))
	for i, r := range res.FlowRate {
		if math.Abs(r-0.5) > 1e-9 {
			t.Fatalf("flow %d rate = %v, want 0.5", i, r)
		}
	}
}

func TestIntraSwitchFlowFullRate(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	flows := []traffic.Flow{
		{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 0},
	}
	table := tableFor(g, flows, "ecmp", 8)
	res := Simulate(flows, table, TCP1, rng.New(1))
	if res.FlowRate[0] != 1 {
		t.Fatalf("intra-switch rate = %v, want 1", res.FlowRate[0])
	}
}

func TestDisconnectedFlowZero(t *testing.T) {
	g := graph.New(2) // no link
	flows := []traffic.Flow{
		{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 1},
	}
	table := tableFor(g, flows, "ecmp", 8)
	res := Simulate(flows, table, MPTCP8, rng.New(1))
	if res.FlowRate[0] != 0 {
		t.Fatalf("disconnected rate = %v, want 0", res.FlowRate[0])
	}
}

func TestMPTCPUsesDisjointPaths(t *testing.T) {
	// Ring of 4: two disjoint 2-hop paths 0→2. One flow with MPTCP should
	// NOT exceed NIC rate 1 even though 2 units of path capacity exist.
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4)
	}
	flows := []traffic.Flow{
		{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 2},
	}
	table := tableFor(g, flows, "ksp", 8)
	res := Simulate(flows, table, MPTCP8, rng.New(1))
	if math.Abs(res.FlowRate[0]-1) > 1e-9 {
		t.Fatalf("MPTCP rate = %v, want 1 (NIC-capped)", res.FlowRate[0])
	}
}

func TestNICSharedBySubflows(t *testing.T) {
	// Two flows from the SAME source server must share its NIC: 0.5 each,
	// even over abundant network capacity.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	flows := []traffic.Flow{
		{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 1},
		{SrcServer: 0, DstServer: 2, SrcSwitch: 0, DstSwitch: 2},
	}
	table := tableFor(g, flows, "ecmp", 8)
	res := Simulate(flows, table, MPTCP8, rng.New(1))
	total := res.FlowRate[0] + res.FlowRate[1]
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("flows from one NIC total %v, want 1", total)
	}
}

// Table 1's mechanism: on a path-diverse topology, MPTCP-8 over k-shortest
// paths beats TCP-1 over ECMP.
func TestProtocolOrderingOnJellyfish(t *testing.T) {
	top := topology.Jellyfish(30, 8, 5, rng.New(3))
	pat := traffic.RandomPermutation(top.ServerSwitches(), rng.New(4))
	var sd [][2]int
	for _, f := range pat.Flows {
		sd = append(sd, [2]int{f.SrcSwitch, f.DstSwitch})
	}
	pairs := routing.PairsForCommodities(sd)
	ecmp := routing.ECMP(top.Graph, pairs, 8, rng.New(99), 1)
	ksp := routing.KShortest(top.Graph, pairs, 8, 1)

	tcp1 := Simulate(pat.Flows, ecmp, TCP1, rng.New(5)).Mean()
	mptcpKSP := Simulate(pat.Flows, ksp, MPTCP8, rng.New(5)).Mean()
	if mptcpKSP <= tcp1 {
		t.Fatalf("MPTCP/8SP mean %v not above TCP1/ECMP %v", mptcpKSP, tcp1)
	}
	// And everything must respect the NIC.
	for _, r := range Simulate(pat.Flows, ksp, MPTCP8, rng.New(5)).FlowRate {
		if r < 0 || r > 1+1e-9 {
			t.Fatalf("rate %v out of [0,1]", r)
		}
	}
}

// Max-min property: no subflow can be starved while a sibling on strictly
// less-contended resources thrives — verified via aggregate conservation:
// total allocated rate cannot exceed total resource capacity on any cut;
// spot-check: sum of flow rates across a single shared link ≤ 1.
func TestLinkCapacityRespected(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	var flows []traffic.Flow
	for i := 0; i < 5; i++ {
		flows = append(flows, traffic.Flow{
			SrcServer: i, DstServer: 5 + i, SrcSwitch: 0, DstSwitch: 1,
		})
	}
	table := tableFor(g, flows, "ecmp", 8)
	for _, proto := range []Protocol{TCP1, TCP8, MPTCP8} {
		res := Simulate(flows, table, proto, rng.New(7))
		var total float64
		for _, r := range res.FlowRate {
			total += r
		}
		if total > 1+1e-6 {
			t.Fatalf("%v: total rate %v exceeds link capacity 1", proto, total)
		}
		if total < 1-1e-6 {
			t.Fatalf("%v: link underutilized: %v", proto, total)
		}
	}
}

func TestMeanEmpty(t *testing.T) {
	if (Result{}).Mean() != 0 {
		t.Fatal("empty mean != 0")
	}
}

func TestProtocolStrings(t *testing.T) {
	if TCP1.String() != "TCP 1 flow" || TCP8.String() != "TCP 8 flows" || MPTCP8.String() != "MPTCP 8 subflows" {
		t.Fatal("protocol names wrong")
	}
	if TCP1.Subflows() != 1 || TCP8.Subflows() != 8 || MPTCP8.Subflows() != 8 {
		t.Fatal("subflow counts wrong")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	top := topology.Jellyfish(20, 6, 3, rng.New(11))
	pat := traffic.RandomPermutation(top.ServerSwitches(), rng.New(12))
	var sd [][2]int
	for _, f := range pat.Flows {
		sd = append(sd, [2]int{f.SrcSwitch, f.DstSwitch})
	}
	table := routing.ECMP(top.Graph, routing.PairsForCommodities(sd), 8, rng.New(99), 1)
	a := Simulate(pat.Flows, table, TCP8, rng.New(13))
	b := Simulate(pat.Flows, table, TCP8, rng.New(13))
	for i := range a.FlowRate {
		if a.FlowRate[i] != b.FlowRate[i] {
			t.Fatal("same seed produced different rates")
		}
	}
}

// Coupled MPTCP must SPILL to a second path when the first saturates: two
// parallel 2-hop paths between switch 0 and 3, two flows from different
// servers — together they need both paths to reach aggregate 2.
func TestCoupledSpillsAcrossPaths(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	flows := []traffic.Flow{
		{SrcServer: 0, DstServer: 2, SrcSwitch: 0, DstSwitch: 3},
		{SrcServer: 1, DstServer: 3, SrcSwitch: 0, DstSwitch: 3},
	}
	table := tableFor(g, flows, "ksp", 8)
	res := Simulate(flows, table, MPTCP8, rng.New(31))
	total := res.FlowRate[0] + res.FlowRate[1]
	if math.Abs(total-2) > 1e-9 {
		t.Fatalf("two flows over two disjoint paths total %v, want 2", total)
	}
	// And fairly: 1 each.
	if math.Abs(res.FlowRate[0]-1) > 1e-9 {
		t.Fatalf("unfair spill: %v", res.FlowRate)
	}
}

// A long congested alternate path must NOT drag a coupled flow below what
// its clean shortest path provides (the regression the coupled model
// fixes vs naive subflow max-min).
func TestCoupledIgnoresUselessLongPath(t *testing.T) {
	// Path A: 0-1 direct. Path B: 0-2-3-1, with 2-3 shared by a hostile
	// permanent flow.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	flows := []traffic.Flow{
		{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 1},
		{SrcServer: 2, DstServer: 3, SrcSwitch: 2, DstSwitch: 3}, // hostile on 2-3
	}
	table := tableFor(g, flows, "ksp", 8)
	res := Simulate(flows, table, MPTCP8, rng.New(33))
	if res.FlowRate[0] < 1-1e-9 {
		t.Fatalf("coupled flow got %v, want full rate via its clean direct path", res.FlowRate[0])
	}
}
