package flowsim

import (
	"testing"

	"jellyfish/internal/parallel"
	"jellyfish/internal/rng"
	"jellyfish/internal/routing"
	"jellyfish/internal/topology"
	"jellyfish/internal/traffic"
)

// instance bundles one simulation input for the reuse tests.
type instance struct {
	flows []traffic.Flow
	table *routing.Table
}

func jellyfishInstance(switches, ports, deg int, seed uint64, ksp bool) instance {
	top := topology.Jellyfish(switches, ports, deg, rng.New(seed))
	pat := traffic.RandomPermutation(top.ServerSwitches(), rng.New(seed+1))
	var sd [][2]int
	for _, f := range pat.Flows {
		sd = append(sd, [2]int{f.SrcSwitch, f.DstSwitch})
	}
	pairs := routing.PairsForCommodities(sd)
	var table *routing.Table
	if ksp {
		table = routing.KShortest(top.Graph, pairs, 8, 1)
	} else {
		table = routing.ECMP(top.Graph, pairs, 8, rng.New(seed+2), 1)
	}
	return instance{flows: pat.Flows, table: table}
}

// One Sim driven across a sequence of different instances — different
// topologies, route tables, protocols — must reproduce the one-shot
// results bit for bit: resource identity is positional (server id,
// directed switch pair), never call-history-dependent.
func TestSimReuseMatchesOneShot(t *testing.T) {
	instances := []instance{
		jellyfishInstance(20, 6, 3, 100, false),
		jellyfishInstance(30, 10, 7, 200, true),
		jellyfishInstance(20, 6, 3, 100, false), // repeat of the first
		jellyfishInstance(25, 8, 5, 300, true),
	}
	sim := NewSim(4, 4) // deliberately undersized: growth must be safe
	for round := 0; round < 2; round++ {
		for ii, in := range instances {
			for _, proto := range []Protocol{TCP1, TCP8, MPTCP8} {
				want := Simulate(in.flows, in.table, proto, rng.New(9))
				got := sim.Simulate(in.flows, in.table, proto, rng.New(9))
				if len(got.FlowRate) != len(want.FlowRate) {
					t.Fatalf("round %d instance %d %v: %d rates, want %d", round, ii, proto, len(got.FlowRate), len(want.FlowRate))
				}
				for i := range want.FlowRate {
					if got.FlowRate[i] != want.FlowRate[i] {
						t.Fatalf("round %d instance %d %v flow %d: reuse %v != one-shot %v",
							round, ii, proto, i, got.FlowRate[i], want.FlowRate[i])
					}
				}
			}
		}
	}
}

// The steady-state zero-allocation pin, the analogue of the MCF kernel's
// TestPhaseLoopZeroAllocs: after one warm-up call per protocol, repeated
// Simulate calls on a compiled instance allocate nothing.
func TestTransportZeroAllocs(t *testing.T) {
	in := jellyfishInstance(30, 10, 7, 42, true)
	sim := NewSim(30, len(in.flows))
	for _, proto := range []Protocol{TCP1, TCP8, MPTCP8} {
		src := rng.New(5)
		sim.Simulate(in.flows, in.table, proto, src) // warm up growth
		allocs := testing.AllocsPerRun(20, func() {
			sim.Simulate(in.flows, in.table, proto, src)
		})
		if allocs != 0 {
			t.Fatalf("%v: %v allocs per steady-state Simulate, want 0", proto, allocs)
		}
	}
}

// The random-stream contract (package comment): MPTCP8 consumes no
// randomness — its result is a pure function of (flows, table) — while
// the hashed-subflow protocols do consume src. Callers split dead "sim"
// streams for MPTCP8; this pin guarantees those splits stay dead, so no
// future change can silently shift every derived stream.
func TestMPTCPIgnoresSource(t *testing.T) {
	in := jellyfishInstance(30, 10, 7, 7, true)
	a := Simulate(in.flows, in.table, MPTCP8, rng.New(1))
	b := Simulate(in.flows, in.table, MPTCP8, rng.New(999))
	c := Simulate(in.flows, in.table, MPTCP8, nil)
	for i := range a.FlowRate {
		if a.FlowRate[i] != b.FlowRate[i] || a.FlowRate[i] != c.FlowRate[i] {
			t.Fatalf("flow %d: MPTCP8 rate depends on src (%v / %v / %v)", i, a.FlowRate[i], b.FlowRate[i], c.FlowRate[i])
		}
	}
	// And the contract is meaningful: TCP8 does consume the stream.
	x := Simulate(in.flows, in.table, TCP8, rng.New(1))
	y := Simulate(in.flows, in.table, TCP8, rng.New(999))
	same := true
	for i := range x.FlowRate {
		if x.FlowRate[i] != y.FlowRate[i] {
			same = false
		}
	}
	if same {
		t.Fatal("TCP8 results identical under different seeds — hashing stopped consuming src?")
	}
}

// Regression for the filling loop's escape hatches: if a round ends
// without saturating any resource (or with no fillable resource at all)
// while subflows are still live, the exit must freeze them at a rate
// their resources can actually carry — deterministically — instead of
// crediting the full fill level across an oversubscribed shared NIC.
// The loop state is crafted directly (the hatches are unreachable from
// well-formed instances by construction).
func TestEscapeClampFreezesDeterministically(t *testing.T) {
	// Two subflows sharing one source NIC (resource 0), each with its own
	// link: the shared-NIC shape from the contract.
	s := NewSim(4, 4)
	s.beginCall(2)
	f := traffic.Flow{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 1}
	g := traffic.Flow{SrcServer: 0, DstServer: 2, SrcSwitch: 0, DstSwitch: 2}
	s.subFlow = append(s.subFlow[:0], 0, 1)
	s.subResStart = append(s.subResStart[:0], 0)
	s.subResIDs = s.appendPathResources(s.subResIDs[:0], &f, []int{0, 1})
	s.subResStart = append(s.subResStart, int32(len(s.subResIDs)))
	s.subResIDs = s.appendPathResources(s.subResIDs, &g, []int{0, 2})
	s.subResStart = append(s.subResStart, int32(len(s.subResIDs)))
	s.frozen = append(s.frozen[:0], false, false)
	s.subLevel = append(s.subLevel[:0], 0, 0)
	s.resetKernel()

	// Simulate a loop that exited the hatch after crediting level 0.8 to
	// both subflows with the shared NIC already oversubscribed to 1.6.
	nic := s.dense[s.arena.SrcNIC(0)]
	s.used[nic] = 1.6
	s.clampUnfrozenSubflows(0.8, 2)

	for si := 0; si < 2; si++ {
		if !s.frozen[si] {
			t.Fatalf("subflow %d left unfrozen by the escape path", si)
		}
		if got, want := s.subLevel[si], 0.8/1.6; got != want {
			t.Fatalf("subflow %d frozen at %v, want %v (level scaled by NIC overuse)", si, got, want)
		}
	}
	// A clean exit (remaining == 0) must not touch anything.
	s.subLevel[0], s.subLevel[1] = 0.3, 0.4
	s.clampUnfrozenSubflows(9, 0)
	if s.subLevel[0] != 0.3 || s.subLevel[1] != 0.4 {
		t.Fatal("clamp modified state on a clean exit")
	}
}

// Concurrent reuse across parallel workers: each worker slot owns one Sim
// (parallel.ForEachWorker's scratch-exclusivity contract) while all share
// one route table and flow slice. Under -race this pins that the kernel
// touches nothing but its own instance; in any mode it pins that results
// are independent of which worker computed which trial.
func TestConcurrentSimReuseAcrossWorkers(t *testing.T) {
	in := jellyfishInstance(25, 8, 5, 60, true)
	const trials = 24
	want := make([]float64, trials)
	oneSim := NewSim(25, len(in.flows))
	for i := 0; i < trials; i++ {
		want[i] = oneSim.Simulate(in.flows, in.table, TCP8, rng.New(uint64(i))).Mean()
	}
	for _, workers := range []int{2, 4, 8} {
		sims := make([]*Sim, workers)
		for i := range sims {
			sims[i] = NewSim(25, len(in.flows))
		}
		got := parallel.MapWorker(workers, trials, func(worker, i int) float64 {
			return sims[worker].Simulate(in.flows, in.table, TCP8, rng.New(uint64(i))).Mean()
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d trial %d: %v != serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

// A reused Sim must hand back rate buffers that are stable until the next
// call — and only until then (the documented aliasing contract).
func TestSimResultAliasing(t *testing.T) {
	in := jellyfishInstance(20, 6, 3, 50, true)
	sim := NewSim(20, len(in.flows))
	first := sim.Simulate(in.flows, in.table, MPTCP8, nil)
	snapshot := append([]float64(nil), first.FlowRate...)
	second := sim.Simulate(in.flows, in.table, MPTCP8, nil)
	for i := range snapshot {
		if second.FlowRate[i] != snapshot[i] {
			t.Fatalf("identical inputs produced different rates on reuse (flow %d)", i)
		}
	}
	if &first.FlowRate[0] != &second.FlowRate[0] {
		t.Fatal("expected the documented buffer reuse; Sim allocated a fresh rate slice")
	}
}
