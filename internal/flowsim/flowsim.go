// Package flowsim is the flow-level transport simulator standing in for the
// MPTCP packet simulator used in §5 of the paper (DESIGN.md §8 documents the
// substitution). Long-lived TCP and MPTCP flows converge to approximately
// max-min fair rates on their paths; flowsim computes that fixed point
// directly by progressive filling over three resource classes:
//
//   - every directed switch-switch link (capacity 1 NIC-rate per direction),
//   - every source server NIC (capacity 1, shared by a flow's subflows),
//   - every destination server NIC (capacity 1).
//
// Protocol models:
//
//   - TCP1: one subflow per flow; the path is chosen by hashing the flow
//     onto its route set (random pick), as an ECMP switch would. Max-min
//     fairness at connection granularity.
//   - TCP8: eight parallel connections per server pair, each independently
//     hashed onto the route set — collisions waste path diversity exactly
//     as they do in the packet simulator. Max-min at connection
//     granularity (8 connections = 8 entities).
//   - MPTCP8: coupled multipath — the flow is one entity that grows on the
//     shortest of its routes that still has residual capacity, spills onto
//     alternates as links saturate, and stops only when every route is
//     blocked. This captures what coupled congestion control achieves in
//     equilibrium: traffic concentrates where capacity is, and congested
//     long paths carry (almost) nothing, so extra k-shortest paths help
//     and never hurt.
package flowsim

import (
	"fmt"

	"jellyfish/internal/rng"
	"jellyfish/internal/routing"
	"jellyfish/internal/traffic"
)

// Protocol selects the transport model.
type Protocol int

const (
	// TCP1 is a single TCP connection per server pair.
	TCP1 Protocol = iota
	// TCP8 is eight independent TCP connections per server pair.
	TCP8
	// MPTCP8 is multipath TCP with eight coupled subflows.
	MPTCP8
)

// String names the protocol like the paper's Table 1 rows.
func (p Protocol) String() string {
	switch p {
	case TCP1:
		return "TCP 1 flow"
	case TCP8:
		return "TCP 8 flows"
	case MPTCP8:
		return "MPTCP 8 subflows"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Subflows returns the number of subflows the protocol opens per flow.
func (p Protocol) Subflows() int {
	if p == TCP1 {
		return 1
	}
	return 8
}

// Result reports per-flow throughputs (in server NIC units, ∈ [0,1]).
type Result struct {
	FlowRate []float64 // indexed like the input flow slice
}

// Mean returns the average per-flow (= per-server, under permutation
// traffic) throughput.
func (r Result) Mean() float64 {
	if len(r.FlowRate) == 0 {
		return 0
	}
	var sum float64
	for _, x := range r.FlowRate {
		sum += x
	}
	return sum / float64(len(r.FlowRate))
}

const satEps = 1e-12

// resources is a registry of capacity-1 entities: directed links keyed by
// (u,v) switch pairs and per-server NICs keyed with negative markers.
type resources struct {
	id       map[[2]int]int
	capacity []float64
}

func newResources() *resources { return &resources{id: map[[2]int]int{}} }

func (r *resources) get(key [2]int) int {
	if id, ok := r.id[key]; ok {
		return id
	}
	id := len(r.capacity)
	r.id[key] = id
	r.capacity = append(r.capacity, 1)
	return id
}

func (r *resources) srcNIC(server int) int { return r.get([2]int{-1, server}) }
func (r *resources) dstNIC(server int) int { return r.get([2]int{-2, server}) }

func (r *resources) pathResources(f traffic.Flow, p []int) []int {
	res := []int{r.srcNIC(f.SrcServer), r.dstNIC(f.DstServer)}
	for i := 0; i+1 < len(p); i++ {
		res = append(res, r.get([2]int{p[i], p[i+1]}))
	}
	return res
}

// Simulate computes per-flow throughputs for the given flows over the route
// table. Flows whose endpoints share a switch run at full NIC rate; flows
// with no route (disconnected) get rate 0.
func Simulate(flows []traffic.Flow, table *routing.Table, proto Protocol, src *rng.Source) Result {
	if proto == MPTCP8 {
		return simulateCoupled(flows, table)
	}
	return simulateSubflows(flows, table, proto, src)
}

// simulateSubflows models uncoupled TCP: each connection is pinned to one
// hashed route and max-min filling runs at connection granularity.
func simulateSubflows(flows []traffic.Flow, table *routing.Table, proto Protocol, src *rng.Source) Result {
	reg := newResources()
	type subflow struct {
		flow      int
		resources []int
	}
	var subflows []subflow
	rates := make([]float64, len(flows))
	local := make([]bool, len(flows))

	for fi, f := range flows {
		if f.SrcSwitch == f.DstSwitch {
			local[fi] = true
			rates[fi] = 1
			continue
		}
		paths := table.PathsFor(f.SrcSwitch, f.DstSwitch)
		if len(paths) == 0 {
			continue
		}
		for s := 0; s < proto.Subflows(); s++ {
			p := paths[src.Intn(len(paths))] // ECMP-style hash per connection
			subflows = append(subflows, subflow{flow: fi, resources: reg.pathResources(f, p)})
		}
	}

	used := make([]float64, len(reg.capacity))
	count := make([]int, len(reg.capacity))
	frozen := make([]bool, len(subflows))
	subRate := make([]float64, len(subflows))
	for _, sf := range subflows {
		for _, r := range sf.resources {
			count[r]++
		}
	}
	remaining := len(subflows)
	for remaining > 0 {
		minInc := -1.0
		for r := range reg.capacity {
			if count[r] == 0 {
				continue
			}
			inc := (reg.capacity[r] - used[r]) / float64(count[r])
			if minInc < 0 || inc < minInc {
				minInc = inc
			}
		}
		if minInc < 0 {
			break
		}
		for si := range subflows {
			if !frozen[si] {
				subRate[si] += minInc
			}
		}
		for r := range reg.capacity {
			used[r] += minInc * float64(count[r])
		}
		progress := false
		for si, sf := range subflows {
			if frozen[si] {
				continue
			}
			for _, r := range sf.resources {
				if reg.capacity[r]-used[r] <= satEps {
					frozen[si] = true
					remaining--
					progress = true
					for _, rr := range sf.resources {
						count[rr]--
					}
					break
				}
			}
		}
		if !progress {
			break
		}
	}

	for si, sf := range subflows {
		rates[sf.flow] += subRate[si]
	}
	clampRates(rates, local)
	return Result{FlowRate: rates}
}

// simulateCoupled models MPTCP's coupled congestion control as flow-level
// max-min: every unfrozen flow grows at the common fair rate on its
// currently active route (the first route in shortest-first order whose
// links all have residual capacity); when that route saturates, the flow's
// accumulated rate stays in place and growth moves to the next open route;
// the flow freezes when no route is open.
func simulateCoupled(flows []traffic.Flow, table *routing.Table) Result {
	reg := newResources()
	rates := make([]float64, len(flows))
	local := make([]bool, len(flows))
	flowPaths := make([][][]int, len(flows)) // per flow: candidate resource lists
	active := make([]int, len(flows))        // index into flowPaths, -1 = frozen

	for fi, f := range flows {
		active[fi] = -1
		if f.SrcSwitch == f.DstSwitch {
			local[fi] = true
			rates[fi] = 1
			continue
		}
		paths := table.PathsFor(f.SrcSwitch, f.DstSwitch)
		for _, p := range paths {
			flowPaths[fi] = append(flowPaths[fi], reg.pathResources(f, p))
		}
		if len(flowPaths[fi]) > 0 {
			active[fi] = 0
		}
	}

	used := make([]float64, len(reg.capacity))
	open := func(res []int) bool {
		for _, r := range res {
			if reg.capacity[r]-used[r] <= satEps {
				return false
			}
		}
		return true
	}
	// nextOpen advances a flow to its first open route (or -1).
	nextOpen := func(fi int) int {
		for pi, res := range flowPaths[fi] {
			if open(res) {
				return pi
			}
		}
		return -1
	}

	count := make([]float64, len(reg.capacity))
	for rounds := 0; ; rounds++ {
		if rounds > 4*len(reg.capacity)+len(flows)+16 {
			break // numerical safety net; never reached in practice
		}
		// Recompute active routes and per-resource counts.
		for i := range count {
			count[i] = 0
		}
		liveFlows := 0
		for fi := range flows {
			if active[fi] < 0 || local[fi] {
				continue
			}
			if !open(flowPaths[fi][active[fi]]) {
				active[fi] = nextOpen(fi)
				if active[fi] < 0 {
					continue
				}
			}
			liveFlows++
			for _, r := range flowPaths[fi][active[fi]] {
				count[r]++
			}
		}
		if liveFlows == 0 {
			break
		}
		minInc := -1.0
		for r := range reg.capacity {
			if count[r] == 0 {
				continue
			}
			inc := (reg.capacity[r] - used[r]) / count[r]
			if minInc < 0 || inc < minInc {
				minInc = inc
			}
		}
		if minInc <= 0 {
			break
		}
		for fi := range flows {
			if active[fi] >= 0 && !local[fi] {
				rates[fi] += minInc
			}
		}
		for r := range reg.capacity {
			used[r] += minInc * count[r]
		}
	}

	clampRates(rates, local)
	return Result{FlowRate: rates}
}

func clampRates(rates []float64, local []bool) {
	for fi := range rates {
		if !local[fi] && rates[fi] > 1 {
			rates[fi] = 1
		}
	}
}
