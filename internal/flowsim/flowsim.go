// Package flowsim is the flow-level transport simulator standing in for the
// MPTCP packet simulator used in §5 of the paper (DESIGN.md §8 documents the
// substitution). Long-lived TCP and MPTCP flows converge to approximately
// max-min fair rates on their paths; flowsim computes that fixed point
// directly by progressive filling over three resource classes:
//
//   - every directed switch-switch link (capacity 1 NIC-rate per direction),
//   - every source server NIC (capacity 1, shared by a flow's subflows),
//   - every destination server NIC (capacity 1).
//
// Protocol models:
//
//   - TCP1: one subflow per flow; the path is chosen by hashing the flow
//     onto its route set (random pick), as an ECMP switch would. Max-min
//     fairness at connection granularity.
//   - TCP8: eight parallel connections per server pair, each independently
//     hashed onto the route set — collisions waste path diversity exactly
//     as they do in the packet simulator. Max-min at connection
//     granularity (8 connections = 8 entities).
//   - MPTCP8: coupled multipath — the flow is one entity that grows on the
//     shortest of its routes that still has residual capacity, spills onto
//     alternates as links saturate, and stops only when every route is
//     blocked. This captures what coupled congestion control achieves in
//     equilibrium: traffic concentrates where capacity is, and congested
//     long paths carry (almost) nothing, so extra k-shortest paths help
//     and never hurt.
//
// The hot entry point is the compiled instance: build one Sim, call
// Simulate on it repeatedly; every internal array is reused across calls
// (the arena id mapping is invalidated by generation stamp, never
// cleared) and the steady-state call allocates nothing
// (TestTransportZeroAllocs pins 0 allocs/op). The package-level Simulate
// is the one-shot convenience form.
//
// Random-stream contract: src is consumed ONLY for subflow path hashing,
// i.e. by TCP1 and TCP8. MPTCP8 is a pure function of (flows, table) — its
// path set is the route table itself, in table order — and must stay that
// way: callers pin results under split streams, so introducing randomness
// into the coupled model would silently shift every derived stream.
// MPTCP8 callers may pass src = nil (TestMPTCPIgnoresSource pins this).
package flowsim

import (
	"fmt"

	"jellyfish/internal/resarena"
	"jellyfish/internal/rng"
	"jellyfish/internal/routing"
	"jellyfish/internal/traffic"
)

// Protocol selects the transport model.
type Protocol int

const (
	// TCP1 is a single TCP connection per server pair.
	TCP1 Protocol = iota
	// TCP8 is eight independent TCP connections per server pair.
	TCP8
	// MPTCP8 is multipath TCP with eight coupled subflows.
	MPTCP8
)

// String names the protocol like the paper's Table 1 rows.
func (p Protocol) String() string {
	switch p {
	case TCP1:
		return "TCP 1 flow"
	case TCP8:
		return "TCP 8 flows"
	case MPTCP8:
		return "MPTCP 8 subflows"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Subflows returns the number of subflows the protocol opens per flow.
func (p Protocol) Subflows() int {
	if p == TCP1 {
		return 1
	}
	return 8
}

// SimSource owns the random-stream contract at call sites: it derives the
// "sim" split that seeds subflow path hashing for the protocols that
// consume it, and returns nil for MPTCP8, which consumes no randomness —
// so no caller ever splits a dead stream that future changes could
// silently begin consuming. Pass the result straight to Simulate.
func SimSource(src *rng.Source, proto Protocol) *rng.Source {
	if proto == MPTCP8 {
		return nil
	}
	return src.Split("sim")
}

// Result reports per-flow throughputs (in server NIC units, ∈ [0,1]).
type Result struct {
	FlowRate []float64 // indexed like the input flow slice
}

// Mean returns the average per-flow (= per-server, under permutation
// traffic) throughput.
func (r Result) Mean() float64 {
	if len(r.FlowRate) == 0 {
		return 0
	}
	var sum float64
	for _, x := range r.FlowRate {
		sum += x
	}
	return sum / float64(len(r.FlowRate))
}

const satEps = 1e-12

// A Sim is a compiled, reusable simulator instance. It owns a resource
// arena (stable integer ids for NICs and directed links) and every piece
// of kernel scratch; repeated Simulate calls reuse all of it. Each call
// remaps the resources it actually touches onto dense call-local ids —
// stale mappings are invalidated by generation stamp, never cleared — so
// the filling kernels run over contiguous arrays and, after one warm-up
// call on a given instance shape, Simulate performs zero steady-state
// allocations.
//
// A Sim is NOT safe for concurrent use — give each worker goroutine its
// own (the experiment harness threads one per parallel worker slot). A
// single Sim may be reused across different topologies and route tables,
// including rewired members of an incremental topology family: resource
// identity is keyed by (server id, directed switch pair), never by call
// history, and results are bit-identical to a fresh instance
// (TestSimReuseMatchesOneShot pins this).
type Sim struct {
	arena resarena.Arena

	// Arena id → dense call-local id, valid where gen == curGen.
	gen    []uint32
	dense  []int32
	curGen uint32
	nres   int // dense resources of the current call

	// Per-resource kernel state, indexed by dense id in [0, nres).
	used   []float64
	count  []int32   // uncoupled filling: unfrozen subflows on resource
	fcount []float64 // coupled filling: active flows on resource
	act    []int32   // uncoupled: dense ids with count > 0, compacted

	// Uncoupled (TCP1/TCP8) compile output: subflow → resource CSR.
	subFlow     []int32
	subResStart []int32
	subResIDs   []int32
	frozen      []bool
	subLevel    []float64 // fill level at which the subflow froze

	// Resource → subflow CSR, indexed by dense id.
	resSubStart []int32
	resSubFill  []int32
	resSubIDs   []int32

	// Coupled (MPTCP8) compile output: flow → paths → resources CSR.
	flowPathStart []int32
	pathResStart  []int32
	pathResIDs    []int32
	active        []int32
	flowLevel     []float64

	rates []float64
	local []bool

	// interrupt, when set, is polled once per filling round; a firing
	// poll stops the simulation early with partial rates. Callers that
	// interrupt must discard the Result (the service checks ctx.Err()
	// after every kernel call). Nil — or never firing — leaves results
	// byte-identical; the poll itself allocates nothing.
	interrupt func() bool
}

// SetInterrupt installs (nil clears) the cooperative cancellation poll
// (see the interrupt field). Confinement note: a Sim cached as warm
// state is owned by one shard worker, which sets the poll before a job
// and clears it after — never concurrently with Simulate.
func (s *Sim) SetInterrupt(f func() bool) { s.interrupt = f }

// NewSim returns a Sim pre-sized for the given switch and server counts.
// Both are lower bounds — the arena grows on demand — so a Sim built for
// one topology family member serves every member.
func NewSim(switches, servers int) *Sim {
	s := &Sim{}
	s.arena.EnsureSwitches(switches)
	s.arena.EnsureServers(servers)
	return s
}

// Simulate computes per-flow throughputs for the given flows over the
// route table. Flows whose endpoints share a switch run at full NIC rate;
// flows with no route (disconnected) get rate 0.
//
// The returned Result aliases the instance's rate buffer: it is valid
// until the next Simulate call on this Sim. Callers that retain rates
// across calls must copy them. src may be nil for MPTCP8 (see the
// package comment's random-stream contract).
//
//jellyvet:hotpath
func (s *Sim) Simulate(flows []traffic.Flow, table *routing.Table, proto Protocol, src *rng.Source) Result {
	s.beginCall(len(flows))
	if proto == MPTCP8 {
		return s.simulateCoupled(flows, table)
	}
	return s.simulateSubflows(flows, table, proto, src)
}

// Simulate is the one-shot form: it builds a throwaway Sim, so the result
// buffer is not shared and the call costs the full compile. Use a Sim for
// repeated simulation.
func Simulate(flows []traffic.Flow, table *routing.Table, proto Protocol, src *rng.Source) Result {
	return new(Sim).Simulate(flows, table, proto, src)
}

// beginCall starts a new generation and sizes the per-flow buffers.
//
//jellyvet:hotpath
func (s *Sim) beginCall(flows int) {
	s.curGen++
	if s.curGen == 0 {
		clear(s.gen)
		s.curGen = 1
	}
	s.nres = 0
	s.rates = resarena.Grow(s.rates, flows)
	s.local = resarena.Grow(s.local, flows)
	for i := range s.rates {
		s.rates[i] = 0
	}
	for i := range s.local {
		s.local[i] = false
	}
}

// touch maps an arena id to its dense call-local id, assigning the next
// one on first touch of the current call.
//
//jellyvet:hotpath
func (s *Sim) touch(r int32) int32 {
	for int(r) >= len(s.gen) {
		s.gen = append(s.gen, 0)     //jellyvet:allow hotpath -- grows Sim-owned scratch reused across calls; steady state is zero-alloc (TestTransportZeroAllocs)
		s.dense = append(s.dense, 0) //jellyvet:allow hotpath -- grows Sim-owned scratch reused across calls; steady state is zero-alloc (TestTransportZeroAllocs)
	}
	if s.gen[r] != s.curGen {
		s.gen[r] = s.curGen
		s.dense[r] = int32(s.nres)
		s.nres++
	}
	return s.dense[r]
}

// resetKernel zero-fills the dense per-resource state after compile (the
// loops below compile to memclr; nres is the registered-resource count of
// exactly this call, so nothing stale survives).
//
//jellyvet:hotpath
func (s *Sim) resetKernel() {
	s.used = resarena.Grow(s.used, s.nres)
	s.count = resarena.Grow(s.count, s.nres)
	s.fcount = resarena.Grow(s.fcount, s.nres)
	for i := range s.used {
		s.used[i] = 0
	}
	for i := range s.count {
		s.count[i] = 0
	}
	for i := range s.fcount {
		s.fcount[i] = 0
	}
}

// appendPathResources appends the dense resource ids of one routed
// subflow — source NIC, destination NIC, then the directed links along
// the path — to dst.
//
//jellyvet:hotpath
func (s *Sim) appendPathResources(dst []int32, f *traffic.Flow, p []int) []int32 {
	dst = append(dst, s.touch(s.arena.SrcNIC(f.SrcServer))) //jellyvet:allow hotpath -- grows Sim-owned scratch reused across calls; steady state is zero-alloc (TestTransportZeroAllocs)
	dst = append(dst, s.touch(s.arena.DstNIC(f.DstServer))) //jellyvet:allow hotpath -- grows Sim-owned scratch reused across calls; steady state is zero-alloc (TestTransportZeroAllocs)
	for i := 0; i+1 < len(p); i++ {
		dst = append(dst, s.touch(s.arena.Link(p[i], p[i+1]))) //jellyvet:allow hotpath -- grows Sim-owned scratch reused across calls; steady state is zero-alloc (TestTransportZeroAllocs)
	}
	return dst
}

// simulateSubflows models uncoupled TCP: each connection is pinned to one
// hashed route and max-min filling runs at connection granularity. The
// filling is saturation-driven: each round advances every live connection
// by the bottleneck increment, then revisits only the subflows touching a
// resource that just saturated (via the resource→subflow adjacency)
// instead of rescanning the whole subflow population; resources with no
// live subflows are compacted out of the scan set as they drain.
//
//jellyvet:hotpath
func (s *Sim) simulateSubflows(flows []traffic.Flow, table *routing.Table, proto Protocol, src *rng.Source) Result {
	s.subFlow = s.subFlow[:0]
	s.subResIDs = s.subResIDs[:0]
	s.subResStart = append(s.subResStart[:0], 0) //jellyvet:allow hotpath -- grows Sim-owned scratch reused across calls; steady state is zero-alloc (TestTransportZeroAllocs)

	for fi := range flows {
		f := &flows[fi]
		if f.SrcSwitch == f.DstSwitch {
			s.local[fi] = true
			s.rates[fi] = 1
			continue
		}
		paths := table.PathsFor(f.SrcSwitch, f.DstSwitch)
		if len(paths) == 0 {
			continue
		}
		for k := 0; k < proto.Subflows(); k++ {
			p := paths[src.Intn(len(paths))]         // ECMP-style hash per connection
			s.subFlow = append(s.subFlow, int32(fi)) //jellyvet:allow hotpath -- grows Sim-owned scratch reused across calls; steady state is zero-alloc (TestTransportZeroAllocs)
			s.subResIDs = s.appendPathResources(s.subResIDs, f, p)
			s.subResStart = append(s.subResStart, int32(len(s.subResIDs))) //jellyvet:allow hotpath -- grows Sim-owned scratch reused across calls; steady state is zero-alloc (TestTransportZeroAllocs)
		}
	}
	s.resetKernel()

	nsub := len(s.subFlow)
	s.frozen = resarena.Grow(s.frozen, nsub)
	s.subLevel = resarena.Grow(s.subLevel, nsub)
	for si := range s.frozen {
		s.frozen[si] = false
	}
	for si := range s.subLevel {
		s.subLevel[si] = 0
	}
	// Incidence counts, then the resource→subflow CSR (lists in subflow
	// order) and the initial active-resource set.
	for _, r := range s.subResIDs {
		s.count[r]++
	}
	s.resSubStart = resarena.Grow(s.resSubStart, s.nres+1)
	s.resSubFill = resarena.Grow(s.resSubFill, s.nres)
	s.act = s.act[:0]
	s.resSubStart[0] = 0
	for r := 0; r < s.nres; r++ {
		s.resSubStart[r+1] = s.resSubStart[r] + s.count[r]
		s.resSubFill[r] = 0
		if s.count[r] > 0 {
			s.act = append(s.act, int32(r)) //jellyvet:allow hotpath -- grows Sim-owned scratch reused across calls; steady state is zero-alloc (TestTransportZeroAllocs)
		}
	}
	s.resSubIDs = resarena.Grow(s.resSubIDs, len(s.subResIDs))
	for si := 0; si < nsub; si++ {
		for _, r := range s.subResIDs[s.subResStart[si]:s.subResStart[si+1]] {
			s.resSubIDs[s.resSubStart[r]+s.resSubFill[r]] = int32(si)
			s.resSubFill[r]++
		}
	}

	level := 0.0
	remaining := nsub
	for remaining > 0 {
		if s.interrupt != nil && s.interrupt() {
			break // cancelled: partial rates, discarded by the caller
		}
		// Bottleneck increment over live resources, compacting out the
		// drained ones (count == 0 ⇔ no unfrozen subflow touches it).
		minInc := -1.0
		live := 0
		for _, r := range s.act {
			if s.count[r] == 0 {
				continue
			}
			s.act[live] = r
			live++
			inc := (1 - s.used[r]) / float64(s.count[r])
			if minInc < 0 || inc < minInc {
				minInc = inc
			}
		}
		s.act = s.act[:live]
		if minInc < 0 {
			break
		}
		level += minInc
		for _, r := range s.act {
			s.used[r] += minInc * float64(s.count[r])
		}
		progress := false
		for _, r := range s.act {
			if s.count[r] == 0 || 1-s.used[r] > satEps {
				continue
			}
			// Newly saturated: freeze its surviving subflows at the
			// current level and retire their incidences.
			for _, si := range s.resSubIDs[s.resSubStart[r]:s.resSubStart[r+1]] {
				if s.frozen[si] {
					continue
				}
				s.frozen[si] = true
				s.subLevel[si] = level
				remaining--
				progress = true
				for _, rr := range s.subResIDs[s.subResStart[si]:s.subResStart[si+1]] {
					s.count[rr]--
				}
			}
		}
		if !progress {
			break
		}
	}
	s.clampUnfrozenSubflows(level, remaining)

	for si := 0; si < nsub; si++ {
		s.rates[s.subFlow[si]] += s.subLevel[si]
	}
	clampRates(s.rates, s.local)
	return Result{FlowRate: s.rates}
}

// clampUnfrozenSubflows deterministically settles subflows still live
// when the filling loop exits through a safety hatch (minInc < 0, or a
// round that saturates no resource within tolerance — floating-point
// corner cases; unreachable on well-formed instances). Such subflows have
// been credited the full fill level even where a shared resource (e.g. a
// common source NIC) is already at capacity, so each is frozen at the
// level scaled down by its most-oversubscribed resource. Normal exits
// (remaining == 0) are untouched.
//
//jellyvet:hotpath
func (s *Sim) clampUnfrozenSubflows(level float64, remaining int) {
	if remaining == 0 {
		return
	}
	for si := range s.subFlow {
		if s.frozen[si] {
			continue
		}
		over := 1.0
		for _, r := range s.subResIDs[s.subResStart[si]:s.subResStart[si+1]] {
			if s.used[r] > over {
				over = s.used[r]
			}
		}
		s.frozen[si] = true
		s.subLevel[si] = level / over
	}
}

// simulateCoupled models MPTCP's coupled congestion control as flow-level
// max-min: every unfrozen flow grows at the common fair rate on its
// currently active route (the first route in shortest-first order whose
// links all have residual capacity); when that route saturates, the flow's
// accumulated rate stays in place and growth moves to the next open route;
// the flow freezes when no route is open. Deliberately consumes no
// randomness (see the package comment's stream contract).
//
//jellyvet:hotpath
func (s *Sim) simulateCoupled(flows []traffic.Flow, table *routing.Table) Result {
	s.pathResIDs = s.pathResIDs[:0]
	s.pathResStart = append(s.pathResStart[:0], 0) //jellyvet:allow hotpath -- grows Sim-owned scratch reused across calls; steady state is zero-alloc (TestTransportZeroAllocs)
	s.flowPathStart = resarena.Grow(s.flowPathStart, len(flows)+1)
	s.active = resarena.Grow(s.active, len(flows))
	s.flowLevel = resarena.Grow(s.flowLevel, len(flows))
	s.flowPathStart[0] = 0

	for fi := range flows {
		f := &flows[fi]
		s.active[fi] = -1
		s.flowLevel[fi] = 0
		if f.SrcSwitch == f.DstSwitch {
			s.local[fi] = true
			s.rates[fi] = 1
			s.flowPathStart[fi+1] = s.flowPathStart[fi]
			continue
		}
		paths := table.PathsFor(f.SrcSwitch, f.DstSwitch)
		for _, p := range paths {
			s.pathResIDs = s.appendPathResources(s.pathResIDs, f, p)
			s.pathResStart = append(s.pathResStart, int32(len(s.pathResIDs))) //jellyvet:allow hotpath -- grows Sim-owned scratch reused across calls; steady state is zero-alloc (TestTransportZeroAllocs)
		}
		s.flowPathStart[fi+1] = int32(len(s.pathResStart) - 1)
		if len(paths) > 0 {
			s.active[fi] = 0
		}
	}
	s.resetKernel()

	open := func(pi int32) bool { //jellyvet:allow hotpath -- non-escaping local closure; called only below, so it stays on the stack
		for _, r := range s.pathResIDs[s.pathResStart[pi]:s.pathResStart[pi+1]] {
			if 1-s.used[r] <= satEps {
				return false
			}
		}
		return true
	}

	level := 0.0
	roundCap := 4*s.nres + len(flows) + 16
	for rounds := 0; ; rounds++ {
		if rounds > roundCap {
			break // numerical safety net; never reached in practice
		}
		if s.interrupt != nil && s.interrupt() {
			break // cancelled: partial rates, discarded by the caller
		}
		// Recompute active routes and per-resource counts.
		for i := range s.fcount {
			s.fcount[i] = 0
		}
		liveFlows := 0
		for fi := range flows {
			if s.active[fi] < 0 || s.local[fi] {
				continue
			}
			first := s.flowPathStart[fi]
			if !open(first + s.active[fi]) {
				// Advance to the first open route, or freeze at the
				// current level.
				s.active[fi] = -1
				for pi := first; pi < s.flowPathStart[fi+1]; pi++ {
					if open(pi) {
						s.active[fi] = pi - first
						break
					}
				}
				if s.active[fi] < 0 {
					s.flowLevel[fi] = level
					continue
				}
			}
			liveFlows++
			pi := first + s.active[fi]
			for _, r := range s.pathResIDs[s.pathResStart[pi]:s.pathResStart[pi+1]] {
				s.fcount[r]++
			}
		}
		if liveFlows == 0 {
			break
		}
		minInc := -1.0
		for r := 0; r < s.nres; r++ {
			if s.fcount[r] == 0 {
				continue
			}
			inc := (1 - s.used[r]) / s.fcount[r]
			if minInc < 0 || inc < minInc {
				minInc = inc
			}
		}
		if minInc <= 0 {
			break
		}
		level += minInc
		for r := 0; r < s.nres; r++ {
			if s.fcount[r] > 0 {
				s.used[r] += minInc * s.fcount[r]
			}
		}
	}

	for fi := range flows {
		if s.local[fi] || s.flowPathStart[fi+1] == s.flowPathStart[fi] {
			continue
		}
		if s.active[fi] >= 0 {
			s.rates[fi] = level
		} else {
			s.rates[fi] = s.flowLevel[fi]
		}
	}
	clampRates(s.rates, s.local)
	return Result{FlowRate: s.rates}
}

//jellyvet:hotpath
func clampRates(rates []float64, local []bool) {
	for fi := range rates {
		if !local[fi] && rates[fi] > 1 {
			rates[fi] = 1
		}
	}
}
