package topology

import "jellyfish/internal/graph"

// A Run is one run-length-encoded span: Count consecutive switches that
// all carry Value (servers or ports).
type Run struct {
	Count int32
	Value int32
}

// Compact is the megascale view of a Topology: the graph as an immutable
// graph.CSR snapshot and the per-switch server/port counts run-length
// encoded. At 100k switches the classic Topology spends two ints per
// switch on Servers/Ports even though real fabrics have a handful of
// distinct SKUs; the run-length form is O(#SKU boundaries) instead.
// Build it with Topology.Compact(); mutating the source Topology
// afterwards does not change the snapshot.
type Compact struct {
	Name string
	// CSR is the switch-interconnect adjacency snapshot.
	CSR *graph.CSR
	// Servers and Ports run-length encode the per-switch attachment
	// counts in switch-id order; runs in each list sum to NumSwitches.
	Servers []Run
	Ports   []Run

	numServers int
}

// Compact returns the compact snapshot of the topology. The CSR component
// is memoized on the underlying graph; the run-length lists are rebuilt
// per call (O(#runs + n), negligible next to any use of the result).
func (t *Topology) Compact() *Compact {
	c := &Compact{
		Name:    t.Name,
		CSR:     t.Graph.CSR(),
		Servers: appendRuns(nil, t.Servers),
		Ports:   appendRuns(nil, t.Ports),
	}
	for _, s := range t.Servers {
		c.numServers += s
	}
	return c
}

func appendRuns(runs []Run, vals []int) []Run {
	for _, v := range vals {
		if k := len(runs); k > 0 && runs[k-1].Value == int32(v) {
			runs[k-1].Count++
		} else {
			runs = append(runs, Run{Count: 1, Value: int32(v)})
		}
	}
	return runs
}

// NumSwitches returns the number of switches.
func (c *Compact) NumSwitches() int { return c.CSR.N() }

// NumServers returns the total number of attached servers.
func (c *Compact) NumServers() int { return c.numServers }

// NumLinks returns the number of switch-to-switch links.
func (c *Compact) NumLinks() int { return c.CSR.M() }

// ServersAt returns the number of servers attached to switch sw.
// It is O(#runs); iterate the runs directly for whole-fabric sweeps.
func (c *Compact) ServersAt(sw int) int {
	i := int32(sw)
	for _, r := range c.Servers {
		if i < r.Count {
			return int(r.Value)
		}
		i -= r.Count
	}
	return 0
}

// AppendServerSwitches appends to buf one entry per server naming its
// switch, in switch-id order — the compact equivalent of
// Topology.ServerSwitches — and returns the extended slice.
func (c *Compact) AppendServerSwitches(buf []int) []int {
	sw := 0
	for _, r := range c.Servers {
		for i := int32(0); i < r.Count; i++ {
			for s := int32(0); s < r.Value; s++ {
				buf = append(buf, sw)
			}
			sw++
		}
	}
	return buf
}
