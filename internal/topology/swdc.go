package topology

import (
	"fmt"

	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
)

// The Small-World Datacenter (SWDC) topologies of Shin, Wong & Sirer [41]
// combine a regular lattice with random shortcut links. The Jellyfish paper
// compares against the three degree-6 variants (§4.1, Fig. 4), emulating
// SWDC's 6-interface servers with 1-server switches of 7 ports. We
// reproduce the lattice structure and fill remaining ports with uniform
// random shortcuts wired by the same free-port matching as Jellyfish.

// SWDCRing builds the ring-lattice SWDC: each of n switches links to its 2
// ring neighbors, with degree-2 lattice plus (degree-2) random shortcuts.
func SWDCRing(n, degree, serversPerSwitch int, src *rng.Source) *Topology {
	if degree < 2 {
		panic("topology: SWDC ring needs degree >= 2")
	}
	t := newSWDC("swdc-ring", n, degree, serversPerSwitch)
	for i := 0; i < n; i++ {
		t.Graph.AddEdge(i, (i+1)%n)
	}
	fillRandomShortcuts(t, degree, src)
	return t
}

// SWDC2DTorus builds the 2D-torus SWDC on an a×b grid (n = a·b, with a, b
// as square as possible): 4 lattice links per switch plus (degree-4)
// random shortcuts.
func SWDC2DTorus(n, degree, serversPerSwitch int, src *rng.Source) *Topology {
	if degree < 4 {
		panic("topology: SWDC 2D torus needs degree >= 4")
	}
	a, b := squarestFactors(n)
	if a < 3 || b < 3 {
		panic(fmt.Sprintf("topology: n=%d has no torus-compatible factorization", n))
	}
	t := newSWDC("swdc-2dtorus", n, degree, serversPerSwitch)
	id := func(x, y int) int { return x*b + y }
	for x := 0; x < a; x++ {
		for y := 0; y < b; y++ {
			t.Graph.AddEdge(id(x, y), id((x+1)%a, y))
			t.Graph.AddEdge(id(x, y), id(x, (y+1)%b))
		}
	}
	fillRandomShortcuts(t, degree, src)
	return t
}

// SWDC3DHexTorus builds the 3D hexagonal-torus SWDC: switches are arranged
// in z stacked planes, each plane a brick-wall (honeycomb) torus in which
// every switch has 3 in-plane neighbors; ±z wrap links add 2 more, for 5
// lattice links per switch, plus (degree-5) random shortcuts. n must
// factor as a×b×z with a even and a,b ≥ 2, z ≥ 3 (z=1 and z=2 would
// collapse the vertical links).
func SWDC3DHexTorus(n, degree, serversPerSwitch int, src *rng.Source) *Topology {
	if degree < 5 {
		panic("topology: SWDC 3D hex torus needs degree >= 5")
	}
	a, b, z := hexFactors(n)
	if a == 0 {
		panic(fmt.Sprintf("topology: n=%d has no hex-torus-compatible factorization", n))
	}
	t := newSWDC("swdc-3dhextorus", n, degree, serversPerSwitch)
	id := func(x, y, l int) int { return (x*b+y)*z + l }
	for x := 0; x < a; x++ {
		for y := 0; y < b; y++ {
			for l := 0; l < z; l++ {
				u := id(x, y, l)
				// Brick-wall plane: every switch links east-west; alternate
				// columns link north, giving 3 in-plane neighbors each.
				t.Graph.AddEdge(u, id((x+1)%a, y, l))
				if x%2 == 0 {
					t.Graph.AddEdge(u, id(x, (y+1)%b, l))
				}
				// Vertical ±z wrap links.
				t.Graph.AddEdge(u, id(x, y, (l+1)%z))
			}
		}
	}
	fillRandomShortcuts(t, degree, src)
	return t
}

func newSWDC(name string, n, degree, serversPerSwitch int) *Topology {
	t := &Topology{
		Name:    fmt.Sprintf("%s(n=%d,deg=%d)", name, n, degree),
		Graph:   graph.New(n),
		Ports:   make([]int, n),
		Servers: make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.Ports[i] = degree + serversPerSwitch
		t.Servers[i] = serversPerSwitch
	}
	return t
}

// fillRandomShortcuts wires remaining network ports (up to degree) with
// small-world shortcuts: endpoint pairs are drawn with probability
// proportional to 1/d where d is the lattice distance (Kleinberg's
// harmonic distribution, the defining ingredient of SWDC [41]). This bias
// toward nearby nodes is what distinguishes SWDC from Jellyfish's uniform
// random graph — and what costs it capacity (Fig. 4).
func fillRandomShortcuts(t *Topology, degree int, src *rng.Source) {
	g := t.Graph
	n := g.N()
	// Lattice distances, computed before any shortcut exists.
	dist := make([][]int, n)
	for v := 0; v < n; v++ {
		dist[v] = g.BFS(v)
	}
	free := func(u int) int { return degree - g.Degree(u) }

	candidates := make([]int, 0, n)
	weights := make([]float64, 0, n)
	stall := 0
	for stall < 4*n {
		// Pick a switch with free ports uniformly.
		candidates = candidates[:0]
		for u := 0; u < n; u++ {
			if free(u) > 0 {
				candidates = append(candidates, u)
			}
		}
		if len(candidates) < 2 {
			break
		}
		u := candidates[src.Intn(len(candidates))]
		// Weight the other endpoints harmonically by lattice distance.
		candidates = candidates[:0]
		weights = weights[:0]
		var totalW float64
		for v := 0; v < n; v++ {
			if v == u || free(v) <= 0 || g.HasEdge(u, v) || dist[u][v] <= 0 {
				continue
			}
			w := 1 / float64(dist[u][v])
			candidates = append(candidates, v)
			weights = append(weights, w)
			totalW += w
		}
		if len(candidates) == 0 {
			stall++
			continue
		}
		x := src.Float64() * totalW
		v := candidates[len(candidates)-1]
		for i, w := range weights {
			x -= w
			if x <= 0 {
				v = candidates[i]
				break
			}
		}
		g.AddEdge(u, v)
		stall = 0
	}
}

// squarestFactors returns the factor pair (a,b) of n with a ≤ b and a as
// large as possible (most square), or (1,n) for primes.
func squarestFactors(n int) (int, int) {
	a := 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			a = d
		}
	}
	return a, n / a
}

// hexFactors finds (a,b,z) with a·b·z = n, a even, a,b ≥ 2, z ≥ 3,
// preferring balanced dimensions. Returns zeros if impossible.
func hexFactors(n int) (int, int, int) {
	best := [3]int{}
	bestScore := -1
	for z := 3; z <= n/4; z++ {
		if n%z != 0 {
			continue
		}
		plane := n / z
		for a := 2; a*a <= plane || a <= plane/2; a += 2 {
			if plane%a != 0 {
				continue
			}
			b := plane / a
			if b < 2 {
				break
			}
			score := min3(a, b, z)
			if score > bestScore {
				bestScore = score
				best = [3]int{a, b, z}
			}
		}
	}
	return best[0], best[1], best[2]
}

func min3(a, b, c int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}
