package topology

import (
	"jellyfish/internal/rng"
)

// Incremental server placement: grow the server count of an existing
// Jellyfish without rebuilding the random graph. This is the paper's §4.2
// flexibility argument applied to the server dial instead of the switch
// count — and, like ExpandJellyfish, it perturbs only O(1) links per step,
// which is what lets capacity searches warm-start the flow solver across
// adjacent server counts (adjacent search points share almost every edge).
// Fig. 6's incremental-vs-scratch result is the experimental license:
// incrementally derived random graphs evaluate like from-scratch ones.

// AddServerSpread attaches one server to the topology, keeping the
// placement spread-even: the target is the least-loaded switch (lowest
// index on ties) that can host another server. If the target has no free
// port, one of its network links (chosen uniformly at random) is removed
// to free one; the severed peer's port joins the free-port pool, and the
// pool is re-matched into links — joining two free ports directly, or
// splicing across a random existing link when they sit on adjacent
// switches — so every two servers added cost exactly one network link,
// the same port arithmetic as building from scratch. Returns the switch
// that received the server, or -1 if no switch can host one.
func AddServerSpread(t *Topology, src *rng.Source) int {
	g := t.Graph
	n := g.N()
	sw := -1
	for i := 0; i < n; i++ {
		if t.Servers[i] >= t.Ports[i] {
			continue // no port budget left at all
		}
		if t.FreePorts(i) == 0 && g.Degree(i) == 0 {
			continue // fully committed and no link to sacrifice
		}
		if sw < 0 || t.Servers[i] < t.Servers[sw] {
			sw = i
		}
	}
	if sw < 0 {
		return -1
	}
	if t.FreePorts(sw) == 0 {
		// Free a port by cutting a random incident link; the peer's freed
		// port goes to the pool and is re-matched below.
		nbrs := g.Neighbors(sw)
		x := nbrs[src.Intn(len(nbrs))]
		g.RemoveEdge(sw, x)
	}
	t.Servers[sw]++
	rematchFreePorts(t, src)
	return sw
}

// AddServersSpread applies AddServerSpread count times, deriving the i-th
// step's randomness from src by stable index so the resulting topology is
// a pure function of (input topology, src, count) — growing in one call
// or across several yields the identical network. Returns how many
// servers were actually placed (fewer than count only when the inventory
// is full).
func AddServersSpread(t *Topology, count int, src *rng.Source) int {
	base := t.NumServers()
	for i := 0; i < count; i++ {
		if AddServerSpread(t, src.SplitN("srv", base+i)) < 0 {
			return i
		}
	}
	return count
}

// rematchFreePorts joins dangling network ports back into links, in the
// spirit of the construction's repair phases (§3): a switch holding ≥2
// free ports splices itself into a random existing link; two distinct
// switches with free ports are joined directly, or spliced across a
// random link when already adjacent. At most a single free port remains
// afterwards (odd pool), exactly like from-scratch wiring.
func rematchFreePorts(t *Topology, src *rng.Source) {
	g := t.Graph
	n := g.N()

	// Phase-2 style: a switch with ≥2 free ports absorbs a random link.
	for p := 0; p < n; p++ {
		guard := 0
		for t.FreePorts(p) >= 2 && g.M() > 0 && guard <= 100*n {
			guard++
			e, ok := randomEdge(g, src)
			if !ok {
				break
			}
			if e.U == p || e.V == p || g.HasEdge(p, e.U) || g.HasEdge(p, e.V) {
				continue
			}
			g.RemoveEdge(e.U, e.V)
			g.AddEdge(p, e.U)
			g.AddEdge(p, e.V)
		}
	}

	// Pair up switches left with exactly one free port each.
	for {
		u, v := -1, -1
		for i := 0; i < n && v < 0; i++ {
			if t.FreePorts(i) == 0 {
				continue
			}
			if u < 0 {
				u = i
			} else {
				v = i
			}
		}
		if v < 0 {
			return // zero or one free port left: done
		}
		if !g.HasEdge(u, v) {
			g.AddEdge(u, v)
			continue
		}
		// Adjacent pair: splice across a random existing link (x,y),
		// turning (x,y) into (u,x),(v,y).
		guard := 0
		spliced := false
		for ; guard <= 100*n && g.M() > 0; guard++ {
			e, ok := randomEdge(g, src)
			if !ok {
				break
			}
			x, y := e.U, e.V
			if x == u || x == v || y == u || y == v {
				continue
			}
			if g.HasEdge(u, x) || g.HasEdge(v, y) {
				continue
			}
			g.RemoveEdge(x, y)
			g.AddEdge(u, x)
			g.AddEdge(v, y)
			spliced = true
			break
		}
		if !spliced {
			return // pathological small graph: leave the ports free
		}
	}
}

// FailSwitches fails exactly the given switches in place — every incident
// link removed and the attached servers dropped from the workload — the
// deterministic core of FailRandomSwitches. Passing nested ID sets yields
// nested failure scenarios, which is what lets failure sweeps share a
// topology (and warm-start its solves) across failure fractions.
func FailSwitches(t *Topology, ids []int) {
	for _, sw := range ids {
		for _, v := range append([]int(nil), t.Graph.Neighbors(sw)...) {
			t.Graph.RemoveEdge(sw, v)
		}
		t.Servers[sw] = 0
	}
}
