// Package topology builds every network topology evaluated in the Jellyfish
// paper: the Jellyfish random regular graph itself (with from-scratch,
// incremental, and heterogeneous construction), the 3-level fat-tree it is
// compared against, the Small-World Datacenter family, and degree-diameter
// benchmark graphs.
package topology

import (
	"fmt"

	"jellyfish/internal/graph"
)

// A Topology is a switch-level interconnect: a graph over top-of-rack
// switches, plus per-switch port budgets and attached server counts.
// Link capacities are uniform (one server-NIC rate per direction).
type Topology struct {
	Name    string
	Graph   *graph.Graph
	Ports   []int // Ports[i]: total ports on switch i
	Servers []int // Servers[i]: servers attached to switch i
}

// NumSwitches returns the number of switches.
func (t *Topology) NumSwitches() int { return t.Graph.N() }

// NumServers returns the total number of attached servers.
func (t *Topology) NumServers() int {
	total := 0
	for _, s := range t.Servers {
		total += s
	}
	return total
}

// NumLinks returns the number of switch-switch cables.
func (t *Topology) NumLinks() int { return t.Graph.M() }

// TotalPorts returns the equipment cost measure used throughout the paper:
// the total number of switch ports purchased.
func (t *Topology) TotalPorts() int {
	total := 0
	for _, p := range t.Ports {
		total += p
	}
	return total
}

// FreePorts returns the number of unused ports on switch i.
func (t *Topology) FreePorts(i int) int {
	return t.Ports[i] - t.Servers[i] - t.Graph.Degree(i)
}

// TotalFreePorts sums free ports across all switches.
func (t *Topology) TotalFreePorts() int {
	total := 0
	for i := range t.Ports {
		total += t.FreePorts(i)
	}
	return total
}

// Validate checks internal consistency: no switch exceeds its port budget
// and all slices are the same length.
func (t *Topology) Validate() error {
	n := t.Graph.N()
	if len(t.Ports) != n || len(t.Servers) != n {
		return fmt.Errorf("topology %q: %d switches but %d port entries, %d server entries",
			t.Name, n, len(t.Ports), len(t.Servers))
	}
	for i := 0; i < n; i++ {
		if t.Servers[i] < 0 {
			return fmt.Errorf("topology %q: switch %d has negative servers", t.Name, i)
		}
		if used := t.Servers[i] + t.Graph.Degree(i); used > t.Ports[i] {
			return fmt.Errorf("topology %q: switch %d uses %d ports, budget %d",
				t.Name, i, used, t.Ports[i])
		}
	}
	return nil
}

// Clone returns a deep copy.
func (t *Topology) Clone() *Topology {
	return &Topology{
		Name:    t.Name,
		Graph:   t.Graph.Clone(),
		Ports:   append([]int(nil), t.Ports...),
		Servers: append([]int(nil), t.Servers...),
	}
}

// ServerSwitches returns a slice with one entry per server giving the
// switch it attaches to, in switch order. This is the canonical server ID
// assignment used by the traffic generators.
func (t *Topology) ServerSwitches() []int {
	return t.ServerSwitchesInto(make([]int, 0, t.NumServers()))
}

// ServerSwitchesInto is ServerSwitches with a caller-owned buffer: the
// result is written into buf's storage (grown as needed) so warm-chain
// sweeps that evaluate many same-sized topologies allocate nothing after
// the first call. The returned slice aliases buf.
func (t *Topology) ServerSwitchesInto(buf []int) []int {
	buf = buf[:0]
	for sw, count := range t.Servers {
		for j := 0; j < count; j++ {
			buf = append(buf, sw)
		}
	}
	return buf
}

// SwitchPathStats computes shortest-path statistics between switches that
// have at least one server attached (the paper's inter-switch path length
// metric counts ToR-to-ToR hops).
func (t *Topology) SwitchPathStats() graph.PathStats {
	var sc PathScratch
	return t.SwitchPathStatsInto(&sc)
}

// PathScratch holds the reusable working buffers of SwitchPathStatsInto.
// The zero value is ready to use. Not safe for concurrent use.
type PathScratch struct {
	subset []int
	pairs  graph.PairsScratch
}

// SwitchPathStatsInto is SwitchPathStats with caller-owned scratch, for
// sweeps that score many same-sized topologies in a loop. The returned
// PathStats.Hist aliases the scratch and is valid only until the next
// call with the same scratch — copy it to retain.
func (t *Topology) SwitchPathStatsInto(sc *PathScratch) graph.PathStats {
	sc.subset = sc.subset[:0]
	for sw, count := range t.Servers {
		if count > 0 {
			sc.subset = append(sc.subset, sw)
		}
	}
	subset := sc.subset
	if len(subset) == 0 {
		subset = nil // serverless topology: all-pairs, as PairsStats(nil)
	}
	return t.Graph.PairsStatsInto(subset, &sc.pairs)
}

// String summarizes the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("%s{switches=%d servers=%d links=%d ports=%d}",
		t.Name, t.NumSwitches(), t.NumServers(), t.NumLinks(), t.TotalPorts())
}
