package topology

import (
	"slices"
	"testing"

	"jellyfish/internal/rng"
)

// The Into variants must be result-identical to their allocating forms
// and allocation-free once the scratch has grown to the working size.
func TestServerSwitchesIntoMatchesAndReuses(t *testing.T) {
	tops := []*Topology{
		Jellyfish(20, 8, 5, rng.New(1)),
		Jellyfish(25, 10, 6, rng.New(2)),
		Jellyfish(15, 8, 5, rng.New(3)),
	}
	var buf []int
	for _, top := range tops {
		buf = top.ServerSwitchesInto(buf)
		if want := top.ServerSwitches(); !slices.Equal(buf, want) {
			t.Errorf("%s: Into %v != plain %v", top.Name, buf, want)
		}
	}
	top := tops[0]
	allocs := testing.AllocsPerRun(20, func() {
		buf = top.ServerSwitchesInto(buf)
	})
	if allocs != 0 {
		t.Errorf("warm ServerSwitchesInto allocates %v per run, want 0", allocs)
	}
}

func TestSwitchPathStatsIntoMatchesAndReuses(t *testing.T) {
	tops := []*Topology{
		Jellyfish(20, 8, 5, rng.New(1)),
		Jellyfish(25, 10, 6, rng.New(2)),
	}
	var sc PathScratch
	for _, top := range tops {
		got := top.SwitchPathStatsInto(&sc)
		want := top.SwitchPathStats()
		if got.Mean != want.Mean || got.Diameter != want.Diameter ||
			got.Pairs != want.Pairs || got.Connected != want.Connected ||
			!slices.Equal(got.Hist, want.Hist) {
			t.Errorf("%s: Into %+v != plain %+v", top.Name, got, want)
		}
	}
	top := tops[0]
	allocs := testing.AllocsPerRun(20, func() {
		_ = top.SwitchPathStatsInto(&sc)
	})
	if allocs != 0 {
		t.Errorf("warm SwitchPathStatsInto allocates %v per run, want 0", allocs)
	}
}
