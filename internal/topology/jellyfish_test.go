package topology

import (
	"testing"

	"jellyfish/internal/rng"
)

func TestJellyfishBasicShape(t *testing.T) {
	src := rng.New(1)
	top := Jellyfish(20, 12, 4, src)
	if top.NumSwitches() != 20 {
		t.Fatalf("switches = %d, want 20", top.NumSwitches())
	}
	if top.NumServers() != 20*8 {
		t.Fatalf("servers = %d, want 160", top.NumServers())
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// At most one unmatched network port across the whole network (§3).
	if free := top.TotalFreePorts(); free > 1 {
		t.Fatalf("total free ports = %d, want <= 1", free)
	}
}

func TestJellyfishRegularity(t *testing.T) {
	// n·r even: perfect r-regular matching expected.
	src := rng.New(2)
	top := Jellyfish(30, 10, 6, src)
	g := top.Graph
	if !g.IsRegular(6) {
		t.Fatalf("graph not 6-regular: min=%d max=%d", g.MinDegree(), g.MaxDegree())
	}
	if g.M() != 30*6/2 {
		t.Fatalf("edges = %d, want 90", g.M())
	}
}

func TestJellyfishOddDegreeSum(t *testing.T) {
	// n·r odd: exactly one switch must end with a single free port.
	src := rng.New(3)
	top := Jellyfish(15, 8, 5, src)
	deficit := 0
	for i := 0; i < 15; i++ {
		d := 5 - top.Graph.Degree(i)
		if d < 0 {
			t.Fatalf("switch %d over degree: %d", i, top.Graph.Degree(i))
		}
		deficit += d
	}
	if deficit != 1 {
		t.Fatalf("total degree deficit = %d, want 1", deficit)
	}
}

func TestJellyfishConnected(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		top := Jellyfish(50, 8, 4, rng.New(seed))
		if !top.Graph.Connected() {
			t.Fatalf("seed %d: jellyfish disconnected", seed)
		}
	}
}

func TestJellyfishDeterministic(t *testing.T) {
	a := Jellyfish(40, 10, 5, rng.New(7))
	b := Jellyfish(40, 10, 5, rng.New(7))
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
	c := Jellyfish(40, 10, 5, rng.New(8))
	same := true
	ec := c.Graph.Edges()
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestJellyfishPanicsOnBadParams(t *testing.T) {
	for _, tc := range []struct{ n, k, r int }{
		{10, 4, 5}, // r > k
		{4, 10, 5}, // r >= n
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Jellyfish(%d,%d,%d) did not panic", tc.n, tc.k, tc.r)
				}
			}()
			Jellyfish(tc.n, tc.k, tc.r, rng.New(1))
		}()
	}
}

func TestJellyfishHeterogeneous(t *testing.T) {
	// 10 legacy 8-port switches (degree 4) plus 2 newer 12-port switches
	// (degree 8) — the paper's heterogeneous-expansion scenario (§4.2).
	ports := []int{8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 12, 12}
	servers := []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4}
	top := JellyfishHeterogeneous(ports, servers, rng.New(5))
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.NumServers() != 48 {
		t.Fatalf("servers = %d, want 48", top.NumServers())
	}
	// High-port switches should carry more network links.
	if top.Graph.Degree(10) <= top.Graph.Degree(0) {
		t.Fatalf("12-port switch degree %d not above 8-port degree %d",
			top.Graph.Degree(10), top.Graph.Degree(0))
	}
	if free := top.TotalFreePorts(); free > 1 {
		t.Fatalf("free ports = %d, want <= 1", free)
	}
}

func TestExpandJellyfishPreservesInvariants(t *testing.T) {
	src := rng.New(11)
	top := Jellyfish(20, 12, 4, src)
	before := top.NumServers()
	ExpandJellyfish(top, 10, 12, 4, src.Split("grow"))
	if top.NumSwitches() != 30 {
		t.Fatalf("switches = %d, want 30", top.NumSwitches())
	}
	if top.NumServers() != before+10*8 {
		t.Fatalf("servers = %d, want %d", top.NumServers(), before+10*8)
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if !top.Graph.Connected() {
		t.Fatal("expanded topology disconnected")
	}
	// Each expanded switch fills to r or r-1 network ports.
	for i := 20; i < 30; i++ {
		if d := top.Graph.Degree(i); d < 3 || d > 4 {
			t.Fatalf("new switch %d degree = %d, want 3 or 4", i, d)
		}
	}
}

func TestExpandJellyfishOneAtATime(t *testing.T) {
	src := rng.New(13)
	top := Jellyfish(12, 6, 3, src)
	for step := 0; step < 20; step++ {
		ExpandJellyfish(top, 1, 6, 3, src.SplitN("step", step))
		if err := top.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !top.Graph.Connected() {
			t.Fatalf("step %d: disconnected", step)
		}
	}
	if top.NumSwitches() != 32 {
		t.Fatalf("switches = %d, want 32", top.NumSwitches())
	}
}

func TestExpandSwitchOnlyAddsNoServers(t *testing.T) {
	src := rng.New(17)
	top := Jellyfish(20, 12, 4, src)
	servers := top.NumServers()
	ExpandJellyfishSwitchOnly(top, 5, 12, src.Split("grow"))
	if top.NumServers() != servers {
		t.Fatal("switch-only expansion changed server count")
	}
	for i := 20; i < 25; i++ {
		if top.Servers[i] != 0 {
			t.Fatalf("new switch %d has servers", i)
		}
		if d := top.Graph.Degree(i); d < 11 {
			t.Fatalf("new switch %d degree = %d, want >= 11", i, d)
		}
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveRandomLinks(t *testing.T) {
	src := rng.New(19)
	top := Jellyfish(30, 10, 6, src)
	m := top.NumLinks()
	killed := RemoveRandomLinks(top, 0.2, src.Split("fail"))
	if killed != m/5 {
		t.Fatalf("killed = %d, want %d", killed, m/5)
	}
	if top.NumLinks() != m-killed {
		t.Fatalf("links = %d, want %d", top.NumLinks(), m-killed)
	}
}

func TestRemoveAllLinks(t *testing.T) {
	src := rng.New(23)
	top := Jellyfish(10, 6, 3, src)
	RemoveRandomLinks(top, 1.0, src.Split("fail"))
	if top.NumLinks() != 0 {
		t.Fatalf("links = %d after full failure, want 0", top.NumLinks())
	}
}

// Paper §4.1: Jellyfish mean path length beats the fat-tree built with the
// same equipment. Check at the paper's smallest illustration scale.
func TestJellyfishShorterPathsThanFatTree(t *testing.T) {
	ft := FatTree(8) // 80 switches, 128 servers
	jf := Jellyfish(80, 8, 4, rng.New(31))
	fstats := ft.SwitchPathStats()
	jstats := jf.SwitchPathStats()
	if jstats.Mean >= fstats.Mean {
		t.Fatalf("jellyfish mean path %v not below fat-tree %v", jstats.Mean, fstats.Mean)
	}
}

func TestRandomEdgeUniform(t *testing.T) {
	src := rng.New(37)
	top := Jellyfish(10, 6, 3, src)
	counts := map[[2]int]int{}
	trials := 20000
	for i := 0; i < trials; i++ {
		e, ok := randomEdge(top.Graph, src)
		if !ok {
			t.Fatal("randomEdge failed on non-empty graph")
		}
		counts[[2]int{e.U, e.V}]++
	}
	m := top.Graph.M()
	want := float64(trials) / float64(m)
	for e, c := range counts {
		if float64(c) < want*0.7 || float64(c) > want*1.3 {
			t.Fatalf("edge %v sampled %d times, want ≈%.0f", e, c, want)
		}
	}
	if len(counts) != m {
		t.Fatalf("sampled %d distinct edges, graph has %d", len(counts), m)
	}
}

func TestFailRandomSwitches(t *testing.T) {
	src := rng.New(41)
	top := Jellyfish(40, 10, 6, src)
	servers := top.NumServers()
	failed := FailRandomSwitches(top, 0.25, src.Split("fail"))
	if len(failed) != 10 {
		t.Fatalf("failed %d switches, want 10", len(failed))
	}
	for _, sw := range failed {
		if top.Graph.Degree(sw) != 0 {
			t.Fatalf("failed switch %d still has links", sw)
		}
		if top.Servers[sw] != 0 {
			t.Fatalf("failed switch %d still has servers", sw)
		}
	}
	if top.NumServers() != servers-10*4 {
		t.Fatalf("servers = %d, want %d", top.NumServers(), servers-40)
	}
	for i := 1; i < len(failed); i++ {
		if failed[i] <= failed[i-1] {
			t.Fatal("failed IDs not sorted")
		}
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFailRandomSwitchesNone(t *testing.T) {
	src := rng.New(43)
	top := Jellyfish(20, 8, 4, src)
	m := top.NumLinks()
	if got := FailRandomSwitches(top, 0, src.Split("fail")); len(got) != 0 {
		t.Fatalf("failed %d switches with frac=0", len(got))
	}
	if top.NumLinks() != m {
		t.Fatal("frac=0 changed links")
	}
}

// Property: jellyfish construction respects invariants across a sweep of
// random parameters.
func TestJellyfishPropertySweep(t *testing.T) {
	src := rng.New(47)
	for trial := 0; trial < 40; trial++ {
		n := 5 + src.Intn(60)
		k := 4 + src.Intn(12)
		r := 2 + src.Intn(k-2)
		if r >= n {
			r = n - 1
		}
		if r < 2 {
			continue
		}
		top := Jellyfish(n, k, r, src.SplitN("topo", trial))
		if err := top.Validate(); err != nil {
			t.Fatalf("n=%d k=%d r=%d: %v", n, k, r, err)
		}
		if top.Graph.MaxDegree() > r {
			t.Fatalf("n=%d k=%d r=%d: degree %d exceeds r", n, k, r, top.Graph.MaxDegree())
		}
		// The matcher leaves at most one free port when a perfect matching
		// exists (n·r even); always at most r free in pathological cases.
		deficit := 0
		for i := 0; i < n; i++ {
			deficit += r - top.Graph.Degree(i)
		}
		if n*r%2 == 0 && deficit > 2 {
			t.Fatalf("n=%d k=%d r=%d: deficit %d", n, k, r, deficit)
		}
		if r >= 3 && !top.Graph.Connected() {
			t.Fatalf("n=%d k=%d r=%d: disconnected", n, k, r)
		}
	}
}
