package topology

import (
	"testing"

	"jellyfish/internal/rng"
)

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("petersen n=%d m=%d, want 10, 15", g.N(), g.M())
	}
	if !g.IsRegular(3) {
		t.Fatal("petersen not 3-regular")
	}
	if d := g.Diameter(); d != 2 {
		t.Fatalf("petersen diameter = %d, want 2", d)
	}
}

func TestHoffmanSingleton(t *testing.T) {
	g := HoffmanSingleton()
	if g.N() != 50 || g.M() != 175 {
		t.Fatalf("HS n=%d m=%d, want 50, 175", g.N(), g.M())
	}
	if !g.IsRegular(7) {
		t.Fatal("HS not 7-regular")
	}
	if d := g.Diameter(); d != 2 {
		t.Fatalf("HS diameter = %d, want 2 (Moore graph)", d)
	}
	// Moore graph of degree 7, diameter 2: girth 5, so no triangles —
	// neighbors of any vertex form an independent set.
	for u := 0; u < 50; u++ {
		ns := g.Neighbors(u)
		for i, a := range ns {
			for _, b := range ns[i+1:] {
				if g.HasEdge(a, b) {
					t.Fatalf("triangle at %d: %d-%d", u, a, b)
				}
			}
		}
	}
}

func TestOptimizedRegularGraphImproves(t *testing.T) {
	src := rng.New(1)
	n, r := 60, 4
	baseline := Jellyfish(n, r, r, rng.New(1).Split("seed-graph")).Graph
	opt := OptimizedRegularGraph(n, r, 1500, src)
	if !opt.IsRegular(r) {
		t.Fatalf("optimizer broke regularity: min=%d max=%d", opt.MinDegree(), opt.MaxDegree())
	}
	if !opt.Connected() {
		t.Fatal("optimizer produced disconnected graph")
	}
	if opt.AllPairsStats().Mean > baseline.AllPairsStats().Mean+1e-9 {
		t.Fatalf("optimizer worsened mean path: %v > %v",
			opt.AllPairsStats().Mean, baseline.AllPairsStats().Mean)
	}
}

func TestBestKnownDispatch(t *testing.T) {
	src := rng.New(2)
	if g := BestKnownDegreeDiameter(10, 3, src); g.N() != 10 || g.Diameter() != 2 {
		t.Fatal("did not dispatch to Petersen")
	}
	if g := BestKnownDegreeDiameter(50, 7, src); g.N() != 50 || g.Diameter() != 2 {
		t.Fatal("did not dispatch to Hoffman–Singleton")
	}
	if g := BestKnownDegreeDiameter(30, 4, src); g.N() != 30 || !g.IsRegular(4) {
		t.Fatal("optimized fallback wrong shape")
	}
}

func TestDegreeDiameterTopology(t *testing.T) {
	// Paper Fig. 3 config (50, 11, 7): Hoffman–Singleton with 4 servers
	// per switch.
	src := rng.New(3)
	top := DegreeDiameterTopology(50, 11, 7, src)
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.NumServers() != 50*4 {
		t.Fatalf("servers = %d, want 200", top.NumServers())
	}
	if top.FreePorts(0) != 0 {
		t.Fatalf("free ports = %d, want 0", top.FreePorts(0))
	}
}

func TestDegreeDiameterTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ports < degree did not panic")
		}
	}()
	DegreeDiameterTopology(50, 5, 7, rng.New(1))
}

// The benchmark graph should have mean path length no worse than a random
// regular graph of the same parameters — that is its entire purpose.
func TestBenchmarkBeatsRandom(t *testing.T) {
	src := rng.New(4)
	hs := HoffmanSingleton()
	rr := Jellyfish(50, 7, 7, src).Graph
	if hs.AllPairsStats().Mean >= rr.AllPairsStats().Mean {
		t.Fatalf("HS mean %v not below RRG mean %v",
			hs.AllPairsStats().Mean, rr.AllPairsStats().Mean)
	}
}
