package topology

import (
	"testing"

	"jellyfish/internal/rng"
)

func spreadEven(switches, ports, servers int, src *rng.Source) *Topology {
	portsPer := make([]int, switches)
	serversPer := make([]int, switches)
	base, extra := servers/switches, servers%switches
	for i := range portsPer {
		portsPer[i] = ports
		serversPer[i] = base
		if i < extra {
			serversPer[i]++
		}
	}
	return JellyfishHeterogeneous(portsPer, serversPer, src)
}

// Growing one server at a time must reproduce the spread-even server
// distribution SpreadServers-style construction uses: the i-th extra
// server lands on the lowest-index least-loaded switch.
func TestAddServerSpreadMatchesSpreadCounts(t *testing.T) {
	top := spreadEven(10, 8, 10, rng.New(3))
	AddServersSpread(top, 23, rng.New(4))
	want := spreadEven(10, 8, 33, rng.New(5)) // same counts, independent wiring
	for i := range top.Servers {
		if top.Servers[i] != want.Servers[i] {
			t.Fatalf("switch %d has %d servers after growth, want %d (%v)", i, top.Servers[i], want.Servers[i], top.Servers)
		}
	}
}

// Every growth step must leave a consistent topology: port budgets
// respected, at most one dangling port (the odd free port from-scratch
// wiring also leaves), and the link count tracking the from-scratch port
// arithmetic — two servers cost one network link.
func TestAddServerSpreadConservesPorts(t *testing.T) {
	top := spreadEven(12, 10, 12, rng.New(7))
	baseLinks := top.NumLinks()
	src := rng.New(8)
	for i := 0; i < 60; i++ {
		if sw := AddServerSpread(top, src.SplitN("srv", i)); sw < 0 {
			t.Fatalf("step %d: no switch could host a server", i)
		}
		if err := top.Validate(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if free := top.TotalFreePorts(); free > 1 {
			t.Fatalf("step %d: %d dangling ports, want ≤1", i, free)
		}
		added := i + 1
		wantLinks := baseLinks - (added+1)/2
		if diff := top.NumLinks() - wantLinks; diff < -1 || diff > 1 {
			t.Fatalf("step %d: %d links, want %d±1", i, top.NumLinks(), wantLinks)
		}
	}
	if !top.Graph.Connected() {
		t.Fatal("growth disconnected the network")
	}
}

// Growth is a pure function of (topology, source, count): growing in one
// call or in several yields the identical network, because each step's
// randomness is derived by absolute server index.
func TestAddServersSpreadPurity(t *testing.T) {
	a := spreadEven(10, 8, 10, rng.New(3))
	b := a.Clone()
	AddServersSpread(a, 20, rng.New(4))
	AddServersSpread(b, 8, rng.New(4))
	AddServersSpread(b, 12, rng.New(4))
	ae, be := a.Graph.Edges(), b.Graph.Edges()
	if len(ae) != len(be) {
		t.Fatalf("edge counts differ: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
	for i := range a.Servers {
		if a.Servers[i] != b.Servers[i] {
			t.Fatalf("switch %d server counts differ", i)
		}
	}
}

// AddServersSpread reports how many servers fit when the inventory runs
// out, instead of overfilling.
func TestAddServersSpreadStopsWhenFull(t *testing.T) {
	top := spreadEven(4, 4, 4, rng.New(1))
	// 4 switches × 4 ports: capacity 3 servers/switch (one port must
	// remain... actually all 4 can go to servers once links are gone).
	placed := AddServersSpread(top, 100, rng.New(2))
	if placed >= 100 {
		t.Fatalf("placed %d servers on a 16-port inventory", placed)
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
}

// FailSwitches is the deterministic core of FailRandomSwitches: same
// permutation prefix, same wreckage.
func TestFailSwitchesMatchesRandom(t *testing.T) {
	a := Jellyfish(20, 8, 5, rng.New(9))
	b := a.Clone()
	failed := FailRandomSwitches(a, 0.25, rng.New(10))
	perm := rng.New(10).Perm(20)
	FailSwitches(b, perm[:5])
	if len(failed) != 5 {
		t.Fatalf("failed %d switches, want 5", len(failed))
	}
	if a.NumLinks() != b.NumLinks() || a.NumServers() != b.NumServers() {
		t.Fatalf("FailSwitches diverged from FailRandomSwitches: %v vs %v links", a.NumLinks(), b.NumLinks())
	}
	for _, sw := range failed {
		if b.Servers[sw] != 0 || b.Graph.Degree(sw) != 0 {
			t.Fatalf("switch %d not fully failed", sw)
		}
	}
}
