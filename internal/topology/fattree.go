package topology

import (
	"fmt"

	"jellyfish/internal/graph"
)

// FatTree builds the 3-level k-ary fat-tree of Al-Fares et al. [6], the
// paper's primary comparison topology. k must be even. The result has:
//
//	k pods, each with k/2 edge and k/2 aggregation switches;
//	(k/2)² core switches;
//	k³/4 servers (k/2 per edge switch);
//	5k²/4 switches total, all with k ports.
//
// Switch IDs: edge switches first (pod-major), then aggregation (pod-major),
// then core.
func FatTree(k int) *Topology {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topology: fat-tree arity k=%d must be even and >= 2", k))
	}
	half := k / 2
	numEdge := k * half
	numAgg := k * half
	numCore := half * half
	n := numEdge + numAgg + numCore

	t := &Topology{
		Name:    fmt.Sprintf("fattree(k=%d)", k),
		Graph:   graph.New(n),
		Ports:   make([]int, n),
		Servers: make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.Ports[i] = k
	}
	edgeID := func(pod, i int) int { return pod*half + i }
	aggID := func(pod, j int) int { return numEdge + pod*half + j }
	coreID := func(j, c int) int { return numEdge + numAgg + j*half + c }

	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			t.Servers[edgeID(pod, i)] = half
			for j := 0; j < half; j++ {
				t.Graph.AddEdge(edgeID(pod, i), aggID(pod, j))
			}
		}
		for j := 0; j < half; j++ {
			for c := 0; c < half; c++ {
				t.Graph.AddEdge(aggID(pod, j), coreID(j, c))
			}
		}
	}
	return t
}

// FatTreePod returns the pod index of switch id in a k-ary fat-tree, or -1
// for core switches. This is used by the physical-layout experiments that
// place each pod in one container.
func FatTreePod(k, id int) int {
	half := k / 2
	numEdge := k * half
	numAgg := k * half
	switch {
	case id < numEdge:
		return id / half
	case id < numEdge+numAgg:
		return (id - numEdge) / half
	default:
		return -1
	}
}

// FatTreeContainer returns the container index of switch id under the
// paper's massive-scale layout (§6.3): each pod is one container, and the
// (k/2)² core switches are divided equally among the k pods (k/4 cores per
// container).
func FatTreeContainer(k, id int) int {
	if pod := FatTreePod(k, id); pod >= 0 {
		return pod
	}
	numEdge := k * k / 2
	numAgg := k * k / 2
	cid := id - numEdge - numAgg
	coresPerPod := k / 4
	if coresPerPod == 0 {
		coresPerPod = 1
	}
	return (cid / coresPerPod) % k
}

// FatTreeLocalLinkFraction returns the fraction of fat-tree links that stay
// within a pod under the pod-per-container layout: 0.5·(1+1/k) (§6.3).
func FatTreeLocalLinkFraction(k int) float64 {
	return 0.5 * (1 + 1/float64(k))
}
