package topology

import (
	"fmt"
	"sort"

	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
)

// Jellyfish builds RRG(n, k, r): n top-of-rack switches with k ports each,
// r of which connect to other switches and k-r to servers, wired by the
// paper's randomized procedure (§3): repeatedly join uniform-random
// non-adjacent switch pairs with free ports; when stuck with a switch
// holding ≥2 free ports, break a random existing link and splice the
// switch in. The result is connected for all practical (n, r≥3).
func Jellyfish(n, k, r int, src *rng.Source) *Topology {
	if r > k {
		panic(fmt.Sprintf("topology: network degree r=%d exceeds ports k=%d", r, k))
	}
	if r >= n {
		panic(fmt.Sprintf("topology: network degree r=%d requires at least r+1=%d switches, have %d", r, r+1, n))
	}
	t := &Topology{
		Name:    fmt.Sprintf("jellyfish(n=%d,k=%d,r=%d)", n, k, r),
		Graph:   graph.New(n),
		Ports:   make([]int, n),
		Servers: make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.Ports[i] = k
		t.Servers[i] = k - r
	}
	netDegree := make([]int, n)
	for i := range netDegree {
		netDegree[i] = r
	}
	wireRandom(t, netDegree, src)
	return t
}

// JellyfishHeterogeneous builds a Jellyfish network from a heterogeneous
// switch inventory: switch i has ports[i] total ports and attaches
// servers[i] servers, leaving ports[i]-servers[i] network ports.
func JellyfishHeterogeneous(ports, servers []int, src *rng.Source) *Topology {
	n := len(ports)
	if len(servers) != n {
		panic("topology: ports/servers length mismatch")
	}
	t := &Topology{
		Name:    fmt.Sprintf("jellyfish-hetero(n=%d)", n),
		Graph:   graph.New(n),
		Ports:   append([]int(nil), ports...),
		Servers: append([]int(nil), servers...),
	}
	netDegree := make([]int, n)
	for i := range netDegree {
		netDegree[i] = ports[i] - servers[i]
		if netDegree[i] < 0 {
			panic(fmt.Sprintf("topology: switch %d has more servers than ports", i))
		}
	}
	wireRandom(t, netDegree, src)
	return t
}

// wireRandom implements the paper's random wiring over switches whose
// remaining network-port budget is netDegree[i] - currentDegree(i).
func wireRandom(t *Topology, netDegree []int, src *rng.Source) {
	g := t.Graph
	n := g.N()
	free := func(i int) int { return netDegree[i] - g.Degree(i) }

	// Active set: switches with at least one free network port.
	active := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if free(i) > 0 {
			active = append(active, i)
		}
	}
	compact := func() {
		w := 0
		for _, v := range active {
			if free(v) > 0 {
				active[w] = v
				w++
			}
		}
		active = active[:w]
	}

	// Phase 1: random matching of free ports.
	stall := 0
	for len(active) >= 2 {
		u := active[src.Intn(len(active))]
		v := active[src.Intn(len(active))]
		if u == v || g.HasEdge(u, v) || free(u) <= 0 || free(v) <= 0 {
			stall++
			if stall > 50*len(active) {
				if !anyJoinablePair(g, active, free) {
					break
				}
				stall = 0
			}
			continue
		}
		g.AddEdge(u, v)
		stall = 0
		if free(u) == 0 || free(v) == 0 {
			compact()
		}
	}
	compact()

	// Phase 2: splice-in repair for any switch left with ≥2 free ports
	// (§3: remove a random existing link (x,y), add (p,x),(p,y)).
	for _, p := range active {
		guard := 0
		for free(p) >= 2 && g.M() > 0 {
			guard++
			if guard > 100*n {
				break
			}
			e, ok := randomEdge(g, src)
			if !ok {
				break
			}
			if e.U == p || e.V == p || g.HasEdge(p, e.U) || g.HasEdge(p, e.V) {
				continue
			}
			g.RemoveEdge(e.U, e.V)
			g.AddEdge(p, e.U)
			g.AddEdge(p, e.V)
		}
	}
	compact()

	// Phase 3: two switches may each hold one free port while being
	// mutually adjacent (so phase 1 cannot join them and phase 2 does not
	// apply). Splice them across a random existing link: remove (x,y), add
	// (u,x) and (v,y).
	if len(active) == 2 {
		u, v := active[0], active[1]
		guard := 0
		for free(u) == 1 && free(v) == 1 && g.HasEdge(u, v) && g.M() > 0 {
			guard++
			if guard > 100*n {
				break
			}
			e, ok := randomEdge(g, src)
			if !ok {
				break
			}
			x, y := e.U, e.V
			if x == u || x == v || y == u || y == v {
				continue
			}
			if g.HasEdge(u, x) || g.HasEdge(v, y) {
				continue
			}
			g.RemoveEdge(x, y)
			g.AddEdge(u, x)
			g.AddEdge(v, y)
		}
	}
}

// randomEdge samples a uniform-random edge in O(N) time without
// materializing the edge list: pick a random directed arc (vertex weighted
// by degree, then uniform neighbor) and canonicalize.
func randomEdge(g *graph.Graph, src *rng.Source) (graph.Edge, bool) {
	if g.M() == 0 {
		return graph.Edge{}, false
	}
	target := src.Intn(2 * g.M())
	for u := 0; u < g.N(); u++ {
		d := g.Degree(u)
		if target < d {
			v := g.Neighbors(u)[target]
			return graph.Canon(u, v), true
		}
		target -= d
	}
	return graph.Edge{}, false // unreachable
}

// anyJoinablePair scans exhaustively for a pair of distinct non-adjacent
// active switches that both still have free ports.
func anyJoinablePair(g *graph.Graph, active []int, free func(int) int) bool {
	for i, u := range active {
		if free(u) <= 0 {
			continue
		}
		for _, v := range active[i+1:] {
			if free(v) > 0 && !g.HasEdge(u, v) {
				return true
			}
		}
	}
	return false
}

// ExpandJellyfish incorporates newSwitches additional switches, each with k
// ports of which r are network ports, into an existing Jellyfish topology
// using the paper's incremental procedure (§4.2): for each new switch u,
// repeatedly pick a random existing link (v,w) with u adjacent to neither,
// remove it, and add (u,v),(u,w), until u's network ports are (nearly)
// filled. The input topology is modified in place and returned.
func ExpandJellyfish(t *Topology, newSwitches, k, r int, src *rng.Source) *Topology {
	for s := 0; s < newSwitches; s++ {
		expandOne(t, k, r, k-r, src)
	}
	t.Name = fmt.Sprintf("jellyfish-expanded(n=%d)", t.NumSwitches())
	return t
}

// ExpandJellyfishSwitchOnly adds switches that carry no servers (pure
// network capacity expansion, as in the paper's LEGUP comparison).
func ExpandJellyfishSwitchOnly(t *Topology, newSwitches, k int, src *rng.Source) *Topology {
	for s := 0; s < newSwitches; s++ {
		expandOne(t, k, k, 0, src)
	}
	return t
}

func expandOne(t *Topology, k, r, servers int, src *rng.Source) {
	g := t.Graph
	u := g.AddVertex()
	t.Ports = append(t.Ports, k)
	t.Servers = append(t.Servers, servers)

	guard := 0
	for g.Degree(u)+1 < r { // add links two at a time while ≥2 ports free
		guard++
		if guard > 200*(g.N()+1) {
			break
		}
		e, ok := randomEdge(g, src)
		if !ok {
			// Degenerate start: no links to split.
			break
		}
		if e.U == u || e.V == u || g.HasEdge(u, e.U) || g.HasEdge(u, e.V) {
			continue
		}
		g.RemoveEdge(e.U, e.V)
		g.AddEdge(u, e.U)
		g.AddEdge(u, e.V)
		guard = 0
	}
	// A single odd port may remain; the paper permits leaving it free (or
	// matching it to another free port elsewhere — we leave it free).
}

// RemoveRandomLinks deletes a uniform-random fraction frac of the
// switch-switch links, simulating link failures (§4.3). It returns the
// number of links removed. The topology is modified in place.
func RemoveRandomLinks(t *Topology, frac float64, src *rng.Source) int {
	edges := t.Graph.Edges()
	kill := int(frac * float64(len(edges)))
	perm := src.Perm(len(edges))
	for i := 0; i < kill; i++ {
		e := edges[perm[i]]
		t.Graph.RemoveEdge(e.U, e.V)
	}
	return kill
}

// FailRandomSwitches simulates whole-switch failures (§4.3 considers both
// link and node failures): a uniform-random fraction frac of switches lose
// all their network links and their servers drop out of the workload
// (Servers[i] set to 0). Returns the switch IDs failed, sorted.
func FailRandomSwitches(t *Topology, frac float64, src *rng.Source) []int {
	n := t.Graph.N()
	kill := int(frac * float64(n))
	perm := src.Perm(n)
	failed := append([]int(nil), perm[:kill]...)
	FailSwitches(t, failed)
	sort.Ints(failed)
	return failed
}
