package topology

import "testing"

func TestFatTreeShape(t *testing.T) {
	for _, k := range []int{4, 6, 8, 14} {
		ft := FatTree(k)
		if got, want := ft.NumSwitches(), 5*k*k/4; got != want {
			t.Fatalf("k=%d: switches = %d, want %d", k, got, want)
		}
		if got, want := ft.NumServers(), k*k*k/4; got != want {
			t.Fatalf("k=%d: servers = %d, want %d", k, got, want)
		}
		if got, want := ft.NumLinks(), k*k*k/2; got != want {
			t.Fatalf("k=%d: links = %d, want %d", k, got, want)
		}
		if err := ft.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !ft.Graph.Connected() {
			t.Fatalf("k=%d: fat-tree disconnected", k)
		}
	}
}

func TestFatTreePortBudgetExact(t *testing.T) {
	// Every fat-tree switch uses exactly k ports (full port utilization).
	k := 6
	ft := FatTree(k)
	for i := 0; i < ft.NumSwitches(); i++ {
		if ft.FreePorts(i) != 0 {
			t.Fatalf("switch %d has %d free ports, want 0", i, ft.FreePorts(i))
		}
	}
}

func TestFatTreeK14Matches686Servers(t *testing.T) {
	// The paper's packet-level comparison uses the 686-server fat-tree,
	// which is k=14.
	ft := FatTree(14)
	if ft.NumServers() != 686 {
		t.Fatalf("k=14 servers = %d, want 686", ft.NumServers())
	}
	if ft.NumSwitches() != 245 {
		t.Fatalf("k=14 switches = %d, want 245", ft.NumSwitches())
	}
}

func TestFatTreeDiameterIsSix(t *testing.T) {
	// Switch-level diameter 4 = server-level diameter 6 (Fig. 1).
	ft := FatTree(4)
	if d := ft.Graph.Diameter(); d != 4 {
		t.Fatalf("switch diameter = %d, want 4", d)
	}
}

func TestFatTreeServerPlacement(t *testing.T) {
	k := 4
	ft := FatTree(k)
	// Only edge switches (first k²/2 IDs) carry servers.
	numEdge := k * k / 2
	for i := 0; i < ft.NumSwitches(); i++ {
		want := 0
		if i < numEdge {
			want = k / 2
		}
		if ft.Servers[i] != want {
			t.Fatalf("switch %d servers = %d, want %d", i, ft.Servers[i], want)
		}
	}
}

func TestFatTreePanicsOnOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FatTree(5) did not panic")
		}
	}()
	FatTree(5)
}

func TestFatTreePod(t *testing.T) {
	k := 4
	ft := FatTree(k)
	numEdge := k * k / 2
	numAgg := k * k / 2
	for id := 0; id < ft.NumSwitches(); id++ {
		pod := FatTreePod(k, id)
		switch {
		case id < numEdge:
			if pod != id/(k/2) {
				t.Fatalf("edge %d pod = %d", id, pod)
			}
		case id < numEdge+numAgg:
			if pod != (id-numEdge)/(k/2) {
				t.Fatalf("agg %d pod = %d", id, pod)
			}
		default:
			if pod != -1 {
				t.Fatalf("core %d pod = %d, want -1", id, pod)
			}
		}
	}
}

func TestFatTreeLocalLinkFraction(t *testing.T) {
	// §6.3 gives 0.5(1+1/k) under the pod-per-container layout with core
	// switches divided equally among pods; cross-check for k=4.
	k := 4
	ft := FatTree(k)
	local := 0
	for _, e := range ft.Graph.Edges() {
		if FatTreeContainer(k, e.U) == FatTreeContainer(k, e.V) {
			local++
		}
	}
	got := float64(local) / float64(ft.NumLinks())
	want := FatTreeLocalLinkFraction(k)
	if got != want {
		t.Fatalf("local fraction = %v, formula says %v", got, want)
	}
}

func TestFatTreeContainerCoreSpread(t *testing.T) {
	k := 8
	ft := FatTree(k)
	counts := make([]int, k)
	numEdge, numAgg := k*k/2, k*k/2
	for id := numEdge + numAgg; id < ft.NumSwitches(); id++ {
		c := FatTreeContainer(k, id)
		if c < 0 || c >= k {
			t.Fatalf("core %d container = %d out of range", id, c)
		}
		counts[c]++
	}
	for pod, c := range counts {
		if c != k/4 {
			t.Fatalf("pod %d has %d cores, want %d", pod, c, k/4)
		}
	}
}
