package topology

import (
	"fmt"
	"math"

	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
)

// The paper proposes the best-known degree-diameter graphs [12] as
// bandwidth-efficiency benchmarks (§4.1, Fig. 3). The exact record graphs
// are not reconstructible from the paper; per DESIGN.md §8 we provide the
// classical optimal constructions where they exist (Petersen,
// Hoffman–Singleton) and a simulated-annealing path-length optimizer for
// the other (N, degree) cells — a "carefully optimized rigid graph" serving
// the same benchmark role.

// Petersen returns the Petersen graph: 10 vertices, 3-regular, diameter 2 —
// the optimal (degree 3, diameter 2) Moore graph.
func Petersen() *graph.Graph {
	g := graph.New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)       // outer pentagon
		g.AddEdge(5+i, 5+((i+2)%5)) // inner pentagram
		g.AddEdge(i, 5+i)           // spokes
	}
	return g
}

// HoffmanSingleton returns the Hoffman–Singleton graph: 50 vertices,
// 7-regular, diameter 2 — the optimal (degree 7, diameter 2) Moore graph,
// and exactly the benchmark used for the paper's (50, 11, 7) data point.
// Construction: five pentagons P_h and five pentagrams Q_i; vertex j of
// P_h is joined to vertex (h·i + j) mod 5 of Q_i.
func HoffmanSingleton() *graph.Graph {
	g := graph.New(50)
	p := func(h, j int) int { return h*5 + j }      // pentagons: 0..24
	q := func(i, j int) int { return 25 + i*5 + j } // pentagrams: 25..49
	for h := 0; h < 5; h++ {
		for j := 0; j < 5; j++ {
			g.AddEdge(p(h, j), p(h, (j+1)%5)) // pentagon edges
			g.AddEdge(q(h, j), q(h, (j+2)%5)) // pentagram edges
		}
	}
	for h := 0; h < 5; h++ {
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				g.AddEdge(p(h, j), q(i, (h*i+j)%5))
			}
		}
	}
	return g
}

// OptimizedRegularGraph searches for an r-regular graph on n vertices with
// minimal total pairwise distance (equivalently, minimal mean path length)
// using simulated annealing over 2-opt edge swaps, starting from a random
// regular graph. iters controls search effort; 0 selects a default scaled
// to the graph size.
func OptimizedRegularGraph(n, r, iters int, src *rng.Source) *graph.Graph {
	t := Jellyfish(n, r, r, src.Split("seed-graph"))
	g := t.Graph
	if iters <= 0 {
		// Full APSP per candidate move costs O(n·m); 2000 sweeps keeps the
		// optimizer under ~1s for the paper's Fig. 3 sizes while swapping
		// every edge a few times on average.
		iters = 2000
		if 10*n > iters {
			iters = 10 * n
		}
	}
	cur := float64(totalDistance(g))
	temp0 := cur * 0.001
	for it := 0; it < iters; it++ {
		e1, ok1 := randomEdge(g, src)
		e2, ok2 := randomEdge(g, src)
		if !ok1 || !ok2 {
			break
		}
		a, b, c, d := e1.U, e1.V, e2.U, e2.V
		// 2-opt rewiring: (a,b),(c,d) → (a,c),(b,d), preserving regularity.
		if a == c || a == d || b == c || b == d {
			continue
		}
		if g.HasEdge(a, c) || g.HasEdge(b, d) {
			continue
		}
		g.RemoveEdge(a, b)
		g.RemoveEdge(c, d)
		g.AddEdge(a, c)
		g.AddEdge(b, d)
		if !g.Connected() {
			revert(g, a, b, c, d)
			continue
		}
		next := float64(totalDistance(g))
		temp := temp0 * (1 - float64(it)/float64(iters))
		if next <= cur || (temp > 0 && src.Float64() < math.Exp((cur-next)/temp)) {
			cur = next
			continue
		}
		revert(g, a, b, c, d)
	}
	return g
}

func revert(g *graph.Graph, a, b, c, d int) {
	g.RemoveEdge(a, c)
	g.RemoveEdge(b, d)
	g.AddEdge(a, b)
	g.AddEdge(c, d)
}

func totalDistance(g *graph.Graph) int64 {
	s := g.AllPairsStats()
	var sum int64
	for d, cnt := range s.Hist {
		sum += int64(d) * cnt
	}
	if !s.Connected {
		return math.MaxInt64 / 4
	}
	return sum
}

// BestKnownDegreeDiameter returns a benchmark graph on n vertices with
// network degree r: the exact optimal construction when one is known
// (Petersen for (10,3), Hoffman–Singleton for (50,7)), otherwise a
// simulated-annealing optimized regular graph.
func BestKnownDegreeDiameter(n, r int, src *rng.Source) *graph.Graph {
	switch {
	case n == 10 && r == 3:
		return Petersen()
	case n == 50 && r == 7:
		return HoffmanSingleton()
	default:
		return OptimizedRegularGraph(n, r, 0, src)
	}
}

// DegreeDiameterTopology attaches serversPerSwitch servers to every switch
// of a benchmark degree-diameter graph, with ports sized exactly as the
// paper's Fig. 3 configurations (ports = network degree + servers).
func DegreeDiameterTopology(n, ports, netDegree int, src *rng.Source) *Topology {
	if ports < netDegree {
		panic(fmt.Sprintf("topology: ports %d < network degree %d", ports, netDegree))
	}
	g := BestKnownDegreeDiameter(n, netDegree, src)
	nn := g.N()
	t := &Topology{
		Name:    fmt.Sprintf("degree-diameter(n=%d,k=%d,r=%d)", n, ports, netDegree),
		Graph:   g,
		Ports:   make([]int, nn),
		Servers: make([]int, nn),
	}
	for i := 0; i < nn; i++ {
		t.Ports[i] = ports
		t.Servers[i] = ports - netDegree
	}
	return t
}
