package topology

import (
	"bytes"
	"testing"

	"jellyfish/internal/rng"
)

// FuzzReadBlueprint drives the decoder with arbitrary bytes: it must never
// panic, and anything it accepts must be a valid topology that re-encodes
// to a decodable, structurally identical blueprint.
func FuzzReadBlueprint(f *testing.F) {
	// Seed corpus: real blueprints of each constructor family plus the
	// rejection cases the unit tests pin.
	for _, top := range []*Topology{
		Jellyfish(12, 6, 4, rng.New(1)),
		JellyfishHeterogeneous([]int{8, 8, 16, 16}, []int{2, 2, 4, 4}, rng.New(2)),
		FatTree(4),
	} {
		var buf bytes.Buffer
		if err := top.WriteBlueprint(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	for _, s := range []string{
		"{",
		`{"ports":[4,4],"servers":[1],"links":[]}`,
		`{"ports":[4,4],"servers":[1,1],"links":[[0,5]]}`,
		`{"ports":[4,4],"servers":[1,1],"links":[[1,1]]}`,
		`{"ports":[4,4],"servers":[1,1],"links":[[0,1],[1,0]]}`,
		`{"ports":[1,4,4],"servers":[1,1,1],"links":[[0,1],[0,2]]}`,
		`{"name":"x","ports":[-1],"servers":[-1],"links":[]}`,
		`{"ports":[],"servers":[],"links":[[0,0]]}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		top, err := ReadBlueprint(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := top.Validate(); verr != nil {
			t.Fatalf("decoder accepted an invalid topology: %v", verr)
		}
		var buf bytes.Buffer
		if werr := top.WriteBlueprint(&buf); werr != nil {
			t.Fatalf("accepted topology failed to re-encode: %v", werr)
		}
		again, rerr := ReadBlueprint(&buf)
		if rerr != nil {
			t.Fatalf("re-encoded blueprint failed to decode: %v", rerr)
		}
		if again.NumSwitches() != top.NumSwitches() || again.NumLinks() != top.NumLinks() ||
			again.NumServers() != top.NumServers() {
			t.Fatalf("round-trip changed dims: %s vs %s", again, top)
		}
		if PlanRewiring(top, again).Moves() != 0 {
			t.Fatal("round-trip changed the link set")
		}
	})
}
