package topology

import (
	"slices"
	"testing"

	"jellyfish/internal/rng"
)

func TestCompactRunsRoundTrip(t *testing.T) {
	top := JellyfishHeterogeneous(
		[]int{24, 24, 24, 48, 48, 64, 64, 64, 64, 24},
		[]int{8, 8, 8, 16, 16, 0, 0, 0, 0, 8},
		rng.New(3),
	)
	c := top.Compact()

	expand := func(runs []Run) []int {
		var out []int
		for _, r := range runs {
			for i := int32(0); i < r.Count; i++ {
				out = append(out, int(r.Value))
			}
		}
		return out
	}
	if got := expand(c.Servers); !slices.Equal(got, top.Servers) {
		t.Errorf("Servers runs expand to %v, want %v", got, top.Servers)
	}
	if got := expand(c.Ports); !slices.Equal(got, top.Ports) {
		t.Errorf("Ports runs expand to %v, want %v", got, top.Ports)
	}
	// Runs must be maximal: no two adjacent runs share a value.
	for _, runs := range [][]Run{c.Servers, c.Ports} {
		for i := 1; i < len(runs); i++ {
			if runs[i].Value == runs[i-1].Value {
				t.Errorf("adjacent runs %d and %d share value %d", i-1, i, runs[i].Value)
			}
		}
	}
}

func TestCompactCounters(t *testing.T) {
	top := Jellyfish(30, 8, 5, rng.New(9))
	c := top.Compact()
	if c.NumSwitches() != top.NumSwitches() {
		t.Errorf("NumSwitches %d, want %d", c.NumSwitches(), top.NumSwitches())
	}
	if c.NumServers() != top.NumServers() {
		t.Errorf("NumServers %d, want %d", c.NumServers(), top.NumServers())
	}
	if c.NumLinks() != top.Graph.M() {
		t.Errorf("NumLinks %d, want %d", c.NumLinks(), top.Graph.M())
	}
	for sw := 0; sw < top.NumSwitches(); sw++ {
		if got := c.ServersAt(sw); got != top.Servers[sw] {
			t.Errorf("ServersAt(%d) = %d, want %d", sw, got, top.Servers[sw])
		}
	}
	if got := c.ServersAt(top.NumSwitches() + 5); got != 0 {
		t.Errorf("ServersAt past end = %d, want 0", got)
	}
}

func TestCompactAppendServerSwitches(t *testing.T) {
	top := Jellyfish(25, 10, 6, rng.New(4))
	c := top.Compact()
	want := top.ServerSwitches()
	if got := c.AppendServerSwitches(nil); !slices.Equal(got, want) {
		t.Errorf("AppendServerSwitches(nil) = %v, want %v", got, want)
	}
	// Appends after existing content without clobbering it.
	buf := []int{-1, -2}
	got := c.AppendServerSwitches(buf)
	if got[0] != -1 || got[1] != -2 || !slices.Equal(got[2:], want) {
		t.Errorf("AppendServerSwitches(buf) clobbered prefix or diverged")
	}
}

func TestCompactIsSnapshot(t *testing.T) {
	top := Jellyfish(20, 8, 5, rng.New(7))
	c := top.Compact()
	n, m := c.NumSwitches(), c.NumLinks()
	servers0 := c.AppendServerSwitches(nil)

	// Mutate the source topology: the snapshot must not move.
	top.Servers[0] += 3
	var u, v int
	for u = 0; u < top.NumSwitches() && v == 0; u++ {
		for w := u + 1; w < top.NumSwitches(); w++ {
			if !top.Graph.HasEdge(u, w) {
				v = w
				break
			}
		}
	}
	top.Graph.AddEdge(u-1, v)
	if c.NumSwitches() != n || c.NumLinks() != m {
		t.Errorf("snapshot dims moved to (%d, %d) after mutation", c.NumSwitches(), c.NumLinks())
	}
	if got := c.AppendServerSwitches(nil); !slices.Equal(got, servers0) {
		t.Errorf("snapshot server map moved after mutation")
	}
}
