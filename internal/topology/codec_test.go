package topology

import (
	"bytes"
	"strings"
	"testing"

	"jellyfish/internal/rng"
)

func TestBlueprintRoundTrip(t *testing.T) {
	orig := Jellyfish(25, 10, 6, rng.New(1))
	var buf bytes.Buffer
	if err := orig.WriteBlueprint(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBlueprint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.NumServers() != orig.NumServers() {
		t.Fatalf("metadata mismatch: %s vs %s", got, orig)
	}
	eo, eg := orig.Graph.Edges(), got.Graph.Edges()
	if len(eo) != len(eg) {
		t.Fatalf("edge counts differ: %d vs %d", len(eo), len(eg))
	}
	for i := range eo {
		if eo[i] != eg[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

// The megascale codec bar: a 10k-switch blueprint survives a full
// write/read/validate/diff cycle. Gated out of -short; CI runs it in the
// scale-smoke job.
func TestBlueprintRoundTrip10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k round-trip skipped in -short")
	}
	src := rng.New(21)
	orig := Jellyfish(10000, 12, 9, src)
	var buf bytes.Buffer
	if err := orig.WriteBlueprint(&buf); err != nil {
		t.Fatal(err)
	}
	t.Logf("10k-switch blueprint: %d bytes", buf.Len())
	got, err := ReadBlueprint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.NumSwitches() != orig.NumSwitches() || got.NumServers() != orig.NumServers() ||
		got.NumLinks() != orig.NumLinks() {
		t.Fatalf("dims differ: %s vs %s", got, orig)
	}
	eo, eg := orig.Graph.Edges(), got.Graph.Edges()
	for i := range eo {
		if eo[i] != eg[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, eo[i], eg[i])
		}
	}
	// The decoded copy is diff-identical to the original, and a one-switch
	// expansion of it yields a bounded rewiring plan, as at small scale.
	if moves := PlanRewiring(orig, got).Moves(); moves != 0 {
		t.Fatalf("round-trip diff has %d moves", moves)
	}
	after := got.Clone()
	ExpandJellyfish(after, 1, 12, 9, src.Split("grow"))
	if plan := PlanRewiring(got, after); len(plan.Add) > 9 || len(plan.Remove) > 4 {
		t.Fatalf("10k expansion plan out of bounds: %d added, %d removed", len(plan.Add), len(plan.Remove))
	}
}

func TestReadBlueprintRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"length":         `{"ports":[4,4],"servers":[1],"links":[]}`,
		"out of range":   `{"ports":[4,4],"servers":[1,1],"links":[[0,5]]}`,
		"self loop":      `{"ports":[4,4],"servers":[1,1],"links":[[1,1]]}`,
		"duplicate link": `{"ports":[4,4],"servers":[1,1],"links":[[0,1],[1,0]]}`,
		"port overflow":  `{"ports":[1,4,4],"servers":[1,1,1],"links":[[0,1],[0,2]]}`,
	}
	for name, in := range cases {
		if _, err := ReadBlueprint(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestPlanRewiringExpansion(t *testing.T) {
	src := rng.New(3)
	before := Jellyfish(20, 12, 6, src)
	after := before.Clone()
	ExpandJellyfish(after, 1, 12, 6, src.Split("grow"))

	plan := PlanRewiring(before, after)
	// One new switch with r=6: three splices = 3 removed, 6 added cables.
	if len(plan.Add) < 4 || len(plan.Add) > 6 {
		t.Fatalf("added cables = %d, want 4-6", len(plan.Add))
	}
	if len(plan.Remove)*2 != len(plan.Add) {
		t.Fatalf("remove/add mismatch: %d removed, %d added", len(plan.Remove), len(plan.Add))
	}
	// Every added cable touches the new switch.
	for _, e := range plan.Add {
		if e.U != 20 && e.V != 20 {
			t.Fatalf("added cable %v does not touch new switch", e)
		}
	}
	if plan.Moves() != len(plan.Add)+len(plan.Remove) {
		t.Fatal("Moves() wrong")
	}
}

func TestPlanRewiringIdentical(t *testing.T) {
	top := Jellyfish(15, 8, 4, rng.New(5))
	plan := PlanRewiring(top, top)
	if plan.Moves() != 0 {
		t.Fatalf("self-diff has %d moves", plan.Moves())
	}
}

// §4.2's promise: expansion rewiring is limited to the ports being added.
func TestExpansionRewiringBounded(t *testing.T) {
	src := rng.New(7)
	before := Jellyfish(50, 24, 12, src)
	after := before.Clone()
	const added = 5
	ExpandJellyfish(after, added, 24, 12, src.Split("grow"))
	plan := PlanRewiring(before, after)
	// Each new switch adds ≤ r cables and removes ≤ r/2.
	if len(plan.Add) > added*12 {
		t.Fatalf("added %d cables for %d switches of degree 12", len(plan.Add), added)
	}
	if len(plan.Remove) > added*6 {
		t.Fatalf("removed %d cables, want ≤ %d", len(plan.Remove), added*6)
	}
}
