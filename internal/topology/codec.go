package topology

import (
	"encoding/json"
	"fmt"
	"io"

	"jellyfish/internal/graph"
)

// blueprint is the stable on-disk representation of a Topology: the
// construction blueprint handed to cabling crews (§6.1 envisions exactly
// this artifact being generated automatically and wired by hand).
type blueprint struct {
	Name    string   `json:"name"`
	Ports   []int    `json:"ports"`
	Servers []int    `json:"servers"`
	Links   [][2]int `json:"links"`
}

// WriteBlueprint serializes the topology as JSON.
func (t *Topology) WriteBlueprint(w io.Writer) error {
	bp := blueprint{
		Name:    t.Name,
		Ports:   t.Ports,
		Servers: t.Servers,
		Links:   make([][2]int, 0, t.Graph.M()),
	}
	for _, e := range t.Graph.Edges() {
		bp.Links = append(bp.Links, [2]int{e.U, e.V})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(bp)
}

// ReadBlueprint deserializes a topology written by WriteBlueprint,
// validating structural invariants (port budgets, simple graph, ID range).
func ReadBlueprint(r io.Reader) (*Topology, error) {
	var bp blueprint
	if err := json.NewDecoder(r).Decode(&bp); err != nil {
		return nil, fmt.Errorf("topology: decoding blueprint: %w", err)
	}
	n := len(bp.Ports)
	if len(bp.Servers) != n {
		return nil, fmt.Errorf("topology: blueprint has %d port entries but %d server entries", n, len(bp.Servers))
	}
	t := &Topology{
		Name:    bp.Name,
		Graph:   graph.New(n),
		Ports:   bp.Ports,
		Servers: bp.Servers,
	}
	for i, l := range bp.Links {
		u, v := l[0], l[1]
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("topology: blueprint link %d (%d,%d) out of range [0,%d)", i, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("topology: blueprint link %d is a self-loop at %d", i, u)
		}
		if !t.Graph.AddEdge(u, v) {
			return nil, fmt.Errorf("topology: blueprint link %d (%d,%d) duplicated", i, u, v)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// RewirePlan lists the physical cabling operations turning one topology
// into another: §4.2's expansion procedure promises rewiring limited to
// the ports being added, and §6.2 notes the moves "can be automatically
// identified" — this is that identification.
type RewirePlan struct {
	Remove []graph.Edge // cables present before but not after
	Add    []graph.Edge // cables present after but not before
}

// Moves returns the total number of cable operations.
func (p RewirePlan) Moves() int { return len(p.Remove) + len(p.Add) }

// PlanRewiring diffs two topologies' link sets. The switch ID spaces must
// be consistent (after may have more switches than before).
func PlanRewiring(before, after *Topology) RewirePlan {
	beforeSet := map[graph.Edge]bool{}
	for _, e := range before.Graph.Edges() {
		beforeSet[e] = true
	}
	var plan RewirePlan
	afterSet := map[graph.Edge]bool{}
	for _, e := range after.Graph.Edges() {
		afterSet[e] = true
		if !beforeSet[e] {
			plan.Add = append(plan.Add, e)
		}
	}
	for _, e := range before.Graph.Edges() {
		if !afterSet[e] {
			plan.Remove = append(plan.Remove, e)
		}
	}
	return plan
}
