package topology

import (
	"testing"

	"jellyfish/internal/rng"
)

func TestSWDCRingShape(t *testing.T) {
	top := SWDCRing(100, 6, 1, rng.New(1))
	if top.NumSwitches() != 100 || top.NumServers() != 100 {
		t.Fatalf("got %d switches, %d servers", top.NumSwitches(), top.NumServers())
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// Ring lattice present.
	for i := 0; i < 100; i++ {
		if !top.Graph.HasEdge(i, (i+1)%100) {
			t.Fatalf("missing ring edge %d-%d", i, (i+1)%100)
		}
	}
	if !top.Graph.Connected() {
		t.Fatal("ring SWDC disconnected")
	}
	// Degree-6 regular up to one odd port.
	deficit := 0
	for i := 0; i < 100; i++ {
		deficit += 6 - top.Graph.Degree(i)
	}
	if deficit > 1 {
		t.Fatalf("degree deficit = %d, want <= 1", deficit)
	}
}

func TestSWDC2DTorusShape(t *testing.T) {
	top := SWDC2DTorus(100, 6, 1, rng.New(2)) // 10x10 grid
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each switch has 4 torus links; verify switch 0's lattice links exist.
	g := top.Graph
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 9) || !g.HasEdge(0, 10) || !g.HasEdge(0, 90) {
		t.Fatalf("switch 0 lattice links missing: neighbors %v", g.Neighbors(0))
	}
	if !g.Connected() {
		t.Fatal("2D torus SWDC disconnected")
	}
	if g.MinDegree() < 5 {
		t.Fatalf("min degree = %d, want >= 5", g.MinDegree())
	}
}

func TestSWDC3DHexTorusShape(t *testing.T) {
	// 450 nodes: the paper's exact size for this variant.
	top := SWDC3DHexTorus(450, 6, 1, rng.New(3))
	if top.NumSwitches() != 450 {
		t.Fatalf("switches = %d, want 450", top.NumSwitches())
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if !top.Graph.Connected() {
		t.Fatal("hex torus SWDC disconnected")
	}
	// Lattice contributes 5 links per switch; shortcuts fill to 6 (±1 odd).
	if top.Graph.MinDegree() < 5 {
		t.Fatalf("min degree = %d, want >= 5", top.Graph.MinDegree())
	}
	if top.Graph.MaxDegree() > 6 {
		t.Fatalf("max degree = %d, want <= 6", top.Graph.MaxDegree())
	}
}

func TestSWDCOversubscribed(t *testing.T) {
	// Fig. 4 attaches 2 servers per switch.
	top := SWDCRing(484, 6, 2, rng.New(4))
	if top.NumServers() != 968 {
		t.Fatalf("servers = %d, want 968", top.NumServers())
	}
}

func TestSWDCPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"ring-deg1":  func() { SWDCRing(10, 1, 1, rng.New(1)) },
		"torus-deg3": func() { SWDC2DTorus(16, 3, 1, rng.New(1)) },
		"hex-deg4":   func() { SWDC3DHexTorus(48, 4, 1, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSquarestFactors(t *testing.T) {
	for _, tc := range []struct{ n, a, b int }{
		{100, 10, 10}, {484, 22, 22}, {12, 3, 4}, {7, 1, 7},
	} {
		a, b := squarestFactors(tc.n)
		if a != tc.a || b != tc.b {
			t.Errorf("squarestFactors(%d) = %d,%d, want %d,%d", tc.n, a, b, tc.a, tc.b)
		}
	}
}

func TestHexFactors(t *testing.T) {
	a, b, z := hexFactors(450)
	if a == 0 || a*b*z != 450 || a%2 != 0 || z < 3 {
		t.Fatalf("hexFactors(450) = %d,%d,%d", a, b, z)
	}
}

// Fig. 4's headline: Jellyfish beats all three SWDC variants at equal
// equipment. Verify the path-length mechanism behind it at reduced size:
// jellyfish mean path must be below every SWDC lattice variant.
func TestJellyfishBeatsSWDCOnPathLength(t *testing.T) {
	n, deg := 100, 6
	jf := Jellyfish(n, deg+1, deg, rng.New(9))
	ring := SWDCRing(n, deg, 1, rng.New(9))
	torus := SWDC2DTorus(n, deg, 1, rng.New(9))
	jm := jf.Graph.AllPairsStats().Mean
	for _, other := range []*Topology{ring, torus} {
		om := other.Graph.AllPairsStats().Mean
		if jm >= om {
			t.Fatalf("jellyfish mean %v not below %s mean %v", jm, other.Name, om)
		}
	}
}
