package experiments

import (
	"bytes"
	"testing"
)

// renderWith runs the experiment with the given worker count and returns
// the fully rendered table, so the comparison covers every formatted cell
// and note.
func renderWith(t *testing.T, id string, workers int) string {
	t.Helper()
	run := Lookup(id)
	if run == nil {
		t.Fatalf("unknown experiment %q", id)
	}
	var buf bytes.Buffer
	run(Options{Seed: 42, Quick: true, Workers: workers}).Fprint(&buf)
	return buf.String()
}

// The tentpole guarantee: identical Seed yields byte-identical tables
// regardless of worker count. The chosen experiments cover all three
// concurrent layers — fig10 drives the batched MCF solver plus kSP
// routing and the flow simulator, fig9 drives the ECMP/kSP route-table
// fan-out, and table1 drives the per-trial experiment fan-out.
func TestWorkerCountDeterminism(t *testing.T) {
	for _, id := range []string{"fig10", "fig9", "table1"} {
		serial := renderWith(t, id, 1)
		for _, w := range []int{4, 8} {
			if got := renderWith(t, id, w); got != serial {
				t.Errorf("%s: Workers=%d output differs from Workers=1\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
					id, w, serial, w, got)
			}
		}
	}
}

// Options.Workers=0 must behave like "all cores", not "no workers".
func TestWorkersZeroMeansAllCores(t *testing.T) {
	if got := renderWith(t, "fig9", 0); got != renderWith(t, "fig9", 1) {
		t.Fatal("Workers=0 output differs from serial output")
	}
}
