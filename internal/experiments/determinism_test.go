package experiments

import (
	"bytes"
	"testing"

	"jellyfish/internal/flowsim"
	"jellyfish/internal/rng"
)

// renderWith runs the experiment with the given worker count and returns
// the fully rendered table, so the comparison covers every formatted cell
// and note.
func renderWith(t *testing.T, id string, workers int) string {
	t.Helper()
	run := Lookup(id)
	if run == nil {
		t.Fatalf("unknown experiment %q", id)
	}
	var buf bytes.Buffer
	run(Options{Seed: 42, Quick: true, Workers: workers}).Fprint(&buf)
	return buf.String()
}

// The tentpole guarantee: identical Seed yields byte-identical tables
// regardless of worker count. The chosen experiments cover all three
// concurrent layers — fig10 drives the batched MCF solver plus kSP
// routing and the flow simulator, fig9 drives the ECMP/kSP route-table
// fan-out, and table1 drives the per-trial experiment fan-out over
// shared compiled transport instances (per-worker Sim scratch + one
// routing.Compiled) — plus ablation-hotspot, whose per-trial warm-start
// chains must also be scheduling-independent. fig11 — the family-probing
// transport search with per-worker Sims carried across probes — rides
// along outside -short (it is the heaviest of the set).
func TestWorkerCountDeterminism(t *testing.T) {
	ids := []string{"fig10", "fig9", "table1", "ablation-hotspot"}
	if !testing.Short() {
		ids = append(ids, "fig11")
	}
	for _, id := range ids {
		serial := renderWith(t, id, 1)
		for _, w := range []int{4, 8} {
			if got := renderWith(t, id, w); got != serial {
				t.Errorf("%s: Workers=%d output differs from Workers=1\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
					id, w, serial, w, got)
			}
		}
	}
}

// Compiled-instance reuse must be invisible in results: one trial
// computed through a shared transportKit (memoized routing + per-worker
// Sim scratch) must equal the one-shot simMean bit for bit, for every
// scheme and protocol, including after the kit has served other work.
func TestTransportKitMatchesOneShot(t *testing.T) {
	src := rng.New(77).Split("kit-test")
	top := spread(40, 10, 90, src.Split("topo"))
	kit := newTransportKit(top, 2)
	for round := 0; round < 2; round++ {
		for _, scheme := range []string{"ecmp8", "ecmp64", "ksp8"} {
			for _, proto := range []flowsim.Protocol{flowsim.TCP1, flowsim.TCP8, flowsim.MPTCP8} {
				for trial := 0; trial < 2; trial++ {
					tsrc := src.SplitN(scheme+proto.String(), trial)
					want := simMean(top, scheme, proto, tsrc, 1)
					got := kit.simMean(round%2, scheme, proto, tsrc)
					if got != want {
						t.Fatalf("round %d %s/%v trial %d: kit %v != one-shot %v", round, scheme, proto, trial, got, want)
					}
				}
			}
		}
	}
}

// Options.Workers=0 must behave like "all cores", not "no workers".
func TestWorkersZeroMeansAllCores(t *testing.T) {
	if got := renderWith(t, "fig9", 0); got != renderWith(t, "fig9", 1) {
		t.Fatal("Workers=0 output differs from serial output")
	}
}

// The warm-start A/B guarantee (the RNG-reseeding audit's regression
// test): Options.ColdStart may change solver seeding only — never which
// topologies are built, which switches fail, or which traffic is drawn.
// The switch-failure sweep exposes its instances through solver-
// independent table columns (surviving server counts), which must be
// byte-identical across the flag; throughputs may differ only within the
// solver's certificate tolerance.
func TestColdStartPreservesRandomStreams(t *testing.T) {
	render := func(cold bool) *Table {
		return AblationSwitchFailures(Options{Seed: 42, Quick: true, Workers: 1, ColdStart: cold})
	}
	warm, cold := render(false), render(true)
	if len(warm.Rows) != len(cold.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(warm.Rows), len(cold.Rows))
	}
	for i := range warm.Rows {
		// Columns: fail_frac, surviving_servers, throughput.
		if warm.Rows[i][0] != cold.Rows[i][0] || warm.Rows[i][1] != cold.Rows[i][1] {
			t.Fatalf("row %d instance columns diverged: warm %v vs cold %v — ColdStart changed a random stream", i, warm.Rows[i], cold.Rows[i])
		}
		w := parseFloat(t, warm.Rows[i][2])
		c := parseFloat(t, cold.Rows[i][2])
		lo, hi := w, c
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 0 && (hi-lo)/hi > 0.12 {
			t.Fatalf("row %d throughput %v (warm) vs %v (cold) beyond solver tolerance", i, w, c)
		}
	}
}
