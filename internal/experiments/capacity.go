package experiments

import (
	"fmt"

	"jellyfish/internal/bisection"
	"jellyfish/internal/capsearch"
	"jellyfish/internal/mcf"
	"jellyfish/internal/metrics"
	"jellyfish/internal/parallel"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
	"jellyfish/internal/traffic"
)

// mcfThroughput evaluates normalized optimal-routing throughput of a
// topology under one random permutation.
func mcfThroughput(t *topology.Topology, src *rng.Source, workers int) float64 {
	pat := traffic.RandomPermutation(t.ServerSwitches(), src)
	res := mcf.MaxConcurrentFlow(t.Graph, pat.Commodities(), mcf.Options{Workers: workers})
	return metrics.Clamp01(res.Lambda)
}

// meanMCFThroughput averages mcfThroughput over trials, fanning the
// independent trials out over workers goroutines. Each trial draws from
// its own index-derived stream and results are summed in trial order, so
// the mean is bit-identical for every worker count.
func meanMCFThroughput(t *topology.Topology, src *rng.Source, trials, workers int) float64 {
	return parallel.SumFloat64(workers, trials, func(i int) float64 {
		return mcfThroughput(t, src.SplitN("trial", i), 1)
	}) / float64(trials)
}

// fullThroughputSlack absorbs the flow solver's approximation tolerance
// in every "supports full rate" test (λ ≥ 1−slack accepts).
const fullThroughputSlack = 0.03

// spread builds a Jellyfish with servers spread evenly over switches.
func spread(switches, ports, servers int, src *rng.Source) *topology.Topology {
	portsPer := make([]int, switches)
	serversPer := make([]int, switches)
	base, extra := servers/switches, servers%switches
	for i := range portsPer {
		portsPer[i] = ports
		serversPer[i] = base
		if i < extra {
			serversPer[i]++
		}
	}
	return topology.JellyfishHeterogeneous(portsPer, serversPer, src)
}

// maxServersFullCapacity binary-searches the Fig. 2(c)/Fig. 11 quantity
// with the given feasibility check.
func maxServersFullCapacity(lo, hi int, feasible func(servers int) bool) int {
	if !feasible(lo) {
		return 0
	}
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Fig1cPathLengthCDF reproduces Fig. 1(c): the server-pair path length
// distribution of a 686-server Jellyfish vs the same-equipment fat-tree.
// Path lengths are between ToR switches (server hops add 2).
func Fig1cPathLengthCDF(opt Options) *Table {
	k := 14
	if opt.Quick {
		k = 8
	}
	src := rng.New(opt.Seed).Split("fig1c")
	ft := topology.FatTree(k)
	servers := ft.NumServers()
	switches := ft.NumSwitches()
	trials := opt.trials(10)

	// Jellyfish from identical equipment carrying the same server count.
	// Trials are independent builds; merge in trial order afterwards.
	type trialStats struct {
		cdf  []float64
		diam int
	}
	perTrial := parallel.MapSeeded(opt.workers(), src, "jf", trials, func(i int, tsrc *rng.Source) trialStats {
		jf := spread(switches, k, servers, tsrc)
		stats := jf.SwitchPathStats()
		return trialStats{cdf: stats.CDF(), diam: stats.Diameter}
	})
	jfCDF := make([]float64, 0)
	var jfDiam int
	for _, ts := range perTrial {
		for d := range ts.cdf {
			for d >= len(jfCDF) {
				jfCDF = append(jfCDF, 0)
			}
			jfCDF[d] += ts.cdf[d] / float64(trials)
		}
		if ts.diam > jfDiam {
			jfDiam = ts.diam
		}
	}
	ftStats := ft.SwitchPathStats()
	ftCDF := ftStats.CDF()

	t := &Table{
		ID:      "fig1c",
		Title:   fmt.Sprintf("path length CDF, %d-server Jellyfish vs fat-tree(k=%d), switch hops", servers, k),
		Columns: []string{"hops", "jellyfish_cdf", "fattree_cdf"},
	}
	maxD := len(jfCDF)
	if len(ftCDF) > maxD {
		maxD = len(ftCDF)
	}
	at := func(cdf []float64, d int) float64 {
		if d < len(cdf) {
			return cdf[d]
		}
		return 1
	}
	for d := 1; d < maxD; d++ {
		t.AddRow(d, at(jfCDF, d), at(ftCDF, d))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("server-to-server hops = switch hops + 2; jellyfish diameter %d, fat-tree %d", jfDiam, ftStats.Diameter),
		"paper: >99.5% of jellyfish server pairs within 5 server-hops (3 switch hops); fat-tree 7.5%")
	return t
}

// Fig2aBisectionVsServers reproduces Fig. 2(a): theoretical normalized
// bisection bandwidth vs supported servers at equal cost, for
// (N=720,k=24), (N=1280,k=32), (N=2880,k=48).
func Fig2aBisectionVsServers(opt Options) *Table {
	configs := []struct{ n, k int }{{720, 24}, {1280, 32}, {2880, 48}}
	if opt.Quick {
		configs = configs[:1]
	}
	t := &Table{
		ID:      "fig2a",
		Title:   "normalized bisection bandwidth vs servers (Bollobás bound), equal-cost curves",
		Columns: []string{"N", "k", "r", "servers", "jf_norm_bisection", "ft_equiv_servers"},
	}
	for _, c := range configs {
		ftServers := 0
		// Fat-tree with the same port count: k³/4 servers.
		ftServers = c.k * c.k * c.k / 4
		for r := c.k - 2; r >= c.k/2; r -= 2 {
			servers := c.n * (c.k - r)
			t.AddRow(c.n, c.k, r, servers, bisection.RRGNormalizedBisection(c.n, c.k, r), ftServers)
		}
	}
	t.Notes = append(t.Notes, "paper: at the cost of a 16,000-server fat-tree (k=40), jellyfish supports >20,000 at full bisection")
	return t
}

// Fig2bEquipmentCost reproduces Fig. 2(b): total ports needed vs number of
// servers at full bisection bandwidth, per switch port-count.
func Fig2bEquipmentCost(opt Options) *Table {
	ports := []int{24, 32, 48, 64}
	serverCounts := []int{10000, 20000, 30000, 40000, 50000, 60000, 70000, 80000}
	if opt.Quick {
		ports = ports[:2]
		serverCounts = serverCounts[:3]
	}
	t := &Table{
		ID:      "fig2b",
		Title:   "equipment cost (total ports) vs servers at full bisection bandwidth",
		Columns: []string{"servers", "k", "jf_ports", "ft_ports", "jf_saving"},
	}
	for _, s := range serverCounts {
		for _, k := range ports {
			jfPorts, _, _ := bisection.MinPortsForServers(s, k)
			// Fat-tree: smallest k'≥k design covering s servers uses
			// 5k'²/4 switches; cost 5k'³/4 ports — but fat-trees exist only
			// at discrete sizes; charge the k³/4-server design scaled up.
			ftPorts := fatTreePortsFor(s, k)
			saving := "n/a"
			if jfPorts > 0 && ftPorts > 0 {
				saving = fmt.Sprintf("%.0f%%", 100*(1-float64(jfPorts)/float64(ftPorts)))
			}
			t.AddRow(s, k, jfPorts, ftPorts, saving)
		}
	}
	t.Notes = append(t.Notes, "fat-tree cost is the smallest full-bisection fat-tree of ≥ the given servers, using k-port switches (oversized when the discrete size jumps past the target)")
	return t
}

// fatTreePortsFor returns the port cost of the smallest 3-level fat-tree
// with at least s servers built from k-port switches (0 if impossible).
func fatTreePortsFor(s, k int) int {
	if k*k*k/4 < s {
		return 0
	}
	return 5 * k * k / 4 * k
}

// Fig2cServersAtFullThroughput reproduces Fig. 2(c): servers supported at
// full capacity under random-permutation traffic with optimal routing,
// Jellyfish vs fat-tree at identical equipment, for 6..14-port switches.
func Fig2cServersAtFullThroughput(opt Options) *Table {
	ks := []int{6, 8, 10, 12, 14}
	if opt.Quick {
		// The paper's sweep starts at 6-port switches: below that, random
		// graphs with network degree ≤3 cannot match a full-bisection
		// fat-tree.
		ks = []int{6}
	}
	src := rng.New(opt.Seed).Split("fig2c")
	trials := opt.trials(3)
	t := &Table{
		ID:      "fig2c",
		Title:   "servers at full capacity vs equipment cost (optimal routing, random permutation)",
		Columns: []string{"k", "total_ports", "ft_servers", "jf_servers", "improvement"},
	}
	// Each switch size runs its own binary search concurrently; the search
	// itself is sequential but every feasibility probe fans its trials
	// out. Probes draw from an incremental topology family and thread
	// warm solver state between adjacent points in probe order
	// (capsearch; Options.ColdStart solves every probe from scratch on
	// the same instances).
	type kRow struct {
		ports, ftServers, jfServers int
	}
	rows := parallel.Map(opt.workers(), len(ks), func(i int) kRow {
		k := ks[i]
		ft := topology.FatTree(k)
		switches := ft.NumSwitches()
		ftServers := ft.NumServers()
		ksrc := src.Split(fmt.Sprintf("k%d", k))
		// No Interrupt hook configured, so MaxServers cannot fail.
		jfServers, _ := capsearch.MaxServers(capsearch.Config{
			Lo:      ftServers,
			Hi:      switches * (k - 1),
			Family:  capsearch.NewFamily(spread(switches, k, ftServers, ksrc.SplitN("topo", ftServers)), ksrc.Split("grow")),
			Traffic: ksrc.Split("traffic"),
			Trials:  trials,
			Slack:   fullThroughputSlack,
			// The switch sizes already fan out across cores (the
			// parallel.Map above); keep each probe's solver serial so the
			// goroutine count stays ~workers rather than workers².
			Workers: 1,
			Cold:    opt.ColdStart,
		})
		return kRow{ft.TotalPorts(), ftServers, jfServers}
	})
	for i, k := range ks {
		r := rows[i]
		t.AddRow(k, r.ports, r.ftServers,
			r.jfServers, fmt.Sprintf("%.1f%%", 100*(float64(r.jfServers)/float64(r.ftServers)-1)))
	}
	t.Notes = append(t.Notes, "paper: up to 27% more servers at the largest size evaluated (874 vs 686)")
	return t
}

// Fig3DegreeDiameter reproduces Fig. 3: Jellyfish throughput vs the
// best-known degree-diameter benchmark graphs at 9 (switches, ports,
// network-degree) configurations.
func Fig3DegreeDiameter(opt Options) *Table {
	configs := [][3]int{
		{132, 4, 3}, {72, 7, 5}, {98, 6, 4}, {50, 11, 7}, {111, 8, 6},
		{212, 7, 5}, {168, 10, 7}, {104, 16, 11}, {198, 24, 16},
	}
	if opt.Quick {
		configs = [][3]int{{50, 11, 7}, {72, 7, 5}}
	}
	src := rng.New(opt.Seed).Split("fig3")
	trials := opt.trials(5)
	t := &Table{
		ID:      "fig3",
		Title:   "throughput: best-known degree-diameter graphs vs Jellyfish (normalized)",
		Columns: []string{"(A,B,C)", "dd_throughput", "jf_throughput", "jf/dd"},
	}
	w := opt.workers()
	tps := parallel.Map(w, len(configs), func(ci int) [2]float64 {
		n, ports, deg := configs[ci][0], configs[ci][1], configs[ci][2]
		csrc := src.Split(fmt.Sprintf("%d-%d-%d", n, ports, deg))
		dd := topology.DegreeDiameterTopology(n, ports, deg, csrc.Split("dd"))
		ddTp := meanMCFThroughput(dd, csrc.Split("dd-traffic"), trials, w)
		jfTp := parallel.SumFloat64(w, trials, func(i int) float64 {
			jf := topology.Jellyfish(n, ports, deg, csrc.SplitN("jf", i))
			return mcfThroughput(jf, csrc.SplitN("jf-traffic", i), 1) / float64(trials)
		})
		return [2]float64{ddTp, jfTp}
	})
	for ci, c := range configs {
		ddTp, jfTp := tps[ci][0], tps[ci][1]
		ratio := 1.0
		if ddTp > 0 {
			ratio = jfTp / ddTp
		}
		t.AddRow(fmt.Sprintf("(%d,%d,%d)", c[0], c[1], c[2]), ddTp, jfTp, ratio)
	}
	t.Notes = append(t.Notes,
		"dd graphs: exact Moore constructions (Petersen, Hoffman–Singleton) where classical, simulated-annealing optimized regular graphs otherwise (DESIGN.md §8)",
		"paper: jellyfish ≥ ~91% of the benchmark in every configuration")
	return t
}

// Fig4SWDC reproduces Fig. 4: Jellyfish vs the three SWDC degree-6
// variants at equal equipment, 2 servers per switch (oversubscribed).
func Fig4SWDC(opt Options) *Table {
	n, hexN := 484, 450
	if opt.Quick {
		n, hexN = 100, 100
	}
	deg, servers := 6, 2
	src := rng.New(opt.Seed).Split("fig4")
	trials := opt.trials(5)
	t := &Table{
		ID:      "fig4",
		Title:   fmt.Sprintf("throughput vs SWDC variants (degree 6, %d switches, 2 servers/switch)", n),
		Columns: []string{"topology", "switches", "throughput"},
	}
	w := opt.workers()
	jfTp := parallel.SumFloat64(w, trials, func(i int) float64 {
		jf := topology.Jellyfish(n, deg+servers, deg, src.SplitN("jf", i))
		return mcfThroughput(jf, src.SplitN("jf-traffic", i), 1) / float64(trials)
	})
	t.AddRow("jellyfish", n, jfTp)

	ring := topology.SWDCRing(n, deg, servers, src.Split("ring"))
	t.AddRow("swdc-ring", n, meanMCFThroughput(ring, src.Split("ring-traffic"), trials, w))
	torus := topology.SWDC2DTorus(n, deg, servers, src.Split("torus"))
	t.AddRow("swdc-2dtorus", n, meanMCFThroughput(torus, src.Split("torus-traffic"), trials, w))
	hex := topology.SWDC3DHexTorus(hexN, deg, servers, src.Split("hex"))
	t.AddRow("swdc-3dhextorus", hexN, meanMCFThroughput(hex, src.Split("hex-traffic"), trials, w))
	t.Notes = append(t.Notes, "paper: jellyfish ≈ 119% of the best SWDC variant (the ring)")
	return t
}
