package experiments

import (
	"fmt"

	"jellyfish/internal/capsearch"
	"jellyfish/internal/flowsim"
	"jellyfish/internal/metrics"
	"jellyfish/internal/parallel"
	"jellyfish/internal/placement"
	"jellyfish/internal/rng"
	"jellyfish/internal/routing"
	"jellyfish/internal/topology"
	"jellyfish/internal/traffic"
)

// compiledTable builds the pattern's table under the named scheme from a
// compiled routing instance, fanning per-source/per-pair computations out
// over workers goroutines. Bit-identical to building from scratch
// (routing.Compiled's contract); repeated builds on one instance pay only
// for pairs and sources it has not seen.
func compiledTable(c *routing.Compiled, pat *traffic.Pattern, scheme string, src *rng.Source, workers int) *routing.Table {
	pairs := routing.PairsForPattern(pat)
	switch scheme {
	case "ecmp64":
		return c.ECMP(pairs, 64, src, workers)
	case "ksp8":
		return c.KShortest(pairs, 8, workers)
	default:
		return c.ECMP(pairs, 8, src, workers)
	}
}

// routeTable builds the table for a pattern under the named scheme on a
// throwaway compiled instance — the one-shot form for call sites that
// use a topology only once.
func routeTable(t *topology.Topology, pat *traffic.Pattern, scheme string, src *rng.Source, workers int) *routing.Table {
	return compiledTable(routing.NewCompiled(t.Graph), pat, scheme, src, workers)
}

// A transportKit is the compiled per-topology transport instance shared
// across an experiment's trials: one routing.Compiled (thread-safe,
// memoizes k-shortest path sets and ECMP source state) plus one
// flowsim.Sim per parallel worker slot (exclusive scratch — see
// parallel.ForEachWorker's contract). Trials fanned out with
// parallel.MapWorker index sims by worker id; results are bit-identical
// to fresh per-trial state for every worker count.
type transportKit struct {
	top      *topology.Topology
	srv      []int // server→switch map, computed once, read-only across workers
	compiled *routing.Compiled
	sims     []*flowsim.Sim
}

func newTransportKit(top *topology.Topology, workers int) *transportKit {
	k := &transportKit{
		top:      top,
		srv:      top.ServerSwitches(),
		compiled: routing.NewCompiled(top.Graph),
		sims:     make([]*flowsim.Sim, parallel.Workers(workers)),
	}
	for i := range k.sims {
		k.sims[i] = flowsim.NewSim(top.Graph.N(), top.NumServers())
	}
	return k
}

// simMean runs one trial of the flow simulator on the kit's topology and
// returns mean per-server throughput, using the given worker slot's
// scratch. Stream-for-stream identical to the pre-kit one-shot simMean:
// "traffic" seeds the permutation, "routes" the table build, and "sim"
// the subflow hashing — except that the "sim" split is never derived for
// MPTCP8, which consumes no randomness (flowsim's stream contract; the
// split would be dead, and dropping it everywhere keeps any future
// consumption from silently shifting pinned streams).
func (k *transportKit) simMean(worker int, scheme string, proto flowsim.Protocol, src *rng.Source) float64 {
	pat := traffic.RandomPermutation(k.srv, src.Split("traffic"))
	table := compiledTable(k.compiled, pat, scheme, src.Split("routes"), 1)
	return k.sims[worker].Simulate(pat.Flows, table, proto, flowsim.SimSource(src, proto)).Mean()
}

// simMean is the one-shot form of transportKit.simMean for topologies
// used in a single trial.
func simMean(t *topology.Topology, scheme string, proto flowsim.Protocol, src *rng.Source, workers int) float64 {
	pat := traffic.RandomPermutation(t.ServerSwitches(), src.Split("traffic"))
	table := routeTable(t, pat, scheme, src.Split("routes"), workers)
	return flowsim.Simulate(pat.Flows, table, proto, flowsim.SimSource(src, proto)).Mean()
}

// table1Sizes returns the fat-tree arity and matching jellyfish server
// count used by Table 1 (686 / 780 in the paper; scaled down for Quick).
func table1Sizes(opt Options) (k, jfServers int) {
	if opt.Quick {
		return 8, 150 // fat-tree 128 servers, 80 switches
	}
	return 14, 780 // fat-tree 686 servers, 245 switches
}

// Fig9ECMPPathCounts reproduces Fig. 9: the number of distinct paths each
// directed link participates in, ranked, under 8-way ECMP, 64-way ECMP,
// and 8-shortest-path routing, on the Jellyfish of Table 1.
func Fig9ECMPPathCounts(opt Options) *Table {
	k, jfServers := table1Sizes(opt)
	switches := 5 * k * k / 4
	src := rng.New(opt.Seed).Split("fig9")
	jf := spread(switches, k, jfServers, src.Split("topo"))
	pat := traffic.RandomPermutation(jf.ServerSwitches(), src.Split("traffic"))

	schemes := []string{"ecmp8", "ecmp64", "ksp8"}
	compiled := routing.NewCompiled(jf.Graph)
	ranked := parallel.Map(opt.workers(), len(schemes), func(i int) []int {
		scheme := schemes[i]
		return routing.RankedLinkLoads(jf.Graph, compiledTable(compiled, pat, scheme, src.Split(scheme), opt.workers()))
	})
	series := map[string][]int{}
	for i, scheme := range schemes {
		series[scheme] = ranked[i]
	}
	t := &Table{
		ID:      "fig9",
		Title:   fmt.Sprintf("distinct paths per directed link (ranked), jellyfish %d servers", jfServers),
		Columns: []string{"percentile", "ecmp8", "ecmp64", "ksp8"},
	}
	n := len(series["ecmp8"])
	for _, pct := range []int{0, 10, 25, 50, 75, 90, 100} {
		idx := pct * (n - 1) / 100
		t.AddRow(fmt.Sprintf("p%d", pct), series["ecmp8"][idx], series["ecmp64"][idx], series["ksp8"][idx])
	}
	// Headline fractions from the paper's text.
	frac := func(xs []int, limit int) float64 {
		c := 0
		for _, x := range xs {
			if x <= limit {
				c++
			}
		}
		return float64(c) / float64(len(xs))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("links on ≤2 paths: ecmp8 %.0f%%, ksp8 %.0f%% (paper: 55%% vs 6%%)",
			100*frac(series["ecmp8"], 2), 100*frac(series["ksp8"], 2)))
	return t
}

// Table1RoutingCongestion reproduces Table 1: mean per-server throughput
// (% of NIC rate) for the fat-tree under ECMP and Jellyfish under ECMP and
// 8-shortest paths, each with TCP 1-flow, TCP 8-flow, and MPTCP transport.
// Both topologies are compiled once; the three protocols and all trials
// share the two routing instances and per-worker simulator scratch.
func Table1RoutingCongestion(opt Options) *Table {
	k, jfServers := table1Sizes(opt)
	src := rng.New(opt.Seed).Split("table1")
	trials := opt.trials(5)
	ft := topology.FatTree(k)
	jf := spread(ft.NumSwitches(), k, jfServers, src.Split("jf"))

	t := &Table{
		ID:      "table1",
		Title:   fmt.Sprintf("throughput %% of NIC: fat-tree(%d srv, ECMP) vs jellyfish(%d srv, ECMP / 8SP)", ft.NumServers(), jfServers),
		Columns: []string{"congestion_control", "ft_ecmp", "jf_ecmp", "jf_8sp"},
	}
	w := opt.workers()
	ftKit := newTransportKit(ft, w)
	jfKit := newTransportKit(jf, w)
	protos := []flowsim.Protocol{flowsim.TCP1, flowsim.TCP8, flowsim.MPTCP8}
	for _, proto := range protos {
		perTrial := parallel.MapWorker(w, trials, func(worker, i int) [3]float64 {
			tsrc := src.SplitN(proto.String(), i)
			return [3]float64{
				ftKit.simMean(worker, "ecmp8", proto, tsrc.Split("ft")) / float64(trials),
				jfKit.simMean(worker, "ecmp8", proto, tsrc.Split("jfe")) / float64(trials),
				jfKit.simMean(worker, "ksp8", proto, tsrc.Split("jfk")) / float64(trials),
			}
		})
		var ftv, jfe, jfk float64
		for _, v := range perTrial {
			ftv += v[0]
			jfe += v[1]
			jfk += v[2]
		}
		t.AddRow(proto.String(),
			fmt.Sprintf("%.1f%%", 100*ftv), fmt.Sprintf("%.1f%%", 100*jfe), fmt.Sprintf("%.1f%%", 100*jfk))
	}
	t.Notes = append(t.Notes,
		"paper row MPTCP: fat-tree 93.6%, jellyfish ECMP 76.4%, jellyfish 8SP 95.1% — ECMP lacks path diversity on jellyfish")
	return t
}

// fig10Config builds the slightly-oversubscribed Jellyfish used by
// Fig. 10: 12-port switches, 4 servers each (r=8).
func fig10Config(servers int, src *rng.Source) *topology.Topology {
	switches := (servers + 3) / 4
	return spread(switches, 12, servers, src)
}

// Fig10SimVsOptimal reproduces Fig. 10: flow-level (packet-substitute)
// throughput vs optimal-routing throughput on the same topologies.
func Fig10SimVsOptimal(opt Options) *Table {
	sizes := []int{70, 165, 335, 600, 960}
	if opt.Quick {
		sizes = []int{70, 165}
	}
	src := rng.New(opt.Seed).Split("fig10")
	trials := opt.trials(3)
	t := &Table{
		ID:      "fig10",
		Title:   "k-shortest-path + MPTCP vs optimal routing (same topologies)",
		Columns: []string{"servers", "optimal", "packet_level", "ratio"},
	}
	w := opt.workers()
	results := parallel.Map(w, len(sizes), func(si int) [2]float64 {
		s := sizes[si]
		perTrial := parallel.Map(w, trials, func(i int) [2]float64 {
			tsrc := src.SplitN(fmt.Sprintf("s%d", s), i)
			jf := fig10Config(s, tsrc.Split("topo"))
			return [2]float64{
				mcfThroughput(jf, tsrc.Split("mcf"), 1),
				simMean(jf, "ksp8", flowsim.MPTCP8, tsrc.Split("pkt"), 1),
			}
		})
		var optSum, pktSum float64
		for _, v := range perTrial {
			optSum += v[0]
			pktSum += v[1]
		}
		return [2]float64{optSum / float64(trials), pktSum / float64(trials)}
	})
	for si, s := range sizes {
		o, p := results[si][0], results[si][1]
		t.AddRow(s, o, p, p/o)
	}
	t.Notes = append(t.Notes, "paper: packet-level reaches 86-90% of the CPLEX optimum at every size")
	return t
}

// packetLevelMaxServers binary-searches the servers jellyfish supports at
// ≥ the fat-tree's packet-level throughput (Fig. 11 methodology).
//
// The search reuses the capacity-search machinery (DESIGN.md §9/§11):
// probes draw from one incrementally grown topology family — pure by
// absolute server index, so the topology at a given count is independent
// of probe order (Fig. 6 licenses incremental ≈ scratch) — under nested
// cyclic-permutation traffic whose permutation at s+1 servers extends the
// one at s. The warm assets carried across the binary-search sequence are
// the per-worker compiled simulator instances (arena + scratch survive
// probe-to-probe) and, within each probe, one compiled routing instance
// shared by all trials; the family's O(1)-links-per-server growth means
// adjacent probes re-derive only the paths the rewiring touched.
func packetLevelMaxServers(k int, trials int, src *rng.Source, workers int) (ftServers, jfServers int, ftTp float64) {
	ft := topology.FatTree(k)
	ftServers = ft.NumServers()
	ftKit := newTransportKit(ft, workers)
	ftVals := parallel.MapWorker(workers, trials, func(worker, i int) float64 {
		return ftKit.simMean(worker, "ecmp8", flowsim.MPTCP8, src.SplitN("ft", i)) / float64(trials)
	})
	for _, v := range ftVals {
		ftTp += v
	}
	switches := ft.NumSwitches()
	// Search down from half the fat-tree's size so that configurations
	// where jellyfish cannot quite match the fat-tree (small k, weak
	// network degree) still report their true maximum.
	lo, hi := ftServers/2, switches*(k-1)
	fam := capsearch.NewFamily(spread(switches, k, lo, src.SplitN("topo", lo)), src.Split("grow"))
	trafficSrc := src.Split("cycle")
	sims := make([]*flowsim.Sim, parallel.Workers(workers))
	for i := range sims {
		sims[i] = flowsim.NewSim(switches, hi)
	}
	feasible := func(servers int) bool {
		if servers > hi {
			return false
		}
		top := fam.At(servers)
		assign := fam.Assign(servers)
		compiled := routing.NewCompiled(top.Graph)
		vals := parallel.MapWorker(workers, trials, func(worker, i int) float64 {
			pat := traffic.NestedCycle(assign, trafficSrc.SplitN("trial", i))
			table := compiledTable(compiled, pat, "ksp8", nil, 1)
			return sims[worker].Simulate(pat.Flows, table, flowsim.MPTCP8, nil).Mean() / float64(trials)
		})
		tp := 0.0
		for _, v := range vals {
			tp += v
		}
		return tp >= ftTp
	}
	jfServers = maxServersFullCapacity(lo, hi, feasible)
	return ftServers, jfServers, ftTp
}

// Fig11PacketLevelServers reproduces Fig. 11: servers supported at the
// same-or-higher packet-level throughput than the same-equipment fat-tree.
func Fig11PacketLevelServers(opt Options) *Table {
	// The paper's packet-level sweep starts near k=8; at k=6 the random
	// graph's network degree (≤3) is too weak to beat a full-bisection
	// fat-tree under realizable routing.
	ks := []int{8, 10, 12, 14}
	if opt.Quick {
		ks = []int{10}
	}
	src := rng.New(opt.Seed).Split("fig11")
	trials := opt.trials(3)
	t := &Table{
		ID:      "fig11",
		Title:   "servers at equal packet-level throughput vs equipment cost",
		Columns: []string{"k", "total_ports", "ft_servers", "ft_throughput", "jf_servers", "improvement"},
	}
	type kRow struct {
		ftServers, jfServers int
		ftTp                 float64
	}
	w := opt.workers()
	rows := parallel.Map(w, len(ks), func(i int) kRow {
		k := ks[i]
		ksrc := src.Split(fmt.Sprintf("k%d", k))
		ftServers, jfServers, ftTp := packetLevelMaxServers(k, trials, ksrc, w)
		return kRow{ftServers, jfServers, ftTp}
	})
	for i, k := range ks {
		r := rows[i]
		t.AddRow(k, 5*k*k/4*k, r.ftServers, r.ftTp, r.jfServers,
			fmt.Sprintf("%.1f%%", 100*(float64(r.jfServers)/float64(r.ftServers)-1)))
	}
	t.Notes = append(t.Notes, "paper: >25% more servers at the largest scale (3,330 vs 2,662), ≈15% at small scale")
	return t
}

// Fig12Stability reproduces Fig. 12: average/min/max per-server throughput
// across runs for jellyfish and fat-tree at matched equipment.
func Fig12Stability(opt Options) *Table {
	ks := []int{6, 8, 10, 12, 14}
	jfExtra := 1.13 // jellyfish carries ~13% more servers, per Fig. 11
	if opt.Quick {
		ks = []int{4, 6}
	}
	src := rng.New(opt.Seed).Split("fig12")
	trials := opt.trials(5)
	t := &Table{
		ID:      "fig12",
		Title:   "throughput stability across runs (avg [min,max])",
		Columns: []string{"k", "topology", "servers", "avg", "min", "max"},
	}
	w := opt.workers()
	type kSeries struct {
		ftServers, jfServers int
		ftv, jfv             []float64
	}
	series := parallel.Map(w, len(ks), func(i int) kSeries {
		k := ks[i]
		ksrc := src.Split(fmt.Sprintf("k%d", k))
		ft := topology.FatTree(k)
		ftKit := newTransportKit(ft, w) // fixed across trials; jf is redrawn per trial
		jfServers := int(float64(ft.NumServers()) * jfExtra)
		perTrial := parallel.MapWorker(w, trials, func(worker, i int) [2]float64 {
			tsrc := ksrc.SplitN("trial", i)
			ftTp := ftKit.simMean(worker, "ecmp8", flowsim.MPTCP8, tsrc.Split("ft"))
			jf := spread(ft.NumSwitches(), k, jfServers, tsrc.Split("jf-topo"))
			return [2]float64{ftTp, simMean(jf, "ksp8", flowsim.MPTCP8, tsrc.Split("jf"), 1)}
		})
		s := kSeries{ftServers: ft.NumServers(), jfServers: jfServers}
		for _, v := range perTrial {
			s.ftv = append(s.ftv, v[0])
			s.jfv = append(s.jfv, v[1])
		}
		return s
	})
	for i, k := range ks {
		s := series[i]
		fs, js := metrics.Summarize(s.ftv), metrics.Summarize(s.jfv)
		t.AddRow(k, "fattree", s.ftServers, fs.Mean, fs.Min, fs.Max)
		t.AddRow(k, "jellyfish", s.jfServers, js.Mean, js.Min, js.Max)
	}
	t.Notes = append(t.Notes, "paper: jellyfish is as stable as the fat-tree (min/max within a few percent of the mean)")
	return t
}

// Fig13Fairness reproduces Fig. 13: the ranked distribution of per-flow
// throughputs and Jain's fairness index for jellyfish and fat-tree.
func Fig13Fairness(opt Options) *Table {
	k, jfServers := table1Sizes(opt)
	src := rng.New(opt.Seed).Split("fig13")
	ft := topology.FatTree(k)
	jf := spread(ft.NumSwitches(), k, jfServers, src.Split("jf"))

	w := opt.workers()
	run := func(top *topology.Topology, scheme string, s *rng.Source) []float64 {
		pat := traffic.RandomPermutation(top.ServerSwitches(), s.Split("traffic"))
		table := routeTable(top, pat, scheme, s.Split("routes"), w)
		// MPTCP8 consumes no randomness; no dead "sim" split (flowsim's
		// stream contract).
		return flowsim.Simulate(pat.Flows, table, flowsim.MPTCP8, nil).FlowRate
	}
	rates := parallel.Map(w, 2, func(i int) []float64 {
		if i == 0 {
			return run(ft, "ecmp8", src.Split("ft"))
		}
		return run(jf, "ksp8", src.Split("jf-run"))
	})
	ftRates, jfRates := rates[0], rates[1]

	t := &Table{
		ID:      "fig13",
		Title:   "flow-throughput distribution (ranked percentiles) and Jain fairness",
		Columns: []string{"percentile", "fattree", "jellyfish"},
	}
	for _, pct := range []float64{1, 5, 10, 25, 50, 75, 90, 99} {
		t.AddRow(fmt.Sprintf("p%.0f", pct),
			metrics.Percentile(ftRates, pct), metrics.Percentile(jfRates, pct))
	}
	t.AddRow("jain", metrics.JainFairness(ftRates), metrics.JainFairness(jfRates))
	t.Notes = append(t.Notes, "paper: Jain's index 0.991 (fat-tree) vs 0.988 (jellyfish) — both ≈99% fair")
	return t
}

// Fig14Locality reproduces Fig. 14: throughput of 2-layer
// (locality-constrained) Jellyfish normalized to unrestricted Jellyfish,
// as the fraction of in-pod links varies, at four sizes.
func Fig14Locality(opt Options) *Table {
	type size struct{ containers, spc int }
	sizes := []size{{5, 8}, {6, 15}, {9, 20}, {10, 24}} // 160..960 servers at 4/switch
	fracs := []float64{0, 0.2, 0.4, 0.5, 0.6, 0.8}
	if opt.Quick {
		sizes = sizes[:1]
		fracs = []float64{0, 0.4, 0.8}
	}
	k, r := 12, 8
	trials := opt.trials(3)
	src := rng.New(opt.Seed).Split("fig14")
	t := &Table{
		ID:      "fig14",
		Title:   "2-layer jellyfish: throughput (normalized to unrestricted) vs fraction of local links",
		Columns: []string{"servers", "local_frac", "throughput", "normalized"},
	}
	w := opt.workers()
	type szResult struct {
		servers int
		base    float64
		tps     []float64 // one per frac
	}
	results := parallel.Map(w, len(sizes), func(si int) szResult {
		sz := sizes[si]
		servers := sz.containers * sz.spc * (k - r)
		ssrc := src.Split(fmt.Sprintf("s%d", servers))
		base := parallel.SumFloat64(w, trials, func(i int) float64 {
			unrestricted := placement.TwoLayerJellyfish(sz.containers, sz.spc, k, r, 0, ssrc.SplitN("base", i))
			return mcfThroughput(unrestricted, ssrc.SplitN("base-traffic", i), 1) / float64(trials)
		})
		// One worker-wide level over the flattened (frac, trial) space;
		// per-frac sums accumulate in trial order, so the result matches
		// the nested sequential loops bit for bit.
		perTrial := parallel.Map(w, len(fracs)*trials, func(idx int) float64 {
			f := fracs[idx/trials]
			i := idx % trials
			top := placement.TwoLayerJellyfish(sz.containers, sz.spc, k, r, f, ssrc.SplitN(fmt.Sprintf("f%.1f", f), i))
			return mcfThroughput(top, ssrc.SplitN(fmt.Sprintf("f%.1f-traffic", f), i), 1) / float64(trials)
		})
		tps := make([]float64, len(fracs))
		for fi := range fracs {
			for i := 0; i < trials; i++ {
				tps[fi] += perTrial[fi*trials+i]
			}
		}
		return szResult{servers, base, tps}
	})
	for _, res := range results {
		for fi, f := range fracs {
			tp := res.tps[fi]
			norm := 1.0
			if res.base > 0 {
				norm = tp / res.base
			}
			t.AddRow(res.servers, fmt.Sprintf("%.1f", f), tp, norm)
		}
	}
	t.Notes = append(t.Notes,
		"paper: ≤6% throughput loss with 60% of links localized; <3% at 50% local — above the fat-tree's 53.6% locality")
	return t
}
