package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

var quick = Options{Seed: 42, Quick: true}

// fullScale skips the test under -short: these sweeps dominate the
// suite's ~1min runtime. `go test -short ./...` keeps a seconds-long
// smoke subset; the full suite runs without -short.
func fullScale(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-scale sweep; run without -short to include it")
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestAllRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil {
			t.Fatalf("experiment %s has nil runner", e.ID)
		}
	}
	// The paper has 14 reproduced figures + 1 table + figs 2a/2b/2c counted
	// separately (17), plus 8 ablations: 25 experiments total.
	if len(ids) != 25 {
		t.Fatalf("registry has %d experiments, want 25", len(ids))
	}
	if Lookup("fig2c") == nil || Lookup("nope") != nil {
		t.Fatal("Lookup misbehaves")
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	tab.AddRow(1, 2.5)
	tab.Notes = append(tab.Notes, "n")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "a", "2.5", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig1cQuick(t *testing.T) {
	tab := Fig1cPathLengthCDF(quick)
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Jellyfish CDF must dominate the fat-tree CDF at small hop counts.
	jf2 := parseFloat(t, tab.Rows[1][1])
	ft2 := parseFloat(t, tab.Rows[1][2])
	if jf2 <= ft2 {
		t.Fatalf("jellyfish 2-hop CDF %v not above fat-tree %v", jf2, ft2)
	}
	// Final CDF values reach 1.
	last := tab.Rows[len(tab.Rows)-1]
	if parseFloat(t, last[1]) < 0.999 || parseFloat(t, last[2]) < 0.999 {
		t.Fatalf("CDFs do not reach 1: %v", last)
	}
}

func TestFig2aQuick(t *testing.T) {
	tab := Fig2aBisectionVsServers(quick)
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Bisection decreases as servers increase along an equal-cost curve.
	prev := -1.0
	for _, row := range tab.Rows {
		b := parseFloat(t, row[4])
		if prev >= 0 && b > prev {
			t.Fatalf("bisection increased with more servers: %v -> %v", prev, b)
		}
		prev = b
	}
}

func TestFig2bQuick(t *testing.T) {
	tab := Fig2bEquipmentCost(quick)
	for _, row := range tab.Rows {
		jf := parseFloat(t, row[2])
		ft := parseFloat(t, row[3])
		if jf > 0 && ft > 0 && jf >= ft {
			t.Fatalf("jellyfish ports %v not below fat-tree %v: %v", jf, ft, row)
		}
	}
}

func TestFig2cQuick(t *testing.T) {
	fullScale(t)
	tab := Fig2cServersAtFullThroughput(quick)
	for _, row := range tab.Rows {
		ft := parseFloat(t, row[2])
		jf := parseFloat(t, row[3])
		if jf < ft {
			t.Fatalf("jellyfish %v below fat-tree %v at equal equipment", jf, ft)
		}
	}
}

func TestFig3Quick(t *testing.T) {
	fullScale(t)
	tab := Fig3DegreeDiameter(quick)
	for _, row := range tab.Rows {
		ratio := parseFloat(t, row[3])
		// Paper: ≥ ~91%; allow slack for the approximation stack.
		if ratio < 0.85 {
			t.Fatalf("jellyfish/dd ratio %v below 0.85: %v", ratio, row)
		}
		if ratio > 1.15 {
			t.Fatalf("jellyfish/dd ratio %v implausibly high", ratio)
		}
	}
}

func TestFig4Quick(t *testing.T) {
	fullScale(t)
	tab := Fig4SWDC(quick)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	jf := parseFloat(t, tab.Rows[0][2])
	for _, row := range tab.Rows[1:] {
		if jf < parseFloat(t, row[2]) {
			t.Fatalf("jellyfish %v below %s %v", jf, row[0], row[2])
		}
	}
}

func TestFig5Quick(t *testing.T) {
	tab := Fig5PathLength(quick)
	for _, row := range tab.Rows {
		scratch := parseFloat(t, row[2])
		incr := parseFloat(t, row[4])
		if diff := scratch - incr; diff > 0.12 || diff < -0.12 {
			t.Fatalf("incremental mean path diverges from scratch: %v", row)
		}
	}
}

func TestFig6Quick(t *testing.T) {
	fullScale(t)
	tab := Fig6IncrementalVsScratch(quick)
	for _, row := range tab.Rows {
		incr := parseFloat(t, row[2])
		scratch := parseFloat(t, row[3])
		if diff := incr - scratch; diff > 0.08 || diff < -0.08 {
			t.Fatalf("incremental throughput diverges: %v", row)
		}
	}
}

func TestFig7Quick(t *testing.T) {
	tab := Fig7LEGUP(quick)
	last := tab.Rows[len(tab.Rows)-1]
	jf := parseFloat(t, last[3])
	clos := parseFloat(t, last[5])
	if jf <= clos {
		t.Fatalf("final stage: jellyfish %v not above clos %v", jf, clos)
	}
}

func TestFig8Quick(t *testing.T) {
	tab := Fig8Failures(quick)
	prev := 2.0
	for _, row := range tab.Rows {
		jf := parseFloat(t, row[1])
		if jf > prev+0.02 {
			t.Fatalf("jellyfish throughput rose under failures: %v", row)
		}
		prev = jf
	}
	// 15%-ish failures should cost well under 30% of healthy capacity.
	if rel := parseFloat(t, tab.Rows[3][2]); rel < 0.70 {
		t.Fatalf("15%% failures cost too much: relative %v", rel)
	}
}

func TestFig9Quick(t *testing.T) {
	tab := Fig9ECMPPathCounts(quick)
	// At the median, ksp8 must put strictly more paths on links than ecmp8.
	for _, row := range tab.Rows {
		if row[0] == "p50" {
			ecmp := parseFloat(t, row[1])
			ksp := parseFloat(t, row[3])
			if ksp <= ecmp {
				t.Fatalf("median link path count: ksp %v not above ecmp %v", ksp, ecmp)
			}
		}
	}
}

func TestTable1Quick(t *testing.T) {
	tab := Table1RoutingCongestion(quick)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// MPTCP row: jellyfish 8SP must beat jellyfish ECMP (the paper's
	// central routing finding).
	mptcp := tab.Rows[2]
	jfECMP := parseFloat(t, mptcp[2])
	jf8SP := parseFloat(t, mptcp[3])
	if jf8SP <= jfECMP {
		t.Fatalf("MPTCP: 8SP %v not above ECMP %v", jf8SP, jfECMP)
	}
	// TCP-8 must beat TCP-1 everywhere.
	for col := 1; col <= 3; col++ {
		if parseFloat(t, tab.Rows[1][col]) <= parseFloat(t, tab.Rows[0][col]) {
			t.Fatalf("TCP8 not above TCP1 in column %d", col)
		}
	}
}

func TestFig10Quick(t *testing.T) {
	tab := Fig10SimVsOptimal(quick)
	for _, row := range tab.Rows {
		ratio := parseFloat(t, row[3])
		if ratio < 0.75 || ratio > 1.05 {
			t.Fatalf("packet/optimal ratio %v outside [0.75,1.05]: %v", ratio, row)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	fullScale(t)
	tab := Fig11PacketLevelServers(quick)
	for _, row := range tab.Rows {
		ft := parseFloat(t, row[2])
		jf := parseFloat(t, row[4])
		if jf < ft {
			t.Fatalf("packet-level: jellyfish %v below fat-tree %v", jf, ft)
		}
	}
}

func TestFig12Quick(t *testing.T) {
	tab := Fig12Stability(quick)
	for _, row := range tab.Rows {
		avg := parseFloat(t, row[3])
		min := parseFloat(t, row[4])
		max := parseFloat(t, row[5])
		if min > avg || avg > max {
			t.Fatalf("summary ordering broken: %v", row)
		}
		if min < avg*0.80 {
			t.Fatalf("instability too high: %v", row)
		}
	}
}

func TestFig13Quick(t *testing.T) {
	tab := Fig13Fairness(quick)
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "jain" {
		t.Fatal("missing jain row")
	}
	ft := parseFloat(t, last[1])
	jf := parseFloat(t, last[2])
	if ft < 0.9 || jf < 0.9 {
		t.Fatalf("fairness too low: ft=%v jf=%v (paper: ≈0.99)", ft, jf)
	}
}

func TestFig14Quick(t *testing.T) {
	fullScale(t)
	tab := Fig14Locality(quick)
	for _, row := range tab.Rows {
		frac := parseFloat(t, row[1])
		norm := parseFloat(t, row[3])
		if frac <= 0.45 && norm < 0.90 {
			t.Fatalf("locality %v lost too much throughput: %v", frac, norm)
		}
	}
}

func TestAblationRoutingKQuick(t *testing.T) {
	tab := AblationRoutingK(quick)
	// k=8 must beat k=1 (single-path) clearly.
	k1 := parseFloat(t, tab.Rows[0][1])
	k8 := parseFloat(t, tab.Rows[3][1])
	if k8 <= k1 {
		t.Fatalf("k=8 throughput %v not above k=1 %v", k8, k1)
	}
}

func TestAblationOversubscriptionQuick(t *testing.T) {
	fullScale(t)
	tab := AblationOversubscription(quick)
	// Throughput is nonincreasing in servers per switch (monotone dial,
	// modulo small solver noise).
	prev := 2.0
	for _, row := range tab.Rows {
		tp := parseFloat(t, row[3])
		if tp > prev+0.05 {
			t.Fatalf("throughput rose with more oversubscription: %v", tab.Rows)
		}
		prev = tp
	}
	first := parseFloat(t, tab.Rows[0][3])
	last := parseFloat(t, tab.Rows[len(tab.Rows)-1][3])
	if first < 0.95 || last > 0.7 {
		t.Fatalf("dial endpoints implausible: %v .. %v", first, last)
	}
}

func TestAblationHeterogeneousQuick(t *testing.T) {
	fullScale(t)
	tab := AblationHeterogeneousExpansion(quick)
	base := parseFloat(t, tab.Rows[0][4])
	upgraded := parseFloat(t, tab.Rows[2][4])
	// Adding 24-port switches must not reduce throughput materially even
	// though servers were added too.
	if upgraded < base*0.85 {
		t.Fatalf("heterogeneous expansion collapsed throughput: %v -> %v", base, upgraded)
	}
}

func TestAblationFailuresRoutingQuick(t *testing.T) {
	tab := AblationFailuresRealizableRouting(quick)
	healthy := parseFloat(t, tab.Rows[0][1])
	at20 := parseFloat(t, tab.Rows[len(tab.Rows)-1][1])
	if at20 < healthy*0.60 {
		t.Fatalf("20%% failures cost too much under kSP routing: %v -> %v", healthy, at20)
	}
}

func TestAblationAllToAllQuick(t *testing.T) {
	tab := AblationAllToAll(quick)
	ft := parseFloat(t, tab.Rows[0][2])
	jf := parseFloat(t, tab.Rows[1][2])
	if jf < ft*0.95 {
		t.Fatalf("jellyfish all-to-all %v well below fat-tree %v", jf, ft)
	}
}

func TestAblationSwitchFailuresQuick(t *testing.T) {
	fullScale(t)
	tab := AblationSwitchFailures(quick)
	healthy := parseFloat(t, tab.Rows[0][2])
	at10 := parseFloat(t, tab.Rows[2][2])
	if at10 < healthy*0.70 {
		t.Fatalf("10%% switch failures cost too much: %v -> %v", healthy, at10)
	}
}

func TestAblationPacketVsFluidQuick(t *testing.T) {
	fullScale(t)
	tab := AblationPacketVsFluid(quick)
	for _, row := range tab.Rows {
		ratio := parseFloat(t, row[4])
		if ratio < 0.75 || ratio > 1.25 {
			t.Fatalf("DES/fluid ratio %v outside [0.75,1.25]: %v", ratio, row)
		}
	}
}

func TestAblationHotspotQuick(t *testing.T) {
	fullScale(t)
	tab := AblationHotspot(quick)
	prev := 2.0
	for _, row := range tab.Rows {
		tp := parseFloat(t, row[1])
		if tp > prev+0.05 {
			t.Fatalf("hotspot throughput not monotone: %v", tab.Rows)
		}
		prev = tp
	}
	// Even 40% hot senders must not collapse throughput to near zero.
	last := parseFloat(t, tab.Rows[len(tab.Rows)-1][1])
	if last < 0.05 {
		t.Fatalf("hotspot collapsed throughput: %v", last)
	}
}
