package experiments

import (
	"fmt"

	"jellyfish/internal/expansion"
	"jellyfish/internal/flowsim"
	"jellyfish/internal/graph"
	"jellyfish/internal/parallel"
	"jellyfish/internal/rng"
	"jellyfish/internal/topology"
)

// Fig5PathLength reproduces Fig. 5: mean inter-switch path length and
// diameter vs network size for RRG(N, 48, 36), comparing from-scratch
// construction against a network grown incrementally from the smallest
// size.
func Fig5PathLength(opt Options) *Table {
	k, r := 48, 36
	sizes := []int{100, 200, 400, 800, 1600, 3200}
	if opt.Quick {
		k, r = 24, 18
		sizes = []int{50, 100, 200}
	}
	src := rng.New(opt.Seed).Split("fig5")
	t := &Table{
		ID:      "fig5",
		Title:   fmt.Sprintf("path length vs size, RRG(N,%d,%d): from scratch vs incremental", k, r),
		Columns: []string{"switches", "servers", "scratch_mean", "scratch_diam", "incr_mean", "incr_diam"},
	}
	// From-scratch builds are independent per size and run concurrently;
	// the incremental network grows once through the same checkpoints,
	// which is inherently sequential.
	scratchStats := parallel.Map(opt.workers(), len(sizes), func(i int) graph.PathStats {
		n := sizes[i]
		return topology.Jellyfish(n, k, r, src.SplitN("scratch", n)).Graph.AllPairsStats()
	})
	incr := topology.Jellyfish(sizes[0], k, r, src.Split("incr-base"))
	prev := sizes[0]
	for i, n := range sizes {
		ss := scratchStats[i]
		if n > prev {
			topology.ExpandJellyfish(incr, n-prev, k, r, src.SplitN("grow", n))
			prev = n
		}
		is := incr.Graph.AllPairsStats()
		t.AddRow(n, n*(k-r), ss.Mean, ss.Diameter, is.Mean, is.Diameter)
	}
	t.Notes = append(t.Notes,
		"paper: mean path <2.7 at 38,400 servers (N=3200); diameter ≤4 at all tested scales; incremental ≈ scratch")
	return t
}

// Fig6IncrementalVsScratch reproduces Fig. 6: normalized throughput per
// server of incrementally grown Jellyfish vs from-scratch construction,
// growing from 20 to 160 switches in increments of 20 (12-port switches,
// 4 servers each).
func Fig6IncrementalVsScratch(opt Options) *Table {
	k, srv := 12, 4
	r := k - srv
	sizes := []int{20, 40, 60, 80, 100, 120, 140, 160}
	if opt.Quick {
		sizes = []int{20, 40, 60}
	}
	trials := opt.trials(5)
	src := rng.New(opt.Seed).Split("fig6")
	t := &Table{
		ID:      "fig6",
		Title:   "throughput per server: incremental growth vs from-scratch (k=12, 4 servers/switch)",
		Columns: []string{"switches", "servers", "incremental", "scratch"},
	}
	w := opt.workers()
	sums := parallel.Map(w, len(sizes), func(si int) [2]float64 {
		n := sizes[si]
		perTrial := parallel.Map(w, trials, func(trial int) [2]float64 {
			tsrc := src.SplitN(fmt.Sprintf("n%d", n), trial)
			incr := topology.Jellyfish(sizes[0], k, r, tsrc.Split("base"))
			for grown := sizes[0]; grown < n; grown += 20 {
				topology.ExpandJellyfish(incr, 20, k, r, tsrc.SplitN("grow", grown))
			}
			scratch := topology.Jellyfish(n, k, r, tsrc.Split("scratch"))
			return [2]float64{
				mcfThroughput(incr, tsrc.Split("incr-traffic"), 1),
				mcfThroughput(scratch, tsrc.Split("scratch-traffic"), 1),
			}
		})
		var incrSum, scratchSum float64
		for _, v := range perTrial {
			incrSum += v[0]
			scratchSum += v[1]
		}
		return [2]float64{incrSum, scratchSum}
	})
	for si, n := range sizes {
		t.AddRow(n, n*srv, sums[si][0]/float64(trials), sums[si][1]/float64(trials))
	}
	t.Notes = append(t.Notes, "paper: the two curves are close to identical at every size")
	return t
}

// Fig7LEGUP reproduces Fig. 7: normalized bisection bandwidth per budget
// stage for Jellyfish expansion vs a LEGUP-like Clos upgrader
// (substitution per DESIGN.md §8).
func Fig7LEGUP(opt Options) *Table {
	cfg := expansion.ArcConfig{Seed: opt.Seed}
	if opt.Quick {
		cfg = expansion.ArcConfig{
			SwitchPorts:     24,
			InitialServers:  120,
			InitialSwitches: 12,
			StageBudgets:    []float64{20000, 20000, 20000},
			ServersAdded:    60,
			Seed:            opt.Seed,
		}
	}
	jf := expansion.JellyfishArc(cfg)
	clos := expansion.ClosArc(cfg)
	t := &Table{
		ID:      "fig7",
		Title:   "incremental expansion: normalized bisection per budget stage, Jellyfish vs LEGUP-like Clos",
		Columns: []string{"stage", "cum_cost_$", "jf_servers", "jf_bisection", "clos_servers", "clos_bisection"},
	}
	for i := range jf {
		t.AddRow(jf[i].Index, fmt.Sprintf("%.0f", jf[i].CumulativeCost),
			jf[i].Servers, jf[i].NormalizedBisection,
			clos[i].Servers, clos[i].NormalizedBisection)
	}
	t.Notes = append(t.Notes,
		"paper: jellyfish reaches LEGUP's final bisection by stage 2 (≈60% cost saving); the drop at the server-adding stage is expected")
	return t
}

// Fig8Failures reproduces Fig. 8: normalized throughput under random link
// failures, Jellyfish (544 servers) vs same-equipment fat-tree
// (432 servers, k=12).
func Fig8Failures(opt Options) *Table {
	k := 12
	jfServers := 544
	if opt.Quick {
		k = 8
		jfServers = 160
	}
	fracs := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25}
	trials := opt.trials(3)
	src := rng.New(opt.Seed).Split("fig8")
	ft := topology.FatTree(k)
	switches := ft.NumSwitches()

	t := &Table{
		ID:      "fig8",
		Title:   fmt.Sprintf("throughput under random link failures: jellyfish (%d srv) vs fat-tree (%d srv)", jfServers, ft.NumServers()),
		Columns: []string{"fail_frac", "jellyfish", "jf_rel", "fattree", "ft_rel"},
	}
	// Per-server AVERAGE throughput (the paper's y-axis) via the flow
	// simulator with MPTCP: kSP-8 routes for jellyfish, ECMP-8 for the
	// fat-tree (the paper's own pairing — ECMP is strictly better there).
	// Max-concurrent flow would instead report the single worst server,
	// which after failures is dictated by whichever edge switch lost the
	// most uplinks. Relative columns normalize to the healthy network.
	w := opt.workers()
	sums := parallel.Map(w, len(fracs), func(fi int) [2]float64 {
		f := fracs[fi]
		perTrial := parallel.Map(w, trials, func(trial int) [2]float64 {
			tsrc := src.SplitN(fmt.Sprintf("f%.2f", f), trial)
			jf := spread(switches, k, jfServers, tsrc.Split("jf"))
			topology.RemoveRandomLinks(jf, f, tsrc.Split("jf-fail"))
			jfTrial := simMean(jf, "ksp8", flowsim.MPTCP8, tsrc.Split("jf-traffic"), 1) / float64(trials)

			ftc := ft.Clone()
			topology.RemoveRandomLinks(ftc, f, tsrc.Split("ft-fail"))
			return [2]float64{jfTrial, simMean(ftc, "ecmp8", flowsim.MPTCP8, tsrc.Split("ft-traffic"), 1) / float64(trials)}
		})
		var jfSum, ftSum float64
		for _, v := range perTrial {
			jfSum += v[0]
			ftSum += v[1]
		}
		return [2]float64{jfSum, ftSum}
	})
	var jfTp, ftTp []float64
	for fi := range fracs {
		jfTp = append(jfTp, sums[fi][0])
		ftTp = append(ftTp, sums[fi][1])
	}
	for i, f := range fracs {
		t.AddRow(fmt.Sprintf("%.2f", f), jfTp[i], jfTp[i]/jfTp[0], ftTp[i], ftTp[i]/ftTp[0])
	}
	t.Notes = append(t.Notes,
		"paper: failing 15% of links costs jellyfish <16% capacity; jellyfish degrades more gracefully than the fat-tree while carrying more servers")
	return t
}
