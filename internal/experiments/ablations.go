package experiments

import (
	"fmt"

	"jellyfish/internal/capsearch"
	"jellyfish/internal/flowsim"
	"jellyfish/internal/mcf"
	"jellyfish/internal/metrics"
	"jellyfish/internal/packetsim"
	"jellyfish/internal/parallel"
	"jellyfish/internal/rng"
	"jellyfish/internal/routing"
	"jellyfish/internal/topology"
	"jellyfish/internal/traffic"
)

// Ablations beyond the paper's figures, probing the design choices
// DESIGN.md calls out and the extensions §4.2/§7 sketch as future work:
// the k in k-shortest paths, the oversubscription dial, heterogeneous
// expansion, and resilience under realizable (not optimal) routing.

// AblationRoutingK sweeps the k of k-shortest-path routing with MPTCP:
// how much path diversity is enough? (The paper fixes k=8.)
func AblationRoutingK(opt Options) *Table {
	n, ports, deg := 60, 12, 9
	if !opt.Quick {
		n, ports, deg = 125, 10, 8
	}
	src := rng.New(opt.Seed).Split("ablation-k")
	top := topology.Jellyfish(n, ports, deg, src.Split("topo"))
	pat := traffic.RandomPermutation(top.ServerSwitches(), src.Split("traffic"))
	var sd [][2]int
	for _, f := range pat.Flows {
		sd = append(sd, [2]int{f.SrcSwitch, f.DstSwitch})
	}
	pairs := routing.PairsForCommodities(sd)

	t := &Table{
		ID:      "ablation-routing-k",
		Title:   fmt.Sprintf("throughput vs k in k-shortest-path routing (MPTCP, %d servers)", top.NumServers()),
		Columns: []string{"k", "throughput"},
	}
	ks := []int{1, 2, 4, 8, 16}
	w := opt.workers()
	tps := parallel.Map(w, len(ks), func(i int) float64 {
		k := ks[i]
		table := routing.KShortest(top.Graph, pairs, k, w)
		// MPTCP8 consumes no randomness; no dead "sim" split (flowsim's
		// stream contract).
		return flowsim.Simulate(pat.Flows, table, flowsim.MPTCP8, nil).Mean()
	})
	for i, k := range ks {
		t.AddRow(k, tps[i])
	}
	t.Notes = append(t.Notes, "diminishing returns past k≈8 justify the paper's choice")
	return t
}

// AblationOversubscription sweeps the servers-per-switch dial on a fixed
// switch pool — the "great flexibility in degrees of oversubscription" the
// paper's abstract claims. The dial is swept incrementally: one topology
// family grown a server per switch at a time (adjacent points share most
// cables), with the solver warm-started from the previous point in sweep
// order. Options.ColdStart keeps the identical sweep but solves each
// point from scratch.
func AblationOversubscription(opt Options) *Table {
	n, ports := 60, 12
	if !opt.Quick {
		n, ports = 125, 12
	}
	src := rng.New(opt.Seed).Split("ablation-over")
	t := &Table{
		ID:      "ablation-oversubscription",
		Title:   fmt.Sprintf("throughput vs servers per switch (%d %d-port switches)", n, ports),
		Columns: []string{"servers_per_switch", "servers", "net_degree", "throughput"},
	}
	var srvs []int
	for srv := 1; srv <= ports-3; srv++ {
		if ports-srv < n {
			srvs = append(srvs, srv)
		}
	}
	w := opt.workers()
	base := topology.Jellyfish(n, ports, ports-srvs[0], src.SplitN("topo", srvs[0]))
	fam := capsearch.NewFamily(base, src.Split("grow"))
	sv := mcf.NewSolver(mcf.Options{Workers: w})
	var st *mcf.State
	tps := make([]float64, len(srvs))
	var srvBuf []int // reused across the chain; each pattern dies with its probe
	for i, srv := range srvs {
		top := fam.At(n * srv)
		srvBuf = top.ServerSwitchesInto(srvBuf)
		pat := traffic.RandomPermutation(srvBuf, src.SplitN("traffic", srv))
		if opt.ColdStart {
			st = nil
		}
		var res mcf.Result
		res, st = sv.Solve(top.Graph, pat.Commodities(), st)
		tps[i] = metrics.Clamp01(res.Lambda)
	}
	for i, srv := range srvs {
		t.AddRow(srv, n*srv, ports-srv, tps[i])
	}
	t.Notes = append(t.Notes, "a continuous design space: capacity trades smoothly against server count")
	return t
}

// AblationHeterogeneousExpansion grows a legacy network with bigger
// switches and checks that capacity scales with the added port count —
// the §4.2 heterogeneous-expansion scenario.
func AblationHeterogeneousExpansion(opt Options) *Table {
	base, basePorts := 40, 12
	if !opt.Quick {
		base, basePorts = 80, 12
	}
	srv := 4
	src := rng.New(opt.Seed).Split("ablation-hetero")
	t := &Table{
		ID:      "ablation-heterogeneous",
		Title:   "heterogeneous expansion: adding higher-port switches to a legacy fabric",
		Columns: []string{"new_switches", "new_ports", "servers", "mean_path", "throughput"},
	}
	configs := []struct{ count, ports int }{{0, 0}, {10, 16}, {10, 24}, {20, 24}}
	w := opt.workers()
	type hetRow struct {
		servers  int
		meanPath float64
		tp       float64
	}
	rows := parallel.Map(w, len(configs), func(ci int) hetRow {
		newer := configs[ci]
		ports := make([]int, base+newer.count)
		servers := make([]int, base+newer.count)
		for i := 0; i < base; i++ {
			ports[i], servers[i] = basePorts, srv
		}
		for i := base; i < len(ports); i++ {
			ports[i], servers[i] = newer.ports, srv*2
		}
		top := topology.JellyfishHeterogeneous(ports, servers, src.SplitN(fmt.Sprintf("p%d", newer.ports), newer.count))
		tp := mcfThroughput(top, src.SplitN(fmt.Sprintf("t%d", newer.ports), newer.count), 1)
		return hetRow{top.NumServers(), top.SwitchPathStats().Mean, tp}
	})
	for ci, newer := range configs {
		r := rows[ci]
		t.AddRow(newer.count, newer.ports, r.servers, r.meanPath, r.tp)
	}
	t.Notes = append(t.Notes, "newer high-port switches integrate without restructuring and add usable capacity")
	return t
}

// AblationFailuresRealizableRouting re-runs the Fig. 8 resilience sweep
// under the realizable data plane (kSP-8 + MPTCP) instead of optimal
// routing: do failures hurt more when routing is imperfect?
func AblationFailuresRealizableRouting(opt Options) *Table {
	n, ports, servers := 60, 12, 180
	if !opt.Quick {
		n, ports, servers = 125, 10, 250
	}
	src := rng.New(opt.Seed).Split("ablation-fail")
	trials := opt.trials(3)
	t := &Table{
		ID:      "ablation-failures-routing",
		Title:   "link failures under kSP-8 + MPTCP (realizable routing)",
		Columns: []string{"fail_frac", "throughput", "vs_healthy"},
	}
	fracs := []float64{0, 0.05, 0.10, 0.15, 0.20}
	w := opt.workers()
	tps := parallel.Map(w, len(fracs), func(fi int) float64 {
		f := fracs[fi]
		return parallel.SumFloat64(w, trials, func(i int) float64 {
			tsrc := src.SplitN(fmt.Sprintf("f%.2f", f), i)
			top := spread(n, ports, servers, tsrc.Split("topo"))
			topology.RemoveRandomLinks(top, f, tsrc.Split("fail"))
			return simMean(top, "ksp8", flowsim.MPTCP8, tsrc.Split("sim"), 1) / float64(trials)
		})
	})
	healthy := tps[0]
	for fi, f := range fracs {
		rel := 1.0
		if healthy > 0 {
			rel = tps[fi] / healthy
		}
		t.AddRow(fmt.Sprintf("%.2f", f), tps[fi], rel)
	}
	t.Notes = append(t.Notes, "routes are recomputed on the failed topology: kSP routing sees failures as just another random graph")
	return t
}

// AblationSwitchFailures sweeps whole-switch failures (§4.3 mentions node
// failures alongside link failures): surviving servers keep most of their
// throughput because a random graph minus random nodes is again a random
// graph.
func AblationSwitchFailures(opt Options) *Table {
	n, ports, deg := 60, 12, 8
	if !opt.Quick {
		n, ports, deg = 136, 12, 8
	}
	src := rng.New(opt.Seed).Split("ablation-node-fail")
	trials := opt.trials(3)
	t := &Table{
		ID:      "ablation-switch-failures",
		Title:   "whole-switch failures: throughput of surviving servers (optimal routing)",
		Columns: []string{"fail_frac", "surviving_servers", "throughput"},
	}
	fracs := []float64{0, 0.05, 0.10, 0.20}
	w := opt.workers()
	// Each trial builds one topology and fails a nested set of switches
	// (one permutation prefix per fraction), so adjacent fractions differ
	// only by the newly failed switches' links — the solver warm-starts
	// across the sweep, and the common-random-numbers structure removes
	// between-point topology noise from the degradation curve.
	type trialOut struct {
		surv []int
		tp   []float64
	}
	perTrial := parallel.Map(w, trials, func(i int) trialOut {
		tsrc := src.SplitN("trial", i)
		base := topology.Jellyfish(n, ports, deg, tsrc.Split("topo"))
		perm := tsrc.Split("fail").Perm(n)
		sv := mcf.NewSolver(mcf.Options{Workers: 1})
		var st *mcf.State
		out := trialOut{surv: make([]int, len(fracs)), tp: make([]float64, len(fracs))}
		var srvBuf []int // trial-local: reused across the nested failure chain
		for fi, f := range fracs {
			top := base.Clone()
			topology.FailSwitches(top, perm[:int(f*float64(n))])
			srvBuf = top.ServerSwitchesInto(srvBuf)
			pat := traffic.RandomPermutation(srvBuf, tsrc.SplitN("traffic", fi))
			if opt.ColdStart {
				st = nil
			}
			var res mcf.Result
			res, st = sv.Solve(top.Graph, pat.Commodities(), st)
			out.surv[fi] = top.NumServers()
			out.tp[fi] = metrics.Clamp01(res.Lambda) / float64(trials)
		}
		return out
	})
	for fi, f := range fracs {
		surv, tp := 0, 0.0
		for _, v := range perTrial {
			surv = v.surv[fi] // last trial's survivor count, as before
			tp += v.tp[fi]
		}
		t.AddRow(fmt.Sprintf("%.2f", f), surv, tp)
	}
	t.Notes = append(t.Notes, "graceful degradation extends from links (Fig. 8) to whole switches")
	return t
}

// AblationAllToAll evaluates jellyfish vs fat-tree under uniform
// all-to-all traffic — the traffic-pattern sensitivity the paper leaves to
// future work (§4, footnote on traffic matrices).
func AblationAllToAll(opt Options) *Table {
	k := 8
	if !opt.Quick {
		k = 10
	}
	src := rng.New(opt.Seed).Split("ablation-a2a")
	ft := topology.FatTree(k)
	jf := spread(ft.NumSwitches(), k, ft.NumServers(), src.Split("jf"))

	t := &Table{
		ID:      "ablation-alltoall",
		Title:   fmt.Sprintf("all-to-all traffic, optimal routing, equal equipment (k=%d)", k),
		Columns: []string{"topology", "servers", "throughput"},
	}
	w := opt.workers()
	eval := func(top *topology.Topology) float64 {
		comms := traffic.AllToAll(top.ServerSwitches())
		res := mcf.MaxConcurrentFlow(top.Graph, comms, mcf.Options{Workers: w})
		return metrics.Clamp01(res.Lambda)
	}
	tps := parallel.Map(w, 2, func(i int) float64 {
		if i == 0 {
			return eval(ft)
		}
		return eval(jf)
	})
	t.AddRow("fattree", ft.NumServers(), tps[0])
	t.AddRow("jellyfish", jf.NumServers(), tps[1])
	t.Notes = append(t.Notes, "jellyfish's advantage is not an artifact of permutation traffic")
	return t
}

// AblationPacketVsFluid cross-validates the three evaluation stacks on the
// same topologies: optimal fluid routing (mcf), the max-min flow model
// (flowsim), and the discrete-event AIMD packet simulator (packetsim, the
// htsim stand-in). Agreement between the last two justifies using the
// cheap fluid model for the paper-scale sweeps.
func AblationPacketVsFluid(opt Options) *Table {
	sizes := []int{60, 120}
	if !opt.Quick {
		sizes = []int{60, 120, 240}
	}
	src := rng.New(opt.Seed).Split("ablation-pkt")
	t := &Table{
		ID:      "ablation-packet-vs-fluid",
		Title:   "three evaluation stacks on the same topology (kSP-8 + MPTCP)",
		Columns: []string{"servers", "optimal_mcf", "fluid_flowsim", "packet_des", "des/fluid"},
	}
	w := opt.workers()
	rows := parallel.Map(w, len(sizes), func(si int) [3]float64 {
		servers := sizes[si]
		tsrc := src.Split(fmt.Sprintf("s%d", servers))
		top := spread(servers/3, 12, servers, tsrc.Split("topo"))
		pat := traffic.RandomPermutation(top.ServerSwitches(), tsrc.Split("traffic"))
		table := routeTable(top, pat, "ksp8", tsrc.Split("routes"), w)

		optimal := mcfThroughput(top, tsrc.Split("mcf"), 1)
		// MPTCP8 consumes no randomness; no dead "fluid" split (flowsim's
		// stream contract). The DES keeps its stream: uncoupled configs
		// hash routes from it, so the signature stays uniform there.
		fluid := flowsim.Simulate(pat.Flows, table, flowsim.MPTCP8, nil).Mean()
		des := packetsim.Simulate(pat.Flows, table,
			packetsim.Config{Subflows: 8, Coupled: true, Horizon: 6000}, tsrc.Split("des")).Mean()
		return [3]float64{optimal, fluid, des}
	})
	for si, servers := range sizes {
		optimal, fluid, des := rows[si][0], rows[si][1], rows[si][2]
		ratio := 1.0
		if fluid > 0 {
			ratio = des / fluid
		}
		t.AddRow(servers, optimal, fluid, des, ratio)
	}
	t.Notes = append(t.Notes,
		"the DES actually runs AIMD windows over drop-tail queues; agreement with the fluid model validates the DESIGN.md §8 substitution")
	return t
}

// AblationHotspot evaluates resilience to skewed traffic: a growing
// fraction of servers all send toward one hot rack. Random graphs have no
// structural choke point, so degradation tracks the hot rack's own
// capacity rather than collapsing globally.
func AblationHotspot(opt Options) *Table {
	n, ports, deg := 60, 12, 8
	if !opt.Quick {
		n, ports, deg = 125, 12, 8
	}
	src := rng.New(opt.Seed).Split("ablation-hotspot")
	trials := opt.trials(3)
	t := &Table{
		ID:      "ablation-hotspot",
		Title:   fmt.Sprintf("hotspot traffic: fraction of senders targeting one rack (%d switches)", n),
		Columns: []string{"hot_frac", "throughput"},
	}
	fracs := []float64{0, 0.1, 0.2, 0.4}
	w := opt.workers()
	// Each trial sweeps the hot fraction on one fixed topology — the pure
	// commodity-perturbation case for the solver's warm starts: the graph
	// (and so the solver's arc arrays) is reused unchanged across the
	// sweep, only the demand set shifts toward the hot rack.
	perTrial := parallel.Map(w, trials, func(i int) []float64 {
		tsrc := src.SplitN("trial", i)
		top := topology.Jellyfish(n, ports, deg, tsrc.Split("topo"))
		sv := mcf.NewSolver(mcf.Options{Workers: 1})
		var st *mcf.State
		out := make([]float64, len(fracs))
		for fi, f := range fracs {
			pat := traffic.Hotspot(top.ServerSwitches(), 0, f, tsrc.SplitN("traffic", fi))
			if opt.ColdStart {
				st = nil
			}
			var res mcf.Result
			res, st = sv.Solve(top.Graph, pat.Commodities(), st)
			out[fi] = metrics.Clamp01(res.Lambda) / float64(trials)
		}
		return out
	})
	for fi, f := range fracs {
		tp := 0.0
		for _, v := range perTrial {
			tp += v[fi]
		}
		t.AddRow(fmt.Sprintf("%.1f", f), tp)
	}
	t.Notes = append(t.Notes, "concurrent throughput is pinned by the hot rack ingress capacity (r links vs hot demand); the rest of the fabric is unaffected")
	return t
}
