// Package experiments reproduces every table and figure of the Jellyfish
// paper's evaluation (§4-§6). Each function returns a Table whose rows are
// the same series the paper plots; cmd/experiments prints them and
// bench_test.go wraps them as benchmarks. DESIGN.md §3 maps experiment IDs
// to the modules involved.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"jellyfish/internal/parallel"
)

// Options control experiment scale.
type Options struct {
	// Seed is the root seed; every randomized piece derives from it.
	Seed uint64
	// Trials is the number of independent runs averaged per data point
	// (0 selects each experiment's default).
	Trials int
	// Quick trims sweeps to small sizes so the whole suite runs in
	// seconds; full-scale sweeps match the paper's sizes.
	Quick bool
	// Workers sets the fan-out width. Experiments nest at most two
	// Workers-wide levels (sweep points × trials, or a narrow stage ×
	// per-source route builds / solver batches), so at most ~Workers²
	// tasks are in flight; per-trial solver and simulator runs are
	// serial. 0 selects runtime.NumCPU(); 1 runs the whole experiment
	// serially. For a hard CPU cap on a shared machine, also bound
	// GOMAXPROCS. Identical Seed yields bit-identical tables for every
	// Workers value: per-trial random streams are derived from the root
	// seed by stable index, never by completion order.
	Workers int
	// ColdStart disables the flow solver's warm-start threading in the
	// capacity searches and sweeps that use it (fig2c and the mcf-driven
	// ablations), solving every point from scratch. Instances and random
	// streams are identical in both modes — the flag switches solver
	// seeding only, so it is the A/B lever for the warm-start regression
	// benchmarks and the warm-vs-cold equivalence tests.
	ColdStart bool
}

// workers resolves the Workers knob (0 = all cores).
func (o Options) workers() int { return parallel.Workers(o.Workers) }

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick && def > 3 {
		return 3
	}
	return def
}

// A Table is a printable reproduction of one paper table or figure.
type Table struct {
	ID      string // "fig2c", "table1", ...
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, " ", strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// All lists every experiment ID with its runner, in paper order.
func All() []struct {
	ID  string
	Run func(Options) *Table
} {
	return []struct {
		ID  string
		Run func(Options) *Table
	}{
		{"fig1c", Fig1cPathLengthCDF},
		{"fig2a", Fig2aBisectionVsServers},
		{"fig2b", Fig2bEquipmentCost},
		{"fig2c", Fig2cServersAtFullThroughput},
		{"fig3", Fig3DegreeDiameter},
		{"fig4", Fig4SWDC},
		{"fig5", Fig5PathLength},
		{"fig6", Fig6IncrementalVsScratch},
		{"fig7", Fig7LEGUP},
		{"fig8", Fig8Failures},
		{"fig9", Fig9ECMPPathCounts},
		{"table1", Table1RoutingCongestion},
		{"fig10", Fig10SimVsOptimal},
		{"fig11", Fig11PacketLevelServers},
		{"fig12", Fig12Stability},
		{"fig13", Fig13Fairness},
		{"fig14", Fig14Locality},
		{"ablation-routing-k", AblationRoutingK},
		{"ablation-oversubscription", AblationOversubscription},
		{"ablation-heterogeneous", AblationHeterogeneousExpansion},
		{"ablation-failures-routing", AblationFailuresRealizableRouting},
		{"ablation-switch-failures", AblationSwitchFailures},
		{"ablation-alltoall", AblationAllToAll},
		{"ablation-packet-vs-fluid", AblationPacketVsFluid},
		{"ablation-hotspot", AblationHotspot},
	}
}

// Lookup finds an experiment runner by ID (returns nil if unknown).
func Lookup(id string) func(Options) *Table {
	for _, e := range All() {
		if e.ID == id {
			return e.Run
		}
	}
	return nil
}
