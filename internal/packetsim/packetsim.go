// Package packetsim is a discrete-event packet-level network simulator in
// the spirit of htsim, the MPTCP simulator the paper uses for §5. It
// complements internal/flowsim: flowsim computes the max-min fluid
// equilibrium directly, while packetsim actually runs AIMD congestion
// windows over store-and-forward links with drop-tail queues, providing an
// independent check that the fluid model lands where real transport
// dynamics land.
//
// The model, deliberately compact but mechanically faithful:
//
//   - Every directed switch-switch link and every server NIC is a Link
//     with a fixed packet service time (1/line-rate) and a bounded FIFO
//     queue; packets are dropped at the tail when the queue is full.
//   - A flow is one or more subflows, each source-routed along a fixed
//     switch path. Subflows run TCP NewReno-style AIMD: slow start to
//     ssthresh, then +1 MSS per RTT; a drop detected via duplicate-ACK
//     (modeled as a loss event when a packet of that subflow is dropped)
//     halves the window.
//   - MPTCP couples its subflows with LIA-flavored increase: each ACK
//     grows the subflow by 1/wtotal instead of 1/w, so the aggregate is
//     roughly as aggressive as one TCP, while drops halve only the
//     affected subflow — traffic shifts away from congested paths.
//   - ACKs return after the forward one-way delay without consuming
//     bandwidth (standard teaching-simulator simplification).
//
// Time is in packet service units of the line rate: one unit = the time a
// NIC needs to serialize one MSS. Goodput per flow is measured over the
// second half of the run (the first half warms up).
package packetsim

import (
	"container/heap"

	"jellyfish/internal/rng"
	"jellyfish/internal/routing"
	"jellyfish/internal/traffic"
)

// Config tunes the simulator. Zero values select defaults.
type Config struct {
	// QueuePackets is the per-link FIFO capacity (default 64).
	QueuePackets int
	// Horizon is the simulated duration in packet service times
	// (default 4000).
	Horizon float64
	// PropDelay is the per-hop propagation delay in service times
	// (default 0.1).
	PropDelay float64
	// Subflows per flow for MPTCP (default 8).
	Subflows int
	// Coupled selects MPTCP coupling (LIA-style increase); false gives
	// independent NewReno subflows.
	Coupled bool
}

func (c Config) withDefaults() Config {
	if c.QueuePackets == 0 {
		c.QueuePackets = 64
	}
	if c.Horizon == 0 {
		c.Horizon = 4000
	}
	if c.PropDelay == 0 {
		c.PropDelay = 0.1
	}
	if c.Subflows == 0 {
		c.Subflows = 8
	}
	return c
}

// Result reports measured per-flow goodput in NIC-rate units.
type Result struct {
	FlowGoodput []float64
}

// Mean returns the average goodput across flows.
func (r Result) Mean() float64 {
	if len(r.FlowGoodput) == 0 {
		return 0
	}
	var s float64
	for _, x := range r.FlowGoodput {
		s += x
	}
	return s / float64(len(r.FlowGoodput))
}

// link is a unit-rate transmission resource with a drop-tail queue. With
// unit-size packets, the number of packets in the system at time t is
// exactly busyUntil − t service times, so no explicit queue is needed.
type link struct {
	busyUntil float64
	capQueue  int
}

// subflow is one AIMD congestion-window instance pinned to a path.
type subflow struct {
	flow     int
	links    []int // link IDs along the path, in order (incl. NICs)
	cwnd     float64
	ssthresh float64
	inFlight int
	// delivered counts packets ACKed after warmup.
	delivered   int
	lossPending bool
}

type evKind int

const (
	evArrive evKind = iota // packet reaches head of link l, begins service
	evAck                  // ACK returns to the sender
)

type event struct {
	t    time_
	kind evKind
	sub  int
	hop  int
	drop bool
}

type time_ = float64

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulate runs the packet simulation for the given flows over the route
// table. proto semantics match flowsim: TCP1 = one subflow on a hashed
// route, TCP8 = eight independent subflows on hashed routes, MPTCP8 =
// eight coupled subflows on distinct routes.
func Simulate(flows []traffic.Flow, table *routing.Table, cfgIn Config, src *rng.Source) Result {
	cfg := cfgIn.withDefaults()

	// Link registry: NICs and directed switch links.
	linkID := map[[2]int]int{}
	var links []link
	getLink := func(key [2]int) int {
		if id, ok := linkID[key]; ok {
			return id
		}
		links = append(links, link{capQueue: cfg.QueuePackets})
		linkID[key] = len(links) - 1
		return len(links) - 1
	}

	var subs []subflow
	flowRate := make([]float64, len(flows))
	local := make([]bool, len(flows))
	flowSubs := make([][]int, len(flows))

	for fi, f := range flows {
		if f.SrcSwitch == f.DstSwitch {
			local[fi] = true
			flowRate[fi] = 1
			continue
		}
		paths := table.PathsFor(f.SrcSwitch, f.DstSwitch)
		if len(paths) == 0 {
			continue
		}
		n := cfg.Subflows
		for s := 0; s < n; s++ {
			var p []int
			if cfg.Coupled {
				p = paths[s%len(paths)]
			} else {
				p = paths[src.Intn(len(paths))]
			}
			ls := []int{getLink([2]int{-1, f.SrcServer})}
			for i := 0; i+1 < len(p); i++ {
				ls = append(ls, getLink([2]int{p[i], p[i+1]}))
			}
			ls = append(ls, getLink([2]int{-2, f.DstServer}))
			subs = append(subs, subflow{
				flow: fi, links: ls, cwnd: 2, ssthresh: 32,
			})
			flowSubs[fi] = append(flowSubs[fi], len(subs)-1)
		}
	}

	events := &eventHeap{}
	warmup := cfg.Horizon / 2

	// inject sends packets for subflow si until cwnd is filled.
	var inject func(now float64, si int)
	inject = func(now float64, si int) {
		sf := &subs[si]
		for sf.inFlight < int(sf.cwnd) {
			sf.inFlight++
			heap.Push(events, event{t: now, kind: evArrive, sub: si, hop: 0})
		}
	}

	// serve enqueues the packet at links[hop] (or drops it at the tail).
	serve := func(now float64, si, hop int) {
		sf := &subs[si]
		l := &links[sf.links[hop]]
		backlog := l.busyUntil - now
		if backlog < 0 {
			backlog = 0
		}
		if backlog >= float64(l.capQueue) {
			// Drop-tail: the sender learns via duplicate ACKs after the
			// one-way delay accumulated so far.
			heap.Push(events, event{t: now + cfg.PropDelay*float64(hop+1), kind: evAck, sub: si, drop: true})
			return
		}
		done := now + backlog + 1 // queueing + one service time
		l.busyUntil = done
		if hop+1 < len(sf.links) {
			heap.Push(events, event{t: done + cfg.PropDelay, kind: evArrive, sub: si, hop: hop + 1})
		} else {
			heap.Push(events, event{t: done + cfg.PropDelay, kind: evAck, sub: si})
		}
	}

	coupledIncrease := func(fi int) float64 {
		var wtot float64
		for _, si := range flowSubs[fi] {
			wtot += subs[si].cwnd
		}
		if wtot < 1 {
			wtot = 1
		}
		return 1 / wtot
	}

	for si := range subs {
		inject(0, si)
	}

	for events.Len() > 0 {
		ev := heap.Pop(events).(event)
		if ev.t > cfg.Horizon {
			break
		}
		sf := &subs[ev.sub]
		switch ev.kind {
		case evArrive:
			serve(ev.t, ev.sub, ev.hop)
		case evAck:
			sf.inFlight--
			if ev.drop {
				// Loss event: multiplicative decrease (once per window).
				if !sf.lossPending {
					sf.ssthresh = sf.cwnd / 2
					if sf.ssthresh < 1 {
						sf.ssthresh = 1
					}
					sf.cwnd = sf.ssthresh
					sf.lossPending = true
				}
			} else {
				sf.lossPending = false
				if ev.t > warmup {
					sf.delivered++
				}
				if sf.cwnd < sf.ssthresh {
					sf.cwnd++ // slow start
				} else if cfg.Coupled {
					sf.cwnd += coupledIncrease(sf.flow)
				} else {
					sf.cwnd += 1 / sf.cwnd // congestion avoidance
				}
			}
			inject(ev.t, ev.sub)
		}
	}

	window := cfg.Horizon - warmup
	for si := range subs {
		flowRate[subs[si].flow] += float64(subs[si].delivered) / window
	}
	for fi := range flowRate {
		if !local[fi] && flowRate[fi] > 1 {
			flowRate[fi] = 1
		}
	}
	return Result{FlowGoodput: flowRate}
}
