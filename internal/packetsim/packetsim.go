// Package packetsim is a discrete-event packet-level network simulator in
// the spirit of htsim, the MPTCP simulator the paper uses for §5. It
// complements internal/flowsim: flowsim computes the max-min fluid
// equilibrium directly, while packetsim actually runs AIMD congestion
// windows over store-and-forward links with drop-tail queues, providing an
// independent check that the fluid model lands where real transport
// dynamics land.
//
// The model, deliberately compact but mechanically faithful:
//
//   - Every directed switch-switch link and every server NIC is a link
//     with a fixed packet service time (1/line-rate) and a bounded FIFO
//     queue; packets are dropped at the tail when the queue is full.
//   - A flow is one or more subflows, each source-routed along a fixed
//     switch path. Subflows run TCP NewReno-style AIMD: slow start to
//     ssthresh, then +1 MSS per RTT; a drop detected via duplicate-ACK
//     (modeled as a loss event when a packet of that subflow is dropped)
//     halves the window.
//   - MPTCP couples its subflows with LIA-flavored increase: each ACK
//     grows the subflow by 1/wtotal instead of 1/w, so the aggregate is
//     roughly as aggressive as one TCP, while drops halve only the
//     affected subflow — traffic shifts away from congested paths.
//   - ACKs return after the forward one-way delay without consuming
//     bandwidth (standard teaching-simulator simplification).
//
// Time is in packet service units of the line rate: one unit = the time a
// NIC needs to serialize one MSS. Goodput per flow is measured over the
// second half of the run (the first half warms up).
//
// The event queue is a hand-inlined 4-ary heap of indices into a flat
// event arena with a free-list — no container/heap boxing, no allocation
// per event. Simultaneous events are ordered by injection sequence
// (FIFO), making the event order — and so every result — a fully
// specified function of the inputs. Like flowsim, the compiled Sim form
// reuses all scratch across calls and runs the event loop at zero
// steady-state allocations (TestPacketZeroAllocs pins it).
package packetsim

import (
	"jellyfish/internal/resarena"
	"jellyfish/internal/rng"
	"jellyfish/internal/routing"
	"jellyfish/internal/traffic"
)

// Config tunes the simulator. Zero values select defaults.
type Config struct {
	// QueuePackets is the per-link FIFO capacity (default 64).
	QueuePackets int
	// Horizon is the simulated duration in packet service times
	// (default 4000).
	Horizon float64
	// PropDelay is the per-hop propagation delay in service times
	// (default 0.1).
	PropDelay float64
	// Subflows per flow for MPTCP (default 8).
	Subflows int
	// Coupled selects MPTCP coupling (LIA-style increase); false gives
	// independent NewReno subflows.
	Coupled bool
}

func (c Config) withDefaults() Config {
	if c.QueuePackets == 0 {
		c.QueuePackets = 64
	}
	if c.Horizon == 0 {
		c.Horizon = 4000
	}
	if c.PropDelay == 0 {
		c.PropDelay = 0.1
	}
	if c.Subflows == 0 {
		c.Subflows = 8
	}
	return c
}

// Result reports measured per-flow goodput in NIC-rate units.
type Result struct {
	FlowGoodput []float64
}

// Mean returns the average goodput across flows.
func (r Result) Mean() float64 {
	if len(r.FlowGoodput) == 0 {
		return 0
	}
	var s float64
	for _, x := range r.FlowGoodput {
		s += x
	}
	return s / float64(len(r.FlowGoodput))
}

// subflow is one AIMD congestion-window instance pinned to a path. Its
// links live in the Sim's flat subLinkIDs pool at [linkStart, linkEnd).
type subflow struct {
	flow               int32
	linkStart, linkEnd int32
	inFlight           int32
	delivered          int32
	lossPending        bool
	cwnd               float64
	ssthresh           float64
}

type evKind uint8

const (
	evArrive evKind = iota // packet reaches head of link l, begins service
	evAck                  // ACK returns to the sender
)

// event is one arena slot. seq breaks time ties FIFO, fully specifying
// the simulation order.
type event struct {
	t    float64
	seq  uint64
	sub  int32
	hop  int32
	kind evKind
	drop bool
}

// A Sim is a compiled, reusable packet simulator instance; see the
// package comment. Not safe for concurrent use — one per worker
// goroutine. Reuse across different topologies and tables is safe and
// bit-identical to a fresh instance (link identity is keyed by server id
// and directed switch pair, with per-call busy-state invalidated by
// generation stamp).
type Sim struct {
	arena resarena.Arena

	// busyUntil per link arena id; valid where gen == curGen. With
	// unit-size packets the queue length at time t is exactly
	// busyUntil − t service times, so no explicit queue is needed.
	busy   []float64
	gen    []uint32
	curGen uint32

	subs         []subflow
	subLinkIDs   []int32
	flowSubStart []int32 // subflows of flow fi: [start[fi], start[fi+1])

	events []event
	free   []int32
	heap   []heapEntry
	seq    uint64

	cfg    Config
	warmup float64

	rates []float64
	local []bool

	// interrupt, when set, is polled every interruptStride popped
	// events; a firing poll abandons the event loop early with partial
	// goodputs. Callers that interrupt must discard the Result. Nil —
	// or never firing — leaves results byte-identical, and the poll
	// allocates nothing.
	interrupt func() bool
}

// interruptStride is how many heap pops run between cancellation polls:
// frequent enough that a cancel lands in well under a millisecond of
// simulated work, sparse enough to stay invisible in the event loop's
// profile.
const interruptStride = 1024

// SetInterrupt installs (nil clears) the cooperative cancellation poll
// (see the interrupt field). A Sim cached as warm state is owned by one
// shard worker, which sets the poll before a job and clears it after —
// never concurrently with Simulate.
func (s *Sim) SetInterrupt(f func() bool) { s.interrupt = f }

// NewSim returns a Sim pre-sized for the given switch and server counts
// (both lower bounds; the arena grows on demand).
func NewSim(switches, servers int) *Sim {
	s := &Sim{}
	s.arena.EnsureSwitches(switches)
	s.arena.EnsureServers(servers)
	return s
}

// Simulate runs the packet simulation for the given flows over the route
// table. proto semantics match flowsim: TCP1 = one subflow on a hashed
// route, TCP8 = eight independent subflows on hashed routes, MPTCP8 =
// eight coupled subflows on distinct routes.
//
// The returned Result aliases the instance's goodput buffer: it is valid
// until the next Simulate call on this Sim.
//
//jellyvet:hotpath
func (s *Sim) Simulate(flows []traffic.Flow, table *routing.Table, cfgIn Config, src *rng.Source) Result {
	s.cfg = cfgIn.withDefaults()
	s.warmup = s.cfg.Horizon / 2
	s.curGen++
	if s.curGen == 0 {
		clear(s.gen)
		s.curGen = 1
	}
	s.rates = resarena.Grow(s.rates, len(flows))
	s.local = resarena.Grow(s.local, len(flows))
	for i := range s.rates {
		s.rates[i] = 0
	}
	for i := range s.local {
		s.local[i] = false
	}
	s.subs = s.subs[:0]
	s.subLinkIDs = s.subLinkIDs[:0]
	s.flowSubStart = resarena.Grow(s.flowSubStart, len(flows)+1)
	s.flowSubStart[0] = 0

	for fi := range flows {
		f := &flows[fi]
		if f.SrcSwitch == f.DstSwitch {
			s.local[fi] = true
			s.rates[fi] = 1
			s.flowSubStart[fi+1] = s.flowSubStart[fi]
			continue
		}
		paths := table.PathsFor(f.SrcSwitch, f.DstSwitch)
		if len(paths) == 0 {
			s.flowSubStart[fi+1] = s.flowSubStart[fi]
			continue
		}
		for k := 0; k < s.cfg.Subflows; k++ {
			var p []int
			if s.cfg.Coupled {
				p = paths[k%len(paths)]
			} else {
				p = paths[src.Intn(len(paths))]
			}
			start := int32(len(s.subLinkIDs))
			s.subLinkIDs = append(s.subLinkIDs, s.touch(s.arena.SrcNIC(f.SrcServer))) //jellyvet:allow hotpath -- grows Sim-owned arena reused across calls; steady state is zero-alloc (TestPacketZeroAllocs)
			for i := 0; i+1 < len(p); i++ {
				s.subLinkIDs = append(s.subLinkIDs, s.touch(s.arena.Link(p[i], p[i+1]))) //jellyvet:allow hotpath -- grows Sim-owned arena reused across calls; steady state is zero-alloc (TestPacketZeroAllocs)
			}
			s.subLinkIDs = append(s.subLinkIDs, s.touch(s.arena.DstNIC(f.DstServer))) //jellyvet:allow hotpath -- grows Sim-owned arena reused across calls; steady state is zero-alloc (TestPacketZeroAllocs)
			s.subs = append(s.subs, subflow{                                          //jellyvet:allow hotpath -- grows Sim-owned arena reused across calls; steady state is zero-alloc (TestPacketZeroAllocs)
				flow: int32(fi), linkStart: start, linkEnd: int32(len(s.subLinkIDs)),
				cwnd: 2, ssthresh: 32,
			})
		}
		s.flowSubStart[fi+1] = int32(len(s.subs))
	}

	s.events = s.events[:0]
	s.free = s.free[:0]
	s.heap = s.heap[:0]
	s.seq = 0

	for si := range s.subs {
		s.inject(0, int32(si))
	}

	popped := 0
	for len(s.heap) > 0 {
		if popped%interruptStride == 0 && s.interrupt != nil && s.interrupt() {
			break // cancelled: partial goodputs, discarded by the caller
		}
		popped++
		ei := s.pop()
		ev := s.events[ei]
		s.free = append(s.free, ei) //jellyvet:allow hotpath -- grows Sim-owned arena reused across calls; steady state is zero-alloc (TestPacketZeroAllocs)
		if ev.t > s.cfg.Horizon {
			break
		}
		sf := &s.subs[ev.sub]
		switch ev.kind {
		case evArrive:
			s.serve(ev.t, ev.sub, ev.hop)
		case evAck:
			sf.inFlight--
			if ev.drop {
				// Loss event: multiplicative decrease (once per window).
				if !sf.lossPending {
					sf.ssthresh = sf.cwnd / 2
					if sf.ssthresh < 1 {
						sf.ssthresh = 1
					}
					sf.cwnd = sf.ssthresh
					sf.lossPending = true
				}
			} else {
				sf.lossPending = false
				if ev.t > s.warmup {
					sf.delivered++
				}
				if sf.cwnd < sf.ssthresh {
					sf.cwnd++ // slow start
				} else if s.cfg.Coupled {
					sf.cwnd += s.coupledIncrease(sf.flow)
				} else {
					sf.cwnd += 1 / sf.cwnd // congestion avoidance
				}
			}
			s.inject(ev.t, ev.sub)
		}
	}

	window := s.cfg.Horizon - s.warmup
	for si := range s.subs {
		s.rates[s.subs[si].flow] += float64(s.subs[si].delivered) / window
	}
	for fi := range s.rates {
		if !s.local[fi] && s.rates[fi] > 1 {
			s.rates[fi] = 1
		}
	}
	return Result{FlowGoodput: s.rates}
}

// Simulate is the one-shot form: it builds a throwaway Sim. Use a Sim for
// repeated simulation.
func Simulate(flows []traffic.Flow, table *routing.Table, cfgIn Config, src *rng.Source) Result {
	return new(Sim).Simulate(flows, table, cfgIn, src)
}

// touch grows the busy-state tables to cover link arena id r and resets
// its state on first touch of the current call.
//
//jellyvet:hotpath
func (s *Sim) touch(r int32) int32 {
	for int(r) >= len(s.gen) {
		s.gen = append(s.gen, 0)   //jellyvet:allow hotpath -- grows Sim-owned arena reused across calls; steady state is zero-alloc (TestPacketZeroAllocs)
		s.busy = append(s.busy, 0) //jellyvet:allow hotpath -- grows Sim-owned arena reused across calls; steady state is zero-alloc (TestPacketZeroAllocs)
	}
	if s.gen[r] != s.curGen {
		s.gen[r] = s.curGen
		s.busy[r] = 0
	}
	return r
}

// inject sends packets for subflow si until its window is filled.
//
//jellyvet:hotpath
func (s *Sim) inject(now float64, si int32) {
	sf := &s.subs[si]
	for sf.inFlight < int32(sf.cwnd) {
		sf.inFlight++
		s.push(event{t: now, kind: evArrive, sub: si, hop: 0})
	}
}

// serve enqueues the packet at the subflow's hop-th link (or drops it at
// the tail).
//
//jellyvet:hotpath
func (s *Sim) serve(now float64, si, hop int32) {
	sf := &s.subs[si]
	l := s.subLinkIDs[sf.linkStart+hop]
	backlog := s.busy[l] - now
	if backlog < 0 {
		backlog = 0
	}
	if backlog >= float64(s.cfg.QueuePackets) {
		// Drop-tail: the sender learns via duplicate ACKs after the
		// one-way delay accumulated so far.
		s.push(event{t: now + s.cfg.PropDelay*float64(hop+1), kind: evAck, sub: si, drop: true})
		return
	}
	done := now + backlog + 1 // queueing + one service time
	s.busy[l] = done
	if sf.linkStart+hop+1 < sf.linkEnd {
		s.push(event{t: done + s.cfg.PropDelay, kind: evArrive, sub: si, hop: hop + 1})
	} else {
		s.push(event{t: done + s.cfg.PropDelay, kind: evAck, sub: si})
	}
}

//jellyvet:hotpath
func (s *Sim) coupledIncrease(fi int32) float64 {
	var wtot float64
	for si := s.flowSubStart[fi]; si < s.flowSubStart[fi+1]; si++ {
		wtot += s.subs[si].cwnd
	}
	if wtot < 1 {
		wtot = 1
	}
	return 1 / wtot
}

// ---- event arena + 4-ary index heap ----

// heapEntry carries the ordering key (time, injection sequence) alongside
// the arena index, so heap comparisons never chase pointers into the
// arena — sifts stay within the contiguous heap array.
type heapEntry struct {
	t   float64
	seq uint64
	ei  int32
}

func (a heapEntry) less(b heapEntry) bool {
	return a.t < b.t || (a.t == b.t && a.seq < b.seq)
}

// push stores ev in a free arena slot (or a new one) and sifts its entry
// up the heap.
//
//jellyvet:hotpath
func (s *Sim) push(ev event) {
	ev.seq = s.seq
	s.seq++
	var ei int32
	if n := len(s.free); n > 0 {
		ei = s.free[n-1]
		s.free = s.free[:n-1]
		s.events[ei] = ev
	} else {
		ei = int32(len(s.events))
		s.events = append(s.events, ev) //jellyvet:allow hotpath -- grows Sim-owned arena reused across calls; steady state is zero-alloc (TestPacketZeroAllocs)
	}
	e := heapEntry{t: ev.t, seq: ev.seq, ei: ei}
	h := s.heap
	i := len(h)
	h = append(h, e) //jellyvet:allow hotpath -- grows Sim-owned arena reused across calls; steady state is zero-alloc (TestPacketZeroAllocs)
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
	s.heap = h
}

// pop removes and returns the arena index of the earliest event. The
// caller reads the slot and returns it to the free-list.
//
//jellyvet:hotpath
func (s *Sim) pop() int32 {
	h := s.heap
	top := h[0].ei
	last := h[len(h)-1]
	h = h[:len(h)-1]
	if len(h) > 0 {
		i := 0
		for {
			first := 4*i + 1
			if first >= len(h) {
				break
			}
			best := first
			end := first + 4
			if end > len(h) {
				end = len(h)
			}
			for c := first + 1; c < end; c++ {
				if h[c].less(h[best]) {
					best = c
				}
			}
			if !h[best].less(last) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	s.heap = h
	return top
}
