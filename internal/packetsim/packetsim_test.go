package packetsim

import (
	"math"
	"testing"

	"jellyfish/internal/flowsim"
	"jellyfish/internal/graph"
	"jellyfish/internal/rng"
	"jellyfish/internal/routing"
	"jellyfish/internal/topology"
	"jellyfish/internal/traffic"
)

func tcp1(c Config) Config  { c.Subflows = 1; return c }
func mptcp(c Config) Config { c.Subflows = 8; c.Coupled = true; return c }

func tableFor(g *graph.Graph, flows []traffic.Flow, ksp bool) *routing.Table {
	var sd [][2]int
	for _, f := range flows {
		sd = append(sd, [2]int{f.SrcSwitch, f.DstSwitch})
	}
	pairs := routing.PairsForCommodities(sd)
	if ksp {
		return routing.KShortest(g, pairs, 8, 1)
	}
	return routing.ECMP(g, pairs, 8, rng.New(77), 1)
}

func TestSingleFlowSaturatesLink(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	flows := []traffic.Flow{{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 1}}
	res := Simulate(flows, tableFor(g, flows, false), tcp1(Config{}), rng.New(1))
	if res.FlowGoodput[0] < 0.85 {
		t.Fatalf("single flow goodput = %v, want near line rate", res.FlowGoodput[0])
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	flows := []traffic.Flow{
		{SrcServer: 0, DstServer: 2, SrcSwitch: 0, DstSwitch: 1},
		{SrcServer: 1, DstServer: 3, SrcSwitch: 0, DstSwitch: 1},
	}
	res := Simulate(flows, tableFor(g, flows, false), tcp1(Config{Horizon: 8000}), rng.New(2))
	total := res.FlowGoodput[0] + res.FlowGoodput[1]
	if total > 1.02 {
		t.Fatalf("two flows exceed link capacity: %v", total)
	}
	if total < 0.80 {
		t.Fatalf("link badly underutilized: %v", total)
	}
	// AIMD fairness: neither flow starved.
	ratio := res.FlowGoodput[0] / res.FlowGoodput[1]
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("unfair split: %v vs %v", res.FlowGoodput[0], res.FlowGoodput[1])
	}
}

func TestIntraSwitchFullRate(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	flows := []traffic.Flow{{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 0}}
	res := Simulate(flows, tableFor(g, flows, false), tcp1(Config{}), rng.New(3))
	if res.FlowGoodput[0] != 1 {
		t.Fatalf("intra-switch goodput = %v, want 1", res.FlowGoodput[0])
	}
}

func TestDisconnectedZero(t *testing.T) {
	g := graph.New(2)
	flows := []traffic.Flow{{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 1}}
	res := Simulate(flows, tableFor(g, flows, false), tcp1(Config{}), rng.New(4))
	if res.FlowGoodput[0] != 0 {
		t.Fatalf("disconnected goodput = %v, want 0", res.FlowGoodput[0])
	}
}

func TestNICBoundsMPTCP(t *testing.T) {
	// Ring of 4: two disjoint paths 0→2, but one NIC caps the flow at 1.
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4)
	}
	flows := []traffic.Flow{{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 2}}
	res := Simulate(flows, tableFor(g, flows, true), mptcp(Config{}), rng.New(5))
	if res.FlowGoodput[0] > 1 {
		t.Fatalf("goodput %v exceeds NIC", res.FlowGoodput[0])
	}
	if res.FlowGoodput[0] < 0.7 {
		t.Fatalf("MPTCP goodput = %v, want near 1", res.FlowGoodput[0])
	}
}

func TestMPTCPUsesBothDisjointPaths(t *testing.T) {
	// Two switch-level flows from distinct servers share switch 0→2 demand:
	// combined they need both ring paths. MPTCP should find ~2 units total.
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4)
	}
	flows := []traffic.Flow{
		{SrcServer: 0, DstServer: 2, SrcSwitch: 0, DstSwitch: 2},
		{SrcServer: 1, DstServer: 3, SrcSwitch: 0, DstSwitch: 2},
	}
	res := Simulate(flows, tableFor(g, flows, true), mptcp(Config{Horizon: 8000}), rng.New(6))
	total := res.FlowGoodput[0] + res.FlowGoodput[1]
	if total < 1.3 {
		t.Fatalf("two MPTCP flows over two disjoint paths total %v, want > 1.3", total)
	}
}

func TestMeanEmpty(t *testing.T) {
	if (Result{}).Mean() != 0 {
		t.Fatal("empty mean != 0")
	}
}

// The headline validation: on a small Jellyfish at moderate load, the
// packet-level simulator and the fluid flow model agree on mean throughput
// within modeling tolerance, for both routing schemes. This is the bridge
// that justifies using flowsim for the big sweeps.
func TestAgreesWithFlowsim(t *testing.T) {
	top := topology.Jellyfish(30, 10, 7, rng.New(7))
	pat := traffic.RandomPermutation(top.ServerSwitches(), rng.New(8))
	for _, ksp := range []bool{false, true} {
		table := tableFor(top.Graph, pat.Flows, ksp)
		fluid := flowsim.Simulate(pat.Flows, table, flowsim.MPTCP8, rng.New(9)).Mean()
		pkt := Simulate(pat.Flows, table, mptcp(Config{Horizon: 6000}), rng.New(9)).Mean()
		if math.Abs(pkt-fluid) > 0.20 {
			t.Fatalf("ksp=%v: packet %v vs fluid %v diverge by more than 0.20", ksp, pkt, fluid)
		}
		if pkt <= 0.3 {
			t.Fatalf("ksp=%v: packet sim collapsed: %v", ksp, pkt)
		}
	}
}

func TestDeterministic(t *testing.T) {
	top := topology.Jellyfish(15, 8, 5, rng.New(10))
	pat := traffic.RandomPermutation(top.ServerSwitches(), rng.New(11))
	table := tableFor(top.Graph, pat.Flows, true)
	a := Simulate(pat.Flows, table, mptcp(Config{}), rng.New(12))
	b := Simulate(pat.Flows, table, mptcp(Config{}), rng.New(12))
	for i := range a.FlowGoodput {
		if a.FlowGoodput[i] != b.FlowGoodput[i] {
			t.Fatal("same seed, different goodput")
		}
	}
}

func TestUncoupledTCP8(t *testing.T) {
	// TCP-8 on a single path: 8 subflows of one flow saturate the link and
	// the NIC still caps goodput at 1.
	g := graph.New(2)
	g.AddEdge(0, 1)
	flows := []traffic.Flow{{SrcServer: 0, DstServer: 1, SrcSwitch: 0, DstSwitch: 1}}
	res := Simulate(flows, tableFor(g, flows, false), Config{Subflows: 8}, rng.New(13))
	if res.FlowGoodput[0] > 1 {
		t.Fatalf("goodput %v exceeds NIC", res.FlowGoodput[0])
	}
	if res.FlowGoodput[0] < 0.8 {
		t.Fatalf("goodput %v, want near 1", res.FlowGoodput[0])
	}
}

func TestQueueCapacityMatters(t *testing.T) {
	// Tiny queues force drops and lower goodput relative to big queues
	// when many flows share a link.
	g := graph.New(2)
	g.AddEdge(0, 1)
	var flows []traffic.Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, traffic.Flow{SrcServer: i, DstServer: 8 + i, SrcSwitch: 0, DstSwitch: 1})
	}
	table := tableFor(g, flows, false)
	tiny := Simulate(flows, table, Config{Subflows: 1, QueuePackets: 2, Horizon: 6000}, rng.New(14))
	big := Simulate(flows, table, Config{Subflows: 1, QueuePackets: 256, Horizon: 6000}, rng.New(14))
	if tiny.Mean() > big.Mean()+0.02 {
		t.Fatalf("tiny queues outperformed big queues: %v vs %v", tiny.Mean(), big.Mean())
	}
	var total float64
	for _, x := range big.FlowGoodput {
		total += x
	}
	if total > 1.02 {
		t.Fatalf("aggregate goodput %v exceeds link rate", total)
	}
}
