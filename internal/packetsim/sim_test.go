package packetsim

import (
	"testing"

	"jellyfish/internal/rng"
	"jellyfish/internal/routing"
	"jellyfish/internal/topology"
	"jellyfish/internal/traffic"
)

type instance struct {
	flows []traffic.Flow
	table *routing.Table
}

func jellyfishInstance(switches, ports, deg int, seed uint64) instance {
	top := topology.Jellyfish(switches, ports, deg, rng.New(seed))
	pat := traffic.RandomPermutation(top.ServerSwitches(), rng.New(seed+1))
	var sd [][2]int
	for _, f := range pat.Flows {
		sd = append(sd, [2]int{f.SrcSwitch, f.DstSwitch})
	}
	return instance{flows: pat.Flows, table: routing.KShortest(top.Graph, routing.PairsForCommodities(sd), 8, 1)}
}

// One Sim reused across differing instances and configs must reproduce
// one-shot results bit for bit — the compiled-instance contract.
func TestSimReuseMatchesOneShot(t *testing.T) {
	instances := []instance{
		jellyfishInstance(15, 8, 5, 10),
		jellyfishInstance(20, 10, 7, 20),
		jellyfishInstance(15, 8, 5, 10),
	}
	cfgs := []Config{
		{Subflows: 1, Horizon: 1500},
		{Subflows: 8, Coupled: true, Horizon: 1500},
	}
	sim := NewSim(2, 2) // deliberately undersized: growth must be safe
	for round := 0; round < 2; round++ {
		for ii, in := range instances {
			for ci, cfg := range cfgs {
				want := Simulate(in.flows, in.table, cfg, rng.New(33))
				got := sim.Simulate(in.flows, in.table, cfg, rng.New(33))
				if len(got.FlowGoodput) != len(want.FlowGoodput) {
					t.Fatalf("round %d instance %d cfg %d: lengths differ", round, ii, ci)
				}
				for i := range want.FlowGoodput {
					if got.FlowGoodput[i] != want.FlowGoodput[i] {
						t.Fatalf("round %d instance %d cfg %d flow %d: reuse %v != one-shot %v",
							round, ii, ci, i, got.FlowGoodput[i], want.FlowGoodput[i])
					}
				}
			}
		}
	}
}

// The event loop's zero-allocation pin: after warm-up, a full simulation
// on a compiled instance — millions of heap operations — allocates
// nothing. The event arena free-list and the index heap are what make
// this hold; container/heap's interface boxing allocated per push.
func TestPacketZeroAllocs(t *testing.T) {
	in := jellyfishInstance(15, 8, 5, 42)
	sim := NewSim(15, len(in.flows))
	cfg := Config{Subflows: 8, Coupled: true, Horizon: 800}
	src := rng.New(5)
	sim.Simulate(in.flows, in.table, cfg, src)
	allocs := testing.AllocsPerRun(5, func() {
		sim.Simulate(in.flows, in.table, cfg, src)
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per steady-state Simulate, want 0", allocs)
	}
}

// The heap must be a strict priority queue under the documented
// (time, sequence) order: drain a shuffled workload and check sorted
// output with FIFO tie-breaks.
func TestEventHeapOrdering(t *testing.T) {
	s := &Sim{}
	src := rng.New(9)
	times := make([]float64, 500)
	for i := range times {
		times[i] = float64(src.Intn(40)) / 8 // force plenty of ties
		s.push(event{t: times[i], sub: int32(i)})
	}
	prevT, prevSeq := -1.0, uint64(0)
	for i := 0; i < len(times); i++ {
		ei := s.pop()
		ev := s.events[ei]
		if ev.t < prevT {
			t.Fatalf("pop %d: time %v after %v", i, ev.t, prevT)
		}
		if ev.t == prevT && ev.seq < prevSeq {
			t.Fatalf("pop %d: tie broken against injection order (seq %d after %d)", i, ev.seq, prevSeq)
		}
		prevT, prevSeq = ev.t, ev.seq
	}
	if len(s.heap) != 0 {
		t.Fatalf("%d events left in heap", len(s.heap))
	}
}
