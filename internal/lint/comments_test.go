package lint

import (
	"go/ast"
	"reflect"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text      string
		ok        bool
		analyzers []string
		reason    string
	}{
		{"//jellyvet:allow hotpath -- scratch reuse", true, []string{"hotpath"}, "scratch reuse"},
		{"//jellyvet:allow determinism,confinement -- worker pool", true, []string{"determinism", "confinement"}, "worker pool"},
		{"//jellyvet:allow determinism, confinement -- spaced list", true, []string{"determinism", "confinement"}, "spaced list"},
		{"//jellyvet:allow hotpath", true, []string{"hotpath"}, ""},
		{"//jellyvet:allow -- reason only", true, nil, "reason only"},
		{"//jellyvet:allow", true, nil, ""},
		{"//jellyvet:allowhotpath -- not a directive", false, nil, ""},
		{"// plain comment", false, nil, ""},
		{"//jellyvet:hotpath", false, nil, ""},
	}
	for _, c := range cases {
		d, ok := parseAllow(&ast.Comment{Text: c.text})
		if ok != c.ok {
			t.Errorf("parseAllow(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if !reflect.DeepEqual(d.analyzers, c.analyzers) {
			t.Errorf("parseAllow(%q) analyzers = %v, want %v", c.text, d.analyzers, c.analyzers)
		}
		if d.reason != c.reason {
			t.Errorf("parseAllow(%q) reason = %q, want %q", c.text, d.reason, c.reason)
		}
	}
}

func TestIsDeterministicPackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"jellyfish/internal/mcf", true},
		{"internal/mcf", true},
		{"check/internal/mcf", true},
		{"jellyfish/internal/service", true},
		{"jellyfish/internal/parallel", false},
		{"jellyfish/internal/lint", false},
		{"jellyfish/internal/mcfx", false},
		{"mcf", false},
	}
	for _, c := range cases {
		if got := IsDeterministicPackage(c.path); got != c.want {
			t.Errorf("IsDeterministicPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
