package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Obsconfine enforces the telemetry confinement contract (DESIGN.md §15)
// that makes instrumenting deterministic kernels safe:
//
//  1. One-way flow. In the declared deterministic packages, calls into
//     internal/telemetry may write (counters, gauges, histograms, span
//     recorders) but their results must never feed back into
//     computation: a read-out like Counter.Value escaping into ordinary
//     code is exactly how "just a metric" becomes an output-perturbing
//     input. Results that are themselves telemetry types (Timer, Mark,
//     *Trace) are inert and may flow anywhere; scalar results may only
//     be discarded or passed straight back into telemetry.
//  2. Hot-path allowlist. Inside //jellyvet:hotpath functions, only the
//     zero-alloc instruments may be called — the trace-extraction and
//     registration entry points allocate and belong outside the kernel.
var Obsconfine = &Analyzer{
	Name: "obsconfine",
	Doc: `keep telemetry one-way in deterministic packages and zero-alloc on hot paths

In packages declared deterministic (lint.DeterministicPackages), flags
internal/telemetry call results that escape into non-telemetry code
(assignment to ordinary variables, arithmetic, conditions, arguments to
ordinary functions, returns): instrumentation must be write-only so it
cannot perturb byte-identical outputs. In //jellyvet:hotpath functions
(any package), flags telemetry entry points outside the zero-alloc
allowlist (Inc, Add, Set, Dec, Observe, ObserveSince, StartTimer,
Begin, End, Mark, ElapsedNanos). Diagnostic read-out sites (stats
endpoints, trace rendering) carry //jellyvet:allow obsconfine -- <why>.`,
	Run: runObsconfine,
}

// hotSafeTelemetry is the allocation-free instrument surface a
// //jellyvet:hotpath function may call; everything else in the
// telemetry package (constructors, registration, trace extraction,
// exposition) allocates or locks.
var hotSafeTelemetry = map[string]bool{
	"Inc": true, "Add": true, "Set": true, "Dec": true,
	"Observe": true, "ObserveSince": true, "StartTimer": true,
	"Begin": true, "End": true, "Mark": true, "ElapsedNanos": true,
}

func runObsconfine(pass *Pass) {
	deterministic := IsDeterministicPackage(pass.Pkg.Path())

	type posRange struct{ start, end token.Pos }
	var hot []posRange
	for _, fd := range hotpathFuncs(pass.Files) {
		hot = append(hot, posRange{fd.Pos(), fd.End()})
	}
	inHot := func(pos token.Pos) bool {
		for _, r := range hot {
			if r.start <= pos && pos < r.end {
				return true
			}
		}
		return false
	}
	if !deterministic && len(hot) == 0 {
		return
	}

	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := telemetryCallee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if inHot(call.Pos()) && !hotSafeTelemetry[fn.Name()] {
				pass.Reportf(call.Pos(), "telemetry.%s in a //jellyvet:hotpath function: hot paths may only use the zero-alloc instruments (Inc/Add/Set/Dec/Observe/ObserveSince/StartTimer/Begin/End/Mark/ElapsedNanos)", fn.Name())
			}
			if !deterministic {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() == 0 || resultsAllTelemetry(sig) {
				return true // nothing escapes, or only inert telemetry values
			}
			if len(stack) < 2 {
				return true
			}
			switch parent := stack[len(stack)-2].(type) {
			case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
				return true // result discarded
			case *ast.CallExpr:
				if telemetryCallee(pass.TypesInfo, parent) != nil {
					return true // flows straight back into telemetry
				}
			case *ast.AssignStmt:
				if assignSinksAreInert(pass.TypesInfo, parent, call) {
					return true
				}
			}
			pass.Reportf(call.Pos(), "result of telemetry.%s feeds back into computation; telemetry is one-way in deterministic packages — discard it, pass it to another telemetry call, or carry //jellyvet:allow obsconfine -- <why> on a reviewed read-out site", fn.Name())
			return true
		})
	}
}

// telemetryCallee returns the called function when call invokes
// something declared in internal/telemetry (matched by import-path
// suffix, like the other analyzers, so fixtures in any module work).
func telemetryCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if !isTelemetryPkgPath(fn.Pkg().Path()) {
		return nil
	}
	return fn
}

func isTelemetryPkgPath(path string) bool {
	return path == "internal/telemetry" || strings.HasSuffix(path, "/internal/telemetry")
}

// isTelemetryType reports whether t is (a pointer to) a type declared
// in internal/telemetry.
func isTelemetryType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && isTelemetryPkgPath(pkg.Path())
}

// resultsAllTelemetry reports whether every result of the signature is
// a telemetry-declared type — values that cannot perturb computation
// unless further read, at which point the reading call is checked.
func resultsAllTelemetry(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if !isTelemetryType(res.At(i).Type()) {
			return false
		}
	}
	return true
}

// assignSinksAreInert reports whether the assignment consumes the
// call's value only into blank identifiers or telemetry-typed
// variables.
func assignSinksAreInert(info *types.Info, assign *ast.AssignStmt, call *ast.CallExpr) bool {
	if len(assign.Rhs) == 1 && assign.Rhs[0] == ast.Expr(call) {
		// call's results fan out across all LHS slots
		for _, lhs := range assign.Lhs {
			if !sinkIsInert(info, lhs) {
				return false
			}
		}
		return true
	}
	for i, rhs := range assign.Rhs {
		if rhs == ast.Expr(call) && i < len(assign.Lhs) {
			return sinkIsInert(info, assign.Lhs[i])
		}
	}
	return false
}

func sinkIsInert(info *types.Info, lhs ast.Expr) bool {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return true
	}
	t := info.TypeOf(lhs)
	return t != nil && isTelemetryType(t)
}
