package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterministicPackages lists the packages (as import-path suffixes)
// whose outputs must be byte-identical across worker counts, cache
// states, and process restarts — the invariant pinned at runtime by
// internal/experiments/determinism_test.go and
// internal/service/determinism_test.go. The determinism analyzer
// enforces the sources of nondeterminism those suites have historically
// caught: map iteration order, wall-clock reads, the global math/rand
// stream, and goroutines spawned outside the deterministic worker pool.
//
// internal/service is deliberately in the list even though its job
// store and scheduler legitimately use timestamps and goroutines: those
// few sites carry reviewed //jellyvet:allow exemptions, and everything
// else in the package — the response paths — is checked.
var DeterministicPackages = []string{
	"internal/mcf",
	"internal/flowsim",
	"internal/packetsim",
	"internal/graph",
	"internal/routing",
	"internal/estimate",
	"internal/capsearch",
	"internal/traffic",
	"internal/experiments",
	"internal/service",
}

// parallelPackage is the one package allowed to spawn worker goroutines:
// its pool returns results in deterministic index order.
const parallelPackage = "internal/parallel"

// IsDeterministicPackage reports whether the import path is in the
// declared deterministic set.
func IsDeterministicPackage(path string) bool {
	for _, suffix := range DeterministicPackages {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

// Determinism forbids the constructs that make output depend on
// scheduling, iteration order, or wall-clock in the declared
// deterministic packages.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: `forbid nondeterministic constructs in the deterministic packages

In packages declared deterministic (lint.DeterministicPackages), flags:
ranging over a map (iteration order is randomized), time.Now/Since/Until
(wall-clock leaks into results), package-level math/rand functions (a
shared global stream; use internal/rng splits), and go statements
(concurrency belongs in internal/parallel, whose pool is
order-deterministic). Exemptions: //jellyvet:allow determinism -- <why>.`,
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !IsDeterministicPackage(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[nn.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(nn.Pos(), "range over map: iteration order is randomized; iterate a sorted key slice instead")
					}
				}
			case *ast.GoStmt:
				pass.Reportf(nn.Pos(), "go statement in a deterministic package: spawn workers through %s (index-ordered results) instead", parallelPackage)
			case *ast.SelectorExpr:
				fn, ok := pass.TypesInfo.Uses[nn.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					switch fn.Name() {
					case "Now", "Since", "Until":
						pass.Reportf(nn.Pos(), "time.%s reads the wall clock; deterministic outputs cannot depend on it", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if isGlobalRandFunc(fn) {
						pass.Reportf(nn.Pos(), "%s.%s draws from the shared global stream; derive a stream with internal/rng Split instead", fn.Pkg().Path(), fn.Name())
					}
				}
			}
			return true
		})
	}
}

// isGlobalRandFunc reports whether fn is a package-level math/rand
// function that consumes the global source. Constructors (New,
// NewSource, NewZipf, NewPCG, NewChaCha8) build explicit sources and
// are fine — internal/rng itself is built on rand.New.
func isGlobalRandFunc(fn *types.Func) bool {
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}
