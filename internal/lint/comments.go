package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// This file owns the jellyvet annotation grammar (DESIGN.md §12):
//
//	//jellyvet:hotpath                      (function doc) zero-alloc kernel
//	//jellyvet:confined                     (type doc) worker-confined type
//	//jellyvet:allow <a>[,<b>] -- <reason>  suppress analyzers a, b here
//
// An allow applies to the line it is written on (end-of-line form), to
// the line immediately below it (own-line form), or — when written in a
// function's doc comment — to the whole function. The reason is
// mandatory: a bare allow is itself reported, so every suppression in
// the tree is a reviewed, grep-able decision.

const (
	allowPrefix    = "//jellyvet:allow"
	hotpathMarker  = "//jellyvet:hotpath"
	confinedMarker = "//jellyvet:confined"
)

// an allowDirective is one parsed //jellyvet:allow comment.
type allowDirective struct {
	pos       token.Pos
	analyzers []string
	reason    string
}

func (d *allowDirective) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// parseAllow parses the text of a comment; ok is false when the comment
// is not an allow directive at all.
func parseAllow(c *ast.Comment) (d allowDirective, ok bool) {
	text := strings.TrimRight(c.Text, " \t")
	if text != allowPrefix && !strings.HasPrefix(text, allowPrefix+" ") {
		return d, false
	}
	d.pos = c.Pos()
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	names := rest
	if strings.HasPrefix(rest, "-- ") { // no analyzer names at all
		names = ""
		d.reason = strings.TrimSpace(strings.TrimPrefix(rest, "-- "))
	} else if i := strings.Index(rest, " -- "); i >= 0 {
		names = rest[:i]
		d.reason = strings.TrimSpace(rest[i+len(" -- "):])
	}
	for _, name := range strings.Split(names, ",") {
		if name = strings.TrimSpace(name); name != "" {
			d.analyzers = append(d.analyzers, name)
		}
	}
	return d, true
}

// funcRange is a function-scoped suppression (allow in a func doc).
type funcRange struct {
	start, end token.Pos
	directive  *allowDirective
}

type annotations struct {
	// byLine maps file name → line → directives written on that line.
	byLine map[string]map[int][]*allowDirective
	funcs  []funcRange
	all    []*allowDirective
}

// scanAnnotations collects every allow directive in the files, indexed
// for the two suppression scopes (line and enclosing function).
func scanAnnotations(fset *token.FileSet, files []*ast.File) *annotations {
	ann := &annotations{byLine: map[string]map[int][]*allowDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseAllow(c)
				if !ok {
					continue
				}
				dd := d
				ann.all = append(ann.all, &dd)
				pos := fset.Position(c.Pos())
				lines := ann.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*allowDirective{}
					ann.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], &dd)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				d, ok := parseAllow(c)
				if !ok {
					continue
				}
				dd := d
				ann.funcs = append(ann.funcs, funcRange{fd.Pos(), fd.End(), &dd})
			}
		}
	}
	return ann
}

// allowed reports whether a diagnostic from the named analyzer at pos is
// suppressed by a directive.
func (ann *annotations) allowed(analyzer string, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, d := range ann.byLine[p.Filename][p.Line] {
		if d.covers(analyzer) {
			return true
		}
	}
	for _, d := range ann.byLine[p.Filename][p.Line-1] {
		if d.covers(analyzer) {
			return true
		}
	}
	for _, fr := range ann.funcs {
		if fr.start <= pos && pos < fr.end && fr.directive.covers(analyzer) {
			return true
		}
	}
	return false
}

// misuse reports grammar violations: an allow with no reason, or one
// naming an analyzer that does not exist (both would otherwise rot into
// silent non-suppressions or unreviewable blanket ones).
func (ann *annotations) misuse(fset *token.FileSet, known map[string]bool) []Finding {
	var out []Finding
	report := func(pos token.Pos, msg string) {
		out = append(out, Finding{Pos: fset.Position(pos), Analyzer: "jellyvet", Message: msg})
	}
	for _, d := range ann.all {
		if len(d.analyzers) == 0 {
			report(d.pos, "jellyvet:allow names no analyzer (want //jellyvet:allow <analyzer> -- <reason>)")
			continue
		}
		if d.reason == "" {
			report(d.pos, "bare jellyvet:allow without a reason (want //jellyvet:allow <analyzer> -- <reason>)")
		}
		for _, a := range d.analyzers {
			if !known[a] {
				report(d.pos, "jellyvet:allow names unknown analyzer "+a)
			}
		}
	}
	return out
}

// docHasMarker reports whether a doc comment group contains the given
// whole-comment marker (optionally followed by " -- <note>").
func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimRight(c.Text, " \t")
		if text == marker || strings.HasPrefix(text, marker+" -- ") {
			return true
		}
	}
	return false
}

// hotpathFuncs returns the function declarations annotated
// //jellyvet:hotpath.
func hotpathFuncs(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && docHasMarker(fd.Doc, hotpathMarker) {
				out = append(out, fd)
			}
		}
	}
	return out
}

// confinedTypes returns the type names declared //jellyvet:confined in
// the files. The marker may sit on the type's own doc comment or on the
// enclosing GenDecl's.
func confinedTypes(files []*ast.File) map[*ast.TypeSpec]bool {
	out := map[*ast.TypeSpec]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			declMarked := docHasMarker(gd.Doc, confinedMarker)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if declMarked || docHasMarker(ts.Doc, confinedMarker) || docHasMarker(ts.Comment, confinedMarker) {
					out[ts] = true
				}
			}
		}
	}
	return out
}
