package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"jellyfish/internal/lint"
)

// The fixture suite under testdata/src/check is a standalone module whose
// packages exercise every analyzer: positive cases carry // want
// expectations, negative controls carry none, and suppressed sites check
// that allows work. Expectation grammar, analysistest-style:
//
//	code // want `regex` `regex`
//	// want(+1) `regex`        (expectation for the next line)
//
// Each expectation must match a finding on its line, and every finding
// must be claimed by an expectation.

var (
	wantRe = regexp.MustCompile(`// want(?:\((([+-]?\d+))\))? (.+)$`)
	argRe  = regexp.MustCompile("`([^`]*)`")
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func loadExpectations(t *testing.T, root string) []*expectation {
	t.Helper()
	var out []*expectation
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			offset := 0
			if m[1] != "" {
				offset, _ = strconv.Atoi(m[1])
			}
			args := argRe.FindAllStringSubmatch(m[3], -1)
			if len(args) == 0 {
				return fmt.Errorf("%s:%d: // want with no backquoted regex", path, i+1)
			}
			for _, a := range args {
				re, err := regexp.Compile(a[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regex: %v", path, i+1, err)
				}
				out = append(out, &expectation{file: path, line: i + 1 + offset, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAnalyzersOnFixtures(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "check"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	if len(pkgs) < 6 {
		t.Fatalf("loaded %d fixture packages, want at least 6", len(pkgs))
	}
	findings := lint.Run(pkgs, lint.All())
	expectations := loadExpectations(t, root)

	for _, f := range findings {
		text := f.Analyzer + ": " + f.Message
		matched := false
		for _, e := range expectations {
			if e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(text) {
				e.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, e := range expectations {
		if !e.hit {
			t.Errorf("%s:%d: expected a finding matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// TestFixturesCoverEveryAnalyzer guards the suite itself: each of the
// four analyzers (plus the grammar pseudo-analyzer) must produce at
// least one finding in the fixtures, so a silently broken analyzer
// cannot hide behind an accidentally empty suite.
func TestFixturesCoverEveryAnalyzer(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "check"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	counts := map[string]int{}
	for _, f := range lint.Run(pkgs, lint.All()) {
		counts[f.Analyzer]++
	}
	for _, a := range lint.All() {
		if counts[a.Name] == 0 {
			t.Errorf("analyzer %s produced no fixture findings", a.Name)
		}
	}
	if counts["jellyvet"] == 0 {
		t.Errorf("grammar misuse produced no fixture findings")
	}
}

// TestRepoIsClean pins the audited state of the tree: jellyvet over the
// whole module must report nothing. A new violation anywhere fails this
// test with the same file:line message the CI job prints.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, f := range lint.Run(pkgs, lint.All()) {
		t.Errorf("%s", f)
	}
}
