// Package badallow is the annotation-grammar fixture: each malformed
// //jellyvet:allow is itself a finding, reported under the "jellyvet"
// pseudo-analyzer so suppressions stay reviewable.
package badallow

// want(+1) `jellyvet:allow names no analyzer`
//jellyvet:allow -- a reason with no analyzer names

// want(+1) `bare jellyvet:allow without a reason`
//jellyvet:allow determinism

// want(+1) `jellyvet:allow names unknown analyzer speed`
//jellyvet:allow speed -- a misspelled analyzer name

// Placeholder keeps the package non-empty.
func Placeholder() int { return 0 }
