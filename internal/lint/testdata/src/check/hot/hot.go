// Package hot is the hotpath-analyzer fixture: one annotated kernel
// hitting every forbidden construct, plus unannotated and suppressed
// controls.
package hot

import "fmt"

type scratch struct{ buf []int }

var boxed any

func take(v any) {}

func varargs(vs ...any) {}

//jellyvet:hotpath
func kernel(s *scratch, n int) int {
	s.buf = append(s.buf, n)     // want `append in hotpath`
	m := make([]int, n)          // want `make in hotpath`
	p := new(int)                // want `new in hotpath`
	lit := []int{1, 2}           // want `slice literal in hotpath`
	mp := map[int]int{n: n}      // want `map literal in hotpath`
	sp := &scratch{}             // want `address of composite literal`
	f := func() int { return n } // want `func literal in hotpath`
	fmt.Sprint(n)                // want `fmt.Sprint in hotpath`
	return len(m) + *p + lit[0] + mp[n] + len(sp.buf) + f()
}

//jellyvet:hotpath
func boxes(n int) any {
	boxed = n   // want `assignment boxes int`
	take(n)     // want `argument boxes int`
	x := any(n) // want `conversion boxes int`
	varargs(n)  // want `argument boxes int`
	_ = x
	return n // want `return boxes int`
}

// passthrough hands an existing []any through a variadic call: the slice
// is reused, no element is boxed, no finding.
//
//jellyvet:hotpath
func passthrough(pre []any) {
	varargs(pre...)
}

// values builds plain struct values, which stay on the stack: no finding.
//
//jellyvet:hotpath
func values(n int) scratch {
	v := scratch{}
	return v
}

// allowedGrowth documents the amortized-growth exemption inline.
//
//jellyvet:hotpath
func allowedGrowth(s *scratch, n int) {
	s.buf = append(s.buf, n) //jellyvet:allow hotpath -- scratch-owned backing reused across calls
}

// cold is unannotated: the same constructs produce no findings.
func cold(n int) []int {
	out := make([]int, 0, n)
	return append(out, n)
}
