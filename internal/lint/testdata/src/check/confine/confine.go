// Package confine is the confinement-analyzer fixture: warm is the
// annotated type; the three escape routes are each labelled, with owned
// and suppressed controls.
package confine

// warm stands in for a shard worker's warm state.
//
//jellyvet:confined
type warm struct{ n int }

var escaped *warm // want `confined type warm stored in package-level variable escaped`

func capture(w *warm, done chan struct{}) {
	go func() { // want `goroutine captures w \(confined type warm\)`
		w.n++
		close(done)
	}()
}

func send(ch chan *warm, w *warm) {
	ch <- w // want `confined type warm sent on a channel`
}

// owned declares its warm value inside the goroutine: the spawnee is the
// sole owner, no finding.
func owned(done chan struct{}) {
	go func() {
		w := warm{}
		w.n++
		close(done)
	}()
}

// handoff is the reviewed exception shape: the spawner constructs the
// value, hands it to exactly one goroutine, and never touches it again.
func handoff(w *warm) {
	//jellyvet:allow confinement -- handoff at spawn; this goroutine becomes the sole owner
	go func() { w.n++ }()
}
