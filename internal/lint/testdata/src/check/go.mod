module check

go 1.24
