// Package rnguse is the rngstream-analyzer fixture.
package rnguse

import "check/internal/rng"

func Drops(src *rng.Source) {
	src.Split("dead")         // want `result of Source.Split is discarded`
	_ = src.SplitN("dead", 1) // want `result of Source.SplitN assigned to _`
}

// Uses consumes both split forms: no findings.
func Uses(src *rng.Source) *rng.Source {
	a := src.Split("live")
	return a.SplitN("child", 0)
}

// MultiAssign consumes one result and blanks the other: only the blank
// one is a finding.
func MultiAssign(src *rng.Source) *rng.Source {
	a, _ := src.Split("kept"), src.SplitN("dropped", 2) // want `result of Source.SplitN assigned to _`
	return a
}

// Documented keeps a dead split on purpose, with the mandatory reason.
func Documented(src *rng.Source) {
	src.Split("reserved") //jellyvet:allow rngstream -- fixture: a documented dead split stays suppressed
}
