// Package routing is an obsconfine fixture: its import path ends in
// internal/routing, a declared deterministic package, so telemetry
// calls here must be one-way — and the hotpath-allowlist rule is
// exercised on a //jellyvet:hotpath function.
package routing

import "check/internal/telemetry"

var (
	phases telemetry.Counter
	depth  telemetry.Gauge
	dur    telemetry.Histogram
	rec    telemetry.Recorder
)

// Instrumented is the negative control: write-only instrumentation,
// inert telemetry values, results flowing only back into telemetry.
func Instrumented() {
	t := telemetry.StartTimer() // ok: Timer is a telemetry type
	rec.Begin("phase", 1)
	phases.Inc()
	depth.Set(3)
	rec.End()
	dur.ObserveSince(t)
	dur.Observe(t.ElapsedNanos()) // ok: result flows into a telemetry call
	m := rec.Mark()               // ok: Mark is a telemetry type
	_ = rec.TraceSince(m)         // ok: *Trace is a telemetry type
}

// Feedback lets telemetry read-outs escape into computation — the bug
// class obsconfine exists for.
func Feedback() int64 {
	n := phases.Value()   // want `result of telemetry.Value feeds back into computation`
	if dur.Count() > 10 { // want `result of telemetry.Count feeds back into computation`
		n++
	}
	return n
}

// Returned leaks a read-out to the caller.
func Returned() int64 {
	return depth.Value() // want `result of telemetry.Value feeds back into computation`
}

// Snapshot is a reviewed diagnostic read-out: allowed with a reason.
func Snapshot() int64 {
	return phases.Value() //jellyvet:allow obsconfine -- stats-endpoint read-out; never enters a response digest
}

// kernel is the hotpath-allowlist case: the zero-alloc instruments are
// fine, trace extraction is not.
//
//jellyvet:hotpath
func kernel() {
	t := telemetry.StartTimer()
	phases.Inc()
	rec.Begin("sweep", 0)
	rec.End()
	dur.ObserveSince(t)
	_ = rec.TraceSince(rec.Mark()) // want `telemetry.TraceSince in a //jellyvet:hotpath function`
}
