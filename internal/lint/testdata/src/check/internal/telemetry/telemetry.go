// Package telemetry is a stub of jellyfish/internal/telemetry for the
// obsconfine fixtures: the analyzer matches it by import-path suffix,
// so only the call surface matters, not the implementations.
package telemetry

type Counter struct{ v int64 }

func (c *Counter) Inc()         {}
func (c *Counter) Add(n int64)  {}
func (c *Counter) Value() int64 { return c.v }

type Gauge struct{ v int64 }

func (g *Gauge) Set(n int64)  {}
func (g *Gauge) Value() int64 { return g.v }

type Histogram struct{}

func (h *Histogram) Observe(ns int64)     {}
func (h *Histogram) ObserveSince(t Timer) {}
func (h *Histogram) Count() int64         { return 0 }

type Timer struct{ start int64 }

func StartTimer() Timer             { return Timer{} }
func (t Timer) ElapsedNanos() int64 { return 0 }

type Mark struct{ n uint64 }

type Span struct{ Name string }

type Trace struct{ Spans []*Span }

type Recorder struct{}

func NewRecorder(capacity int) *Recorder         { return &Recorder{} }
func (r *Recorder) Begin(name string, arg int64) {}
func (r *Recorder) End()                         {}
func (r *Recorder) Mark() Mark                   { return Mark{} }
func (r *Recorder) TraceSince(m Mark) *Trace     { return nil }
