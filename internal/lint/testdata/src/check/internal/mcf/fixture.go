// Package mcf is a determinism-analyzer fixture: its import path ends in
// internal/mcf, so jellyvet treats it as a declared deterministic
// package. Every construct here is labelled with the finding it must (or
// must not) produce.
package mcf

import (
	"math/rand"
	"time"
)

func Spread(m map[int]int) int {
	total := 0
	for _, v := range m { // want `range over map`
		total += v
	}
	return total
}

func Stamp() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

func Draw() int {
	return rand.Intn(10) // want `math/rand.Intn draws from the shared global stream`
}

func Spawn(ch chan int) {
	go send(ch) // want `go statement in a deterministic package`
}

func send(ch chan int) { ch <- 1 }

// Seeded uses only constructors, which build explicit sources: no finding.
func Seeded() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

// SortedSpread ranges over a slice, not a map: no finding.
func SortedSpread(m map[int]int, keys []int) int {
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Allowed carries a reviewed suppression on the line above the range.
func Allowed(m map[int]bool) int {
	n := 0
	//jellyvet:allow determinism -- order-insensitive count for fixture coverage
	for range m {
		n++
	}
	return n
}

// WholeFunc demonstrates the function-doc allow scope: the directive in
// this doc comment suppresses every determinism finding in the body.
//
//jellyvet:allow determinism -- whole-function exemption for fixture coverage
func WholeFunc(m map[int]int) time.Time {
	for range m {
		break
	}
	return time.Now()
}
