// Package rng is a stub of the real internal/rng with the same Split
// API: the rngstream analyzer matches the method set by import-path
// suffix, so fixtures in check/rnguse exercise it without importing the
// jellyfish module.
package rng

type Source struct{ seed uint64 }

func New(seed uint64) *Source { return &Source{seed: seed} }

func (s *Source) Split(label string) *Source {
	return &Source{seed: s.seed + uint64(len(label))}
}

func (s *Source) SplitN(label string, i int) *Source {
	return &Source{seed: s.seed + uint64(len(label)) + uint64(i)}
}
